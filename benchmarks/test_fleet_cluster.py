"""Extension bench — fleet-scale cluster serving (`repro.cluster`).

Runs the three fleet studies end to end on trained models: the four
balancing policies over a heterogeneous CBNet fleet (Pi 4 / GCI-CPU /
GCI-K80) under steady, diurnal, and flash-crowd load; the reactive
autoscaler against a fixed peak-sized fleet on the same diurnal trace;
and a mid-trace crash of the fastest replica behind degrade-mode
admission control.  Predictions come from the precomputed inference
oracle (`repro.sim`) — one CBNet/BranchyNet pass per dataset shared by
all fifteen runs — at metrics identical to live in-loop inference.
"""

from repro.experiments.fleet import FLEET_SCENARIOS, run_fleet_comparison

from conftest import emit


def test_fleet_cluster_three_scenarios(benchmark, results_dir):
    comp = benchmark.pedantic(
        lambda: run_fleet_comparison(fast=True, seed=0), rounds=1, iterations=1
    )
    emit(results_dir, "fleet_cluster", comp.render())

    # Load-aware balancing must beat blind rotation at the tail on a
    # heterogeneous fleet — most visibly when a flash crowd hits.
    rr = comp.report_for("flash-crowd", "round-robin")
    p2c = comp.report_for("flash-crowd", "power-of-two")
    assert p2c.p99_s < rr.p99_s, "power-of-two-choices should beat round-robin p99"
    for scenario in FLEET_SCENARIOS:
        blind = comp.report_for(scenario, "round-robin")
        for policy in ("least-outstanding", "join-shortest-queue", "power-of-two"):
            aware = comp.report_for(scenario, policy)
            assert aware.p99_s < blind.p99_s, f"{policy} p99 should win under {scenario}"
            assert aware.slo_attainment >= blind.slo_attainment

    # Everything is genuinely served: real model predictions, full
    # availability, nothing silently dropped.
    for reports in comp.policy_reports.values():
        for r in reports:
            assert r.n_served == r.n_requests
            assert r.accuracy > 0.9

    # The autoscaler matches the fixed peak-sized fleet's SLO attainment
    # at equal or fewer replica-seconds on the same diurnal trace.
    fixed, auto = comp.autoscaler_reports
    assert auto.slo_attainment >= fixed.slo_attainment
    assert auto.replica_seconds <= fixed.replica_seconds
    assert auto.scale_ups > 0

    # Failure injection: the crash visibly bit (retries / degrades), yet
    # the surviving replicas absorbed every request.
    f = comp.failure_report
    assert f.n_crashes == 1
    assert f.n_retried + f.n_degraded > 0
    assert f.availability == 1.0
