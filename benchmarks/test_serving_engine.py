"""Extension bench — the batched serving engine under three load shapes.

Runs `repro.serving.Server` end to end: CBNet / BranchyNet / LeNet /
hybrid predictions behind the micro-batcher, worker dispatcher, LRU
result cache, and entropy router, on the calibrated Pi-4 timing model.
Inference runs through the precomputed oracle (`repro.sim`): one model
pass per dataset feeds every scenario at metrics identical to live
in-loop inference (`tests/sim` pins the parity).  Steady, bursty, and
overload arrival scenarios share identical request streams per
scenario, so the sojourn percentiles are directly comparable.
"""

from repro.experiments.serve import SCENARIOS, run_serving_comparison

from conftest import emit


def test_serving_engine_three_scenarios(benchmark, results_dir):
    comp = benchmark.pedantic(
        lambda: run_serving_comparison(fast=True, seed=0), rounds=1, iterations=1
    )
    emit(results_dir, "serving_engine", comp.render())

    # CBNet's constant service time must beat BranchyNet's bimodal one at
    # the tail under *every* load shape — the deployment-level claim.
    for scenario in SCENARIOS:
        cb = comp.report_for(scenario, "cbnet")
        br = comp.report_for(scenario, "branchynet")
        assert cb.p99_s < br.p99_s, f"CBNet p99 should win under {scenario} load"

    # Bursty scenario end-to-end: everything served, cache earning hits,
    # real predictions (accuracy is computed from served labels).
    bursty = comp.report_for("bursty", "cbnet")
    assert bursty.n_requests == comp.n_requests
    assert bursty.max_s > 0 and bursty.utilization > 0
    assert bursty.cache_hit_rate > 0.2
    assert bursty.accuracy > 0.9

    # Overload saturates the server: utilization pegged, the queue (and
    # with it p99) blowing up, dynamic batching growing the batches.
    steady_cb = comp.report_for("steady", "cbnet")
    over_cb = comp.report_for("overload", "cbnet")
    assert over_cb.utilization > 0.95
    assert over_cb.p99_s > 10 * steady_cb.p99_s
    assert over_cb.mean_batch_size > steady_cb.mean_batch_size

    # Under overload the lighter pipeline sustains more traffic.
    assert (
        over_cb.throughput_rps
        > comp.report_for("overload", "branchynet").throughput_rps
        > comp.report_for("overload", "lenet").throughput_rps
    )
