"""Bench for the paper's §V future-work variants, implemented in
:mod:`repro.core.generalized`:

* generalized CBNet (no BranchyNet dependency — labels from the truncated
  classifier's own entropy);
* encoder-only CBNet (decoder block removed).

The bench compares all three CBNet variants on accuracy and simulated
Pi-4 latency and asserts the expected ordering: the encoder-only variant
is the cheapest; both variants stay accuracy-competitive.
"""

import pytest

from repro.core import TrainConfig
from repro.core.generalized import build_encoder_only_cbnet, build_generalized_cbnet
from repro.eval.tables import Table
from repro.hw.devices import raspberry_pi4
from repro.hw.latency import cbnet_latency, model_latency

from conftest import emit


@pytest.fixture(scope="module")
def variants(mnist_artifacts, mnist_lenet):
    train = mnist_artifacts.datasets["train"]
    generalized = build_generalized_cbnet(
        mnist_lenet,
        train,
        "mnist",
        keep_layers=3,
        seed=0,
        head_train=TrainConfig(epochs=4, batch_size=128),
        ae_train=TrainConfig(epochs=8, batch_size=128),
    )
    encoder_only = build_encoder_only_cbnet(
        mnist_artifacts.cbnet.autoencoder,
        train,
        seed=0,
        train=TrainConfig(epochs=6, batch_size=128),
    )
    return generalized, encoder_only


def test_future_work_variants(benchmark, results_dir, variants, mnist_artifacts):
    generalized, encoder_only = variants
    test = mnist_artifacts.datasets["test"]
    device = raspberry_pi4()

    def evaluate():
        return {
            "CBNet (paper)": (
                mnist_artifacts.cbnet.accuracy(test.images, test.labels),
                cbnet_latency(mnist_artifacts.cbnet, device).total,
            ),
            "Generalized (no BranchyNet)": (
                generalized.cbnet.accuracy(test.images, test.labels),
                cbnet_latency(generalized.cbnet, device).total,
            ),
            "Encoder-only (no decoder)": (
                encoder_only.accuracy(test.images, test.labels),
                model_latency(encoder_only, device, in_shape=(784,)),
            ),
        }

    results = benchmark.pedantic(evaluate, rounds=1, iterations=1)

    table = Table(
        headers=["variant", "accuracy (%)", "latency Pi4 (ms)"],
        title="Future-work variants (paper SV), MNIST",
    )
    for name, (acc, lat) in results.items():
        table.add_row(name, f"{100 * acc:.2f}", f"{lat * 1e3:.3f}")
    emit(results_dir, "future_work_variants", table.render())

    # Encoder-only removes the decoder: strictly cheaper than full CBNet.
    assert results["Encoder-only (no decoder)"][1] < results["CBNet (paper)"][1]
    # All variants stay within a few points of the paper pipeline.
    base_acc = results["CBNet (paper)"][0]
    assert results["Generalized (no BranchyNet)"][0] > base_acc - 0.05
    assert results["Encoder-only (no decoder)"][0] > base_acc - 0.05


def test_encoder_only_inference_wallclock(benchmark, variants, mnist_artifacts):
    _, encoder_only = variants
    test = mnist_artifacts.datasets["test"]
    preds = benchmark(encoder_only.predict, test.images[:500])
    assert preds.shape == (500,)
