"""Fig. 7 bench — scalability analysis on FMNIST across all devices.

FMNIST is the hard-heavy dataset (23% hard): the BranchyNet-CBNet gap
must be wider than on MNIST at the same ratio (paper: "this trend is
more prominent in the cases of FMNIST and KMNIST").
"""

import pytest

from repro.experiments.scalability import run_scalability

from conftest import emit


def test_regenerate_fig7(benchmark, results_dir, fmnist_artifacts, mnist_artifacts):
    fig7 = benchmark.pedantic(
        run_scalability,
        args=("fmnist",),
        kwargs={"artifacts": fmnist_artifacts},
        rounds=1,
        iterations=1,
    )
    text = "\n\n".join(
        fig7.render(device) for device in ("raspberry-pi4", "gci-cpu", "gci-k80")
    )
    emit(results_dir, "fig7_fmnist", text)
    assert len(fig7.points) == 10

    # Gap widens with size.
    gaps = [
        p.branchy_total_s["raspberry-pi4"] - p.cbnet_total_s["raspberry-pi4"]
        for p in fig7.points
    ]
    assert gaps[-1] > gaps[0]

    # FMNIST is harder than MNIST: lower exit rate, bigger relative gap.
    fig6 = run_scalability("mnist", artifacts=mnist_artifacts)
    assert fig7.points[-1].exit_rate < fig6.points[-1].exit_rate

    def final_ratio(result):
        p = result.points[-1]
        return p.branchy_total_s["raspberry-pi4"] / p.cbnet_total_s["raspberry-pi4"]

    assert final_ratio(fig7) > 0.999 * final_ratio(fig6)

    # CBNet accuracy stays competitive on the hard-heavy dataset.
    p = fig7.points[-1]
    assert p.cbnet_accuracy_pct > p.branchy_accuracy_pct - 3.0


def test_fmnist_inference_wallclock(benchmark, fmnist_artifacts):
    test = fmnist_artifacts.datasets["test"]
    preds = benchmark(fmnist_artifacts.cbnet.predict, test.images[:300])
    assert preds.shape == (300,)
