"""Fig. 6 bench — scalability analysis on MNIST across all devices.

Paper reading: total inference time grows linearly with dataset-size
ratio for both systems; the BranchyNet-CBNet gap widens with size;
accuracies stay flat.
"""

import numpy as np
import pytest

from repro.experiments.scalability import run_scalability

from conftest import emit


def test_regenerate_fig6(benchmark, results_dir, mnist_artifacts):
    fig6 = benchmark.pedantic(
        run_scalability,
        args=("mnist",),
        kwargs={"artifacts": mnist_artifacts},
        rounds=1,
        iterations=1,
    )
    text = "\n\n".join(
        fig6.render(device) for device in ("raspberry-pi4", "gci-cpu", "gci-k80")
    )
    emit(results_dir, "fig6_mnist", text)
    assert len(fig6.points) == 10

    # Total time grows linearly with the dataset ratio.
    ratios = np.array([p.ratio for p in fig6.points])
    times = np.array([p.cbnet_total_s["raspberry-pi4"] for p in fig6.points])
    assert np.corrcoef(ratios, times)[0, 1] > 0.999

    # The BranchyNet-CBNet gap widens with size (paper §IV-F).
    gaps = [
        p.branchy_total_s["raspberry-pi4"] - p.cbnet_total_s["raspberry-pi4"]
        for p in fig6.points
    ]
    assert gaps[-1] > gaps[0]
    # Linear growth: the gap at full size is ~2x the gap at half size
    # (slack for exit-rate fluctuation between stratified subsets).
    assert gaps[-1] > 1.5 * gaps[len(gaps) // 2 - 1]

    # Accuracies and exit rates stay roughly flat across ratios
    # (stratified subsets hold the hard proportion constant).
    cb_acc = [p.cbnet_accuracy_pct for p in fig6.points]
    br_acc = [p.branchy_accuracy_pct for p in fig6.points]
    assert max(cb_acc) - min(cb_acc) < 6.0
    assert max(br_acc) - min(br_acc) < 6.0
    # Smallest subsets (~60 samples) carry binomial noise of ±5pts, so the
    # flatness check starts at ratio 0.2.
    rates = [p.exit_rate for p in fig6.points if p.ratio >= 0.2]
    assert max(rates) - min(rates) < 0.12

    # CBNet below BranchyNet at every ratio on every device.
    for p in fig6.points:
        for device in ("raspberry-pi4", "gci-cpu", "gci-k80"):
            assert p.cbnet_total_s[device] < p.branchy_total_s[device]


def test_subset_inference_wallclock(benchmark, mnist_artifacts):
    from repro.data.splits import stratified_subset

    test = mnist_artifacts.datasets["test"]
    subset = stratified_subset(test, 0.5, rng=0, by="is_hard")
    preds = benchmark(mnist_artifacts.cbnet.predict, subset.images)
    assert preds.shape == (len(subset),)
