"""Shared fixtures for the benchmark harness.

Each benchmark regenerates one paper table/figure (printed to stdout and
written under ``benchmarks/results/``) and times a representative slice
of the underlying computation with pytest-benchmark.

First invocation trains the fast-scale pipelines (a few minutes); all
artifacts are disk-cached, so subsequent runs are seconds.

Run with::

    pytest benchmarks/ --benchmark-only
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.experiments.common import FAST, lenet_for, pipeline_for

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


def emit(results_dir: Path, name: str, text: str) -> None:
    """Print a rendered table/figure and persist it."""
    print()
    print(text)
    (results_dir / f"{name}.txt").write_text(text + "\n")


@pytest.fixture(scope="session")
def mnist_artifacts():
    return pipeline_for("mnist", FAST, seed=0)


@pytest.fixture(scope="session")
def fmnist_artifacts():
    return pipeline_for("fmnist", FAST, seed=0)


@pytest.fixture(scope="session")
def kmnist_artifacts():
    return pipeline_for("kmnist", FAST, seed=0)


@pytest.fixture(scope="session")
def mnist_lenet():
    return lenet_for("mnist", FAST, seed=0)
