"""Fig. 5 bench — LeNet / BranchyNet / AdaDeep / SubFlow / CBNet on
MNIST / Raspberry Pi 4.

Paper reading: CBNet fastest (3.78x faster than AdaDeep, 4.85x than
SubFlow) with accuracy at least on par; compression baselines land
between CBNet and LeNet.
"""

import pytest

from repro.experiments.fig5 import run_fig5

from conftest import emit


def test_regenerate_fig5(benchmark, results_dir, mnist_artifacts, mnist_lenet):
    fig5 = benchmark.pedantic(run_fig5, kwargs={"fast": True}, rounds=1, iterations=1)
    emit(results_dir, "fig5", fig5.render())
    assert {b.model for b in fig5.bars} == {
        "LeNet",
        "BranchyNet",
        "AdaDeep",
        "SubFlow",
        "CBNet",
    }

    # CBNet fastest of all five systems.
    cb = fig5.bar("CBNet").latency_ms
    for other in ("LeNet", "BranchyNet", "AdaDeep", "SubFlow"):
        assert cb < fig5.bar(other).latency_ms

    # Compression baselines sit between CBNet and LeNet.
    lenet = fig5.bar("LeNet").latency_ms
    assert cb < fig5.bar("AdaDeep").latency_ms < lenet
    assert cb < fig5.bar("SubFlow").latency_ms < lenet

    # Substantial margins (paper: 3.78x / 4.85x — require >= 2x).
    assert fig5.bar("AdaDeep").latency_ms / cb > 2.0
    assert fig5.bar("SubFlow").latency_ms / cb > 2.0

    # CBNet accuracy not dominated by the compression baselines.
    cb_acc = fig5.bar("CBNet").accuracy_pct
    assert cb_acc >= fig5.bar("SubFlow").accuracy_pct - 0.5
    assert cb_acc >= fig5.bar("AdaDeep").accuracy_pct - 1.5


def test_subflow_inference_wallclock(benchmark, mnist_lenet, mnist_artifacts):
    from repro.baselines import SubFlowExecutor

    executor = SubFlowExecutor(mnist_lenet, utilization=0.85)
    images = mnist_artifacts.datasets["test"].images[:300]
    preds = benchmark(executor.predict, images)
    assert preds.shape == (300,)
