"""Scale bench — a million-request shared-LTE storm, resilient vs naive.

The netsim layer (:mod:`repro.netsim`) must hold up at the ROADMAP's
millions-of-users scale: this bench replays one seeded link storm
(outage, degradation windows, flaps) over eight edge devices
multiplexed on one shared LTE cell, a million Poisson requests per arm,
twice — once naive (ship every hard sample), once deadline-aware
against the transports' live congestion estimates.  The timed quantity
is both arms end to end: two million offload decisions, every AIMD
flight, handshake, and retransmit on the virtual clock.  The acceptance
properties ride along: zero transfers lost or double-delivered, the
retransmit-amplification bound intact, and the resilient arm strictly
ahead on deadline-SLO attainment.
"""

from repro.experiments.netchaos import _net_storm_for
from repro.hw.network import lte
from repro.netsim import AIMDConfig, FleetDevice, SharedLink, run_fleet_net
from repro.offload.policies import DeadlineAware, EntropyGated
from repro.utils.rng import as_generator, derive_seed

from conftest import emit

N_DEVICES = 8
N_PER_DEVICE = 125_000  # 8 * 125k = 1M requests per arm
DEADLINE_S = 0.25

SPEC = FleetDevice(
    rate_hz=15.0,
    n_requests=N_PER_DEVICE,
    up_bytes=8_000,
    local_s=40e-3,
    cloud_s=4e-3,
)


def test_million_request_shared_lte_storm(benchmark, results_dir):
    horizon_s = N_PER_DEVICE / SPEC.rate_hz
    plan = _net_storm_for(horizon_s, as_generator(derive_seed(0, "netchaos-bench")))
    fleet_seed = derive_seed(0, "netchaos-bench-fleet")
    aimd = AIMDConfig(init_cwnd=10)

    def run_arm(policy):
        link = SharedLink.from_network_link(lte(), faults=plan)
        return run_fleet_net(
            link,
            tuple(SPEC for _ in range(N_DEVICES)),
            policy,
            deadline_s=DEADLINE_S,
            rng=fleet_seed,
            aimd=aimd,
        )

    def run():
        return run_arm(EntropyGated()), run_arm(DeadlineAware(DEADLINE_S))

    naive, resilient = benchmark.pedantic(run, rounds=1, iterations=1)

    emit(
        results_dir,
        "netchaos_storm",
        f"shared-LTE storm: {N_DEVICES} devices x {N_PER_DEVICE:,} requests/arm\n"
        f"naive      SLO {naive.slo_attainment:.1%} | "
        f"retx amp {naive.retx_amplification:.2f}x | "
        f"{sum(d.carrier_drops for d in naive.devices)} carrier drops | "
        f"{sum(d.sessions for d in naive.devices)} sessions\n"
        f"resilient  SLO {resilient.slo_attainment:.1%} | "
        f"offloaded {resilient.n_offloaded:,} | "
        f"local {resilient.n_local:,}\n"
        f"ledger: lost {naive.n_lost + resilient.n_lost} | "
        f"double-delivered "
        f"{naive.n_double_delivered + resilient.n_double_delivered}",
    )

    n_total = N_DEVICES * N_PER_DEVICE
    assert naive.n_requests == resilient.n_requests == n_total
    # The exactly-once ledger survives a million-transfer storm...
    assert naive.n_lost == 0 and resilient.n_lost == 0
    assert naive.n_double_delivered == 0 and resilient.n_double_delivered == 0
    # ...the amplification bound holds at scale...
    assert naive.retx_amplification <= 8.0
    # ...the storm genuinely battered the sessions...
    assert sum(d.carrier_drops for d in naive.devices) >= 1
    # ...and the deadline-aware arm strictly won while still offloading.
    assert resilient.slo_attainment > naive.slo_attainment
    assert resilient.n_offloaded > 0
