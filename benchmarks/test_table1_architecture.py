"""Table I bench — regenerates the converting-AE architecture table and
times one AE conversion pass per dataset architecture."""

import numpy as np
import pytest

from repro.experiments.table1 import run_table1
from repro.models.autoencoder import TABLE1_SPECS, ConvertingAutoencoder

from conftest import emit


def test_regenerate_table1(benchmark, results_dir):
    result = benchmark.pedantic(run_table1, rounds=1, iterations=1)
    emit(results_dir, "table1", result.rendered)
    # Every Table-I row must be present with the paper's exact sizes.
    for name, spec in TABLE1_SPECS.items():
        assert name in result.rendered
        rows = [
            r for r in result.rows
            if r["dataset"] == name and r["layer"].startswith("Fully")
        ]
        assert [r["size"] for r in rows] == [*spec.layer_sizes, spec.input_dim]
        assert [r["activation"] for r in rows] == [
            *spec.activations,
            spec.output_activation,
        ]


@pytest.mark.parametrize("dataset", list(TABLE1_SPECS))
def test_autoencoder_forward_throughput(benchmark, dataset):
    """Wall-clock cost of the AE conversion stage (batch of 256)."""
    model = ConvertingAutoencoder.for_dataset(dataset, rng=0)
    batch = np.random.default_rng(0).random((256, 784), dtype=np.float32)
    out = benchmark(model.convert, batch)
    assert out.shape == (256, 784)
