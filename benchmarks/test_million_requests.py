"""Scale bench — a million-request cluster trace in seconds.

The ROADMAP's north star is traffic from millions of users; this bench
proves the simulation core actually scales there.  One trained CBNet
model is precomputed into an inference-oracle table
(:mod:`repro.sim.oracle`), a four-replica cluster replays a Zipf-skewed
1M-request Poisson trace against it, and the structure-of-arrays request
log keeps the event loop at heap-pops plus array writes.  Every request
is genuinely served — routed, batched, cached, and answered with the
model's real predictions (via the table) — so the report's accuracy
column is meaningful at this scale too.
"""

import numpy as np

from repro.cluster.engine import Cluster
from repro.hw.devices import gci_cpu
from repro.serving.arrivals import poisson_arrivals, zipf_popularity
from repro.serving.backends import CBNetBackend
from repro.sim import oracle_backend

from conftest import emit

N_REQUESTS = 1_000_000
N_REPLICAS = 4


def test_million_request_cluster_trace(benchmark, results_dir, mnist_artifacts):
    test = mnist_artifacts.datasets["test"]
    device = gci_cpu()
    base = CBNetBackend(mnist_artifacts.cbnet, device)
    # One memoized table feeds all four replicas.
    backends = [oracle_backend(base, test.images) for _ in range(N_REPLICAS)]

    max_batch = 32
    capacity_hz = N_REPLICAS / backends[0].mean_service_s(batch_size=max_batch)
    rng = np.random.default_rng(0)
    ids = zipf_popularity(len(test.images), N_REQUESTS, exponent=0.9, rng=rng)
    arrival_s = poisson_arrivals(0.7 * capacity_hz, N_REQUESTS, rng=rng)
    labels = test.labels[ids]

    def run():
        cluster = Cluster(
            list(backends),
            policy="round-robin",
            slo_s=0.05,
            max_batch_size=max_batch,
            max_wait_s=0.002,
            cache_capacity=512,
            rng=0,
        )
        return cluster.serve(ids, arrival_s, labels=labels, scenario="million")

    report = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        results_dir,
        "million_requests",
        f"{report.summary()}\n"
        f"{report.n_requests:,} requests | {report.n_cached:,} cache hits | "
        f"mean batch {report.mean_batch_size:.1f} | acc {report.accuracy:.1%}",
    )

    assert report.n_requests == N_REQUESTS
    assert report.n_served == N_REQUESTS  # nothing shed or stranded
    assert report.n_cached > 0  # the hot Zipf head hits the cluster cache
    assert report.accuracy > 0.9  # real (table) predictions, end to end
    assert np.isfinite(report.p99_s)
