"""Scale bench — a million-request cluster trace in seconds.

The ROADMAP's north star is traffic from millions of users; this bench
proves the simulation core actually scales there.  One trained CBNet
model is precomputed into an inference-oracle table
(:mod:`repro.sim.oracle`), a four-replica cluster replays a Zipf-skewed
1M-request Poisson trace against it, and the structure-of-arrays request
log keeps the event loop at heap-pops plus array writes.  Every request
is genuinely served — routed, batched, cached, and answered with the
model's real predictions (via the table) — so the report's accuracy
column is meaningful at this scale too.
"""

import numpy as np

from repro.cluster.admission import WeightedFairAdmission
from repro.cluster.engine import Cluster
from repro.hw.devices import gci_cpu
from repro.serving.arrivals import class_mix, poisson_arrivals, zipf_popularity
from repro.serving.backends import CBNetBackend
from repro.serving.classes import default_classes
from repro.sim import oracle_backend

from conftest import emit

N_REQUESTS = 1_000_000
N_REPLICAS = 4


def test_million_request_cluster_trace(benchmark, results_dir, mnist_artifacts):
    test = mnist_artifacts.datasets["test"]
    device = gci_cpu()
    base = CBNetBackend(mnist_artifacts.cbnet, device)
    # One memoized table feeds all four replicas.
    backends = [oracle_backend(base, test.images) for _ in range(N_REPLICAS)]

    max_batch = 32
    capacity_hz = N_REPLICAS / backends[0].mean_service_s(batch_size=max_batch)
    rng = np.random.default_rng(0)
    ids = zipf_popularity(len(test.images), N_REQUESTS, exponent=0.9, rng=rng)
    arrival_s = poisson_arrivals(0.7 * capacity_hz, N_REQUESTS, rng=rng)
    labels = test.labels[ids]

    def run():
        cluster = Cluster(
            list(backends),
            policy="round-robin",
            slo_s=0.05,
            max_batch_size=max_batch,
            max_wait_s=0.002,
            cache_capacity=512,
            rng=0,
        )
        return cluster.serve(ids, arrival_s, labels=labels, scenario="million")

    report = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        results_dir,
        "million_requests",
        f"{report.summary()}\n"
        f"{report.n_requests:,} requests | {report.n_cached:,} cache hits | "
        f"mean batch {report.mean_batch_size:.1f} | acc {report.accuracy:.1%}",
    )

    assert report.n_requests == N_REQUESTS
    assert report.n_served == N_REQUESTS  # nothing shed or stranded
    assert report.n_cached > 0  # the hot Zipf head hits the cluster cache
    assert report.accuracy > 0.9  # real (table) predictions, end to end
    assert np.isfinite(report.p99_s)


def test_million_request_multitenant_trace(benchmark, results_dir, mnist_artifacts):
    """The multi-tenant stack at the same scale: a mixed-class 1M-request
    trace at 1.2x capacity through priority batching and weighted-fair
    admission, with the per-class invariants asserted on the result."""
    test = mnist_artifacts.datasets["test"]
    base = CBNetBackend(mnist_artifacts.cbnet, gci_cpu())
    backends = [oracle_backend(base, test.images) for _ in range(N_REPLICAS)]

    max_batch = 32
    max_wait_s = 0.002
    unit_service = backends[0].mean_service_s(batch_size=max_batch)
    capacity_hz = N_REPLICAS / unit_service
    classes = default_classes(
        slo_s=3.0 * (unit_service * max_batch + max_wait_s), max_wait_s=max_wait_s
    )
    rng = np.random.default_rng(1)
    ids = zipf_popularity(len(test.images), N_REQUESTS, exponent=0.9, rng=rng)
    arrival_s = poisson_arrivals(1.2 * capacity_hz, N_REQUESTS, rng=rng)
    codes = class_mix(N_REQUESTS, np.array([0.5, 0.3, 0.2]), rng)
    labels = test.labels[ids]

    def run():
        cluster = Cluster(
            list(backends),
            policy="least-outstanding",
            admission=WeightedFairAdmission(
                classes, max_outstanding=8 * max_batch * N_REPLICAS
            ),
            slo_s=classes[0].deadline_s,
            classes=classes,
            scheduler="priority",
            max_batch_size=max_batch,
            max_wait_s=max_wait_s,
            cache_capacity=0,
            rng=0,
        )
        return cluster.serve(
            ids, arrival_s, labels=labels, scenario="million-tenants",
            request_classes=codes,
        )

    report = benchmark.pedantic(run, rounds=1, iterations=1)
    inter, standard, batch = report.class_reports
    emit(
        results_dir,
        "million_tenants",
        f"{report.summary()}\n"
        + "\n".join(
            f"{r.name}: {r.n_requests:,} requests | served {r.n_served:,} | "
            f"shed {r.shed_rate:.1%} | p99 {r.p99_s * 1e3:.2f} ms | "
            f"SLO {r.slo_attainment:.1%}"
            for r in report.class_reports
        ),
    )

    assert report.n_requests == N_REQUESTS
    assert sum(r.n_requests for r in report.class_reports) == N_REQUESTS
    for r in report.class_reports:
        assert r.n_served + r.n_shed + r.n_unserved == r.n_requests
        assert r.n_unserved == 0  # everything admitted was dispatched
        assert r.accuracy > 0.9
    # Priority scheduling holds the interactive tail under overload while
    # the weighted-fair reserve keeps batch flowing.
    assert inter.slo_attainment > 0.95
    assert inter.p99_s < batch.p99_s
    assert batch.n_served > 0
