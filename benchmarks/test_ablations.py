"""Ablation benches (DESIGN.md §5) — design-choice sweeps beyond the
paper's own evaluation."""

import pytest

from repro.experiments.ablations import (
    run_activation_ablation,
    run_bottleneck_ablation,
    run_hard_fraction_sweep,
    run_threshold_sweep,
)

from conftest import emit


def test_bottleneck_width_ablation(benchmark, results_dir):
    result = benchmark.pedantic(
        run_bottleneck_ablation,
        kwargs={"dataset": "mnist", "widths": (8, 32, 128), "seed": 0},
        rounds=1,
        iterations=1,
    )
    emit(results_dir, "ablation_bottleneck", result.render())
    accs = {r.setting: r.metrics["cbnet acc (%)"] for r in result.rows}
    # Table I's choice (32) should not be dominated by the tiny bottleneck.
    assert accs["bottleneck=32"] >= accs["bottleneck=8"] - 1.0
    # Latency grows with bottleneck width.
    lats = [r.metrics["ae latency (ms)"] for r in result.rows]
    assert lats[0] <= lats[-1]


def test_activation_head_ablation(benchmark, results_dir):
    result = benchmark.pedantic(
        run_activation_ablation,
        kwargs={"dataset": "mnist", "seed": 0},
        rounds=1,
        iterations=1,
    )
    emit(results_dir, "ablation_activation", result.render())
    accs = {r.setting: r.metrics["cbnet acc (%)"] for r in result.rows}
    # Both reconstruction heads must be functional (no collapse to chance).
    assert accs["head=softmax"] > 80.0
    assert accs["head=sigmoid"] > 80.0


def test_threshold_sweep(benchmark, results_dir, fmnist_artifacts):
    result = benchmark.pedantic(
        run_threshold_sweep,
        kwargs={"dataset": "fmnist", "fast": True, "seed": 0},
        rounds=1,
        iterations=1,
    )
    emit(results_dir, "ablation_threshold", result.render())
    rates = [r.metrics["exit rate (%)"] for r in result.rows]
    assert rates == sorted(rates)  # exit rate monotone in threshold
    speedups = [r.metrics["branchy speedup"] for r in result.rows]
    assert speedups == sorted(speedups)


def test_hard_fraction_sweep(benchmark, results_dir):
    """Generalized Fig. 3: BranchyNet degrades with hardness, CBNet flat."""
    result = benchmark.pedantic(
        run_hard_fraction_sweep,
        kwargs={"dataset": "mnist", "fractions": (0.05, 0.4), "seed": 0},
        rounds=1,
        iterations=1,
    )
    emit(results_dir, "ablation_hard_fraction", result.render())
    rows = {r.setting: r.metrics for r in result.rows}
    assert rows["hard=40%"]["branchy lat (ms)"] > rows["hard=5%"]["branchy lat (ms)"]
    assert rows["hard=40%"]["cbnet lat (ms)"] == pytest.approx(
        rows["hard=5%"]["cbnet lat (ms)"], rel=0.05
    )
