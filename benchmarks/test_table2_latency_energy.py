"""Table II bench — the paper's headline grid: latency per image, energy
savings w.r.t. LeNet, and accuracy for LeNet / BranchyNet / CBNet across
MNIST / FMNIST / KMNIST and the three devices.

Shape assertions encode the paper's qualitative claims:
* CBNet is the fastest model on every (dataset, device) cell;
* CBNet saves >=60% energy vs LeNet everywhere (paper: 80-85% on CPU
  devices, 66-81% on GPU);
* CBNet accuracy is within ~2.5 points of BranchyNet;
* CBNet's latency is nearly dataset-independent while BranchyNet's grows
  with the hard fraction;
* early-exit rates order as the paper's: MNIST > FMNIST > KMNIST.
"""

import pytest

from repro.eval.runner import evaluate_dataset
from repro.experiments.common import FAST, lenet_for
from repro.experiments.table2 import Table2Result

from conftest import emit

_DEVICES = ("raspberry-pi4", "gci-cpu", "gci-k80")


def _build_table2(mnist_artifacts, fmnist_artifacts, kmnist_artifacts):
    result = Table2Result()
    for artifacts in (mnist_artifacts, fmnist_artifacts, kmnist_artifacts):
        name = artifacts.config.dataset
        lenet = lenet_for(name, FAST, seed=0)
        result.evaluations[name] = evaluate_dataset(artifacts, lenet)
    return result


def test_regenerate_table2(
    benchmark, results_dir, mnist_artifacts, fmnist_artifacts, kmnist_artifacts
):
    table2 = benchmark.pedantic(
        _build_table2,
        args=(mnist_artifacts, fmnist_artifacts, kmnist_artifacts),
        rounds=1,
        iterations=1,
    )
    emit(results_dir, "table2", table2.render())
    assert set(table2.evaluations) == {"mnist", "fmnist", "kmnist"}

    # CBNet wins every cell.
    for ev in table2.evaluations.values():
        for device in _DEVICES:
            t_cb = ev.cell("cbnet", device).latency_ms
            assert t_cb < ev.cell("branchynet", device).latency_ms
            assert t_cb < ev.cell("lenet", device).latency_ms

    # Energy savings magnitudes (paper: 66-86%).
    for ev in table2.evaluations.values():
        for device in _DEVICES:
            savings = ev.cell("cbnet", device).energy_savings_vs_lenet_pct
            assert savings >= 60.0, (ev.dataset, device, savings)

    # Accuracy parity with BranchyNet ("similar or higher accuracy").
    for ev in table2.evaluations.values():
        cb = ev.cell("cbnet", "raspberry-pi4").accuracy_pct
        br = ev.cell("branchynet", "raspberry-pi4").accuracy_pct
        assert cb >= br - 3.0, (ev.dataset, cb, br)

    # CBNet latency is dataset-independent; BranchyNet's tracks hardness.
    cb_lats = [
        ev.cell("cbnet", "raspberry-pi4").latency_ms
        for ev in table2.evaluations.values()
    ]
    assert max(cb_lats) / min(cb_lats) < 1.15
    pairs = sorted(
        (ev.early_exit_rate, ev.cell("branchynet", "raspberry-pi4").latency_ms)
        for ev in table2.evaluations.values()
    )
    branchy_lats = [lat for _, lat in pairs]
    assert branchy_lats == sorted(branchy_lats, reverse=True)

    # Exit-rate ordering (paper §IV-D: 94.9% > 76.9% > 63.1%).
    rates = {name: ev.early_exit_rate for name, ev in table2.evaluations.items()}
    assert rates["mnist"] > rates["fmnist"] > rates["kmnist"]

    # AE share of CBNet latency (paper: up to ~25%).
    for ev in table2.evaluations.values():
        assert 0.05 < ev.ae_latency_share["raspberry-pi4"] < 0.35


def test_cbnet_inference_wallclock(benchmark, mnist_artifacts):
    """Real NumPy wall-clock of full CBNet inference (500 images)."""
    test = mnist_artifacts.datasets["test"]
    preds = benchmark(mnist_artifacts.cbnet.predict, test.images[:500])
    assert preds.shape == (500,)


def test_lenet_inference_wallclock(benchmark, mnist_lenet, mnist_artifacts):
    test = mnist_artifacts.datasets["test"]
    preds = benchmark(mnist_lenet.predict, test.images[:500])
    assert preds.shape == (500,)
