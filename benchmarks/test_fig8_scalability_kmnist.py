"""Fig. 8 bench — scalability analysis on KMNIST across all devices.

KMNIST has the lowest early-exit rate in the paper (63.08%), so the
BranchyNet-CBNet gap is the widest of the three datasets.
"""

import pytest

from repro.experiments.scalability import run_scalability

from conftest import emit


def test_regenerate_fig8(benchmark, results_dir, kmnist_artifacts, mnist_artifacts):
    fig8 = benchmark.pedantic(
        run_scalability,
        args=("kmnist",),
        kwargs={"artifacts": kmnist_artifacts},
        rounds=1,
        iterations=1,
    )
    text = "\n\n".join(
        fig8.render(device) for device in ("raspberry-pi4", "gci-cpu", "gci-k80")
    )
    emit(results_dir, "fig8_kmnist", text)
    assert len(fig8.points) == 10

    # Gap widens with size.
    gaps = [
        p.branchy_total_s["raspberry-pi4"] - p.cbnet_total_s["raspberry-pi4"]
        for p in fig8.points
    ]
    assert gaps[-1] > gaps[0]

    # KMNIST has a lower exit rate than MNIST (paper: 63.1% vs 94.9%).
    fig6 = run_scalability("mnist", artifacts=mnist_artifacts)
    assert fig8.points[-1].exit_rate < fig6.points[-1].exit_rate

    # And the widest BranchyNet/CBNet ratio of the three datasets.
    p = fig8.points[-1]
    ratio = p.branchy_total_s["raspberry-pi4"] / p.cbnet_total_s["raspberry-pi4"]
    assert ratio > 1.7

    # Device ordering holds at every ratio.
    for point in fig8.points:
        assert (
            point.cbnet_total_s["raspberry-pi4"]
            > point.cbnet_total_s["gci-cpu"]
            > point.cbnet_total_s["gci-k80"]
        )


def test_kmnist_inference_wallclock(benchmark, kmnist_artifacts):
    test = kmnist_artifacts.datasets["test"]
    preds = benchmark(kmnist_artifacts.cbnet.predict, test.images[:300])
    assert preds.shape == (300,)
