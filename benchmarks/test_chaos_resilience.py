"""Scale bench — a million-request fault storm, defended vs naive.

The resilience layer (:mod:`repro.faults`) must hold up at the
ROADMAP's millions-of-users scale: this bench replays one seeded storm
(slowdown, partition, flaky windows, and a crash/recover cycle) over a
1M-request Zipf/Poisson trace through a four-replica oracle-backed
CBNet fleet, twice — once naive, once behind timeouts, retries,
hedging, and circuit breakers.  The timed quantity is both arms end to
end (2M judged requests plus every resilience timer), and the
acceptance property rides along: the defended arm strictly beats the
naive arm on availability and interactive p99 SLO attainment.
"""

import numpy as np

from repro.experiments.chaos import run_chaos_comparison
from repro.serving.backends import CBNetBackend
from repro.hw.devices import gci_cpu

from conftest import emit

N_REQUESTS = 1_000_000
N_REPLICAS = 4


def test_million_request_chaos_storm(benchmark, results_dir, mnist_artifacts):
    test = mnist_artifacts.datasets["test"]
    device = gci_cpu()
    backends = [
        CBNetBackend(mnist_artifacts.cbnet, device) for _ in range(N_REPLICAS)
    ]

    def run():
        # Oracle mode by default: one memoized table serves both arms.
        return run_chaos_comparison(
            seed=0,
            n_requests=N_REQUESTS,
            backends=list(backends),
            images=test.images,
            labels=test.labels,
        )

    cmp = benchmark.pedantic(run, rounds=1, iterations=1)
    naive, resilient = cmp.naive, cmp.resilient
    emit(
        results_dir,
        "chaos_resilience",
        cmp.render()
        + "\n"
        + f"{naive.n_requests:,} requests per arm | "
        f"{resilient.n_retried:,} retried | {resilient.n_hedged:,} hedged | "
        f"{resilient.n_timed_out:,} timed out | "
        f"{resilient.n_breaker_trips} breaker trips",
    )

    assert naive.n_requests == resilient.n_requests == N_REQUESTS
    # The storm really hurt the undefended fleet...
    assert naive.n_unserved > 0
    assert naive.n_batch_failures > 0
    # ...and the defences strictly won on both headline metrics.
    assert resilient.availability > naive.availability
    assert resilient.slo_attainment > naive.slo_attainment
    # The defences actually fired (not a storm the fleet slept through).
    assert resilient.n_retried > 0
    assert resilient.n_breaker_trips > 0
    # Real (table) predictions end to end, at scale, under chaos.
    assert resilient.accuracy > 0.9
    assert np.isfinite(resilient.p99_s)
