"""Microbenchmarks of the NumPy DL substrate's hot kernels.

Not a paper figure — these guard the performance of the kernels every
experiment runs on (im2col conv, GEMM dense, pooling, AE training step),
so substrate regressions surface in benchmark history rather than as
mysteriously slow experiment reruns.

Inference benchmarks run through the compiled fast path
(:mod:`repro.nn.fastpath`) — the path serving traffic takes — with
``*_reference`` twins pinning the autograd path, so every recorded
``BENCH_<n>.json`` carries the fastpath-vs-reference ratio.
"""

import numpy as np

from repro.nn import Tensor, fastpath, functional as F, no_grad
from repro.nn.layers import Conv2d, Linear
from repro.models import BranchyLeNet, LeNet

rng = np.random.default_rng(0)


def test_conv2d_forward(benchmark):
    """Single conv layer through the compiled plan (cached im2col indices,
    fused bias+ReLU-free GEMM, arena buffers)."""
    x = rng.random((64, 4, 12, 12), dtype=np.float32)
    conv = Conv2d(4, 20, kernel_size=5, rng=np.random.default_rng(0))
    plan = fastpath.compile_plan(conv, x.shape)
    with no_grad():
        ref = conv(Tensor(x)).data
    out = benchmark(plan.run, x)
    assert out.shape == (64, 20, 8, 8)
    np.testing.assert_allclose(out, ref, atol=1e-5)


def test_conv2d_forward_reference(benchmark):
    """The seed autograd conv path — the denominator of the speedup claim."""
    x = Tensor(rng.random((64, 4, 12, 12), dtype=np.float32))
    conv = Conv2d(4, 20, kernel_size=5, rng=np.random.default_rng(0))
    with no_grad():
        out = benchmark(conv, x)
    assert out.shape == (64, 20, 8, 8)


def test_conv2d_train_step(benchmark):
    x = Tensor(rng.random((32, 1, 28, 28), dtype=np.float32))
    conv = Conv2d(1, 4, kernel_size=5, rng=np.random.default_rng(0))

    def step():
        conv.zero_grad()
        out = conv(x)
        (out * out).mean().backward()
        return out

    out = benchmark(step)
    assert conv.weight.grad is not None


def test_dense_forward(benchmark):
    x = Tensor(rng.random((256, 784), dtype=np.float32))
    layer = Linear(784, 784, rng=np.random.default_rng(0))
    with no_grad():
        out = benchmark(layer, x)
    assert out.shape == (256, 784)


def test_maxpool_forward(benchmark):
    x = Tensor(rng.random((128, 20, 8, 8), dtype=np.float32))
    with no_grad():
        out = benchmark(F.max_pool2d, x, 2)
    assert out.shape == (128, 20, 4, 4)


def test_lenet_batch_inference(benchmark):
    model = LeNet(rng=0)
    images = rng.random((256, 1, 28, 28), dtype=np.float32)
    preds = benchmark(model.predict, images)
    assert preds.shape == (256,)
    # The two paths reduce GEMMs in different orders, so near-tied logits
    # may flip argmax on some BLAS builds; logits-level equivalence at
    # atol=1e-5 is asserted by tests/nn/test_fastpath.py.
    assert (preds == model.predict(images, fastpath=False)).mean() > 0.99


def test_lenet_batch_inference_reference(benchmark):
    model = LeNet(rng=0)
    images = rng.random((256, 1, 28, 28), dtype=np.float32)
    preds = benchmark(model.predict, images, fastpath=False)
    assert preds.shape == (256,)


def test_branchynet_gated_inference(benchmark):
    model = BranchyLeNet(rng=0)
    images = rng.random((256, 1, 28, 28), dtype=np.float32)
    result = benchmark(model.infer, images, 0.5)
    assert result.predictions.shape == (256,)


def test_cross_entropy_backward(benchmark):
    logits_data = rng.standard_normal((512, 10)).astype(np.float32)
    labels = rng.integers(0, 10, 512)

    def step():
        logits = Tensor(logits_data, requires_grad=True)
        F.cross_entropy(logits, labels).backward()
        return logits.grad

    grad = benchmark(step)
    assert grad.shape == (512, 10)


def test_dataset_generation(benchmark):
    from repro.data.synth.digits import render_digits

    labels = np.arange(200) % 10
    images = benchmark(render_digits, labels, np.random.default_rng(0))
    assert images.shape == (200, 28, 28)
