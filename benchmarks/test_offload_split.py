"""Extension bench — edge–cloud offloading (`repro.offload`).

Runs the offload studies end to end on trained models: the partition
sweep across link presets, the four runtime policies on the pi4 → GCI
topology over LTE, and the wire-codec comparison.  The asserted claim
is the subsystem's reason to exist: at a load sized past both the Pi's
full-model capacity and the LTE uplink's raw-image capacity, only the
entropy-gated split (easy samples exit on-device, hard samples ship a
stem activation) keeps its p95 under control.
"""

from repro.experiments.offload import run_offload_study

from conftest import emit


def test_offload_split_study(benchmark, results_dir):
    study = benchmark.pedantic(
        lambda: run_offload_study(fast=True, seed=0), rounds=1, iterations=1
    )
    emit(results_dir, "offload_split", study.render())

    # The load sizing the claim depends on — fail loudly (and readably)
    # if device/link calibration drifts rather than asserting into noise.
    rate = study.arrival_rate_hz
    assert rate * study.local_mean_s > 1.0, "load must exceed all-local capacity"
    assert rate * study.uplink_occupancy_s > 1.0, "load must exceed raw-image uplink capacity"
    assert rate * study.gate_s < 0.95, "gated edge must keep headroom"

    gated = study.report_for("entropy-gated")
    local = study.report_for("always-local")
    remote = study.report_for("always-remote")

    # The tentpole claim: the split beats both degenerate placements at
    # the tail — on-device melts at the Pi, full offload melts at the
    # uplink, the communication-aware split does neither.
    assert gated.p95_s < local.p95_s, "gated split should beat always-local p95 on pi4"
    assert gated.p95_s < remote.p95_s, "gated split should beat always-remote p95 over LTE"

    # Offload rate ~ the hard fraction: real but small, and the uplink
    # carries orders of magnitude fewer bytes than full offloading.
    assert 0.0 < gated.offload_rate < 0.5
    assert gated.uplink_bytes < 0.25 * remote.uplink_bytes
    assert gated.n_local_easy + gated.n_local_hard + gated.n_offloaded == gated.n_requests

    # Genuine served predictions on both sides of the split.
    assert gated.accuracy > 0.9
    assert local.accuracy > 0.9

    # The deadline policy may keep hard work local when the link is the
    # slower path, but must never do worse than the melting baselines.
    deadline = study.report_for("deadline-aware")
    assert deadline.p95_s < local.p95_s
    assert deadline.p95_s < remote.p95_s

    # Wire codecs: quantized activations shrink the uplink (2x float16,
    # ~4x affine uint8; the k-means codebook variant pays a 1 KB
    # overhead per payload so it lands between) and the genuinely-served
    # accuracy stays within 2 points of float32.
    f32, f16, u8, km8 = study.codec_reports
    assert f16.uplink_bytes < 0.6 * f32.uplink_bytes
    assert u8.uplink_bytes < 0.3 * f32.uplink_bytes
    assert u8.uplink_bytes < km8.uplink_bytes < f32.uplink_bytes
    for quantized in (f16, u8, km8):
        assert quantized.accuracy > f32.accuracy - 0.02
