"""Fig. 3 bench — BranchyNet speedup over LeNet vs hard-sample fraction.

Paper reading: ~5.5x speedup on MNIST (5% hard) collapsing to ~1.7x on
FMNIST (23% hard).  The reproduction must show the same *ordering* and a
clearly shrinking gap.
"""

import pytest

from repro.experiments.fig3 import run_fig3

from conftest import emit


def test_regenerate_fig3(benchmark, results_dir, mnist_artifacts, fmnist_artifacts):
    # Pipelines already trained by the fixtures (disk-cached); the
    # benchmarked call measures exit-rate measurement + latency modelling.
    fig3 = benchmark.pedantic(run_fig3, kwargs={"fast": True}, rounds=1, iterations=1)
    emit(results_dir, "fig3", fig3.render())
    by_name = {p.dataset: p for p in fig3.points}
    assert set(by_name) == {"mnist", "fmnist"}

    # The figure's core claim: speedup shrinks as hard fraction grows.
    assert by_name["fmnist"].hard_sample_pct > by_name["mnist"].hard_sample_pct
    assert by_name["mnist"].speedup > by_name["fmnist"].speedup
    # Magnitudes (paper: 5.5x vs 1.7x — require >2.5x and a visible gap).
    assert by_name["mnist"].speedup > 2.5
    assert by_name["mnist"].speedup / by_name["fmnist"].speedup > 1.15


def test_branchynet_inference_wallclock(benchmark, mnist_artifacts):
    """Real NumPy wall-clock of gated BranchyNet inference (500 images)."""
    test = mnist_artifacts.datasets["test"]
    images = test.images[:500]
    result = benchmark(mnist_artifacts.branchynet.infer, images)
    assert result.predictions.shape == (500,)
