"""Extension bench — tail latency under load (not a paper figure).

The paper compares mean per-image latency; this bench quantifies what
the static pipeline buys at the *tail*: CBNet's constant service time vs
BranchyNet's bimodal one under Poisson arrivals on the Pi-4 profile.
"""

import pytest

from repro.eval.tables import Table
from repro.hw.devices import raspberry_pi4
from repro.hw.latency import branchynet_expected_latency, cbnet_latency
from repro.hw.serving import bimodal_service_sampler, simulate_serving

from conftest import emit


def test_tail_latency_under_load(benchmark, results_dir, mnist_artifacts):
    device = raspberry_pi4()
    test = mnist_artifacts.datasets["test"]
    exit_rate = mnist_artifacts.branchynet.infer(test.images).early_exit_rate
    branchy = branchynet_expected_latency(mnist_artifacts.branchynet, device, exit_rate)
    t_cbnet = cbnet_latency(mnist_artifacts.cbnet, device).total

    # Arrival rate at ~70% utilization of the *slower* system.
    rate = 0.7 / branchy.expected

    def run():
        cb = simulate_serving(t_cbnet, rate, n_requests=30_000, rng=0)
        br = simulate_serving(
            bimodal_service_sampler(branchy.early_path, branchy.full_path, exit_rate),
            rate,
            n_requests=30_000,
            rng=0,
        )
        return cb, br

    cb, br = benchmark.pedantic(run, rounds=1, iterations=1)

    table = Table(
        headers=["system", "mean (ms)", "p95 (ms)", "p99 (ms)", "server util"],
        title=f"Serving tails on Pi 4 @ {rate:.0f} req/s (exit rate {exit_rate:.0%})",
    )
    for name, stats in (("CBNet", cb), ("BranchyNet", br)):
        table.add_row(
            name,
            f"{stats.mean_s * 1e3:.2f}",
            f"{stats.p95_s * 1e3:.2f}",
            f"{stats.p99_s * 1e3:.2f}",
            f"{stats.utilization:.0%}",
        )
    emit(results_dir, "serving_tails", table.render())

    # CBNet wins the mean and wins the tail by at least as much.
    assert cb.mean_s < br.mean_s
    assert cb.p99_s < br.p99_s
    assert br.p99_s / cb.p99_s >= br.mean_s / cb.mean_s * 0.95
