"""Extension bench — multi-tenant SLO classes (`repro.serving.classes`).

Runs the tenants experiment end to end on trained models: the FIFO
control arm and the priority stack (priority-aware micro-batching +
weighted-fair admission) replay one diurnal interactive/standard/batch
trace whose peak exceeds the CBNet fleet's capacity.  The acceptance
claim is asserted, not eyeballed: priority must beat FIFO on
interactive p99 SLO attainment under overload without starving the
batch class.
"""

from repro.experiments.tenants import run_tenants_comparison

from conftest import emit


def test_tenants_priority_vs_fifo(benchmark, results_dir):
    comp = benchmark.pedantic(
        lambda: run_tenants_comparison(fast=True, seed=0), rounds=1, iterations=1
    )
    emit(results_dir, "tenants", comp.render())

    code = comp.classes.code
    fifo = comp.report_for("fifo").class_reports
    prio = comp.report_for("priority").class_reports

    # The headline: priority wins the interactive tail outright.
    inter = code("interactive")
    assert prio[inter].slo_attainment > fifo[inter].slo_attainment
    assert prio[inter].p99_s < fifo[inter].p99_s

    # ... without starving batch: the weighted-fair reserve keeps it
    # admitted, and the scheduler eventually dispatches everything it
    # admits (deferred, not dropped).
    batch = code("batch")
    assert prio[batch].n_served > 0
    assert prio[batch].n_unserved == 0

    # Conservation and real predictions on both arms.
    for reports, report in ((fifo, comp.report_for("fifo")),
                            (prio, comp.report_for("priority"))):
        assert sum(r.n_requests for r in reports) == report.n_requests
        for r in reports:
            assert r.n_served + r.n_shed + r.n_unserved == r.n_requests
            if r.n_served:
                assert r.accuracy > 0.9
