"""Scale bench — the observability overhead gate at a million requests.

The observability contract is ≤10% overhead traced, ~0% disabled: the
hot loop only appends sparse rows (one per dispatched batch, one per
rare event), finalize is O(1), and every derived view (metric
aggregates, SLO windows, the dense per-request span tree) is
synthesized vectorized on first read.  This bench replays the same
1M-request
Zipf/Poisson cluster trace as ``test_million_requests`` twice — once
bare, once with an :class:`~repro.obs.Observer` attached — records both
medians for the ``BENCH_<n>.json`` trajectory, and asserts the traced
run inside 1.10x of the untraced one.

The in-test gate compares **min over rounds** against untraced rounds
timed *immediately adjacent* to the traced ones (inside the traced
test): the observability cost is deterministic additive work while
scheduler noise is strictly positive, so min-vs-min over temporally
adjacent measurements isolates the true overhead on a noisy box —
arms measured minutes apart see different machine load.
"""

import time

import numpy as np

from repro.cluster.engine import Cluster
from repro.hw.devices import gci_cpu
from repro.obs import Observer
from repro.serving.arrivals import poisson_arrivals, zipf_popularity
from repro.serving.backends import CBNetBackend
from repro.sim import oracle_backend

from conftest import emit

N_REQUESTS = 1_000_000
N_REPLICAS = 4

#: Per-arm stats shared across the two tests in this file (pytest runs
#: them in definition order within one session).
_STATS: dict[str, float] = {}


def _trace(mnist_artifacts):
    test = mnist_artifacts.datasets["test"]
    base = CBNetBackend(mnist_artifacts.cbnet, gci_cpu())
    backends = [oracle_backend(base, test.images) for _ in range(N_REPLICAS)]
    max_batch = 32
    capacity_hz = N_REPLICAS / backends[0].mean_service_s(batch_size=max_batch)
    rng = np.random.default_rng(0)
    ids = zipf_popularity(len(test.images), N_REQUESTS, exponent=0.9, rng=rng)
    arrival_s = poisson_arrivals(0.7 * capacity_hz, N_REQUESTS, rng=rng)
    return backends, ids, arrival_s, test.labels[ids], max_batch


def _serve(backends, ids, arrival_s, labels, max_batch, obs):
    cluster = Cluster(
        list(backends),
        policy="round-robin",
        slo_s=0.05,
        max_batch_size=max_batch,
        max_wait_s=0.002,
        cache_capacity=512,
        rng=0,
        obs=obs,
    )
    return cluster.serve(ids, arrival_s, labels=labels, scenario="obs-overhead")


def test_million_request_untraced(benchmark, results_dir, mnist_artifacts):
    """The bare arm: identical trace, no observer (the denominator)."""
    args = _trace(mnist_artifacts)

    report = benchmark.pedantic(lambda: _serve(*args, obs=None), rounds=4, iterations=1)
    _STATS["untraced_min"] = benchmark.stats.stats.min
    emit(
        results_dir,
        "obs_overhead_untraced",
        f"{report.summary()}\n"
        f"untraced median {benchmark.stats.stats.median:.3f}s "
        f"(min {_STATS['untraced_min']:.3f}s)",
    )
    assert report.n_requests == N_REQUESTS
    assert report.n_served == N_REQUESTS


def test_million_request_traced(benchmark, results_dir, mnist_artifacts):
    """The traced arm: full telemetry on, within 1.10x of the bare arm."""
    args = _trace(mnist_artifacts)
    observers = []

    def run():
        obs = Observer()
        observers.append(obs)
        return _serve(*args, obs=obs)

    report = benchmark.pedantic(run, rounds=4, iterations=1)
    traced_min = benchmark.stats.stats.min
    obs = observers[-1]

    # Time untraced rounds *now*, adjacent to the traced rounds just
    # measured, so the gate compares the two arms under the same
    # machine-load regime regardless of what ran earlier in the
    # session.  (The untraced pytest-benchmark test still provides the
    # BENCH_<n>.json median.)
    bare = []
    for _ in range(2):
        t0 = time.perf_counter()
        _serve(*args, obs=None)
        bare.append(time.perf_counter() - t0)
    bare_min = min(bare)
    ratio = traced_min / bare_min
    session_ratio = (
        traced_min / _STATS["untraced_min"] if "untraced_min" in _STATS else float("nan")
    )
    emit(
        results_dir,
        "obs_overhead_traced",
        f"{report.summary()}\n"
        f"traced median {benchmark.stats.stats.median:.3f}s, "
        f"min {traced_min:.3f}s ({ratio:.2f}x adjacent untraced min "
        f"{bare_min:.3f}s; {session_ratio:.2f}x session untraced min) | "
        f"{len(obs.spans):,} spans from {obs.tracer.n_rows:,} sparse rows | "
        f"worst burn {obs.slo.worst_burn():.1f}x, {len(obs.alerts)} alerts",
    )

    assert report.n_requests == N_REQUESTS
    assert report.n_served == N_REQUESTS
    # Telemetry is complete at scale: one root per served request, the
    # sparse rows stayed sparse, and the summary stats materialized.
    from repro.obs.spans import SPAN_REQUEST

    assert obs.spans.count(SPAN_REQUEST) == N_REQUESTS
    assert 0 < obs.tracer.n_rows < N_REQUESTS // 10
    assert np.isfinite(obs.metrics.snapshot()["sojourn_s.p99"])
    # The overhead gate itself, against the adjacent untraced minimum.
    assert ratio <= 1.10, f"tracing overhead {ratio:.2f}x exceeds 1.10x"
