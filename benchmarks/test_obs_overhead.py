"""Scale bench — the observability overhead gate at a million requests.

The observability contract is ≤10% overhead traced, ~0% disabled: the
hot loop only appends sparse rows (one per dispatched batch, one per
rare event), finalize is O(1), and every derived view (metric
aggregates, SLO windows, the dense per-request span tree) is
synthesized vectorized on first read.  This bench replays the same
1M-request
Zipf/Poisson cluster trace as ``test_million_requests`` twice — once
bare, once with an :class:`~repro.obs.Observer` attached — records both
medians for the ``BENCH_<n>.json`` trajectory, and asserts the traced
run inside 1.10x of the untraced one.

The in-test gate is **paired**: each traced round's pedantic ``setup``
times one untraced run first, so the rounds alternate U,T,U,T,… in a
single process, and the gate takes the median of the per-round ratios
``T_i / U_i``.  Pairing matters on a shared box — machine load drifts
over a session, so arms measured minutes apart (or even a
median-vs-median over interleaved rounds, when the drift lands
mid-run) see different regimes, while each adjacent pair sees the
same one; the median over pairs then shrugs off a single outlier
round.

A third arm plays the same game for the phase profiler
(:mod:`repro.obs.prof`): full scoped timers through the engine loops,
gated at a 1.15x median paired ratio, with the phase tree checked for
completeness (arrival bursts crossed ``ingest``, one ``serve`` root,
self times covering the run).
"""

import statistics
import time

import numpy as np

from repro.cluster.engine import Cluster
from repro.hw.devices import gci_cpu
from repro.obs import Observer
from repro.obs.prof import PhaseProfiler
from repro.serving.arrivals import poisson_arrivals, zipf_popularity
from repro.serving.backends import CBNetBackend
from repro.sim import oracle_backend

from conftest import emit

N_REQUESTS = 1_000_000
N_REPLICAS = 4

#: Per-arm stats shared across the two tests in this file (pytest runs
#: them in definition order within one session).
_STATS: dict[str, float] = {}


def _trace(mnist_artifacts):
    test = mnist_artifacts.datasets["test"]
    base = CBNetBackend(mnist_artifacts.cbnet, gci_cpu())
    backends = [oracle_backend(base, test.images) for _ in range(N_REPLICAS)]
    max_batch = 32
    capacity_hz = N_REPLICAS / backends[0].mean_service_s(batch_size=max_batch)
    rng = np.random.default_rng(0)
    ids = zipf_popularity(len(test.images), N_REQUESTS, exponent=0.9, rng=rng)
    arrival_s = poisson_arrivals(0.7 * capacity_hz, N_REQUESTS, rng=rng)
    return backends, ids, arrival_s, test.labels[ids], max_batch


def _serve(backends, ids, arrival_s, labels, max_batch, obs, prof=None):
    cluster = Cluster(
        list(backends),
        policy="round-robin",
        slo_s=0.05,
        max_batch_size=max_batch,
        max_wait_s=0.002,
        cache_capacity=512,
        rng=0,
        obs=obs,
        prof=prof,
    )
    return cluster.serve(ids, arrival_s, labels=labels, scenario="obs-overhead")


def test_million_request_untraced(benchmark, results_dir, mnist_artifacts):
    """The bare arm: identical trace, no observer (the denominator)."""
    args = _trace(mnist_artifacts)

    report = benchmark.pedantic(lambda: _serve(*args, obs=None), rounds=4, iterations=1)
    _STATS["untraced_median"] = benchmark.stats.stats.median
    emit(
        results_dir,
        "obs_overhead_untraced",
        f"{report.summary()}\n"
        f"untraced median {_STATS['untraced_median']:.3f}s "
        f"(min {benchmark.stats.stats.min:.3f}s)",
    )
    assert report.n_requests == N_REQUESTS
    assert report.n_served == N_REQUESTS


def test_million_request_traced(benchmark, results_dir, mnist_artifacts):
    """The traced arm: full telemetry on, within 1.10x of the bare arm."""
    args = _trace(mnist_artifacts)
    observers = []
    bare = []

    def setup():
        # One untraced run *inside each traced round's setup* (untimed
        # by pytest-benchmark), so the measured rounds alternate
        # U,T,U,T,… in a single process and every traced round has an
        # untraced partner timed under the same machine-load regime.
        # (The untraced pytest-benchmark test still provides the
        # BENCH_<n>.json median.)
        t0 = time.perf_counter()
        _serve(*args, obs=None)
        bare.append(time.perf_counter() - t0)

    def run():
        obs = Observer()
        observers.append(obs)
        return _serve(*args, obs=obs)

    report = benchmark.pedantic(run, setup=setup, rounds=5, iterations=1)
    traced_med = benchmark.stats.stats.median
    obs = observers[-1]
    # Paired gate: per-round ratio vs the untraced run timed right
    # before it, then the median over pairs (drift-immune — see module
    # docstring).
    rounds = benchmark.stats.stats.data
    ratio = statistics.median(t / b for t, b in zip(rounds, bare))
    session_ratio = (
        traced_med / _STATS["untraced_median"]
        if "untraced_median" in _STATS
        else float("nan")
    )
    emit(
        results_dir,
        "obs_overhead_traced",
        f"{report.summary()}\n"
        f"traced median {traced_med:.3f}s ({ratio:.2f}x median paired ratio vs "
        f"interleaved untraced runs, median {statistics.median(bare):.3f}s; "
        f"{session_ratio:.2f}x session untraced median) | "
        f"{len(obs.spans):,} spans from {obs.tracer.n_rows:,} sparse rows | "
        f"worst burn {obs.slo.worst_burn():.1f}x, {len(obs.alerts)} alerts",
    )

    assert report.n_requests == N_REQUESTS
    assert report.n_served == N_REQUESTS
    # Telemetry is complete at scale: one root per served request, the
    # sparse rows stayed sparse, and the summary stats materialized.
    from repro.obs.spans import SPAN_REQUEST

    assert obs.spans.count(SPAN_REQUEST) == N_REQUESTS
    assert 0 < obs.tracer.n_rows < N_REQUESTS // 10
    assert np.isfinite(obs.metrics.snapshot()["sojourn_s.p99"])
    # The overhead gate itself: median paired traced/untraced ratio.
    assert ratio <= 1.10, f"tracing overhead {ratio:.2f}x exceeds 1.10x"


def test_million_request_profiled(benchmark, results_dir, mnist_artifacts):
    """The profiled arm: phase timers on, within 1.15x of unprofiled.

    Scoped timers cost two clock reads per phase; ``ingest`` is scoped
    per arrival *burst* and everything else is per-batch or coarser, so
    the scope-pair count tracks the batch count (tens of thousands)
    rather than the request count (a million) — which is what keeps the
    replay inside the 1.15x gate.  Same paired discipline as the traced
    arm: each round's setup times one unprofiled run (rounds alternate
    U,P,U,P,…) and the gate is the median per-round ratio.
    """
    args = _trace(mnist_artifacts)
    profilers = []
    bare = []

    def setup():
        t0 = time.perf_counter()
        _serve(*args, obs=None)
        bare.append(time.perf_counter() - t0)

    def run():
        prof = PhaseProfiler()
        profilers.append(prof)
        return _serve(*args, obs=None, prof=prof)

    report = benchmark.pedantic(run, setup=setup, rounds=5, iterations=1)
    profiled_med = benchmark.stats.stats.median
    rounds = benchmark.stats.stats.data
    ratio = statistics.median(p / b for p, b in zip(rounds, bare))
    phases = profilers[-1].report()
    by_name = phases.by_name()
    emit(
        results_dir,
        "obs_overhead_profiled",
        f"{report.summary()}\n"
        f"profiled median {profiled_med:.3f}s ({ratio:.2f}x median paired ratio "
        f"vs interleaved unprofiled runs, median {statistics.median(bare):.3f}s)\n"
        f"{phases.render()}",
    )

    assert report.n_requests == N_REQUESTS
    assert report.n_served == N_REQUESTS
    # The phase tree is complete at scale: one serve root per round,
    # arrivals crossed ingest in bursts, and self times cover the run.
    assert phases.get("serve").count == 1
    assert 0 < by_name["ingest"][0] <= N_REQUESTS
    assert by_name["ingest"][1] > 0.0
    assert phases.total_s > 0.5 * profiled_med
    # The profiler overhead gate: median paired profiled/unprofiled ratio.
    assert ratio <= 1.15, f"profiling overhead {ratio:.2f}x exceeds 1.15x"
