"""Package metadata for the CBNet reproduction.

Kept in setup.py (rather than pyproject.toml) so `python setup.py
develop` works in offline environments that lack the `wheel` package
PEP 660 editable installs require; `pip install -e .` uses the same
metadata when wheel is available.
"""

import re
from pathlib import Path

from setuptools import find_packages, setup

HERE = Path(__file__).resolve().parent


def read_version() -> str:
    text = (HERE / "src" / "repro" / "__init__.py").read_text()
    match = re.search(r'^__version__ = "([^"]+)"', text, re.MULTILINE)
    if not match:
        raise RuntimeError("__version__ not found in src/repro/__init__.py")
    return match.group(1)


def read_long_description() -> str:
    readme = HERE / "README.md"
    return readme.read_text() if readme.exists() else ""


setup(
    name="cbnet-repro",
    version=read_version(),
    description=(
        "Reproduction of CBNet (Mahmud et al., IPDPS 2024): converting "
        "autoencoder for low-latency, energy-efficient edge inference, "
        "with a batched serving engine"
    ),
    long_description=read_long_description(),
    long_description_content_type="text/markdown",
    author="paper-repo-growth",
    license="MIT",
    python_requires=">=3.10",
    packages=find_packages("src"),
    package_dir={"": "src"},
    install_requires=[
        "numpy>=1.24",
        "scipy>=1.10",
    ],
    extras_require={
        "test": ["pytest>=7.0", "pytest-benchmark", "hypothesis"],
    },
    entry_points={
        "console_scripts": [
            "cbnet-experiment = repro.experiments.cli:main",
        ],
    },
    classifiers=[
        "Development Status :: 4 - Beta",
        "Intended Audience :: Science/Research",
        "Programming Language :: Python :: 3",
        "Programming Language :: Python :: 3.10",
        "Programming Language :: Python :: 3.11",
        "Topic :: Scientific/Engineering :: Artificial Intelligence",
    ],
)
