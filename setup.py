"""Shim for offline environments lacking the `wheel` package.

`pip install -e .` (PEP 660) needs wheel; `python setup.py develop` does
not. All metadata lives in pyproject.toml.
"""
from setuptools import setup

setup()
