"""LRU result cache: keys, eviction order, counters."""

import numpy as np
import pytest

from repro.serving.cache import LRUResultCache, image_key


class TestImageKey:
    def test_identical_content_same_key(self):
        a = np.arange(12, dtype=np.float32).reshape(1, 3, 4)
        b = a.copy()
        assert image_key(a) == image_key(b)

    def test_different_content_different_key(self):
        a = np.zeros((1, 4, 4), dtype=np.float32)
        b = a.copy()
        b[0, 0, 0] = 1e-6
        assert image_key(a) != image_key(b)

    def test_shape_sensitive(self):
        a = np.zeros(16, dtype=np.float32)
        assert image_key(a) != image_key(a.reshape(4, 4))

    def test_dtype_sensitive(self):
        a = np.zeros(8, dtype=np.float32)
        assert image_key(a) != image_key(a.astype(np.float64))

    def test_non_contiguous_view_matches_copy(self):
        base = np.arange(32, dtype=np.float32).reshape(4, 8)
        view = base[:, ::2]
        assert image_key(view) == image_key(view.copy())


class TestLRUResultCache:
    def test_hit_and_miss_counters(self):
        cache = LRUResultCache(capacity=2)
        assert cache.get("a") is None
        cache.put("a", 1)
        assert cache.get("a") == 1
        assert cache.hits == 1 and cache.misses == 1
        assert cache.hit_rate == pytest.approx(0.5)

    def test_evicts_least_recently_used(self):
        cache = LRUResultCache(capacity=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")  # bump 'a'
        cache.put("c", 3)  # evicts 'b'
        assert "a" in cache and "c" in cache and "b" not in cache
        assert cache.evictions == 1

    def test_put_refreshes_recency(self):
        cache = LRUResultCache(capacity=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("a", 10)  # refresh, no eviction
        cache.put("c", 3)  # evicts 'b'
        assert cache.get("a") == 10
        assert "b" not in cache

    def test_capacity_bound_holds(self):
        cache = LRUResultCache(capacity=3)
        for i in range(50):
            cache.put(str(i), i)
        assert len(cache) == 3
        assert cache.evictions == 47

    def test_zero_capacity_disables_storage(self):
        cache = LRUResultCache(capacity=0)
        cache.put("a", 1)
        assert cache.get("a") is None
        assert len(cache) == 0
        assert cache.hit_rate == 0.0

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            LRUResultCache(capacity=-1)
