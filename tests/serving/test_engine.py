"""Serving engine semantics on a synthetic backend (no training needed)."""

import numpy as np
import pytest

from repro.serving.arrivals import constant_arrivals, poisson_arrivals
from repro.serving.backends import BatchTiming, InferenceBackend
from repro.serving.engine import Server, comparison_table
from repro.serving.request import Route
from repro.serving.router import RouteDecision


class SumBackend(InferenceBackend):
    """Deterministic toy model: label = pixel-sum mod 10, 1 ms/item."""

    name = "sum"

    def __init__(self, overhead_s=0.001, per_item_s=0.001):
        super().__init__(BatchTiming(overhead_s=overhead_s, per_item_s=per_item_s))

    def predict(self, images, decision=None):
        return (images.reshape(images.shape[0], -1).sum(axis=1)).astype(np.int64) % 10


class RoutedSumBackend(SumBackend):
    """Toy dynamic backend: images with mean > 0.5 are 'hard'."""

    name = "routed-sum"

    def __init__(self):
        super().__init__()
        self.timing = BatchTiming(
            overhead_s=0.001, per_item_s=0.001, gate_s=0.0005, per_hard_extra_s=0.004
        )

    def route(self, images):
        means = images.reshape(images.shape[0], -1).mean(axis=1)
        return RouteDecision(easy=means <= 0.5, entropy=means)


def make_images(n, seed=0):
    rng = np.random.default_rng(seed)
    return rng.random((n, 1, 4, 4)).astype(np.float32)


class TestServeBasics:
    def test_all_requests_complete_with_real_predictions(self):
        images = make_images(64)
        labels = (images.reshape(64, -1).sum(axis=1)).astype(np.int64) % 10
        report = Server(SumBackend(), max_batch_size=8, max_wait_s=0.002).serve(
            images, poisson_arrivals(200.0, 64, rng=0), labels=labels
        )
        assert report.n_requests == 64
        assert report.accuracy == 1.0  # predictions really ran
        assert report.p50_s <= report.p95_s <= report.p99_s <= report.max_s
        assert 0.0 < report.utilization <= 1.0

    def test_sojourn_includes_batching_delay(self):
        # A lone request must wait out the full deadline before service.
        images = make_images(1)
        report = Server(SumBackend(), max_batch_size=8, max_wait_s=0.05).serve(
            images, np.array([0.0])
        )
        assert report.mean_s == pytest.approx(0.05 + 0.002, rel=1e-6)

    def test_unbatched_fifo_when_wait_is_zero(self):
        images = make_images(20)
        report = Server(SumBackend(), max_batch_size=8, max_wait_s=0.0).serve(
            images, constant_arrivals(100.0, 20)
        )
        assert report.mean_batch_size == 1.0
        assert report.batch_histogram == {1: 20}

    def test_batch_histogram_counts_batches(self):
        images = make_images(12)
        # All arrive together → size trigger fires at 4, three times.
        report = Server(SumBackend(), max_batch_size=4, max_wait_s=1.0).serve(
            images, np.zeros(12)
        )
        assert report.batch_histogram == {4: 3}
        assert report.mean_batch_size == 4.0

    def test_batching_amortizes_overhead_under_pressure(self):
        """Same overloaded stream: dynamic batching sustains a higher
        throughput than unbatched FIFO (the overhead amortization win)."""
        images = make_images(400)
        arrivals = poisson_arrivals(2000.0, 400, rng=1)  # past FIFO capacity
        fifo = Server(SumBackend(), max_batch_size=1, max_wait_s=0.0).serve(
            images, arrivals
        )
        batched = Server(SumBackend(), max_batch_size=32, max_wait_s=0.005).serve(
            images, arrivals
        )
        assert batched.throughput_rps > fifo.throughput_rps
        assert batched.mean_batch_size > 2.0

    def test_extra_workers_cut_the_tail(self):
        images = make_images(300)
        arrivals = poisson_arrivals(800.0, 300, rng=2)
        one = Server(SumBackend(), max_batch_size=4, max_wait_s=0.002).serve(
            images, arrivals
        )
        four = Server(
            SumBackend(), max_batch_size=4, max_wait_s=0.002, n_workers=4
        ).serve(images, arrivals)
        assert four.p99_s < one.p99_s
        assert four.n_workers == 4


class TestCacheIntegration:
    def test_repeated_images_hit_after_first_completion(self):
        base = make_images(4)
        images = np.concatenate([base, base, base])  # 3 waves of the same 4
        # Wave spacing far exceeds service time → later waves all hit.
        arrivals = np.sort(np.concatenate([np.full(4, t) for t in (0.0, 1.0, 2.0)]))
        report = Server(
            SumBackend(), max_batch_size=4, max_wait_s=0.001, cache_capacity=16
        ).serve(images, arrivals)
        assert report.n_cached == 8
        assert report.cache_hit_rate == pytest.approx(8 / 12)

    def test_no_hit_before_source_completes(self):
        base = make_images(1)
        images = np.concatenate([base, base])
        # Second copy arrives while the first is still queued/in service.
        report = Server(
            SumBackend(), max_batch_size=1, max_wait_s=0.0, cache_capacity=16
        ).serve(images, np.array([0.0, 1e-5]))
        assert report.n_cached == 0

    def test_cached_requests_copy_source_prediction(self):
        base = make_images(3, seed=3)
        images = np.concatenate([base, base])
        labels = (images.reshape(6, -1).sum(axis=1)).astype(np.int64) % 10
        report = Server(
            SumBackend(), max_batch_size=3, max_wait_s=0.001, cache_capacity=16
        ).serve(images, np.array([0.0, 0.0, 0.0, 5.0, 5.0, 5.0]), labels=labels)
        assert report.n_cached == 3
        assert report.accuracy == 1.0

    def test_cache_disabled_by_default(self):
        base = make_images(2)
        images = np.concatenate([base] * 5)
        report = Server(SumBackend(), max_batch_size=2, max_wait_s=0.001).serve(
            images, np.arange(10, dtype=np.float64)
        )
        assert report.n_cached == 0
        assert report.cache_hit_rate == 0.0


class TestRoutingIntegration:
    def test_easy_hard_labels_and_timing(self):
        rng = np.random.default_rng(4)
        easy = rng.random((8, 1, 4, 4)).astype(np.float32) * 0.2  # mean <= 0.5
        hard = 0.8 + rng.random((8, 1, 4, 4)).astype(np.float32) * 0.2
        images = np.concatenate([easy, hard])
        report = Server(RoutedSumBackend(), max_batch_size=4, max_wait_s=0.001).serve(
            images, np.arange(16, dtype=np.float64) * 0.001
        )
        assert report.n_easy == 8
        assert report.n_hard == 8
        assert report.hard_fraction == pytest.approx(0.5)

    def test_hard_heavy_stream_is_slower(self):
        rng = np.random.default_rng(5)
        easy = (rng.random((64, 1, 4, 4)) * 0.2).astype(np.float32)
        hard = (0.8 + rng.random((64, 1, 4, 4)) * 0.2).astype(np.float32)
        arrivals = poisson_arrivals(300.0, 64, rng=6)
        srv = Server(RoutedSumBackend(), max_batch_size=8, max_wait_s=0.002)
        assert srv.serve(hard, arrivals).mean_s > srv.serve(easy, arrivals).mean_s


class TestValidationAndRendering:
    def test_invalid_inputs_rejected(self):
        srv = Server(SumBackend())
        with pytest.raises(ValueError):
            srv.serve(make_images(2), np.array([0.0]))  # length mismatch
        with pytest.raises(ValueError):
            srv.serve(make_images(0), np.array([]))  # empty stream
        with pytest.raises(ValueError):
            srv.serve(make_images(2), np.array([1.0, 0.5]))  # unsorted
        with pytest.raises(ValueError):
            Server(SumBackend(), n_workers=0)

    def test_summary_and_table_render(self):
        images = make_images(16)
        report = Server(SumBackend(), max_batch_size=4, max_wait_s=0.001).serve(
            images, poisson_arrivals(100.0, 16, rng=7)
        )
        assert "p99" in report.summary()
        text = comparison_table([report], "title").render()
        assert "sum" in text and "title" in text

    def test_route_constants_cover_engine_routes(self):
        assert {Route.BATCHED, Route.CACHED, Route.EASY, Route.HARD} <= set(Route.ALL)
