"""Serving-engine edge cases the cluster layer depends on.

Pinned before the balancer was wired on top (see `repro.cluster`): the
fleet engine builds on these exact behaviours — empty traces are
rejected loudly, batches still in flight when the trace ends complete
on the virtual clock, and cache visibility is causal down to the exact
completion instant.
"""

import numpy as np
import pytest

from repro.serving.backends import BatchTiming, InferenceBackend
from repro.serving.engine import Server


class SumBackend(InferenceBackend):
    """Deterministic toy model: label = pixel-sum mod 10."""

    name = "sum"

    def __init__(self, overhead_s=0.001, per_item_s=0.001):
        super().__init__(BatchTiming(overhead_s=overhead_s, per_item_s=per_item_s))

    def predict(self, images, decision=None):
        return (images.reshape(images.shape[0], -1).sum(axis=1)).astype(np.int64) % 10


def make_images(n, seed=0):
    rng = np.random.default_rng(seed)
    return rng.random((n, 1, 4, 4)).astype(np.float32)


class TestZeroArrivalTrace:
    def test_empty_stream_is_rejected_loudly(self):
        srv = Server(SumBackend())
        with pytest.raises(ValueError, match="empty request stream"):
            srv.serve(make_images(0), np.array([]))

    def test_empty_stream_rejected_even_with_cache_and_workers(self):
        srv = Server(SumBackend(), n_workers=4, cache_capacity=64)
        with pytest.raises(ValueError, match="empty request stream"):
            srv.serve(np.zeros((0, 1, 4, 4), dtype=np.float32), np.array([]))


class TestTraceEndsWithBatchesInFlight:
    def test_final_partial_batch_completes_after_last_arrival(self):
        # 10 requests, batch size 8: the trailing 2 are still pending when
        # the trace ends and must flush at their deadline, not be dropped.
        images = make_images(10)
        report = Server(SumBackend(), max_batch_size=8, max_wait_s=0.05).serve(
            images, np.zeros(10)
        )
        assert report.n_requests == 10
        assert report.batch_histogram == {2: 1, 8: 1}
        # Makespan extends past the last arrival by at least the trailing
        # batch's deadline wait plus its service time.
        assert report.duration_s >= 0.05 + 0.001 + 2 * 0.001

    def test_every_request_of_an_abruptly_ending_trace_completes(self):
        # Arrivals stop mid-burst while several batches are queued behind
        # one worker; the engine must drain everything it admitted.
        images = make_images(64)
        arrivals = np.sort(np.concatenate([np.zeros(32), np.full(32, 1e-4)]))
        report = Server(
            SumBackend(per_item_s=0.004), max_batch_size=4, max_wait_s=0.01
        ).serve(images, arrivals)
        assert report.n_requests == 64
        assert sum(k * c for k, c in report.batch_histogram.items()) == 64
        assert report.max_s > 0.0

    def test_completions_monotone_per_worker_after_trace_end(self):
        images = make_images(12)
        srv = Server(SumBackend(per_item_s=0.003), max_batch_size=4, max_wait_s=0.002)
        report = srv.serve(images, np.zeros(12))
        # Three size-4 batches on one worker: service strictly serializes,
        # so the makespan is at least 3 sequential batch services.
        assert report.duration_s >= 3 * (0.001 + 4 * 0.003)


class TestCacheCompletionRaces:
    def test_hit_exactly_at_completion_instant(self):
        # A repeat arriving at the *exact* virtual instant its source
        # completes must hit: results become visible at completion time.
        images = np.concatenate([make_images(1)] * 2)
        # batch of 1 flushes immediately at t=0; service = overhead+item.
        completion = 0.001 + 0.001
        report = Server(
            SumBackend(), max_batch_size=1, max_wait_s=0.0, cache_capacity=4
        ).serve(images, np.array([0.0, completion]))
        assert report.n_cached == 1

    def test_miss_one_tick_before_completion(self):
        images = np.concatenate([make_images(1)] * 2)
        completion = 0.001 + 0.001
        report = Server(
            SumBackend(), max_batch_size=1, max_wait_s=0.0, cache_capacity=4
        ).serve(images, np.array([0.0, completion - 1e-9]))
        assert report.n_cached == 0

    def test_burst_of_identical_images_only_first_wave_misses(self):
        # All copies arriving before the first completes are misses and
        # ride batches; copies arriving after it completes all hit.
        base = make_images(1, seed=5)
        images = np.concatenate([base] * 6)
        arrivals = np.array([0.0, 1e-6, 2e-6, 1.0, 1.0, 1.0])
        report = Server(
            SumBackend(), max_batch_size=4, max_wait_s=0.001, cache_capacity=4
        ).serve(images, arrivals)
        assert report.n_cached == 3
        assert report.n_requests - report.n_cached == 3
