"""Entropy-gate edge cases: empty batches and all-hard batches.

Regression tests for the router/backend paths that used to allocate an
empty easy sub-batch (or a full-size gather copy) when the gate decided
unanimously: an empty batch must short-circuit without touching the
model, and an all-hard batch must run whole rather than fancy-indexing
into an identical copy.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.models.branchynet import BranchyLeNet
from repro.serving.router import EntropyRouter, RouteDecision


@pytest.fixture(scope="module")
def branchy():
    return BranchyLeNet(rng=0, entropy_threshold=1.0)


@pytest.fixture(scope="module")
def images():
    return np.random.default_rng(0).normal(size=(32, 1, 28, 28)).astype(np.float32)


class _GateCounter:
    """Wraps branch_gate to count model invocations."""

    def __init__(self, model):
        self._model = model
        self.calls = 0

    def __getattr__(self, name):
        return getattr(self._model, name)

    def branch_gate(self, images, *args, **kwargs):
        self.calls += 1
        return self._model.branch_gate(images, *args, **kwargs)


class TestEmptyBatch:
    def test_router_split_empty_without_model_call(self, branchy):
        counter = _GateCounter(branchy)
        router = EntropyRouter(counter, threshold=0.5)
        decision = router.split(np.zeros((0, 1, 28, 28), dtype=np.float32))
        assert counter.calls == 0  # short-circuited: no zero-sample plan traced
        assert decision.n_easy == 0 and decision.n_hard == 0
        assert decision.easy.shape == (0,)
        assert decision.entropy.shape == (0,)
        assert decision.predictions.shape == (0,)
        assert decision.easy_indices.size == 0 and decision.hard_indices.size == 0

    def test_infer_empty_batch(self, branchy):
        result = branchy.infer(np.zeros((0, 1, 28, 28), dtype=np.float32))
        assert result.predictions.shape == (0,)
        assert result.exited_early.shape == (0,)
        assert result.early_exit_rate == 0.0

    def test_stem_features_empty_batch(self, branchy):
        feats = branchy.stem_features(np.zeros((0, 1, 28, 28), dtype=np.float32))
        assert feats.shape == (0, 4, 12, 12)
        assert feats.dtype == np.float32


class TestAllHardBatch:
    def test_infer_all_hard_matches_reference(self, branchy, images):
        # threshold=-1: nothing exits early → every sample runs the trunk.
        gated = branchy.infer(images, threshold=-1.0)
        reference = branchy.infer(images, threshold=-1.0, fastpath=False)
        np.testing.assert_array_equal(gated.predictions, reference.predictions)
        assert not gated.exited_early.any()

    def test_infer_all_easy_never_runs_trunk(self, branchy, images):
        gated = branchy.infer(images, threshold=np.inf)
        assert gated.exited_early.all()
        np.testing.assert_array_equal(
            gated.predictions,
            branchy.branch_gate(images)[1],
        )

    def test_backend_all_hard_decision_avoids_gather(self, branchy, images):
        from repro.serving.backends import BranchyNetBackend
        from repro.hw.devices import raspberry_pi4

        backend = BranchyNetBackend(branchy, raspberry_pi4(), threshold=1.0)
        entropy, branch_preds = branchy.branch_gate(images)
        all_hard = RouteDecision(
            easy=np.zeros(len(images), dtype=bool),
            entropy=entropy,
            predictions=branch_preds,
        )
        preds = backend.predict(images, all_hard)
        np.testing.assert_array_equal(
            preds, branchy.infer(images, threshold=-1.0).predictions
        )

    def test_backend_all_easy_decision_uses_branch_labels(self, branchy, images):
        from repro.serving.backends import BranchyNetBackend
        from repro.hw.devices import raspberry_pi4

        backend = BranchyNetBackend(branchy, raspberry_pi4(), threshold=1.0)
        entropy, branch_preds = branchy.branch_gate(images)
        all_easy = RouteDecision(
            easy=np.ones(len(images), dtype=bool),
            entropy=entropy,
            predictions=branch_preds,
        )
        np.testing.assert_array_equal(backend.predict(images, all_easy), branch_preds)

    def test_hybrid_all_hard_converts_whole_batch(self, images):
        from repro.hw.devices import raspberry_pi4
        from repro.models.autoencoder import ConvertingAutoencoder
        from repro.models.lightweight import LightweightClassifier
        from repro.core.cbnet import CBNet
        from repro.serving.backends import HybridBackend

        branchy = BranchyLeNet(rng=1, entropy_threshold=1.0)
        cbnet = CBNet(
            autoencoder=ConvertingAutoencoder.for_dataset("mnist", rng=1),
            classifier=LightweightClassifier.from_branchynet(branchy),
        )
        backend = HybridBackend(cbnet, branchy, raspberry_pi4(), threshold=1.0)
        entropy, branch_preds = branchy.branch_gate(images)
        all_hard = RouteDecision(
            easy=np.zeros(len(images), dtype=bool),
            entropy=entropy,
            predictions=branch_preds,
        )
        np.testing.assert_array_equal(
            backend.predict(images, all_hard), cbnet.predict(images)
        )


class TestServedAllHardTrace:
    def test_server_survives_all_hard_stream(self, branchy, images):
        # A near-zero threshold routes every request down the hard path;
        # the serving loop must not allocate empty easy sub-batches.
        from repro.hw.devices import raspberry_pi4
        from repro.serving.backends import BranchyNetBackend
        from repro.serving.engine import Server

        backend = BranchyNetBackend(branchy, raspberry_pi4(), threshold=1e-9)
        server = Server(backend, max_batch_size=8, max_wait_s=0.002)
        arrival_s = np.cumsum(np.full(len(images), 0.002))
        report = server.serve(images, arrival_s)
        assert report.n_hard == len(images)
        assert report.n_easy == 0
        assert report.hard_fraction == 1.0
