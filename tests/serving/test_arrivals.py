"""Arrival-time and popularity generators."""

import numpy as np
import pytest

from repro.serving.arrivals import (
    bursty_arrivals,
    constant_arrivals,
    poisson_arrivals,
    trace_arrivals,
    zipf_popularity,
)


class TestPoissonArrivals:
    def test_mean_rate_matches(self):
        times = poisson_arrivals(100.0, 50_000, rng=0)
        assert np.all(np.diff(times) >= 0)
        assert 50_000 / times[-1] == pytest.approx(100.0, rel=0.02)

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            poisson_arrivals(0.0, 10)
        with pytest.raises(ValueError):
            poisson_arrivals(10.0, 0)


class TestConstantArrivals:
    def test_periodic(self):
        times = constant_arrivals(50.0, 5)
        np.testing.assert_allclose(np.diff(times), 0.02)

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            constant_arrivals(-1.0, 5)


class TestBurstyArrivals:
    def test_sorted_and_sized(self):
        times = bursty_arrivals(50.0, 500.0, 2000, rng=1)
        assert times.shape == (2000,)
        assert np.all(np.diff(times) >= 0)

    def test_clumpier_than_poisson(self):
        """Burst phases inflate inter-arrival variance vs a Poisson
        stream at the same mean rate."""
        bursty = bursty_arrivals(50.0, 500.0, 20_000, rng=2)
        mean_rate = 20_000 / bursty[-1]
        poisson = poisson_arrivals(mean_rate, 20_000, rng=2)
        cv = lambda t: np.diff(t).std() / np.diff(t).mean()
        assert cv(bursty) > cv(poisson) * 1.1

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            bursty_arrivals(100.0, 50.0, 10)  # burst < base
        with pytest.raises(ValueError):
            bursty_arrivals(0.0, 50.0, 10)
        with pytest.raises(ValueError):
            bursty_arrivals(10.0, 50.0, 10, mean_phase_s=0.0)


class TestTraceArrivals:
    def test_valid_trace_passes_through(self):
        times = trace_arrivals([0.0, 0.5, 0.5, 2.0])
        assert times.dtype == np.float64
        np.testing.assert_allclose(times, [0.0, 0.5, 0.5, 2.0])

    def test_rejects_unsorted(self):
        with pytest.raises(ValueError, match="non-decreasing"):
            trace_arrivals([0.0, 2.0, 1.0])

    def test_rejects_negative_start(self):
        with pytest.raises(ValueError, match="non-negative"):
            trace_arrivals([-0.1, 0.5])

    def test_rejects_empty_and_2d(self):
        with pytest.raises(ValueError):
            trace_arrivals([])
        with pytest.raises(ValueError):
            trace_arrivals([[0.0, 1.0]])

    def test_feeds_the_server(self):
        """A hand-written trace drives Server.serve end to end."""
        from repro.serving.backends import BatchTiming, InferenceBackend
        from repro.serving.engine import Server

        class Flat(InferenceBackend):
            name = "flat"

            def __init__(self):
                super().__init__(BatchTiming(overhead_s=0.001, per_item_s=0.001))

            def predict(self, images, decision=None):
                return np.zeros(images.shape[0], dtype=np.int64)

        images = np.zeros((4, 1, 2, 2), dtype=np.float32)
        report = Server(Flat(), max_batch_size=2, max_wait_s=0.01).serve(
            images, trace_arrivals([0.0, 0.0, 0.5, 0.9])
        )
        assert report.n_requests == 4
        assert report.batch_histogram == {1: 2, 2: 1}


class TestZipfPopularity:
    def test_skewed_towards_low_indices(self):
        draws = zipf_popularity(100, 50_000, exponent=1.1, rng=3)
        assert draws.min() >= 0 and draws.max() < 100
        counts = np.bincount(draws, minlength=100)
        assert counts[0] > counts[50] > 0

    def test_exponent_zero_is_uniform(self):
        draws = zipf_popularity(10, 50_000, exponent=0.0, rng=4)
        counts = np.bincount(draws, minlength=10)
        assert counts.min() > 0.8 * counts.max()

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            zipf_popularity(0, 10)
        with pytest.raises(ValueError):
            zipf_popularity(10, 0)
        with pytest.raises(ValueError):
            zipf_popularity(10, 10, exponent=-1.0)
