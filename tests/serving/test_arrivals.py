"""Arrival-time and popularity generators."""

import numpy as np
import pytest

from repro.serving.arrivals import (
    bursty_arrivals,
    constant_arrivals,
    diurnal_arrivals,
    flash_crowd_arrivals,
    poisson_arrivals,
    trace_arrivals,
    zipf_popularity,
)


class TestPoissonArrivals:
    def test_mean_rate_matches(self):
        times = poisson_arrivals(100.0, 50_000, rng=0)
        assert np.all(np.diff(times) >= 0)
        assert 50_000 / times[-1] == pytest.approx(100.0, rel=0.02)

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            poisson_arrivals(0.0, 10)
        with pytest.raises(ValueError):
            poisson_arrivals(10.0, 0)


class TestConstantArrivals:
    def test_periodic(self):
        times = constant_arrivals(50.0, 5)
        np.testing.assert_allclose(np.diff(times), 0.02)

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            constant_arrivals(-1.0, 5)


class TestBurstyArrivals:
    def test_sorted_and_sized(self):
        times = bursty_arrivals(50.0, 500.0, 2000, rng=1)
        assert times.shape == (2000,)
        assert np.all(np.diff(times) >= 0)

    def test_clumpier_than_poisson(self):
        """Burst phases inflate inter-arrival variance vs a Poisson
        stream at the same mean rate."""
        bursty = bursty_arrivals(50.0, 500.0, 20_000, rng=2)
        mean_rate = 20_000 / bursty[-1]
        poisson = poisson_arrivals(mean_rate, 20_000, rng=2)
        cv = lambda t: np.diff(t).std() / np.diff(t).mean()
        assert cv(bursty) > cv(poisson) * 1.1

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            bursty_arrivals(100.0, 50.0, 10)  # burst < base
        with pytest.raises(ValueError):
            bursty_arrivals(0.0, 50.0, 10)
        with pytest.raises(ValueError):
            bursty_arrivals(10.0, 50.0, 10, mean_phase_s=0.0)


class TestDiurnalArrivals:
    def test_mean_rate_matches(self):
        times = diurnal_arrivals(100.0, 50_000, period_s=20.0, depth=0.75, rng=1)
        assert np.all(np.diff(times) >= 0)
        assert 50_000 / times[-1] == pytest.approx(100.0, rel=0.03)

    def test_peak_vs_trough_rates(self):
        """Arrivals cluster around the sinusoid's peaks, thin out in troughs."""
        period = 10.0
        times = diurnal_arrivals(200.0, 40_000, period_s=period, depth=0.8, rng=2)
        phase = (times % period) / period
        peak = ((phase > 0.15) & (phase < 0.35)).sum()  # sin ≈ +1
        trough = ((phase > 0.65) & (phase < 0.85)).sum()  # sin ≈ -1
        assert peak > 4 * trough

    def test_pinned_trace(self):
        """Seed-for-seed regression: the vectorized thinning sampler is
        deterministic (fixed chunk schedule), so this exact trace is the
        generator's contract."""
        times = diurnal_arrivals(120.0, 6, period_s=4.0, depth=0.6, rng=7)
        np.testing.assert_allclose(
            times,
            [0.00902465, 0.01198584, 0.01664787, 0.01772356, 0.03539747, 0.05002881],
            atol=1e-8,
        )

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            diurnal_arrivals(0.0, 10, period_s=1.0)
        with pytest.raises(ValueError):
            diurnal_arrivals(10.0, 0, period_s=1.0)
        with pytest.raises(ValueError):
            diurnal_arrivals(10.0, 10, period_s=0.0)
        with pytest.raises(ValueError):
            diurnal_arrivals(10.0, 10, period_s=1.0, depth=1.0)


class TestFlashCrowdArrivals:
    def test_spike_rate(self):
        times = flash_crowd_arrivals(
            50.0, 500.0, 20_000, spike_start_s=10.0, spike_duration_s=5.0, rng=2
        )
        assert np.all(np.diff(times) >= 0)
        in_spike = ((times >= 10.0) & (times < 15.0)).sum()
        assert in_spike / 5.0 == pytest.approx(500.0, rel=0.1)
        before = (times < 10.0).sum()
        assert before / 10.0 == pytest.approx(50.0, rel=0.15)

    def test_pinned_trace(self):
        """Seed-for-seed regression for the vectorized step-rate sampler."""
        times = flash_crowd_arrivals(
            40.0, 400.0, 6, spike_start_s=0.05, spike_duration_s=0.1, rng=7
        )
        np.testing.assert_allclose(
            times,
            [0.00850731, 0.03853618, 0.05131735, 0.051505, 0.05165512, 0.05471403],
            atol=1e-8,
        )

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            flash_crowd_arrivals(0.0, 10.0, 10, 1.0, 1.0)
        with pytest.raises(ValueError):
            flash_crowd_arrivals(10.0, 5.0, 10, 1.0, 1.0)  # peak < base
        with pytest.raises(ValueError):
            flash_crowd_arrivals(10.0, 50.0, 0, 1.0, 1.0)
        with pytest.raises(ValueError):
            flash_crowd_arrivals(10.0, 50.0, 10, -1.0, 1.0)
        with pytest.raises(ValueError):
            flash_crowd_arrivals(10.0, 50.0, 10, 1.0, 0.0)


class TestTraceArrivals:
    def test_valid_trace_passes_through(self):
        times = trace_arrivals([0.0, 0.5, 0.5, 2.0])
        assert times.dtype == np.float64
        np.testing.assert_allclose(times, [0.0, 0.5, 0.5, 2.0])

    def test_rejects_unsorted(self):
        with pytest.raises(ValueError, match="non-decreasing"):
            trace_arrivals([0.0, 2.0, 1.0])

    def test_rejects_negative_start(self):
        with pytest.raises(ValueError, match="non-negative"):
            trace_arrivals([-0.1, 0.5])

    def test_rejects_empty_and_2d(self):
        with pytest.raises(ValueError):
            trace_arrivals([])
        with pytest.raises(ValueError):
            trace_arrivals([[0.0, 1.0]])

    def test_feeds_the_server(self):
        """A hand-written trace drives Server.serve end to end."""
        from repro.serving.backends import BatchTiming, InferenceBackend
        from repro.serving.engine import Server

        class Flat(InferenceBackend):
            name = "flat"

            def __init__(self):
                super().__init__(BatchTiming(overhead_s=0.001, per_item_s=0.001))

            def predict(self, images, decision=None):
                return np.zeros(images.shape[0], dtype=np.int64)

        images = np.zeros((4, 1, 2, 2), dtype=np.float32)
        report = Server(Flat(), max_batch_size=2, max_wait_s=0.01).serve(
            images, trace_arrivals([0.0, 0.0, 0.5, 0.9])
        )
        assert report.n_requests == 4
        assert report.batch_histogram == {1: 2, 2: 1}


class TestZipfPopularity:
    def test_skewed_towards_low_indices(self):
        draws = zipf_popularity(100, 50_000, exponent=1.1, rng=3)
        assert draws.min() >= 0 and draws.max() < 100
        counts = np.bincount(draws, minlength=100)
        assert counts[0] > counts[50] > 0

    def test_exponent_zero_is_uniform(self):
        draws = zipf_popularity(10, 50_000, exponent=0.0, rng=4)
        counts = np.bincount(draws, minlength=10)
        assert counts.min() > 0.8 * counts.max()

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            zipf_popularity(0, 10)
        with pytest.raises(ValueError):
            zipf_popularity(10, 0)
        with pytest.raises(ValueError):
            zipf_popularity(10, 10, exponent=-1.0)
