"""Micro-batcher flush triggers (size, deadline) and the offline oracle."""

import math

import numpy as np
import pytest

from repro.parallel.batcher import plan_batches
from repro.serving.batcher import MicroBatcher


class TestSizeTrigger:
    def test_flushes_exactly_at_max_batch_size(self):
        b = MicroBatcher(max_batch_size=3, max_wait_s=1.0)
        b.add(0, 0.0)
        b.add(1, 0.0)
        assert not b.should_flush(0.0)
        b.add(2, 0.0)
        assert b.should_flush(0.0)
        assert b.flush() == [0, 1, 2]
        assert len(b) == 0

    def test_add_past_capacity_raises(self):
        b = MicroBatcher(max_batch_size=1, max_wait_s=1.0)
        b.add(0, 0.0)
        with pytest.raises(RuntimeError):
            b.add(1, 0.0)

    def test_size_one_flushes_every_request(self):
        b = MicroBatcher(max_batch_size=1, max_wait_s=1.0)
        for i in range(5):
            b.add(i, float(i))
            assert b.should_flush(float(i))
            assert b.flush() == [i]


class TestDeadlineTrigger:
    def test_deadline_is_oldest_plus_max_wait(self):
        b = MicroBatcher(max_batch_size=10, max_wait_s=0.5)
        b.add(0, 1.0)
        b.add(1, 1.3)  # later arrivals do not extend the deadline
        assert b.deadline_s == pytest.approx(1.5)

    def test_flush_fires_at_deadline_not_before(self):
        b = MicroBatcher(max_batch_size=10, max_wait_s=0.5)
        b.add(0, 1.0)
        assert not b.should_flush(1.49)
        assert b.should_flush(1.5)
        assert b.should_flush(2.0)

    def test_empty_batcher_never_flushes(self):
        b = MicroBatcher(max_batch_size=10, max_wait_s=0.5)
        assert b.deadline_s == math.inf
        assert not b.should_flush(1e9)
        assert not b

    def test_deadline_resets_after_flush(self):
        b = MicroBatcher(max_batch_size=10, max_wait_s=0.5)
        b.add(0, 1.0)
        b.flush()
        assert b.deadline_s == math.inf
        b.add(1, 5.0)
        assert b.deadline_s == pytest.approx(5.5)

    def test_zero_wait_means_unbatched_fifo(self):
        b = MicroBatcher(max_batch_size=10, max_wait_s=0.0)
        b.add(0, 2.0)
        assert b.should_flush(2.0)


class TestValidation:
    def test_invalid_args(self):
        with pytest.raises(ValueError):
            MicroBatcher(max_batch_size=0)
        with pytest.raises(ValueError):
            MicroBatcher(max_wait_s=-0.1)


class TestPlanBatchesOracle:
    """plan_batches is the trace-level mirror of the online batcher."""

    def test_known_trace(self):
        # size 2 trigger at t=0.0/0.1; deadline trigger for the lone 1.0.
        batches = plan_batches([0.0, 0.1, 1.0], max_batch_size=2, max_wait_s=0.5)
        assert batches == [[0, 1], [2]]

    def test_deadline_splits_sparse_trace(self):
        batches = plan_batches([0.0, 1.0, 2.0], max_batch_size=10, max_wait_s=0.5)
        assert batches == [[0], [1], [2]]

    def test_covers_all_indices_once(self):
        rng = np.random.default_rng(0)
        times = np.cumsum(rng.exponential(0.01, 200))
        batches = plan_batches(times, max_batch_size=8, max_wait_s=0.02)
        flat = [i for batch in batches for i in batch]
        assert flat == list(range(200))
        assert all(1 <= len(batch) <= 8 for batch in batches)

    def test_matches_online_batcher_when_server_always_ready(self):
        """Replaying the trace through MicroBatcher with the engine's
        flush discipline reproduces plan_batches exactly."""
        rng = np.random.default_rng(1)
        times = np.cumsum(rng.exponential(0.005, 300))
        max_size, max_wait = 4, 0.01

        online = []
        b = MicroBatcher(max_size, max_wait)
        for i, t in enumerate(times):
            while b and b.deadline_s <= t:
                online.append(b.flush())
            b.add(i, t)
            if b.should_flush(t):
                online.append(b.flush())
        if b:
            online.append(b.flush())

        assert online == plan_batches(times, max_size, max_wait)

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            plan_batches([0.0], max_batch_size=0, max_wait_s=0.1)
        with pytest.raises(ValueError):
            plan_batches([0.0], max_batch_size=2, max_wait_s=-1.0)
