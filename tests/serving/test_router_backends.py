"""Entropy router + model backends against a real trained pipeline."""

import numpy as np
import pytest

from repro.hw.devices import raspberry_pi4
from repro.hw.latency import branchynet_expected_latency, cbnet_latency
from repro.serving.backends import (
    BatchTiming,
    BranchyNetBackend,
    CBNetBackend,
    HybridBackend,
    LeNetBackend,
)
from repro.serving.router import EntropyRouter


class TestBatchTiming:
    def test_affine_composition(self):
        t = BatchTiming(overhead_s=0.01, per_item_s=0.002, gate_s=0.001,
                        per_hard_extra_s=0.005)
        assert t.batch_service_s(4, 1) == pytest.approx(0.01 + 0.001 + 4 * 0.002 + 0.005)

    def test_batching_amortizes_overhead(self):
        t = BatchTiming(overhead_s=0.01, per_item_s=0.002)
        per_item_batched = t.batch_service_s(16) / 16
        assert per_item_batched < t.batch_service_s(1)

    def test_invalid_args(self):
        t = BatchTiming(overhead_s=0.01, per_item_s=0.002)
        with pytest.raises(ValueError):
            t.batch_service_s(0)
        with pytest.raises(ValueError):
            t.batch_service_s(2, 3)
        with pytest.raises(ValueError):
            t.batch_service_s(2, -1)


class TestEntropyRouter:
    def test_split_matches_model_gate(self, trained_pipeline):
        test = trained_pipeline.datasets["test"]
        images = test.images[:128]
        router = EntropyRouter(trained_pipeline.branchynet)
        decision = router.split(images)
        infer = trained_pipeline.branchynet.infer(images)
        np.testing.assert_array_equal(decision.easy, infer.exited_early)
        assert decision.n_easy + decision.n_hard == 128

    def test_threshold_extremes(self, trained_pipeline):
        images = trained_pipeline.datasets["test"].images[:32]
        all_hard = EntropyRouter(trained_pipeline.branchynet, threshold=0.0)
        assert all_hard.split(images).n_easy == 0
        all_easy = EntropyRouter(trained_pipeline.branchynet, threshold=1e9)
        assert all_easy.split(images).n_hard == 0

    def test_negative_threshold_rejected(self, trained_pipeline):
        with pytest.raises(ValueError):
            EntropyRouter(trained_pipeline.branchynet, threshold=-0.1)


class TestBackends:
    def test_cbnet_backend_static_and_consistent(self, trained_pipeline):
        device = raspberry_pi4()
        backend = CBNetBackend(trained_pipeline.cbnet, device)
        images = trained_pipeline.datasets["test"].images[:64]
        assert backend.route(images) is None
        # Single-item batch time reproduces the per-image latency model.
        assert backend.batch_service_s(1) == pytest.approx(
            cbnet_latency(trained_pipeline.cbnet, device).total
        )
        np.testing.assert_array_equal(
            backend.predict(images), trained_pipeline.cbnet.predict(images)
        )

    def test_branchynet_backend_paths_match_latency_model(self, trained_pipeline):
        device = raspberry_pi4()
        backend = BranchyNetBackend(trained_pipeline.branchynet, device)
        lat = branchynet_expected_latency(trained_pipeline.branchynet, device, 0.5)
        assert backend.batch_service_s(1, 0) == pytest.approx(lat.early_path)
        assert backend.batch_service_s(1, 1) == pytest.approx(lat.full_path)
        images = trained_pipeline.datasets["test"].images[:64]
        np.testing.assert_array_equal(
            backend.predict(images),
            trained_pipeline.branchynet.infer(images).predictions,
        )

    def test_hybrid_backend_uses_cbnet_on_hard(self, trained_pipeline):
        device = raspberry_pi4()
        backend = HybridBackend(
            trained_pipeline.cbnet, trained_pipeline.branchynet, device
        )
        images = trained_pipeline.datasets["test"].images[:64]
        decision = backend.route(images)
        preds = backend.predict(images)
        hard = decision.hard_indices
        if hard.size:
            np.testing.assert_array_equal(
                preds[hard], trained_pipeline.cbnet.predict(images[hard])
            )
        easy = decision.easy_indices
        branch_preds = trained_pipeline.branchynet.infer(
            images, threshold=float("inf")
        ).predictions
        np.testing.assert_array_equal(preds[easy], branch_preds[easy])

    def test_lenet_backend_predicts(self, trained_lenet, trained_pipeline):
        device = raspberry_pi4()
        backend = LeNetBackend(trained_lenet, device)
        images = trained_pipeline.datasets["test"].images[:32]
        np.testing.assert_array_equal(
            backend.predict(images), trained_lenet.predict(images)
        )

    def test_mean_service_reflects_exit_rate(self, trained_pipeline):
        device = raspberry_pi4()
        backend = BranchyNetBackend(trained_pipeline.branchynet, device)
        assert backend.mean_service_s(exit_rate=1.0) < backend.mean_service_s(
            exit_rate=0.0
        )
