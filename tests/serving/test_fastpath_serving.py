"""Serving loop on the compiled fast path: ragged batches, buffer reuse.

Uses untrained models (weights don't matter for plumbing equivalence) so
these tests run without the session-scoped trained pipeline.
"""

import numpy as np

from repro.hw.devices import raspberry_pi4
from repro.models import BranchyLeNet, LeNet
from repro.nn.fastpath import ConvStep
from repro.serving.backends import BranchyNetBackend, LeNetBackend
from repro.serving.engine import Server

rng = np.random.default_rng(42)


def _conv_cols_buffers(model):
    """All im2col column buffers across a model's cached plans."""
    plans = model.__dict__.get("_fastpath_plans", {})
    return {
        (key, i): step.cols
        for key, plan in plans.items()
        for i, step in enumerate(plan.steps)
        if isinstance(step, ConvStep)
    }


def test_backend_predict_zero_alloc_across_ragged_batches():
    """Steady-state serving performs no per-batch conv-buffer allocations:
    the same arena buffers (by identity) serve full and ragged batches."""
    backend = BranchyNetBackend(BranchyLeNet(rng=0), raspberry_pi4(), threshold=0.5)
    backend.warmup(batch_size=64)
    model = backend.branchynet
    buffers = _conv_cols_buffers(model)
    assert buffers, "warmup should have compiled conv plans"
    allocs = {key: plan.arena.allocation_count
              for key, plan in model.__dict__["_fastpath_plans"].items()}

    for n in (64, 64, 17, 1, 64):  # steady, ragged, singleton, steady
        images = rng.random((n, 1, 28, 28), dtype=np.float32)
        decision = backend.route(images)
        preds = backend.predict(images, decision)
        assert preds.shape == (n,)

    after = _conv_cols_buffers(model)
    for key, buf in buffers.items():
        assert after[key] is buf, f"conv column buffer reallocated for {key}"
    for key, plan in model.__dict__["_fastpath_plans"].items():
        assert plan.arena.allocation_count == allocs[key], key


def test_server_fastpath_predictions_match_reference():
    """End-to-end Server run (micro-batching => ragged final batches):
    served predictions equal the reference autograd path exactly."""
    model = LeNet(rng=1)
    backend = LeNetBackend(model, raspberry_pi4())
    images = rng.random((83, 1, 28, 28), dtype=np.float32)
    arrival_s = np.sort(rng.random(83)).astype(np.float64)
    server = Server(backend, max_batch_size=16, max_wait_s=0.01)
    # Feeding the reference-path predictions as "labels" turns the report's
    # accuracy into an equivalence check: every served prediction must
    # match the autograd path (modulo argmax ties on near-equal logits).
    ref = model.predict(images, fastpath=False)
    report = server.serve(images, arrival_s, labels=ref, scenario="fastpath-equivalence")
    assert report.accuracy > 0.99  # <1% argmax ties between GEMM orders


def test_server_branchynet_ragged_batches_match_reference():
    backend = BranchyNetBackend(BranchyLeNet(rng=2), raspberry_pi4(), threshold=1.5)
    images = rng.random((45, 1, 28, 28), dtype=np.float32)
    arrival_s = np.sort(rng.random(45)).astype(np.float64)
    server = Server(backend, max_batch_size=8, max_wait_s=0.01)
    ref = backend.branchynet.infer(images, threshold=1.5, fastpath=False).predictions
    report = server.serve(images, arrival_s, labels=ref, scenario="fastpath-branchy")
    assert report.accuracy > 0.99  # <1% argmax ties between GEMM orders
