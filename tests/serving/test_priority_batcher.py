"""Unit tests for the priority-aware micro-batcher and the class specs."""

import pytest

from repro.serving.classes import ClassSet, RequestClass, default_classes
from repro.serving.priority import PriorityBatcher


@pytest.fixture
def classes():
    return ClassSet(
        (
            RequestClass("interactive", 0, 0.05, 0.5, max_wait_s=0.001),
            RequestClass("standard", 1, 0.2, 0.3),
            RequestClass("batch", 2, 1.0, 0.2, max_wait_s=0.016),
        )
    )


class TestFlushOrdering:
    def test_priority_first_fifo_within_class(self, classes):
        b = PriorityBatcher(classes, max_batch_size=8, max_wait_s=0.004)
        b.add(0, 0.0, cls=2)
        b.add(1, 0.001, cls=1)
        b.add(2, 0.002, cls=0)
        b.add(3, 0.003, cls=2)
        b.add(4, 0.004, cls=0)
        assert b.flush() == [2, 4, 1, 0, 3]
        assert len(b) == 0

    def test_cap_retains_lower_priority(self, classes):
        b = PriorityBatcher(classes, max_batch_size=2, max_wait_s=0.004)
        b.add(0, 0.0, cls=2)
        b.add(1, 0.001, cls=0)
        b.add(2, 0.002, cls=1)
        assert b.flush() == [1, 2]  # batch-class request left queued
        assert len(b) == 1 and b.queue_depth(2) == 1
        assert b.flush() == [0]

    def test_fifo_arm_is_class_blind(self, classes):
        b = PriorityBatcher(classes, max_batch_size=8, ordering="fifo")
        b.add(0, 0.0, cls=2)
        b.add(1, 0.001, cls=0)
        b.add(2, 0.002, cls=1)
        assert b.flush() == [0, 1, 2]

    def test_fifo_tie_breaks_on_req_id(self, classes):
        b = PriorityBatcher(classes, max_batch_size=8, ordering="fifo")
        b.add(5, 0.0, cls=2)
        b.add(3, 0.0, cls=0)
        assert b.flush() == [3, 5]


class TestWaitCaps:
    def test_deadline_is_earliest_class_cap(self, classes):
        b = PriorityBatcher(classes, max_batch_size=8, max_wait_s=0.004)
        b.add(0, 0.0, cls=2)  # batch: fires at 0.016
        assert b.deadline_s == pytest.approx(0.016)
        b.add(1, 0.002, cls=1)  # standard: default cap -> 0.006
        assert b.deadline_s == pytest.approx(0.006)
        b.add(2, 0.003, cls=0)  # interactive preempts -> 0.004
        assert b.deadline_s == pytest.approx(0.004)

    def test_should_flush_on_deadline_or_full(self, classes):
        b = PriorityBatcher(classes, max_batch_size=2, max_wait_s=0.004)
        assert not b.should_flush(10.0)  # empty never flushes
        b.add(0, 0.0, cls=2)
        assert not b.should_flush(0.001)
        assert b.should_flush(0.016)
        b.add(1, 0.001, cls=2)  # full batch flushes regardless of deadline
        assert b.should_flush(0.001)

    def test_fifo_arm_uses_uniform_cap(self, classes):
        b = PriorityBatcher(classes, max_batch_size=8, max_wait_s=0.004, ordering="fifo")
        b.add(0, 0.0, cls=0)  # interactive's tight cap is ignored
        assert b.deadline_s == pytest.approx(0.004)


class TestDrain:
    def test_drain_returns_everything_in_enqueue_order(self, classes):
        b = PriorityBatcher(classes, max_batch_size=2, max_wait_s=0.004)
        b.add(0, 0.0, cls=2)
        b.add(1, 0.001, cls=0)
        b.add(2, 0.002, cls=1)
        assert b.drain() == [0, 1, 2]
        assert len(b) == 0 and not b

    def test_empty_deadline_is_inf(self, classes):
        b = PriorityBatcher(classes)
        assert b.deadline_s == float("inf")
        assert b.flush() == []


class TestValidation:
    def test_bad_ordering_rejected(self, classes):
        with pytest.raises(ValueError):
            PriorityBatcher(classes, ordering="random")

    def test_bad_knobs_rejected(self, classes):
        with pytest.raises(ValueError):
            PriorityBatcher(classes, max_batch_size=0)
        with pytest.raises(ValueError):
            PriorityBatcher(classes, max_wait_s=-1.0)


class TestClassSpecs:
    def test_request_class_validation(self):
        with pytest.raises(ValueError):
            RequestClass("", 0, 0.05, 1.0)
        with pytest.raises(ValueError):
            RequestClass("x", 0, -0.05, 1.0)
        with pytest.raises(ValueError):
            RequestClass("x", 0, 0.05, 0.0)
        with pytest.raises(ValueError):
            RequestClass("x", 0, 0.05, 1.0, max_wait_s=-0.001)

    def test_class_set_rejects_duplicates_and_empty(self):
        with pytest.raises(ValueError):
            ClassSet(())
        with pytest.raises(ValueError):
            ClassSet(
                (RequestClass("a", 0, 0.1, 1.0), RequestClass("a", 1, 0.2, 1.0))
            )

    def test_by_priority_and_shares(self, classes):
        assert classes.by_priority == (0, 1, 2)
        assert classes.code("batch") == 2
        assert sum(classes.shares) == pytest.approx(1.0)
        assert classes.shares[0] == pytest.approx(0.5)

    def test_wait_caps_fall_back_to_default(self, classes):
        assert classes.wait_caps(0.004) == (0.001, 0.004, 0.016)

    def test_validate_codes(self, classes):
        import numpy as np

        codes = classes.validate_codes([0, 1, 2, 0], 4)
        assert codes.dtype == np.int8
        with pytest.raises(ValueError):
            classes.validate_codes([0, 1], 4)
        with pytest.raises(ValueError):
            classes.validate_codes([0, 3, 0, 0], 4)

    def test_default_classes_shape(self):
        cs = default_classes(slo_s=0.05, max_wait_s=0.004)
        assert cs.names() == ("interactive", "standard", "batch")
        inter, standard, batch = cs
        assert inter.deadline_s == pytest.approx(0.05)
        assert standard.deadline_s == pytest.approx(0.2)
        assert batch.deadline_s == pytest.approx(1.0)
        assert cs.wait_caps(0.004) == (0.001, 0.004, 0.016)
