"""EdgeTier end to end on toy (untrained) models: conservation, queues,
cloud composition (Server and Cluster), codecs, and degradation."""

from __future__ import annotations

from dataclasses import replace

import numpy as np
import pytest

from repro.cluster.engine import Cluster
from repro.hw.devices import gci_cpu, raspberry_pi4
from repro.hw.network import BandwidthTrace, NetworkLink, wifi
from repro.models.branchynet import BranchyLeNet
from repro.offload.engine import (
    EdgeTier,
    RemoteTrunkBackend,
    cloud_server_for,
    offload_comparison_table,
)
from repro.offload.policies import (
    AlwaysLocal,
    AlwaysRemote,
    DeadlineAware,
    EntropyGated,
    TensorCodec,
)
from repro.serving.arrivals import poisson_arrivals
from repro.serving.engine import Server


@pytest.fixture(scope="module")
def stream():
    rng = np.random.default_rng(0)
    images = rng.normal(size=(200, 1, 28, 28)).astype(np.float32)
    labels = rng.integers(0, 10, 200)
    arrival_s = poisson_arrivals(250.0, 200, rng=1)
    return images, arrival_s, labels


@pytest.fixture(scope="module")
def branchy(stream):
    # Untrained model: pin the gate threshold at the median branch
    # entropy of the test stream, so roughly half the samples land on
    # each side and every policy exercises both paths.
    model = BranchyLeNet(rng=0, entropy_threshold=1.0)
    images, _, _ = stream
    model.entropy_threshold = float(np.median(model.branch_entropies(images)))
    return model


def _tier(branchy, policy, link=None, codec=None, cloud=None, **kwargs):
    link = link or wifi()
    cloud = cloud or cloud_server_for(
        policy, branchy, gci_cpu(), max_batch_size=8, max_wait_s=0.002
    )
    return EdgeTier(
        branchy, raspberry_pi4(), link, cloud, policy, codec=codec, rng=3, **kwargs
    )


class TestConservationAndRouting:
    def test_counts_partition_the_stream(self, branchy, stream):
        images, arrival_s, labels = stream
        report = _tier(branchy, EntropyGated()).serve(images, arrival_s, labels=labels)
        assert (
            report.n_local_easy + report.n_local_hard + report.n_offloaded
            == report.n_requests
            == 200
        )
        assert 0.0 < report.offload_rate < 1.0
        assert report.n_local_hard == 0  # gated: every hard sample ships
        assert np.isfinite(report.p95_s) and report.p95_s > 0

    def test_always_local_never_touches_the_link(self, branchy, stream):
        images, arrival_s, labels = stream
        report = _tier(branchy, AlwaysLocal()).serve(images, arrival_s, labels=labels)
        assert report.n_offloaded == 0
        assert report.uplink_bytes == 0
        assert report.radio_energy_j == 0.0
        assert np.isnan(report.network_mean_s) and np.isnan(report.cloud_mean_s)
        assert report.cloud_report is None

    def test_always_remote_ships_raw_images(self, branchy, stream):
        images, arrival_s, labels = stream
        report = _tier(branchy, AlwaysRemote()).serve(images, arrival_s, labels=labels)
        assert report.n_offloaded == report.n_requests
        assert report.uplink_bytes == 200 * 28 * 28 * 4
        assert report.edge_mean_s == 0.0 and report.edge_energy_j == 0.0
        assert report.cloud_report.n_requests == 200

    def test_gated_uplink_bytes_are_stem_payloads(self, branchy, stream):
        images, arrival_s, _ = stream
        report = _tier(branchy, EntropyGated()).serve(images, arrival_s)
        stem_elems = 4 * 12 * 12
        assert report.uplink_bytes == report.n_offloaded * stem_elems * 4

    def test_served_predictions_match_plain_inference(self, branchy, stream):
        # Lossless wire + per-request predictions == threshold-gated
        # BranchyNet inference, wherever each sample physically ran.
        images, arrival_s, _ = stream
        expected = branchy.infer(images).predictions
        policy = EntropyGated()
        cloud = cloud_server_for(policy, branchy, gci_cpu(), max_batch_size=8)
        tier = _tier(branchy, policy, cloud=cloud)
        report = tier.serve(images, arrival_s, labels=expected)
        assert report.accuracy == pytest.approx(1.0)


class TestClockAndQueues:
    def test_completions_never_precede_arrivals(self, branchy, stream):
        images, arrival_s, _ = stream
        for policy in (AlwaysLocal(), AlwaysRemote(), EntropyGated()):
            report = _tier(branchy, policy).serve(images, arrival_s)
            assert report.mean_s > 0
            assert report.max_s >= report.p99_s >= report.p95_s >= report.p50_s

    def test_deterministic_under_seed(self, branchy, stream):
        images, arrival_s, labels = stream
        lossy = NetworkLink(
            name="lossy", uplink_mbps=10.0, downlink_mbps=10.0,
            rtt_s=0.02, jitter_s=0.005, loss_rate=0.2,
        )
        reports = [
            _tier(branchy, EntropyGated(), link=lossy).serve(
                images, arrival_s, labels=labels
            )
            for _ in range(2)
        ]
        # Field-wise equality (the embedded cloud report's accuracy is
        # NaN — no labels are forwarded upstream — so dataclass == would
        # trip over NaN != NaN).
        a, b = reports
        assert replace(a, cloud_report=None) == replace(b, cloud_report=None)
        assert a.cloud_report.p99_s == b.cloud_report.p99_s
        assert a.cloud_report.duration_s == b.cloud_report.duration_s

    def test_empty_stream_rejected(self, branchy):
        tier = _tier(branchy, AlwaysLocal())
        with pytest.raises(ValueError, match="empty"):
            tier.serve(np.zeros((0, 1, 28, 28), np.float32), np.zeros(0))

    def test_mismatched_lengths_rejected(self, branchy):
        tier = _tier(branchy, AlwaysLocal())
        with pytest.raises(ValueError, match="arrival times"):
            tier.serve(np.zeros((3, 1, 28, 28), np.float32), np.zeros(2))

    def test_decreasing_arrivals_rejected(self, branchy):
        tier = _tier(branchy, AlwaysLocal())
        with pytest.raises(ValueError, match="non-decreasing"):
            tier.serve(np.zeros((2, 1, 28, 28), np.float32), np.array([1.0, 0.5]))

    def test_slow_uplink_queues_offloads(self, branchy, stream):
        # 0.05 Mbps: a 9216-byte stem payload takes ~1.5 s to serialize,
        # so consecutive offloads must queue behind one another.
        images, arrival_s, _ = stream
        crawl = NetworkLink(
            name="crawl", uplink_mbps=0.05, downlink_mbps=10.0, rtt_s=0.0
        )
        report = _tier(branchy, EntropyGated(), link=crawl).serve(
            images[:40], arrival_s[:40]
        )
        if report.n_offloaded >= 2:
            # Mean network time must exceed one serialization: queueing.
            one_tx = crawl.serialization_s(report.uplink_bytes // report.n_offloaded)
            assert report.network_mean_s > one_tx


class TestCloudComposition:
    def test_cluster_as_cloud_tier(self, branchy, stream):
        images, arrival_s, labels = stream
        backends = [
            RemoteTrunkBackend(branchy, gci_cpu()),
            RemoteTrunkBackend(branchy, gci_cpu()),
        ]
        cluster = Cluster(backends, policy="least-outstanding", slo_s=0.05, rng=5)
        report = _tier(branchy, EntropyGated(), cloud=cluster).serve(
            images, arrival_s, labels=labels
        )
        assert report.n_offloaded > 0
        assert report.cloud_report.n_served == report.n_offloaded
        assert np.isfinite(report.p99_s)

    def test_shedding_cloud_does_not_poison_the_report(self, branchy, stream):
        # A cloud cluster under admission control sheds requests (NaN
        # completion); those must surface as n_unserved, not as NaN
        # percentiles or a corrupted downlink queue.
        from repro.cluster.admission import AdmissionController

        images, arrival_s, labels = stream
        cluster = Cluster(
            [RemoteTrunkBackend(branchy, gci_cpu())],
            policy="least-outstanding",
            admission=AdmissionController(max_outstanding=1, policy="reject"),
            slo_s=0.05,
            rng=5,
        )
        report = _tier(branchy, EntropyGated(), cloud=cluster).serve(
            images, arrival_s, labels=labels
        )
        assert report.n_unserved > 0
        assert report.cloud_report.n_shed == report.n_unserved
        assert np.isfinite(report.p95_s) and np.isfinite(report.mean_s)
        # Requests the cloud did serve still completed after the downlink.
        assert report.n_offloaded > report.n_unserved

    def test_cloud_without_serve_detailed_rejected(self, branchy):
        with pytest.raises(TypeError, match="serve_detailed"):
            EdgeTier(
                branchy, raspberry_pi4(), wifi(), object(), EntropyGated()
            )

    def test_remote_trunk_backend_matches_trunk(self, branchy):
        rng = np.random.default_rng(7)
        images = rng.normal(size=(16, 1, 28, 28)).astype(np.float32)
        feats = branchy.stem_features(images)
        backend = RemoteTrunkBackend(branchy, gci_cpu())
        expected = branchy.infer(images, threshold=-1.0).predictions
        np.testing.assert_array_equal(backend.predict(feats), expected)

    def test_remote_trunk_timing_is_static(self, branchy):
        backend = RemoteTrunkBackend(branchy, gci_cpu())
        t8 = backend.batch_service_s(8)
        t16 = backend.batch_service_s(16)
        per_item = backend.timing.per_item_s
        assert t16 - t8 == pytest.approx(8 * per_item)


class TestCodecsAndDegradation:
    def test_quantized_codec_shrinks_wire_and_keeps_shapes(self, branchy, stream):
        images, arrival_s, _ = stream
        full = _tier(branchy, EntropyGated()).serve(images, arrival_s)
        small = _tier(branchy, EntropyGated(), codec=TensorCodec("uint8")).serve(
            images, arrival_s
        )
        assert small.n_offloaded == full.n_offloaded  # decision is codec-free
        assert small.uplink_bytes < 0.3 * full.uplink_bytes

    def test_bandwidth_collapse_steers_deadline_policy_local(self, branchy, stream):
        images, arrival_s, _ = stream
        span = float(arrival_s[-1])
        dead = NetworkLink(
            name="collapsing", uplink_mbps=20.0, downlink_mbps=20.0, rtt_s=0.004,
            degradation=BandwidthTrace(times_s=(0.5 * span,), scales=(1e-4,)),
        )
        policy = DeadlineAware(deadline_s=0.05)
        report = _tier(branchy, policy, link=dead).serve(images, arrival_s)
        gated = _tier(branchy, EntropyGated(), link=dead).serve(images, arrival_s)
        # The deadline policy stops shipping once the link collapses; the
        # blind gate keeps queueing payloads on dead air.
        assert 0 < report.n_offloaded < gated.n_offloaded
        assert report.n_local_hard > 0
        assert report.p99_s < gated.p99_s

    def test_report_renders(self, branchy, stream):
        images, arrival_s, labels = stream
        report = _tier(branchy, EntropyGated()).serve(images, arrival_s, labels=labels)
        text = offload_comparison_table([report], "toy").render()
        assert "entropy-gated" in text
        assert report.summary().startswith("[entropy-gated")


class TestRetransmitAccounting:
    def test_lossless_link_reports_unit_amplification(self, branchy, stream):
        images, arrival_s, labels = stream
        link = replace(wifi(), loss_rate=0.0)
        report = _tier(branchy, AlwaysRemote(), link=link).serve(
            images, arrival_s, labels=labels
        )
        assert report.n_retransmits == 0
        assert report.retry_amplification == pytest.approx(1.0)

    def test_lossy_link_surfaces_retransmits(self, branchy, stream):
        images, arrival_s, labels = stream
        lossy = replace(wifi(), loss_rate=0.5)
        report = _tier(branchy, AlwaysRemote(), link=lossy).serve(
            images, arrival_s, labels=labels
        )
        assert report.n_retransmits > 0
        expected = 1.0 + report.n_retransmits / report.n_offloaded
        assert report.retry_amplification == pytest.approx(expected)

    def test_budget_caps_amplification(self, branchy, stream):
        """max_attempts bounds the worst-case retry amplification."""
        images, arrival_s, labels = stream
        capped = replace(wifi(), loss_rate=0.9, max_attempts=2)
        report = _tier(branchy, AlwaysRemote(), link=capped).serve(
            images, arrival_s, labels=labels
        )
        # Each offload makes two transfers (uplink + downlink), each
        # capped at max_attempts - 1 retransmits.
        assert report.retry_amplification <= 3.0 + 1e-9
        uncapped = replace(wifi(), loss_rate=0.9)
        worse = _tier(branchy, AlwaysRemote(), link=uncapped).serve(
            images, arrival_s, labels=labels
        )
        assert worse.retry_amplification > report.retry_amplification

    def test_local_only_policy_never_retransmits(self, branchy, stream):
        images, arrival_s, labels = stream
        lossy = replace(wifi(), loss_rate=0.5)
        report = _tier(branchy, AlwaysLocal(), link=lossy).serve(
            images, arrival_s, labels=labels
        )
        assert report.n_retransmits == 0
        assert report.retry_amplification == pytest.approx(1.0)

    def test_comparison_table_shows_retx_column(self, branchy, stream):
        images, arrival_s, labels = stream
        report = _tier(branchy, AlwaysRemote()).serve(images, arrival_s, labels=labels)
        table = str(offload_comparison_table([report]))
        assert "retx" in table
        assert f"{report.retry_amplification:.2f}x" in table
