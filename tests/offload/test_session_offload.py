"""EdgeTier in transport mode: session-riding offload over a shared
link — bandwidth collapse mid-transfer, mid-flight renegotiation, and
oracle/--live parity on storming links."""

from __future__ import annotations

import dataclasses
import math

import numpy as np
import pytest

from repro.hw.devices import gci_cpu, raspberry_pi4
from repro.hw.network import BandwidthTrace, wifi
from repro.models.branchynet import BranchyLeNet
from repro.netsim import (
    AIMDConfig,
    LinkFaultPlan,
    SessionTransport,
    SharedLink,
    flap_at,
)
from repro.offload.engine import EdgeTier, cloud_server_for
from repro.offload.policies import DeadlineAware, EntropyGated
from repro.serving.arrivals import poisson_arrivals
from repro.sim import offload_oracle


@pytest.fixture(scope="module")
def stream():
    rng = np.random.default_rng(0)
    images = rng.normal(size=(120, 1, 28, 28)).astype(np.float32)
    labels = rng.integers(0, 10, 120)
    arrival_s = poisson_arrivals(60.0, 120, rng=1)
    return images, arrival_s, labels


@pytest.fixture(scope="module")
def branchy(stream):
    model = BranchyLeNet(rng=0, entropy_threshold=1.0)
    images, _, _ = stream
    model.entropy_threshold = float(np.median(model.branch_entropies(images)))
    return model


def _transport(faults=None, degradation=None, seed=5, init_cwnd=16):
    link = SharedLink.from_network_link(wifi(), faults=faults or LinkFaultPlan())
    link.degradation = degradation
    return SessionTransport(link, rng=seed, aimd=AIMDConfig(init_cwnd=init_cwnd))


def _tier(branchy, policy, transport, **kwargs):
    cloud = cloud_server_for(
        policy, branchy, gci_cpu(), max_batch_size=8, max_wait_s=0.002
    )
    return EdgeTier(
        branchy,
        raspberry_pi4(),
        None,
        cloud,
        policy,
        rng=3,
        transport=transport,
        **kwargs,
    )


class TestTransportMode:
    def test_sessions_carry_every_offload(self, branchy, stream):
        images, arrival_s, labels = stream
        report = _tier(branchy, EntropyGated(), _transport()).serve(
            images, arrival_s, labels=labels
        )
        assert report.n_offloaded > 0
        assert report.n_sessions >= 1  # the handshake actually ran
        assert report.n_flap_drops == 0
        assert np.isfinite(report.p95_s)

    def test_constructor_requires_link_or_transport(self, branchy):
        cloud = cloud_server_for(
            EntropyGated(), branchy, gci_cpu(), max_batch_size=8
        )
        with pytest.raises(TypeError, match="NetworkLink or a SessionTransport"):
            EdgeTier(branchy, raspberry_pi4(), None, cloud, EntropyGated())

    def test_flap_mid_flight_renegotiates(self, branchy, stream):
        images, arrival_s, labels = stream
        # Flaps inside the serving horizon: in-air flights are presumed
        # lost, sessions drop, and the transfers resume after a fresh
        # conf-req/conf-ack — visible as extra sessions + flap drops.
        plan = LinkFaultPlan(faults=(flap_at(0.3), flap_at(0.9)))
        transport = _transport(faults=plan, init_cwnd=2)
        report = _tier(branchy, EntropyGated(), transport).serve(
            images, arrival_s, labels=labels
        )
        assert report.n_flap_drops >= 1
        # Every drop was followed by a fresh conf-req/conf-ack.
        assert report.n_sessions == report.n_flap_drops + 1
        # The ledger still balances: every offload completed.
        assert report.n_local_easy + report.n_local_hard + report.n_offloaded == 120


class TestBandwidthCollapseFallback:
    def test_deadline_aware_goes_local_when_the_trace_collapses(
        self, branchy, stream
    ):
        images, arrival_s, labels = stream
        # Healthy for the first second, then the trace collapses to
        # 0.2% of nominal mid-run — every in-progress transfer slows to
        # a crawl and the live estimate balloons past the deadline.
        collapse = BandwidthTrace(times_s=(1.0,), scales=(0.002,))
        deadline = 0.05
        report = _tier(
            branchy, DeadlineAware(deadline), _transport(degradation=collapse)
        ).serve(images, arrival_s, labels=labels)
        # The aggregate tells the story: the healthy prefix offloads,
        # then hard requests pin local once the estimate collapses.
        assert report.n_offloaded > 0, "healthy prefix offloads"
        assert report.n_local_hard > 0, "post-collapse hard requests stay local"
        n_early = int((arrival_s < 1.0).sum())
        assert report.n_offloaded < n_early, (
            "offloads stop once the trace collapses"
        )

    def test_estimates_track_the_live_window(self, branchy):
        transport = _transport(init_cwnd=1)
        before = transport.estimate_s(8_000, 0.0)
        transport.aimd.on_ack(transport.aimd.window)  # window grew
        transport.session.open(0.0)
        after = transport.estimate_s(8_000, 0.1)
        assert after < before  # fewer flights + no handshake round


class TestOracleLiveParity:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_storming_link_replays_field_for_field(self, branchy, stream, seed):
        images, arrival_s, labels = stream
        ids = np.arange(120)
        plan = LinkFaultPlan(faults=(flap_at(0.4),))
        policy = EntropyGated()

        def run(oracle):
            transport = _transport(faults=plan, seed=seed, init_cwnd=2)
            cloud_kwargs = dict(max_batch_size=8, max_wait_s=0.002)
            if oracle is not None:
                cloud = cloud_server_for(
                    policy, branchy, gci_cpu(), oracle=oracle, **cloud_kwargs
                )
                tier = EdgeTier(
                    branchy,
                    raspberry_pi4(),
                    None,
                    cloud,
                    policy,
                    oracle=oracle,
                    rng=9,
                    transport=transport,
                )
                return tier.serve(ids, arrival_s, labels=labels)
            cloud = cloud_server_for(policy, branchy, gci_cpu(), **cloud_kwargs)
            tier = EdgeTier(
                branchy,
                raspberry_pi4(),
                None,
                cloud,
                policy,
                rng=9,
                transport=transport,
            )
            return tier.serve(images, arrival_s, labels=labels)

        live = run(None)
        orc = run(offload_oracle(branchy, images))
        for f in dataclasses.fields(live):
            if f.name == "cloud_report":
                continue
            a, b = getattr(live, f.name), getattr(orc, f.name)
            if isinstance(a, float) and math.isnan(a):
                assert isinstance(b, float) and math.isnan(b), f.name
            else:
                assert a == b, f"{f.name}: live={a!r} oracle={b!r}"
        assert live.n_sessions == orc.n_sessions
        assert live.n_flap_drops == orc.n_flap_drops
