"""Offload deciders and wire codecs."""

from __future__ import annotations

import numpy as np
import pytest

from repro.offload.policies import (
    AlwaysLocal,
    AlwaysRemote,
    DeadlineAware,
    EntropyGated,
    OffloadContext,
    TensorCodec,
)


def _ctx(entropy=0.5, easy=False, local=0.010, remote=0.050) -> OffloadContext:
    return OffloadContext(
        entropy=entropy, easy=easy, est_local_s=local, est_remote_s=remote
    )


class TestDeciders:
    def test_always_local_never_ships(self):
        policy = AlwaysLocal()
        assert not policy.offload(_ctx(easy=True))
        assert not policy.offload(_ctx(easy=False, local=10.0, remote=0.001))
        assert policy.runs_gate and policy.payload == "split"

    def test_always_remote_ships_everything_without_gating(self):
        policy = AlwaysRemote()
        assert policy.offload(_ctx(easy=True))
        assert not policy.runs_gate
        assert policy.payload == "input"

    def test_entropy_gated_uses_model_gate_by_default(self):
        policy = EntropyGated()
        assert not policy.offload(_ctx(easy=True))
        assert policy.offload(_ctx(easy=False))

    def test_entropy_gated_threshold_override(self):
        policy = EntropyGated(threshold=0.3)
        # The override ignores the model's easy flag entirely.
        assert policy.offload(_ctx(entropy=0.31, easy=True))
        assert not policy.offload(_ctx(entropy=0.29, easy=False))

    def test_entropy_gated_rejects_negative_threshold(self):
        with pytest.raises(ValueError, match="threshold"):
            EntropyGated(threshold=-0.1)

    def test_deadline_aware_easy_stays_local(self):
        policy = DeadlineAware(deadline_s=0.1)
        assert not policy.offload(_ctx(easy=True, remote=0.001))

    def test_deadline_aware_ships_while_link_meets_deadline(self):
        policy = DeadlineAware(deadline_s=0.1)
        assert policy.offload(_ctx(easy=False, local=0.010, remote=0.050))

    def test_deadline_aware_falls_back_to_local_on_dead_link(self):
        policy = DeadlineAware(deadline_s=0.1)
        # Remote misses the deadline and is slower than local → stay.
        assert not policy.offload(_ctx(easy=False, local=0.200, remote=5.0))
        # Remote misses the deadline but local is even worse → ship.
        assert policy.offload(_ctx(easy=False, local=10.0, remote=5.0))

    def test_deadline_validation(self):
        with pytest.raises(ValueError, match="deadline"):
            DeadlineAware(deadline_s=0.0)


class TestTensorCodec:
    def test_wire_bytes_per_dtype(self):
        n = 576
        assert TensorCodec("float32").wire_bytes(n) == 4 * n
        assert TensorCodec("float16").wire_bytes(n) == 2 * n
        assert TensorCodec("uint8").wire_bytes(n) == n + 8
        assert TensorCodec("kmeans8").wire_bytes(n) == n + 1024

    def test_unknown_dtype_rejected(self):
        with pytest.raises(ValueError, match="codec dtype"):
            TensorCodec("int4")

    def test_negative_elems_rejected(self):
        with pytest.raises(ValueError, match="n_elems"):
            TensorCodec().wire_bytes(-1)

    def test_float32_is_identity(self):
        x = np.random.default_rng(0).normal(size=(4, 12, 12)).astype(np.float32)
        out = TensorCodec("float32").decode(x)
        np.testing.assert_array_equal(out, x)
        assert out.dtype == np.float32 and out.flags["C_CONTIGUOUS"]

    def test_float16_roundtrip_error_is_bounded(self):
        x = np.random.default_rng(1).normal(size=(256,)).astype(np.float32)
        out = TensorCodec("float16").decode(x)
        assert out.dtype == np.float32
        np.testing.assert_allclose(out, x, rtol=1e-3, atol=1e-4)

    @pytest.mark.parametrize("dtype", ["uint8", "kmeans8"])
    def test_quantized_roundtrip_error_is_bounded(self, dtype):
        x = np.random.default_rng(2).uniform(-1, 1, size=(1000,)).astype(np.float32)
        out = TensorCodec(dtype).decode(x)
        assert out.dtype == np.float32
        # 256 levels over a range of 2 → worst-case error ~ half a step.
        assert np.abs(out - x).max() < 2.5 * (2.0 / 255)

    def test_constant_tensor_quantizes_exactly(self):
        x = np.full((64,), 0.7, dtype=np.float32)
        np.testing.assert_allclose(TensorCodec("uint8").decode(x), x)

    def test_decode_is_deterministic(self):
        x = np.random.default_rng(3).normal(size=(500,)).astype(np.float32)
        for dtype in ("float16", "uint8", "kmeans8"):
            a = TensorCodec(dtype).decode(x)
            b = TensorCodec(dtype).decode(x)
            np.testing.assert_array_equal(a, b)
