"""Partition planner: enumeration, hand-computed optimality, objectives."""

from __future__ import annotations

import numpy as np
import pytest

from repro.hw.device import DeviceProfile
from repro.hw.network import NetworkLink
from repro.hw.power import PI_POWER
from repro.models.branchynet import BranchyLeNet
from repro.models.lenet import LeNet
from repro.nn.layers import Linear
from repro.nn.module import Sequential
from repro.offload.partition import (
    best_partition,
    enumerate_cuts,
    linear_path,
    partition_table,
    plan_partitions,
)
from repro.offload.policies import TensorCodec

def _device(name: str, gmacs: float) -> DeviceProfile:
    """Pure-compute device: no overheads, so latency = MACs / rate.

    Power is the paper's Pi model at utilization 1.0 → exactly 6.4 W,
    keeping the energy arithmetic hand-checkable.
    """
    return DeviceProfile(
        name=name,
        conv_gmacs=gmacs,
        dense_gmacs=gmacs,
        mem_bandwidth_gbs=1e9,  # pooling/elementwise effectively free
        layer_overhead_s=0.0,
        inference_overhead_s=0.0,
        power=PI_POWER,
        utilization=1.0,
    )


class _Toy:
    """Three-layer dense model with a narrow waist: 64 → 4 → 2048 → 8.

    One cheap layer shrinks the activation to 4 elements, then the heavy
    layers follow — the shape where a middle cut genuinely wins: compute
    a little on the edge, ship almost nothing, let the cloud do the
    heavy part.  MACs per layer: 256, 8192, 16384 (24832 total); at the
    test devices' 1e6 (edge) and 1e9 (cloud) MACs/s every latency below
    is hand-checkable.
    """

    IN_SHAPE = (64,)

    def __init__(self) -> None:
        rng = np.random.default_rng(0)
        self.body = Sequential(
            Linear(64, 4, rng=rng),
            Linear(4, 2048, rng=rng),
            Linear(2048, 8, rng=rng),
        )

    def stages(self):
        return [("body", self.body)]


def _toy_link(mbps: float, rtt_s: float = 0.0) -> NetworkLink:
    return NetworkLink(
        name="toy", uplink_mbps=mbps, downlink_mbps=mbps, rtt_s=rtt_s
    )


class TestEnumeration:
    def test_toy_cut_count_and_boundaries(self):
        layers, in_shape = linear_path(_Toy())
        cuts = enumerate_cuts(layers, in_shape)
        assert [c.index for c in cuts] == [0, 1, 2, 3]
        assert cuts[0].is_all_cloud and cuts[0].boundary_shape == (64,)
        assert cuts[-1].is_all_edge
        assert [c.boundary_elems for c in cuts] == [64, 4, 2048, 8]

    def test_empty_path_rejected(self):
        with pytest.raises(ValueError, match="empty layer path"):
            enumerate_cuts([], (1,))

    def test_reshape_boundaries_are_skipped(self):
        layers, in_shape = linear_path(LeNet(rng=0))
        cuts = enumerate_cuts(layers, in_shape)
        assert all(
            c.index == len(layers) or c.edge_layers[-1].kind != "none"
            for c in cuts
            if c.index > 0
        )

    def test_branchynet_path_is_stem_plus_trunk(self):
        branchy = BranchyLeNet(rng=0)
        layers, in_shape = linear_path(branchy)
        assert in_shape == branchy.IN_SHAPE
        # Final layer is the trunk's 10-way classifier head.
        assert layers[-1].out_shape == (10,)
        # The branch's layers are absent: total params must match stem+trunk.
        stem_trunk_params = sum(
            p.size for stage in (branchy.stem, branchy.trunk) for p in stage.parameters()
        )
        assert sum(c.params for c in layers) == stem_trunk_params


class TestHandComputedOptimum:
    def test_optimum_walks_inward_as_bandwidth_drops(self):
        edge, cloud = _device("edge", 1e-3), _device("cloud", 1.0)
        # 20 Mbps: shipping the raw 256 B input costs 0.102 ms — cheaper
        # than even the 0.256 ms first edge layer → full offload wins.
        assert best_partition(
            plan_partitions(_Toy(), edge, cloud, _toy_link(20.0))
        ).cut.index == 0
        # 0.8 Mbps: raw input now costs 2.56 ms up, but the 4-element
        # waist ships in 0.16 ms after 0.256 ms of edge compute → the
        # middle cut wins over full offload and over 24.8 ms all-edge.
        assert best_partition(
            plan_partitions(_Toy(), edge, cloud, _toy_link(0.8))
        ).cut.index == 1
        # 0.008 Mbps: even 16 B up + 32 B down cost 48 ms — staying
        # on-device (24.8 ms, ships nothing) wins.
        assert best_partition(
            plan_partitions(_Toy(), edge, cloud, _toy_link(0.008))
        ).cut.is_all_edge

    def test_mid_bandwidth_totals_by_hand(self):
        edge, cloud = _device("edge", 1e-3), _device("cloud", 1.0)
        plans = plan_partitions(_Toy(), edge, cloud, _toy_link(0.8))
        by_index = {p.cut.index: p for p in plans}
        # cut 0: 256 B up, all 24832 MACs on the cloud, 32 B down.
        assert by_index[0].total_s == pytest.approx(
            256 * 8 / 0.8e6 + 24832 / 1e9 + 32 * 8 / 0.8e6
        )
        # cut 1 (the waist): 256 MACs on the edge, 16 B up, the heavy
        # 24576 MACs on the cloud, 32 B down.
        assert by_index[1].total_s == pytest.approx(
            256 / 1e6 + 16 * 8 / 0.8e6 + 24576 / 1e9 + 32 * 8 / 0.8e6
        )
        # all-edge: pure edge compute, no wire.
        assert by_index[3].total_s == pytest.approx(24832 / 1e6)

    def test_total_is_sum_of_legs(self):
        edge, cloud = _device("edge", 1e-3), _device("cloud", 1.0)
        for plan in plan_partitions(_Toy(), edge, cloud, _toy_link(1.0, rtt_s=0.01)):
            assert plan.total_s == pytest.approx(
                plan.edge_s + plan.uplink_s + plan.cloud_s + plan.downlink_s
            )
            assert plan.network_s == pytest.approx(plan.uplink_s + plan.downlink_s)

    def test_all_edge_ships_nothing(self):
        edge, cloud = _device("edge", 1e-3), _device("cloud", 1.0)
        plan = plan_partitions(_Toy(), edge, cloud, _toy_link(1.0))[-1]
        assert plan.cut.is_all_edge
        assert plan.uplink_bytes == 0 and plan.downlink_bytes == 0
        assert plan.uplink_s == 0.0 and plan.downlink_s == 0.0


class TestObjectivesAndCodecs:
    def test_energy_objective_can_disagree_with_latency(self):
        edge, cloud = _device("edge", 1e-3), _device("cloud", 1.0)
        # A power-hungry radio (50 W transmitting vs 6.4 W computing) on
        # a fast link.  Latency-wise full offload wins (0.31 ms vs
        # 0.33 ms for the waist cut); energy-wise shipping 256 B costs
        # 12.8 mJ while computing to the waist and shipping 16 B costs
        # 1.6 + 0.8 = 2.4 mJ → the objectives pick different cuts.
        radio = NetworkLink(
            name="hot-radio",
            uplink_mbps=8.0,
            downlink_mbps=8.0,
            rtt_s=0.0,
            tx_power_w=50.0,
        )
        plans = plan_partitions(_Toy(), edge, cloud, radio)
        assert best_partition(plans, "latency").cut.index == 0
        assert best_partition(plans, "energy").cut.index == 1
        # Energy accounting is exactly compute + radio for every plan.
        for plan in plans:
            assert plan.edge_energy_j == pytest.approx(
                plan.edge_s * edge.power(edge.utilization)
                + 50.0 * radio.serialization_s(plan.uplink_bytes)
            )

    def test_unknown_objective_rejected(self):
        edge, cloud = _device("edge", 1e-3), _device("cloud", 1.0)
        plans = plan_partitions(_Toy(), edge, cloud, _toy_link(1.0))
        with pytest.raises(ValueError, match="objective"):
            best_partition(plans, "carbon")

    def test_quantized_wire_shrinks_uplink(self):
        edge, cloud = _device("edge", 1e-3), _device("cloud", 1.0)
        codec = TensorCodec("uint8")
        full = plan_partitions(_Toy(), edge, cloud, _toy_link(0.08))
        quant = plan_partitions(
            _Toy(),
            edge,
            cloud,
            _toy_link(0.08),
            wire_bytes_per_elem=codec.bytes_per_elem,
            wire_overhead_bytes=codec.overhead_bytes,
        )
        for f, q in zip(full, quant):
            if f.cut.is_all_edge:
                assert q.uplink_bytes == 0
            else:
                assert q.uplink_bytes == f.cut.boundary_elems + 8
                assert q.uplink_bytes < f.uplink_bytes

    def test_empty_plan_list_rejected(self):
        with pytest.raises(ValueError, match="no partition plans"):
            best_partition([])


class TestRendering:
    def test_partition_table_stars_each_links_best(self):
        edge, cloud = _device("edge", 1e-3), _device("cloud", 1.0)
        plans = {
            "fast": plan_partitions(_Toy(), edge, cloud, _toy_link(0.8)),
            "slow": plan_partitions(_Toy(), edge, cloud, _toy_link(0.008)),
        }
        text = partition_table(plans, "toy sweep").render()
        assert "toy sweep" in text
        assert text.count("*") == 2  # one optimum starred per link

    def test_empty_sweep_rejected(self):
        with pytest.raises(ValueError, match="no links"):
            partition_table({})
