"""Bench-history analytics: series building, changepoints, rendering.

Unit tests feed synthetic ``BENCH_<n>.json`` payloads through the pure
functions; the integration test runs the real trajectory at the repo
root and pins the one step change everyone knows is there — the
oracle-table speedup — as the top-ranked changepoint.
"""

import pytest

import bench_history
from bench_history import (
    build_series,
    detect_changepoints,
    load_records,
    render_markdown,
)


def record(index: int, **medians_s) -> tuple[int, dict]:
    return index, {"schema": 1, "medians_s": medians_s}


class TestBuildSeries:
    def test_series_carry_their_own_indices(self):
        records = [
            record(0, a=1.0, b=2.0),
            record(1, a=1.1),           # b absent: benchmarks come and go
            record(3, a=1.2, b=2.2),    # gaps in the index are fine
        ]
        series = build_series(records)
        assert series["a"] == [(0, 1.0), (1, 1.1), (3, 1.2)]
        assert series["b"] == [(0, 2.0), (3, 2.2)]

    def test_empty_records(self):
        assert build_series([]) == {}


class TestDetectChangepoints:
    def test_steps_inside_threshold_are_ignored(self):
        series = build_series([record(0, a=1.0), record(1, a=1.15)])
        assert detect_changepoints(series, threshold=0.2) == []

    def test_improvement_and_regression_kinds(self):
        series = build_series(
            [record(0, fast=1.0, slow=1.0), record(1, fast=0.2, slow=1.5)]
        )
        points = detect_changepoints(series, threshold=0.2)
        kinds = {p["test"]: p["kind"] for p in points}
        assert kinds == {"fast": "improvement", "slow": "regression"}

    def test_sorted_by_magnitude_speedups_rank_like_slowdowns(self):
        # A 5x speedup must outrank a 2x slowdown, and vice versa: the
        # sort key is symmetric in direction.
        series = build_series(
            [record(0, a=1.0, b=1.0), record(1, a=0.2, b=2.0)]
        )
        points = detect_changepoints(series, threshold=0.2)
        assert [p["test"] for p in points] == ["a", "b"]

    def test_adjacent_pairs_only(self):
        # 1.0 -> 1.15 -> 1.3: no adjacent step breaches 20% even though
        # the endpoints drifted 30% — drift is not a changepoint.
        series = build_series(
            [record(0, a=1.0), record(1, a=1.15), record(2, a=1.3)]
        )
        assert detect_changepoints(series, threshold=0.2) == []

    def test_zero_median_is_skipped(self):
        series = build_series([record(0, a=0.0), record(1, a=1.0)])
        assert detect_changepoints(series) == []

    def test_threshold_validation(self):
        with pytest.raises(ValueError, match="threshold"):
            detect_changepoints({}, threshold=0.0)


class TestRenderMarkdown:
    def test_report_marks_changepoints(self):
        records = [record(0, **{"benchmarks/t.py::x": 1.0}),
                   record(1, **{"benchmarks/t.py::x": 0.3})]
        series = build_series(records)
        points = detect_changepoints(series)
        text = render_markdown(records, series, points)
        assert "# Benchmark history" in text
        assert "t.py::x" in text
        assert "**changepoint**" in text
        assert "improvement" in text

    def test_empty_history_renders_a_hint(self):
        text = render_markdown([], {}, [])
        assert "bench-record" in text


class TestRealTrajectory:
    """The repo's own BENCH_* sequence, as `make bench-report` sees it."""

    @pytest.fixture(scope="class")
    def records(self):
        records = load_records()
        if len(records) < 4:
            pytest.skip("repo has fewer than 4 recorded baselines")
        return records

    def test_oracle_speedup_is_the_top_changepoint(self, records):
        """The oracle-table PR's ~6x speedup must rank first.

        That step (BENCH_2 -> BENCH_3 on the fleet/serving benches) is
        the largest single move in the repo's history; any future record
        big enough to displace it would itself be headline news.
        """
        points = detect_changepoints(build_series(records))
        assert points, "the known speedup went undetected"
        top = points[0]
        assert top["kind"] == "improvement"
        assert (top["from_index"], top["to_index"]) == (2, 3)
        assert top["ratio"] < 0.5

    def test_render_covers_every_record(self, records):
        text = render_markdown(
            records,
            build_series(records),
            detect_changepoints(build_series(records)),
        )
        for index, _ in records:
            assert f"BENCH_{index}" in text

    def test_default_threshold_matches_module_constant(self):
        assert bench_history.DEFAULT_THRESHOLD == pytest.approx(0.2)
