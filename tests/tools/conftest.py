"""Puts ``tools/`` on sys.path so the dev scripts import as modules.

The scripts under ``tools/`` are executables, not package members; the
tests import them directly (``import bench_history``) the same way the
scripts import each other when run from their own directory.
"""

import sys
from pathlib import Path

TOOLS_DIR = Path(__file__).resolve().parents[2] / "tools"
if str(TOOLS_DIR) not in sys.path:
    sys.path.insert(0, str(TOOLS_DIR))
