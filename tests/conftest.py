"""Shared fixtures for the test suite.

Heavy artifacts (trained pipelines) are session-scoped and sized down so
the full suite stays fast while still exercising real training.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import PipelineConfig, TrainConfig
from repro.core.pipeline import build_cbnet_pipeline, train_baseline_lenet
from repro.data import load_dataset


@pytest.fixture(scope="session")
def rng():
    return np.random.default_rng(0)


@pytest.fixture(scope="session")
def tiny_mnist():
    """A small MNIST-like split shared across tests (cached on disk)."""
    return load_dataset("mnist", n_train=600, n_test=200, seed=101)


@pytest.fixture(scope="session")
def tiny_fmnist():
    return load_dataset("fmnist", n_train=600, n_test=200, seed=101)


@pytest.fixture(scope="session")
def trained_pipeline():
    """A fully trained (small) CBNet pipeline for integration tests."""
    config = PipelineConfig(
        dataset="mnist",
        seed=7,
        n_train=1500,
        n_test=400,
        classifier_train=TrainConfig(epochs=6),
        autoencoder_train=TrainConfig(epochs=6, batch_size=128),
        cache=True,
    )
    return build_cbnet_pipeline(config)


@pytest.fixture(scope="session")
def trained_lenet(trained_pipeline):
    """A baseline LeNet trained on the same data as the pipeline."""
    model, _ = train_baseline_lenet(
        "mnist",
        config=TrainConfig(epochs=6),
        seed=7,
        n_train=1500,
        n_test=400,
        cache=True,
    )
    return model
