"""Chaos experiment smoke: run_chaos_comparison on a toy fleet, including
the acceptance assertion — under one seeded storm the resilient arm
strictly beats the naive arm on availability AND interactive p99 SLO."""

import numpy as np
import pytest

from repro.experiments.chaos import run_chaos_comparison
from repro.serving.backends import BatchTiming, InferenceBackend


class ToyBackend(InferenceBackend):
    """Constant-rate toy model: label = pixel-sum mod 10."""

    name = "toy"

    def __init__(self, per_item_s=0.0008):
        super().__init__(BatchTiming(overhead_s=0.001, per_item_s=per_item_s))

    def predict(self, images, decision=None):
        return (images.reshape(images.shape[0], -1).sum(axis=1)).astype(np.int64) % 10


@pytest.fixture(scope="module")
def toy_chaos():
    rng = np.random.default_rng(0)
    images = rng.random((64, 1, 4, 4)).astype(np.float32)
    labels = (images.reshape(64, -1).sum(axis=1)).astype(np.int64) % 10
    return run_chaos_comparison(
        seed=0,
        n_requests=1500,
        backends=[ToyBackend() for _ in range(4)],
        images=images,
        labels=labels,
    )


class TestArmsShareTheStorm:
    def test_same_trace_both_arms(self, toy_chaos):
        n, r = toy_chaos.naive, toy_chaos.resilient
        assert n.n_requests == r.n_requests == 1500
        assert n.arrival_rate_hz == pytest.approx(r.arrival_rate_hz)
        assert n.slo_s == pytest.approx(r.slo_s)

    def test_storm_has_every_fault_kind(self, toy_chaos):
        kinds = {f.kind for f in toy_chaos.plan.faults}
        assert {"slowdown", "partition", "flaky", "heal"} <= kinds
        assert any(e.kind == "crash" for e in toy_chaos.plan.failures)

    def test_deterministic_given_seed(self, toy_chaos):
        rng = np.random.default_rng(0)
        images = rng.random((64, 1, 4, 4)).astype(np.float32)
        labels = (images.reshape(64, -1).sum(axis=1)).astype(np.int64) % 10
        again = run_chaos_comparison(
            seed=0,
            n_requests=1500,
            backends=[ToyBackend() for _ in range(4)],
            images=images,
            labels=labels,
        )
        assert again.plan == toy_chaos.plan
        assert again.resilient == toy_chaos.resilient
        assert again.naive == toy_chaos.naive


class TestAcceptance:
    def test_resilient_strictly_beats_naive(self, toy_chaos):
        n, r = toy_chaos.naive, toy_chaos.resilient
        assert r.availability > n.availability
        assert r.slo_attainment > n.slo_attainment

    def test_naive_actually_suffered(self, toy_chaos):
        """The win must be over a storm that really hurt: the naive arm
        lost requests and failed batches."""
        n = toy_chaos.naive
        assert n.n_unserved > 0
        assert n.n_batch_failures > 0
        assert n.availability < 1.0

    def test_defences_actually_fired(self, toy_chaos):
        r = toy_chaos.resilient
        assert r.n_retried > 0
        assert r.n_hedged > 0
        assert r.n_breaker_trips > 0

    def test_toy_predictions_really_ran(self, toy_chaos):
        assert toy_chaos.resilient.accuracy == 1.0


class TestRender:
    def test_render_mentions_both_arms_and_the_headline(self, toy_chaos):
        text = toy_chaos.render()
        assert "naive" in text
        assert "resilient" in text
        assert "availability" in text
        assert "p99 SLO" in text

    def test_storm_summary_counts(self, toy_chaos):
        summary = toy_chaos.storm_summary()
        assert "flaky" in summary and "crash" in summary
        assert f"storm seed {toy_chaos.plan.seed}" in summary
