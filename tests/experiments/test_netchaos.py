"""Netchaos experiment smoke: run_netchaos_comparison end to end,
including the CLI subcommand and the rendered verdict lines."""

import numpy as np
import pytest

from repro.experiments.netchaos import _net_storm_for, run_netchaos_comparison
from repro.netsim import DEGRADE, FLAP, OUTAGE
from repro.utils.rng import as_generator


@pytest.fixture(scope="module")
def comparison():
    return run_netchaos_comparison(fast=True, seed=0, n_storms=3)


class TestStormShape:
    def test_every_kind_always_present(self):
        for seed in range(6):
            plan = _net_storm_for(40.0, as_generator(seed))
            kinds = [f.kind for f in plan.faults]
            assert kinds.count(OUTAGE) == 1
            assert kinds.count(DEGRADE) == 2
            assert kinds.count(FLAP) == 2

    def test_seeded_jitter_moves_the_windows(self):
        a = _net_storm_for(40.0, as_generator(1))
        b = _net_storm_for(40.0, as_generator(2))
        assert a.faults != b.faults


class TestComparison:
    def test_arms_share_the_fleet_shape(self, comparison):
        for run in comparison.runs:
            n, r = run.naive, run.resilient
            assert n.n_requests == r.n_requests == comparison.n_requests
            assert np.array_equal(n.arrival_s, r.arrival_s)  # same trace
            assert n.deadline_s == r.deadline_s == comparison.deadline_s

    def test_resilient_wins_each_storm(self, comparison):
        assert comparison.n_wins == len(comparison.runs)
        assert comparison.total_lost == 0
        assert comparison.total_double == 0
        for run in comparison.runs:
            assert run.resilient.n_offloaded > 0  # it still uses the link

    def test_render_carries_the_verdict(self, comparison):
        text = comparison.render()
        assert "Network chaos" in text
        assert "resilient wins 3/3" in text
        assert "0 transfers lost, 0 double-delivered" in text

    def test_n_storms_validated(self):
        with pytest.raises(ValueError, match="n_storms"):
            run_netchaos_comparison(n_storms=0)


class TestCli:
    def test_netchaos_subcommand(self, capsys):
        from repro.experiments.cli import main

        assert main(["netchaos", "--fast"]) == 0
        out = capsys.readouterr().out
        assert "deadline-SLO attainment" in out
        assert "resilient wins 10/10" in out
