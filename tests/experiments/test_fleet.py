"""Fleet experiment smoke: the full run_fleet_comparison path on a toy
fleet (no training), including the acceptance-shaped assertions the real
benchmark makes on trained models."""

import numpy as np
import pytest

from repro.experiments.fleet import FLEET_SCENARIOS, FleetSpec, run_fleet_comparison
from repro.serving.backends import BatchTiming, InferenceBackend
from repro.serving.router import RouteDecision


class ToyBackend(InferenceBackend):
    """Constant-rate toy model: label = pixel-sum mod 10."""

    name = "toy"

    def __init__(self, per_item_s, overhead_s=0.0008):
        super().__init__(BatchTiming(overhead_s=overhead_s, per_item_s=per_item_s))

    def predict(self, images, decision=None):
        return (images.reshape(images.shape[0], -1).sum(axis=1)).astype(np.int64) % 10


class RoutedToy(ToyBackend):
    """Dynamic toy: images with mean > 0.55 pay a 4x hard path."""

    name = "routed-toy"

    def __init__(self, per_item_s):
        super().__init__(per_item_s)
        self.timing = BatchTiming(
            overhead_s=0.0008,
            per_item_s=per_item_s,
            gate_s=0.0002,
            per_hard_extra_s=3 * per_item_s,
        )

    def route(self, images):
        means = images.reshape(images.shape[0], -1).mean(axis=1)
        return RouteDecision(easy=means <= 0.55, entropy=means)


@pytest.fixture(scope="module")
def toy_comparison():
    rng = np.random.default_rng(0)
    images = rng.random((400, 1, 4, 4)).astype(np.float32)
    labels = (images.reshape(400, -1).sum(axis=1)).astype(np.int64) % 10
    spec = FleetSpec(
        # pi-ish / cpu-ish / gpu-ish per-item times: an 18x spread, like
        # the calibrated testbeds.
        backends=(ToyBackend(0.004), ToyBackend(0.0006), ToyBackend(0.0002)),
        spawn_backend=lambda: ToyBackend(0.0006),
        degrade_backends=(RoutedToy(0.004), RoutedToy(0.0006), RoutedToy(0.0002)),
    )
    return run_fleet_comparison(
        fast=True, seed=0, n_requests=1200, fleet=spec, images=images, labels=labels
    )


class TestPolicyGrid:
    def test_all_scenarios_and_policies_present(self, toy_comparison):
        assert set(toy_comparison.policy_reports) == set(FLEET_SCENARIOS)
        for reports in toy_comparison.policy_reports.values():
            assert len(reports) == 4
            for r in reports:
                assert r.n_requests == 1200
                assert r.accuracy == 1.0  # toy predictions really ran

    def test_same_trace_per_scenario(self, toy_comparison):
        for reports in toy_comparison.policy_reports.values():
            rates = {round(r.arrival_rate_hz, 6) for r in reports}
            assert len(rates) == 1

    def test_power_of_two_beats_round_robin_tail_in_flash_crowd(self, toy_comparison):
        rr = toy_comparison.report_for("flash-crowd", "round-robin")
        p2c = toy_comparison.report_for("flash-crowd", "power-of-two")
        assert p2c.p99_s < rr.p99_s

    def test_render_contains_every_study(self, toy_comparison):
        text = toy_comparison.render()
        for scenario in FLEET_SCENARIOS:
            assert scenario in text
        assert "Autoscaler vs fixed" in text
        assert "Failure injection" in text


class TestAutoscalerStudy:
    def test_autoscaler_matches_slo_at_lower_cost(self, toy_comparison):
        fixed, auto = toy_comparison.autoscaler_reports
        assert auto.slo_attainment >= fixed.slo_attainment
        assert auto.replica_seconds <= fixed.replica_seconds
        assert auto.scale_ups > 0


class TestFailureStudy:
    def test_outage_is_visible_and_absorbed(self, toy_comparison):
        r = toy_comparison.failure_report
        assert r.n_crashes == 1
        assert r.n_retried + r.n_degraded > 0  # the outage actually bit
        assert r.n_unserved == 0  # the fleet absorbed it
        assert r.availability == 1.0


def test_unknown_scenario_rejected():
    with pytest.raises(ValueError):
        run_fleet_comparison(scenarios=("steady", "lunar"))


def test_jobs_grid_matches_serial():
    """`--jobs` parallelism is a pure speedup: per-cell seeds make the
    process-pool grid bit-identical to the serial one."""
    rng = np.random.default_rng(3)
    images = rng.random((200, 1, 4, 4)).astype(np.float32)
    labels = (images.reshape(200, -1).sum(axis=1)).astype(np.int64) % 10

    def spec():
        return FleetSpec(
            backends=(ToyBackend(0.002), ToyBackend(0.0005)),
            spawn_backend=lambda: ToyBackend(0.0005),
        )

    kwargs = dict(
        fast=True,
        seed=0,
        n_requests=400,
        scenarios=("steady", "flash-crowd"),
        images=images,
        labels=labels,
    )
    serial = run_fleet_comparison(fleet=spec(), jobs=1, **kwargs)
    parallel = run_fleet_comparison(fleet=spec(), jobs=2, **kwargs)
    for scenario in kwargs["scenarios"]:
        for a, b in zip(serial.policy_reports[scenario], parallel.policy_reports[scenario]):
            assert a == b


def test_cli_rejects_mismatched_scenario():
    from repro.experiments.cli import main

    with pytest.raises(SystemExit):
        main(["serve", "--scenario", "diurnal"])  # fleet-only load shape
    with pytest.raises(SystemExit):
        main(["fleet", "--scenario", "bursty"])  # serve-only load shape


def test_custom_fleet_requires_images():
    spec = FleetSpec(
        backends=(ToyBackend(0.001),), spawn_backend=lambda: ToyBackend(0.001)
    )
    with pytest.raises(ValueError):
        run_fleet_comparison(fleet=spec)
