"""Offload experiment smoke: sweep + rendering without training.

The full trained-pipeline study is asserted in
``benchmarks/test_offload_split.py``; here the sweep helper and the
study container run on untrained models so the experiment path stays
covered by the tier-1 suite.
"""

import numpy as np
import pytest

from repro.experiments.offload import OFFLOAD_CODECS, OffloadStudy, _split_sweep
from repro.hw.devices import gci_cpu, raspberry_pi4
from repro.models.branchynet import BranchyLeNet
from repro.models.lenet import LeNet
from repro.offload.engine import OffloadReport


def _toy_report(policy: str, p95: float) -> OffloadReport:
    return OffloadReport(
        policy=policy,
        link="lte",
        codec="float32",
        scenario="steady",
        n_requests=100,
        n_local_easy=90,
        n_local_hard=0,
        n_offloaded=10,
        n_unserved=0,
        uplink_bytes=10 * 2304,
        duration_s=1.0,
        throughput_rps=100.0,
        arrival_rate_hz=100.0,
        mean_s=0.01,
        p50_s=0.005,
        p95_s=p95,
        p99_s=2 * p95,
        max_s=3 * p95,
        edge_mean_s=0.002,
        network_mean_s=0.04,
        cloud_mean_s=0.001,
        edge_utilization=0.5,
        edge_energy_j=0.1,
        radio_energy_j=0.05,
        accuracy=0.99,
    )


class TestSplitSweep:
    def test_sweep_covers_models_and_links(self):
        tables, lines = _split_sweep(
            {"lenet": LeNet(rng=0), "branchynet": BranchyLeNet(rng=0)},
            raspberry_pi4(),
            gci_cpu(),
        )
        assert len(tables) == 2
        rendered = "\n".join(t.render() for t in tables)
        assert "lenet split sweep" in rendered
        assert "branchynet split sweep" in rendered
        for link in ("ethernet", "wifi", "lte"):
            assert f"{link} (ms)" in rendered
        # One best-split breakdown line per (model, link) + the header.
        assert len(lines) == 1 + 2 * 3


class TestStudyContainer:
    def _study(self) -> OffloadStudy:
        tables, lines = _split_sweep({"lenet": LeNet(rng=0)}, raspberry_pi4(), gci_cpu())
        return OffloadStudy(
            dataset="mnist",
            edge="raspberry-pi4",
            cloud="gci-cpu",
            link="lte",
            n_requests=100,
            exit_rate=0.9,
            arrival_rate_hz=400.0,
            gate_s=0.0018,
            local_mean_s=0.0026,
            uplink_occupancy_s=0.0021,
            sweep_tables=tables,
            breakdown_lines=lines,
            policy_reports=[
                _toy_report("always-local", 0.5),
                _toy_report("entropy-gated", 0.05),
            ],
            codec_reports=[_toy_report("entropy-gated", 0.05) for _ in OFFLOAD_CODECS],
        )

    def test_render_contains_every_section(self):
        text = self._study().render()
        assert "lenet split sweep" in text
        assert "Offload policies (mnist, raspberry-pi4 -> gci-cpu over lte)" in text
        assert "Wire codecs" in text
        assert "accuracy delta" in text

    def test_report_for_lookup(self):
        study = self._study()
        assert study.report_for("entropy-gated").p95_s == pytest.approx(0.05)
        with pytest.raises(KeyError, match="no report"):
            study.report_for("nonexistent")

    def test_toy_report_invariants(self):
        r = _toy_report("always-local", 0.5)
        assert r.offload_rate == pytest.approx(0.1)
        assert r.uplink_mb == pytest.approx(10 * 2304 / 1e6)
        assert r.total_energy_j == pytest.approx(0.15)
        assert np.isfinite(r.energy_mj_per_request)
        assert r.summary().startswith("[always-local/lte/steady]")
