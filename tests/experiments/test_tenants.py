"""Tenants experiment smoke: the full run_tenants_comparison path on a
toy fleet (no training), including the acceptance-shaped assertion the
real benchmark makes — priority beats FIFO on interactive SLO
attainment under overload without starving batch."""

import numpy as np
import pytest

from repro.experiments.fleet import FleetSpec
from repro.experiments.tenants import TENANT_ARMS, run_tenants_comparison
from repro.serving.backends import BatchTiming, InferenceBackend


class ToyBackend(InferenceBackend):
    """Constant-rate toy model: label = pixel-sum mod 10."""

    name = "toy"

    def __init__(self, per_item_s, overhead_s=0.0008):
        super().__init__(BatchTiming(overhead_s=overhead_s, per_item_s=per_item_s))

    def predict(self, images, decision=None):
        return (images.reshape(images.shape[0], -1).sum(axis=1)).astype(np.int64) % 10


def _toy_spec():
    return FleetSpec(
        backends=(ToyBackend(0.0006), ToyBackend(0.0006), ToyBackend(0.0006)),
        spawn_backend=lambda: ToyBackend(0.0006),
    )


@pytest.fixture(scope="module")
def toy_comparison():
    rng = np.random.default_rng(0)
    images = rng.random((400, 1, 4, 4)).astype(np.float32)
    labels = (images.reshape(400, -1).sum(axis=1)).astype(np.int64) % 10
    return run_tenants_comparison(
        fast=True,
        seed=0,
        n_requests=2000,
        fleet=_toy_spec(),
        images=images,
        labels=labels,
    )


class TestArms:
    def test_both_arms_replay_the_identical_trace(self, toy_comparison):
        fifo, prio = (toy_comparison.report_for(a) for a in TENANT_ARMS)
        assert fifo.n_requests == prio.n_requests == 2000
        assert fifo.arrival_rate_hz == prio.arrival_rate_hz
        # Same class mix on both sides, request for request.
        for a, b in zip(fifo.class_reports, prio.class_reports):
            assert a.name == b.name
            assert a.n_requests == b.n_requests

    def test_toy_predictions_really_ran(self, toy_comparison):
        for arm in TENANT_ARMS:
            for cr in toy_comparison.report_for(arm).class_reports:
                if cr.n_served:
                    assert cr.accuracy == 1.0


class TestAcceptance:
    def test_priority_beats_fifo_on_interactive_slo(self, toy_comparison):
        code = toy_comparison.classes.code("interactive")
        fifo = toy_comparison.report_for("fifo").class_reports[code]
        prio = toy_comparison.report_for("priority").class_reports[code]
        assert prio.slo_attainment > fifo.slo_attainment
        assert prio.p99_s < fifo.p99_s

    def test_batch_is_throttled_not_starved(self, toy_comparison):
        code = toy_comparison.classes.code("batch")
        batch = toy_comparison.report_for("priority").class_reports[code]
        assert batch.n_served > 0
        assert batch.n_unserved == 0


class TestRendering:
    def test_render_mentions_every_class_and_arm(self, toy_comparison):
        text = toy_comparison.render()
        for arm in TENANT_ARMS:
            assert arm in text
        for name in toy_comparison.classes.names():
            assert name in text
        assert "interactive SLO attainment" in text


def test_live_matches_oracle_per_class():
    rng = np.random.default_rng(1)
    images = rng.random((200, 1, 4, 4)).astype(np.float32)
    labels = (images.reshape(200, -1).sum(axis=1)).astype(np.int64) % 10
    kwargs = dict(
        fast=True, seed=0, n_requests=600, images=images, labels=labels
    )
    orc = run_tenants_comparison(fleet=_toy_spec(), live=False, **kwargs)
    live = run_tenants_comparison(fleet=_toy_spec(), live=True, **kwargs)
    for arm in TENANT_ARMS:
        assert live.report_for(arm).class_reports == orc.report_for(arm).class_reports


def test_custom_fleet_requires_images():
    with pytest.raises(ValueError):
        run_tenants_comparison(fleet=_toy_spec())


def test_overload_must_exceed_capacity():
    with pytest.raises(ValueError):
        run_tenants_comparison(overload=0.9)
