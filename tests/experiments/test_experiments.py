"""Integration tests for the experiment harness (tables/figures engines).

Heavy full-scale regeneration lives in benchmarks/; here each engine runs
against the small session-scoped trained pipeline so structure, maths and
rendering are verified quickly.
"""

import numpy as np
import pytest

from repro.eval.runner import evaluate_dataset
from repro.experiments.scalability import run_scalability
from repro.experiments.table1 import run_table1
from repro.hw.devices import device_profiles
from repro.models.autoencoder import TABLE1_SPECS


class TestTable1:
    def test_structure_matches_specs(self):
        result = run_table1()
        for name, spec in TABLE1_SPECS.items():
            rows = [r for r in result.rows if r["dataset"] == name and r["layer"].startswith("Fully")]
            sizes = [r["size"] for r in rows]
            assert sizes == [*spec.layer_sizes, spec.input_dim]
            activations = [r["activation"] for r in rows]
            assert activations == [*spec.activations, spec.output_activation]

    def test_param_counts_positive(self):
        result = run_table1()
        fc_rows = [r for r in result.rows if r["layer"].startswith("Fully")]
        assert all(r["params"] > 0 for r in fc_rows)

    def test_render_contains_all_datasets(self):
        text = run_table1().render()
        for name in TABLE1_SPECS:
            assert name in text


class TestEvaluateDataset:
    @pytest.fixture(scope="class")
    def evaluation(self, trained_pipeline, trained_lenet):
        return evaluate_dataset(trained_pipeline, trained_lenet)

    def test_all_cells_present(self, evaluation):
        for model in ("lenet", "branchynet", "cbnet"):
            for device in device_profiles():
                cell = evaluation.cell(model, device)
                assert cell.latency_ms > 0
                assert 0 <= cell.accuracy_pct <= 100

    def test_cbnet_fastest_everywhere(self, evaluation):
        for device in device_profiles():
            t_cb = evaluation.cell("cbnet", device).latency_ms
            t_br = evaluation.cell("branchynet", device).latency_ms
            t_le = evaluation.cell("lenet", device).latency_ms
            assert t_cb < t_le
            assert t_cb < t_br

    def test_energy_savings_consistent_with_latency(self, evaluation):
        """Same power model for all CPU models → savings == latency ratio."""
        for device in ("raspberry-pi4", "gci-cpu"):
            cell = evaluation.cell("cbnet", device)
            t_le = evaluation.cell("lenet", device).latency_ms
            expected = 100 * (1 - cell.latency_ms / t_le)
            assert cell.energy_savings_vs_lenet_pct == pytest.approx(expected, abs=0.5)

    def test_speedups_recorded(self, evaluation):
        cell = evaluation.cell("cbnet", "raspberry-pi4")
        assert cell.speedup_vs_lenet > 1.0
        assert evaluation.cell("lenet", "raspberry-pi4").speedup_vs_lenet is None

    def test_exit_rate_recorded(self, evaluation):
        assert 0.0 <= evaluation.early_exit_rate <= 1.0

    def test_ae_share_below_half(self, evaluation):
        """Paper: AE contributes up to ~25% of CBNet latency."""
        for share in evaluation.ae_latency_share.values():
            assert 0.0 < share < 0.5

    def test_missing_cell_raises(self, evaluation):
        with pytest.raises(KeyError):
            evaluation.cell("resnet", "raspberry-pi4")


class TestScalability:
    @pytest.fixture(scope="class")
    def result(self, trained_pipeline):
        return run_scalability(
            "mnist", ratios=(0.2, 0.6, 1.0), artifacts=trained_pipeline
        )

    def test_points_cover_ratios(self, result):
        assert [p.ratio for p in result.points] == [0.2, 0.6, 1.0]

    def test_sample_counts_grow(self, result):
        ns = [p.n_samples for p in result.points]
        assert ns == sorted(ns)
        assert result.points[-1].n_samples == 400  # full test set

    def test_total_time_grows_with_ratio(self, result):
        for device in device_profiles():
            times = [p.cbnet_total_s[device] for p in result.points]
            assert times == sorted(times)

    def test_cbnet_time_below_branchynet_time(self, result):
        for p in result.points:
            for device in device_profiles():
                assert p.cbnet_total_s[device] < p.branchy_total_s[device]

    def test_accuracies_reasonable(self, result):
        for p in result.points:
            assert p.branchy_accuracy_pct > 80
            assert p.cbnet_accuracy_pct > 80

    def test_render_works(self, result):
        text = result.render()
        assert "scalability" in text
        assert "BranchyNet" in text


class TestCli:
    def test_table1_via_cli(self, capsys):
        from repro.experiments.cli import main

        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "Table I" in out

    def test_unknown_experiment_rejected(self):
        from repro.experiments.cli import main

        with pytest.raises(SystemExit):
            main(["tableX"])
