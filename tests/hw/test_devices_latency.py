"""Unit tests for device calibration and the latency model."""

import numpy as np
import pytest

from repro.core.cbnet import CBNet
from repro.hw.devices import (
    device_profiles,
    PAPER_MNIST_EXIT_RATE,
    TABLE2_MNIST_MS,
    calibrate_device,
    gci_cpu,
    gci_gpu,
    raspberry_pi4,
)
from repro.hw.latency import (
    branchynet_expected_latency,
    cbnet_latency,
    lenet_latency,
    model_latency,
)
from repro.models import BranchyLeNet, ConvertingAutoencoder, LeNet, LightweightClassifier


@pytest.fixture(scope="module")
def models():
    branchy = BranchyLeNet(rng=0)
    return {
        "lenet": LeNet(rng=0),
        "branchy": branchy,
        "cbnet": CBNet(
            ConvertingAutoencoder.for_dataset("mnist", rng=0),
            LightweightClassifier.from_branchynet(branchy),
        ),
    }


class TestCalibration:
    def test_profiles_positive(self):
        for dev in device_profiles().values():
            assert dev.conv_gmacs > 0
            assert dev.dense_gmacs > 0
            assert dev.layer_overhead_s >= 0
            assert dev.sync_overhead_s >= 0

    def test_devices_ordered_by_speed(self, models):
        """Pi slower than GCI slower than GPU — for every model."""
        pi, gci, gpu = raspberry_pi4(), gci_cpu(), gci_gpu()
        for fn in (
            lambda d: lenet_latency(models["lenet"], d),
            lambda d: cbnet_latency(models["cbnet"], d).total,
        ):
            assert fn(pi) > fn(gci) > fn(gpu)

    @pytest.mark.parametrize("device_name", list(TABLE2_MNIST_MS))
    def test_lenet_latency_within_25pct_of_table2(self, models, device_name):
        dev = calibrate_device(device_name)
        target_ms = TABLE2_MNIST_MS[device_name]["lenet"]
        got_ms = lenet_latency(models["lenet"], dev) * 1e3
        assert got_ms == pytest.approx(target_ms, rel=0.25)

    @pytest.mark.parametrize("device_name", list(TABLE2_MNIST_MS))
    def test_branchynet_latency_within_25pct_of_table2(self, models, device_name):
        dev = calibrate_device(device_name)
        target_ms = TABLE2_MNIST_MS[device_name]["branchynet"]
        got = branchynet_expected_latency(
            models["branchy"], dev, PAPER_MNIST_EXIT_RATE
        ).expected
        assert got * 1e3 == pytest.approx(target_ms, rel=0.25)

    @pytest.mark.parametrize("device_name", list(TABLE2_MNIST_MS))
    def test_cbnet_latency_within_25pct_of_table2(self, models, device_name):
        dev = calibrate_device(device_name)
        target_ms = TABLE2_MNIST_MS[device_name]["cbnet"]
        got = cbnet_latency(models["cbnet"], dev).total
        assert got * 1e3 == pytest.approx(target_ms, rel=0.25)

    def test_unknown_device_raises(self):
        with pytest.raises(KeyError):
            calibrate_device("tpu-v9")

    def test_calibration_description_records_residuals(self):
        assert "residual" in raspberry_pi4().description


class TestLatencyModel:
    def test_branchynet_expected_interpolates(self, models):
        dev = raspberry_pi4()
        lat = branchynet_expected_latency(models["branchy"], dev, 0.5)
        assert lat.early_path < lat.expected < lat.full_path

    def test_exit_rate_bounds(self, models):
        dev = raspberry_pi4()
        with pytest.raises(ValueError):
            branchynet_expected_latency(models["branchy"], dev, 1.5)

    def test_exit_rate_one_equals_early_path(self, models):
        dev = raspberry_pi4()
        lat = branchynet_expected_latency(models["branchy"], dev, 1.0)
        assert lat.expected == pytest.approx(lat.early_path)

    def test_higher_exit_rate_is_faster(self, models):
        dev = raspberry_pi4()
        lats = [
            branchynet_expected_latency(models["branchy"], dev, p).expected
            for p in (0.2, 0.5, 0.9)
        ]
        assert lats[0] > lats[1] > lats[2]

    def test_cbnet_decomposition(self, models):
        dev = raspberry_pi4()
        lat = cbnet_latency(models["cbnet"], dev)
        assert lat.total == pytest.approx(lat.autoencoder + lat.classifier)
        assert 0.0 < lat.autoencoder_share < 0.5

    def test_cbnet_beats_branchynet_at_paper_operating_point(self, models):
        """The headline Table II relation, device by device."""
        for dev in device_profiles().values():
            t_cb = cbnet_latency(models["cbnet"], dev).total
            t_br = branchynet_expected_latency(
                models["branchy"], dev, PAPER_MNIST_EXIT_RATE
            ).expected
            t_le = lenet_latency(models["lenet"], dev)
            assert t_cb < t_br < t_le

    def test_model_latency_positive_and_additive(self, models):
        dev = gci_cpu()
        t = model_latency(models["lenet"], dev)
        assert t > 0

    def test_sync_overhead_only_charged_to_branchynet(self, models):
        """CBNet's static pipeline pays no gating overhead."""
        base = raspberry_pi4()
        from dataclasses import replace

        loaded = replace(base, sync_overhead_s=base.sync_overhead_s + 1.0)
        cb_delta = (
            cbnet_latency(models["cbnet"], loaded).total
            - cbnet_latency(models["cbnet"], base).total
        )
        br_delta = (
            branchynet_expected_latency(models["branchy"], loaded, 0.9).expected
            - branchynet_expected_latency(models["branchy"], base, 0.9).expected
        )
        assert cb_delta == pytest.approx(0.0)
        assert br_delta == pytest.approx(1.0)


class TestProfileCaching:
    def test_profiles_memoized_but_mapping_fresh(self):
        first, second = device_profiles(), device_profiles()
        assert first is not second  # caller mutations cannot leak
        for name in first:
            assert first[name] is second[name]  # calibration ran once
        first.pop("gci-k80")
        assert "gci-k80" in device_profiles()

    def test_default_calibration_memoized(self):
        assert calibrate_device("gci-cpu") is calibrate_device("gci-cpu")

    def test_custom_targets_bypass_the_cache(self):
        default = calibrate_device("gci-cpu")
        custom = calibrate_device(
            "gci-cpu", targets_ms={"lenet": 2.0, "branchynet": 0.6, "cbnet": 0.4}
        )
        assert custom is not default
        assert custom.conv_gmacs != pytest.approx(default.conv_gmacs)

    def test_devices_alias_warns_but_matches(self):
        import warnings

        from repro.hw.devices import DEVICES

        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            via_alias = DEVICES()
        assert any(issubclass(w.category, DeprecationWarning) for w in caught)
        assert via_alias == device_profiles()

    def test_devices_alias_reachable_lazily_from_package(self):
        # repro.hw no longer imports the shim eagerly; attribute access
        # resolves it on demand and calling it still warns.
        import warnings

        import repro.hw as hw

        assert "DEVICES" not in vars(hw)  # not bound at import time
        shim = hw.DEVICES
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            assert shim() == device_profiles()
        assert any(issubclass(w.category, DeprecationWarning) for w in caught)

    def test_unknown_package_attribute_still_raises(self):
        import repro.hw as hw

        with pytest.raises(AttributeError, match="no attribute"):
            hw.NOT_A_THING
