"""Unit tests for FLOPs/memory accounting."""

import numpy as np
import pytest

from repro.hw.flops import layer_cost, model_cost, stage_cost
from repro.models import BranchyLeNet, ConvertingAutoencoder, LeNet
from repro.nn.layers import Conv2d, Flatten, Linear, MaxPool2d, ReLU, Softmax
from repro.nn.module import Sequential


class TestLayerCost:
    def test_conv_macs_formula(self):
        conv = Conv2d(3, 8, kernel_size=5, rng=np.random.default_rng(0))
        cost = layer_cost(conv, (3, 28, 28))
        # out 24x24, macs = 8*24*24*3*25
        assert cost.macs == 8 * 24 * 24 * 3 * 25
        assert cost.flops == 2 * cost.macs
        assert cost.kind == "conv"
        assert cost.out_shape == (8, 24, 24)

    def test_conv_padding_stride(self):
        conv = Conv2d(1, 4, kernel_size=3, stride=2, padding=1, rng=np.random.default_rng(0))
        cost = layer_cost(conv, (1, 28, 28))
        assert cost.out_shape == (4, 14, 14)

    def test_linear_macs(self):
        layer = Linear(100, 10, rng=np.random.default_rng(0))
        cost = layer_cost(layer, (100,))
        assert cost.macs == 1000
        assert cost.kind == "dense"
        assert cost.params == 1010

    def test_linear_width_mismatch_raises(self):
        layer = Linear(100, 10, rng=np.random.default_rng(0))
        with pytest.raises(ValueError):
            layer_cost(layer, (50,))

    def test_pool_cost(self):
        cost = layer_cost(MaxPool2d(2), (4, 8, 8))
        assert cost.kind == "pool"
        assert cost.out_shape == (4, 4, 4)
        assert cost.macs == 0

    def test_activation_elementwise(self):
        cost = layer_cost(ReLU(), (16, 8, 8))
        assert cost.kind == "elementwise"
        assert cost.flops == 16 * 8 * 8

    def test_softmax_costlier_than_relu(self):
        relu = layer_cost(ReLU(), (100,))
        soft = layer_cost(Softmax(), (100,))
        assert soft.flops > relu.flops

    def test_flatten_free(self):
        cost = layer_cost(Flatten(), (4, 7, 7))
        assert cost.kind == "none"
        assert cost.out_shape == (196,)
        assert cost.flops == 0

    def test_unknown_layer_raises(self):
        class Weird:
            pass

        with pytest.raises(TypeError):
            layer_cost(Weird(), (1,))


class TestStageCost:
    def test_shapes_propagate(self):
        rng = np.random.default_rng(0)
        stage = Sequential(
            Conv2d(1, 4, 5, rng=rng), ReLU(), MaxPool2d(2), Flatten(), Linear(576, 10, rng=rng)
        )
        cost = stage_cost("s", stage, (1, 28, 28))
        assert cost.out_shape == (10,)
        assert cost.macs > 0
        assert cost.params == sum(p.size for p in stage.parameters())


class TestModelCost:
    def test_lenet_total_params_match(self):
        model = LeNet(rng=0)
        stages = model_cost(model)
        total = sum(s.params for s in stages)
        assert total == model.num_parameters()

    def test_branchynet_branch_and_trunk_start_from_stem(self):
        model = BranchyLeNet(rng=0)
        stages = {s.name: s for s in model_cost(model)}
        assert set(stages) == {"stem", "branch", "trunk"}
        assert stages["branch"].out_shape == (10,)
        assert stages["trunk"].out_shape == (10,)

    def test_early_path_cheaper_than_full(self):
        """Architecture invariant behind Fig. 3: early path << full net."""
        model = BranchyLeNet(rng=0)
        stages = {s.name: s for s in model_cost(model)}
        early = stages["stem"].macs + stages["branch"].macs
        full = early + stages["trunk"].macs
        assert early < 0.25 * full

    def test_autoencoder_cost(self):
        model = ConvertingAutoencoder.for_dataset("mnist", rng=0)
        model.IN_SHAPE = (784,)
        stages = model_cost(model, in_shape=(784,))
        total_macs = sum(s.macs for s in stages)
        expected = 784 * 784 + 784 * 384 + 384 * 32 + 32 * 784
        assert total_macs == expected

    def test_missing_in_shape_raises(self):
        model = ConvertingAutoencoder.for_dataset("mnist", rng=0)
        with pytest.raises((ValueError, TypeError)):
            model_cost(model)
