"""Unit tests for the simulated utilization monitor."""

import numpy as np
import pytest

from repro.hw.monitor import UtilizationMonitor


class TestUtilizationMonitor:
    def test_trace_length(self):
        mon = UtilizationMonitor(poll_hz=10, rng=np.random.default_rng(0))
        trace = mon.trace(duration_s=2.0, busy_fraction=0.5)
        assert trace.shape == (20,)

    def test_samples_in_unit_interval(self):
        mon = UtilizationMonitor(rng=np.random.default_rng(0))
        trace = mon.trace(5.0, 0.7)
        assert trace.min() >= 0.0 and trace.max() <= 1.0

    def test_average_converges_to_duty_cycle(self):
        mon = UtilizationMonitor(poll_hz=100, noise_std=0.0, rng=np.random.default_rng(0))
        avg = mon.average_utilization(duration_s=100.0, busy_fraction=0.6)
        assert avg == pytest.approx(0.6, abs=0.03)

    def test_extremes(self):
        mon = UtilizationMonitor(noise_std=0.0, rng=np.random.default_rng(0))
        assert mon.average_utilization(10.0, 0.0) == pytest.approx(0.0)
        assert mon.average_utilization(10.0, 1.0) == pytest.approx(1.0)

    def test_invalid_args_raise(self):
        mon = UtilizationMonitor(rng=np.random.default_rng(0))
        with pytest.raises(ValueError):
            mon.trace(-1.0, 0.5)
        with pytest.raises(ValueError):
            mon.trace(1.0, 1.5)
        with pytest.raises(ValueError):
            UtilizationMonitor(poll_hz=0)
