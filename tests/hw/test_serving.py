"""Tests for the edge-serving queue simulator."""

import numpy as np
import pytest

from repro.hw.serving import ServingStats, bimodal_service_sampler, simulate_serving


class TestSimulateServing:
    def test_light_load_sojourn_near_service_time(self):
        stats = simulate_serving(0.002, arrival_rate_hz=10.0, n_requests=5000, rng=0)
        # At 2% utilization, queueing is negligible.
        assert stats.mean_s == pytest.approx(0.002, rel=0.1)
        assert stats.utilization < 0.05

    def test_heavy_load_queues_build(self):
        light = simulate_serving(0.002, arrival_rate_hz=50.0, n_requests=20000, rng=0)
        heavy = simulate_serving(0.002, arrival_rate_hz=450.0, n_requests=20000, rng=0)
        assert heavy.mean_s > light.mean_s
        assert heavy.p99_s > light.p99_s

    def test_percentiles_ordered(self):
        stats = simulate_serving(0.002, arrival_rate_hz=300.0, n_requests=10000, rng=1)
        assert stats.p50_s <= stats.p95_s <= stats.p99_s <= stats.max_s

    def test_unstable_system_rejected(self):
        with pytest.raises(ValueError):
            simulate_serving(0.01, arrival_rate_hz=200.0)

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            simulate_serving(0.0, 10.0)
        with pytest.raises(ValueError):
            simulate_serving(0.01, -1.0)
        with pytest.raises(ValueError):
            simulate_serving(0.01, 10.0, n_requests=0)

    def test_mm1_mean_close_to_theory(self):
        """M/D/1 mean sojourn: s * (1 + rho / (2 (1 - rho)))."""
        s, rate = 0.002, 300.0
        rho = s * rate
        theory = s * (1 + rho / (2 * (1 - rho)))
        stats = simulate_serving(s, rate, n_requests=200_000, rng=2)
        assert stats.mean_s == pytest.approx(theory, rel=0.05)

    def test_summary_renders(self):
        stats = simulate_serving(0.002, 10.0, n_requests=100, rng=0)
        text = stats.summary()
        assert "p95" in text and "util" in text


class TestBimodalSampler:
    def test_extremes(self):
        rng = np.random.default_rng(0)
        all_early = bimodal_service_sampler(0.001, 0.01, 1.0)(rng, 100)
        assert np.allclose(all_early, 0.001)
        all_full = bimodal_service_sampler(0.001, 0.01, 0.0)(rng, 100)
        assert np.allclose(all_full, 0.01)

    def test_mixture_mean(self):
        rng = np.random.default_rng(1)
        samples = bimodal_service_sampler(0.001, 0.01, 0.7)(rng, 100_000)
        expected = 0.7 * 0.001 + 0.3 * 0.01
        assert samples.mean() == pytest.approx(expected, rel=0.02)

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            bimodal_service_sampler(0.001, 0.01, 1.5)
        with pytest.raises(ValueError):
            bimodal_service_sampler(-1.0, 0.01, 0.5)


class TestEdgeCases:
    def test_zero_rate_arrivals_rejected(self):
        """rate = 0 would mean requests never arrive — explicit error."""
        with pytest.raises(ValueError, match="arrival rate"):
            simulate_serving(0.002, arrival_rate_hz=0.0)

    def test_offered_load_exactly_one_is_unstable(self):
        """rho == 1 has no stationary distribution; the boundary must be
        rejected, not just rho > 1."""
        with pytest.raises(ValueError, match="unstable"):
            simulate_serving(0.01, arrival_rate_hz=100.0)

    def test_offered_load_just_below_one_accepted(self):
        stats = simulate_serving(0.0099, arrival_rate_hz=100.0, n_requests=500, rng=0)
        assert stats.n_requests == 500

    def test_sampler_driven_overload_rejected(self):
        """Instability is judged on the sampler's realized mean, not a
        nominal constant."""
        sampler = bimodal_service_sampler(0.004, 0.04, exit_rate=0.5)  # mean 22 ms
        with pytest.raises(ValueError, match="unstable"):
            simulate_serving(sampler, arrival_rate_hz=50.0, rng=0)

    def test_bimodal_sampler_boundary_exit_rates(self):
        assert bimodal_service_sampler(0.001, 0.01, 0.0) is not None
        assert bimodal_service_sampler(0.001, 0.01, 1.0) is not None
        with pytest.raises(ValueError):
            bimodal_service_sampler(0.001, 0.01, -1e-9)
        with pytest.raises(ValueError):
            bimodal_service_sampler(0.001, 0.01, 1.0 + 1e-9)

    def test_bimodal_sampler_zero_full_path_rejected(self):
        with pytest.raises(ValueError):
            bimodal_service_sampler(0.001, 0.0, 0.5)

    def test_single_request_sojourn_is_service_time(self):
        stats = simulate_serving(0.003, arrival_rate_hz=5.0, n_requests=1, rng=0)
        assert stats.mean_s == pytest.approx(0.003)
        assert stats.max_s == pytest.approx(0.003)


class TestCBNetVsBranchyNetTails:
    def test_cbnet_tail_advantage_exceeds_mean_advantage(self):
        """The deployment insight: constant service (CBNet) beats bimodal
        service (BranchyNet) by more at p99 than at the mean, for equal
        arrival rates."""
        # Pi-4-like numbers: CBNet 2.07ms constant; BranchyNet 1.8/11.6ms
        # at 90% exit (mean 2.78ms).
        rate = 150.0
        cbnet = simulate_serving(0.00207, rate, n_requests=50_000, rng=3)
        branchy = simulate_serving(
            bimodal_service_sampler(0.0018, 0.0116, 0.90),
            rate,
            n_requests=50_000,
            rng=3,
        )
        mean_ratio = branchy.mean_s / cbnet.mean_s
        p99_ratio = branchy.p99_s / cbnet.p99_s
        assert p99_ratio > mean_ratio > 1.0
