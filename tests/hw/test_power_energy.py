"""Unit tests for the paper's power models and energy accounting."""

import numpy as np
import pytest

from repro.hw.devices import gci_cpu, gci_gpu, raspberry_pi4
from repro.hw.energy import energy_joules, energy_savings_percent
from repro.hw.power import (
    GCI_POWER,
    GPU_POWER,
    PI_POWER,
    PowerModel,
    gci_cpu_power,
    raspberry_pi_power,
)


class TestGciPower:
    def test_eq1_idle(self):
        # u=0: P = (2/18) * 40 = 4.444 W
        assert gci_cpu_power(0.0) == pytest.approx(2 / 18 * 40)

    def test_eq1_peak(self):
        # u=1: P = (2/18) * 180 = 20 W
        assert gci_cpu_power(1.0) == pytest.approx(20.0)

    def test_eq1_beta_effect(self):
        # beta=0.75: at u=0.5, u^0.75 ≈ 0.5946
        expected = (2 / 18) * (40 + 140 * 0.5**0.75)
        assert gci_cpu_power(0.5) == pytest.approx(expected)

    def test_monotone_in_utilization(self):
        values = [gci_cpu_power(u) for u in np.linspace(0, 1, 11)]
        assert values == sorted(values)

    def test_out_of_range_raises(self):
        with pytest.raises(ValueError):
            gci_cpu_power(1.5)


class TestPiPower:
    def test_eq2_endpoints(self):
        assert raspberry_pi_power(0.0) == pytest.approx(2.7)
        assert raspberry_pi_power(1.0) == pytest.approx(6.4)

    def test_eq2_linear(self):
        assert raspberry_pi_power(0.5) == pytest.approx((2.7 + 6.4) / 2)

    def test_out_of_range_raises(self):
        with pytest.raises(ValueError):
            raspberry_pi_power(-0.1)


class TestPowerModelDispatch:
    def test_gpu_constant(self):
        # 17.7 W CPU + 79 W GPU, independent of utilization argument.
        assert GPU_POWER(0.3) == pytest.approx(96.7)
        assert GPU_POWER(0.9) == pytest.approx(96.7)

    def test_pi_and_gci_dispatch(self):
        assert PI_POWER(1.0) == pytest.approx(6.4)
        assert GCI_POWER(1.0) == pytest.approx(20.0)

    def test_unknown_kind_raises(self):
        with pytest.raises(ValueError):
            PowerModel(kind="tpu")(0.5)


class TestEnergy:
    def test_energy_is_power_times_time(self):
        dev = raspberry_pi4()
        e = energy_joules(dev, latency_s=2.0, utilization=1.0)
        assert e == pytest.approx(2.0 * 6.4)

    def test_default_utilization_used(self):
        dev = raspberry_pi4()
        assert energy_joules(dev, 1.0) == pytest.approx(dev.power(dev.utilization))

    def test_negative_latency_raises(self):
        with pytest.raises(ValueError):
            energy_joules(raspberry_pi4(), -1.0)

    def test_savings_percent(self):
        assert energy_savings_percent(10.0, 2.0) == pytest.approx(80.0)
        assert energy_savings_percent(10.0, 10.0) == pytest.approx(0.0)

    def test_savings_negative_when_worse(self):
        assert energy_savings_percent(1.0, 2.0) == pytest.approx(-100.0)

    def test_zero_baseline_raises(self):
        with pytest.raises(ValueError):
            energy_savings_percent(0.0, 1.0)

    def test_gpu_energy_dominates_cpu_energy(self):
        """Paper §IV-E: GPU power ~6x CPU power on the K80 instance."""
        gpu = gci_gpu()
        cpu = gci_cpu()
        assert gpu.power(0.9) > 4 * cpu.power(0.9)
