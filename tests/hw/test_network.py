"""NetworkLink: validation, determinism, degradation, planning estimates."""

from __future__ import annotations

import numpy as np
import pytest

from repro.hw.network import (
    BandwidthTrace,
    NetworkLink,
    ethernet,
    lte,
    network_links,
    wifi,
)


def _link(**overrides) -> NetworkLink:
    base = dict(
        name="test",
        uplink_mbps=8.0,  # 1 byte/us: easy mental arithmetic
        downlink_mbps=16.0,
        rtt_s=0.010,
        jitter_s=0.0,
        loss_rate=0.0,
        tx_power_w=1.0,
    )
    base.update(overrides)
    return NetworkLink(**base)


class TestValidation:
    def test_zero_bandwidth_rejected(self):
        with pytest.raises(ValueError, match="bandwidth must be positive"):
            _link(uplink_mbps=0.0)
        with pytest.raises(ValueError, match="bandwidth must be positive"):
            _link(downlink_mbps=-1.0)

    def test_loss_rate_bounds(self):
        with pytest.raises(ValueError, match="loss_rate"):
            _link(loss_rate=1.0)
        with pytest.raises(ValueError, match="loss_rate"):
            _link(loss_rate=-0.1)

    def test_negative_rtt_rejected(self):
        with pytest.raises(ValueError):
            _link(rtt_s=-0.001)

    def test_negative_bytes_rejected(self):
        with pytest.raises(ValueError, match="n_bytes"):
            _link().serialization_s(-1)

    def test_bad_direction_rejected(self):
        with pytest.raises(ValueError, match="direction"):
            _link().serialization_s(100, direction="sideways")

    def test_trace_validation(self):
        with pytest.raises(ValueError, match="positive"):
            BandwidthTrace(times_s=(0.0,), scales=(0.0,))
        with pytest.raises(ValueError, match="non-decreasing"):
            BandwidthTrace(times_s=(1.0, 0.5), scales=(1.0, 1.0))
        with pytest.raises(ValueError, match="at least one"):
            BandwidthTrace(times_s=(), scales=())
        with pytest.raises(ValueError, match="step times"):
            BandwidthTrace(times_s=(0.0, 1.0), scales=(1.0,))


class TestSerialization:
    def test_exact_bytes_over_bandwidth(self):
        # 8 Mbps = 1e6 bytes/s up: 1000 bytes take exactly 1 ms.
        assert _link().serialization_s(1000) == pytest.approx(1e-3)
        # Downlink is twice as fast.
        assert _link().serialization_s(1000, direction="down") == pytest.approx(0.5e-3)

    def test_lossless_transfer_is_deterministic_without_rng(self):
        t = _link().transfer(1000)
        assert t.attempts == 1
        assert t.occupancy_s == pytest.approx(1e-3)
        assert t.propagation_s == pytest.approx(0.005)  # rtt/2
        assert t.total_s == pytest.approx(0.006)

    def test_zero_byte_payload(self):
        t = _link().transfer(0)
        assert t.occupancy_s == 0.0
        assert t.total_s == pytest.approx(0.005)


class TestLossAndDeterminism:
    def test_same_seed_same_transfers(self):
        link = _link(loss_rate=0.3, jitter_s=2e-3)
        runs = []
        for _ in range(2):
            rng = np.random.default_rng(7)
            runs.append([link.transfer(500, rng=rng) for _ in range(64)])
        assert runs[0] == runs[1]

    def test_retries_extend_occupancy(self):
        link = _link(loss_rate=0.9)
        rng = np.random.default_rng(0)
        transfers = [link.transfer(1000, rng=rng) for _ in range(32)]
        retried = [t for t in transfers if t.attempts > 1]
        assert retried, "loss_rate=0.9 should produce retries"
        for t in retried:
            assert t.occupancy_s == pytest.approx(
                t.attempts * 1e-3 + (t.attempts - 1) * link.rtt_s
            )

    def test_expected_one_way_matches_lossless_transfer(self):
        link = _link()
        expected = link.expected_one_way_s(1000)
        assert expected == pytest.approx(link.transfer(1000).total_s)

    def test_expected_one_way_grows_with_loss(self):
        lossy = _link(loss_rate=0.5)
        assert lossy.expected_one_way_s(1000) > _link().expected_one_way_s(1000)

    def test_round_trip_sums_directions(self):
        link = _link()
        assert link.expected_round_trip_s(1000, 500) == pytest.approx(
            link.expected_one_way_s(1000, direction="up")
            + link.expected_one_way_s(500, direction="down")
        )


class TestDegradation:
    def test_trace_scales_serialization(self):
        trace = BandwidthTrace(times_s=(1.0, 2.0), scales=(0.5, 2.0))
        link = _link(degradation=trace)
        base = _link().serialization_s(1000)
        assert link.serialization_s(1000, time_s=0.0) == pytest.approx(base)
        assert link.serialization_s(1000, time_s=1.5) == pytest.approx(2 * base)
        assert link.serialization_s(1000, time_s=2.0) == pytest.approx(base / 2)

    def test_scale_at_boundaries(self):
        trace = BandwidthTrace(times_s=(1.0,), scales=(0.25,))
        assert trace.scale_at(0.999) == 1.0
        assert trace.scale_at(1.0) == 0.25
        assert trace.scale_at(100.0) == 0.25


class TestPresets:
    def test_presets_registry(self):
        links = network_links()
        assert set(links) == {"ethernet", "wifi", "lte"}
        assert links["lte"].name == "lte"

    def test_preset_ordering_is_physical(self):
        # Wired beats wifi beats cellular on both bandwidth and RTT.
        e, w, c = ethernet(), wifi(), lte()
        assert e.uplink_mbps > w.uplink_mbps > c.uplink_mbps
        assert e.rtt_s < w.rtt_s < c.rtt_s
        # And cellular radios burn the most transmit power.
        assert c.tx_power_w > w.tx_power_w > e.tx_power_w

    def test_registry_rebuilt_per_call(self):
        links = network_links()
        links.pop("lte")
        assert "lte" in network_links()


class TestRetryBudget:
    def test_attempts_never_exceed_budget(self):
        link = _link(loss_rate=0.9, max_attempts=3)
        rng = np.random.default_rng(0)
        transfers = [link.transfer(1000, rng=rng) for _ in range(128)]
        assert max(t.attempts for t in transfers) <= 3
        # With 90% loss a 3-attempt budget should actually hit the cap.
        assert any(t.attempts == 3 for t in transfers)

    def test_single_attempt_budget_never_retransmits(self):
        link = _link(loss_rate=0.9, max_attempts=1)
        rng = np.random.default_rng(1)
        assert all(link.transfer(100, rng=rng).attempts == 1 for _ in range(32))

    def test_default_backoff_matches_legacy_occupancy(self):
        """retry_backoff_mult=1.0 must be bit-identical to the old
        (attempts - 1) * rtt retransmit cost."""
        flat = _link(loss_rate=0.5)
        rng = np.random.default_rng(2)
        for _ in range(64):
            t = flat.transfer(1000, rng=rng)
            tx = t.tx_s / t.attempts
            assert t.occupancy_s == t.attempts * tx + (t.attempts - 1) * flat.rtt_s

    def test_geometric_backoff_occupancy(self):
        """With mult=2 the timeout sum is rtt * (2^(n-1) - 1)."""
        link = _link(loss_rate=0.9, max_attempts=4, retry_backoff_mult=2.0)
        rng = np.random.default_rng(3)
        transfers = (link.transfer(1000, rng=rng) for _ in range(256))
        t = next(t for t in transfers if t.attempts == 4)
        tx = t.tx_s / t.attempts
        expected = 4 * tx + link.rtt_s * (2.0 ** 3 - 1.0)
        assert t.occupancy_s == pytest.approx(expected)
        # Backoff makes the lossy path strictly slower than flat timeouts.
        assert t.occupancy_s > 4 * tx + 3 * link.rtt_s

    def test_validation(self):
        with pytest.raises(ValueError, match="max_attempts"):
            _link(max_attempts=0)
        with pytest.raises(ValueError, match="retry_backoff_mult"):
            _link(retry_backoff_mult=0.9)


class TestOutages:
    def test_next_available_defers_into_gap(self):
        link = _link(outages=((1.0, 2.0), (5.0, 6.5)))
        assert link.next_available(0.5) == 0.5
        assert link.next_available(1.0) == 2.0
        assert link.next_available(1.9) == 2.0
        assert link.next_available(2.0) == 2.0  # half-open: end is usable
        assert link.next_available(5.5) == 6.5
        assert link.next_available(7.0) == 7.0

    def test_no_outages_is_identity(self):
        link = _link()
        assert link.next_available(3.25) == 3.25

    def test_outage_validation(self):
        with pytest.raises(ValueError, match="outage"):
            _link(outages=((2.0, 1.0),))
        with pytest.raises(ValueError, match="outage"):
            _link(outages=((1.0, 3.0), (2.0, 4.0)))  # overlapping


class TestSharedOutageValidator:
    """The link's outage windows run through ``repro.faults.plan``'s
    shared validator — same messages, same normalization, one code path
    for every layer that declares windows."""

    def test_messages_carry_the_owner_prefix(self):
        with pytest.raises(ValueError, match=r"test: outage window .* end > start"):
            _link(outages=((2.0, 1.0),))
        with pytest.raises(
            ValueError, match="test: outage windows must be sorted and non-overlapping"
        ):
            _link(outages=((1.0, 3.0), (2.0, 4.0)))

    def test_matches_validate_windows_directly(self):
        from repro.faults.plan import validate_windows

        windows = ((1.0, 2.0), (3.5, 4.0))
        link = _link(outages=windows)
        assert link.outages == validate_windows(windows, what="outage", owner="test")


class TestBudgetAwareEstimates:
    """``expected_one_way_s`` must price the *bounded* retry budget —
    the truncated attempt series and the backed-off timeout sum — not
    the unbounded geometric mean the pre-budget planner used."""

    def test_expected_attempts_is_the_truncated_series(self):
        p, cap = 0.5, 4
        link = _link(loss_rate=p, max_attempts=cap)
        assert link.expected_attempts() == pytest.approx((1 - p**cap) / (1 - p))
        # Strictly below the unbounded 1/(1-p): the budget truncates.
        assert link.expected_attempts() < 1.0 / (1.0 - p)
        assert _link().expected_attempts() == 1.0

    def test_expected_timeout_prices_the_backoff(self):
        p, cap, mult = 0.5, 4, 2.0
        link = _link(loss_rate=p, max_attempts=cap, retry_backoff_mult=mult)
        # rtt * sum_{k=1}^{cap-1} p^k mult^(k-1), by hand.
        by_hand = link.rtt_s * sum(p**k * mult ** (k - 1) for k in range(1, cap))
        assert link.expected_timeout_s() == pytest.approx(by_hand)

    def test_timeout_handles_the_ratio_one_singularity(self):
        link = _link(loss_rate=0.5, max_attempts=5, retry_backoff_mult=2.0)
        # p * mult == 1: the geometric ratio degenerates to a flat sum.
        assert link.expected_timeout_s() == pytest.approx(
            link.rtt_s * 0.5 * (5 - 1)
        )

    def test_single_attempt_budget_never_waits(self):
        link = _link(loss_rate=0.9, max_attempts=1)
        assert link.expected_attempts() == pytest.approx(1.0)
        assert link.expected_timeout_s() == 0.0

    def test_estimate_tracks_sampled_transfers(self):
        # The planning mean must sit inside the sampled distribution's
        # support — the drift this guards against was the estimate using
        # unbounded retries while transfer() enforced the budget.
        link = _link(loss_rate=0.4, max_attempts=3, retry_backoff_mult=2.0)
        rng = np.random.default_rng(0)
        totals = [link.transfer(1000, rng=rng).total_s for _ in range(400)]
        assert min(totals) <= link.expected_one_way_s(1000) <= max(totals)
        assert abs(np.mean(totals) - link.expected_one_way_s(1000)) < 0.2 * np.mean(
            totals
        )
