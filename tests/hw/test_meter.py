"""Tests for the simulated energy meter."""

import numpy as np
import pytest

from repro.hw.devices import gci_gpu, raspberry_pi4
from repro.hw.energy import energy_joules
from repro.hw.meter import EnergyMeter


class TestEnergyMeter:
    def test_reading_contract(self):
        meter = EnergyMeter(raspberry_pi4(), rng=np.random.default_rng(0))
        reading = meter.measure_run(per_inference_s=0.01, n_inferences=100)
        assert reading.energy_joules > 0
        assert reading.duration_s == pytest.approx(1.0)
        assert reading.n_samples >= 9

    def test_converges_to_analytical_model(self):
        """Long metered runs must agree with the paper's E = P * dt."""
        device = raspberry_pi4()
        meter = EnergyMeter(
            device, sample_hz=200.0, noise_std_watts=0.0, rng=np.random.default_rng(1)
        )
        per_inf = 0.012735  # Table II LeNet latency
        metered = meter.energy_per_inference(per_inf, n_inferences=5000)
        analytical = energy_joules(device, per_inf)
        assert metered == pytest.approx(analytical, rel=0.02)

    def test_idle_gaps_reduce_energy_per_wallclock_but_add_idle_power(self):
        device = raspberry_pi4()
        meter = EnergyMeter(device, sample_hz=500.0, noise_std_watts=0.0,
                            rng=np.random.default_rng(2))
        busy = meter.measure_run(0.01, 200, idle_gap_s=0.0)
        gappy = meter.measure_run(0.01, 200, idle_gap_s=0.01)
        # Same useful work; the gappy run draws idle power in between so
        # total energy is higher but mean power is lower.
        assert gappy.energy_joules > busy.energy_joules
        assert gappy.mean_power_watts < busy.mean_power_watts

    def test_gpu_meter_constant_power(self):
        device = gci_gpu()
        meter = EnergyMeter(device, sample_hz=100.0, noise_std_watts=0.0,
                            rng=np.random.default_rng(3))
        reading = meter.measure_run(0.001, 1000, idle_gap_s=0.001)
        assert reading.mean_power_watts == pytest.approx(96.7, rel=0.01)

    def test_noise_does_not_bias(self):
        device = raspberry_pi4()
        quiet = EnergyMeter(device, sample_hz=100.0, noise_std_watts=0.0,
                            rng=np.random.default_rng(4))
        noisy = EnergyMeter(device, sample_hz=100.0, noise_std_watts=0.3,
                            rng=np.random.default_rng(5))
        e_quiet = quiet.energy_per_inference(0.01, 3000)
        e_noisy = noisy.energy_per_inference(0.01, 3000)
        assert e_noisy == pytest.approx(e_quiet, rel=0.02)

    def test_invalid_args(self):
        meter = EnergyMeter(raspberry_pi4(), rng=np.random.default_rng(0))
        with pytest.raises(ValueError):
            meter.measure_run(0.0, 10)
        with pytest.raises(ValueError):
            meter.measure_run(0.1, 0)
        with pytest.raises(ValueError):
            meter.measure_run(0.1, 1, idle_gap_s=-1.0)
        with pytest.raises(ValueError):
            EnergyMeter(raspberry_pi4(), sample_hz=0)
