"""Shared links: validation, time-varying state, and the contended
serializer that makes fleet devices queue behind each other."""

import pytest

from repro.hw.network import BandwidthTrace, lte, wifi
from repro.netsim import (
    LinkFaultPlan,
    SharedLink,
    degradation_window,
    flap_at,
    outage_window,
)


def _shared(**kwargs):
    defaults = dict(name="cell", uplink_mbps=10.0, downlink_mbps=40.0, rtt_s=0.05)
    defaults.update(kwargs)
    return SharedLink(**defaults)


class TestConstruction:
    def test_from_network_link_copies_the_preset(self):
        base = lte()
        link = SharedLink.from_network_link(base)
        assert link.name == base.name
        assert link.uplink_mbps == base.uplink_mbps
        assert link.rtt_s == base.rtt_s
        assert link.loss_rate == base.loss_rate
        assert link.up_free_s == 0.0 and link.down_free_s == 0.0

    def test_validation(self):
        with pytest.raises(ValueError, match="bandwidth"):
            _shared(uplink_mbps=0.0)
        with pytest.raises(ValueError, match="loss_rate"):
            _shared(loss_rate=1.0)
        with pytest.raises(ValueError, match="max_mtu_bytes"):
            _shared(max_mtu_bytes=10)
        with pytest.raises(ValueError, match="codecs"):
            _shared(codecs=())

    def test_static_outages_use_the_shared_validator(self):
        with pytest.raises(ValueError, match="cell: outage window"):
            _shared(outages=((2.0, 1.0),))
        with pytest.raises(ValueError, match="sorted and non-overlapping"):
            _shared(outages=((0.0, 2.0), (1.0, 3.0)))


class TestLinkStateOverTime:
    def test_scale_composes_trace_and_fault_plan(self):
        trace = BandwidthTrace(times_s=(0.0, 10.0), scales=(1.0, 0.5))
        plan = LinkFaultPlan(
            faults=(degradation_window(10.0, 5.0, bandwidth_scale=0.4),)
        )
        link = _shared(degradation=trace, faults=plan)
        assert link.scale_at(0.0) == 1.0
        assert link.scale_at(12.0) == pytest.approx(0.5 * 0.4)

    def test_loss_adds_degrade_and_saturates(self):
        plan = LinkFaultPlan(
            faults=(degradation_window(0.0, 1.0, bandwidth_scale=0.5, loss_add=0.9),)
        )
        link = _shared(loss_rate=0.5, faults=plan)
        assert link.loss_at(0.5) == 0.999  # clamped below 1
        assert link.loss_at(2.0) == 0.5

    def test_available_at_chains_static_and_plan_outages(self):
        plan = LinkFaultPlan(faults=(outage_window(2.0, 1.0),))
        link = _shared(outages=((1.0, 2.0),), faults=plan)
        # The static window ends exactly where the plan outage begins:
        # the scan must walk through both.
        assert link.available_at(1.5) == 3.0
        assert link.available_at(3.5) == 3.5

    def test_carrier_drop_sees_both_layers(self):
        plan = LinkFaultPlan(faults=(flap_at(5.0),))
        link = _shared(outages=((1.0, 2.0),), faults=plan)
        assert link.carrier_drop_in(0.5, 1.5)  # static outage onset
        assert link.carrier_drop_in(4.0, 5.0)  # plan flap
        assert not link.carrier_drop_in(2.5, 3.5)

    def test_mtu_cap_halves_under_heavy_degradation(self):
        plan = LinkFaultPlan(
            faults=(degradation_window(0.0, 1.0, bandwidth_scale=0.3),)
        )
        link = _shared(faults=plan)
        assert link.mtu_cap_at(0.5) == 750
        assert link.mtu_cap_at(2.0) == 1500


class TestSerializer:
    def test_serialization_scales_with_degradation(self):
        link = _shared(degradation=BandwidthTrace(times_s=(5.0,), scales=(0.5,)))
        assert link.serialization_s(12_500, 0.0) == pytest.approx(0.01)
        assert link.serialization_s(12_500, 6.0) == pytest.approx(0.02)

    def test_reserve_is_fcfs_and_advances_the_horizon(self):
        link = _shared()
        s0, e0 = link.reserve(12_500, 0.0)
        s1, e1 = link.reserve(12_500, 0.0)
        assert (s0, e0) == (0.0, pytest.approx(0.01))
        assert s1 == e0 and e1 == pytest.approx(0.02)
        assert link.backlog_s(0.0) == pytest.approx(0.02)
        assert link.backlog_s(1.0) == 0.0

    def test_directions_are_independent(self):
        link = _shared()
        link.reserve(12_500, 0.0, "up")
        s, _ = link.reserve(12_500, 0.0, "down")
        assert s == 0.0
        assert link.free_at("up") > 0 and link.free_at("down") > 0

    def test_reserve_defers_past_outages(self):
        link = _shared(outages=((0.0, 1.0),))
        s, e = link.reserve(12_500, 0.5)
        assert s == 1.0 and e == pytest.approx(1.01)

    def test_serializer_rejects_bad_args(self):
        link = _shared()
        with pytest.raises(ValueError, match="n_bytes"):
            link.serialization_s(-1)
        with pytest.raises(ValueError, match="direction"):
            link.serialization_s(10, 0.0, "sideways")

    def test_wifi_lift_keeps_negotiation_surface(self):
        link = SharedLink.from_network_link(wifi(), max_mtu_bytes=1400)
        assert link.max_mtu_bytes == 1400
        assert "float32" in link.codecs
