"""Link fault plans: validation, point queries, carrier drops, storms."""

import numpy as np
import pytest

from repro.netsim import (
    DEGRADE,
    FLAP,
    OUTAGE,
    LinkFault,
    LinkFaultPlan,
    degradation_window,
    flap_at,
    link_storm,
    outage_window,
)


class TestLinkFault:
    def test_kinds_and_helpers(self):
        assert outage_window(1.0, 2.0).kind == OUTAGE
        assert degradation_window(1.0, 2.0, bandwidth_scale=0.5).kind == DEGRADE
        assert flap_at(3.0).kind == FLAP

    def test_flap_is_instantaneous(self):
        f = flap_at(2.5)
        assert f.start_s == f.end_s == 2.5
        with pytest.raises(ValueError, match="flap"):
            LinkFault(kind=FLAP, start_s=1.0, end_s=2.0)

    def test_window_must_have_positive_duration(self):
        with pytest.raises(ValueError, match="end > start"):
            LinkFault(kind=OUTAGE, start_s=2.0, end_s=2.0)

    def test_scale_and_loss_ranges(self):
        with pytest.raises(ValueError, match="bandwidth_scale"):
            degradation_window(0.0, 1.0, bandwidth_scale=0.0)
        with pytest.raises(ValueError, match="loss_add"):
            degradation_window(0.0, 1.0, bandwidth_scale=0.5, loss_add=1.0)


class TestLinkFaultPlan:
    def test_point_queries(self):
        plan = LinkFaultPlan(
            faults=(
                outage_window(1.0, 1.0),
                degradation_window(4.0, 2.0, bandwidth_scale=0.25, loss_add=0.1),
                flap_at(8.0),
            )
        )
        assert plan.available_at(0.5) == 0.5
        assert plan.available_at(1.5) == 2.0  # deferred to the outage end
        assert plan.available_at(2.0) == 2.0  # end-exclusive
        assert plan.bandwidth_scale_at(5.0) == 0.25
        assert plan.bandwidth_scale_at(3.0) == 1.0
        assert plan.loss_add_at(5.0) == pytest.approx(0.1)
        assert plan.loss_add_at(0.0) == 0.0

    def test_overlapping_outages_rejected(self):
        with pytest.raises(ValueError, match="sorted and non-overlapping"):
            LinkFaultPlan(faults=(outage_window(1.0, 3.0), outage_window(2.0, 3.0)))

    def test_carrier_drop_flags_flaps_and_outage_onsets(self):
        plan = LinkFaultPlan(faults=(outage_window(5.0, 1.0), flap_at(2.0)))
        assert plan.carrier_drop_in(1.0, 3.0)  # flap inside
        assert plan.carrier_drop_in(4.9, 5.1)  # outage onset inside
        assert not plan.carrier_drop_in(2.0, 4.0)  # (t0, t1]: flap at t0 excluded
        assert not plan.carrier_drop_in(5.5, 5.9)  # mid-outage, no new onset

    def test_empty_plan_is_falsy_and_transparent(self):
        plan = LinkFaultPlan()
        assert not plan
        assert plan.available_at(123.0) == 123.0
        assert plan.bandwidth_scale_at(123.0) == 1.0
        assert not plan.carrier_drop_in(0.0, 1e9)


class TestLinkStorm:
    def test_deterministic_and_disjoint(self):
        a = link_storm(100.0, rng=7)
        b = link_storm(100.0, rng=7)
        assert a.faults == b.faults and a.seed == b.seed
        # Outage and degrade windows are each sorted and disjoint
        # (per kind — an outage may legitimately straddle a degrade).
        for kind in (OUTAGE, DEGRADE):
            windows = [
                (f.start_s, f.end_s) for f in a.faults if f.kind == kind
            ]
            for (_, e0), (s1, _) in zip(windows, windows[1:]):
                assert e0 <= s1

    def test_different_seeds_differ(self):
        rng = np.random.default_rng(0)
        plans = {link_storm(100.0, rng=int(rng.integers(1 << 30))) for _ in range(4)}
        assert len({p.faults for p in plans}) > 1
