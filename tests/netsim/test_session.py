"""Session FSM: handshake, conf-nak negotiation, lossy control rounds,
teardown, and carrier drops."""

import pytest

from repro.hw.network import lte
from repro.netsim import (
    CLOSED,
    ESTABLISHED,
    LinkFaultPlan,
    LinkSession,
    SessionConfig,
    SharedLink,
    degradation_window,
)


def _link(**kwargs):
    return SharedLink.from_network_link(lte(), **kwargs)


class TestHandshake:
    def test_open_establishes_in_one_clean_round(self):
        link = _link()
        s = LinkSession(link, rng=0)
        done = s.open(0.0)
        assert s.state == ESTABLISHED
        assert done == pytest.approx(link.rtt_s)  # conf-req/conf-ack
        assert s.n_established == 1 and s.n_naks == 0
        assert s.config == SessionConfig(mtu_bytes=1500, codec="float32")

    def test_open_is_idempotent(self):
        s = LinkSession(_link(), rng=0)
        s.open(0.0)
        assert s.open(5.0) == 5.0
        assert s.n_established == 1

    def test_conf_nak_costs_an_extra_round(self):
        link = _link(max_mtu_bytes=1200)  # peer naks the wanted 1500
        s = LinkSession(link, wanted=SessionConfig(mtu_bytes=1500), rng=0)
        done = s.open(0.0)
        assert done == pytest.approx(2 * link.rtt_s)
        assert s.n_naks == 1
        assert s.config.mtu_bytes == 1200

    def test_unsupported_codec_nakked_to_peer_default(self):
        link = _link(codecs=("float16", "uint8"))
        s = LinkSession(link, wanted=SessionConfig(codec="float32"), rng=0)
        s.open(0.0)
        assert s.config.codec == "float16"
        assert s.n_naks == 1

    def test_lossy_control_rounds_retransmit_with_backoff(self):
        link = _link()
        link.loss_rate = 0.9
        slow = LinkSession(link, rng=1)
        done = slow.open(0.0)
        assert slow.n_handshake_retx >= 1
        # Each retransmit pays a backed-off control RTO on top of the RTT.
        assert done > link.rtt_s

    def test_handshake_retx_bounded_by_config_attempts(self):
        link = _link()
        link.loss_rate = 0.999
        s = LinkSession(link, rng=2, max_config_attempts=3)
        s.open(0.0)
        assert s.state == ESTABLISHED  # past the budget, assume delivered
        assert s.n_handshake_retx <= 2  # attempts - 1 per round

    def test_handshake_replays_deterministically(self):
        def run():
            link = _link()
            link.loss_rate = 0.5
            s = LinkSession(link, rng=7)
            return s.open(0.0), s.n_handshake_retx

        assert run() == run()


class TestRenegotiationAndTeardown:
    def test_degraded_window_negotiates_smaller_mtu(self):
        plan = LinkFaultPlan(
            faults=(degradation_window(10.0, 5.0, bandwidth_scale=0.2),)
        )
        link = _link(faults=plan)
        s = LinkSession(link, rng=0)
        assert s.negotiate(0.0).mtu_bytes == 1500
        assert s.negotiate(12.0).mtu_bytes == 750  # halved under the storm

    def test_close_clears_config(self):
        link = _link()
        s = LinkSession(link, rng=0)
        s.open(0.0)
        done = s.close(1.0)
        assert s.state == CLOSED and s.config is None
        assert done == pytest.approx(1.0 + link.rtt_s)
        assert s.n_closed == 1

    def test_close_when_closed_is_a_noop(self):
        s = LinkSession(_link(), rng=0)
        assert s.close(3.0) == 3.0
        assert s.n_closed == 0

    def test_carrier_lost_drops_without_teardown(self):
        s = LinkSession(_link(), rng=0)
        s.open(0.0)
        s.carrier_lost(2.0)
        assert s.state == CLOSED and s.config is None
        assert s.n_carrier_drops == 1
        s.carrier_lost(3.0)  # already closed: not a second drop
        assert s.n_carrier_drops == 1

    def test_reopen_after_drop_renegotiates(self):
        s = LinkSession(_link(), rng=0)
        s.open(0.0)
        s.carrier_lost(2.0)
        s.open(3.0)
        assert s.state == ESTABLISHED
        assert s.n_established == 2


def test_config_validation():
    with pytest.raises(ValueError, match="mtu_bytes"):
        SessionConfig(mtu_bytes=32)
    with pytest.raises(ValueError, match="max_config_attempts"):
        LinkSession(_link(), max_config_attempts=0)
