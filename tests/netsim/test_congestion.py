"""AIMD controller unit behavior: slow start, AI, MD, timeout collapse."""

import pytest

from repro.netsim import AIMDConfig, AIMDController


def test_config_validation():
    with pytest.raises(ValueError, match="init_cwnd"):
        AIMDConfig(init_cwnd=0)
    with pytest.raises(ValueError, match="md_factor"):
        AIMDConfig(md_factor=1.0)
    with pytest.raises(ValueError, match="max_cwnd"):
        AIMDConfig(min_cwnd=8, max_cwnd=4)


def test_slow_start_doubles_per_window():
    c = AIMDController(AIMDConfig(init_cwnd=1, init_ssthresh=32))
    assert c.in_slow_start
    for want in (2, 4, 8, 16):
        c.on_ack(c.window)  # one full window acked
        assert c.window == want


def test_congestion_avoidance_is_additive():
    c = AIMDController(AIMDConfig(init_cwnd=16, init_ssthresh=16))
    assert not c.in_slow_start
    c.on_ack(16)  # a full window in CA adds ~ai_segments
    assert c.window == 17


def test_multiplicative_decrease_halves():
    c = AIMDController(AIMDConfig(init_cwnd=32, init_ssthresh=32))
    c.on_loss()
    assert c.window == 16
    assert c.n_md == 1
    assert not c.in_slow_start  # ssthresh dropped with cwnd


def test_timeout_collapses_to_min_and_backs_off_rto():
    c = AIMDController(AIMDConfig(init_cwnd=32, init_ssthresh=32, min_cwnd=1))
    rto0 = c.rto_s(0.1)
    c.on_timeout()
    assert c.window == 1
    assert c.in_slow_start  # ssthresh halved, cwnd collapsed below it
    assert c.n_timeouts == 1 and c.n_slow_starts == 2
    rto1 = c.rto_s(0.1)
    assert rto1 > rto0  # exponential backoff while timeouts repeat
    c.on_ack(1)
    assert c.rto_s(0.1) == rto0  # an ack resets the backoff


def test_window_respects_bounds():
    c = AIMDController(AIMDConfig(init_cwnd=4, init_ssthresh=64, max_cwnd=8))
    for _ in range(64):
        c.on_ack(c.window)
    assert c.window == 8
    for _ in range(10):
        c.on_loss()
    assert c.window >= 1
