"""Fleet simulator: emergent fair share, delivery conservation, and
deterministic replay across many devices on one shared link."""

import numpy as np
import pytest

from repro.hw.network import lte
from repro.netsim import (
    AIMDConfig,
    FleetDevice,
    LinkFaultPlan,
    SharedLink,
    outage_window,
    run_fleet_net,
)
from repro.offload.policies import AlwaysLocal, AlwaysRemote, EntropyGated


def _run(n_devices=4, policy=None, faults=None, loss=0.02, **dev_kwargs):
    link = SharedLink.from_network_link(lte(), faults=faults)
    link.loss_rate = loss
    defaults = dict(rate_hz=10.0, n_requests=50, up_bytes=9_000, local_s=0.04)
    defaults.update(dev_kwargs)
    spec = FleetDevice(**defaults)
    return run_fleet_net(
        link,
        tuple(spec for _ in range(n_devices)),
        policy or AlwaysRemote(),
        deadline_s=0.5,
        rng=42,
        aimd=AIMDConfig(init_cwnd=4),
    )


class TestConservation:
    def test_every_request_terminates_exactly_once(self):
        report = _run()
        assert report.n_requests == 4 * 50
        assert report.n_offloaded + report.n_local == report.n_requests
        assert report.n_lost == 0
        assert report.n_double_delivered == 0
        assert np.isfinite(report.completion_s).all()
        assert (report.completion_s > report.arrival_s).all()

    def test_offloaded_deliveries_are_exactly_once(self):
        report = _run(loss=0.2)  # lossy: retransmits galore, still exact
        offloaded = report.outcome == 2
        assert (report.delivered_count[offloaded] == 1).all()
        assert (report.delivered_count[~offloaded] == 0).all()

    def test_retransmit_amplification_is_bounded(self):
        report = _run(loss=0.3)
        assert report.retx_amplification <= 8.0  # the max_attempts bound

    def test_always_local_never_touches_the_link(self):
        report = _run(policy=AlwaysLocal())
        assert report.n_offloaded == 0
        assert all(d.sent_bytes == 0 for d in report.devices)


class TestFairShare:
    def test_goodputs_converge_to_fair_share(self):
        # The acceptance assertion: per-device goodput on a saturated
        # lossy shared link tracks the AIMD fair share — nothing in the
        # code allocates shares; they emerge from interleaved flights
        # and per-device windows.
        report = _run(
            n_devices=4, loss=0.05, n_requests=80, rate_hz=20.0, up_bytes=12_000
        )
        goodputs = report.goodputs_bps()
        assert len(goodputs) == 4
        mean = float(np.mean(goodputs))
        assert mean > 0
        # Every device within a modest band of the mean share.
        assert float(np.max(goodputs)) <= 1.35 * mean
        assert float(np.min(goodputs)) >= 0.65 * mean

    def test_two_devices_split_what_one_gets(self):
        solo = _run(n_devices=1, loss=0.05, rate_hz=40.0, n_requests=80)
        duo = _run(n_devices=2, loss=0.05, rate_hz=40.0, n_requests=80)
        solo_bps = solo.goodputs_bps()[0]
        for bps in duo.goodputs_bps():
            assert bps < solo_bps  # contention strictly costs throughput


class TestFaultsAndDeadlines:
    def test_outage_mid_run_loses_nothing(self):
        horizon = 50 / 10.0
        plan = LinkFaultPlan(
            faults=(outage_window(0.3 * horizon, 0.2 * horizon),)
        )
        report = _run(faults=plan)
        assert report.n_lost == 0 and report.n_double_delivered == 0
        assert sum(d.carrier_drops for d in report.devices) >= 1
        assert sum(d.sessions for d in report.devices) > 4  # re-established

    def test_deadline_aware_policy_goes_local_under_outage(self):
        from repro.offload.policies import DeadlineAware

        horizon = 50 / 10.0
        plan = LinkFaultPlan(
            faults=(outage_window(0.2 * horizon, 0.6 * horizon),)
        )
        resilient = _run(policy=DeadlineAware(0.5), faults=plan)
        naive = _run(policy=EntropyGated(), faults=plan)
        assert resilient.slo_attainment > naive.slo_attainment
        # Hard requests arriving mid-outage ran local instead of waiting.
        assert resilient.n_local > naive.n_local

    def test_per_device_policy_callable(self):
        report = _run(policy=lambda dev: AlwaysLocal() if dev == 0 else AlwaysRemote())
        assert report.devices[0].n_offloaded == 0
        assert all(d.n_offloaded > 0 for d in report.devices[1:])


class TestDeterminism:
    def test_replay_is_field_for_field(self):
        a, b = _run(loss=0.1), _run(loss=0.1)
        assert np.array_equal(a.arrival_s, b.arrival_s)
        assert np.array_equal(a.completion_s, b.completion_s)
        assert np.array_equal(a.outcome, b.outcome)
        assert np.array_equal(a.delivered_count, b.delivered_count)
        assert a.devices == b.devices

    def test_seeds_change_the_run(self):
        link = SharedLink.from_network_link(lte())
        spec = FleetDevice(rate_hz=10.0, n_requests=30, up_bytes=9_000)
        runs = [
            run_fleet_net(
                SharedLink.from_network_link(lte()),
                (spec, spec),
                AlwaysRemote(),
                deadline_s=0.5,
                rng=seed,
            ).makespan_s
            for seed in (1, 2)
        ]
        assert runs[0] != runs[1]
        assert link.up_free_s == 0.0  # untouched control


def test_device_spec_validation():
    with pytest.raises(ValueError, match="rate_hz"):
        FleetDevice(rate_hz=0.0, n_requests=10, up_bytes=100)
    with pytest.raises(ValueError, match="n_requests"):
        FleetDevice(rate_hz=1.0, n_requests=0, up_bytes=100)
