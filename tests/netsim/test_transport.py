"""Session transport: AIMD-paced flights, the hard retransmit bound,
mid-flight renegotiation, and deterministic replay."""

import dataclasses

import pytest

from repro.hw.network import lte
from repro.netsim import (
    AIMDConfig,
    ESTABLISHED,
    LinkFaultPlan,
    SessionTransport,
    SharedLink,
    degradation_window,
    flap_at,
    outage_window,
)


def _link(**kwargs):
    return SharedLink.from_network_link(lte(), **kwargs)


def _clean_link(**kwargs):
    link = _link(**kwargs)
    link.loss_rate = 0.0
    link.jitter_s = 0.0
    return link


class TestBasicTransfer:
    def test_clean_send_pays_handshake_and_flights(self):
        link = _clean_link()
        tr = SessionTransport(link, rng=0, aimd=AIMDConfig(init_cwnd=4))
        result = tr.send(6_000, 0.0)  # 4 segments @1500
        assert result.n_segments == 4
        assert result.sent_bytes == 6_000 and result.retx_bytes == 0
        assert result.amplification == 1.0
        assert result.handshakes == 1 and result.flights == 1
        assert tr.session.state == ESTABLISHED
        # handshake RTT + serialization + rtt/2 to the far side
        ser = link.serialization_s(6_000, 0.0, "up")
        assert result.delivered_s == pytest.approx(link.rtt_s * 1.5 + ser)
        assert result.ack_s == pytest.approx(result.delivered_s + link.rtt_s / 2)

    def test_window_paces_multi_flight_transfers(self):
        link = _clean_link()
        tr = SessionTransport(link, rng=0, aimd=AIMDConfig(init_cwnd=2))
        result = tr.send(12_000, 0.0)  # 8 segments, cwnd 2 -> 2+4 -> done
        assert result.flights >= 2
        assert result.timeouts == 0
        assert tr.aimd.window > 2  # slow start grew it

    def test_second_transfer_reuses_the_session(self):
        tr = SessionTransport(_clean_link(), rng=0)
        first = tr.send(1_500, 0.0)
        second = tr.send(1_500, first.ack_s)
        assert first.handshakes == 1 and second.handshakes == 0
        assert tr.n_transfers == 2

    def test_start_guards(self):
        tr = SessionTransport(_clean_link(), rng=0)
        with pytest.raises(ValueError, match="n_bytes"):
            tr.start(0, 0.0)
        tr.start(100, 0.0)
        with pytest.raises(RuntimeError, match="in flight"):
            tr.start(100, 0.0)
        with pytest.raises(ValueError, match="max_attempts"):
            SessionTransport(_clean_link(), max_attempts=0)


class TestLossAndTheHardBound:
    def test_loss_forces_retransmits_but_delivers(self):
        link = _link()
        link.loss_rate = 0.3
        tr = SessionTransport(link, rng=5, aimd=AIMDConfig(init_cwnd=4))
        result = tr.send(30_000, 0.0)
        assert result.retx_segments > 0
        assert result.sent_bytes >= result.n_bytes
        assert tr.aimd.n_md + tr.aimd.n_timeouts > 0

    @pytest.mark.parametrize("seed", range(8))
    def test_amplification_never_exceeds_max_attempts(self, seed):
        link = _link()
        link.loss_rate = 0.95  # pathological storm
        tr = SessionTransport(link, rng=seed, max_attempts=4)
        result = tr.send(9_000, 0.0)
        assert result.amplification <= 4.0
        assert result.sent_bytes <= 4 * 9_000

    def test_total_loss_collapses_the_window(self):
        link = _link()
        link.loss_rate = 0.999
        tr = SessionTransport(link, rng=3, aimd=AIMDConfig(init_cwnd=8))
        tr.send(12_000, 0.0)
        assert tr.aimd.n_timeouts >= 1
        assert any(w == 1 for _, w in tr.cwnd_history)


class TestCarrierDropsAndRenegotiation:
    def test_flap_mid_transfer_renegotiates_and_resumes(self):
        plan = LinkFaultPlan(faults=(flap_at(0.08),))
        link = _clean_link(faults=plan)
        tr = SessionTransport(link, rng=0, aimd=AIMDConfig(init_cwnd=1))
        result = tr.send(30_000, 0.0)  # 20 segments: straddles the flap
        assert result.flap_resumes == 1
        assert result.handshakes == 2  # initial + post-flap
        assert tr.session.n_carrier_drops == 1
        assert result.retx_bytes > 0  # the in-air flight was presumed lost

    def test_outage_mid_transfer_defers_and_resumes(self):
        plan = LinkFaultPlan(faults=(outage_window(0.08, 0.5),))
        link = _clean_link(faults=plan)
        tr = SessionTransport(link, rng=0, aimd=AIMDConfig(init_cwnd=1))
        result = tr.send(30_000, 0.0)
        assert result.flap_resumes >= 1
        assert result.delivered_s > 0.58  # waited out the outage

    def test_session_opened_mid_storm_negotiates_the_smaller_mtu(self):
        # A session negotiated inside a heavy degradation window gets
        # conf-nak'd down to the halved MTU, re-segmenting the payload.
        plan = LinkFaultPlan(
            faults=(degradation_window(0.05, 2.0, bandwidth_scale=0.2),)
        )
        link = _clean_link(faults=plan)
        tr = SessionTransport(link, rng=0, aimd=AIMDConfig(init_cwnd=1))
        result = tr.send(3_000, 0.1)  # inside the degrade window
        assert tr.session.config.mtu_bytes == 750
        assert tr.session.n_naks == 1
        assert result.n_segments == 4  # 3000 B at MTU 750, not 2 at 1500


class TestDeterminismAndEstimates:
    def test_send_replays_field_for_field(self):
        def run():
            link = _link()
            link.loss_rate = 0.4
            tr = SessionTransport(link, rng=11, aimd=AIMDConfig(init_cwnd=2))
            return tr.send(20_000, 0.0)

        a, b = run(), run()
        assert dataclasses.asdict(a) == dataclasses.asdict(b)

    def test_estimate_is_deterministic_and_honest(self):
        link = _clean_link()
        tr = SessionTransport(link, rng=0, aimd=AIMDConfig(init_cwnd=64))
        est = tr.estimate_s(6_000, 0.0)
        assert est == tr.estimate_s(6_000, 0.0)  # no sampling
        result = tr.send(6_000, 0.0)
        # The planning estimate is deliberately conservative (it prices
        # a full ack RTT for the final flight) but stays within one RTT.
        assert result.delivered_s <= est <= result.delivered_s + 2 * link.rtt_s

    def test_estimate_collapses_with_the_link(self):
        plan = LinkFaultPlan(faults=(outage_window(1.0, 4.0),))
        link = _clean_link(faults=plan)
        tr = SessionTransport(link, rng=0)
        healthy = tr.estimate_s(6_000, 0.0)
        mid_outage = tr.estimate_s(6_000, 2.0)
        assert mid_outage >= 3.0  # defers to the outage end
        assert mid_outage > healthy

    def test_estimate_includes_serializer_backlog(self):
        link = _clean_link()
        tr = SessionTransport(link, rng=0)
        idle = tr.estimate_s(6_000, 0.0)
        link.reserve(120_000, 0.0, "up")  # someone else queued first
        assert tr.estimate_s(6_000, 0.0) > idle

    def test_send_down_rides_the_downlink_serializer(self):
        link = _clean_link()
        tr = SessionTransport(link, rng=0)
        arrival = tr.send_down(40_000, 0.0)
        ser = link.serialization_s(40_000, 0.0, "down")
        assert arrival == pytest.approx(ser + link.rtt_s / 2)
        assert link.free_at("down") == pytest.approx(ser)
        assert tr.estimate_down_s(40_000, 0.0) == pytest.approx(
            tr.estimate_down_s(40_000, 0.0)
        )
