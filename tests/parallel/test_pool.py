"""Unit tests for the process pool and work partitioning."""

import os

import numpy as np
import pytest

from repro.parallel import (
    ProcessPool,
    chunk_slices,
    even_split,
    parallel_map,
    run_sweep,
    worker_count,
)


def square(x):
    return x * x


class TestWorkerCount:
    def test_explicit(self):
        assert worker_count(3) == 3

    def test_capped_by_items(self):
        assert worker_count(8, n_items=2) == 2

    def test_default_positive(self):
        assert worker_count() >= 1

    def test_invalid_raises(self):
        with pytest.raises(ValueError):
            worker_count(0)

    def test_env_cap(self, monkeypatch):
        monkeypatch.setenv("REPRO_MAX_WORKERS", "1")
        assert worker_count() == 1


class TestParallelMap:
    def test_ordered_results(self):
        assert parallel_map(square, list(range(20)), n_workers=4) == [
            i * i for i in range(20)
        ]

    def test_serial_fallback_single_item(self):
        assert parallel_map(square, [7]) == [49]

    def test_serial_explicit(self):
        assert parallel_map(square, [1, 2, 3], n_workers=1) == [1, 4, 9]

    def test_empty(self):
        assert parallel_map(square, []) == []

    def test_matches_serial(self):
        items = list(range(37))
        assert parallel_map(square, items, n_workers=4) == [square(i) for i in items]


class TestProcessPool:
    def test_reusable_pool(self):
        with ProcessPool(n_workers=2) as pool:
            a = pool.map(square, [1, 2, 3])
            b = pool.map(square, [4, 5])
        assert a == [1, 4, 9]
        assert b == [16, 25]

    def test_serial_outside_context(self):
        pool = ProcessPool(n_workers=2)
        assert pool.map(square, [2, 3]) == [4, 9]


class TestChunking:
    def test_chunk_slices_cover(self):
        slices = chunk_slices(10, 3)
        covered = [i for s in slices for i in range(s.start, s.stop)]
        assert covered == list(range(10))
        assert [s.stop - s.start for s in slices] == [3, 3, 3, 1]

    def test_chunk_invalid(self):
        with pytest.raises(ValueError):
            chunk_slices(10, 0)
        with pytest.raises(ValueError):
            chunk_slices(-1, 2)

    def test_even_split_balanced(self):
        slices = even_split(10, 3)
        sizes = [s.stop - s.start for s in slices]
        assert sizes == [4, 3, 3]
        covered = [i for s in slices for i in range(s.start, s.stop)]
        assert covered == list(range(10))

    def test_even_split_more_workers_than_items(self):
        slices = even_split(2, 5)
        assert len(slices) == 2

    def test_even_split_invalid(self):
        with pytest.raises(ValueError):
            even_split(4, 0)


class TestSweep:
    def test_results_ordered_and_tagged(self):
        results = run_sweep(square, [3, 1, 2], n_workers=2)
        assert [r.param for r in results] == [3, 1, 2]
        assert [r.value for r in results] == [9, 1, 4]

    def test_serial_mode(self):
        results = run_sweep(square, [2, 4], parallel=False)
        assert [r.value for r in results] == [4, 16]
