"""Tests for the combined report collector."""

from pathlib import Path

import pytest

from repro.eval.report import DEFAULT_SECTIONS, collect_report


class TestCollectReport:
    def test_includes_present_sections(self, tmp_path):
        (tmp_path / "table2.txt").write_text("TABLE TWO CONTENT")
        report = collect_report(tmp_path)
        assert "TABLE TWO CONTENT" in report
        assert "Table II" in report

    def test_missing_sections_flagged(self, tmp_path):
        report = collect_report(tmp_path)
        assert report.count("*(missing") == len(DEFAULT_SECTIONS)

    def test_writes_output_file(self, tmp_path):
        (tmp_path / "fig3.txt").write_text("FIG3")
        out = tmp_path / "REPORT.md"
        collect_report(tmp_path, output_path=out)
        assert out.exists()
        assert "FIG3" in out.read_text()

    def test_section_order_follows_paper(self, tmp_path):
        for slug, _ in DEFAULT_SECTIONS:
            (tmp_path / f"{slug}.txt").write_text(slug.upper())
        report = collect_report(tmp_path)
        positions = [report.index(slug.upper()) for slug, _ in DEFAULT_SECTIONS]
        assert positions == sorted(positions)
