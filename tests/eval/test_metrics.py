"""Unit tests for evaluation metrics."""

import numpy as np
import pytest

from repro.eval.metrics import (
    LatencyStats,
    accuracy,
    confusion_matrix,
    per_class_accuracy,
    speedup,
)


class TestAccuracy:
    def test_perfect(self):
        assert accuracy(np.array([1, 2]), np.array([1, 2])) == 1.0

    def test_partial(self):
        assert accuracy(np.array([1, 0, 2, 2]), np.array([1, 1, 2, 0])) == 0.5

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            accuracy(np.array([1]), np.array([1, 2]))

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            accuracy(np.array([]), np.array([]))


class TestConfusion:
    def test_matrix_counts(self):
        preds = np.array([0, 1, 1, 2])
        labels = np.array([0, 1, 2, 2])
        cm = confusion_matrix(preds, labels, num_classes=3)
        assert cm[0, 0] == 1
        assert cm[1, 1] == 1
        assert cm[2, 1] == 1
        assert cm[2, 2] == 1
        assert cm.sum() == 4

    def test_per_class_accuracy(self):
        preds = np.array([0, 0, 1, 1])
        labels = np.array([0, 0, 1, 0])
        pca = per_class_accuracy(preds, labels)
        assert pca[0] == pytest.approx(2 / 3)
        assert pca[1] == pytest.approx(1.0)

    def test_absent_class_is_nan(self):
        pca = per_class_accuracy(np.array([0, 2]), np.array([0, 2]))
        assert np.isnan(pca[1])


class TestSpeedup:
    def test_values(self):
        assert speedup(10.0, 2.0) == pytest.approx(5.0)
        assert speedup(1.0, 1.0) == pytest.approx(1.0)

    def test_invalid_raises(self):
        with pytest.raises(ValueError):
            speedup(1.0, 0.0)


class TestLatencyStats:
    def test_from_samples(self):
        stats = LatencyStats.from_samples(np.array([1.0, 2.0, 3.0, 4.0]))
        assert stats.mean == pytest.approx(2.5)
        assert stats.p50 == pytest.approx(2.5)
        assert stats.minimum == 1.0
        assert stats.maximum == 4.0
        assert stats.n == 4

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            LatencyStats.from_samples(np.array([]))
