"""Unit tests for evaluation metrics."""

import numpy as np
import pytest

from repro.eval.metrics import (
    LatencyStats,
    accuracy,
    confusion_matrix,
    latency_percentiles,
    per_class_accuracy,
    speedup,
)


class TestAccuracy:
    def test_perfect(self):
        assert accuracy(np.array([1, 2]), np.array([1, 2])) == 1.0

    def test_partial(self):
        assert accuracy(np.array([1, 0, 2, 2]), np.array([1, 1, 2, 0])) == 0.5

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            accuracy(np.array([1]), np.array([1, 2]))

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            accuracy(np.array([]), np.array([]))


class TestConfusion:
    def test_matrix_counts(self):
        preds = np.array([0, 1, 1, 2])
        labels = np.array([0, 1, 2, 2])
        cm = confusion_matrix(preds, labels, num_classes=3)
        assert cm[0, 0] == 1
        assert cm[1, 1] == 1
        assert cm[2, 1] == 1
        assert cm[2, 2] == 1
        assert cm.sum() == 4

    def test_per_class_accuracy(self):
        preds = np.array([0, 0, 1, 1])
        labels = np.array([0, 0, 1, 0])
        pca = per_class_accuracy(preds, labels)
        assert pca[0] == pytest.approx(2 / 3)
        assert pca[1] == pytest.approx(1.0)

    def test_absent_class_is_nan(self):
        pca = per_class_accuracy(np.array([0, 2]), np.array([0, 2]))
        assert np.isnan(pca[1])


class TestSpeedup:
    def test_values(self):
        assert speedup(10.0, 2.0) == pytest.approx(5.0)
        assert speedup(1.0, 1.0) == pytest.approx(1.0)

    def test_invalid_raises(self):
        with pytest.raises(ValueError):
            speedup(1.0, 0.0)


class TestLatencyStats:
    def test_from_samples(self):
        stats = LatencyStats.from_samples(np.array([1.0, 2.0, 3.0, 4.0]))
        assert stats.mean == pytest.approx(2.5)
        assert stats.p50 == pytest.approx(2.5)
        assert stats.minimum == 1.0
        assert stats.maximum == 4.0
        assert stats.n == 4

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            LatencyStats.from_samples(np.array([]))


class TestLatencyPercentiles:
    def test_default_triplet_matches_numpy(self):
        samples = np.linspace(0.0, 1.0, 101)
        p50, p95, p99 = latency_percentiles(samples)
        assert p50 == pytest.approx(np.percentile(samples, 50))
        assert p95 == pytest.approx(np.percentile(samples, 95))
        assert p99 == pytest.approx(np.percentile(samples, 99))

    def test_custom_percentiles_and_plain_floats(self):
        (p75,) = latency_percentiles([1.0, 2.0, 3.0, 4.0], (75.0,))
        assert isinstance(p75, float)
        assert p75 == pytest.approx(3.25)

    def test_empty_and_no_percentiles_raise(self):
        with pytest.raises(ValueError):
            latency_percentiles(np.array([]))
        with pytest.raises(ValueError):
            latency_percentiles(np.array([1.0]), ())

    def test_single_call_sites_agree(self):
        # The hw queue simulation, the serving engine, and LatencyStats
        # must all report the same percentile convention.
        samples = np.random.default_rng(0).exponential(1.0, 500)
        p50, p95 = latency_percentiles(samples, (50.0, 95.0))
        stats = LatencyStats.from_samples(samples)
        assert stats.p50 == p50 and stats.p95 == p95
