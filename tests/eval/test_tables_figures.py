"""Unit tests for table/chart rendering."""

import pytest

from repro.eval.figures import Series, ascii_bar_chart, ascii_line_chart
from repro.eval.tables import Table, format_table


class TestTable:
    def test_render_aligned(self):
        table = Table(headers=["name", "value"], title="t")
        table.add_row("alpha", 1.5)
        table.add_row("b", 100.25)
        text = table.render()
        lines = text.splitlines()
        assert lines[0] == "t"
        assert "name" in lines[1] and "value" in lines[1]
        assert len(lines) == 5

    def test_row_width_mismatch_raises(self):
        table = Table(headers=["a", "b"])
        with pytest.raises(ValueError):
            table.add_row(1)

    def test_float_formatting(self):
        text = format_table(["x"], [[0.12349], [123.456], [1.5]])
        assert "0.1235" in text
        assert "123.5" in text
        assert "1.500" in text


class TestLineChart:
    def test_renders_legend_and_bounds(self):
        chart = ascii_line_chart(
            [
                Series("a", (0.0, 1.0), (0.0, 10.0)),
                Series("b", (0.0, 1.0), (10.0, 0.0)),
            ],
            title="demo",
        )
        assert "demo" in chart
        assert "o a" in chart and "x b" in chart
        assert "10" in chart

    def test_constant_series_ok(self):
        chart = ascii_line_chart([Series("flat", (0, 1, 2), (5, 5, 5))])
        assert "flat" in chart

    def test_mismatched_series_raises(self):
        with pytest.raises(ValueError):
            Series("bad", (0, 1), (1,))

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            ascii_line_chart([])


class TestBarChart:
    def test_bars_scale(self):
        chart = ascii_bar_chart(["x", "y"], [1.0, 2.0], width=10)
        lines = chart.splitlines()
        assert lines[1].count("█") > lines[0].count("█")

    def test_mismatch_raises(self):
        with pytest.raises(ValueError):
            ascii_bar_chart(["x"], [1.0, 2.0])

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            ascii_bar_chart([], [])
