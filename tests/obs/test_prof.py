"""Phase-attribution profiler: tree semantics, determinism, attribution.

Three contracts.  First, the scoped-timer bookkeeping itself — counts,
totals, self-time subtraction, nesting — pinned exactly with an
injected fake clock.  Second, determinism: profiling a deterministic
cluster replay must yield an identical phase *signature* (structure +
call counts) across runs and must not perturb the simulation (profiled
and unprofiled RequestLogs are field-for-field identical).  Third,
attribution: a slowdown injected into one engine phase must be named as
the top regressing phase by the comparison helpers — the contract
``bench_compare check`` relies on.
"""

import time

import numpy as np
import pytest
from conftest import Cluster, SumBackend, make_scenario, resilience_for

from repro.obs.prof import (
    PhaseProfiler,
    PhaseReport,
    PhaseStat,
    compare_phase_reports,
    current_profiler,
    disable_global_profiler,
    enable_global_profiler,
    top_regressing_phase,
)
from repro.sim import oracle_backend


class FakeClock:
    """Deterministic clock: advances one tick per read."""

    def __init__(self):
        self.t = 0.0

    def __call__(self):
        self.t += 1.0
        return self.t


class TestPhaseProfiler:
    def test_counts_totals_and_self_with_fake_clock(self):
        prof = PhaseProfiler(clock=FakeClock())
        prof.start("serve")        # t=1
        prof.start("dispatch")     # t=2
        prof.stop()                # t=3 -> dispatch total 1
        prof.start("dispatch")     # t=4
        prof.stop()                # t=5 -> dispatch total 2
        prof.stop()                # t=6 -> serve total 5
        report = prof.report()
        serve = report.get("serve")
        dispatch = report.get("serve", "dispatch")
        assert serve.count == 1 and dispatch.count == 2
        assert serve.total_s == 5.0 and dispatch.total_s == 2.0
        # Self = total minus children; conserves width for flamegraphs.
        assert serve.self_s == 3.0 and dispatch.self_s == 2.0
        assert report.total_s == 5.0

    def test_same_name_under_different_parents_is_two_rows(self):
        prof = PhaseProfiler(clock=FakeClock())
        with prof.phase("a"):
            with prof.phase("x"):
                pass
        with prof.phase("b"):
            with prof.phase("x"):
                pass
            with prof.phase("x"):
                pass
        report = prof.report()
        assert report.get("a", "x").count == 1
        assert report.get("b", "x").count == 2
        # ... and by_name() folds them back together for attribution.
        assert report.by_name()["x"][0] == 3

    def test_depth_tracks_open_scopes(self):
        prof = PhaseProfiler()
        assert prof.depth == 0
        prof.start("a")
        prof.start("b")
        assert prof.depth == 2
        prof.stop()
        prof.stop()
        assert prof.depth == 0

    def test_report_and_reset_refuse_open_scopes(self):
        prof = PhaseProfiler()
        prof.start("a")
        with pytest.raises(RuntimeError, match="open scope"):
            prof.report()
        with pytest.raises(RuntimeError, match="open scope"):
            prof.reset()
        prof.stop()
        prof.reset()
        assert len(prof.report()) == 0

    def test_exception_inside_phase_still_closes_scope(self):
        prof = PhaseProfiler()
        with pytest.raises(ValueError):
            with prof.phase("a"):
                raise ValueError("boom")
        assert prof.depth == 0
        assert prof.report().get("a").count == 1


class TestComparison:
    def _report(self, **self_s):
        return PhaseReport(
            [PhaseStat((name,), 1, s, s) for name, s in self_s.items()]
        )

    def test_rows_sorted_by_delta_and_top_named(self):
        base = self._report(ingest=1.0, dispatch=2.0, report=0.5)
        new = self._report(ingest=1.1, dispatch=5.0, report=0.4)
        rows = compare_phase_reports(base, new)
        assert [r[0] for r in rows] == ["dispatch", "ingest", "report"]
        name, base_s, new_s, delta = rows[0]
        assert (base_s, new_s) == (2.0, 5.0) and delta == pytest.approx(3.0)
        assert top_regressing_phase(base, new) == "dispatch"

    def test_accepts_to_dict_payloads(self):
        base = self._report(a=1.0)
        new = self._report(a=3.0, b=0.1)
        assert top_regressing_phase(base.to_dict(), new.to_dict()) == "a"

    def test_phase_missing_from_one_side_counts_as_zero(self):
        rows = compare_phase_reports(self._report(a=1.0), self._report(b=2.0))
        assert rows[0] == ("b", 0.0, 2.0, 2.0)
        assert rows[-1] == ("a", 1.0, 0.0, -1.0)

    def test_empty_reports_raise(self):
        with pytest.raises(ValueError, match="empty"):
            top_regressing_phase(PhaseReport([]), PhaseReport([]))


def run_profiled(sc, backends=None):
    """One profiled oracle replay of a scenario; returns (log, report)."""
    if backends is None:
        backends = [oracle_backend(b, sc.images) for b in sc.backends()]
    prof = PhaseProfiler()
    cluster = Cluster(
        backends,
        policy="least-outstanding",
        faults=sc.plan,
        resilience=resilience_for(sc),
        slo_s=4.0 * sc.service_scale_s(),
        max_batch_size=sc.max_batch,
        max_wait_s=sc.max_wait_s,
        cache_capacity=0,
        rng=sc.seed,
        prof=prof,
    )
    _, log = cluster.serve_log(sc.ids, sc.arrival_s, labels=sc.labels[sc.ids])
    return log, prof.report()


class TestDeterminism:
    @pytest.mark.parametrize("seed", (0, 3))
    def test_identical_signature_across_replays(self, seed):
        sc = make_scenario(seed)
        _, first = run_profiled(sc)
        _, second = run_profiled(sc)
        assert first.signature() == second.signature()
        assert len(first.signature()) > 3  # a real tree, not a stub

    def test_profiling_does_not_perturb_the_simulation(self):
        sc = make_scenario(1)
        backends = [oracle_backend(b, sc.images) for b in sc.backends()]
        cluster = Cluster(
            backends,
            policy="least-outstanding",
            faults=sc.plan,
            resilience=resilience_for(sc),
            slo_s=4.0 * sc.service_scale_s(),
            max_batch_size=sc.max_batch,
            max_wait_s=sc.max_wait_s,
            cache_capacity=0,
            rng=sc.seed,
        )
        _, bare = cluster.serve_log(sc.ids, sc.arrival_s, labels=sc.labels[sc.ids])
        profiled, _ = run_profiled(sc)
        for col in ("arrival_s", "completion_s", "replica_id", "route", "prediction"):
            np.testing.assert_array_equal(
                getattr(bare, col), getattr(profiled, col), err_msg=col
            )

    def test_phase_tree_covers_the_engine_loop(self):
        sc = make_scenario(2)
        _, report = run_profiled(sc)
        names = {r.name for r in report.rows}
        assert {"serve", "event_loop", "ingest", "dispatch", "report"} <= names
        # Ingest is burst-scoped: at least one burst, never more than
        # one per arrival, and the tree's other hot phases showed up.
        count, total_s, _self_s = report.by_name()["ingest"]
        assert 0 < count <= sc.n
        assert total_s > 0.0


class SlowSumBackend(SumBackend):
    """SumBackend whose predict busy-waits — an injected inference slowdown."""

    def __init__(self, per_item_s=0.001, stall_s=0.002):
        super().__init__(per_item_s=per_item_s)
        self.stall_s = stall_s

    def predict(self, images, decision=None):
        t0 = time.perf_counter()
        while time.perf_counter() - t0 < self.stall_s:
            pass
        return super().predict(images, decision)


class TestAttribution:
    def test_injected_slowdown_names_its_phase(self):
        """A stall in backend.predict must surface as `inference` regressing.

        The cluster runs batch predictions inside the ``inference``
        phase (post-loop ``_fill_predictions``), so stalling every
        predict call by 2 ms grows that phase's self time by hundreds of
        milliseconds — orders of magnitude above scheduling noise in any
        other phase.
        """
        sc = make_scenario(4)
        _, base = run_profiled(sc)
        slow = [SlowSumBackend(per_item_s=p) for p in sc.per_item]
        _, stalled = run_profiled(sc, backends=slow)
        assert top_regressing_phase(base, stalled) == "inference"
        rows = dict(
            (name, (b, n)) for name, b, n, _ in compare_phase_reports(base, stalled)
        )
        base_s, new_s = rows["inference"]
        assert new_s > base_s + 0.01  # >= 5 batches x 2 ms, minus slack


class TestProfStudy:
    """The `cbnet-experiment prof` study over a toy fleet."""

    def study(self, **kwargs):
        import numpy as np

        from repro.experiments.prof import run_prof_study

        rng = np.random.default_rng(0)
        images = rng.random((32, 1, 4, 4)).astype(np.float32)
        labels = (images.reshape(32, -1).sum(axis=1)).astype(np.int64) % 10
        return run_prof_study(
            seed=0,
            n_requests=300,
            backends=[SumBackend(per_item_s=0.001) for _ in range(3)],
            images=images,
            labels=labels,
            **kwargs,
        )

    def test_study_builds_a_phase_tree_and_renders(self):
        study = self.study()
        assert study.phases.get("serve").count == 1
        assert 0 < study.phases.by_name()["ingest"][0] <= study.n_requests
        text = study.render()
        assert "Phase profile" in text and "event_loop" in text
        assert "unchanged by profiling" in text

    def test_prof_out_writes_speedscope_and_collapsed(self, tmp_path):
        import json

        out = tmp_path / "prof.speedscope.json"
        study = self.study(prof_out=str(out))
        payload = json.loads(out.read_text())
        assert payload["profiles"][0]["type"] == "sampled"
        collapsed = (tmp_path / "prof.speedscope.json.collapsed").read_text()
        assert collapsed.splitlines()[0].startswith("serve")
        assert str(out) in study.render()

    def test_custom_fleet_requires_images(self):
        from repro.experiments.prof import run_prof_study

        with pytest.raises(ValueError, match="images"):
            run_prof_study(backends=[SumBackend()])


class TestGlobalProfiler:
    def test_engines_fall_back_to_the_global_profiler(self):
        assert current_profiler() is None
        prof = enable_global_profiler()
        try:
            assert current_profiler() is prof
            sc = make_scenario(5, n_requests=40)
            backends = [oracle_backend(b, sc.images) for b in sc.backends()]
            cluster = Cluster(
                backends,
                policy="least-outstanding",
                max_batch_size=sc.max_batch,
                max_wait_s=sc.max_wait_s,
                cache_capacity=0,
                rng=sc.seed,
            )
            assert cluster.prof is prof
            cluster.serve_log(sc.ids, sc.arrival_s)
            assert prof.report().get("serve").count == 1
        finally:
            disable_global_profiler()
        assert current_profiler() is None

    def test_explicit_prof_wins_over_global(self):
        enable_global_profiler()
        try:
            mine = PhaseProfiler()
            server = Cluster(
                [SumBackend()],
                max_batch_size=4,
                max_wait_s=0.002,
                cache_capacity=0,
                prof=mine,
            )
            assert server.prof is mine
        finally:
            disable_global_profiler()
