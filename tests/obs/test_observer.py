"""Observer facade: hooks, finalize semantics, engine integration, export."""

import json

import numpy as np
import pytest
from conftest import SumBackend, make_scenario, run_traced

from repro.obs import Observer
from repro.obs.spans import (
    EV_BATCH_FAIL,
    EV_CRASH,
    EV_TIMEOUT,
    NO_PARENT,
    SPAN_BATCH,
    SPAN_CLOUD,
    SPAN_DOWNLINK,
    SPAN_REQUEST,
    SPAN_UPLINK,
    SpanLog,
)
from repro.serving.arrivals import poisson_arrivals
from repro.serving.engine import Server


class TestFinalize:
    def test_single_use_keeps_first_result(self):
        obs = Observer()
        obs.on_batch(0.0, 0.01, 0, 4)
        obs.finalize_arrays(np.array([0.0]), np.array([0.02]))
        first = obs.spans
        # Spans build lazily on first read and cache; a second finalize
        # with different columns is a no-op.
        obs.finalize_arrays(np.array([5.0, 6.0]), np.array([6.0, 7.0]))
        assert obs.spans is first
        assert first.count(SPAN_REQUEST) == 1

    def test_spans_build_lazily_after_finalize(self):
        obs = Observer()
        assert obs.spans is None
        obs.finalize_arrays(np.array([0.0]), np.array([0.02]))
        assert obs.tracer._log is None  # not yet materialized
        assert obs.spans.count(SPAN_REQUEST) == 1

    def test_incomplete_requests_get_no_root(self):
        obs = Observer()
        obs.finalize_arrays(np.array([0.0, 1.0]), np.array([0.5, np.nan]))
        spans = obs.spans
        assert spans.count(SPAN_REQUEST) == 1
        assert spans.req[spans.mask(SPAN_REQUEST)].tolist() == [0]

    def test_offload_legs_parent_to_their_request(self):
        obs = Observer()
        for kind, lo, hi in (
            (SPAN_UPLINK, 0.1, 0.2),
            (SPAN_CLOUD, 0.2, 0.3),
            (SPAN_DOWNLINK, 0.3, 0.4),
        ):
            obs.on_leg(kind, 0, lo, hi)
        obs.finalize_arrays(np.array([0.0]), np.array([0.5]))
        spans = obs.spans
        leg_kinds = np.isin(spans.kind, (SPAN_UPLINK, SPAN_CLOUD, SPAN_DOWNLINK))
        legs = spans.parent[leg_kinds]
        assert legs.shape == (3,)
        assert (legs >= 0).all()
        assert (spans.kind[legs] == SPAN_REQUEST).all()

    def test_symptom_events_drive_suspicion_injections_do_not(self):
        obs = Observer()
        obs.on_batch(0.0, 0.01, 0, 4)
        obs.on_batch(0.0, 0.01, 1, 4)
        obs.on_event(EV_TIMEOUT, 0.1, replica=1)
        obs.on_event(EV_BATCH_FAIL, 0.2, replica=1)
        # Injected markers must not tilt the ranking: localization has
        # to work from what a production fleet could actually observe.
        obs.on_event(EV_CRASH, 0.3, replica=0)
        assert obs.suspect_replicas(top=2) == [1, 0]
        assert obs.replica_stats[1][2] == 2
        assert obs.replica_stats[0][2] == 0

    def test_alert_rows_land_in_the_span_log(self):
        obs = Observer(window_s=1.0, burn_threshold=2.0)
        arrival = np.array([0.1, 0.2])
        completion = np.array([0.5, 0.6])
        obs.finalize_arrays(arrival, completion, slo_s=0.05)
        from repro.obs.spans import EV_ALERT

        assert obs.spans.count(EV_ALERT) == len(obs.alerts) == 1

    def test_summary_reports_spans_and_burn(self):
        obs = Observer(window_s=1.0)
        obs.finalize_arrays(np.array([0.0]), np.array([0.01]), slo_s=0.05)
        summary = obs.summary()
        assert summary["requests"] == 1.0
        assert summary["completed"] == 1.0
        assert summary["spans"] >= 1.0
        assert "worst_burn" in summary and "alerts" in summary


class TestServerIntegration:
    def test_server_records_batches_and_finalizes(self):
        rng = np.random.default_rng(0)
        images = rng.random((64, 1, 4, 4)).astype(np.float32)
        arrival = poisson_arrivals(400.0, 200, rng=rng)
        obs = Observer()
        server = Server(SumBackend(), max_batch_size=8, max_wait_s=0.004, obs=obs)
        _, log = server.serve_log(images[rng.integers(0, 64, 200)], arrival)
        assert obs.spans is not None
        assert obs.spans.count(SPAN_REQUEST) == int(log.done.sum())
        assert obs.spans.count(SPAN_BATCH) == obs.metrics["batches"].value > 0

    def test_disabled_by_default(self):
        server = Server(SumBackend())
        assert server.obs is None


class TestChromeExport:
    def test_trace_is_valid_chrome_json(self, tmp_path):
        sc = make_scenario(3)
        _, _, obs = run_traced(sc)
        path = tmp_path / "trace.json"
        n = obs.chrome_trace(path)
        doc = json.loads(path.read_text())
        events = doc["traceEvents"]
        assert len(events) == n
        phases = {e["ph"] for e in events}
        assert phases >= {"M", "X"}
        # Three process lanes: replicas (0), requests (1), resources (2).
        assert {e["pid"] for e in events} == {0, 1, 2}
        for e in events:
            if e["ph"] == "X":
                assert e["dur"] >= 0.0

    def test_counters_optional(self, tmp_path):
        sc = make_scenario(3)
        _, _, obs = run_traced(sc)
        path = tmp_path / "no_counters.json"
        obs.chrome_trace(path, counters=False)
        events = json.loads(path.read_text())["traceEvents"]
        assert {e["pid"] for e in events} == {0, 1}

    def test_request_lane_capped(self, tmp_path):
        sc = make_scenario(4)
        _, _, obs = run_traced(sc)
        path = tmp_path / "capped.json"
        obs.chrome_trace(path, max_requests=5)
        doc = json.loads(path.read_text())
        events = doc["traceEvents"]
        request_tids = {e["tid"] for e in events if e.get("pid") == 1 and e["ph"] == "X"}
        assert len(request_tids) <= 5
        # The cap is accounted for in the export metadata, not silent.
        meta = doc["metadata"]
        assert meta["max_requests"] == 5
        assert meta["request_lanes_kept"] == len(request_tids)
        assert meta["request_lanes_dropped"] > 0
        assert meta["events_dropped"] >= meta["request_lanes_dropped"]

    def test_export_before_finalize_raises(self, tmp_path):
        with pytest.raises(RuntimeError, match="finalize"):
            Observer().chrome_trace(tmp_path / "x.json")


class TestSpanLogValidation:
    def test_mismatched_columns_rejected(self):
        with pytest.raises(ValueError, match="length"):
            SpanLog([0], [0, 1], [0.0], [0.0], [0], [NO_PARENT])

    def test_empty_log(self):
        log = SpanLog.empty()
        assert len(log) == 0
        assert log.durations().shape == (0,)
