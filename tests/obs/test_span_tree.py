"""Span-tree well-formedness under randomized chaos storms.

The tracer's output is a forest: one ``request`` root per completed
request, with queue/service children and parent-linked event rows.
These invariants must hold for *every* seeded storm, not one tuned
scenario — orphaned children, children escaping their parent's
interval, or spans that don't reconcile with the ``RequestLog`` all
mean the trace is lying about where time went.
"""

import numpy as np
import pytest
from conftest import make_scenario, run_traced

from repro.obs.spans import (
    EV_CRASH,
    NO_PARENT,
    SPAN_QUEUE,
    SPAN_REQUEST,
    SPAN_SERVICE,
)

EPS = 1e-9


@pytest.fixture(scope="module", params=range(10))
def traced(request):
    """One chaos replay with telemetry, shared by every invariant."""
    sc = make_scenario(request.param)
    report, log, obs = run_traced(sc)
    return sc, report, log, obs


class TestSpanTree:
    def test_one_root_per_completed_request(self, traced):
        _, _, log, obs = traced
        sp = obs.spans
        roots = np.nonzero(sp.mask(SPAN_REQUEST))[0]
        done = np.nonzero(log.done)[0]
        assert np.array_equal(sp.req[roots], done)
        assert np.allclose(sp.start_s[roots], log.arrival_s[done])
        assert np.allclose(sp.end_s[roots], log.completion_s[done])
        assert (sp.parent[roots] == NO_PARENT).all()

    def test_no_orphan_children(self, traced):
        _, _, log, obs = traced
        sp = obs.spans
        linked = sp.parent >= 0
        # Parents exist, are roots, and agree on the owning request.
        assert (sp.parent < len(sp)).all()
        assert (sp.kind[sp.parent[linked]] == SPAN_REQUEST).all()
        assert np.array_equal(sp.req[sp.parent[linked]], sp.req[linked])
        # Conversely: every row owned by a *completed* request is linked.
        owned = (sp.req >= 0) & ~sp.mask(SPAN_REQUEST)
        completed = log.done[sp.req[owned]]
        assert (sp.parent[owned][completed] >= 0).all()

    def test_children_stay_inside_parent_interval(self, traced):
        _, _, _, obs = traced
        sp = obs.spans
        linked = np.nonzero(sp.parent >= 0)[0]
        p = sp.parent[linked]
        assert (sp.start_s[linked] >= sp.start_s[p] - EPS).all()
        assert (sp.end_s[linked] <= sp.end_s[p] + EPS).all()

    def test_queue_and_service_partition_the_lifetime(self, traced):
        _, _, log, obs = traced
        sp = obs.spans
        q = np.nonzero(sp.mask(SPAN_QUEUE))[0]
        s = np.nonzero(sp.mask(SPAN_SERVICE))[0]
        # Synthesized in lockstep: same requests, same order, same parent.
        assert np.array_equal(sp.req[q], sp.req[s])
        assert np.array_equal(sp.parent[q], sp.parent[s])
        # Queue [arrival, dispatch) abuts service [dispatch, completion):
        # siblings never overlap and jointly cover the root exactly.
        assert np.allclose(sp.end_s[q], sp.start_s[s])
        reqs = sp.req[q]
        assert np.allclose(sp.start_s[q], log.arrival_s[reqs])
        assert np.allclose(sp.end_s[s], log.completion_s[reqs])
        dispatched = log.done & ~np.isnan(log.dispatch_s)
        assert len(q) == int(dispatched.sum())

    def test_instant_events_are_zero_width(self, traced):
        _, _, _, obs = traced
        sp = obs.spans
        ev = sp.kind >= EV_CRASH
        assert np.array_equal(sp.start_s[ev], sp.end_s[ev])

    def test_span_conservation_against_request_log(self, traced):
        _, _, log, obs = traced
        sp = obs.spans
        n_roots = sp.count(SPAN_REQUEST)
        assert n_roots == int(log.done.sum())
        # Every row is either synthesized (root/queue/service) or one of
        # the sparse rows the event loop recorded — nothing invented.
        synthesized = n_roots + sp.count(SPAN_QUEUE) + sp.count(SPAN_SERVICE)
        assert len(sp) == synthesized + obs.tracer.n_rows

    def test_timestamps_are_finite_and_ordered(self, traced):
        _, _, _, obs = traced
        sp = obs.spans
        assert np.isfinite(sp.start_s).all()
        assert np.isfinite(sp.end_s).all()
        assert (sp.end_s >= sp.start_s - EPS).all()
