"""Randomized chaos scenarios for the observability harness.

Standalone on purpose: pytest cannot import helpers across test
directories (two ``conftest.py`` modules never see each other), so this
mirrors the ``tests/chaos`` generator in miniature — a toy pixel-sum
fleet, a Poisson trace, and a seeded :func:`~repro.faults.fault_storm` —
and adds the one thing the chaos harness lacks: every replay runs with
an :class:`~repro.obs.Observer` attached, returning the finalized span
log alongside the request log.
"""

from dataclasses import dataclass

import numpy as np

from repro.cluster import Cluster
from repro.faults import (
    BreakerConfig,
    FaultPlan,
    ResilienceConfig,
    RetryPolicy,
    fault_storm,
    hedge_delay_for,
)
from repro.obs import Observer
from repro.serving.arrivals import poisson_arrivals
from repro.serving.backends import BatchTiming, InferenceBackend
from repro.sim import oracle_backend

N_POOL = 48


class SumBackend(InferenceBackend):
    """Deterministic toy model: label = pixel-sum mod 10."""

    name = "sum"

    def __init__(self, per_item_s=0.001, overhead_s=0.001):
        super().__init__(BatchTiming(overhead_s=overhead_s, per_item_s=per_item_s))

    def predict(self, images, decision=None):
        return (images.reshape(images.shape[0], -1).sum(axis=1)).astype(np.int64) % 10


@dataclass
class Scenario:
    """One randomized trace + fault storm, plus everything to replay it."""

    seed: int
    images: np.ndarray
    labels: np.ndarray
    ids: np.ndarray
    arrival_s: np.ndarray
    per_item: tuple
    max_batch: int
    max_wait_s: float
    plan: FaultPlan

    @property
    def n(self) -> int:
        return len(self.ids)

    @property
    def n_replicas(self) -> int:
        return len(self.per_item)

    def backends(self):
        return [SumBackend(per_item_s=p) for p in self.per_item]

    def service_scale_s(self) -> float:
        backends = self.backends()
        return self.max_wait_s + max(
            b.mean_service_s(batch_size=self.max_batch) * self.max_batch
            for b in backends
        )


def make_scenario(seed, n_requests=None, crashes=True) -> Scenario:
    """Build one randomized trace with a seeded mixed fault storm."""
    rng = np.random.default_rng(seed)
    n = int(rng.integers(300, 600)) if n_requests is None else n_requests
    n_replicas = int(rng.integers(2, 5))
    per_item = tuple(float(rng.uniform(0.0004, 0.0012)) for _ in range(n_replicas))
    max_batch = int(rng.choice([4, 8, 16]))
    max_wait_s = float(rng.uniform(0.002, 0.006))
    backends = [SumBackend(per_item_s=p) for p in per_item]
    capacity = sum(1.0 / b.mean_service_s(batch_size=max_batch) for b in backends)
    load = float(rng.uniform(0.5, 0.9))

    images = rng.random((N_POOL, 1, 4, 4)).astype(np.float32)
    labels = (images.reshape(N_POOL, -1).sum(axis=1)).astype(np.int64) % 10
    ids = rng.integers(0, N_POOL, size=n)
    arrival_s = poisson_arrivals(load * capacity, n, rng=rng)
    horizon = float(arrival_s[-1]) + 0.05
    plan = fault_storm(
        n_replicas,
        horizon,
        rng=rng,
        mean_window_s=horizon / 8.0,
        crash_mtbf_s=4.0 * horizon if crashes else None,
        crash_mttr_s=horizon / 6.0 if crashes else None,
    )
    return Scenario(
        seed=seed,
        images=images,
        labels=labels,
        ids=ids,
        arrival_s=arrival_s,
        per_item=per_item,
        max_batch=max_batch,
        max_wait_s=max_wait_s,
        plan=plan,
    )


def resilience_for(sc: Scenario) -> ResilienceConfig:
    """Resilience knobs scaled to the scenario's healthy service times."""
    tick = sc.service_scale_s()
    return ResilienceConfig(
        timeout_s=6.0 * tick,
        retry=RetryPolicy(
            max_retries=2,
            base_backoff_s=sc.max_wait_s,
            backoff_mult=2.0,
            max_backoff_s=4.0 * sc.max_wait_s,
            jitter_frac=0.25,
        ),
        hedge_delay_s=hedge_delay_for(sc.backends(), sc.max_batch, sc.max_wait_s),
        breaker=BreakerConfig(
            window_s=8.0 * tick,
            min_samples=6,
            error_threshold=0.5,
            cooldown_s=4.0 * tick,
            half_open_probes=2,
        ),
    )


def run_traced(sc: Scenario, resilient=True, oracle=True, faults=True):
    """Serve one chaos arm with telemetry on.

    Returns ``(report, request_log, observer)`` — the observer is
    already finalized (the cluster finalizes it at end of serve), so
    ``observer.spans`` is the SpanLog.
    """
    backends = sc.backends()
    if oracle:
        backends = [oracle_backend(b, sc.images) for b in backends]
    obs = Observer()
    cluster = Cluster(
        backends,
        policy="least-outstanding",
        faults=sc.plan if faults else None,
        resilience=resilience_for(sc) if resilient else None,
        slo_s=4.0 * sc.service_scale_s(),
        max_batch_size=sc.max_batch,
        max_wait_s=sc.max_wait_s,
        cache_capacity=0,
        rng=sc.seed,
        obs=obs,
    )
    stream = sc.ids if oracle else sc.images[sc.ids]
    report, log = cluster.serve_log(stream, sc.arrival_s, labels=sc.labels[sc.ids])
    return report, log, obs
