"""The observability study: telemetry-only fault localization.

The acceptance claim: replay a storm concentrated on one seeded target
replica and name that replica *from the collected telemetry alone* —
the study only opens the fault plan afterwards, to grade its answer.
"""

import json

import numpy as np
import pytest
from conftest import N_POOL, SumBackend

from repro.experiments.obs import run_obs_study

rng = np.random.default_rng(0)
IMAGES = rng.random((N_POOL, 1, 4, 4)).astype(np.float32)
LABELS = (IMAGES.reshape(N_POOL, -1).sum(axis=1)).astype(np.int64) % 10


def study(seed: int, **kwargs):
    return run_obs_study(
        seed=seed,
        n_requests=700,
        backends=[SumBackend(per_item_s=0.001) for _ in range(4)],
        images=IMAGES,
        labels=LABELS,
        **kwargs,
    )


class TestLocalization:
    @pytest.mark.parametrize("seed", range(5))
    def test_telemetry_pins_the_injected_replica(self, seed):
        result = study(seed)
        assert result.localized
        assert result.suspect_replica == result.target_replica
        # The verdict really came out of the observer, not the plan.
        assert result.observer.suspect_replicas(top=1) == [result.suspect_replica]

    def test_storm_touches_only_the_target(self):
        result = study(0)
        assert {f.replica_id for f in result.plan.faults} == {result.target_replica}
        assert result.plan.failures == ()  # no crashes: too easy to spot

    def test_oracle_and_live_agree(self):
        a, b = study(1, live=False), study(1, live=True)
        assert a.suspect_replica == b.suspect_replica
        assert a.observer.replica_stats == b.observer.replica_stats
        assert len(a.observer.spans) == len(b.observer.spans)


class TestRendering:
    def test_render_names_the_verdict(self):
        result = study(2)
        text = result.render()
        assert "LOCALIZED" in text
        assert f"replica {result.target_replica}" in text
        assert "worst burn rate" in text

    def test_trace_out_writes_chrome_json(self, tmp_path):
        path = tmp_path / "obs_trace.json"
        result = study(3, trace_out=str(path))
        doc = json.loads(path.read_text())
        assert len(doc["traceEvents"]) == result.trace_events > 0
        assert str(path) in result.render()


class TestInputs:
    def test_custom_fleet_requires_images(self):
        with pytest.raises(ValueError, match="images"):
            run_obs_study(backends=[SumBackend()])
