"""SLO burn-rate monitor: the arithmetic, the alerts, the class plumbing."""

import numpy as np
import pytest

from repro.obs.slo import SLOAlert, SLOMonitor
from repro.obs.spans import EV_ALERT, Tracer
from repro.serving.classes import default_classes


def monitor(**kwargs) -> SLOMonitor:
    base = dict(deadlines={0: 0.05}, objective=0.99, threshold=2.0, window_s=1.0)
    base.update(kwargs)
    return SLOMonitor(**base)


class TestBurnRates:
    def test_burn_is_miss_fraction_over_budget(self):
        # 3 of 10 requests in window [0, 1) miss a 50 ms deadline with a
        # 1% budget: burn = 0.3 / 0.01 = 30x.
        m = monitor()
        completion = np.linspace(0.1, 0.9, 10)
        sojourn = np.full(10, 0.01)
        sojourn[:3] = 0.2
        m.observe_many(completion, sojourn)
        t, burn = m.burn_rates(0)
        assert np.array_equal(t, [0.0])
        assert burn[0] == pytest.approx(30.0)
        assert m.worst_burn() == pytest.approx(30.0)
        assert m.attainment() == pytest.approx(0.7)

    def test_healthy_windows_do_not_burn(self):
        m = monitor()
        m.observe_many(np.array([0.5, 1.5]), np.array([0.01, 0.01]))
        _, burn = m.burn_rates(0)
        assert np.array_equal(burn, [0.0, 0.0])
        assert m.scan() == []

    def test_nan_completions_are_ignored(self):
        m = monitor()
        m.observe_many(np.array([0.5, np.nan]), np.array([0.2, np.nan]))
        t, _ = m.burn_rates(0)
        assert len(t) == 1
        assert m._tallies[0][0] == [1, 1]


class TestAlerts:
    def test_scan_fires_above_threshold_with_full_evidence(self):
        m = monitor()
        m.observe_many(np.array([0.5, 0.6]), np.array([0.2, 0.01]))
        fired = m.scan()
        assert len(fired) == 1
        alert = fired[0]
        assert isinstance(alert, SLOAlert)
        assert alert.time_s == 0.0
        assert alert.class_name == "default"
        assert alert.burn_rate == pytest.approx(50.0)
        assert alert.n_requests == 2 and alert.n_missed == 1
        assert m.alerts == fired

    def test_scan_records_alert_events_on_the_tracer(self):
        m = monitor()
        m.observe_many(np.array([0.5]), np.array([0.2]))
        tracer = Tracer()
        m.scan(tracer)
        spans = tracer.finalize(np.array([]), np.array([]))
        assert spans.count(EV_ALERT) == 1

    def test_sub_threshold_burn_stays_silent(self):
        # 1 miss in 100 requests burns at exactly 1x < threshold 2x.
        m = monitor()
        sojourn = np.full(100, 0.01)
        sojourn[0] = 0.2
        m.observe_many(np.linspace(0.0, 0.99, 100), sojourn)
        assert m.scan() == []


class TestClasses:
    def test_from_classes_uses_per_class_deadlines(self):
        classes = default_classes(slo_s=0.05)
        m = SLOMonitor.from_classes(classes, window_s=1.0)
        assert m.deadlines[0] == pytest.approx(0.05)  # interactive
        assert m.deadlines[2] == pytest.approx(1.0)  # batch: 20x
        assert m.names[1] == "standard"

    def test_per_class_scoring_is_independent(self):
        m = SLOMonitor({0: 0.05, 1: 1.0}, names={0: "fast", 1: "slow"}, window_s=1.0)
        completion = np.array([0.5, 0.5])
        sojourn = np.array([0.2, 0.2])  # misses class 0, fine for class 1
        m.observe_many(completion, sojourn, req_class=np.array([0, 1]))
        assert m.worst_burn(0) == pytest.approx(100.0)
        assert m.worst_burn(1) == 0.0
        fired = m.scan()
        assert [a.class_name for a in fired] == ["fast"]


class TestValidation:
    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError, match="objective"):
            monitor(objective=1.0)
        with pytest.raises(ValueError, match="threshold"):
            monitor(threshold=0.0)
        with pytest.raises(ValueError, match="window_s"):
            monitor(window_s=-1.0)
        with pytest.raises(ValueError, match="at least one"):
            monitor(deadlines={})
