"""Telemetry determinism: oracle vs live parity, and zero perturbation.

Two contracts.  First, the observability layer inherits the repo-wide
oracle discipline: replaying one scenario with precomputed predictions
or with in-loop model calls must yield *field-for-field identical*
spans, metrics, and alerts.  Second, attaching an observer must not
perturb the simulation itself — the request log of a traced run must
equal the untraced one exactly.
"""

import math

import numpy as np
import pytest
from conftest import (
    Cluster,
    Scenario,
    make_scenario,
    oracle_backend,
    resilience_for,
    run_traced,
)

SPAN_COLUMNS = ("kind", "req", "start_s", "end_s", "replica", "parent")
SEEDS = (0, 1, 2)


def assert_scalars_equal(a: dict, b: dict) -> None:
    assert a.keys() == b.keys()
    for key in a:
        x, y = a[key], b[key]
        both_nan = (
            isinstance(x, float) and isinstance(y, float)
            and math.isnan(x) and math.isnan(y)
        )
        assert x == y or both_nan, key


class TestOracleLiveParity:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_spans_identical(self, seed):
        sc = make_scenario(seed)
        _, _, live = run_traced(sc, oracle=False)
        _, _, oracle = run_traced(sc, oracle=True)
        for col in SPAN_COLUMNS:
            assert np.array_equal(
                getattr(live.spans, col), getattr(oracle.spans, col)
            ), col

    @pytest.mark.parametrize("seed", SEEDS)
    def test_metrics_and_alerts_identical(self, seed):
        sc = make_scenario(seed)
        _, _, live = run_traced(sc, oracle=False)
        _, _, oracle = run_traced(sc, oracle=True)
        assert_scalars_equal(live.metrics.snapshot(), oracle.metrics.snapshot())
        assert_scalars_equal(live.summary(), oracle.summary())
        assert live.alerts == oracle.alerts
        assert live.replica_stats == oracle.replica_stats


class TestZeroPerturbation:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_tracing_leaves_the_request_log_untouched(self, seed):
        sc = make_scenario(seed)
        _, traced_log, _ = run_traced(sc, oracle=True)

        def untraced(sc: Scenario):
            backends = [oracle_backend(b, sc.images) for b in sc.backends()]
            cluster = Cluster(
                backends,
                policy="least-outstanding",
                faults=sc.plan,
                resilience=resilience_for(sc),
                slo_s=4.0 * sc.service_scale_s(),
                max_batch_size=sc.max_batch,
                max_wait_s=sc.max_wait_s,
                cache_capacity=0,
                rng=sc.seed,
            )
            _, log = cluster.serve_log(sc.ids, sc.arrival_s, labels=sc.labels[sc.ids])
            return log

        plain_log = untraced(sc)
        for col in traced_log.__slots__:
            x, y = getattr(plain_log, col), getattr(traced_log, col)
            assert np.array_equal(x, y, equal_nan=x.dtype.kind == "f"), col
