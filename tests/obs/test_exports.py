"""Profile and timeline exports: collapsed stacks, speedscope, Perfetto.

Pins the interchange formats other tools consume: the collapsed-stack
text and speedscope JSON produced from phase trees and stack samples
(round-trippable and schema-correct), the ``PhaseReport`` JSON form
stored in ``BENCH_<n>.json``, and the Perfetto counter-track events the
resource timelines add to Chrome trace exports.
"""

import json

import numpy as np
import pytest
from conftest import make_scenario, run_traced

from repro.obs.prof import PhaseProfiler, PhaseReport, SamplingProfiler
from repro.obs.timeline import COUNTER_PID, ResourceTimelines


def small_report() -> PhaseReport:
    class Clock:
        t = 0.0

        def __call__(self):
            Clock.t += 0.5
            return Clock.t

    prof = PhaseProfiler(clock=Clock())
    with prof.phase("serve"):
        with prof.phase("ingest"):
            pass
        with prof.phase("ingest"):
            pass
        with prof.phase("report"):
            pass
    return prof.report()


class TestPhaseReportExports:
    def test_dict_round_trip_preserves_rows(self):
        report = small_report()
        clone = PhaseReport.from_dict(json.loads(json.dumps(report.to_dict())))
        assert clone.signature() == report.signature()
        for row in report.rows:
            twin = clone.get(*row.path)
            assert twin.total_s == pytest.approx(row.total_s)
            assert twin.self_s == pytest.approx(row.self_s)

    def test_collapsed_lines_parse_and_conserve_self_time(self, tmp_path):
        report = small_report()
        out = tmp_path / "prof.collapsed"
        text = report.to_collapsed(out)
        assert out.read_text() == text
        total_us = 0
        for line in text.strip().splitlines():
            stack, weight = line.rsplit(" ", 1)
            assert stack.split(";")[0] == "serve"
            total_us += int(weight)
        # Weights are self-microseconds; they sum to the root total.
        assert total_us == pytest.approx(report.total_s * 1e6, rel=0.01)

    def test_speedscope_schema_and_weights(self, tmp_path):
        report = small_report()
        out = tmp_path / "prof.speedscope.json"
        payload = report.to_speedscope(out, name="unit")
        assert json.loads(out.read_text()) == payload
        assert payload["$schema"].startswith("https://www.speedscope.app")
        profile = payload["profiles"][0]
        assert profile["type"] == "sampled"
        assert len(profile["samples"]) == len(profile["weights"])
        assert sum(profile["weights"]) == pytest.approx(report.total_s)
        n_frames = len(payload["shared"]["frames"])
        for sample in profile["samples"]:
            assert all(0 <= idx < n_frames for idx in sample)
        # Frame names resolve back to phase names.
        names = {f["name"] for f in payload["shared"]["frames"]}
        assert names == {"serve", "ingest", "report"}

    def test_zero_self_rows_are_not_exported(self):
        prof = PhaseProfiler(clock=lambda: 0.0)
        with prof.phase("a"):
            with prof.phase("b"):
                pass
        report = prof.report()
        assert report.to_collapsed() == ""
        # speedscope export of an all-zero profile is empty but valid


class TestSamplingExports:
    def sampler(self) -> SamplingProfiler:
        s = SamplingProfiler(interval_s=0.01)
        s._record_stack(("repro.a:f", "repro.b:g"))
        s._record_stack(("repro.a:f", "repro.b:g"))
        s._record_stack(("repro.a:f",))
        s._record_stack(("numpy.core:dot",))
        return s

    def test_by_module_credits_innermost_focus_frame(self):
        counts = self.sampler().by_module()
        assert counts == {"repro.b": 2, "repro.a": 1, "<other>": 1}

    def test_collapsed_round_trip(self, tmp_path):
        out = tmp_path / "samples.collapsed"
        text = self.sampler().to_collapsed(out)
        assert out.read_text() == text
        parsed = {
            tuple(stack.split(";")): int(weight)
            for stack, weight in (
                line.rsplit(" ", 1) for line in text.strip().splitlines()
            )
        }
        assert parsed[("repro.a:f", "repro.b:g")] == 2
        assert parsed[("numpy.core:dot",)] == 1

    def test_speedscope_weights_are_seconds(self, tmp_path):
        s = self.sampler()
        payload = s.to_speedscope(tmp_path / "samples.json")
        profile = payload["profiles"][0]
        assert sum(profile["weights"]) == pytest.approx(s.n_samples * s.interval_s)

    def test_interval_validation(self):
        with pytest.raises(ValueError, match="interval_s"):
            SamplingProfiler(interval_s=0.0)


class TestCounterTracks:
    def test_counter_event_schema(self):
        tl = ResourceTimelines(window_s=0.5)
        series = tl._add("replica0.busy_frac", "occupancy")
        series.add(0.1, 0.25)
        series.add(0.6, 0.5)
        events = tl.counter_events()
        meta = [e for e in events if e["ph"] == "M"]
        counters = [e for e in events if e["ph"] == "C"]
        assert meta and all(e["pid"] == COUNTER_PID for e in events)
        for e in counters:
            assert set(e) >= {"name", "ph", "ts", "pid", "args"}
            assert "value" in e["args"]
            assert e["ts"] >= 0.0
        # Occupancy: window sums divided by the window length.
        values = {e["ts"]: e["args"]["value"] for e in counters}
        assert values[0.0] == pytest.approx(0.5)
        assert values[0.5 * 1e6] == pytest.approx(1.0)

    def test_timelines_from_a_traced_run(self):
        sc = make_scenario(3)
        _, _, obs = run_traced(sc)
        tl = obs.timelines(window_s=0.2)
        names = tl.names()
        assert any(n.endswith("busy_frac") for n in names)
        assert any(n.endswith("queue_depth") for n in names)
        saw_busy = 0.0
        for name in names:
            times, values = tl.values(name)
            assert len(times) == len(values)
            assert (values >= 0.0).all() and not np.isnan(values).any()
            if name.endswith("busy_frac"):
                saw_busy = max(saw_busy, float(values.max(initial=0.0)))
        assert saw_busy > 0.0  # the fleet did real work somewhere

    def test_chrome_trace_counters_reference_real_series(self, tmp_path):
        sc = make_scenario(5)
        _, _, obs = run_traced(sc)
        path = tmp_path / "trace.json"
        obs.chrome_trace(path)
        events = json.loads(path.read_text())["traceEvents"]
        counter_names = {e["name"] for e in events if e["ph"] == "C"}
        assert counter_names == set(obs.timelines().names())
