"""Unit tests for the metric primitives: accuracy pins and contracts.

The sketch accuracy tests are the load-bearing ones: the histogram's
interpolated quantiles and the P² streaming estimator both *claim*
bounded error versus the exact sample quantile — here they are pinned
against ``np.percentile`` on heavy-ish-tailed samples.
"""

import numpy as np
import pytest

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    P2Quantile,
    WindowSeries,
)


class TestCounterGauge:
    def test_counter_accumulates(self):
        c = Counter()
        c.inc()
        c.inc(41)
        assert c.value == 42

    def test_counter_rejects_negative(self):
        with pytest.raises(ValueError, match="only go up"):
            Counter().inc(-1)

    def test_gauge_last_value_wins(self):
        g = Gauge()
        g.set(3.0)
        g.set(1.5)
        assert g.value == 1.5


class TestHistogram:
    def test_quantiles_within_bucket_resolution(self):
        # 24 buckets/decade bounds relative error at ~10%; lognormal
        # latencies exercise several decades.
        rng = np.random.default_rng(0)
        values = np.exp(rng.normal(np.log(0.02), 1.0, 50_000))
        values = np.clip(values, 1e-4, 60.0)
        h = Histogram.latency()
        h.observe_many(values)
        for q in (0.5, 0.9, 0.99):
            exact = float(np.percentile(values, 100 * q))
            assert h.quantile(q) == pytest.approx(exact, rel=0.12)

    def test_exact_summary_stats(self):
        values = np.array([0.001, 0.01, 0.1, 1.0])
        h = Histogram.latency()
        h.observe_many(values)
        assert h.count == 4
        assert h.mean == pytest.approx(values.mean())
        assert h.min == pytest.approx(0.001)
        assert h.max == pytest.approx(1.0)

    def test_quantile_clipped_to_observed_range(self):
        h = Histogram(np.array([1.0, 2.0, 4.0]))
        h.observe_many(np.full(10, 1.5))
        assert 1.5 <= h.quantile(0.99) <= 1.5 + 1e-12
        assert h.quantile(0.0) >= h.min

    def test_empty_histogram_nan(self):
        h = Histogram.latency()
        assert np.isnan(h.quantile(0.5))
        assert np.isnan(h.mean)

    def test_validation(self):
        with pytest.raises(ValueError, match="strictly increasing"):
            Histogram([1.0, 1.0])
        with pytest.raises(ValueError, match="at least one"):
            Histogram([])
        with pytest.raises(ValueError, match="q must be"):
            Histogram.latency().quantile(1.5)

    def test_observe_many_matches_sequential(self):
        rng = np.random.default_rng(1)
        values = rng.uniform(1e-3, 1.0, 500)
        batched, seq = Histogram.latency(), Histogram.latency()
        batched.observe_many(values)
        for v in values:
            seq.observe(v)
        assert np.array_equal(batched.counts, seq.counts)
        assert batched.sum == pytest.approx(seq.sum)


class TestP2Quantile:
    @pytest.mark.parametrize("q", [0.5, 0.9, 0.99])
    def test_tracks_numpy_percentile(self, q):
        rng = np.random.default_rng(2)
        values = np.exp(rng.normal(0.0, 0.5, 20_000))
        sketch = P2Quantile(q)
        sketch.observe_many(values)
        exact = float(np.percentile(values, 100 * q))
        assert sketch.estimate == pytest.approx(exact, rel=0.05)

    def test_small_samples_fall_back_to_sorted(self):
        sketch = P2Quantile(0.5)
        for v in (3.0, 1.0, 2.0):
            sketch.observe(v)
        assert sketch.estimate == 2.0

    def test_empty_is_nan(self):
        assert np.isnan(P2Quantile(0.9).estimate)

    def test_validation(self):
        for bad in (0.0, 1.0, -0.1):
            with pytest.raises(ValueError, match="q must be"):
                P2Quantile(bad)


class TestWindowSeries:
    def test_add_many_matches_sequential_add(self):
        rng = np.random.default_rng(3)
        times = np.sort(rng.uniform(0.0, 2.0, 400))
        values = rng.uniform(0.0, 5.0, 400)
        batched, seq = WindowSeries(0.1), WindowSeries(0.1)
        batched.add_many(times, values)
        for t, v in zip(times, values):
            seq.add(t, v)
        assert np.array_equal(batched.windows, seq.windows)
        assert np.array_equal(batched.counts(), seq.counts())
        assert np.allclose(batched.sums(), seq.sums())
        assert np.allclose(batched.lasts(), seq.lasts())

    def test_window_bucketing_and_rates(self):
        s = WindowSeries(1.0)
        s.add_many(np.array([0.1, 0.2, 1.5, 3.9]))
        assert np.array_equal(s.windows, [0.0, 1.0, 3.0])
        assert np.array_equal(s.counts(), [2, 1, 1])
        assert np.array_equal(s.rates(), [2.0, 1.0, 1.0])

    def test_means(self):
        s = WindowSeries(1.0)
        s.add(0.5, 2.0)
        s.add(0.6, 4.0)
        assert np.array_equal(s.means(), [3.0])

    def test_validation(self):
        with pytest.raises(ValueError, match="window_s"):
            WindowSeries(0.0)


class TestMetricsRegistry:
    def test_get_or_create_returns_same_object(self):
        reg = MetricsRegistry()
        assert reg.counter("a") is reg.counter("a")
        assert "a" in reg
        assert reg["a"] is reg.counter("a")

    def test_kind_mismatch_raises(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(TypeError, match="already registered"):
            reg.gauge("x")

    def test_snapshot_flattens_every_kind(self):
        reg = MetricsRegistry(window_s=1.0)
        reg.counter("c").inc(2)
        reg.gauge("g").set(7.0)
        reg.histogram("h").observe(0.01)
        reg.sketch("s", q=0.9).observe(1.0)
        reg.series("w").add(0.5)
        snap = reg.snapshot()
        assert snap["c"] == 2.0
        assert snap["g"] == 7.0
        assert snap["h.count"] == 1.0
        assert "s.p90" in snap
        assert snap["w.windows"] == 1.0

    def test_names_sorted(self):
        reg = MetricsRegistry()
        reg.counter("b")
        reg.counter("a")
        assert reg.names() == ("a", "b")
