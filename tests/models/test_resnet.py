"""Tests for the MiniResNet extension (paper §V architectures)."""

import numpy as np
import pytest

from repro.models import LightweightClassifier, MiniResNet, ResidualBlock
from repro.nn import Tensor, gradcheck


class TestResidualBlock:
    def test_identity_skip_shape(self):
        block = ResidualBlock(8, 8, rng=np.random.default_rng(0))
        out = block(Tensor(np.zeros((2, 8, 7, 7), dtype=np.float32)))
        assert out.shape == (2, 8, 7, 7)
        assert block.projection is None

    def test_projected_skip_shape(self):
        block = ResidualBlock(8, 16, rng=np.random.default_rng(0))
        out = block(Tensor(np.zeros((2, 8, 7, 7), dtype=np.float32)))
        assert out.shape == (2, 16, 7, 7)
        assert block.projection is not None

    def test_zero_convs_pass_skip_through(self):
        """With zeroed conv weights the block is ReLU(skip)."""
        block = ResidualBlock(4, 4, rng=np.random.default_rng(0))
        for p in (block.conv1, block.conv2):
            p.weight.data[:] = 0.0
            p.bias.data[:] = 0.0
        x = np.random.default_rng(1).standard_normal((1, 4, 5, 5)).astype(np.float32)
        out = block(Tensor(x)).data
        assert np.allclose(out, np.maximum(x, 0.0), atol=1e-6)

    def test_gradients_flow_through_skip(self):
        rng = np.random.default_rng(2)
        block = ResidualBlock(2, 2, rng=rng)
        x = Tensor(
            rng.standard_normal((1, 2, 4, 4)).astype(np.float32), requires_grad=True
        )
        block(x).sum().backward()
        assert x.grad is not None
        assert np.abs(x.grad).sum() > 0


class TestMiniResNet:
    def test_forward_shape(self):
        model = MiniResNet(rng=0)
        out = model(Tensor(np.zeros((2, 1, 28, 28), dtype=np.float32)))
        assert out.shape == (2, 10)

    def test_heavier_than_lenet(self):
        from repro.hw.flops import model_cost
        from repro.models import LeNet

        resnet_macs = sum(s.macs for s in model_cost(MiniResNet(rng=0)))
        lenet_macs = sum(s.macs for s in model_cost(LeNet(rng=0)))
        assert resnet_macs > 2 * lenet_macs

    def test_flops_walker_handles_residual_blocks(self):
        from repro.hw.flops import model_cost

        stages = model_cost(MiniResNet(rng=0))
        total_params = sum(s.params for s in stages)
        assert total_params == MiniResNet(rng=0).num_parameters()

    def test_latency_model_works(self):
        from repro.hw import raspberry_pi4
        from repro.hw.latency import model_latency

        t = model_latency(MiniResNet(rng=0), raspberry_pi4())
        assert t > 0

    def test_truncation_recipe_applies(self):
        """§III-B generalization works on the ResNet too."""
        model = MiniResNet(rng=0)
        lw = LightweightClassifier.truncate_lenet(model, keep_layers=3, rng=0)
        out = lw(Tensor(np.zeros((2, 1, 28, 28), dtype=np.float32)))
        assert out.shape == (2, 10)

    def test_trains_on_small_problem(self, tiny_mnist):
        from repro.core import TrainConfig
        from repro.core.trainer import evaluate_accuracy, fit_classifier

        model = MiniResNet(rng=0)
        fit_classifier(model, tiny_mnist["train"], TrainConfig(epochs=4), rng=0)
        assert evaluate_accuracy(model, tiny_mnist["test"]) > 0.85

    def test_registry_builds_it(self):
        from repro.models import build_model

        assert isinstance(build_model("miniresnet", rng=0), MiniResNet)
