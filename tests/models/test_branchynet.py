"""Unit tests for BranchyNet-LeNet."""

import numpy as np
import pytest

from repro.models import BranchyLeNet, LeNet
from repro.nn import Tensor
from repro.nn.layers import Conv2d, Linear


class TestArchitecture:
    def test_forward_returns_two_exits(self):
        model = BranchyLeNet(rng=0)
        outs = model(Tensor(np.zeros((2, 1, 28, 28), dtype=np.float32)))
        assert len(outs) == 2
        assert outs[0].shape == (2, 10)
        assert outs[1].shape == (2, 10)

    def test_branch_is_one_conv_one_fc(self):
        """Paper: the branch has 1 conv + 1 FC layer."""
        model = BranchyLeNet(rng=0)
        convs = [m for m in model.branch.modules() if isinstance(m, Conv2d)]
        fcs = [m for m in model.branch.modules() if isinstance(m, Linear)]
        assert len(convs) == 1 and len(fcs) == 1

    def test_main_network_matches_lenet(self):
        """stem + trunk must be structurally identical to LeNet."""
        branchy = BranchyLeNet(rng=0)
        lenet = LeNet(rng=0)
        branchy_shapes = [
            p.data.shape
            for seq in (branchy.stem, branchy.trunk)
            for _, p in seq.named_parameters()
        ]
        lenet_shapes = [
            p.data.shape
            for seq in (lenet.features, lenet.classifier)
            for _, p in seq.named_parameters()
        ]
        assert branchy_shapes == lenet_shapes

    def test_stage_names(self):
        assert [n for n, _ in BranchyLeNet(rng=0).stages()] == ["stem", "branch", "trunk"]


class TestInference:
    def test_infer_contract(self):
        model = BranchyLeNet(rng=0)
        images = np.random.default_rng(0).random((12, 1, 28, 28)).astype(np.float32)
        res = model.infer(images, threshold=0.5, batch_size=5)
        assert res.predictions.shape == (12,)
        assert res.exited_early.shape == (12,)
        assert res.branch_entropy.shape == (12,)
        assert 0.0 <= res.early_exit_rate <= 1.0

    def test_threshold_zero_never_exits(self):
        model = BranchyLeNet(rng=0)
        images = np.random.default_rng(0).random((8, 1, 28, 28)).astype(np.float32)
        res = model.infer(images, threshold=0.0)
        assert res.early_exit_rate == 0.0

    def test_threshold_huge_always_exits(self):
        model = BranchyLeNet(rng=0)
        images = np.random.default_rng(0).random((8, 1, 28, 28)).astype(np.float32)
        res = model.infer(images, threshold=100.0)
        assert res.early_exit_rate == 1.0

    def test_exit_rate_monotone_in_threshold(self):
        model = BranchyLeNet(rng=0)
        images = np.random.default_rng(1).random((50, 1, 28, 28)).astype(np.float32)
        rates = [
            model.infer(images, threshold=t).early_exit_rate
            for t in (0.01, 0.1, 0.5, 1.5, 2.3)
        ]
        assert rates == sorted(rates)

    def test_early_exit_predictions_match_branch(self):
        """Samples flagged exited_early must carry the branch's argmax."""
        model = BranchyLeNet(rng=0)
        images = np.random.default_rng(2).random((20, 1, 28, 28)).astype(np.float32)
        res = model.infer(images, threshold=1.8)
        from repro.nn import no_grad

        with no_grad():
            shared = model.stem(Tensor(images))
            branch_pred = model.branch(shared).data.argmax(axis=1)
        early = res.exited_early
        assert np.array_equal(res.predictions[early], branch_pred[early])

    def test_branch_entropies_match_infer(self):
        model = BranchyLeNet(rng=0)
        images = np.random.default_rng(3).random((10, 1, 28, 28)).astype(np.float32)
        ents = model.branch_entropies(images)
        res = model.infer(images, threshold=0.3)
        assert np.allclose(ents, res.branch_entropy, atol=1e-6)

    def test_default_threshold_used(self):
        model = BranchyLeNet(rng=0, entropy_threshold=99.0)
        images = np.random.default_rng(4).random((4, 1, 28, 28)).astype(np.float32)
        assert model.infer(images).early_exit_rate == 1.0


class TestTraining:
    def test_joint_training_improves_both_exits(self, tiny_mnist):
        from repro.core import TrainConfig
        from repro.core.trainer import fit_classifier

        model = BranchyLeNet(rng=0)
        train, test = tiny_mnist["train"], tiny_mnist["test"]
        fit_classifier(model, train, TrainConfig(epochs=8, batch_size=64), rng=0)
        from repro.nn import no_grad

        with no_grad():
            shared = model.stem(Tensor(test.images))
            branch_acc = (model.branch(shared).data.argmax(1) == test.labels).mean()
            trunk_acc = (model.trunk(shared).data.argmax(1) == test.labels).mean()
        assert branch_acc > 0.7
        assert trunk_acc > 0.7
