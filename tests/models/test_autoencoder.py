"""Unit tests for the converting autoencoder (Table I)."""

import numpy as np
import pytest

from repro.models import ConvertingAutoencoder
from repro.models.autoencoder import TABLE1_SPECS, AutoencoderSpec
from repro.nn import Tensor


class TestTable1Specs:
    def test_paper_architectures(self):
        """Exact layer sizes/activations from Table I."""
        assert TABLE1_SPECS["mnist"].layer_sizes == (784, 384, 32)
        assert TABLE1_SPECS["mnist"].activations == ("relu", "relu", "linear")
        assert TABLE1_SPECS["fmnist"].layer_sizes == (512, 256, 128)
        assert TABLE1_SPECS["fmnist"].activations == ("relu", "relu", "linear")
        assert TABLE1_SPECS["kmnist"].layer_sizes == (512, 384, 32)
        assert TABLE1_SPECS["kmnist"].activations == ("relu", "linear", "linear")
        for spec in TABLE1_SPECS.values():
            assert spec.output_activation == "softmax"
            assert spec.input_dim == 784

    def test_l1_coefficient_is_papers(self):
        # "L1 penalty with a coefficient of 10e-8" = 1e-7.
        for spec in TABLE1_SPECS.values():
            assert spec.l1_activity == pytest.approx(1e-7)

    def test_mismatched_spec_raises(self):
        with pytest.raises(ValueError):
            AutoencoderSpec(name="bad", layer_sizes=(10, 20), activations=("relu",))


class TestForward:
    def test_output_shape(self):
        model = ConvertingAutoencoder.for_dataset("mnist", rng=0)
        out = model(Tensor(np.random.default_rng(0).random((4, 784), dtype=np.float32)))
        assert out.shape == (4, 784)

    def test_softmax_head_output_sums_to_input_dim(self):
        """Softmax + Scale(D): each reconstruction sums to D."""
        model = ConvertingAutoencoder.for_dataset("fmnist", rng=0)
        out = model(Tensor(np.random.default_rng(0).random((3, 784), dtype=np.float32)))
        assert np.allclose(out.data.sum(axis=1), 784.0, rtol=1e-4)

    def test_sigmoid_head_in_unit_interval(self):
        model = ConvertingAutoencoder.for_dataset("mnist", rng=0, output_activation="sigmoid")
        out = model(Tensor(np.random.default_rng(0).random((3, 784), dtype=np.float32)))
        assert out.data.min() >= 0 and out.data.max() <= 1

    def test_wrong_input_width_raises(self):
        model = ConvertingAutoencoder.for_dataset("mnist", rng=0)
        with pytest.raises(ValueError):
            model(Tensor(np.zeros((1, 100), dtype=np.float32)))

    def test_unknown_dataset_raises(self):
        with pytest.raises(KeyError):
            ConvertingAutoencoder.for_dataset("cifar")

    def test_encode_bottleneck_width(self):
        model = ConvertingAutoencoder.for_dataset("kmnist", rng=0)
        code = model.encode(Tensor(np.zeros((2, 784), dtype=np.float32)))
        assert code.shape == (2, 32)


class TestActivityPenalty:
    def test_penalty_present_in_train_mode(self):
        model = ConvertingAutoencoder.for_dataset("mnist", rng=0)
        model.train()
        model(Tensor(np.random.default_rng(0).random((2, 784), dtype=np.float32)))
        penalty = model.activity_penalty()
        assert penalty is not None
        assert float(penalty.data) >= 0.0

    def test_penalty_absent_in_eval_mode(self):
        model = ConvertingAutoencoder.for_dataset("mnist", rng=0)
        model.eval()
        model(Tensor(np.zeros((2, 784), dtype=np.float32)))
        assert model.activity_penalty() is None


class TestConvert:
    def test_convert_accepts_nchw(self):
        model = ConvertingAutoencoder.for_dataset("mnist", rng=0)
        images = np.random.default_rng(0).random((5, 1, 28, 28)).astype(np.float32)
        out = model.convert(images, batch_size=2)
        assert out.shape == (5, 784)

    def test_convert_matches_forward(self):
        model = ConvertingAutoencoder.for_dataset("mnist", rng=0)
        images = np.random.default_rng(1).random((3, 1, 28, 28)).astype(np.float32)
        from repro.nn import no_grad

        with no_grad():
            direct = model(Tensor(images.reshape(3, -1))).data
        assert np.allclose(model.convert(images), direct, atol=1e-6)

    def test_learns_identity_on_tiny_problem(self):
        """The AE can fit a trivial conversion task (inputs → fixed target)."""
        from repro.core import TrainConfig
        from repro.core.trainer import fit_autoencoder

        rng = np.random.default_rng(0)
        spec = AutoencoderSpec(
            name="tiny",
            layer_sizes=(32, 16, 8),
            activations=("relu", "relu", "linear"),
            output_activation="sigmoid",
            input_dim=16,
        )
        model = ConvertingAutoencoder(spec, rng=0)
        inputs = rng.random((64, 16)).astype(np.float32)
        targets = np.tile(rng.random((1, 16)).astype(np.float32), (64, 1))
        history = fit_autoencoder(
            model, inputs, targets, TrainConfig(epochs=60, batch_size=16, lr=3e-3), rng=0
        )
        assert history.loss[-1] < history.loss[0] * 0.15
