"""Unit tests for the model registry."""

import pytest

from repro.models import build_model, MODEL_BUILDERS, LeNet, BranchyLeNet, ConvertingAutoencoder


class TestRegistry:
    def test_all_names_build(self):
        for name in MODEL_BUILDERS:
            model = build_model(name, rng=0)
            assert model.num_parameters() > 0

    def test_types(self):
        assert isinstance(build_model("lenet", rng=0), LeNet)
        assert isinstance(build_model("branchynet", rng=0), BranchyLeNet)
        assert isinstance(build_model("autoencoder-mnist", rng=0), ConvertingAutoencoder)

    def test_kwargs_forwarded(self):
        model = build_model("lenet", rng=0, num_classes=5)
        assert model.num_classes == 5

    def test_unknown_raises(self):
        with pytest.raises(KeyError):
            build_model("resnet152")
