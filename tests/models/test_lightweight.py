"""Unit tests for the truncated lightweight classifier."""

import numpy as np
import pytest

from repro.models import BranchyLeNet, LeNet, LightweightClassifier
from repro.nn import Tensor
from repro.nn.layers import Conv2d, Linear


class TestTruncation:
    def test_from_branchynet_shares_parameters(self):
        """Truncation must share weights with the source BranchyNet."""
        branchy = BranchyLeNet(rng=0)
        lw = LightweightClassifier.from_branchynet(branchy)
        branchy.stem[0].weight.data[:] = 42.0
        assert np.allclose(lw.stem[0].weight.data, 42.0)

    def test_detached_is_independent(self):
        branchy = BranchyLeNet(rng=0)
        lw = LightweightClassifier.from_branchynet(branchy).detached()
        branchy.stem[0].weight.data[:] = 42.0
        assert not np.allclose(lw.stem[0].weight.data, 42.0)

    def test_two_convs_one_fc(self):
        """Paper §III-B: 2 conv + 1 FC."""
        lw = LightweightClassifier.from_branchynet(BranchyLeNet(rng=0))
        convs = [m for m in lw.modules() if isinstance(m, Conv2d)]
        fcs = [m for m in lw.modules() if isinstance(m, Linear)]
        assert len(convs) == 2 and len(fcs) == 1

    def test_matches_branch_logits(self):
        branchy = BranchyLeNet(rng=0)
        lw = LightweightClassifier.from_branchynet(branchy)
        images = np.random.default_rng(0).random((4, 1, 28, 28)).astype(np.float32)
        from repro.nn import no_grad

        with no_grad():
            expected = branchy.branch(branchy.stem(Tensor(images))).data
            got = lw(Tensor(images)).data
        assert np.allclose(got, expected, atol=1e-6)

    def test_wrong_type_raises(self):
        with pytest.raises(TypeError):
            LightweightClassifier.from_branchynet(LeNet(rng=0))


class TestLenetTruncation:
    def test_truncate_lenet_shapes(self):
        lenet = LeNet(rng=0)
        lw = LightweightClassifier.truncate_lenet(lenet, keep_layers=3, rng=0)
        out = lw(Tensor(np.zeros((2, 1, 28, 28), dtype=np.float32)))
        assert out.shape == (2, 10)

    def test_truncate_lenet_various_depths(self):
        lenet = LeNet(rng=0)
        for k in (1, 2, 3, 6):
            lw = LightweightClassifier.truncate_lenet(lenet, keep_layers=k, rng=0)
            out = lw(Tensor(np.zeros((1, 1, 28, 28), dtype=np.float32)))
            assert out.shape == (1, 10)

    def test_wrong_type_raises(self):
        with pytest.raises(TypeError):
            LightweightClassifier.truncate_lenet(BranchyLeNet(rng=0))


class TestPredict:
    def test_predict_contract(self):
        lw = LightweightClassifier.from_branchynet(BranchyLeNet(rng=0))
        images = np.random.default_rng(0).random((7, 1, 28, 28)).astype(np.float32)
        preds = lw.predict(images, batch_size=3)
        assert preds.shape == (7,)
        assert ((preds >= 0) & (preds < 10)).all()

    def test_stage_names(self):
        lw = LightweightClassifier.from_branchynet(BranchyLeNet(rng=0))
        assert [n for n, _ in lw.stages()] == ["stem", "head"]
