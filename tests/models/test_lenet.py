"""Unit tests for the LeNet baseline."""

import numpy as np
import pytest

from repro.models import LeNet
from repro.nn import Tensor


class TestArchitecture:
    def test_forward_shape(self):
        model = LeNet(rng=0)
        out = model(Tensor(np.zeros((3, 1, 28, 28), dtype=np.float32)))
        assert out.shape == (3, 10)

    def test_three_convs_two_fcs(self):
        """Paper §IV-B: 3 conv + 2 FC layers."""
        from repro.nn.layers import Conv2d, Linear

        model = LeNet(rng=0)
        convs = [m for m in model.modules() if isinstance(m, Conv2d)]
        fcs = [m for m in model.modules() if isinstance(m, Linear)]
        assert len(convs) == 3
        assert len(fcs) == 2

    def test_custom_num_classes(self):
        model = LeNet(num_classes=7, rng=0)
        out = model(Tensor(np.zeros((1, 1, 28, 28), dtype=np.float32)))
        assert out.shape == (1, 7)

    def test_deterministic_init(self):
        a, b = LeNet(rng=3), LeNet(rng=3)
        for (_, pa), (_, pb) in zip(a.named_parameters(), b.named_parameters()):
            assert np.allclose(pa.data, pb.data)

    def test_stages_cover_model(self):
        model = LeNet(rng=0)
        stage_names = [name for name, _ in model.stages()]
        assert stage_names == ["features", "classifier"]


class TestPredict:
    def test_predict_shape_and_range(self):
        model = LeNet(rng=0)
        images = np.random.default_rng(0).random((10, 1, 28, 28)).astype(np.float32)
        preds = model.predict(images, batch_size=4)
        assert preds.shape == (10,)
        assert ((preds >= 0) & (preds < 10)).all()

    def test_predict_empty(self):
        model = LeNet(rng=0)
        preds = model.predict(np.zeros((0, 1, 28, 28), dtype=np.float32))
        assert preds.shape == (0,)

    def test_predict_batching_consistent(self):
        model = LeNet(rng=0)
        images = np.random.default_rng(1).random((9, 1, 28, 28)).astype(np.float32)
        assert np.array_equal(model.predict(images, batch_size=2),
                              model.predict(images, batch_size=9))


class TestTrainability:
    def test_overfits_tiny_batch(self):
        """Sanity: the network can memorize 16 samples."""
        from repro.core import TrainConfig
        from repro.core.trainer import fit_classifier
        from repro.data import ArrayDataset
        from repro.data.synth.digits import render_digits

        rng = np.random.default_rng(0)
        labels = np.arange(16) % 4
        images = render_digits(labels, rng)[:, None, :, :]
        ds = ArrayDataset(images, labels)
        model = LeNet(rng=0)
        fit_classifier(model, ds, TrainConfig(epochs=20, batch_size=16, lr=2e-3), rng=0)
        assert (model.predict(images) == labels).mean() >= 0.9
