"""Regression tests for scheduling race conditions.

Two races the engines must get right:

* an **admission decision and a replica crash on the same tick** — the
  crash is ordered before the arrival, so the decision must see the
  post-crash fleet and the per-class outstanding book must settle the
  cancelled work exactly once (no double-decrement when a retry lands
  on an identical timestamp);
* **preemption of a forming micro-batch whose leader is already in
  flight** — an interactive arrival must board the very next flush
  ahead of batch-class work that was queued first, while the FIFO
  control arm on the identical trace makes it wait its turn.
"""

import numpy as np
import pytest

from conftest import SumBackend, make_scenario, run_scenario

from repro.cluster.failures import FailureEvent
from repro.serving.classes import ClassSet, RequestClass
from repro.serving.engine import Server
from repro.serving.request import Route

RACE_SEEDS = range(5)


def _crash_failures(sc, replica_id=0):
    """Crash `replica_id` at *exactly* an arrival timestamp, mid-trace."""
    t = float(sc.arrival_s[sc.n // 2])
    span = float(sc.arrival_s[-1])
    return (
        FailureEvent(t, replica_id, "crash"),
        FailureEvent(t + 0.2 * span, replica_id, "recover"),
    )


@pytest.mark.parametrize("seed", RACE_SEEDS)
@pytest.mark.parametrize("scheduler", ["priority", "fifo"])
def test_crash_on_admission_tick(seed, scheduler):
    """Crash and arrival share a timestamp: the admission decision and
    per-class outstanding bookkeeping must stay consistent through the
    cancellation + retry storm."""
    sc = make_scenario(seed)
    if len(sc.per_item) < 2:
        sc.per_item = sc.per_item * 2  # a 1-replica fleet can't absorb a crash
    report, requests = run_scenario(
        sc, scheduler=scheduler, admission="fair", failures=_crash_failures(sc)
    )
    assert report.n_crashes == 1
    assert report.n_served + report.n_shed + report.n_unserved == sc.n
    for cr in report.class_reports:
        assert cr.n_served + cr.n_shed + cr.n_unserved == cr.n_requests
    assert report.n_unserved == 0  # every stranded request was re-dispatched
    for r in requests:
        if r.done:
            assert np.isfinite(r.dispatch_s)
            assert r.arrival_s <= r.dispatch_s <= r.completion_s
        else:
            assert r.route == Route.SHED


@pytest.mark.parametrize("seed", RACE_SEEDS)
def test_crash_does_not_break_batch_reserve(seed):
    """The weighted-fair reserve survives crash cancellation: stranded
    batch work is rolled back and readmitted rather than leaking
    outstanding slots until the class locks out."""
    sc = make_scenario(seed, overload=1.8)
    if len(sc.per_item) < 2:
        sc.per_item = sc.per_item * 2
    report, _ = run_scenario(
        sc, scheduler="priority", admission="fair", failures=_crash_failures(sc)
    )
    _, _, batch = report.class_reports
    assert batch.n_served > 0
    assert batch.n_unserved == 0


def _preemption_trace():
    """4 batch leaders (dispatched), 6 forming batch, then 1 interactive."""
    classes = ClassSet(
        (
            RequestClass("interactive", 0, 0.05, 0.5, max_wait_s=0.001),
            RequestClass("batch", 1, 1.0, 0.5, max_wait_s=0.05),
        )
    )
    arrival_s = np.array(
        [0.0, 0.0005, 0.001, 0.0015]  # leader batch: flushes full at 1.5 ms
        + [0.002, 0.0025, 0.003, 0.0035, 0.004, 0.0045]  # forming batch
        + [0.005],  # the interactive arrival, leader still in flight
    )
    codes = np.array([1] * 10 + [0], dtype=np.int8)
    rng = np.random.default_rng(0)
    images = rng.random((len(arrival_s), 1, 4, 4)).astype(np.float32)
    return classes, images, arrival_s, codes


@pytest.mark.parametrize("scheduler", ["priority", "fifo"])
def test_leader_batch_is_in_flight_at_arrival(scheduler):
    classes, images, arrival_s, codes = _preemption_trace()
    server = Server(
        SumBackend(per_item_s=0.001, overhead_s=0.001),
        max_batch_size=4,
        max_wait_s=0.004,
        classes=classes,
        scheduler=scheduler,
    )
    _, reqs = server.serve_detailed(images, arrival_s, request_classes=codes)
    inter = reqs[10]
    leader = reqs[:4]
    # Race precondition: when the interactive request arrives, the leader
    # batch has been dispatched but not completed.
    assert all(r.dispatch_s < inter.arrival_s < r.completion_s for r in leader)


def test_interactive_preempts_forming_batch():
    classes, images, arrival_s, codes = _preemption_trace()

    def run(scheduler):
        server = Server(
            SumBackend(per_item_s=0.001, overhead_s=0.001),
            max_batch_size=4,
            max_wait_s=0.004,
            classes=classes,
            scheduler=scheduler,
        )
        _, reqs = server.serve_detailed(images, arrival_s, request_classes=codes)
        return reqs

    prio = run("priority")
    fifo = run("fifo")

    # Priority: the interactive request boards the first post-leader
    # flush — nothing queued behind the in-flight leader dispatches
    # before it, and some earlier-arrived batch work is pushed behind it.
    post_leader = prio[4:]
    inter = prio[10]
    assert inter.dispatch_s == min(r.dispatch_s for r in post_leader)
    overtaken = [
        r for r in prio[4:10]
        if r.arrival_s < inter.arrival_s and r.dispatch_s > inter.dispatch_s
    ]
    assert overtaken, "priority flush should defer some earlier batch work"

    # FIFO control arm on the identical trace: the interactive request
    # waits behind every earlier batch request instead.
    fifo_inter = fifo[10]
    assert all(fifo_inter.dispatch_s >= r.dispatch_s for r in fifo[4:10])
    assert fifo_inter.dispatch_s > inter.dispatch_s
    assert fifo_inter.completion_s > inter.completion_s
