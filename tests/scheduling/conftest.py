"""Randomized multi-tenant scenarios for the scheduler-invariant harness.

Every test in this package runs against :func:`make_scenario` traces:
a small toy fleet (pixel-sum models, so predictions are checkable and
free), a Poisson overload trace, and a random three-class mix.  The
generator randomizes fleet size, service rates, batch/wait knobs, the
overload factor, and the class shares — the invariants must hold for
*all* of them, not for one tuned configuration.
"""

from dataclasses import dataclass

import numpy as np

from repro.cluster import AdmissionController, Cluster, WeightedFairAdmission
from repro.cluster.admission import REJECT
from repro.serving.arrivals import class_mix, poisson_arrivals
from repro.serving.backends import BatchTiming, InferenceBackend
from repro.serving.classes import ClassSet, default_classes
from repro.sim import oracle_backend

N_POOL = 48


class SumBackend(InferenceBackend):
    """Deterministic toy model: label = pixel-sum mod 10."""

    name = "sum"

    def __init__(self, per_item_s=0.001, overhead_s=0.001):
        super().__init__(BatchTiming(overhead_s=overhead_s, per_item_s=per_item_s))

    def predict(self, images, decision=None):
        return (images.reshape(images.shape[0], -1).sum(axis=1)).astype(np.int64) % 10


@dataclass
class Scenario:
    """One randomized trace plus everything needed to replay it."""

    seed: int
    images: np.ndarray
    labels: np.ndarray
    ids: np.ndarray
    arrival_s: np.ndarray
    codes: np.ndarray
    classes: ClassSet
    per_item: tuple
    max_batch: int
    max_wait_s: float
    max_outstanding: int

    @property
    def n(self) -> int:
        return len(self.ids)

    def backends(self):
        """A fresh toy fleet (one backend per replica)."""
        return [SumBackend(per_item_s=p) for p in self.per_item]


def make_scenario(seed, n_requests=None, overload=None) -> Scenario:
    """Build one randomized overloaded multi-tenant trace."""
    rng = np.random.default_rng(seed)
    n = int(rng.integers(300, 600)) if n_requests is None else n_requests
    n_replicas = int(rng.integers(1, 4))
    per_item = tuple(float(rng.uniform(0.0004, 0.0012)) for _ in range(n_replicas))
    max_batch = int(rng.choice([4, 8, 16]))
    max_wait_s = float(rng.uniform(0.002, 0.006))
    backends = [SumBackend(per_item_s=p) for p in per_item]
    capacity = sum(1.0 / b.mean_service_s(batch_size=max_batch) for b in backends)
    overload = float(rng.uniform(1.2, 2.0)) if overload is None else overload

    slowest = max(
        b.mean_service_s(batch_size=max_batch) * max_batch for b in backends
    )
    classes = default_classes(
        slo_s=3.0 * (slowest + max_wait_s), max_wait_s=max_wait_s
    )

    images = rng.random((N_POOL, 1, 4, 4)).astype(np.float32)
    labels = (images.reshape(N_POOL, -1).sum(axis=1)).astype(np.int64) % 10
    ids = rng.integers(0, N_POOL, size=n)
    arrival_s = poisson_arrivals(overload * capacity, n, rng=rng)
    shares = rng.dirichlet((4.0, 3.0, 2.0))
    codes = class_mix(n, shares, rng)
    # Guarantee every class occurs so per-class assertions never vacuously
    # pass on an empty class.
    codes[:3] = np.array([0, 1, 2], dtype=np.int8)
    return Scenario(
        seed=seed,
        images=images,
        labels=labels,
        ids=ids,
        arrival_s=arrival_s,
        codes=codes,
        classes=classes,
        per_item=per_item,
        max_batch=max_batch,
        max_wait_s=max_wait_s,
        max_outstanding=int(rng.integers(4, 10)) * max_batch * n_replicas,
    )


def build_cluster(
    sc: Scenario,
    scheduler: str = "priority",
    admission: str = "fair",
    oracle: bool = False,
    failures=(),
) -> Cluster:
    """Assemble a cluster for one scenario arm."""
    if admission == "fair":
        ctrl = WeightedFairAdmission(sc.classes, max_outstanding=sc.max_outstanding)
    elif admission == "reject":
        ctrl = AdmissionController(max_outstanding=sc.max_outstanding, policy=REJECT)
    elif admission is None:
        ctrl = None
    else:
        raise ValueError(admission)
    backends = sc.backends()
    if oracle:
        backends = [oracle_backend(b, sc.images) for b in backends]
    return Cluster(
        backends,
        policy="least-outstanding",
        admission=ctrl,
        failures=failures,
        slo_s=sc.classes[0].deadline_s,
        classes=sc.classes,
        scheduler=scheduler,
        max_batch_size=sc.max_batch,
        max_wait_s=sc.max_wait_s,
        cache_capacity=0,
        rng=sc.seed,
    )


def run_scenario(sc, scheduler="priority", admission="fair", oracle=False, failures=()):
    """Serve one scenario arm; returns (report, finished requests)."""
    cluster = build_cluster(
        sc, scheduler=scheduler, admission=admission, oracle=oracle, failures=failures
    )
    stream = sc.ids if oracle else sc.images[sc.ids]
    return cluster.serve_detailed(
        stream, sc.arrival_s, labels=sc.labels[sc.ids], request_classes=sc.codes
    )
