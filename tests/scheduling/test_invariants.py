"""Property tests: scheduler invariants over randomized overload traces.

Three invariants, each checked across 20+ randomized scenarios
(fleet size, service rates, batching knobs, overload factor, and class
mix all vary):

* **conservation** — every request ends in exactly one terminal state
  (served, shed, or unserved) and the per-class counts tile the trace;
* **priority ordering** — no lower-priority request boards a flush on a
  replica while a higher-priority request that was already queued there
  is left waiting;
* **batch no-starvation** — weighted-fair admission keeps the batch
  class flowing under sustained overload (throttled, never zeroed).
"""

import numpy as np
import pytest

from conftest import make_scenario, run_scenario

from repro.serving.request import Route

SEEDS = range(20)


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("scheduler", ["priority", "fifo"])
def test_request_conservation(seed, scheduler):
    sc = make_scenario(seed)
    report, requests = run_scenario(sc, scheduler=scheduler)

    assert report.n_requests == sc.n
    assert report.n_served + report.n_shed + report.n_unserved == sc.n
    assert sum(r.n_requests for r in report.class_reports) == sc.n
    for cr in report.class_reports:
        assert cr.n_served + cr.n_shed + cr.n_unserved == cr.n_requests

    n_served = n_shed = n_unserved = 0
    for r in requests:
        served = r.done
        shed = r.route == Route.SHED
        assert not (served and shed)  # at most one terminal state
        if served:
            n_served += 1
            assert np.isfinite(r.dispatch_s)
            assert r.arrival_s <= r.dispatch_s <= r.completion_s
        elif shed:
            n_shed += 1
            assert np.isnan(r.completion_s) and np.isnan(r.dispatch_s)
        else:
            n_unserved += 1
    assert (n_served, n_shed, n_unserved) == (
        report.n_served,
        report.n_shed,
        report.n_unserved,
    )


@pytest.mark.parametrize("seed", SEEDS)
def test_priority_ordering(seed):
    """No flush carries class c while a more urgent request waits on the
    same replica: the priority fill boards urgent classes first, so any
    request left behind must be of equal or lower priority than every
    request that boarded."""
    sc = make_scenario(seed)
    _, requests = run_scenario(sc, scheduler="priority")
    served = [r for r in requests if r.done and r.retries == 0]
    priority = {c: spec.priority for c, spec in enumerate(sc.classes)}

    by_replica = {}
    for r in served:
        by_replica.setdefault(r.replica_id, []).append(r)
    checked = 0
    for replica_id, reqs in by_replica.items():
        flush_times = sorted({r.dispatch_s for r in reqs})
        for t in flush_times:
            boarded = [r for r in reqs if r.dispatch_s == t]
            # Queued on this replica strictly before the flush, not yet
            # dispatched: these are the requests the flush passed over.
            waiting = [r for r in reqs if r.arrival_s < t and r.dispatch_s > t]
            if not waiting:
                continue
            most_urgent_waiting = min(priority[r.req_class] for r in waiting)
            for r in boarded:
                assert priority[r.req_class] <= most_urgent_waiting, (
                    f"replica {replica_id} flush @ {t}: class {r.req_class} "
                    f"boarded while a more urgent request waited"
                )
                checked += 1
    assert checked > 0  # overload guarantees contended flushes


@pytest.mark.parametrize("seed", SEEDS)
def test_batch_no_starvation(seed):
    """Under sustained 1.8x overload with weighted-fair admission and
    priority scheduling, the batch class is throttled but never starved:
    its reserve keeps admitting it, and every admitted batch request is
    eventually dispatched (deferred, not dropped by the scheduler)."""
    sc = make_scenario(seed, overload=1.8)
    report, _ = run_scenario(sc, scheduler="priority", admission="fair")
    _, _, batch = report.class_reports
    assert batch.n_served > 0, "batch class starved despite its reserve"
    assert batch.n_unserved == 0, "admitted batch requests were never dispatched"
