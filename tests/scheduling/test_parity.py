"""Oracle-vs-live parity for the multi-tenant scheduling stack.

Extends the parity contract of ``tests/sim`` to request classes: the
precomputed oracle must replay priority scheduling, weighted-fair
admission, and the per-class report slice *field for field* — including
scenarios where a class is entirely shed (NaN percentiles on both
sides).
"""

import dataclasses
import math

import pytest

from conftest import make_scenario, run_scenario

SEEDS = range(6)


def assert_fields_equal(live, orc, skip=()):
    """Field-by-field dataclass equality with NaN == NaN."""
    assert type(live) is type(orc)
    for f in dataclasses.fields(live):
        if f.name in skip:
            continue
        a, b = getattr(live, f.name), getattr(orc, f.name)
        if isinstance(a, float) and math.isnan(a):
            assert isinstance(b, float) and math.isnan(b), f.name
        else:
            assert a == b, f"{f.name}: live={a!r} oracle={b!r}"


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("scheduler", ["priority", "fifo"])
def test_per_class_report_parity(seed, scheduler):
    sc = make_scenario(seed)
    live, live_reqs = run_scenario(sc, scheduler=scheduler, oracle=False)
    orc, orc_reqs = run_scenario(sc, scheduler=scheduler, oracle=True)

    assert_fields_equal(live, orc, skip=("class_reports",))
    assert len(live.class_reports) == len(orc.class_reports) == len(sc.classes)
    for lcr, ocr in zip(live.class_reports, orc.class_reports):
        assert_fields_equal(lcr, ocr)

    # Per-request records match too — class code, requested route,
    # dispatch time and all (NaN-valued fields only on unserved/shed
    # requests, equal-NaN on both sides).
    assert len(live_reqs) == len(orc_reqs)
    for lr, orr in zip(live_reqs, orc_reqs):
        assert_fields_equal(lr, orr)


@pytest.mark.parametrize("seed", SEEDS)
def test_parity_holds_when_a_class_is_fully_shed(seed):
    """Degenerate slice: crank overload so hard that batch is (nearly)
    wiped — NaN percentile fields must agree between modes rather than
    comparing unequal."""
    sc = make_scenario(seed, overload=3.0)
    live, _ = run_scenario(sc, scheduler="priority", oracle=False)
    orc, _ = run_scenario(sc, scheduler="priority", oracle=True)
    for lcr, ocr in zip(live.class_reports, orc.class_reports):
        assert_fields_equal(lcr, ocr)
