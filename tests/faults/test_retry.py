"""Unit tests for the jittered exponential-backoff retry budget."""

import pytest

from repro.faults import RetryPolicy


class TestValidation:
    def test_negative_budget_rejected(self):
        with pytest.raises(ValueError, match="max_retries"):
            RetryPolicy(max_retries=-1)

    def test_mult_below_one_rejected(self):
        with pytest.raises(ValueError, match="backoff_mult"):
            RetryPolicy(backoff_mult=0.5)

    def test_cap_below_base_rejected(self):
        with pytest.raises(ValueError, match="max_backoff_s"):
            RetryPolicy(base_backoff_s=0.1, max_backoff_s=0.01)

    def test_jitter_bounds(self):
        with pytest.raises(ValueError, match="jitter_frac"):
            RetryPolicy(jitter_frac=1.5)


class TestBudget:
    def test_allows_counts_retries_not_attempts(self):
        policy = RetryPolicy(max_retries=2)
        assert policy.allows(0)
        assert policy.allows(1)
        assert not policy.allows(2)

    def test_zero_budget_disables_retries(self):
        assert not RetryPolicy(max_retries=0).allows(0)


class TestDelay:
    def test_exponential_growth_at_midpoint_draw(self):
        policy = RetryPolicy(
            base_backoff_s=0.01, backoff_mult=2.0, max_backoff_s=1.0, jitter_frac=0.5
        )
        # u=0.5 means zero jitter: the schedule is the pure exponential.
        assert policy.delay_s(1, 0.5) == pytest.approx(0.01)
        assert policy.delay_s(2, 0.5) == pytest.approx(0.02)
        assert policy.delay_s(3, 0.5) == pytest.approx(0.04)

    def test_cap_applies_before_jitter(self):
        policy = RetryPolicy(
            base_backoff_s=0.01, backoff_mult=10.0, max_backoff_s=0.05, jitter_frac=0.0
        )
        assert policy.delay_s(5, 0.5) == pytest.approx(0.05)

    def test_jitter_spans_the_declared_band(self):
        policy = RetryPolicy(base_backoff_s=0.1, jitter_frac=0.25)
        assert policy.delay_s(1, 0.0) == pytest.approx(0.075)
        assert policy.delay_s(1, 1.0) == pytest.approx(0.125)

    def test_same_draw_same_delay(self):
        policy = RetryPolicy()
        assert policy.delay_s(2, 0.3) == policy.delay_s(2, 0.3)

    def test_attempt_is_one_based(self):
        with pytest.raises(ValueError, match="1-based"):
            RetryPolicy().delay_s(0, 0.5)
