"""Unit tests for the bundled ResilienceConfig and hedge-delay helper."""

import pytest

from repro.faults import ResilienceConfig, hedge_delay_for
from repro.serving.backends import BatchTiming, InferenceBackend


class _Toy(InferenceBackend):
    name = "toy"

    def __init__(self, per_item_s):
        super().__init__(BatchTiming(overhead_s=0.001, per_item_s=per_item_s))

    def predict(self, images, decision=None):  # pragma: no cover - unused
        raise NotImplementedError


class TestValidation:
    def test_timeout_must_be_positive(self):
        with pytest.raises(ValueError, match="timeout_s"):
            ResilienceConfig(timeout_s=0.0)

    def test_hedge_must_be_positive(self):
        with pytest.raises(ValueError, match="hedge_delay_s"):
            ResilienceConfig(hedge_delay_s=0.0)

    def test_hedge_after_timeout_rejected(self):
        with pytest.raises(ValueError, match="hedge"):
            ResilienceConfig(timeout_s=0.1, hedge_delay_s=0.1)

    def test_defaults_are_consistent(self):
        config = ResilienceConfig()
        assert config.timeout_s > 0
        assert config.hedge_delay_s is None
        assert config.degradation is None


class TestHedgeDelayFor:
    def test_scales_with_slowest_backend(self):
        fast, slow = _Toy(0.001), _Toy(0.004)
        d_fast = hedge_delay_for([fast], 8, 0.004)
        d_both = hedge_delay_for([fast, slow], 8, 0.004)
        assert d_both > d_fast

    def test_factor_and_wait_enter_linearly(self):
        backend = _Toy(0.001)
        base = hedge_delay_for([backend], 8, 0.004, factor=1.0)
        assert hedge_delay_for([backend], 8, 0.004, factor=2.0) == pytest.approx(
            2.0 * base
        )

    def test_rejects_empty_fleet_and_bad_factor(self):
        with pytest.raises(ValueError, match="backends"):
            hedge_delay_for([], 8, 0.004)
        with pytest.raises(ValueError, match="factor"):
            hedge_delay_for([_Toy(0.001)], 8, 0.004, factor=0.0)
