"""Unit tests for the degradation ladder controller."""

import pytest

from repro.faults import (
    MODE_DEGRADE,
    MODE_FULL,
    MODE_SHED,
    DegradationConfig,
    DegradationController,
)


def make_controller(dwell_s=0.1, degrade=0.25, shed=0.5) -> DegradationController:
    return DegradationController(
        DegradationConfig(degrade_pressure=degrade, shed_pressure=shed, dwell_s=dwell_s)
    )


class TestConfigValidation:
    def test_shed_below_degrade_rejected(self):
        with pytest.raises(ValueError, match="shed_pressure"):
            DegradationConfig(degrade_pressure=0.5, shed_pressure=0.25)

    def test_degrade_pressure_bounds(self):
        with pytest.raises(ValueError, match="degrade_pressure"):
            DegradationConfig(degrade_pressure=0.0)

    def test_negative_dwell_rejected(self):
        with pytest.raises(ValueError, match="dwell_s"):
            DegradationConfig(dwell_s=-1.0)


class TestLadder:
    def test_starts_full_and_stays_under_low_pressure(self):
        ctrl = make_controller()
        assert ctrl.update(0.0, 0.0) == MODE_FULL
        assert ctrl.update(1.0, 0.2) == MODE_FULL
        assert ctrl.n_transitions == 0

    def test_dwell_filters_blips(self):
        ctrl = make_controller(dwell_s=0.1)
        assert ctrl.update(0.0, 0.6) == MODE_FULL  # pressure noted, not acted on
        assert ctrl.update(0.05, 0.0) == MODE_FULL  # blip over: pending cleared
        assert ctrl.update(0.2, 0.6) == MODE_FULL  # new episode restarts the dwell
        assert ctrl.update(0.25, 0.6) == MODE_FULL
        assert ctrl.update(0.31, 0.6) == MODE_DEGRADE

    def test_walks_one_rung_at_a_time(self):
        """full -> shed always passes through degrade, one dwell per rung."""
        ctrl = make_controller(dwell_s=0.1)
        ctrl.update(0.0, 0.9)
        assert ctrl.update(0.1, 0.9) == MODE_DEGRADE
        assert ctrl.update(0.15, 0.9) == MODE_DEGRADE  # second dwell not yet served
        assert ctrl.update(0.2, 0.9) == MODE_SHED
        assert ctrl.n_transitions == 2

    def test_recovers_back_up_the_ladder(self):
        ctrl = make_controller(dwell_s=0.1)
        ctrl.update(0.0, 0.9)
        ctrl.update(0.1, 0.9)
        ctrl.update(0.2, 0.9)
        assert ctrl.mode == MODE_SHED
        ctrl.update(0.3, 0.0)
        assert ctrl.update(0.41, 0.0) == MODE_DEGRADE
        assert ctrl.update(0.52, 0.0) == MODE_FULL

    def test_zero_dwell_reacts_immediately_but_still_stepwise(self):
        ctrl = make_controller(dwell_s=0.0)
        assert ctrl.update(0.0, 0.9) == MODE_DEGRADE
        assert ctrl.update(0.0, 0.9) == MODE_SHED

    def test_open_frac_validated(self):
        with pytest.raises(ValueError, match="open_frac"):
            make_controller().update(0.0, 1.5)
