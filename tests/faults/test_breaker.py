"""Unit tests for the per-replica circuit breaker state machine."""

import pytest

from repro.faults import BreakerConfig, CircuitBreaker
from repro.faults.breaker import CLOSED, HALF_OPEN, OPEN


def make_breaker(**overrides) -> CircuitBreaker:
    defaults = dict(
        window_s=1.0,
        min_samples=4,
        error_threshold=0.5,
        cooldown_s=0.5,
        half_open_probes=2,
    )
    defaults.update(overrides)
    return CircuitBreaker(BreakerConfig(**defaults))


def trip(breaker: CircuitBreaker, now: float = 0.0) -> None:
    for k in range(breaker.config.min_samples):
        breaker.record(now + 1e-3 * k, ok=False)
    assert breaker.state == OPEN


class TestConfigValidation:
    def test_rejects_bad_knobs(self):
        for kwargs in (
            {"window_s": 0.0},
            {"min_samples": 0},
            {"error_threshold": 0.0},
            {"error_threshold": 1.5},
            {"latency_threshold_s": 0.0},
            {"cooldown_s": 0.0},
            {"half_open_probes": 0},
        ):
            with pytest.raises(ValueError):
                BreakerConfig(**kwargs)


class TestTripping:
    def test_stays_closed_below_min_samples(self):
        b = make_breaker(min_samples=8)
        for k in range(7):
            b.record(1e-3 * k, ok=False)
        assert b.state == CLOSED

    def test_trips_on_error_fraction(self):
        b = make_breaker()
        trip(b)
        assert b.n_trips == 1
        assert not b.available(0.1)

    def test_errors_outside_window_are_forgotten(self):
        b = make_breaker(window_s=0.1, min_samples=4)
        for k in range(3):
            b.record(1e-3 * k, ok=False)
        # Long quiet gap: old errors evict, fresh successes dominate.
        for k in range(4):
            b.record(1.0 + 1e-3 * k, ok=True)
        assert b.state == CLOSED

    def test_latency_threshold_trips_on_slow_successes(self):
        b = make_breaker(latency_threshold_s=0.01)
        for k in range(4):
            b.record(1e-3 * k, ok=True, latency_s=0.05)
        assert b.state == OPEN


class TestHalfOpenCycle:
    def test_cooldown_gates_reentry(self):
        b = make_breaker(cooldown_s=0.5)
        trip(b)
        opened = b.opened_at_s
        assert not b.available(opened + 0.49)
        assert b.available(opened + 0.5)
        assert b.state == HALF_OPEN

    def test_probe_successes_close(self):
        b = make_breaker(half_open_probes=2)
        trip(b)
        now = b.opened_at_s + 1.0
        assert b.allow(now)
        assert b.allow(now)
        assert not b.allow(now)  # both probe slots consumed
        b.record(now + 0.01, ok=True)
        b.record(now + 0.02, ok=True)
        assert b.state == CLOSED
        assert b.available(now + 0.03)

    def test_probe_failure_reopens(self):
        b = make_breaker()
        trip(b)
        now = b.opened_at_s + 1.0
        assert b.allow(now)
        b.record(now + 0.01, ok=False)
        assert b.state == OPEN
        assert b.n_trips == 2
        assert not b.available(now + 0.02)

    def test_availability_check_does_not_consume_probe(self):
        b = make_breaker(half_open_probes=1)
        trip(b)
        now = b.opened_at_s + 1.0
        assert b.available(now)
        assert b.available(now)  # repeated checks are free
        b.note_probe()
        assert not b.available(now)

    def test_void_probe_releases_a_cancelled_slot(self):
        """A probe whose attempt dies without an outcome must not wedge
        the breaker half-open forever."""
        b = make_breaker(half_open_probes=1)
        trip(b)
        now = b.opened_at_s + 1.0
        assert b.allow(now)
        assert not b.available(now)
        b.void_probe()  # the probe's copy was dropped at a flush
        assert b.available(now)
        b.note_probe()
        b.record(now + 0.01, ok=True)
        assert b.state == CLOSED

    def test_void_probe_clamps_at_zero(self):
        b = make_breaker()
        trip(b)
        now = b.opened_at_s + 1.0
        assert b.available(now)
        b.void_probe()
        b.void_probe()  # over-release: harmless
        assert b._probes_out == 0
