"""Unit tests for the fault taxonomy (Fault, FaultPlan, fault_storm)."""

import math

import numpy as np
import pytest

from repro.cluster.failures import CRASH, RECOVER, FailureEvent
from repro.faults import (
    FLAKY,
    HEAL,
    PARTITION,
    SLOWDOWN,
    Fault,
    FaultPlan,
    fault_storm,
    flaky_window,
    partition_window,
    slowdown_window,
)


class TestFaultValidation:
    def test_negative_time_rejected(self):
        with pytest.raises(ValueError, match="time"):
            Fault(-1.0, 0, SLOWDOWN, 2.0)

    def test_negative_replica_rejected(self):
        with pytest.raises(ValueError, match="replica_id"):
            Fault(0.0, -1, SLOWDOWN, 2.0)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="kind"):
            Fault(0.0, 0, "meltdown")

    def test_slowdown_must_not_speed_up(self):
        with pytest.raises(ValueError, match="slowdown"):
            Fault(0.0, 0, SLOWDOWN, 0.5)
        Fault(0.0, 0, SLOWDOWN, 1.0)  # restoring to nominal is legal

    def test_flaky_probability_bounds(self):
        with pytest.raises(ValueError, match="flaky"):
            Fault(0.0, 0, FLAKY, 1.0)
        Fault(0.0, 0, FLAKY, 0.0)  # restoring health is legal

    def test_window_helpers_reject_nonpositive_duration(self):
        for helper, args in (
            (slowdown_window, (0, 0.1, 0.0, 2.0)),
            (partition_window, (0, 0.1, -1.0)),
            (flaky_window, (0, 0.1, 0.0, 0.5)),
        ):
            with pytest.raises(ValueError, match="duration"):
                helper(*args)


class TestOrdering:
    def test_same_timestamp_kind_ranks(self):
        """At one instant: heal < slowdown < flaky < partition —
        explicit ranks, independent of string comparison."""
        t = 1.0
        faults = [
            Fault(t, 0, PARTITION),
            Fault(t, 0, FLAKY, 0.3),
            Fault(t, 0, SLOWDOWN, 2.0),
            Fault(t, 0, HEAL),
        ]
        kinds = [f.kind for f in sorted(faults)]
        assert kinds == [HEAL, SLOWDOWN, FLAKY, PARTITION]

    def test_replica_breaks_ties_before_kind(self):
        a = Fault(1.0, 1, HEAL)
        b = Fault(1.0, 0, PARTITION)
        assert sorted([a, b]) == [b, a]

    def test_plan_sorts_on_construction(self):
        plan = FaultPlan(
            faults=(Fault(2.0, 0, HEAL), Fault(1.0, 0, PARTITION)),
            failures=(FailureEvent(0.5, 1, RECOVER), FailureEvent(0.1, 1, CRASH)),
        )
        assert [f.time_s for f in plan.faults] == [1.0, 2.0]
        assert [e.kind for e in plan.failures] == [CRASH, RECOVER]


class TestFaultPlan:
    def test_empty_plan_is_falsy(self):
        assert not FaultPlan()
        assert FaultPlan(faults=(Fault(0.0, 0, PARTITION),))

    def test_max_replica_id_spans_both_event_types(self):
        plan = FaultPlan(
            faults=(Fault(0.0, 1, SLOWDOWN, 2.0),),
            failures=(FailureEvent(0.0, 3, CRASH),),
        )
        assert plan.max_replica_id() == 3
        assert FaultPlan().max_replica_id() == -1

    def test_partition_intervals_simple(self):
        plan = FaultPlan(faults=partition_window(0, 1.0, 2.0))
        assert plan.partition_intervals() == {0: [(1.0, 3.0)]}

    def test_partition_intervals_merge_overlaps(self):
        """Nested/overlapping windows merge into one interval that closes
        only when the nesting count returns to zero."""
        plan = FaultPlan(
            faults=partition_window(0, 1.0, 4.0) + partition_window(0, 3.0, 5.0)
        )
        assert plan.partition_intervals() == {0: [(1.0, 8.0)]}

    def test_unhealed_partition_extends_to_infinity(self):
        plan = FaultPlan(faults=(Fault(2.0, 1, PARTITION),))
        ((start, end),) = plan.partition_intervals()[1]
        assert start == 2.0 and math.isinf(end)

    def test_stray_heal_is_ignored(self):
        plan = FaultPlan(faults=(Fault(1.0, 0, HEAL),))
        assert plan.partition_intervals() == {}


class TestFaultStorm:
    def test_seed_determinism(self):
        a = fault_storm(3, 10.0, rng=42, crash_mtbf_s=20.0, crash_mttr_s=2.0)
        b = fault_storm(3, 10.0, rng=42, crash_mtbf_s=20.0, crash_mttr_s=2.0)
        assert a == b
        assert a.seed == b.seed

    def test_different_seeds_differ(self):
        a = fault_storm(3, 10.0, rng=1)
        b = fault_storm(3, 10.0, rng=2)
        assert a != b

    def test_storm_respects_bounds(self):
        plan = fault_storm(
            4, 5.0, rng=np.random.default_rng(7), crash_mtbf_s=10.0, crash_mttr_s=1.0
        )
        assert plan.max_replica_id() < 4
        for f in plan.faults:
            assert 0.0 <= f.time_s <= 5.0 + 1e-5
            if f.kind == SLOWDOWN and f.magnitude != 1.0:
                assert 4.0 <= f.magnitude <= 16.0
            if f.kind == FLAKY and f.magnitude != 0.0:
                assert 0.2 <= f.magnitude <= 0.7

    def test_storm_validation(self):
        with pytest.raises(ValueError, match="n_replicas"):
            fault_storm(0, 1.0)
        with pytest.raises(ValueError, match="horizon"):
            fault_storm(1, 0.0)
