"""Balancer policy semantics on hand-built replica states."""

import numpy as np
import pytest

from repro.cluster.policies import (
    POLICY_NAMES,
    JoinShortestQueue,
    LeastOutstanding,
    PowerOfTwoChoices,
    RoundRobin,
    make_policy,
)
from repro.cluster.replica import InFlightBatch, Replica

from conftest import SumBackend


def replica_with_load(replica_id, pending=0, in_service=0, waiting=0, now=1.0):
    """A replica with `pending` batcher entries, `in_service` requests in a
    started batch, and `waiting` requests in a not-yet-started batch."""
    r = Replica(replica_id, SumBackend(), max_batch_size=64, max_wait_s=1.0)
    for i in range(pending):
        r.batcher.add(i, now)
    if in_service:
        r.commit(
            InFlightBatch(tuple(range(in_service)), None, start_s=now - 0.1, completion_s=now + 1.0)
        )
    if waiting:
        r.commit(
            InFlightBatch(tuple(range(waiting)), None, start_s=now + 0.5, completion_s=now + 2.0)
        )
    return r


class TestSignals:
    def test_outstanding_counts_pending_and_in_flight(self):
        r = replica_with_load(0, pending=3, in_service=2, waiting=4)
        assert r.outstanding(1.0) == 9

    def test_queue_depth_excludes_started_batches(self):
        r = replica_with_load(0, pending=3, in_service=2, waiting=4)
        assert r.queue_depth(1.0) == 7

    def test_completed_batches_leave_outstanding(self):
        r = replica_with_load(0, in_service=2)
        assert r.outstanding(5.0) == 0


class TestPolicies:
    def test_round_robin_cycles(self):
        rr = RoundRobin()
        replicas = [replica_with_load(i) for i in range(3)]
        rng = np.random.default_rng(0)
        picks = [rr.choose(replicas, 1.0, rng).replica_id for _ in range(6)]
        assert picks == [0, 1, 2, 0, 1, 2]

    def test_least_outstanding_picks_global_minimum(self):
        replicas = [
            replica_with_load(0, pending=5),
            replica_with_load(1, in_service=1),
            replica_with_load(2, waiting=8),
        ]
        pick = LeastOutstanding().choose(replicas, 1.0, np.random.default_rng(0))
        assert pick.replica_id == 1

    def test_jsq_ignores_in_service_work(self):
        replicas = [
            replica_with_load(0, in_service=10),  # busy but nothing queued
            replica_with_load(1, pending=1),
        ]
        pick = JoinShortestQueue().choose(replicas, 1.0, np.random.default_rng(0))
        assert pick.replica_id == 0

    def test_ties_break_to_lowest_id(self):
        replicas = [replica_with_load(2), replica_with_load(0), replica_with_load(1)]
        pick = LeastOutstanding().choose(replicas, 1.0, np.random.default_rng(0))
        assert pick.replica_id == 0

    def test_power_of_two_prefers_less_loaded_probe(self):
        # With two replicas the two probes cover the fleet: the less
        # loaded one must always win, whatever the rng.
        replicas = [replica_with_load(0, pending=9), replica_with_load(1)]
        p2c = PowerOfTwoChoices()
        for seed in range(10):
            pick = p2c.choose(replicas, 1.0, np.random.default_rng(seed))
            assert pick.replica_id == 1

    def test_power_of_two_single_replica(self):
        replicas = [replica_with_load(7)]
        pick = PowerOfTwoChoices().choose(replicas, 1.0, np.random.default_rng(0))
        assert pick.replica_id == 7

    def test_factory_round_trip_and_unknown(self):
        for name in POLICY_NAMES:
            assert make_policy(name).name == name
        with pytest.raises(ValueError):
            make_policy("random")
