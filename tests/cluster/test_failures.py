"""Unit tests for the failure model: event ordering, samplers, and
crash semantics across replica lifecycle states."""

import pytest
from conftest import SumBackend

from repro.cluster.failures import (
    CRASH,
    RECOVER,
    FailureEvent,
    crash_window,
    poisson_failures,
)
from repro.cluster.replica import InFlightBatch, Replica, ReplicaState


class TestEventValidation:
    def test_negative_time_rejected(self):
        with pytest.raises(ValueError, match="time"):
            FailureEvent(-0.1, 0, CRASH)

    def test_negative_replica_rejected(self):
        with pytest.raises(ValueError, match="replica_id"):
            FailureEvent(0.0, -1, CRASH)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="kind"):
            FailureEvent(0.0, 0, "reboot")


class TestOrdering:
    def test_crash_sorts_before_recover_at_same_instant(self):
        """Regression: same-timestamp ordering is an explicit rank, not
        string comparison ('crash' < 'recover' happens to hold
        lexicographically, but the rank is what we rely on)."""
        recover = FailureEvent(1.0, 0, RECOVER)
        crash = FailureEvent(1.0, 0, CRASH)
        assert sorted([recover, crash]) == [crash, recover]
        assert crash.sort_key() < recover.sort_key()

    def test_replica_breaks_time_ties_before_kind(self):
        a = FailureEvent(1.0, 1, CRASH)
        b = FailureEvent(1.0, 0, RECOVER)
        assert sorted([a, b]) == [b, a]

    def test_sort_key_is_total_and_stable(self):
        events = [
            FailureEvent(2.0, 0, CRASH),
            FailureEvent(1.0, 1, RECOVER),
            FailureEvent(1.0, 1, CRASH),
            FailureEvent(1.0, 0, RECOVER),
        ]
        ordered = sorted(events)
        assert [e.sort_key() for e in ordered] == sorted(e.sort_key() for e in events)


class TestCrashWindow:
    def test_pairs_crash_with_recover(self):
        crash, recover = crash_window(2, at_s=1.0, duration_s=0.5)
        assert (crash.kind, recover.kind) == (CRASH, RECOVER)
        assert crash.replica_id == recover.replica_id == 2
        assert recover.time_s == pytest.approx(1.5)

    def test_nonpositive_duration_rejected(self):
        for bad in (0.0, -1.0):
            with pytest.raises(ValueError, match="duration"):
                crash_window(0, 1.0, bad)


class TestPoissonFailures:
    def test_seed_determinism(self):
        a = poisson_failures(4, 100.0, mtbf_s=20.0, mttr_s=2.0, rng=7)
        b = poisson_failures(4, 100.0, mtbf_s=20.0, mttr_s=2.0, rng=7)
        assert a == b

    def test_different_seeds_differ(self):
        a = poisson_failures(4, 100.0, mtbf_s=5.0, mttr_s=1.0, rng=1)
        b = poisson_failures(4, 100.0, mtbf_s=5.0, mttr_s=1.0, rng=2)
        assert a != b

    def test_events_sorted_and_alternating_per_replica(self):
        events = poisson_failures(3, 200.0, mtbf_s=10.0, mttr_s=2.0, rng=3)
        assert list(events) == sorted(events)
        by_replica = {}
        for e in events:
            by_replica.setdefault(e.replica_id, []).append(e.kind)
        for kinds in by_replica.values():
            # Strict alternation starting with a crash; a trailing crash
            # whose repair falls past the horizon has no recover.
            assert kinds[0] == CRASH
            for prev, cur in zip(kinds, kinds[1:]):
                assert prev != cur

    def test_validation_errors(self):
        with pytest.raises(ValueError, match="n_replicas"):
            poisson_failures(0, 1.0, 1.0, 1.0)
        for kwargs in (
            {"horizon_s": 0.0, "mtbf_s": 1.0, "mttr_s": 1.0},
            {"horizon_s": 1.0, "mtbf_s": 0.0, "mttr_s": 1.0},
            {"horizon_s": 1.0, "mtbf_s": 1.0, "mttr_s": -1.0},
        ):
            with pytest.raises(ValueError, match="positive"):
                poisson_failures(1, **kwargs)


class TestCrashAcrossLifecycle:
    """A crash must land cleanly whatever state the replica is in."""

    def make_replica(self, state=ReplicaState.UP):
        r = Replica(0, SumBackend(), max_batch_size=4, max_wait_s=0.004)
        if state == ReplicaState.DOWN:
            r.state = ReplicaState.DOWN
            r.up_since_s = None
        return r

    def test_crash_while_warming_goes_down_and_bills(self):
        r = self.make_replica(ReplicaState.DOWN)
        r.provision(1.0)
        assert r.state == ReplicaState.WARMING
        lost = r.crash(1.5)
        assert lost == []
        assert r.state == ReplicaState.DOWN
        assert r.up_seconds == pytest.approx(0.5)  # warm-up time is paid for
        # The stale warm-up-complete event from the dead epoch is ignored.
        r.mark_up(2.0)
        assert r.state == ReplicaState.DOWN

    def test_crash_while_draining_loses_in_flight_work(self):
        r = self.make_replica()
        batch = InFlightBatch(
            indices=(3, 4), decision=None, start_s=0.01, completion_s=0.05
        )
        r.commit(batch)
        r.start_drain(0.02)
        assert r.state == ReplicaState.DRAINING
        lost = r.crash(0.03)
        assert sorted(lost) == [3, 4]
        assert r.state == ReplicaState.DOWN
        assert r.n_crashes == 1
        # Billed only up to the crash, not to the cancelled completion.
        assert r.up_seconds == pytest.approx(0.03)

    def test_crash_rolls_back_unexecuted_busy_time(self):
        r = self.make_replica()
        batch = InFlightBatch(
            indices=(0,), decision=None, start_s=0.01, completion_s=0.05
        )
        r.commit(batch)
        assert r.busy_s == pytest.approx(0.04)
        r.crash(0.02)
        assert r.busy_s == pytest.approx(0.01)  # only the executed slice

    def test_recover_after_crash_pays_a_fresh_epoch(self):
        r = self.make_replica()
        r.crash(1.0)
        r.provision(2.0)
        gen = r.generation
        r.mark_up(2.5)
        assert r.state == ReplicaState.UP
        assert r.generation == gen
