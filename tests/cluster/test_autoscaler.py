"""Autoscaler unit behaviour (config validation, signals, warm-up probe)."""

import pytest

from repro.cluster import Autoscaler, AutoscalerConfig, Cluster, measured_warmup_s
from repro.serving.arrivals import poisson_arrivals

from conftest import SumBackend, make_images


def config(**overrides):
    base = dict(
        slo_s=0.03,
        interval_s=0.02,
        window_s=0.06,
        scale_up_queue=6,
        scale_down_queue=1,
        min_replicas=1,
        max_replicas=4,
        warmup_s=0.01,
        cooldown_s=0.02,
    )
    base.update(overrides)
    return AutoscalerConfig(**base)


class TestConfigValidation:
    def test_rejects_bad_bounds(self):
        with pytest.raises(ValueError):
            config(slo_s=0.0)
        with pytest.raises(ValueError):
            config(min_replicas=5, max_replicas=4)
        with pytest.raises(ValueError):
            config(min_replicas=0)
        with pytest.raises(ValueError):
            config(scale_down_queue=6, scale_up_queue=6)
        with pytest.raises(ValueError):
            config(warmup_s=-0.1)
        with pytest.raises(ValueError):
            config(interval_s=0.0)

    def test_valid_config_freezes(self):
        cfg = config()
        with pytest.raises(AttributeError):
            cfg.slo_s = 1.0


class TestTickBehaviour:
    def test_respects_max_replicas(self):
        images = make_images(500)
        auto = Autoscaler(config(max_replicas=2), spawn_backend=lambda: SumBackend())
        report = Cluster(
            [SumBackend()], policy="least-outstanding", autoscaler=auto
        ).serve(images, poisson_arrivals(5000.0, 500, rng=0))
        assert report.peak_replicas <= 2

    def test_never_drains_below_min(self):
        images = make_images(200)
        auto = Autoscaler(config(min_replicas=2), spawn_backend=lambda: SumBackend())
        cluster = Cluster(
            [SumBackend(), SumBackend()], policy="least-outstanding", autoscaler=auto
        )
        report = cluster.serve(images, poisson_arrivals(100.0, 200, rng=1))
        assert report.n_replicas_end >= 2
        assert report.scale_downs == 0

    def test_cooldown_limits_action_rate(self):
        images = make_images(400)
        arrivals = poisson_arrivals(5000.0, 400, rng=2)
        patient = Autoscaler(
            config(cooldown_s=10.0), spawn_backend=lambda: SumBackend()
        )
        eager = Autoscaler(config(cooldown_s=0.0), spawn_backend=lambda: SumBackend())
        slow = Cluster(
            [SumBackend()], policy="least-outstanding", autoscaler=patient
        ).serve(images, arrivals)
        fast = Cluster(
            [SumBackend()], policy="least-outstanding", autoscaler=eager
        ).serve(images, arrivals)
        assert slow.scale_ups <= 1  # one action, then the cooldown gags it
        assert fast.scale_ups > slow.scale_ups


class TestLiveness:
    def test_unrecovered_outage_terminates_with_autoscaler_attached(self):
        # All replicas crash with no recovery scheduled: the tick loop
        # must drain (not reschedule forever) and report the stranded
        # requests as unserved.
        from repro.cluster import FailureEvent

        images = make_images(20)
        auto = Autoscaler(config(), spawn_backend=lambda: SumBackend())
        report = Cluster(
            [SumBackend()],
            autoscaler=auto,
            failures=(FailureEvent(0.01, 0, "crash"),),
        ).serve(images, poisson_arrivals(400.0, 20, rng=3))
        assert report.n_unserved > 0
        assert report.availability < 1.0

    def test_scale_down_never_drains_last_up_replica(self):
        # Aggressive drain settings on a quiet trace: one replica may
        # drain, but a second drain while the first is still finishing
        # its queue must not take the only remaining UP replica.
        images = make_images(300)
        auto = Autoscaler(
            config(
                cooldown_s=0.0,
                interval_s=0.005,
                scale_down_queue=50,  # always "relaxed"
                scale_up_queue=51,
                min_replicas=1,
            ),
            spawn_backend=lambda: SumBackend(),
        )
        report = Cluster(
            [SumBackend(per_item_s=0.01), SumBackend(per_item_s=0.01)],
            policy="round-robin",
            autoscaler=auto,
        ).serve(images, poisson_arrivals(50.0, 300, rng=4))
        assert report.n_served == 300
        assert report.n_unserved == 0
        assert report.n_replicas_end >= 1


def test_measured_warmup_is_positive_wall_clock():
    t = measured_warmup_s(lambda: SumBackend(), batch_size=4, sample_shape=(1, 4, 4))
    assert t >= 0.0
    assert t < 5.0  # a toy backend warms up in well under wall-clock seconds
