"""Shared toy backends for the cluster-layer tests (no training needed)."""

import numpy as np
import pytest

from repro.serving.backends import BatchTiming, InferenceBackend
from repro.serving.router import RouteDecision


class SumBackend(InferenceBackend):
    """Deterministic toy model: label = pixel-sum mod 10."""

    name = "sum"

    def __init__(self, per_item_s=0.001, overhead_s=0.001):
        super().__init__(BatchTiming(overhead_s=overhead_s, per_item_s=per_item_s))

    def predict(self, images, decision=None):
        return (images.reshape(images.shape[0], -1).sum(axis=1)).astype(np.int64) % 10


class RoutedSumBackend(SumBackend):
    """Toy dynamic backend: images with mean > 0.5 are 'hard' (4x cost)."""

    name = "routed-sum"

    def __init__(self, per_item_s=0.001):
        super().__init__(per_item_s)
        self.timing = BatchTiming(
            overhead_s=0.001,
            per_item_s=per_item_s,
            gate_s=0.0005,
            per_hard_extra_s=3 * per_item_s,
        )

    def route(self, images):
        means = images.reshape(images.shape[0], -1).mean(axis=1)
        return RouteDecision(easy=means <= 0.5, entropy=means)


def make_images(n, seed=0):
    rng = np.random.default_rng(seed)
    return rng.random((n, 1, 4, 4)).astype(np.float32)


def labels_for(images):
    return (images.reshape(images.shape[0], -1).sum(axis=1)).astype(np.int64) % 10


@pytest.fixture
def images100():
    return make_images(100)
