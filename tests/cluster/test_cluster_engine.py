"""Fleet engine semantics: balancing, shedding, failures, caching, drains."""

import numpy as np
import pytest

from repro.cluster import (
    AdmissionController,
    Cluster,
    FailureEvent,
    crash_window,
    fleet_comparison_table,
)
from repro.serving.arrivals import constant_arrivals, poisson_arrivals

from conftest import RoutedSumBackend, SumBackend, labels_for, make_images


class TestBasics:
    def test_all_requests_served_with_real_predictions(self, images100):
        labels = labels_for(images100)
        report = Cluster([SumBackend(), SumBackend()], policy="round-robin").serve(
            images100, poisson_arrivals(300.0, 100, rng=0), labels=labels
        )
        assert report.n_served == report.n_requests == 100
        assert report.accuracy == 1.0  # predictions really ran
        assert report.n_shed == report.n_unserved == 0
        assert report.availability == 1.0
        assert report.p50_s <= report.p95_s <= report.p99_s <= report.max_s

    def test_heterogeneous_fleet_separates_rr_from_lor(self):
        images = make_images(400)
        arrivals = poisson_arrivals(900.0, 400, rng=1)
        fast_slow = lambda: [SumBackend(0.0005), SumBackend(0.004)]
        rr = Cluster(fast_slow(), policy="round-robin").serve(images, arrivals)
        lor = Cluster(fast_slow(), policy="least-outstanding").serve(images, arrivals)
        assert lor.p99_s < rr.p99_s

    def test_replica_seconds_bill_whole_fleet_to_makespan(self, images100):
        report = Cluster([SumBackend(), SumBackend()], policy="round-robin").serve(
            images100, constant_arrivals(200.0, 100)
        )
        assert report.replica_seconds == pytest.approx(2 * report.duration_s)

    def test_single_use_guard(self, images100):
        cluster = Cluster([SumBackend()])
        cluster.serve(images100, constant_arrivals(200.0, 100))
        with pytest.raises(RuntimeError):
            cluster.serve(images100, constant_arrivals(200.0, 100))

    def test_invalid_inputs_rejected(self, images100):
        cluster = Cluster([SumBackend()])
        with pytest.raises(ValueError):
            cluster.serve(images100, np.zeros(3))  # length mismatch
        with pytest.raises(ValueError):
            Cluster([])
        with pytest.raises(ValueError):
            Cluster([SumBackend()], slo_s=0.0)
        with pytest.raises(ValueError):
            Cluster([SumBackend()], failures=(FailureEvent(0.1, 5, "crash"),))

    def test_report_renders(self, images100):
        report = Cluster([SumBackend()]).serve(
            images100, poisson_arrivals(200.0, 100, rng=2)
        )
        assert "p99" in report.summary()
        text = fleet_comparison_table([report], "fleet title").render()
        assert "fleet title" in text and report.policy in text


class TestAdmission:
    def test_reject_sheds_and_bounds_queue(self):
        images = make_images(300)
        # Far past one replica's capacity: unbounded queueing otherwise.
        arrivals = poisson_arrivals(5000.0, 300, rng=3)
        bounded = Cluster(
            [SumBackend()],
            admission=AdmissionController(max_outstanding=10),
        ).serve(images, arrivals)
        unbounded = Cluster([SumBackend()]).serve(images, arrivals)
        assert bounded.n_shed > 0
        assert bounded.shed_rate == bounded.n_shed / 300
        assert bounded.availability < 1.0
        assert bounded.p99_s < unbounded.p99_s  # shedding protects the tail

    def test_shed_requests_are_marked_not_served(self):
        images = make_images(50)
        report = Cluster(
            [SumBackend(per_item_s=0.01)],
            admission=AdmissionController(max_outstanding=1),
        ).serve(images, np.zeros(50))
        assert report.n_shed > 0
        assert report.n_served + report.n_shed == 50

    def test_degrade_forces_early_exit_path(self):
        rng = np.random.default_rng(4)
        hard = (0.8 + rng.random((200, 1, 4, 4)) * 0.2).astype(np.float32)  # all hard
        arrivals = poisson_arrivals(2000.0, 200, rng=5)
        strict = Cluster([RoutedSumBackend()]).serve(hard, arrivals)
        degrade = Cluster(
            [RoutedSumBackend()],
            admission=AdmissionController(max_outstanding=8, policy="degrade"),
        ).serve(hard, arrivals)
        assert strict.n_served == degrade.n_served == 200  # degrade never rejects
        assert degrade.n_degraded > 0
        # Forced-easy requests skip the 4x hard path: the tail must drop.
        assert degrade.p99_s < strict.p99_s
        easy_served = degrade.n_served - degrade.n_shed
        assert easy_served == 200

    def test_admission_validation(self):
        with pytest.raises(ValueError):
            AdmissionController(max_outstanding=-1)
        with pytest.raises(ValueError):
            AdmissionController(max_outstanding=1, policy="drop-everything")


class TestFailures:
    def test_crash_retries_requests_on_survivors(self):
        images = make_images(300)
        arrivals = poisson_arrivals(600.0, 300, rng=6)
        report = Cluster(
            [SumBackend(), SumBackend()],
            policy="least-outstanding",
            failures=crash_window(1, at_s=0.05, duration_s=10.0),  # never recovers in-trace
        ).serve(images, arrivals, labels=labels_for(images))
        assert report.n_crashes == 1
        assert report.n_retried > 0
        assert report.n_served == 300  # survivor absorbed everything
        assert report.accuracy == 1.0  # retried requests still predicted for real

    def test_crash_of_sole_replica_strands_until_recover(self):
        images = make_images(60)
        arrivals = constant_arrivals(600.0, 60)
        report = Cluster(
            [SumBackend()],
            failures=crash_window(0, at_s=0.02, duration_s=0.05),
        ).serve(images, arrivals, labels=labels_for(images))
        assert report.n_crashes == 1
        assert report.n_served == 60  # stranded requests drained after recovery
        # Everything arriving during the outage completes only after the
        # replica returns: their sojourn covers the outage window.
        assert report.max_s > 0.05

    def test_unrecovered_outage_leaves_requests_unserved(self):
        images = make_images(40)
        report = Cluster(
            [SumBackend()],
            failures=(FailureEvent(0.02, 0, "crash"),),
        ).serve(images, constant_arrivals(400.0, 40))
        assert report.n_unserved > 0
        assert report.availability < 1.0
        assert report.slo_attainment < 1.0

    def test_crash_rolls_back_unexecuted_busy_time(self):
        # A long batch is cancelled mid-service and re-run after recovery:
        # only executed work may count as busy, so utilization stays <= 1.
        images = make_images(8)
        report = Cluster(
            [SumBackend(per_item_s=0.1)],
            failures=crash_window(0, at_s=0.05, duration_s=0.1),
            max_batch_size=8,
            max_wait_s=0.001,
        ).serve(images, np.zeros(8))
        assert report.n_served == 8
        assert 0.0 < report.utilization <= 1.0

    def test_stale_warmup_event_cannot_cut_second_warmup_short(self):
        # crash/recover twice in quick succession: the first recovery's
        # warm-up-complete event must not promote the re-provisioned
        # replica early.  With recover_warmup_s=0.1, the second recovery
        # at t=0.06 makes the replica servable only at t=0.16.
        from repro.cluster import FailureEvent

        images = make_images(8)
        arrivals = np.full(8, 0.1)  # arrive mid-second-warm-up → stranded
        failures = (
            FailureEvent(0.01, 0, "crash"),
            FailureEvent(0.02, 0, "recover"),
            FailureEvent(0.05, 0, "crash"),
            FailureEvent(0.06, 0, "recover"),
        )
        report = Cluster(
            [SumBackend()], failures=failures, recover_warmup_s=0.1
        ).serve(images, arrivals)
        assert report.n_served == 8
        # Requests arrived at t=0.1 and were servable only at t=0.16:
        # every sojourn spans at least the remaining warm-up.  A stale
        # first-recovery event would have served them at t=0.12.
        assert report.p50_s >= 0.06

    def test_lost_batches_never_fill_predictions_twice(self):
        # Crash cancels in-flight work; re-dispatch must produce exactly
        # one final prediction per request.
        images = make_images(100)
        labels = labels_for(images)
        report = Cluster(
            [SumBackend(per_item_s=0.002), SumBackend(per_item_s=0.002)],
            policy="round-robin",
            failures=crash_window(0, at_s=0.03, duration_s=0.1),
        ).serve(images, poisson_arrivals(500.0, 100, rng=7), labels=labels)
        assert report.n_served == 100
        assert report.accuracy == 1.0


class TestClusterCache:
    def test_repeats_hit_after_completion_and_copy_predictions(self):
        base = make_images(4)
        images = np.concatenate([base, base, base])
        labels = labels_for(images)
        arrivals = np.sort(np.concatenate([np.full(4, t) for t in (0.0, 1.0, 2.0)]))
        report = Cluster(
            [SumBackend()], cache_capacity=16, max_batch_size=4, max_wait_s=0.001
        ).serve(images, arrivals, labels=labels)
        assert report.n_cached == 8
        assert report.cache_hit_rate == pytest.approx(8 / 12)
        assert report.accuracy == 1.0

    def test_no_hit_while_source_in_flight(self):
        base = make_images(1)
        images = np.concatenate([base, base])
        report = Cluster(
            [SumBackend()], cache_capacity=16, max_batch_size=1, max_wait_s=0.0
        ).serve(images, np.array([0.0, 1e-5]))
        assert report.n_cached == 0

    def test_crash_cancelled_result_is_not_cached(self):
        # The only copy of the image is dispatched, then its replica
        # crashes before completion; a repeat arriving before the retry
        # completes must MISS (the cancelled completion may not populate
        # the cache).
        base = make_images(1, seed=8)
        images = np.concatenate([base, base])
        # First copy dispatches immediately (batch=1); crash at t=0.001
        # cancels it mid-service (service = 0.002 + 0.01). Retry runs on
        # the recovered replica much later.
        report = Cluster(
            [SumBackend(per_item_s=0.01, overhead_s=0.002)],
            cache_capacity=16,
            max_batch_size=1,
            max_wait_s=0.0,
            failures=crash_window(0, at_s=0.001, duration_s=0.05),
        ).serve(images, np.array([0.0, 0.01]))
        assert report.n_cached == 0
        assert report.n_retried >= 1
        assert report.n_served == 2


class TestAutoscalerIntegration:
    def test_scale_up_under_pressure_and_down_when_idle(self):
        from repro.cluster import Autoscaler, AutoscalerConfig

        images = make_images(600)
        # Front-loaded pressure, then a long quiet tail.
        burst = poisson_arrivals(3000.0, 500, rng=9)
        quiet = burst[-1] + 0.05 + np.arange(100) * 0.01
        arrivals = np.concatenate([burst, quiet])
        auto = Autoscaler(
            AutoscalerConfig(
                slo_s=0.03,
                interval_s=0.02,
                window_s=0.06,
                scale_up_queue=6,
                scale_down_queue=1,
                min_replicas=1,
                max_replicas=4,
                warmup_s=0.01,
                cooldown_s=0.02,
            ),
            spawn_backend=lambda: SumBackend(),
        )
        report = Cluster(
            [SumBackend()], policy="least-outstanding", autoscaler=auto
        ).serve(images, arrivals)
        assert report.scale_ups > 0
        assert report.scale_downs > 0
        assert report.peak_replicas > 1
        assert report.n_served == 600
        # Spawned replicas cost replica-seconds only while provisioned.
        assert report.replica_seconds < report.peak_replicas * report.duration_s

    def test_warmup_delays_new_capacity(self):
        from repro.cluster import Autoscaler, AutoscalerConfig

        def run(warmup_s):
            images = make_images(400)
            arrivals = poisson_arrivals(2500.0, 400, rng=10)
            auto = Autoscaler(
                AutoscalerConfig(
                    slo_s=0.03,
                    interval_s=0.02,
                    window_s=0.06,
                    scale_up_queue=4,
                    scale_down_queue=1,
                    min_replicas=1,
                    max_replicas=4,
                    warmup_s=warmup_s,
                    cooldown_s=0.02,
                ),
                spawn_backend=lambda: SumBackend(),
            )
            return Cluster(
                [SumBackend()], policy="least-outstanding", autoscaler=auto
            ).serve(images, arrivals)

        instant, slow = run(0.0), run(0.3)
        assert instant.p99_s < slow.p99_s  # warm-up lag is visible in the tail


class TestDrainSemantics:
    def test_draining_replica_finishes_queue_then_goes_down(self):
        from repro.cluster import ReplicaState

        images = make_images(40)
        cluster = Cluster(
            [SumBackend(), SumBackend()],
            policy="round-robin",
            max_batch_size=4,
            max_wait_s=0.01,
        )

        # Drain replica 1 mid-trace via a one-shot autoscaler-style hook:
        # easiest deterministic way is to drain before serving starts.
        cluster.drain_replica(cluster.replicas[1], 0.0)
        report = cluster.serve(images, constant_arrivals(400.0, 40))
        assert report.n_served == 40
        assert cluster.replicas[1].state == ReplicaState.DOWN
        # The drained replica received nothing: all batches ran on replica 0.
        assert cluster.replicas[1].n_requests == 0

    def test_cache_hits_race_a_replica_drain(self):
        """Repeats of an image served by a now-draining replica must still
        hit the cluster cache (results outlive the replica that produced
        them), while fresh misses route around the drain."""
        from repro.cluster import Autoscaler, AutoscalerConfig, ReplicaState

        hot = make_images(1, seed=11)
        cold = make_images(8, seed=12)
        # Wave 1: the hot image is served (cached at completion).  A long
        # quiet gap lets the autoscaler drain one replica.  Wave 2: hot
        # repeats (hits) interleaved with cold misses.
        images = np.concatenate([hot, cold[:4], np.concatenate([hot] * 4), cold[4:]])
        arrivals = np.concatenate(
            [np.array([0.0]), np.full(4, 0.001), np.full(4, 2.0), np.full(4, 2.001)]
        )
        auto = Autoscaler(
            AutoscalerConfig(
                slo_s=0.05,
                interval_s=0.05,
                window_s=0.2,
                scale_up_queue=50,
                scale_down_queue=5,
                min_replicas=1,
                max_replicas=2,
                warmup_s=0.01,
                cooldown_s=0.05,
            ),
            spawn_backend=lambda: SumBackend(),
        )
        cluster = Cluster(
            [SumBackend(), SumBackend()],
            policy="least-outstanding",
            autoscaler=auto,
            cache_capacity=16,
            max_batch_size=4,
            max_wait_s=0.001,
        )
        report = cluster.serve(images, arrivals, labels=labels_for(images))
        assert report.scale_downs >= 1  # the quiet gap drained a replica
        assert ReplicaState.DOWN in {r.state for r in cluster.replicas}
        assert report.n_cached == 4  # hot repeats hit despite the drain
        assert report.n_served == len(images)
        assert report.accuracy == 1.0  # cached answers copied real predictions
