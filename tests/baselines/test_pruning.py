"""Unit tests for pruning primitives."""

import numpy as np
import pytest

from repro.baselines.pruning import (
    channel_pruned_lenet,
    magnitude_prune_tensor,
    prune_model_unstructured,
)
from repro.models import LeNet
from repro.nn import Tensor


class TestMagnitudePrune:
    def test_sparsity_achieved(self):
        rng = np.random.default_rng(0)
        w = rng.standard_normal((20, 20))
        out = magnitude_prune_tensor(w, 0.5)
        assert (out == 0).mean() >= 0.5

    def test_keeps_largest(self):
        w = np.array([0.1, -5.0, 0.2, 4.0])
        out = magnitude_prune_tensor(w, 0.5)
        assert out[1] == -5.0 and out[3] == 4.0
        assert out[0] == 0.0 and out[2] == 0.0

    def test_zero_sparsity_is_copy(self):
        w = np.ones((3, 3))
        out = magnitude_prune_tensor(w, 0.0)
        assert np.allclose(out, w)
        out[0, 0] = 9.0
        assert w[0, 0] == 1.0  # original untouched

    def test_invalid_sparsity_raises(self):
        with pytest.raises(ValueError):
            magnitude_prune_tensor(np.ones(4), 1.0)


class TestUnstructuredModelPrune:
    def test_zeroes_weights_not_biases(self):
        model = LeNet(rng=0)
        zeroed = prune_model_unstructured(model, 0.8)
        assert zeroed > 0
        for name, p in model.named_parameters():
            if name.endswith("bias"):
                continue
            assert (p.data == 0).mean() >= 0.5

    def test_model_still_runs(self):
        model = LeNet(rng=0)
        prune_model_unstructured(model, 0.9)
        out = model(Tensor(np.zeros((1, 1, 28, 28), dtype=np.float32)))
        assert np.isfinite(out.data).all()


class TestChannelPrune:
    def test_architecture_shrinks(self):
        model = LeNet(rng=0)
        pruned = channel_pruned_lenet(model, 0.5, rng=np.random.default_rng(1))
        assert pruned.num_parameters() < model.num_parameters()

    def test_forward_works(self):
        model = LeNet(rng=0)
        pruned = channel_pruned_lenet(model, 0.5, rng=np.random.default_rng(1))
        out = pruned(Tensor(np.random.default_rng(0).random((2, 1, 28, 28)).astype(np.float32)))
        assert out.shape == (2, 10)
        assert np.isfinite(out.data).all()

    def test_keep_one_preserves_function(self):
        """keep_fraction=1.0 must reproduce the original network exactly."""
        model = LeNet(rng=0)
        clone = channel_pruned_lenet(model, 1.0, rng=np.random.default_rng(1))
        x = Tensor(np.random.default_rng(2).random((3, 1, 28, 28)).astype(np.float32))
        assert np.allclose(clone(x).data, model(x).data, atol=1e-5)

    def test_latency_decreases_with_pruning(self):
        from repro.hw import raspberry_pi4, lenet_latency

        model = LeNet(rng=0)
        dev = raspberry_pi4()
        lat_full = lenet_latency(model, dev)
        lat_half = lenet_latency(channel_pruned_lenet(model, 0.5), dev)
        assert lat_half < lat_full

    def test_invalid_fraction_raises(self):
        with pytest.raises(ValueError):
            channel_pruned_lenet(LeNet(rng=0), 0.0)
