"""Unit tests for k-means weight quantization."""

import numpy as np
import pytest

from repro.baselines.quantization import kmeans_quantize, quantize_model
from repro.models import LeNet
from repro.nn import Tensor


class TestKmeansQuantize:
    def test_codebook_size_bounded(self):
        rng = np.random.default_rng(0)
        w = rng.standard_normal((50, 50))
        q, codebook = kmeans_quantize(w, bits=4, rng=0)
        assert codebook.size <= 16
        assert set(np.unique(q).tolist()) <= set(codebook.tolist())

    def test_quantized_close_to_original(self):
        rng = np.random.default_rng(1)
        w = rng.standard_normal((100,))
        q, _ = kmeans_quantize(w, bits=8, rng=0)
        assert np.abs(q - w).max() < 0.2

    def test_more_bits_less_error(self):
        rng = np.random.default_rng(2)
        w = rng.standard_normal((500,))
        e = []
        for bits in (2, 4, 8):
            q, _ = kmeans_quantize(w, bits=bits, rng=0)
            e.append(np.abs(q - w).mean())
        assert e[0] > e[1] > e[2]

    def test_constant_weights(self):
        q, codebook = kmeans_quantize(np.full((4, 4), 2.5), bits=3, rng=0)
        assert np.allclose(q, 2.5)
        assert codebook.size == 1

    def test_invalid_bits_raise(self):
        with pytest.raises(ValueError):
            kmeans_quantize(np.ones(4), bits=0)
        with pytest.raises(ValueError):
            kmeans_quantize(np.ones(4), bits=20)


class TestQuantizeModel:
    def test_weight_value_counts_shrink(self):
        model = LeNet(rng=0)
        sizes = quantize_model(model, bits=4, rng=0)
        for name, p in model.named_parameters():
            if name.endswith("bias"):
                continue
            assert np.unique(p.data).size <= 16, name
        assert all(s <= 16 for s in sizes.values())

    def test_model_accuracy_survives_8bit(self, trained_lenet, tiny_mnist):
        import copy

        from repro.core.trainer import evaluate_accuracy

        model = copy.deepcopy(trained_lenet)
        base = evaluate_accuracy(model, tiny_mnist["test"])
        quantize_model(model, bits=8, rng=0)
        quant = evaluate_accuracy(model, tiny_mnist["test"])
        assert quant >= base - 0.05
