"""Unit + integration tests for the AdaDeep and SubFlow baselines."""

import numpy as np
import pytest

from repro.baselines import AdaDeepCompressor, SubFlowExecutor
from repro.core.config import TrainConfig
from repro.core.trainer import evaluate_accuracy
from repro.hw.devices import raspberry_pi4
from repro.hw.latency import lenet_latency
from repro.models import LeNet


class TestSubFlow:
    def test_utilization_one_is_identity(self, trained_lenet, tiny_mnist):
        executor = SubFlowExecutor(trained_lenet, utilization=1.0)
        test = tiny_mnist["test"]
        assert np.array_equal(
            executor.predict(test.images), trained_lenet.predict(test.images)
        )

    def test_latency_decreases_with_utilization(self, trained_lenet):
        dev = raspberry_pi4()
        lats = [
            SubFlowExecutor(trained_lenet, u).latency(dev) for u in (1.0, 0.7, 0.4)
        ]
        assert lats[0] > lats[1] > lats[2]

    def test_full_utilization_latency_matches_lenet(self, trained_lenet):
        dev = raspberry_pi4()
        full = SubFlowExecutor(trained_lenet, 1.0).latency(dev)
        assert full == pytest.approx(lenet_latency(trained_lenet, dev), rel=1e-6)

    def test_accuracy_degrades_gracefully(self, trained_lenet, tiny_mnist):
        test = tiny_mnist["test"]
        base = evaluate_accuracy(trained_lenet, test)
        acc = SubFlowExecutor(trained_lenet, 0.8).accuracy(test.images, test.labels)
        assert acc <= base + 1e-9
        assert acc > 0.3  # degraded, not destroyed

    def test_last_conv_never_masked(self, trained_lenet):
        executor = SubFlowExecutor(trained_lenet, 0.3)
        last_conv_pos = max(executor.masks)
        assert executor.masks[last_conv_pos].active.all()

    def test_invalid_utilization_raises(self, trained_lenet):
        with pytest.raises(ValueError):
            SubFlowExecutor(trained_lenet, 0.0)
        with pytest.raises(ValueError):
            SubFlowExecutor(trained_lenet, 1.5)


class TestAdaDeep:
    @pytest.fixture(scope="class")
    def result(self, trained_lenet, tiny_mnist):
        compressor = AdaDeepCompressor(
            keep_fractions=(0.6, 0.8),
            bit_widths=(8,),
            accuracy_budget=0.05,
            finetune=TrainConfig(epochs=1, batch_size=128, lr=5e-4),
        )
        return compressor.compress(
            trained_lenet, tiny_mnist["train"], tiny_mnist["test"], raspberry_pi4(), rng=0
        )

    def test_returns_faster_model(self, result, trained_lenet):
        dev = raspberry_pi4()
        assert result.latency_s < lenet_latency(trained_lenet, dev)

    def test_accuracy_within_budget_or_best_effort(self, result, trained_lenet, tiny_mnist):
        base = evaluate_accuracy(trained_lenet, tiny_mnist["test"])
        assert result.accuracy > base - 0.15  # generous: tiny data

    def test_chosen_point_from_grid(self, result):
        assert result.keep_fraction in (0.6, 0.8)
        assert result.quant_bits == 8
        assert result.candidates_evaluated == 2

    def test_compressed_model_runs(self, result):
        preds = result.model.predict(
            np.random.default_rng(0).random((4, 1, 28, 28)).astype(np.float32)
        )
        assert preds.shape == (4,)
