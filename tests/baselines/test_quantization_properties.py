"""Property-based tests for the compression primitives."""

import numpy as np
from hypothesis import given, settings, strategies as st
from hypothesis.extra import numpy as hnp

from repro.baselines.pruning import magnitude_prune_tensor
from repro.baselines.quantization import kmeans_quantize

_weights = hnp.arrays(
    np.float64,
    st.integers(4, 200),
    elements=st.floats(min_value=-10, max_value=10, allow_nan=False),
)


@settings(max_examples=25, deadline=None)
@given(_weights, st.integers(1, 8))
def test_quantize_codebook_bound_and_range(w, bits):
    q, codebook = kmeans_quantize(w, bits=bits, rng=0)
    assert codebook.size <= 2**bits
    assert q.shape == w.shape
    # Quantized values never leave the original range.
    assert q.min() >= w.min() - 1e-5
    assert q.max() <= w.max() + 1e-5


@settings(max_examples=25, deadline=None)
@given(_weights, st.integers(1, 8))
def test_quantize_deterministic(w, bits):
    """Same weights + same bit width → identical quantization."""
    q1, c1 = kmeans_quantize(w, bits=bits, rng=0)
    q2, c2 = kmeans_quantize(w, bits=bits, rng=99)  # rng unused by Lloyd init
    assert np.array_equal(q1, q2)
    assert np.array_equal(c1, c2)


@settings(max_examples=25, deadline=None)
@given(_weights, st.floats(min_value=0.0, max_value=0.95))
def test_prune_sparsity_monotone(w, sparsity):
    out = magnitude_prune_tensor(w, sparsity)
    assert out.shape == w.shape
    # Surviving entries are unchanged.
    survivors = out != 0
    assert np.allclose(out[survivors], w[survivors])
    # Zero count at least the requested fraction (ties can exceed it).
    if sparsity > 0:
        assert (out == 0).sum() >= int(sparsity * w.size)


@settings(max_examples=25, deadline=None)
@given(_weights, st.floats(min_value=0.1, max_value=0.4), st.floats(min_value=0.5, max_value=0.9))
def test_prune_more_sparsity_zeroes_more(w, low, high):
    n_low = (magnitude_prune_tensor(w, low) == 0).sum()
    n_high = (magnitude_prune_tensor(w, high) == 0).sum()
    assert n_high >= n_low
