"""Tests for the generalized (future-work §V) CBNet variants."""

import numpy as np
import pytest

from repro.core import TrainConfig
from repro.core.generalized import (
    EncoderOnlyCBNet,
    build_encoder_only_cbnet,
    build_generalized_cbnet,
    classifier_entropy,
    label_by_classifier_entropy,
)
from repro.models import LeNet


class TestClassifierEntropyLabeling:
    def test_entropy_contract(self, trained_lenet, tiny_mnist):
        test = tiny_mnist["test"]
        ent = classifier_entropy(trained_lenet, test.images)
        assert ent.shape == (len(test),)
        assert (ent >= 0).all()
        assert (ent <= np.log(10) + 1e-5).all()

    def test_quantile_gate(self, trained_lenet, tiny_mnist):
        test = tiny_mnist["test"]
        labeling = label_by_classifier_entropy(
            trained_lenet, test.images, easy_quantile=0.7
        )
        assert labeling.easy_fraction == pytest.approx(0.7, abs=0.06)

    def test_explicit_threshold(self, trained_lenet, tiny_mnist):
        test = tiny_mnist["test"]
        labeling = label_by_classifier_entropy(trained_lenet, test.images, threshold=1e9)
        assert labeling.easy_fraction == 1.0

    def test_confident_samples_are_easy(self, trained_lenet, tiny_mnist):
        """Lowest-entropy samples must be labelled easy."""
        test = tiny_mnist["test"]
        labeling = label_by_classifier_entropy(trained_lenet, test.images)
        order = np.argsort(labeling.entropy)
        assert labeling.easy[order[:10]].all()


class TestGeneralizedCBNet:
    @pytest.fixture(scope="class")
    def generalized(self, trained_lenet, trained_pipeline):
        train = trained_pipeline.datasets["train"]
        return build_generalized_cbnet(
            trained_lenet,
            train,
            "mnist",
            keep_layers=3,
            seed=0,
            head_train=TrainConfig(epochs=3, batch_size=128),
            ae_train=TrainConfig(epochs=6, batch_size=128),
        )

    def test_no_branchynet_needed(self, generalized):
        """The whole point: built from a plain LeNet."""
        assert isinstance(generalized.source_model, LeNet)
        assert generalized.keep_layers == 3

    def test_accuracy_competitive(self, generalized, trained_pipeline, trained_lenet):
        test = trained_pipeline.datasets["test"]
        acc = generalized.cbnet.accuracy(test.images, test.labels)
        lenet_acc = (trained_lenet.predict(test.images) == test.labels).mean()
        assert acc > lenet_acc - 0.06

    def test_cheaper_than_source(self, generalized):
        from repro.hw import raspberry_pi4, cbnet_latency, lenet_latency

        device = raspberry_pi4()
        t_cb = cbnet_latency(generalized.cbnet, device).total
        t_lenet = lenet_latency(generalized.source_model, device)
        assert t_cb < t_lenet

    def test_labeling_produced(self, generalized):
        assert 0.0 < generalized.labeling.easy_fraction < 1.0


class TestGeneralizedOnResNet:
    def test_full_recipe_on_miniresnet(self, trained_pipeline):
        """End-to-end §V story: CBNet from a ResNet, no BranchyNet."""
        from repro.core.trainer import fit_classifier
        from repro.models import MiniResNet

        train = trained_pipeline.datasets["train"]
        test = trained_pipeline.datasets["test"]
        resnet = MiniResNet(rng=0)
        fit_classifier(resnet, train, TrainConfig(epochs=3, batch_size=128), rng=0)

        artifacts = build_generalized_cbnet(
            resnet,
            train,
            "mnist",
            keep_layers=3,
            seed=0,
            head_train=TrainConfig(epochs=3, batch_size=128),
            ae_train=TrainConfig(epochs=5, batch_size=128),
        )
        acc = artifacts.cbnet.accuracy(test.images, test.labels)
        assert acc > 0.9

        from repro.hw import cbnet_latency, raspberry_pi4
        from repro.hw.latency import model_latency

        device = raspberry_pi4()
        assert cbnet_latency(artifacts.cbnet, device).total < model_latency(
            resnet, device
        )


class TestEncoderOnly:
    @pytest.fixture(scope="class")
    def encoder_only(self, trained_pipeline):
        train = trained_pipeline.datasets["train"]
        return build_encoder_only_cbnet(
            trained_pipeline.cbnet.autoencoder,
            train,
            seed=0,
            train=TrainConfig(epochs=4, batch_size=128),
        )

    def test_predict_contract(self, encoder_only, trained_pipeline):
        test = trained_pipeline.datasets["test"]
        preds = encoder_only.predict(test.images)
        assert preds.shape == (len(test),)
        assert ((preds >= 0) & (preds < 10)).all()

    def test_accuracy_reasonable(self, encoder_only, trained_pipeline):
        test = trained_pipeline.datasets["test"]
        assert encoder_only.accuracy(test.images, test.labels) > 0.85

    def test_cheaper_than_full_cbnet(self, encoder_only, trained_pipeline):
        """Dropping the decoder must shrink simulated latency."""
        from repro.hw import raspberry_pi4, cbnet_latency
        from repro.hw.latency import model_latency

        device = raspberry_pi4()
        t_enc_only = model_latency(encoder_only, device, in_shape=(784,))
        t_full = cbnet_latency(trained_pipeline.cbnet, device).total
        assert t_enc_only < t_full

    def test_stages_exposed(self, encoder_only):
        names = [n for n, _ in encoder_only.stages()]
        assert names == ["encoder", "code_classifier"]

    def test_donor_autoencoder_untouched(self, trained_pipeline):
        """Building the encoder-only variant must not corrupt the donor AE
        (regression: the head training used to backprop into the shared
        encoder, collapsing full-CBNet accuracy)."""
        import copy

        ae = trained_pipeline.cbnet.autoencoder
        before = {name: p.copy() for name, p in ae.state_dict().items()}
        train = trained_pipeline.datasets["train"]
        build_encoder_only_cbnet(
            ae, train, seed=1, train=TrainConfig(epochs=1, batch_size=256)
        )
        after = ae.state_dict()
        for name in before:
            assert np.array_equal(before[name], after[name]), name
