"""Unit tests for hard→easy target pairing."""

import numpy as np
import pytest

from repro.core.pairing import build_conversion_targets


def setup_data(n=40, num_classes=4, seed=0):
    rng = np.random.default_rng(seed)
    labels = np.repeat(np.arange(num_classes), n // num_classes)
    images = np.zeros((n, 1, 4, 4), dtype=np.float32)
    # Encode (class, index) in pixels so targets are traceable.
    images[:, 0, 0, 0] = labels
    images[:, 0, 0, 1] = np.arange(n)
    return images, labels


class TestConversionTargets:
    def test_targets_are_same_class(self):
        images, labels = setup_data()
        easy = np.random.default_rng(1).random(40) < 0.5
        targets = build_conversion_targets(images, labels, easy, rng=0)
        assert np.array_equal(targets[:, 0, 0, 0], labels)

    def test_targets_are_easy_images(self):
        images, labels = setup_data()
        rng = np.random.default_rng(2)
        easy = rng.random(40) < 0.5
        easy_ids = set(np.flatnonzero(easy).tolist())
        targets = build_conversion_targets(images, labels, easy, rng=0)
        target_ids = targets[:, 0, 0, 1].astype(int)
        assert set(target_ids.tolist()) <= easy_ids

    def test_every_image_gets_target(self):
        """Paper: ALL images (easy and hard) are training inputs."""
        images, labels = setup_data()
        easy = np.ones(40, dtype=bool)
        targets = build_conversion_targets(images, labels, easy, rng=0)
        assert targets.shape == images.shape

    def test_randomness_controlled_by_rng(self):
        images, labels = setup_data()
        easy = np.random.default_rng(3).random(40) < 0.5
        a = build_conversion_targets(images, labels, easy, rng=11)
        b = build_conversion_targets(images, labels, easy, rng=11)
        c = build_conversion_targets(images, labels, easy, rng=12)
        assert np.allclose(a, b)
        assert not np.allclose(a, c)  # overwhelmingly likely

    def test_class_without_easy_falls_back_to_min_entropy(self):
        images, labels = setup_data()
        easy = labels != 2  # class 2 has no easy images
        entropy = np.random.default_rng(4).random(40).astype(np.float32)
        targets = build_conversion_targets(images, labels, easy, rng=0, entropy=entropy)
        cls2 = labels == 2
        expected_idx = np.flatnonzero(cls2)[np.argmin(entropy[cls2])]
        assert np.all(targets[cls2, 0, 0, 1] == expected_idx)

    def test_class_without_easy_no_entropy_uses_first(self):
        images, labels = setup_data()
        easy = labels != 0
        targets = build_conversion_targets(images, labels, easy, rng=0)
        cls0 = labels == 0
        assert np.all(targets[cls0, 0, 0, 1] == 0)

    def test_length_mismatch_raises(self):
        images, labels = setup_data()
        with pytest.raises(ValueError):
            build_conversion_targets(images, labels[:-1], np.ones(40, dtype=bool))
