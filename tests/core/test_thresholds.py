"""Unit tests for entropy-threshold tuning."""

import numpy as np
import pytest

from repro.core.thresholds import (
    PAPER_THRESHOLDS,
    sweep_thresholds,
    tune_threshold,
)
from repro.models import BranchyLeNet


class TestPaperThresholds:
    def test_paper_values(self):
        assert PAPER_THRESHOLDS == {"mnist": 0.05, "fmnist": 0.5, "kmnist": 0.025}


class TestSweep:
    def test_sweep_contract(self):
        model = BranchyLeNet(rng=0)
        rng = np.random.default_rng(0)
        images = rng.random((30, 1, 28, 28)).astype(np.float32)
        labels = rng.integers(0, 10, 30)
        points = sweep_thresholds(model, images, labels, grid=(0.1, 0.5, 2.3))
        assert len(points) == 3
        for p in points:
            assert 0.0 <= p.accuracy <= 1.0
            assert 0.0 <= p.exit_rate <= 1.0

    def test_exit_rate_monotone(self):
        model = BranchyLeNet(rng=0)
        rng = np.random.default_rng(1)
        images = rng.random((50, 1, 28, 28)).astype(np.float32)
        labels = rng.integers(0, 10, 50)
        points = sweep_thresholds(model, images, labels, grid=(0.01, 0.1, 1.0, 2.3))
        rates = [p.exit_rate for p in points]
        assert rates == sorted(rates)

    def test_sweep_consistent_with_infer(self, trained_pipeline):
        branchy = trained_pipeline.branchynet
        test = trained_pipeline.datasets["test"]
        points = sweep_thresholds(branchy, test.images, test.labels, grid=(0.05,))
        res = branchy.infer(test.images, threshold=0.05)
        assert points[0].exit_rate == pytest.approx(res.early_exit_rate, abs=1e-6)
        acc = (res.predictions == test.labels).mean()
        assert points[0].accuracy == pytest.approx(acc, abs=1e-6)


class TestTune:
    def test_tuned_threshold_in_grid(self, trained_pipeline):
        branchy = trained_pipeline.branchynet
        test = trained_pipeline.datasets["test"]
        grid = (0.01, 0.1, 0.5, 2.0)
        chosen = tune_threshold(branchy, test.images, test.labels, grid=grid)
        assert chosen in grid

    def test_tuned_maximizes_exit_within_budget(self, trained_pipeline):
        branchy = trained_pipeline.branchynet
        test = trained_pipeline.datasets["test"]
        grid = (0.01, 0.1, 0.5, 2.0)
        tol = 0.01
        chosen = tune_threshold(
            branchy, test.images, test.labels, grid=grid, accuracy_tolerance=tol
        )
        points = sweep_thresholds(branchy, test.images, test.labels, grid=grid)
        best_acc = max(p.accuracy for p in points)
        chosen_point = next(p for p in points if p.threshold == chosen)
        assert chosen_point.accuracy >= best_acc - tol
        for p in points:
            if p.accuracy >= best_acc - tol:
                assert chosen_point.exit_rate >= p.exit_rate
