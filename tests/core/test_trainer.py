"""Unit tests for the training loops."""

import numpy as np
import pytest

from repro.core import TrainConfig
from repro.core.trainer import evaluate_accuracy, fit_autoencoder, fit_classifier
from repro.data import ArrayDataset
from repro.models import BranchyLeNet, ConvertingAutoencoder, LeNet
from repro.models.autoencoder import AutoencoderSpec


class TestTrainConfig:
    def test_defaults_valid(self):
        config = TrainConfig()
        assert config.epochs > 0

    def test_invalid_values_raise(self):
        with pytest.raises(ValueError):
            TrainConfig(epochs=0)
        with pytest.raises(ValueError):
            TrainConfig(batch_size=-1)
        with pytest.raises(ValueError):
            TrainConfig(lr=0.0)
        with pytest.raises(ValueError):
            TrainConfig(optimizer="rmsprop")

    def test_to_dict_roundtrip_is_jsonable(self):
        import json

        json.dumps(TrainConfig().to_dict())


class TestFitClassifier:
    def test_loss_decreases(self, tiny_mnist):
        model = LeNet(rng=0)
        history = fit_classifier(
            model, tiny_mnist["train"], TrainConfig(epochs=3, batch_size=64), rng=0
        )
        assert len(history.loss) == 3
        assert history.loss[-1] < history.loss[0]

    def test_eval_dataset_tracks_accuracy(self, tiny_mnist):
        model = LeNet(rng=0)
        history = fit_classifier(
            model,
            tiny_mnist["train"],
            TrainConfig(epochs=2, batch_size=64),
            rng=0,
            eval_dataset=tiny_mnist["test"],
        )
        assert len(history.accuracy) == 2
        assert history.final_accuracy > 0.3

    def test_multi_exit_model_supported(self, tiny_mnist):
        model = BranchyLeNet(rng=0)
        history = fit_classifier(
            model, tiny_mnist["train"], TrainConfig(epochs=2, batch_size=64), rng=0
        )
        assert history.loss[-1] < history.loss[0]

    def test_model_left_in_eval_mode(self, tiny_mnist):
        model = LeNet(rng=0)
        fit_classifier(model, tiny_mnist["train"], TrainConfig(epochs=1), rng=0)
        assert not model.training

    def test_sgd_optimizer_path(self, tiny_mnist):
        model = LeNet(rng=0)
        history = fit_classifier(
            model,
            tiny_mnist["train"],
            TrainConfig(epochs=2, optimizer="sgd", lr=0.05, momentum=0.9),
            rng=0,
        )
        assert history.loss[-1] < history.loss[0]

    def test_deterministic_given_seed(self, tiny_mnist):
        h1 = fit_classifier(LeNet(rng=5), tiny_mnist["train"], TrainConfig(epochs=1), rng=5)
        h2 = fit_classifier(LeNet(rng=5), tiny_mnist["train"], TrainConfig(epochs=1), rng=5)
        assert h1.loss == pytest.approx(h2.loss)


class TestEvaluateAccuracy:
    def test_range(self, tiny_mnist):
        acc = evaluate_accuracy(LeNet(rng=0), tiny_mnist["test"])
        assert 0.0 <= acc <= 1.0

    def test_untrained_near_chance(self, tiny_mnist):
        acc = evaluate_accuracy(LeNet(rng=0), tiny_mnist["test"])
        assert acc < 0.5


class TestFitAutoencoder:
    def _spec(self):
        return AutoencoderSpec(
            name="t",
            layer_sizes=(32, 16, 8),
            activations=("relu", "relu", "linear"),
            output_activation="sigmoid",
            input_dim=16,
        )

    def test_loss_decreases(self):
        rng = np.random.default_rng(0)
        model = ConvertingAutoencoder(self._spec(), rng=0)
        x = rng.random((128, 16)).astype(np.float32)
        history = fit_autoencoder(model, x, x, TrainConfig(epochs=15, batch_size=32), rng=0)
        assert history.loss[-1] < history.loss[0]

    def test_shape_mismatch_raises(self):
        model = ConvertingAutoencoder(self._spec(), rng=0)
        with pytest.raises(ValueError):
            fit_autoencoder(model, np.zeros((4, 16)), np.zeros((5, 16)))

    def test_non_flat_raises(self):
        model = ConvertingAutoencoder(self._spec(), rng=0)
        with pytest.raises(ValueError):
            fit_autoencoder(model, np.zeros((4, 4, 4)), np.zeros((4, 4, 4)))

    def test_activity_penalty_contributes(self):
        """With a huge L1 coefficient, the penalty dominates the loss."""
        spec = AutoencoderSpec(
            name="t2",
            layer_sizes=(32, 16, 8),
            activations=("relu", "relu", "linear"),
            output_activation="sigmoid",
            input_dim=16,
            l1_activity=1e3,
        )
        rng = np.random.default_rng(0)
        model = ConvertingAutoencoder(spec, rng=0)
        x = rng.random((64, 16)).astype(np.float32)
        history = fit_autoencoder(model, x, x, TrainConfig(epochs=1, batch_size=32), rng=0)
        assert history.loss[0] > 1.0  # MSE alone would be < 1
