"""Integration tests: the full CBNet pipeline on a small dataset."""

import numpy as np
import pytest

from repro.core import PipelineConfig, TrainConfig, build_cbnet_pipeline
from repro.core.trainer import evaluate_accuracy


class TestPipelineArtifacts:
    def test_artifact_completeness(self, trained_pipeline):
        art = trained_pipeline
        assert art.branchynet is not None
        assert art.cbnet.autoencoder is not None
        assert art.cbnet.classifier is not None
        assert 0.0 < art.labeling.easy_fraction <= 1.0
        assert art.entropy_threshold > 0
        assert len(art.branchy_history.loss) > 0
        assert len(art.autoencoder_history.loss) > 0

    def test_branchynet_accuracy(self, trained_pipeline):
        test = trained_pipeline.datasets["test"]
        res = trained_pipeline.branchynet.infer(test.images)
        assert (res.predictions == test.labels).mean() > 0.9

    def test_cbnet_accuracy_close_to_branchynet(self, trained_pipeline):
        """Paper headline: similar or higher accuracy."""
        test = trained_pipeline.datasets["test"]
        res = trained_pipeline.branchynet.infer(test.images)
        branchy_acc = (res.predictions == test.labels).mean()
        cbnet_acc = trained_pipeline.cbnet.accuracy(test.images, test.labels)
        assert cbnet_acc >= branchy_acc - 0.05

    def test_lightweight_is_independent_copy(self, trained_pipeline):
        art = trained_pipeline
        branch_w = art.branchynet.branch[1].weight.data
        # finetuned lightweight classifier must have drifted from the branch
        lw_w = art.cbnet.classifier.head[1].weight.data if False else None
        # stems exist and are independent objects
        assert art.cbnet.classifier.stem is not art.branchynet.stem

    def test_converted_images_are_valid(self, trained_pipeline):
        test = trained_pipeline.datasets["test"]
        converted = trained_pipeline.cbnet.convert(test.images[:20])
        assert converted.shape == (20, 1, 28, 28)
        assert np.isfinite(converted).all()
        assert converted.min() >= 0.0
        assert converted.max() <= 1.0 + 1e-5

    def test_autoencoder_uses_table1_architecture(self, trained_pipeline):
        spec = trained_pipeline.cbnet.autoencoder.spec
        assert spec.layer_sizes == (784, 384, 32)  # mnist row of Table I

    def test_conversion_moves_hard_images_toward_easy_prototypes(self, trained_pipeline):
        """The converting property: for corrupted (generation-hard) inputs,
        the AE output is closer to the class's easy-image prototype than
        the raw input is."""
        art = trained_pipeline
        train = art.datasets["train"]
        test = art.datasets["test"]
        hard = test.meta["is_hard"]
        if hard.sum() < 5:
            pytest.skip("too few hard test images at this scale")

        # Easy prototypes: per-class mean over the BranchyNet-labelled easy
        # training images (falling back to the class mean if none).
        prototypes = {}
        for cls in range(10):
            rows = train.class_indices(cls)
            easy_rows = rows[art.labeling.easy[rows]]
            pool = easy_rows if easy_rows.size else rows
            prototypes[cls] = train.images[pool].mean(axis=0)

        raw = test.images[hard]
        labels = test.labels[hard]
        converted = art.cbnet.convert(raw)
        proto = np.stack([prototypes[int(c)] for c in labels])
        d_raw = ((raw - proto) ** 2).mean(axis=(1, 2, 3))
        d_conv = ((converted - proto) ** 2).mean(axis=(1, 2, 3))
        assert np.median(d_conv) < np.median(d_raw)


class TestPipelineConfigHandling:
    def test_explicit_threshold_respected(self, tiny_mnist):
        config = PipelineConfig(
            dataset="mnist",
            seed=3,
            n_train=600,
            n_test=200,
            entropy_threshold=0.123,
            classifier_train=TrainConfig(epochs=1),
            autoencoder_train=TrainConfig(epochs=1, batch_size=128),
            finetune_lightweight=False,
            cache=False,
        )
        art = build_cbnet_pipeline(config, datasets=tiny_mnist)
        assert art.entropy_threshold == pytest.approx(0.123)

    def test_paper_threshold_default(self, tiny_mnist):
        config = PipelineConfig(
            dataset="mnist",
            seed=3,
            n_train=600,
            n_test=200,
            classifier_train=TrainConfig(epochs=1),
            autoencoder_train=TrainConfig(epochs=1, batch_size=128),
            finetune_lightweight=False,
            cache=False,
        )
        art = build_cbnet_pipeline(config, datasets=tiny_mnist)
        assert art.entropy_threshold == pytest.approx(0.05)

    def test_custom_ae_spec(self, tiny_mnist):
        from repro.models.autoencoder import AutoencoderSpec

        spec = AutoencoderSpec(
            name="custom",
            layer_sizes=(64, 32, 16),
            activations=("relu", "relu", "linear"),
            output_activation="sigmoid",
        )
        config = PipelineConfig(
            dataset="mnist",
            seed=3,
            n_train=600,
            n_test=200,
            classifier_train=TrainConfig(epochs=1),
            autoencoder_train=TrainConfig(epochs=1, batch_size=128),
            finetune_lightweight=False,
            cache=False,
        )
        art = build_cbnet_pipeline(config, datasets=tiny_mnist, ae_spec=spec)
        assert art.cbnet.autoencoder.spec.layer_sizes == (64, 32, 16)

    def test_pipeline_cache_hit(self, tmp_path, monkeypatch, tiny_mnist):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        config = PipelineConfig(
            dataset="mnist",
            seed=99,
            n_train=600,
            n_test=200,
            classifier_train=TrainConfig(epochs=1),
            autoencoder_train=TrainConfig(epochs=1, batch_size=256),
            finetune_lightweight=False,
            cache=True,
        )
        import time

        t0 = time.perf_counter()
        a = build_cbnet_pipeline(config)
        first = time.perf_counter() - t0
        t0 = time.perf_counter()
        b = build_cbnet_pipeline(config)
        second = time.perf_counter() - t0
        assert second < first / 2
        assert a.entropy_threshold == b.entropy_threshold
