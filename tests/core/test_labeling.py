"""Unit tests for easy/hard labeling."""

import numpy as np
import pytest

from repro.core.labeling import LabelingResult, label_easy_hard
from repro.models import BranchyLeNet


class TestLabelEasyHard:
    def test_contract(self):
        model = BranchyLeNet(rng=0)
        images = np.random.default_rng(0).random((20, 1, 28, 28)).astype(np.float32)
        result = label_easy_hard(model, images, threshold=0.5)
        assert result.easy.shape == (20,)
        assert result.entropy.shape == (20,)
        assert result.threshold == 0.5

    def test_threshold_extremes(self):
        model = BranchyLeNet(rng=0)
        images = np.random.default_rng(0).random((10, 1, 28, 28)).astype(np.float32)
        assert label_easy_hard(model, images, threshold=0.0).easy_fraction == 0.0
        assert label_easy_hard(model, images, threshold=10.0).easy_fraction == 1.0

    def test_default_threshold_from_model(self):
        model = BranchyLeNet(rng=0, entropy_threshold=10.0)
        images = np.random.default_rng(0).random((5, 1, 28, 28)).astype(np.float32)
        assert label_easy_hard(model, images).easy_fraction == 1.0

    def test_indices_partition(self):
        model = BranchyLeNet(rng=0)
        images = np.random.default_rng(1).random((30, 1, 28, 28)).astype(np.float32)
        result = label_easy_hard(model, images, threshold=1.5)
        both = np.concatenate([result.easy_indices(), result.hard_indices()])
        assert sorted(both.tolist()) == list(range(30))

    def test_fractions_sum_to_one(self):
        result = LabelingResult(
            easy=np.array([True, False, True]),
            entropy=np.zeros(3, dtype=np.float32),
            threshold=0.1,
        )
        assert result.easy_fraction + result.hard_fraction == pytest.approx(1.0)

    def test_labels_consistent_with_entropy(self):
        model = BranchyLeNet(rng=0)
        images = np.random.default_rng(2).random((15, 1, 28, 28)).astype(np.float32)
        result = label_easy_hard(model, images, threshold=1.0)
        assert np.array_equal(result.easy, result.entropy < 1.0)
