"""Tests for parallel dataset generation (determinism across worker counts)."""

import numpy as np
import pytest

from repro.data.synth.registry import DATASET_SPECS, generate_split_parallel


class TestParallelGeneration:
    def test_deterministic_across_worker_counts(self):
        spec = DATASET_SPECS["mnist"]
        a = generate_split_parallel(spec, 2500, seed=3, n_workers=1)
        b = generate_split_parallel(spec, 2500, seed=3, n_workers=4)
        assert np.allclose(a.images, b.images)
        assert np.array_equal(a.labels, b.labels)
        assert np.array_equal(a.meta["is_hard"], b.meta["is_hard"])

    def test_small_split_uses_serial_path(self):
        spec = DATASET_SPECS["mnist"]
        ds = generate_split_parallel(spec, 200, seed=0)
        assert len(ds) == 200

    def test_non_multiple_chunking(self):
        spec = DATASET_SPECS["mnist"]
        ds = generate_split_parallel(spec, 2345, seed=1, n_workers=2)
        assert len(ds) == 2345
        assert ds.images.shape == (2345, 1, 28, 28)

    def test_hard_fraction_respected(self):
        spec = DATASET_SPECS["mnist"]
        ds = generate_split_parallel(spec, 3000, seed=2, hard_fraction=0.2, n_workers=4)
        # Per-chunk rounding keeps the global fraction within ~1%.
        assert ds.meta["is_hard"].mean() == pytest.approx(0.2, abs=0.01)

    def test_meta_columns_concatenated(self):
        spec = DATASET_SPECS["fmnist"]
        ds = generate_split_parallel(spec, 2100, seed=4, n_workers=3)
        assert set(ds.meta) == {"is_hard", "severity"}
        assert all(v.shape[0] == 2100 for v in ds.meta.values())
