"""Unit tests for array transforms."""

import numpy as np
import pytest

from repro.data.transforms import (
    clip01,
    flatten,
    from_unit_sum,
    normalize,
    to_unit_sum,
    unflatten,
)


class TestFlattenRoundtrip:
    def test_flatten_shape(self):
        x = np.random.default_rng(0).random((5, 1, 28, 28)).astype(np.float32)
        flat = flatten(x)
        assert flat.shape == (5, 784)
        assert flat.flags["C_CONTIGUOUS"]

    def test_unflatten_inverts(self):
        x = np.random.default_rng(0).random((5, 1, 4, 4)).astype(np.float32)
        assert np.allclose(unflatten(flatten(x), (1, 4, 4)), x)

    def test_unflatten_bad_width_raises(self):
        with pytest.raises(ValueError):
            unflatten(np.zeros((2, 10)), (1, 4, 4))


class TestNormalize:
    def test_standardizes(self):
        x = np.full((2, 1, 2, 2), 5.0, dtype=np.float32)
        out = normalize(x, mean=5.0, std=2.0)
        assert np.allclose(out, 0.0)

    def test_zero_std_raises(self):
        with pytest.raises(ValueError):
            normalize(np.zeros((1, 1, 1, 1)), 0.0, 0.0)


class TestUnitSum:
    def test_to_unit_sum_sums_to_one(self):
        x = np.random.default_rng(1).random((4, 1, 6, 6)).astype(np.float32)
        out = to_unit_sum(x)
        assert np.allclose(out.reshape(4, -1).sum(axis=1), 1.0, atol=1e-5)

    def test_to_unit_sum_handles_all_zero(self):
        out = to_unit_sum(np.zeros((1, 1, 2, 2), dtype=np.float32))
        assert np.all(np.isfinite(out))

    def test_from_unit_sum_peak_is_one(self):
        x = np.random.default_rng(2).random((3, 1, 5, 5)).astype(np.float32) + 0.1
        out = from_unit_sum(to_unit_sum(x))
        assert np.allclose(out.reshape(3, -1).max(axis=1), 1.0, atol=1e-5)

    def test_roundtrip_preserves_structure(self):
        """Unit-sum then peak-rescale keeps relative pixel structure."""
        x = np.random.default_rng(3).random((2, 1, 4, 4)).astype(np.float32) + 0.05
        out = from_unit_sum(to_unit_sum(x))
        flat_x = x.reshape(2, -1)
        flat_o = out.reshape(2, -1)
        ratio = flat_x / flat_o
        # Per-sample the ratio must be a constant (pure rescale).
        assert np.allclose(ratio, ratio[:, :1], rtol=1e-4)


class TestClip:
    def test_clip01(self):
        out = clip01(np.array([[-1.0, 0.5, 2.0]], dtype=np.float32))
        assert np.allclose(out, [[0.0, 0.5, 1.0]])
        assert out.dtype == np.float32
