"""Unit tests for dataset containers."""

import numpy as np
import pytest

from repro.data import ArrayDataset, ConcatDataset, Subset


def make_dataset(n=10, seed=0):
    rng = np.random.default_rng(seed)
    return ArrayDataset(
        rng.random((n, 1, 4, 4), dtype=np.float32),
        rng.integers(0, 3, n),
        meta={"is_hard": rng.random(n) < 0.5},
    )


class TestArrayDataset:
    def test_len_and_getitem(self):
        ds = make_dataset(7)
        assert len(ds) == 7
        image, label = ds[3]
        assert image.shape == (1, 4, 4)
        assert isinstance(label, int)

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            ArrayDataset(np.zeros((3, 4, 4)), np.zeros(3))  # not NCHW
        with pytest.raises(ValueError):
            ArrayDataset(np.zeros((3, 1, 4, 4)), np.zeros(2))  # label mismatch

    def test_meta_length_validation(self):
        with pytest.raises(ValueError):
            ArrayDataset(np.zeros((3, 1, 2, 2)), np.zeros(3), meta={"x": np.zeros(2)})

    def test_select_carries_meta(self):
        ds = make_dataset(10)
        sub = ds.select(np.array([0, 2, 4]))
        assert len(sub) == 3
        assert np.array_equal(sub.meta["is_hard"], ds.meta["is_hard"][[0, 2, 4]])

    def test_with_meta_adds_column(self):
        ds = make_dataset(5)
        ds2 = ds.with_meta(extra=np.arange(5))
        assert "extra" in ds2.meta and "is_hard" in ds2.meta
        assert "extra" not in ds.meta  # original untouched

    def test_class_indices(self):
        ds = make_dataset(30)
        for c in range(3):
            assert np.all(ds.labels[ds.class_indices(c)] == c)

    def test_num_classes(self):
        ds = ArrayDataset(np.zeros((4, 1, 2, 2)), np.array([0, 1, 2, 2]))
        assert ds.num_classes == 3


class TestSubset:
    def test_view_semantics(self):
        ds = make_dataset(10)
        sub = Subset(ds, [1, 3, 5])
        assert len(sub) == 3
        img, label = sub[0]
        assert np.allclose(img, ds[1][0])

    def test_out_of_range_raises(self):
        ds = make_dataset(5)
        with pytest.raises(IndexError):
            Subset(ds, [10])

    def test_images_labels_properties(self):
        ds = make_dataset(10)
        sub = Subset(ds, [0, 9])
        assert sub.images.shape == (2, 1, 4, 4)
        assert sub.labels.shape == (2,)


class TestConcatDataset:
    def test_concat_indexing_crosses_parts(self):
        a, b = make_dataset(4, seed=1), make_dataset(6, seed=2)
        cat = ConcatDataset([a, b])
        assert len(cat) == 10
        assert np.allclose(cat[4][0], b[0][0])
        assert np.allclose(cat[3][0], a[3][0])

    def test_negative_index(self):
        a, b = make_dataset(4, seed=1), make_dataset(6, seed=2)
        cat = ConcatDataset([a, b])
        assert np.allclose(cat[-1][0], b[5][0])

    def test_empty_parts_raise(self):
        with pytest.raises(ValueError):
            ConcatDataset([])

    def test_concatenated_arrays(self):
        a, b = make_dataset(4, seed=1), make_dataset(6, seed=2)
        cat = ConcatDataset([a, b])
        assert cat.images.shape == (10, 1, 4, 4)
        assert cat.labels.shape == (10,)
