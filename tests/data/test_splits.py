"""Unit tests for train/test splitting and stratified subsets."""

import numpy as np
import pytest

from repro.data import ArrayDataset, stratified_subset, train_test_split


def make_dataset(n=100, num_classes=4, hard_frac=0.3, seed=0):
    rng = np.random.default_rng(seed)
    labels = np.repeat(np.arange(num_classes), n // num_classes)
    is_hard = rng.random(n) < hard_frac
    return ArrayDataset(
        rng.random((n, 1, 2, 2), dtype=np.float32), labels, meta={"is_hard": is_hard}
    )


class TestTrainTestSplit:
    def test_sizes(self):
        train, test = train_test_split(make_dataset(100), test_fraction=0.2, rng=0)
        assert len(train) + len(test) == 100
        assert len(test) == pytest.approx(20, abs=2)

    def test_stratified_class_balance(self):
        _, test = train_test_split(make_dataset(100), test_fraction=0.2, rng=0)
        counts = np.bincount(test.labels, minlength=4)
        assert counts.min() >= 4  # every class represented

    def test_disjoint(self):
        ds = make_dataset(40)
        # tag each sample by a unique pixel value so overlap is detectable
        ds._images[:, 0, 0, 0] = np.arange(40)
        train, test = train_test_split(ds, 0.25, rng=1)
        train_ids = set(train.images[:, 0, 0, 0].astype(int))
        test_ids = set(test.images[:, 0, 0, 0].astype(int))
        assert not train_ids & test_ids
        assert len(train_ids | test_ids) == 40

    def test_invalid_fraction_raises(self):
        with pytest.raises(ValueError):
            train_test_split(make_dataset(), 0.0)


class TestStratifiedSubset:
    def test_fraction_size(self):
        sub = stratified_subset(make_dataset(100), 0.5, rng=0)
        assert len(sub) == pytest.approx(50, abs=4)

    def test_class_proportions_preserved(self):
        sub = stratified_subset(make_dataset(200, num_classes=4), 0.3, rng=0)
        counts = np.bincount(sub.labels, minlength=4)
        assert counts.max() - counts.min() <= 2

    def test_hard_proportion_preserved_with_by(self):
        """The Figs 6-8 protocol: hard fraction stays ~constant."""
        ds = make_dataset(400, hard_frac=0.3, seed=3)
        base = ds.meta["is_hard"].mean()
        sub = stratified_subset(ds, 0.25, rng=0, by="is_hard")
        assert sub.meta["is_hard"].mean() == pytest.approx(base, abs=0.05)

    def test_missing_meta_raises(self):
        with pytest.raises(KeyError):
            stratified_subset(make_dataset(), 0.5, rng=0, by="nonexistent")

    def test_deterministic(self):
        ds = make_dataset(100)
        a = stratified_subset(ds, 0.4, rng=7)
        b = stratified_subset(ds, 0.4, rng=7)
        assert np.allclose(a.images, b.images)
