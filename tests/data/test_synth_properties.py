"""Property-based tests (hypothesis) for the dataset substrate."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.data.synth.corruption import CORRUPTIONS, corrupt_batch
from repro.data.synth.digits import render_digits
from repro.data.synth.registry import DATASET_SPECS, generate_split
from repro.parallel.batcher import chunk_slices, even_split
from repro.utils.rng import derive_seed, stratified_indices


@settings(max_examples=15, deadline=None)
@given(
    st.sampled_from(sorted(CORRUPTIONS)),
    st.floats(min_value=0.0, max_value=1.0),
    st.integers(1, 8),
    st.integers(0, 2**31 - 1),
)
def test_corruptions_preserve_range_and_shape(op_name, severity, n, seed):
    rng = np.random.default_rng(seed)
    images = render_digits(rng.integers(0, 10, n), rng)
    out = CORRUPTIONS[op_name](images.copy(), rng, severity)
    assert out.shape == images.shape
    assert out.min() >= -1e-6
    assert out.max() <= 1.0 + 1e-6


@settings(max_examples=10, deadline=None)
@given(st.integers(10, 60), st.floats(min_value=0.0, max_value=0.9), st.integers(0, 10**6))
def test_generate_split_hard_count_exact(n, hard_fraction, seed):
    ds = generate_split(DATASET_SPECS["mnist"], n, seed=seed, hard_fraction=hard_fraction)
    assert ds.meta["is_hard"].sum() == round(hard_fraction * n)
    assert len(ds) == n
    assert ds.images.min() >= 0.0 and ds.images.max() <= 1.0


@settings(max_examples=20, deadline=None)
@given(st.integers(0, 2**31 - 1), st.integers(1, 20))
def test_corrupt_batch_never_escapes_unit_interval(seed, n):
    rng = np.random.default_rng(seed)
    images = rng.random((n, 28, 28)).astype(np.float32)
    out = corrupt_batch(images, rng)
    assert out.min() >= 0.0 and out.max() <= 1.0


@settings(max_examples=25, deadline=None)
@given(st.integers(0, 500), st.integers(1, 40))
def test_chunk_slices_partition(n, chunk):
    slices = chunk_slices(n, chunk)
    covered = [i for s in slices for i in range(s.start, s.stop)]
    assert covered == list(range(n))


@settings(max_examples=25, deadline=None)
@given(st.integers(0, 500), st.integers(1, 40))
def test_even_split_partition_and_balance(n, k):
    slices = even_split(n, k)
    covered = [i for s in slices for i in range(s.start, s.stop)]
    assert covered == list(range(n))
    if slices:
        sizes = [s.stop - s.start for s in slices]
        assert max(sizes) - min(sizes) <= 1


@settings(max_examples=15, deadline=None)
@given(
    st.integers(2, 6),
    st.integers(5, 30),
    st.floats(min_value=0.2, max_value=1.0),
    st.integers(0, 2**31 - 1),
)
def test_stratified_indices_proportions(num_classes, per_class, fraction, seed):
    labels = np.repeat(np.arange(num_classes), per_class)
    idx = stratified_indices(labels, fraction, np.random.default_rng(seed))
    counts = np.bincount(labels[idx], minlength=num_classes)
    assert counts.max() - counts.min() <= 1
    assert len(set(idx.tolist())) == len(idx)  # no duplicates


@settings(max_examples=25, deadline=None)
@given(st.integers(0, 2**31 - 1), st.text(max_size=12), st.text(max_size=12))
def test_derive_seed_deterministic_and_sensitive(seed, a, b):
    assert derive_seed(seed, a) == derive_seed(seed, a)
    if a != b:
        # Not guaranteed distinct, but a collision across draws would be
        # astronomically unlikely for a 32-bit-entropy mix; check anyway
        # only that the function does not ignore its inputs entirely.
        pass
