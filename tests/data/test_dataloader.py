"""Unit tests for the DataLoader."""

import numpy as np
import pytest

from repro.data import ArrayDataset, DataLoader


def make_dataset(n=20):
    return ArrayDataset(
        np.arange(n, dtype=np.float32).reshape(n, 1, 1, 1),
        np.arange(n) % 3,
    )


class TestBatching:
    def test_batch_shapes(self):
        loader = DataLoader(make_dataset(20), batch_size=8)
        batches = list(loader)
        assert [b[0].shape[0] for b in batches] == [8, 8, 4]

    def test_drop_last(self):
        loader = DataLoader(make_dataset(20), batch_size=8, drop_last=True)
        assert len(loader) == 2
        assert all(b[0].shape[0] == 8 for b in loader)

    def test_len_matches_iteration(self):
        for n, bs in [(20, 8), (16, 16), (5, 10)]:
            loader = DataLoader(make_dataset(n), batch_size=bs)
            assert len(list(loader)) == len(loader)

    def test_invalid_batch_size(self):
        with pytest.raises(ValueError):
            DataLoader(make_dataset(), batch_size=0)


class TestShuffling:
    def test_no_shuffle_preserves_order(self):
        loader = DataLoader(make_dataset(10), batch_size=10, shuffle=False)
        images, _ = next(iter(loader))
        assert np.allclose(images.ravel(), np.arange(10))

    def test_shuffle_deterministic_given_seed(self):
        a = [b[0].ravel() for b in DataLoader(make_dataset(20), 20, shuffle=True, rng=5)]
        b = [b[0].ravel() for b in DataLoader(make_dataset(20), 20, shuffle=True, rng=5)]
        assert np.allclose(a[0], b[0])

    def test_shuffle_changes_epochs(self):
        loader = DataLoader(make_dataset(50), batch_size=50, shuffle=True, rng=0)
        first = next(iter(loader))[0].ravel().copy()
        second = next(iter(loader))[0].ravel().copy()
        assert not np.allclose(first, second)

    def test_shuffle_is_a_permutation(self):
        loader = DataLoader(make_dataset(30), batch_size=7, shuffle=True, rng=1)
        seen = np.concatenate([b[0].ravel() for b in loader])
        assert sorted(seen.tolist()) == list(range(30))

    def test_labels_track_images(self):
        ds = make_dataset(30)
        loader = DataLoader(ds, batch_size=4, shuffle=True, rng=2)
        for images, labels in loader:
            expected = images.ravel().astype(np.int64) % 3
            assert np.array_equal(labels, expected)
