"""Unit tests for the synthetic dataset generators."""

import numpy as np
import pytest

from repro.data.synth import DATASET_SPECS, corrupt_batch, generate_split, load_dataset
from repro.data.synth.corruption import CORRUPTIONS
from repro.data.synth.digits import digit_template, render_digits
from repro.data.synth.fashion import render_fashion
from repro.data.synth.kuzushiji import kuzushiji_template, render_kuzushiji
from repro.data.synth import render


class TestRenderPrimitives:
    def test_pixel_grid_in_unit_square(self):
        grid = render.pixel_grid(28)
        assert grid.shape == (784, 2)
        assert grid.min() > 0 and grid.max() < 1

    def test_raster_polylines_range_and_shape(self):
        rng = np.random.default_rng(0)
        poly = np.broadcast_to(
            np.array([[0.2, 0.2], [0.8, 0.8]], dtype=np.float32), (5, 2, 2)
        ).copy()
        imgs = render.raster_polylines([poly], 0.04)
        assert imgs.shape == (5, 28, 28)
        assert imgs.min() >= 0 and imgs.max() <= 1
        assert imgs.max() > 0.9  # the stroke is visible

    def test_raster_polyline_batch_mismatch_raises(self):
        a = np.zeros((3, 2, 2), dtype=np.float32)
        b = np.zeros((4, 2, 2), dtype=np.float32)
        with pytest.raises(ValueError):
            render.raster_polylines([a, b], 0.04)

    def test_fill_polygons_square(self):
        square = np.array([[[0.25, 0.25], [0.75, 0.25], [0.75, 0.75], [0.25, 0.75]]])
        mask = render.fill_polygons(square.astype(np.float32), side=28)
        frac = mask.mean()
        assert 0.2 < frac < 0.3  # ~25% of the canvas

    def test_fill_ellipses_circle_area(self):
        params = np.array([[0.5, 0.5, 0.25, 0.25, 0.0]], dtype=np.float32)
        mask = render.fill_ellipses(params, side=56)
        assert mask.mean() == pytest.approx(np.pi * 0.25**2, rel=0.1)

    def test_affine_identity(self):
        points = np.random.default_rng(0).random((2, 5, 2)).astype(np.float32)
        eye = np.zeros((2, 2, 3), dtype=np.float32)
        eye[:, 0, 0] = eye[:, 1, 1] = 1.0
        assert np.allclose(render.apply_affine(points, eye), points, atol=1e-6)

    def test_random_affine_near_identity_at_zero_magnitudes(self):
        rng = np.random.default_rng(0)
        mats = render.random_affine(rng, 3, 0.0, (1.0, 1.0), 0.0, 0.0)
        points = rng.random((3, 4, 2)).astype(np.float32)
        assert np.allclose(render.apply_affine(points, mats), points, atol=1e-5)

    def test_sample_arc_endpoints(self):
        arc = render.sample_arc((0.5, 0.5), 0.2, 0.2, 0.0, 90.0, n=10)
        assert np.allclose(arc[0], [0.7, 0.5], atol=1e-5)
        assert np.allclose(arc[-1], [0.5, 0.7], atol=1e-5)


class TestGlyphRenderers:
    @pytest.mark.parametrize("renderer", [render_digits, render_fashion, render_kuzushiji])
    def test_renderer_output_contract(self, renderer):
        rng = np.random.default_rng(0)
        labels = np.arange(10)
        imgs = renderer(labels, rng)
        assert imgs.shape == (10, 28, 28)
        assert imgs.dtype == np.float32
        assert imgs.min() >= 0.0 and imgs.max() <= 1.0
        assert (imgs.reshape(10, -1).max(axis=1) > 0.5).all()  # every glyph visible

    def test_digit_templates_all_defined(self):
        for d in range(10):
            strokes = digit_template(d)
            assert strokes and all(s.shape[-1] == 2 for s in strokes)
        with pytest.raises(ValueError):
            digit_template(10)

    def test_kuzushiji_templates_stable(self):
        a = kuzushiji_template(3)
        b = kuzushiji_template(3)
        assert np.allclose(a, b)
        assert not np.allclose(kuzushiji_template(3), kuzushiji_template(4))

    def test_same_class_renders_differ(self):
        """Per-sample jitter must make two samples of a class distinct."""
        rng = np.random.default_rng(0)
        imgs = render_digits(np.array([7, 7]), rng)
        assert not np.allclose(imgs[0], imgs[1])

    def test_jitter_zero_is_prototypical(self):
        rng = np.random.default_rng(0)
        imgs = render_digits(np.array([1, 1]), rng, jitter=0.0)
        # Thickness still varies, so allow small differences.
        assert np.abs(imgs[0] - imgs[1]).mean() < 0.05


class TestCorruptions:
    def test_all_ops_preserve_contract(self):
        rng = np.random.default_rng(0)
        imgs = render_digits(np.arange(10), rng)
        for name, op in CORRUPTIONS.items():
            out = op(imgs.copy(), rng, severity=0.8)
            assert out.shape == imgs.shape, name
            assert out.min() >= -1e-6 and out.max() <= 1.0 + 1e-6, name

    def test_corrupt_batch_changes_images(self):
        rng = np.random.default_rng(0)
        imgs = render_digits(np.arange(10), rng)
        out = corrupt_batch(imgs, rng)
        assert not np.allclose(out, imgs)

    def test_corrupt_batch_empty_ok(self):
        rng = np.random.default_rng(0)
        out = corrupt_batch(np.zeros((0, 28, 28), dtype=np.float32), rng)
        assert out.shape == (0, 28, 28)

    def test_unknown_op_raises(self):
        rng = np.random.default_rng(0)
        with pytest.raises(KeyError):
            corrupt_batch(np.zeros((2, 28, 28), dtype=np.float32), rng, op_names=["nope"])

    def test_blur_reduces_gradient_energy(self):
        rng = np.random.default_rng(0)
        imgs = render_digits(np.arange(10), rng)
        from repro.data.synth.corruption import gaussian_blur

        blurred = gaussian_blur(imgs, rng, 1.0)
        grad = lambda x: np.abs(np.diff(x, axis=-1)).mean()
        assert grad(blurred) < grad(imgs)


class TestGenerateSplit:
    def test_hard_fraction_exact(self):
        spec = DATASET_SPECS["mnist"]
        ds = generate_split(spec, 200, seed=0)
        assert ds.meta["is_hard"].sum() == round(0.05 * 200)

    def test_hard_fraction_override(self):
        spec = DATASET_SPECS["mnist"]
        ds = generate_split(spec, 100, seed=0, hard_fraction=0.5)
        assert ds.meta["is_hard"].sum() == 50

    def test_labels_balanced(self):
        ds = generate_split(DATASET_SPECS["fmnist"], 200, seed=0)
        counts = np.bincount(ds.labels, minlength=10)
        assert counts.min() == counts.max() == 20

    def test_deterministic_given_seed(self):
        spec = DATASET_SPECS["kmnist"]
        a = generate_split(spec, 50, seed=42)
        b = generate_split(spec, 50, seed=42)
        assert np.allclose(a.images, b.images)
        assert np.array_equal(a.labels, b.labels)

    def test_different_seeds_differ(self):
        spec = DATASET_SPECS["mnist"]
        a = generate_split(spec, 50, seed=1)
        b = generate_split(spec, 50, seed=2)
        assert not np.allclose(a.images, b.images)

    def test_invalid_sizes_raise(self):
        with pytest.raises(ValueError):
            generate_split(DATASET_SPECS["mnist"], 0, seed=0)
        with pytest.raises(ValueError):
            generate_split(DATASET_SPECS["mnist"], 10, seed=0, hard_fraction=1.0)


class TestLoadDataset:
    def test_returns_train_and_test(self):
        data = load_dataset("mnist", n_train=60, n_test=30, seed=0, cache=False)
        assert set(data) == {"train", "test"}
        assert len(data["train"]) == 60
        assert len(data["test"]) == 30

    def test_train_test_disjoint_streams(self):
        data = load_dataset("mnist", n_train=50, n_test=50, seed=0, cache=False)
        assert not np.allclose(data["train"].images[:10], data["test"].images[:10])

    def test_unknown_name_raises(self):
        with pytest.raises(KeyError):
            load_dataset("imagenet")

    def test_cache_roundtrip(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        a = load_dataset("mnist", n_train=40, n_test=20, seed=9, cache=True)
        b = load_dataset("mnist", n_train=40, n_test=20, seed=9, cache=True)
        assert np.allclose(a["train"].images, b["train"].images)
