"""Unit tests for nn.functional (conv, pooling, softmax, losses, entropy)."""

import numpy as np
import pytest

from repro.nn import Tensor, gradcheck
from repro.nn import functional as F


class TestConv2d:
    def test_identity_kernel(self):
        x = Tensor(np.random.default_rng(0).standard_normal((1, 1, 5, 5)).astype(np.float32))
        w = np.zeros((1, 1, 3, 3), dtype=np.float32)
        w[0, 0, 1, 1] = 1.0
        out = F.conv2d(x, Tensor(w), padding=1)
        assert np.allclose(out.data, x.data, atol=1e-6)

    def test_output_shape_stride_padding(self):
        x = Tensor(np.zeros((2, 3, 28, 28), dtype=np.float32))
        w = Tensor(np.zeros((8, 3, 5, 5), dtype=np.float32))
        assert F.conv2d(x, w).shape == (2, 8, 24, 24)
        assert F.conv2d(x, w, padding=2).shape == (2, 8, 28, 28)
        assert F.conv2d(x, w, stride=2).shape == (2, 8, 12, 12)

    def test_matches_naive_convolution(self):
        rng = np.random.default_rng(1)
        x = rng.standard_normal((1, 2, 6, 6)).astype(np.float32)
        w = rng.standard_normal((3, 2, 3, 3)).astype(np.float32)
        b = rng.standard_normal(3).astype(np.float32)
        out = F.conv2d(Tensor(x), Tensor(w), Tensor(b)).data
        # Naive 7-loop cross-correlation as ground truth.
        expected = np.zeros((1, 3, 4, 4), dtype=np.float64)
        for f in range(3):
            for i in range(4):
                for j in range(4):
                    expected[0, f, i, j] = (
                        (x[0, :, i : i + 3, j : j + 3] * w[f]).sum() + b[f]
                    )
        assert np.allclose(out, expected, atol=1e-4)

    def test_channel_mismatch_raises(self):
        with pytest.raises(ValueError):
            F.conv2d(Tensor(np.zeros((1, 2, 8, 8))), Tensor(np.zeros((1, 3, 3, 3))))

    def test_kernel_too_large_raises(self):
        with pytest.raises(ValueError):
            F.conv2d(Tensor(np.zeros((1, 1, 4, 4))), Tensor(np.zeros((1, 1, 7, 7))))

    def test_bad_stride_raises(self):
        with pytest.raises(ValueError):
            F.conv2d(Tensor(np.zeros((1, 1, 8, 8))), Tensor(np.zeros((1, 1, 3, 3))), stride=0)

    def test_non_nchw_raises(self):
        with pytest.raises(ValueError):
            F.conv2d(Tensor(np.zeros((8, 8))), Tensor(np.zeros((1, 1, 3, 3))))

    def test_gradcheck_full(self):
        rng = np.random.default_rng(2)
        x = rng.standard_normal((2, 2, 6, 6))
        w = rng.standard_normal((3, 2, 3, 3)) * 0.5
        b = rng.standard_normal(3)
        assert gradcheck(
            lambda xx, ww, bb: (F.conv2d(xx, ww, bb, stride=2, padding=1) ** 2).sum(),
            x,
            w,
            b,
        )


class TestPooling:
    def test_max_pool_values(self):
        x = np.arange(16, dtype=np.float32).reshape(1, 1, 4, 4)
        out = F.max_pool2d(Tensor(x), 2).data
        assert np.allclose(out[0, 0], [[5, 7], [13, 15]])

    def test_max_pool_overlapping_stride(self):
        x = np.arange(25, dtype=np.float32).reshape(1, 1, 5, 5)
        out = F.max_pool2d(Tensor(x), 3, stride=2).data
        assert out.shape == (1, 1, 2, 2)
        assert out[0, 0, 0, 0] == 12

    def test_max_pool_backward_routes_to_argmax(self):
        x = Tensor(np.arange(16, dtype=np.float32).reshape(1, 1, 4, 4), requires_grad=True)
        F.max_pool2d(x, 2).sum().backward()
        grad = x.grad[0, 0]
        assert grad.sum() == pytest.approx(4.0)
        assert grad[1, 1] == 1.0 and grad[3, 3] == 1.0
        assert grad[0, 0] == 0.0

    def test_avg_pool_values(self):
        x = np.ones((1, 2, 4, 4), dtype=np.float32)
        out = F.avg_pool2d(Tensor(x), 2).data
        assert np.allclose(out, 1.0)

    def test_pool_kernel_exceeds_input_raises(self):
        with pytest.raises(ValueError):
            F.max_pool2d(Tensor(np.zeros((1, 1, 2, 2))), 3)


class TestSoftmaxAndLosses:
    def test_softmax_rows_sum_to_one(self):
        logits = Tensor(np.random.default_rng(0).standard_normal((5, 10)).astype(np.float32))
        probs = F.softmax(logits, axis=1).data
        assert np.allclose(probs.sum(axis=1), 1.0, atol=1e-6)
        assert (probs >= 0).all()

    def test_softmax_stability_large_logits(self):
        logits = Tensor(np.array([[1000.0, 1000.0]], dtype=np.float32))
        probs = F.softmax(logits).data
        assert np.allclose(probs, 0.5)

    def test_log_softmax_matches_log_of_softmax(self):
        x = np.random.default_rng(1).standard_normal((3, 7))
        a = F.log_softmax(Tensor(x)).data
        b = np.log(F.softmax(Tensor(x)).data)
        assert np.allclose(a, b, atol=1e-6)

    def test_cross_entropy_perfect_prediction_near_zero(self):
        logits = np.full((2, 3), -50.0, dtype=np.float32)
        logits[0, 1] = 50.0
        logits[1, 2] = 50.0
        loss = F.cross_entropy(Tensor(logits), np.array([1, 2]))
        assert float(loss.data) < 1e-6

    def test_cross_entropy_uniform_is_log_k(self):
        logits = Tensor(np.zeros((4, 10), dtype=np.float32))
        loss = F.cross_entropy(logits, np.array([0, 1, 2, 3]))
        assert float(loss.data) == pytest.approx(np.log(10), abs=1e-5)

    def test_cross_entropy_label_out_of_range_raises(self):
        with pytest.raises(ValueError):
            F.cross_entropy(Tensor(np.zeros((2, 3))), np.array([0, 3]))

    def test_cross_entropy_batch_mismatch_raises(self):
        with pytest.raises(ValueError):
            F.cross_entropy(Tensor(np.zeros((2, 3))), np.array([0]))

    def test_cross_entropy_gradcheck(self):
        rng = np.random.default_rng(3)
        assert gradcheck(
            lambda l: F.cross_entropy(l, np.array([0, 4, 9])),
            rng.standard_normal((3, 10)),
        )

    def test_mse_loss_zero_for_identical(self):
        x = Tensor(np.ones((3, 4)))
        assert float(F.mse_loss(x, Tensor(np.ones((3, 4)))).data) == 0.0

    def test_mse_loss_value(self):
        pred = Tensor(np.zeros((1, 4)), requires_grad=True)
        target = Tensor(np.full((1, 4), 2.0))
        loss = F.mse_loss(pred, target)
        assert float(loss.data) == pytest.approx(4.0)
        loss.backward()
        assert np.allclose(pred.grad, -1.0)  # d/dp mean((p-t)^2) = 2(p-t)/n

    def test_linear_matches_manual(self):
        rng = np.random.default_rng(4)
        x = rng.standard_normal((3, 5)).astype(np.float32)
        w = rng.standard_normal((2, 5)).astype(np.float32)
        b = rng.standard_normal(2).astype(np.float32)
        out = F.linear(Tensor(x), Tensor(w), Tensor(b)).data
        assert np.allclose(out, x @ w.T + b, atol=1e-5)


class TestOneHotAndEntropy:
    def test_one_hot_shape_and_values(self):
        out = F.one_hot(np.array([0, 2, 1]), 3)
        assert out.shape == (3, 3)
        assert np.allclose(out, np.eye(3)[[0, 2, 1]])

    def test_one_hot_out_of_range_raises(self):
        with pytest.raises(ValueError):
            F.one_hot(np.array([3]), 3)

    def test_entropy_uniform_is_log_k(self):
        p = np.full((2, 10), 0.1)
        assert np.allclose(F.entropy(p), np.log(10), atol=1e-6)

    def test_entropy_onehot_is_zero(self):
        p = np.eye(4)
        assert np.allclose(F.entropy(p), 0.0, atol=1e-9)

    def test_normalized_entropy_in_unit_interval(self):
        rng = np.random.default_rng(5)
        logits = rng.standard_normal((20, 10))
        p = np.exp(logits) / np.exp(logits).sum(axis=1, keepdims=True)
        ne = F.normalized_entropy(p)
        assert (ne >= 0).all() and (ne <= 1.0 + 1e-9).all()


class TestCol2ImDirectScatter:
    """The padding-aware _col2im scatters straight into the unpadded
    gradient; these pin its clipping arithmetic on awkward geometries."""

    def test_gradcheck_padding_exceeds_kernel_reach(self):
        rng = np.random.default_rng(11)
        x = rng.standard_normal((1, 1, 5, 5)) * 0.5
        w = rng.standard_normal((2, 1, 3, 3)) * 0.5
        assert gradcheck(
            lambda xx, ww: (F.conv2d(xx, ww, stride=3, padding=2) ** 2).sum(), x, w
        )

    def test_gradcheck_wide_padding_stride_mix(self):
        rng = np.random.default_rng(12)
        x = rng.standard_normal((2, 2, 4, 6)) * 0.5
        w = rng.standard_normal((3, 2, 3, 3)) * 0.5
        assert gradcheck(
            lambda xx, ww: (F.conv2d(xx, ww, stride=2, padding=2) ** 2).sum(), x, w
        )

    def test_input_grad_matches_seed_formulation(self):
        """dx computed by direct scatter == scatter-into-padded-then-slice."""
        rng = np.random.default_rng(13)
        x = Tensor(rng.standard_normal((2, 3, 6, 6)).astype(np.float32), requires_grad=True)
        w = Tensor(rng.standard_normal((4, 3, 3, 3)).astype(np.float32), requires_grad=True)
        out = F.conv2d(x, w, padding=1, stride=2)
        out.sum().backward()
        # seed formulation: pad input explicitly, no padding arg
        x2 = Tensor(np.pad(x.data, ((0, 0), (0, 0), (1, 1), (1, 1))), requires_grad=True)
        w2 = Tensor(w.data.copy(), requires_grad=True)
        F.conv2d(x2, w2, padding=0, stride=2).sum().backward()
        np.testing.assert_allclose(x.grad, x2.grad[:, :, 1:-1, 1:-1], atol=1e-5)
        np.testing.assert_allclose(w.grad, w2.grad, atol=1e-5)
