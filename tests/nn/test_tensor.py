"""Unit tests for the autograd Tensor."""

import numpy as np
import pytest

from repro.nn import Tensor, as_tensor, no_grad, enable_grad, grad_enabled


class TestConstruction:
    def test_python_list_becomes_float32(self):
        t = Tensor([1.0, 2.0, 3.0])
        assert t.dtype == np.float32
        assert t.shape == (3,)

    def test_ndarray_dtype_preserved(self):
        t = Tensor(np.arange(4, dtype=np.float64))
        assert t.dtype == np.float64

    def test_explicit_dtype_respected(self):
        t = Tensor([1, 2], dtype=np.float64)
        assert t.dtype == np.float64

    def test_wrapping_tensor_raises(self):
        with pytest.raises(TypeError):
            Tensor(Tensor([1.0]))

    def test_repr_mentions_shape_and_grad(self):
        t = Tensor(np.zeros((2, 3)), requires_grad=True, name="w")
        assert "shape=(2, 3)" in repr(t)
        assert "requires_grad=True" in repr(t)
        assert "w" in repr(t)

    def test_item_on_scalar(self):
        assert Tensor(np.float32(2.5)).item() == pytest.approx(2.5)

    def test_item_on_vector_raises(self):
        with pytest.raises(ValueError):
            Tensor([1.0, 2.0]).item()


class TestArithmetic:
    def test_add_broadcast_backward(self):
        a = Tensor(np.ones((3, 4)), requires_grad=True)
        b = Tensor(np.ones(4), requires_grad=True)
        (a + b).sum().backward()
        assert np.allclose(a.grad, np.ones((3, 4)))
        assert np.allclose(b.grad, 3 * np.ones(4))  # broadcast axis summed

    def test_scalar_radd_rsub_rmul(self):
        a = Tensor(np.full((2, 2), 2.0), requires_grad=True)
        out = (1.0 + a) * 3.0 - (4.0 - a)
        assert np.allclose(out.data, 9.0 - 2.0)

    def test_mul_backward_product_rule(self):
        a = Tensor(np.array([2.0, 3.0]), requires_grad=True)
        b = Tensor(np.array([5.0, 7.0]), requires_grad=True)
        (a * b).sum().backward()
        assert np.allclose(a.grad, [5.0, 7.0])
        assert np.allclose(b.grad, [2.0, 3.0])

    def test_div_backward(self):
        a = Tensor(np.array([6.0]), requires_grad=True)
        b = Tensor(np.array([3.0]), requires_grad=True)
        (a / b).backward(np.array([1.0]))
        assert a.grad == pytest.approx(1 / 3)
        assert b.grad == pytest.approx(-6 / 9)

    def test_pow_backward(self):
        a = Tensor(np.array([3.0]), requires_grad=True)
        (a**2).backward(np.array([1.0]))
        assert a.grad == pytest.approx(6.0)

    def test_pow_non_scalar_exponent_raises(self):
        with pytest.raises(TypeError):
            Tensor([1.0]) ** Tensor([2.0])

    def test_matmul_shapes_and_backward(self):
        a = Tensor(np.ones((2, 3)), requires_grad=True)
        b = Tensor(np.ones((3, 4)), requires_grad=True)
        out = a @ b
        assert out.shape == (2, 4)
        out.sum().backward()
        assert a.grad.shape == (2, 3)
        assert b.grad.shape == (3, 4)
        assert np.allclose(a.grad, 4.0)
        assert np.allclose(b.grad, 2.0)

    def test_getitem_backward_scatters(self):
        a = Tensor(np.arange(6, dtype=np.float32).reshape(2, 3), requires_grad=True)
        a[0].sum().backward()
        assert np.allclose(a.grad, [[1, 1, 1], [0, 0, 0]])

    def test_neg(self):
        a = Tensor(np.array([1.0, -2.0]), requires_grad=True)
        (-a).sum().backward()
        assert np.allclose(a.grad, [-1.0, -1.0])


class TestReductionsAndShapes:
    def test_sum_axis_keepdims(self):
        a = Tensor(np.ones((2, 3, 4)), requires_grad=True)
        out = a.sum(axis=(0, 2), keepdims=True)
        assert out.shape == (1, 3, 1)
        out.sum().backward()
        assert np.allclose(a.grad, 1.0)

    def test_mean_gradient_scaled(self):
        a = Tensor(np.zeros((4, 5)), requires_grad=True)
        a.mean().backward()
        assert np.allclose(a.grad, 1.0 / 20)

    def test_max_gradient_splits_ties(self):
        a = Tensor(np.array([[1.0, 1.0, 0.0]]), requires_grad=True)
        a.max(axis=1).sum().backward()
        assert np.allclose(a.grad, [[0.5, 0.5, 0.0]])

    def test_reshape_roundtrip(self):
        a = Tensor(np.arange(6, dtype=np.float32), requires_grad=True)
        a.reshape(2, 3).sum().backward()
        assert a.grad.shape == (6,)

    def test_transpose_backward(self):
        a = Tensor(np.ones((2, 3)), requires_grad=True)
        out = a.transpose()
        assert out.shape == (3, 2)
        out.sum().backward()
        assert a.grad.shape == (2, 3)

    def test_pad2d_shape_and_negative_raises(self):
        a = Tensor(np.ones((1, 1, 4, 4)))
        assert a.pad2d(2).shape == (1, 1, 8, 8)
        with pytest.raises(ValueError):
            a.pad2d(-1)

    def test_flatten_batch(self):
        a = Tensor(np.ones((5, 2, 3)))
        assert a.flatten_batch().shape == (5, 6)

    def test_clip_gradient_masked(self):
        a = Tensor(np.array([-2.0, 0.5, 2.0]), requires_grad=True)
        a.clip(-1.0, 1.0).sum().backward()
        assert np.allclose(a.grad, [0.0, 1.0, 0.0])


class TestBackwardMechanics:
    def test_backward_on_nonscalar_without_grad_raises(self):
        a = Tensor(np.ones(3), requires_grad=True)
        with pytest.raises(RuntimeError):
            (a * 2).backward()

    def test_backward_without_requires_grad_raises(self):
        with pytest.raises(RuntimeError):
            Tensor(np.ones(3)).backward(np.ones(3))

    def test_grad_accumulates_over_reuse(self):
        a = Tensor(np.ones(2), requires_grad=True)
        (a + a).sum().backward()
        assert np.allclose(a.grad, 2.0)

    def test_diamond_graph(self):
        a = Tensor(np.array([2.0]), requires_grad=True)
        b = a * 3
        c = a * 4
        (b + c).backward(np.array([1.0]))
        assert a.grad == pytest.approx(7.0)

    def test_detach_cuts_graph(self):
        a = Tensor(np.ones(2), requires_grad=True)
        d = a.detach()
        assert not d.requires_grad
        out = (d * 2).sum()
        assert not out.requires_grad

    def test_zero_grad(self):
        a = Tensor(np.ones(2), requires_grad=True)
        (a * 2).sum().backward()
        a.zero_grad()
        assert a.grad is None

    def test_deep_chain_no_recursion_error(self):
        a = Tensor(np.ones(1), requires_grad=True)
        out = a
        for _ in range(3000):
            out = out + 1.0
        out.sum().backward()
        assert a.grad == pytest.approx(1.0)


class TestGradMode:
    def test_no_grad_suppresses_graph(self):
        a = Tensor(np.ones(2), requires_grad=True)
        with no_grad():
            out = a * 2
        assert not out.requires_grad

    def test_enable_grad_inside_no_grad(self):
        assert grad_enabled()
        with no_grad():
            assert not grad_enabled()
            with enable_grad():
                assert grad_enabled()
            assert not grad_enabled()
        assert grad_enabled()

    def test_as_tensor_passthrough(self):
        t = Tensor([1.0])
        assert as_tensor(t) is t
        assert isinstance(as_tensor([1.0, 2.0]), Tensor)


class TestGradientAliasing:
    """Regression: _accumulate must never adopt a shared upstream gradient.

    An add node forwards the *same* ``g`` array to both parents; taking
    ownership of it aliased both parents' ``.grad`` buffers, so a later
    in-place accumulation into one silently corrupted the other.
    """

    def test_add_parents_do_not_alias(self):
        x = Tensor(np.ones(3, dtype=np.float32), requires_grad=True)
        y = Tensor(np.ones(3, dtype=np.float32), requires_grad=True)
        z = x + y
        (z.sum() + (x * 3.0).sum()).backward()
        assert np.allclose(x.grad, 4.0)
        assert np.allclose(y.grad, 1.0)  # was corrupted to 4.0 by aliasing
        assert x.grad is not y.grad

    def test_sub_parent_does_not_alias(self):
        x = Tensor(np.ones(2, dtype=np.float32), requires_grad=True)
        y = Tensor(np.ones(2, dtype=np.float32), requires_grad=True)
        z = x - y
        (z.sum() + (x * 2.0).sum() + (y * 5.0).sum()).backward()
        assert np.allclose(x.grad, 3.0)
        assert np.allclose(y.grad, 4.0)

    def test_diamond_reuse_in_place_accumulation(self):
        a = Tensor(np.arange(4, dtype=np.float32), requires_grad=True)
        b = a + a  # both parent slots are the same tensor
        (b * b).sum().backward()
        assert np.allclose(a.grad, 8.0 * np.arange(4))
