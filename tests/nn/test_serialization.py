"""Unit tests for model checkpointing."""

import numpy as np
import pytest

from repro.models import LeNet
from repro.nn import Tensor, load_into, load_state, save_model, save_state


class TestStateIO:
    def test_roundtrip_with_meta(self, tmp_path):
        state = {"a": np.arange(6, dtype=np.float32).reshape(2, 3)}
        path = save_state(state, tmp_path / "ckpt.npz", meta={"epoch": 3, "name": "x"})
        loaded, meta = load_state(path)
        assert np.allclose(loaded["a"], state["a"])
        assert meta == {"epoch": 3, "name": "x"}

    def test_roundtrip_without_meta(self, tmp_path):
        path = save_state({"w": np.ones(4)}, tmp_path / "c.npz")
        loaded, meta = load_state(path)
        assert meta == {}
        assert np.allclose(loaded["w"], 1.0)

    def test_suffix_normalization(self, tmp_path):
        path = save_state({"w": np.ones(1)}, tmp_path / "noext")
        assert path.suffix == ".npz"
        assert path.exists()


class TestModelIO:
    def test_lenet_roundtrip_identical_outputs(self, tmp_path):
        model = LeNet(rng=0)
        path = save_model(model, tmp_path / "lenet.npz", meta={"seed": 0})
        fresh = LeNet(rng=99)  # different init
        meta = load_into(fresh, path)
        assert meta == {"seed": 0}
        x = np.random.default_rng(1).random((2, 1, 28, 28)).astype(np.float32)
        a = model(Tensor(x)).data
        b = fresh(Tensor(x)).data
        assert np.allclose(a, b, atol=1e-6)

    def test_load_into_strict_mismatch(self, tmp_path):
        model = LeNet(rng=0)
        path = save_model(model, tmp_path / "lenet.npz")
        from repro.models import BranchyLeNet

        with pytest.raises(KeyError):
            load_into(BranchyLeNet(rng=0), path)
