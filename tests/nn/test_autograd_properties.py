"""Property-based tests (hypothesis) for autograd correctness.

Strategy: generate random shapes/values, compare analytic gradients with
central differences, and check algebraic invariants that must hold for
any input (linearity of the gradient operator, broadcasting consistency,
softmax simplex membership).
"""

import numpy as np
from hypothesis import given, settings, strategies as st
from hypothesis.extra import numpy as hnp

from repro.nn import Tensor, gradcheck
from repro.nn import functional as F

# Bounded, kink-free floats: keeps finite differences meaningful.
_floats = st.floats(min_value=-3.0, max_value=3.0, allow_nan=False, allow_infinity=False)


def _arrays(shape_strategy):
    return shape_strategy.flatmap(
        lambda shape: hnp.arrays(np.float64, shape, elements=_floats)
    )


matrix_shapes = st.tuples(st.integers(1, 4), st.integers(1, 4))


@settings(max_examples=25, deadline=None)
@given(_arrays(matrix_shapes))
def test_sum_gradient_is_ones(x):
    t = Tensor(x, requires_grad=True, dtype=np.float64)
    t.sum().backward()
    assert np.allclose(t.grad, np.ones_like(x))


@settings(max_examples=25, deadline=None)
@given(_arrays(matrix_shapes))
def test_tanh_gradcheck(x):
    assert gradcheck(lambda a: a.tanh().sum(), x)


@settings(max_examples=25, deadline=None)
@given(_arrays(matrix_shapes))
def test_sigmoid_gradcheck(x):
    assert gradcheck(lambda a: a.sigmoid().sum(), x)


@settings(max_examples=25, deadline=None)
@given(_arrays(matrix_shapes), _arrays(matrix_shapes))
def test_addition_commutes(x, y):
    if x.shape != y.shape:
        return
    a = Tensor(x, dtype=np.float64)
    b = Tensor(y, dtype=np.float64)
    assert np.allclose((a + b).data, (b + a).data)


@settings(max_examples=25, deadline=None)
@given(
    st.integers(1, 3),
    st.integers(1, 4),
    st.integers(1, 4),
    st.data(),
)
def test_matmul_gradcheck(n, k, m, data):
    x = data.draw(hnp.arrays(np.float64, (n, k), elements=_floats))
    y = data.draw(hnp.arrays(np.float64, (k, m), elements=_floats))
    assert gradcheck(lambda a, b: (a @ b).sum(), x, y)


@settings(max_examples=25, deadline=None)
@given(_arrays(matrix_shapes))
def test_softmax_lives_on_simplex(x):
    probs = F.softmax(Tensor(x, dtype=np.float64), axis=-1).data
    assert np.all(probs >= 0)
    assert np.allclose(probs.sum(axis=-1), 1.0, atol=1e-9)


@settings(max_examples=25, deadline=None)
@given(_arrays(matrix_shapes), st.floats(min_value=0.1, max_value=5.0))
def test_gradient_linearity_in_upstream(x, scale):
    """d(c*f)/dx == c * df/dx — backward must be linear in its seed."""
    t1 = Tensor(x, requires_grad=True, dtype=np.float64)
    (t1.tanh().sum() * scale).backward()
    t2 = Tensor(x, requires_grad=True, dtype=np.float64)
    t2.tanh().sum().backward()
    assert np.allclose(t1.grad, scale * t2.grad, rtol=1e-6, atol=1e-9)


@settings(max_examples=20, deadline=None)
@given(
    st.integers(2, 5),
    st.integers(2, 5),
    st.data(),
)
def test_broadcast_add_gradient_shapes(rows, cols, data):
    x = data.draw(hnp.arrays(np.float64, (rows, cols), elements=_floats))
    y = data.draw(hnp.arrays(np.float64, (cols,), elements=_floats))
    a = Tensor(x, requires_grad=True, dtype=np.float64)
    b = Tensor(y, requires_grad=True, dtype=np.float64)
    (a + b).sum().backward()
    assert a.grad.shape == x.shape
    assert b.grad.shape == y.shape
    assert np.allclose(b.grad, rows)


@settings(max_examples=20, deadline=None)
@given(st.integers(1, 3), st.integers(1, 2), st.integers(4, 7), st.data())
def test_conv2d_gradcheck_random_shapes(n, c, hw, data):
    x = data.draw(hnp.arrays(np.float64, (n, c, hw, hw), elements=_floats))
    w = data.draw(hnp.arrays(np.float64, (2, c, 3, 3), elements=_floats))
    assert gradcheck(lambda a, b: (F.conv2d(a, b, padding=1) ** 2).sum(), x, w)


@settings(max_examples=20, deadline=None)
@given(st.integers(1, 4), st.integers(2, 10), st.data())
def test_cross_entropy_nonnegative_and_grad_sums_zero(n, k, data):
    logits = data.draw(hnp.arrays(np.float64, (n, k), elements=_floats))
    labels = data.draw(
        hnp.arrays(np.int64, (n,), elements=st.integers(min_value=0, max_value=k - 1))
    )
    t = Tensor(logits, requires_grad=True, dtype=np.float64)
    loss = F.cross_entropy(t, labels)
    assert float(loss.data) >= 0.0
    loss.backward()
    # softmax-minus-onehot gradients sum to zero along classes.
    assert np.allclose(t.grad.sum(axis=1), 0.0, atol=1e-9)
