"""Unit tests for the Module system (registration, state dicts, modes)."""

import numpy as np
import pytest

from repro.nn import Module, Parameter, Sequential, ModuleList, Tensor
from repro.nn.layers import Linear, ReLU


class Leaf(Module):
    def __init__(self):
        super().__init__()
        self.w = Parameter(np.ones((2, 2)))

    def forward(self, x):
        return x @ self.w


class Branchy(Module):
    def __init__(self):
        super().__init__()
        self.a = Leaf()
        self.b = Sequential(Leaf(), ReLU())

    def forward(self, x):
        return self.b(self.a(x))


class TestRegistration:
    def test_named_parameters_dotted_paths(self):
        model = Branchy()
        names = sorted(name for name, _ in model.named_parameters())
        assert names == ["a.w", "b.0.w"]

    def test_modules_iteration(self):
        model = Branchy()
        kinds = [type(m).__name__ for m in model.modules()]
        assert kinds.count("Leaf") == 2
        assert "Sequential" in kinds

    def test_num_parameters(self):
        assert Branchy().num_parameters() == 8

    def test_children(self):
        model = Branchy()
        assert len(list(model.children())) == 2

    def test_forward_not_implemented(self):
        with pytest.raises(NotImplementedError):
            Module()(1)


class TestModes:
    def test_train_eval_recursive(self):
        model = Branchy()
        model.eval()
        assert all(not m.training for m in model.modules())
        model.train()
        assert all(m.training for m in model.modules())

    def test_zero_grad_clears_all(self):
        model = Branchy()
        out = model(Tensor(np.ones((1, 2)), requires_grad=False))
        out.sum().backward()
        assert any(p.grad is not None for p in model.parameters())
        model.zero_grad()
        assert all(p.grad is None for p in model.parameters())


class TestStateDict:
    def test_roundtrip(self):
        m1, m2 = Branchy(), Branchy()
        for p in m1.parameters():
            p.data = p.data * 3.0
        m2.load_state_dict(m1.state_dict())
        for (n1, p1), (n2, p2) in zip(m1.named_parameters(), m2.named_parameters()):
            assert n1 == n2
            assert np.allclose(p1.data, p2.data)

    def test_state_dict_is_a_copy(self):
        model = Branchy()
        state = model.state_dict()
        state["a.w"][:] = 99.0
        assert not np.allclose(model.a.w.data, 99.0)

    def test_strict_mismatch_raises(self):
        model = Branchy()
        with pytest.raises(KeyError):
            model.load_state_dict({"nonexistent": np.ones(2)})

    def test_non_strict_ignores_unexpected(self):
        model = Branchy()
        model.load_state_dict({"bogus": np.ones(1), **model.state_dict()}, strict=False)

    def test_shape_mismatch_raises(self):
        model = Branchy()
        state = model.state_dict()
        state["a.w"] = np.ones((3, 3))
        with pytest.raises(ValueError):
            model.load_state_dict(state)


class TestSequential:
    def test_order_and_len(self):
        rng = np.random.default_rng(0)
        seq = Sequential(Linear(4, 8, rng=rng), ReLU(), Linear(8, 2, rng=rng))
        assert len(seq) == 3
        out = seq(Tensor(np.zeros((1, 4), dtype=np.float32)))
        assert out.shape == (1, 2)

    def test_slicing_returns_sequential(self):
        rng = np.random.default_rng(0)
        seq = Sequential(Linear(4, 8, rng=rng), ReLU(), Linear(8, 2, rng=rng))
        head = seq[:2]
        assert isinstance(head, Sequential)
        assert len(head) == 2
        out = head(Tensor(np.zeros((1, 4), dtype=np.float32)))
        assert out.shape == (1, 8)

    def test_indexing(self):
        rng = np.random.default_rng(0)
        layer = Linear(4, 8, rng=rng)
        seq = Sequential(layer, ReLU())
        assert seq[0] is layer

    def test_append(self):
        seq = Sequential()
        seq.append(ReLU())
        assert len(seq) == 1

    def test_slice_shares_parameters(self):
        """Truncation (paper §III-B) must share weights, not copy them."""
        rng = np.random.default_rng(0)
        seq = Sequential(Linear(4, 8, rng=rng), ReLU())
        head = seq[:1]
        assert head[0] is seq[0]


class TestModuleList:
    def test_append_and_iterate(self):
        ml = ModuleList([ReLU()])
        ml.append(ReLU())
        assert len(ml) == 2
        assert all(isinstance(m, ReLU) for m in ml)

    def test_forward_raises(self):
        with pytest.raises(RuntimeError):
            ModuleList([ReLU()])(1)

    def test_parameters_visible_through_list(self):
        ml = ModuleList([Linear(2, 2, rng=np.random.default_rng(0))])
        assert sum(1 for _ in ml.parameters()) == 2
