"""Unit tests for layer modules."""

import numpy as np
import pytest

from repro.nn import Tensor, Sequential
from repro.nn.layers import (
    ActivityRegularizer,
    AvgPool2d,
    Conv2d,
    Dropout,
    Flatten,
    Linear,
    MaxPool2d,
    ReLU,
    Reshape,
    Scale,
    Sigmoid,
    Softmax,
    Tanh,
)
from repro.nn.layers.activation import Identity, LeakyReLU, activation_by_name


class TestLinear:
    def test_shapes_and_determinism(self):
        l1 = Linear(8, 4, rng=np.random.default_rng(0))
        l2 = Linear(8, 4, rng=np.random.default_rng(0))
        assert np.allclose(l1.weight.data, l2.weight.data)
        out = l1(Tensor(np.zeros((3, 8), dtype=np.float32)))
        assert out.shape == (3, 4)

    def test_bias_disabled(self):
        layer = Linear(4, 2, bias=False, rng=np.random.default_rng(0))
        assert layer.bias is None
        assert sum(1 for _ in layer.parameters()) == 1

    def test_wrong_input_width_raises(self):
        with pytest.raises(ValueError):
            Linear(4, 2, rng=np.random.default_rng(0))(Tensor(np.zeros((1, 5))))

    def test_invalid_sizes_raise(self):
        with pytest.raises(ValueError):
            Linear(0, 3)
        with pytest.raises(ValueError):
            Linear(3, -1)


class TestConv2dLayer:
    def test_forward_shape(self):
        conv = Conv2d(3, 8, kernel_size=3, padding=1, rng=np.random.default_rng(0))
        out = conv(Tensor(np.zeros((2, 3, 12, 12), dtype=np.float32)))
        assert out.shape == (2, 8, 12, 12)

    def test_output_spatial_helper(self):
        conv = Conv2d(1, 1, kernel_size=5, stride=2, padding=2, rng=np.random.default_rng(0))
        assert conv.output_spatial(28, 28) == (14, 14)

    def test_invalid_channels_raise(self):
        with pytest.raises(ValueError):
            Conv2d(0, 4, 3)

    def test_parameters_registered(self):
        conv = Conv2d(2, 4, 3, rng=np.random.default_rng(0))
        names = dict(conv.named_parameters())
        assert set(names) == {"weight", "bias"}


class TestActivations:
    def test_relu_clips_negatives(self):
        out = ReLU()(Tensor(np.array([-1.0, 2.0])))
        assert np.allclose(out.data, [0.0, 2.0])

    def test_leaky_relu_slope(self):
        out = LeakyReLU(0.1)(Tensor(np.array([-10.0, 10.0])))
        assert np.allclose(out.data, [-1.0, 10.0])

    def test_sigmoid_range(self):
        out = Sigmoid()(Tensor(np.array([-100.0, 0.0, 100.0])))
        assert np.allclose(out.data, [0.0, 0.5, 1.0], atol=1e-6)

    def test_tanh_odd(self):
        x = np.array([-2.0, 0.0, 2.0])
        out = Tanh()(Tensor(x)).data
        assert np.allclose(out, np.tanh(x), atol=1e-6)

    def test_softmax_layer_axis(self):
        out = Softmax(axis=0)(Tensor(np.zeros((4, 2), dtype=np.float32))).data
        assert np.allclose(out.sum(axis=0), 1.0)

    def test_identity_passthrough(self):
        x = Tensor(np.arange(3, dtype=np.float32))
        assert Identity()(x) is x

    def test_activation_by_name(self):
        assert isinstance(activation_by_name("relu"), ReLU)
        assert isinstance(activation_by_name("linear"), Identity)
        assert isinstance(activation_by_name("Softmax"), Softmax)
        with pytest.raises(KeyError):
            activation_by_name("gelu9000")


class TestShapeLayers:
    def test_flatten(self):
        out = Flatten()(Tensor(np.zeros((4, 2, 3, 3))))
        assert out.shape == (4, 18)

    def test_reshape_valid_and_invalid(self):
        out = Reshape(2, 9)(Tensor(np.zeros((4, 18))))
        assert out.shape == (4, 2, 9)
        with pytest.raises(ValueError):
            Reshape(5, 5)(Tensor(np.zeros((4, 18))))

    def test_scale(self):
        out = Scale(784)(Tensor(np.full((1, 4), 1.0 / 784, dtype=np.float32)))
        assert np.allclose(out.data, 1.0, atol=1e-5)
        with pytest.raises(ValueError):
            Scale(0)


class TestDropout:
    def test_eval_mode_is_identity(self):
        layer = Dropout(0.5, rng=np.random.default_rng(0))
        layer.eval()
        x = Tensor(np.ones((10, 10)))
        assert np.allclose(layer(x).data, 1.0)

    def test_train_mode_scales_survivors(self):
        layer = Dropout(0.5, rng=np.random.default_rng(0))
        out = layer(Tensor(np.ones((1000,)))).data
        # Survivors are scaled by 1/keep; mean stays ~1.
        assert out.mean() == pytest.approx(1.0, abs=0.12)
        assert set(np.round(np.unique(out), 6)) <= {0.0, 2.0}

    def test_invalid_p_raises(self):
        with pytest.raises(ValueError):
            Dropout(1.0)


class TestActivityRegularizer:
    def test_l1_penalty_recorded_in_training(self):
        reg = ActivityRegularizer(l1=0.1)
        reg.train()
        x = Tensor(np.array([[1.0, -2.0]]), requires_grad=True)
        out = reg(x)
        assert out is x
        penalty = reg.pop_penalty()
        assert penalty is not None
        assert float(penalty.data) == pytest.approx(0.3)
        assert reg.pop_penalty() is None  # popped exactly once

    def test_no_penalty_in_eval(self):
        reg = ActivityRegularizer(l1=0.1)
        reg.eval()
        reg(Tensor(np.ones((1, 2))))
        assert reg.pop_penalty() is None

    def test_l2_penalty(self):
        reg = ActivityRegularizer(l2=0.5)
        reg.train()
        reg(Tensor(np.array([[2.0]])))
        assert float(reg.pop_penalty().data) == pytest.approx(2.0)

    def test_negative_coefficient_raises(self):
        with pytest.raises(ValueError):
            ActivityRegularizer(l1=-1.0)


class TestPoolingLayers:
    def test_maxpool_default_stride(self):
        layer = MaxPool2d(2)
        assert layer.stride == 2
        out = layer(Tensor(np.zeros((1, 1, 8, 8))))
        assert out.shape == (1, 1, 4, 4)

    def test_avgpool(self):
        out = AvgPool2d(2)(Tensor(np.ones((1, 1, 4, 4))))
        assert np.allclose(out.data, 1.0)

    def test_invalid_kernel_raises(self):
        with pytest.raises(ValueError):
            MaxPool2d(0)


class TestSequentialGradientFlow:
    def test_small_mlp_trains_downhill(self):
        rng = np.random.default_rng(0)
        model = Sequential(
            Linear(4, 16, rng=rng), ReLU(), Linear(16, 1, rng=rng)
        )
        x = rng.standard_normal((32, 4)).astype(np.float32)
        y = (x.sum(axis=1, keepdims=True) > 0).astype(np.float32)
        losses = []
        for _ in range(30):
            model.zero_grad()
            pred = model(Tensor(x)).sigmoid()
            loss = ((pred - Tensor(y)) ** 2).mean()
            loss.backward()
            for p in model.parameters():
                p.data -= 0.5 * p.grad
            losses.append(float(loss.data))
        assert losses[-1] < losses[0] * 0.5
