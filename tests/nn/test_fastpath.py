"""Compiled inference fast path: correctness vs the autograd reference,
buffer-arena reuse, float32 discipline, and plan-cache semantics."""

import numpy as np
import pytest

from repro.models import BranchyLeNet, LeNet
from repro.models.autoencoder import ConvertingAutoencoder
from repro.models.lightweight import LightweightClassifier
from repro.nn import Tensor, no_grad
from repro.nn.fastpath import (
    BufferArena,
    ConvStep,
    FallbackStep,
    cached_plan,
    clear_plans,
    compile_plan,
    flatten_modules,
)
from repro.nn.layers import (
    AvgPool2d,
    Conv2d,
    Dropout,
    Flatten,
    Identity,
    LeakyReLU,
    Linear,
    MaxPool2d,
    ReLU,
    Reshape,
    Scale,
    Softmax,
)
from repro.nn.module import Sequential

rng = np.random.default_rng(7)

ATOL = 1e-5


def reference(modules, x):
    """Run the uncompiled eval-mode forward for comparison."""
    seq = Sequential(*flatten_modules(modules))
    seq.eval()
    with no_grad():
        return seq(Tensor(x)).data


# --------------------------------------------------------------------- #
# property-style kernel correctness
# --------------------------------------------------------------------- #
CONV_CASES = [
    # (n, cin, h, cout, k, stride, padding)
    (4, 1, 28, 4, 5, 1, 0),
    (3, 4, 12, 20, 5, 1, 0),
    (5, 20, 4, 80, 3, 1, 1),
    (2, 3, 9, 8, 3, 2, 1),
    (1, 2, 11, 6, 4, 3, 2),
    (7, 5, 8, 5, 1, 1, 0),
    (6, 1, 7, 3, 3, 2, 0),
]


@pytest.mark.parametrize("n,cin,h,cout,k,stride,padding", CONV_CASES)
def test_conv_step_matches_reference(n, cin, h, cout, k, stride, padding):
    x = rng.standard_normal((n, cin, h, h)).astype(np.float32)
    conv = Conv2d(cin, cout, k, stride=stride, padding=padding, rng=np.random.default_rng(1))
    plan = compile_plan(conv, (max(n, 2), cin, h, h))
    np.testing.assert_allclose(plan.run(x), reference(conv, x), atol=ATOL)


@pytest.mark.parametrize("gather_small", [True, False])
def test_conv_both_gather_strategies(gather_small, monkeypatch):
    """Both the strided-copy and the np.take gather produce identical cols."""
    monkeypatch.setattr(ConvStep, "SLICE_FILL_MAX_K", 10_000 if gather_small else 0)
    x = rng.standard_normal((3, 4, 10, 10)).astype(np.float32)
    conv = Conv2d(4, 6, 3, stride=2, padding=1, rng=np.random.default_rng(2))
    plan = compile_plan(conv, (4, 4, 10, 10))
    assert plan.steps[0].slice_fill is gather_small
    np.testing.assert_allclose(plan.run(x), reference(conv, x), atol=ATOL)


@pytest.mark.parametrize("pool_cls", [MaxPool2d, AvgPool2d])
@pytest.mark.parametrize("k,stride", [(2, None), (2, 1), (3, 2)])
def test_pool_steps_match_reference(pool_cls, k, stride):
    x = rng.standard_normal((5, 3, 9, 9)).astype(np.float32)
    pool = pool_cls(k, stride)
    plan = compile_plan(pool, (8, 3, 9, 9))
    np.testing.assert_allclose(plan.run(x), reference(pool, x), atol=ATOL)


def test_linear_softmax_scale_stack():
    x = rng.standard_normal((9, 32)).astype(np.float32)
    stack = Sequential(
        Linear(32, 48, rng=np.random.default_rng(3)),
        ReLU(),
        Linear(48, 16, rng=np.random.default_rng(4)),
        Softmax(),
        Scale(16.0),
    )
    plan = compile_plan(stack, (16, 32))
    np.testing.assert_allclose(plan.run(x), reference(stack, x), atol=ATOL)


def test_no_op_layers_elided_and_fallback_supported():
    stack = Sequential(
        Identity(),
        Dropout(0.5),
        Linear(12, 8, rng=np.random.default_rng(5)),
        LeakyReLU(0.1),  # no dedicated step -> fallback
        Flatten(),
    )
    stack.eval()
    plan = compile_plan(stack, (4, 12))
    names = [s.describe() for s in plan.steps]
    assert not any("Identity" in n or "Dropout" in n for n in names)
    assert any(isinstance(s, FallbackStep) for s in plan.steps)
    x = rng.standard_normal((4, 12)).astype(np.float32)
    np.testing.assert_allclose(plan.run(x), reference(stack, x), atol=ATOL)


def test_reshape_and_flatten_round_trip():
    stack = Sequential(Flatten(), Reshape(2, 3, 4), Flatten())
    x = rng.standard_normal((3, 2, 3, 4)).astype(np.float32)
    plan = compile_plan(stack, (4, 2, 3, 4))
    np.testing.assert_allclose(plan.run(x), x.reshape(3, -1), atol=0)


@pytest.mark.parametrize("batch", [1, 3, 7, 16])
def test_full_lenet_plan_odd_batches(batch):
    model = LeNet(rng=0)
    model.eval()
    x = rng.standard_normal((batch, 1, 28, 28)).astype(np.float32)
    plan = compile_plan((model.features, model.classifier), (16, 1, 28, 28))
    with no_grad():
        ref = model(Tensor(x)).data
    np.testing.assert_allclose(plan.run(x), ref, atol=ATOL)


# --------------------------------------------------------------------- #
# arena reuse / allocation discipline
# --------------------------------------------------------------------- #
def test_arena_buffer_identity_across_batches():
    """Steady-state batches reuse the exact same buffers (zero allocs)."""
    model = LeNet(rng=0)
    x = rng.standard_normal((32, 1, 28, 28)).astype(np.float32)
    plan = compile_plan((model.features, model.classifier), x.shape)
    out1 = plan.run(x)
    allocs = plan.arena.allocation_count
    conv_cols = [s.cols for s in plan.steps if isinstance(s, ConvStep)]
    out2 = plan.run(x)
    assert plan.arena.allocation_count == allocs
    assert out1.base is out2.base  # same arena buffer, not a fresh array
    for step, cols in zip(
        (s for s in plan.steps if isinstance(s, ConvStep)), conv_cols
    ):
        assert step.cols is cols  # im2col column buffers never reallocate
    # ragged smaller batch: still the same buffers, just shorter views
    out3 = plan.run(x[:5])
    assert plan.arena.allocation_count == allocs
    assert out3.base is out1.base
    assert out3.shape[0] == 5


def test_arena_rejects_shape_conflicts():
    arena = BufferArena()
    arena.alloc("a", (2, 3))
    with pytest.raises(ValueError):
        arena.alloc("a", (3, 2))
    assert "a" in arena and len(arena) == 1 and arena.nbytes == 24


def test_plan_input_validation():
    conv = Conv2d(1, 2, 3, rng=np.random.default_rng(0))
    plan = compile_plan(conv, (4, 1, 8, 8))
    with pytest.raises(TypeError):  # float64 is a dtype-discipline violation
        plan.run(np.zeros((2, 1, 8, 8)))
    with pytest.raises(ValueError):  # wrong sample shape
        plan.run(np.zeros((2, 1, 9, 9), dtype=np.float32))
    with pytest.raises(ValueError):  # over capacity
        plan.run(np.zeros((5, 1, 8, 8), dtype=np.float32))
    with pytest.raises(ValueError):  # empty batch
        plan.run(np.zeros((0, 1, 8, 8), dtype=np.float32))


# --------------------------------------------------------------------- #
# plan cache semantics
# --------------------------------------------------------------------- #
def test_cached_plan_reuse_and_capacity_growth():
    model = LeNet(rng=0)
    p1 = cached_plan(model, (model.features, model.classifier), (8, 1, 28, 28), key="full")
    p2 = cached_plan(model, (model.features, model.classifier), (5, 1, 28, 28), key="full")
    assert p1 is p2  # smaller batch reuses the compiled plan
    p3 = cached_plan(model, (model.features, model.classifier), (16, 1, 28, 28), key="full")
    assert p3 is not p1 and p3.capacity == 16  # larger batch recompiles once
    clear_plans(model)
    assert "_fastpath_plans" not in model.__dict__


def test_plans_read_parameters_live():
    """Weight updates after compilation are visible without invalidation."""
    conv = Conv2d(1, 2, 3, rng=np.random.default_rng(0))
    x = rng.standard_normal((2, 1, 6, 6)).astype(np.float32)
    plan = compile_plan(conv, (2, 1, 6, 6))
    before = plan.run(x).copy()
    conv.weight.data *= 2.0
    conv.bias.data += 1.0
    after = plan.run(x)
    np.testing.assert_allclose(after, reference(conv, x), atol=ATOL)
    assert not np.allclose(before, after)


def test_module_inference_plan_helper():
    model = LeNet(rng=0)
    plan = model.inference_plan((4, 1, 28, 28), modules=(model.features, model.classifier))
    x = rng.standard_normal((4, 1, 28, 28)).astype(np.float32)
    with no_grad():
        ref = model(Tensor(x)).data
    np.testing.assert_allclose(plan.run(x), ref, atol=ATOL)
    model.clear_inference_plans()
    assert "_fastpath_plans" not in model.__dict__


# --------------------------------------------------------------------- #
# model-level equivalence (incl. the early-exit mask split)
# --------------------------------------------------------------------- #
@pytest.mark.parametrize("threshold", [0.0, 0.5, 1.5, 10.0])
def test_branchynet_infer_fastpath_equivalence(threshold):
    model = BranchyLeNet(rng=0)
    images = rng.standard_normal((70, 1, 28, 28)).astype(np.float32)
    fast = model.infer(images, threshold, batch_size=32)  # ragged final batch of 6
    ref = model.infer(images, threshold, batch_size=32, fastpath=False)
    # Argmax can flip between paths only on near-tied logits (different
    # GEMM reduction order); allow <=1% of those, keep everything else exact.
    assert (fast.predictions == ref.predictions).mean() > 0.99
    np.testing.assert_array_equal(fast.exited_early, ref.exited_early)
    np.testing.assert_allclose(fast.branch_entropy, ref.branch_entropy, atol=ATOL)


def test_branch_gate_fastpath_equivalence():
    model = BranchyLeNet(rng=0)
    images = rng.standard_normal((41, 1, 28, 28)).astype(np.float32)
    ent_f, pred_f = model.branch_gate(images, batch_size=16)
    ent_r, pred_r = model.branch_gate(images, batch_size=16, fastpath=False)
    np.testing.assert_allclose(ent_f, ent_r, atol=ATOL)
    assert (pred_f == pred_r).mean() > 0.99  # argmax ties only


def test_lenet_predict_fastpath_equivalence():
    model = LeNet(rng=0)
    images = rng.standard_normal((70, 1, 28, 28)).astype(np.float32)
    agreement = (
        model.predict(images, batch_size=32)
        == model.predict(images, batch_size=32, fastpath=False)
    ).mean()
    assert agreement > 0.99  # argmax ties only


def test_lightweight_predict_fastpath_equivalence():
    model = LightweightClassifier.from_branchynet(BranchyLeNet(rng=3))
    images = rng.standard_normal((23, 1, 28, 28)).astype(np.float32)
    agreement = (
        model.predict(images, batch_size=10)
        == model.predict(images, batch_size=10, fastpath=False)
    ).mean()
    assert agreement > 0.99  # argmax ties only


def test_autoencoder_convert_fastpath_equivalence():
    ae = ConvertingAutoencoder.for_dataset("mnist", rng=0)
    flat = rng.random((37, 784), dtype=np.float32)
    np.testing.assert_allclose(
        ae.convert(flat, batch_size=16),
        ae.convert(flat, batch_size=16, fastpath=False),
        atol=ATOL,
    )


# --------------------------------------------------------------------- #
# float32 discipline
# --------------------------------------------------------------------- #
def test_infer_coerces_float64_input():
    """Inference entry points enforce float32 even for float64 callers."""
    model = BranchyLeNet(rng=0)
    images64 = rng.standard_normal((12, 1, 28, 28))  # float64
    result = model.infer(images64, 0.5, batch_size=8)
    assert result.branch_entropy.dtype == np.float32
    ref = model.infer(images64.astype(np.float32), 0.5, batch_size=8)
    np.testing.assert_array_equal(result.predictions, ref.predictions)


def test_branchynet_infer_all_intermediates_float32():
    """Walk a full BranchyNet infer layer by layer: every intermediate,
    on both the compiled and the reference path, must stay float32."""
    model = BranchyLeNet(rng=0)
    model.eval()
    images = rng.standard_normal((6, 1, 28, 28)).astype(np.float32)

    # Reference path, layer by layer.
    with no_grad():
        shared = Tensor(images)
        for layer in flatten_modules(model.stem):
            shared = layer(shared)
            assert shared.dtype == np.float32, f"{layer!r} upcast to {shared.dtype}"
        for stage in (model.branch, model.trunk):
            x = shared
            for layer in flatten_modules(stage):
                x = layer(x)
                assert x.dtype == np.float32, f"{layer!r} upcast to {x.dtype}"

    # Compiled path: every arena buffer and every step output.
    for key, modules in (("stem", model.stem), ("branch", model.branch)):
        plan = cached_plan(model, modules, images.shape, key=key)
        for name in plan.arena.names():
            assert plan.arena.get(name).dtype == np.float32, name
    stem_out = cached_plan(model, model.stem, images.shape, key="stem").run(images)
    assert stem_out.dtype == np.float32
    branch_out = cached_plan(model, model.branch, stem_out.shape, key="branch").run(stem_out)
    assert branch_out.dtype == np.float32

    # The gate statistic itself.
    result = model.infer(images, 0.5)
    assert result.branch_entropy.dtype == np.float32
