"""Unit tests for optimizers and LR schedules."""

import numpy as np
import pytest

from repro.nn import Parameter, Tensor
from repro.nn.optim import SGD, Adam, ConstantLR, CosineLR, StepLR, WarmupLR, clip_grad_norm


def quadratic_param(value=5.0):
    return Parameter(np.array([value], dtype=np.float32))


def step_quadratic(param, optimizer, steps=50):
    """Minimize f(x) = x^2 by hand-computed gradient 2x."""
    for _ in range(steps):
        optimizer.zero_grad()
        param.grad = 2.0 * param.data
        optimizer.step()
    return float(param.data[0])


class TestSGD:
    def test_converges_on_quadratic(self):
        p = quadratic_param()
        assert abs(step_quadratic(p, SGD([p], lr=0.1))) < 1e-3

    def test_momentum_faster_than_plain(self):
        p1, p2 = quadratic_param(), quadratic_param()
        x_plain = step_quadratic(p1, SGD([p1], lr=0.02), steps=20)
        x_mom = step_quadratic(p2, SGD([p2], lr=0.02, momentum=0.9), steps=20)
        assert abs(x_mom) < abs(x_plain)

    def test_weight_decay_shrinks_weights(self):
        p = Parameter(np.array([1.0], dtype=np.float32))
        opt = SGD([p], lr=0.1, weight_decay=0.5)
        p.grad = np.zeros(1, dtype=np.float32)
        opt.step()
        assert p.data[0] < 1.0

    def test_skips_params_without_grad(self):
        p = Parameter(np.array([1.0], dtype=np.float32))
        SGD([p], lr=0.1).step()
        assert p.data[0] == 1.0

    def test_nesterov_requires_momentum(self):
        p = quadratic_param()
        with pytest.raises(ValueError):
            SGD([p], lr=0.1, nesterov=True)

    def test_invalid_hyperparams(self):
        p = quadratic_param()
        with pytest.raises(ValueError):
            SGD([p], lr=-1.0)
        with pytest.raises(ValueError):
            SGD([p], lr=0.1, momentum=1.0)
        with pytest.raises(ValueError):
            SGD([], lr=0.1)


class TestAdam:
    def test_converges_on_quadratic(self):
        p = quadratic_param()
        assert abs(step_quadratic(p, Adam([p], lr=0.2), steps=100)) < 1e-2

    def test_bias_correction_first_step(self):
        # First Adam step should move by ~lr regardless of gradient scale.
        p = Parameter(np.array([0.0], dtype=np.float32))
        opt = Adam([p], lr=0.01)
        p.grad = np.array([1e-4], dtype=np.float32)
        opt.step()
        assert abs(p.data[0] + 0.01) < 1e-3

    def test_invalid_betas(self):
        p = quadratic_param()
        with pytest.raises(ValueError):
            Adam([p], betas=(1.0, 0.999))

    def test_state_dict_roundtrip(self):
        p = quadratic_param()
        opt = Adam([p], lr=0.3)
        p.grad = np.ones(1, dtype=np.float32)
        opt.step()
        state = opt.state_dict()
        opt2 = Adam([p], lr=0.1)
        opt2.load_state_dict(state)
        assert opt2.lr == pytest.approx(0.3)
        assert opt2.step_count == 1


class TestClipGradNorm:
    def test_clips_to_max_norm(self):
        p = Parameter(np.array([3.0, 4.0], dtype=np.float32))
        p.grad = np.array([3.0, 4.0], dtype=np.float32)
        pre = clip_grad_norm([p], max_norm=1.0)
        assert pre == pytest.approx(5.0)
        assert np.linalg.norm(p.grad) == pytest.approx(1.0, abs=1e-5)

    def test_no_clip_below_threshold(self):
        p = Parameter(np.array([0.1], dtype=np.float32))
        p.grad = np.array([0.1], dtype=np.float32)
        clip_grad_norm([p], max_norm=10.0)
        assert p.grad[0] == pytest.approx(0.1)

    def test_empty_grads_return_zero(self):
        p = Parameter(np.zeros(2))
        assert clip_grad_norm([p], 1.0) == 0.0

    def test_invalid_max_norm(self):
        with pytest.raises(ValueError):
            clip_grad_norm([], 0.0)


class TestSchedules:
    def _opt(self):
        p = quadratic_param()
        return SGD([p], lr=1.0)

    def test_constant(self):
        sched = ConstantLR(self._opt())
        assert sched.step() == 1.0
        assert sched.step() == 1.0

    def test_step_lr_decays(self):
        sched = StepLR(self._opt(), step_size=2, gamma=0.1)
        lrs = [sched.step() for _ in range(4)]
        assert lrs == pytest.approx([1.0, 0.1, 0.1, 0.01])

    def test_cosine_monotone_to_min(self):
        sched = CosineLR(self._opt(), total_epochs=10, min_lr=0.0)
        lrs = [sched.step() for _ in range(10)]
        assert all(a >= b for a, b in zip(lrs, lrs[1:]))
        assert lrs[-1] == pytest.approx(0.0, abs=1e-9)

    def test_warmup_ramps(self):
        sched = WarmupLR(self._opt(), warmup_epochs=4)
        lrs = [sched.step() for _ in range(4)]
        assert lrs == pytest.approx([0.25, 0.5, 0.75, 1.0])

    def test_warmup_hands_off(self):
        opt = self._opt()
        sched = WarmupLR(opt, warmup_epochs=2, after=StepLR(opt, step_size=1, gamma=0.5))
        for _ in range(2):
            sched.step()
        assert sched.step() == pytest.approx(0.5)

    def test_invalid_schedule_params(self):
        with pytest.raises(ValueError):
            StepLR(self._opt(), step_size=0)
        with pytest.raises(ValueError):
            CosineLR(self._opt(), total_epochs=0)
        with pytest.raises(ValueError):
            WarmupLR(self._opt(), warmup_epochs=0)
