"""Unit tests for the SoA request log and the oracle table layer."""

import numpy as np
import pytest

from repro.hw.devices import gci_cpu, raspberry_pi4
from repro.models import BranchyLeNet, LeNet
from repro.serving.backends import BranchyNetBackend, LeNetBackend
from repro.serving.request import Route
from repro.serving.router import RouteDecision
from repro.sim import (
    ROUTE_CACHED,
    ROUTE_EASY,
    ROUTE_SHED,
    InferenceTable,
    RequestLog,
    clear_oracle_cache,
    oracle_backend,
    request_keys,
    validate_trace,
)


class TestRequestLog:
    def test_columns_match_request_defaults(self):
        log = RequestLog(np.array([0.0, 0.5, 1.0]))
        (req,) = log.to_requests()[:1]
        assert req.req_id == 0
        assert req.route == Route.BATCHED
        assert req.prediction == -1
        assert req.batch_size == 0
        assert np.isnan(req.completion_s)
        assert not req.done

    def test_to_requests_round_trip(self):
        log = RequestLog(np.array([0.0, 0.5, 1.0]))
        log.completion_s[:] = [0.2, np.nan, 1.4]
        log.route[:] = [ROUTE_EASY, ROUTE_SHED, ROUTE_CACHED]
        log.prediction[:] = [3, -1, 7]
        log.batch_size[0] = 4
        log.source_id[2] = 0
        log.replica_id[0] = 2
        log.degraded[1] = True
        log.retries[0] = 1
        reqs = log.to_requests()
        assert [r.route for r in reqs] == [Route.EASY, Route.SHED, Route.CACHED]
        assert reqs[0].sojourn_s == pytest.approx(0.2)
        assert reqs[0].replica_id == 2 and reqs[0].retries == 1
        assert reqs[1].degraded and not reqs[1].done
        assert reqs[2].source_id == 0

    def test_fill_cached_predictions(self):
        log = RequestLog(np.zeros(3))
        log.prediction[:] = [5, -1, -1]
        log.route[1] = ROUTE_CACHED
        log.source_id[1] = 0
        log.fill_cached_predictions()
        assert log.prediction.tolist() == [5, 5, -1]

    def test_done_and_sojourn_masks(self):
        log = RequestLog(np.array([1.0, 2.0]))
        log.completion_s[0] = 1.5
        assert log.done.tolist() == [True, False]
        assert log.sojourn_s[0] == pytest.approx(0.5)


class TestTraceValidation:
    def test_rejects_misaligned(self):
        with pytest.raises(ValueError, match="images vs"):
            validate_trace(np.zeros((3, 2, 2)), np.zeros(2))

    def test_rejects_empty(self):
        with pytest.raises(ValueError, match="empty"):
            validate_trace(np.zeros((0, 2, 2)), np.zeros(0))

    def test_rejects_unsorted(self):
        with pytest.raises(ValueError, match="non-decreasing"):
            validate_trace(np.zeros((2, 2, 2)), np.array([1.0, 0.5]))

    def test_oracle_keys_are_sample_ids(self):
        assert request_keys(np.array([4, 2, 4]), oracle=True) == [4, 2, 4]

    def test_live_keys_hash_content(self):
        images = np.zeros((2, 2, 2), dtype=np.float32)
        images[1] = 1.0
        a, b = request_keys(images, oracle=False)
        assert isinstance(a, str) and a != b


class TestInferenceTable:
    @pytest.fixture(scope="class")
    def pool(self):
        return np.random.default_rng(0).random((24, 1, 28, 28), dtype=np.float32)

    def test_static_table_has_no_gate(self, pool):
        table = InferenceTable.build(LeNetBackend(LeNet(rng=0), gci_cpu()), pool)
        assert not table.routed
        assert table.n_samples == 24
        assert table.hard_preds is None

    def test_routed_table_columns(self, pool):
        model = BranchyLeNet(rng=0)
        backend = BranchyNetBackend(model, raspberry_pi4())
        table = InferenceTable.build(backend, pool)
        assert table.routed
        np.testing.assert_array_equal(table.easy, table.entropy < backend.router.threshold)
        # The hard column is the trunk's answer for every sample.
        trunk = model.infer(pool, threshold=-1.0).predictions
        np.testing.assert_array_equal(table.hard_preds, trunk)

    def test_oracle_predict_honours_forced_decision(self, pool):
        model = BranchyLeNet(rng=0)
        backend = oracle_backend(BranchyNetBackend(model, raspberry_pi4()), pool)
        ids = np.array([0, 1, 2, 3])
        forced = RouteDecision(
            easy=np.array([True, True, False, False]),
            entropy=backend.table.entropy[ids],
        )
        preds = backend.predict(ids, forced)
        np.testing.assert_array_equal(preds[:2], backend.table.easy_preds[ids[:2]])
        np.testing.assert_array_equal(preds[2:], backend.table.hard_preds[ids[2:]])

    def test_tables_memoized_across_devices(self, pool):
        clear_oracle_cache()
        model = BranchyLeNet(rng=0)
        a = oracle_backend(BranchyNetBackend(model, raspberry_pi4()), pool)
        b = oracle_backend(BranchyNetBackend(model, gci_cpu()), pool)
        assert a.table is b.table  # device calibration is not part of the key
        assert a.timing is not b.timing  # but the virtual clock still differs

    def test_wrapping_an_oracle_is_idempotent(self, pool):
        backend = oracle_backend(LeNetBackend(LeNet(rng=0), gci_cpu()), pool)
        assert oracle_backend(backend, pool) is backend

    def test_warmup_is_a_noop(self, pool):
        backend = oracle_backend(LeNetBackend(LeNet(rng=0), gci_cpu()), pool)
        backend.warmup(512, sample_shape=())  # must not touch the model
