"""RequestLog ⇄ Request-object round-trip property tests.

``to_requests()`` materializes the object view and ``from_requests()``
rebuilds the SoA columns; the round trip must be exact for *every*
column — including the resilience columns (``retries``, ``timed_out``,
``hedged``) added by the fault-tolerant fleet engine, which previously
had no dedicated round-trip coverage.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.sim.records import (
    ROUTE_BATCHED,
    ROUTE_CACHED,
    ROUTE_CODES,
    RequestLog,
)

COLUMNS = RequestLog.__slots__


def random_log(rng: np.random.Generator, n: int) -> RequestLog:
    """A log with every column exercised: NaNs, sentinels, and extremes."""
    log = RequestLog(np.sort(rng.uniform(0.0, 2.0, n)))
    served = rng.random(n) < 0.8
    log.completion_s[served] = log.arrival_s[served] + rng.uniform(1e-4, 0.5, served.sum())
    log.dispatch_s[served] = log.arrival_s[served] + rng.uniform(0.0, 0.1, served.sum())
    log.prediction[:] = rng.integers(-1, 10, n)
    log.route[:] = rng.integers(0, len(ROUTE_CODES), n)
    log.requested_route[:] = rng.integers(0, len(ROUTE_CODES), n)
    log.batch_size[:] = rng.integers(0, 33, n)
    log.source_id[:] = rng.integers(-1, n, n)
    log.replica_id[:] = rng.integers(-1, 8, n)
    log.degraded[:] = rng.random(n) < 0.2
    log.retries[:] = rng.integers(0, 4, n)
    log.req_class[:] = rng.integers(0, 3, n)
    log.timed_out[:] = rng.integers(0, 3, n)
    log.hedged[:] = rng.random(n) < 0.15
    return log


def assert_logs_equal(a: RequestLog, b: RequestLog) -> None:
    for col in COLUMNS:
        x, y = getattr(a, col), getattr(b, col)
        assert x.dtype == y.dtype, col
        assert np.array_equal(x, y, equal_nan=x.dtype.kind == "f"), col


class TestRoundTrip:
    @pytest.mark.parametrize("seed", range(10))
    def test_random_logs_round_trip_exactly(self, seed):
        rng = np.random.default_rng(seed)
        log = random_log(rng, int(rng.integers(1, 200)))
        assert_logs_equal(log, RequestLog.from_requests(log.to_requests()))

    def test_resilience_columns_survive(self):
        log = RequestLog(np.array([0.0, 0.1, 0.2]))
        log.retries[:] = [0, 2, 1]
        log.timed_out[:] = [1, 0, 3]
        log.hedged[:] = [True, False, True]
        back = RequestLog.from_requests(log.to_requests())
        assert back.retries.tolist() == [0, 2, 1]
        assert back.timed_out.tolist() == [1, 0, 3]
        assert back.hedged.tolist() == [True, False, True]

    def test_never_served_rows_keep_nan_and_sentinels(self):
        log = RequestLog(np.array([0.0, 1.0]))
        back = RequestLog.from_requests(log.to_requests())
        assert np.isnan(back.completion_s).all()
        assert np.isnan(back.dispatch_s).all()
        assert (back.prediction == -1).all()
        assert (back.replica_id == -1).all()
        assert (back.route == ROUTE_BATCHED).all()

    def test_route_strings_map_back_to_codes(self):
        log = RequestLog(np.array([0.0]))
        log.route[0] = ROUTE_CACHED
        reqs = log.to_requests()
        assert reqs[0].route == "cached"
        assert RequestLog.from_requests(reqs).route[0] == ROUTE_CACHED

    def test_out_of_order_requests_rejected(self):
        log = RequestLog(np.array([0.0, 1.0]))
        reqs = log.to_requests()
        with pytest.raises(ValueError, match="row order"):
            RequestLog.from_requests(list(reversed(reqs)))

    def test_object_view_matches_columns_fieldwise(self):
        rng = np.random.default_rng(42)
        log = random_log(rng, 50)
        reqs = log.to_requests()
        for i in (0, 17, 49):
            r = reqs[i]
            assert r.req_id == i
            assert r.arrival_s == log.arrival_s[i]
            same_completion = (
                r.completion_s == log.completion_s[i]
                or (np.isnan(r.completion_s) and np.isnan(log.completion_s[i]))
            )
            assert same_completion
            assert r.retries == log.retries[i]
            assert r.timed_out == log.timed_out[i]
            assert r.hedged == bool(log.hedged[i])
            assert r.req_class == log.req_class[i]
