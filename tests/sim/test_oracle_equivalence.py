"""Live-vs-oracle parity: the acceptance contract of `repro.sim`.

The oracle replaces in-loop model calls with precomputed table lookups;
these tests prove the replacement is *observationally invisible* under
fixed seeds — served accuracy, entropy-gate routing decisions, cache hit
rates, and p50/p95/p99 all match the live engines bit for bit — across
a serving, a cluster, and an offload scenario.
"""

import dataclasses
import math

import numpy as np
import pytest

from repro.cluster.admission import AdmissionController
from repro.cluster.engine import Cluster
from repro.hw.devices import gci_cpu, raspberry_pi4
from repro.hw.network import wifi
from repro.models import BranchyLeNet, LeNet
from repro.offload.engine import EdgeTier, cloud_server_for
from repro.offload.policies import EntropyGated, TensorCodec
from repro.serving.arrivals import poisson_arrivals, zipf_popularity
from repro.serving.backends import BranchyNetBackend, LeNetBackend
from repro.serving.engine import Server
from repro.sim import offload_oracle, oracle_backend

N_POOL = 48
N_REQUESTS = 400


@pytest.fixture(scope="module")
def pool():
    rng = np.random.default_rng(0)
    images = rng.random((N_POOL, 1, 28, 28), dtype=np.float32)
    labels = rng.integers(0, 10, N_POOL)
    return images, labels


@pytest.fixture(scope="module")
def branchy(pool):
    images, _ = pool
    model = BranchyLeNet(rng=0)
    # Put the gate threshold inside the entropy distribution so both
    # routes genuinely occur (an untrained branch is uniformly unsure).
    # Use the midpoint of the *widest gap* between adjacent entropies in
    # the middle band: compiled plans are shape-specialized, so the same
    # sample's entropy can differ by ~1 ulp between batch sizes — the
    # threshold must not sit within rounding noise of any sample.
    entropy = np.sort(model.branch_gate(images)[0])
    lo, hi = int(0.3 * len(entropy)), int(0.7 * len(entropy))
    gaps = np.diff(entropy[lo:hi])
    i = lo + int(np.argmax(gaps))
    model.entropy_threshold = float(0.5 * (entropy[i] + entropy[i + 1]))
    return model


@pytest.fixture(scope="module")
def stream(pool):
    _, labels = pool
    ids = zipf_popularity(N_POOL, N_REQUESTS, exponent=0.9, rng=np.random.default_rng(1))
    arrival_s = poisson_arrivals(1500.0, N_REQUESTS, rng=np.random.default_rng(2))
    return ids, arrival_s, labels[ids]


def assert_reports_equal(live, orc, skip=()):
    """Field-by-field dataclass equality (NaN == NaN)."""
    for f in dataclasses.fields(live):
        if f.name in skip:
            continue
        a, b = getattr(live, f.name), getattr(orc, f.name)
        if isinstance(a, float) and math.isnan(a):
            assert isinstance(b, float) and math.isnan(b), f.name
        else:
            assert a == b, f"{f.name}: live={a!r} oracle={b!r}"


class TestServingParity:
    def test_routed_backend_report_identical(self, pool, branchy, stream):
        images, _ = pool
        ids, arrival_s, labels = stream

        def build(backend):
            return Server(backend, max_batch_size=8, max_wait_s=0.003, cache_capacity=32)

        live_backend = BranchyNetBackend(branchy, raspberry_pi4())
        live = build(live_backend).serve(images[ids], arrival_s, labels=labels)
        orc = build(oracle_backend(live_backend, images)).serve(
            ids, arrival_s, labels=labels
        )
        assert_reports_equal(live, orc)
        assert orc.n_easy > 0 and orc.n_hard > 0  # both gate outcomes occurred
        assert orc.n_cached > 0  # the cache genuinely participated

    def test_per_request_records_identical(self, pool, branchy, stream):
        images, _ = pool
        ids, arrival_s, labels = stream
        backend = BranchyNetBackend(branchy, raspberry_pi4())
        _, live_reqs = Server(backend, cache_capacity=16).serve_detailed(
            images[ids], arrival_s, labels=labels
        )
        _, orc_reqs = Server(oracle_backend(backend, images), cache_capacity=16).serve_detailed(
            ids, arrival_s, labels=labels
        )
        for lr, orr in zip(live_reqs, orc_reqs):
            assert lr == orr

    def test_static_backend_report_identical(self, pool, stream):
        images, _ = pool
        ids, arrival_s, labels = stream
        backend = LeNetBackend(LeNet(rng=0), gci_cpu())
        live = Server(backend, max_batch_size=16).serve(
            images[ids], arrival_s, labels=labels
        )
        orc = Server(oracle_backend(backend, images), max_batch_size=16).serve(
            ids, arrival_s, labels=labels
        )
        assert_reports_equal(live, orc)


class TestClusterParity:
    def test_heterogeneous_fleet_with_admission(self, pool, branchy, stream):
        images, _ = pool
        ids, arrival_s, labels = stream

        def build(backends):
            return Cluster(
                backends,
                policy="power-of-two",
                admission=AdmissionController(max_outstanding=10, policy="degrade"),
                slo_s=0.02,
                max_batch_size=8,
                max_wait_s=0.002,
                cache_capacity=32,
                rng=3,
            )

        live_backends = [
            BranchyNetBackend(branchy, raspberry_pi4()),
            BranchyNetBackend(branchy, gci_cpu()),
        ]
        live = build(live_backends).serve(images[ids], arrival_s, labels=labels)
        orc = build([oracle_backend(b, images) for b in live_backends]).serve(
            ids, arrival_s, labels=labels
        )
        assert_reports_equal(live, orc)
        # The scenario exercised what it claims to: routing, cache, degrade.
        assert orc.n_cached > 0
        assert orc.n_degraded > 0

    def test_mixed_fleet_rejected(self, pool, branchy):
        images, _ = pool
        backend = BranchyNetBackend(branchy, gci_cpu())
        with pytest.raises(ValueError, match="mix oracle and live"):
            Cluster([backend, oracle_backend(backend, images)])


class TestOffloadParity:
    @pytest.mark.parametrize("codec_name", ["float32", "uint8"])
    def test_entropy_gated_split(self, pool, branchy, stream, codec_name):
        images, _ = pool
        ids, arrival_s, labels = stream
        policy = EntropyGated()
        codec = TensorCodec(codec_name)

        live_cloud = cloud_server_for(
            policy, branchy, gci_cpu(), max_batch_size=8, max_wait_s=0.002
        )
        live = EdgeTier(
            branchy, raspberry_pi4(), wifi(), live_cloud, policy, codec=codec, rng=9
        ).serve(images[ids], arrival_s, labels=labels)

        oracle = offload_oracle(branchy, images)
        orc_cloud = cloud_server_for(
            policy,
            branchy,
            gci_cpu(),
            oracle=oracle,
            codec=codec,
            max_batch_size=8,
            max_wait_s=0.002,
        )
        orc = EdgeTier(
            branchy,
            raspberry_pi4(),
            wifi(),
            orc_cloud,
            policy,
            codec=codec,
            oracle=oracle,
            rng=9,
        ).serve(ids, arrival_s, labels=labels)

        assert_reports_equal(live, orc, skip=("cloud_report",))
        assert_reports_equal(live.cloud_report, orc.cloud_report)
        assert orc.n_offloaded > 0 and orc.n_local_easy > 0

    def test_oracle_edge_requires_oracle_cloud(self, pool, branchy):
        images, _ = pool
        policy = EntropyGated()
        live_cloud = cloud_server_for(policy, branchy, gci_cpu())
        with pytest.raises(TypeError, match="oracle"):
            EdgeTier(
                branchy,
                raspberry_pi4(),
                wifi(),
                live_cloud,
                policy,
                oracle=offload_oracle(branchy, images),
            )
