"""Network chaos invariants: seeded link storms over a shared uplink.

The offload counterpart of ``test_chaos_invariants.py``: across ten
seeded storms (outage + degradations + flaps on one shared LTE cell),
every fleet run must keep the transfer ledger exact —

* **exactly-once delivery** — no offloaded request's response is lost
  or delivered twice, across any amount of session churn;
* **bounded retransmit amplification** — bytes on the wire never exceed
  ``max_attempts`` times the payload, no matter the storm;
* **deadline fallback** — a deadline-aware device whose remote estimate
  cannot fit the deadline (deep in an outage) always answers locally;
* **strict policy win** — the deadline-aware arm beats the naive
  ship-everything arm on deadline-SLO attainment in *every* storm.

Each storm is structured (guaranteed outage/degrades/flaps with seeded
jitter), so no seed degenerates into a calm link where the arms tie.
"""

import numpy as np
import pytest

from repro.experiments.netchaos import _net_storm_for, run_netchaos_comparison
from repro.hw.network import lte
from repro.netsim import (
    OUTAGE,
    AIMDConfig,
    FleetDevice,
    SharedLink,
    run_fleet_net,
)
from repro.offload.policies import DeadlineAware, EntropyGated
from repro.utils.rng import as_generator, derive_seed

SEEDS = range(10)

N_REQUESTS = 80
RATE_HZ = 15.0
DEADLINE_S = 0.25
HORIZON_S = N_REQUESTS / RATE_HZ

SPEC = FleetDevice(
    rate_hz=RATE_HZ,
    n_requests=N_REQUESTS,
    up_bytes=8_000,
    local_s=40e-3,
    cloud_s=4e-3,
)


def _storm(seed: int):
    rng = as_generator(derive_seed(seed, "netchaos-invariants"))
    return _net_storm_for(HORIZON_S, rng)


def _run(seed: int, policy, n_devices: int = 3):
    plan = _storm(seed)
    link = SharedLink.from_network_link(lte(), faults=plan)
    return plan, run_fleet_net(
        link,
        tuple(SPEC for _ in range(n_devices)),
        policy,
        deadline_s=DEADLINE_S,
        rng=derive_seed(seed, "netchaos-fleet"),
        aimd=AIMDConfig(init_cwnd=10),
    )


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("resilient", [True, False])
def test_exactly_once_delivery(seed, resilient):
    policy = DeadlineAware(DEADLINE_S) if resilient else EntropyGated()
    _, report = _run(seed, policy)
    assert report.n_lost == 0
    assert report.n_double_delivered == 0
    offloaded = report.outcome == 2
    assert (report.delivered_count[offloaded] == 1).all()
    assert (report.delivered_count[~offloaded] == 0).all()
    assert np.isfinite(report.completion_s).all()


@pytest.mark.parametrize("seed", SEEDS)
def test_bounded_retransmit_amplification(seed):
    _, report = _run(seed, EntropyGated())
    assert report.retx_amplification <= 8.0  # the transports' max_attempts
    for dev in report.devices:
        if dev.n_offloaded:
            assert dev.sent_bytes <= 8 * dev.delivered_bytes


@pytest.mark.parametrize("seed", SEEDS)
def test_deadline_fallback_always_fires_local(seed):
    plan, report = _run(seed, DeadlineAware(DEADLINE_S))
    # Deep inside the outage the remote estimate cannot fit the
    # deadline (the link won't even be back in time), so every hard
    # request arriving there must have answered locally.
    (start, end) = next(
        (f.start_s, f.end_s) for f in plan.faults if f.kind == OUTAGE
    )
    deep = (report.arrival_s >= start) & (report.arrival_s <= end - DEADLINE_S)
    assert deep.any(), "storm shape guarantees a deep-outage span"
    assert (report.outcome[deep] != 2).all()


@pytest.mark.parametrize("seed", SEEDS)
def test_sessions_churn_but_recover(seed):
    _, report = _run(seed, EntropyGated())
    drops = sum(d.carrier_drops for d in report.devices)
    sessions = sum(d.sessions for d in report.devices)
    assert drops >= 1  # the storm genuinely hit the fleet
    assert sessions > drops  # every drop was followed by a re-establish


def test_resilient_beats_naive_in_every_storm():
    comparison = run_netchaos_comparison(fast=True, seed=0, n_storms=10)
    assert len(comparison.runs) == 10
    for run in comparison.runs:
        assert run.margin > 0, (
            f"storm {run.storm_seed}: resilient "
            f"{run.resilient.slo_attainment:.3f} vs naive "
            f"{run.naive.slo_attainment:.3f}"
        )
    assert comparison.n_wins == 10
    assert comparison.total_lost == 0
    assert comparison.total_double == 0


def test_netchaos_replays_deterministically():
    a = run_netchaos_comparison(fast=True, seed=3, n_storms=2)
    b = run_netchaos_comparison(fast=True, seed=3, n_storms=2)
    for ra, rb in zip(a.runs, b.runs):
        assert ra.plan.faults == rb.plan.faults
        for arm in ("naive", "resilient"):
            assert np.array_equal(
                getattr(ra, arm).completion_s, getattr(rb, arm).completion_s
            )
            assert getattr(ra, arm).devices == getattr(rb, arm).devices
