"""Property tests: resilience invariants under randomized fault storms.

Each invariant is checked across 20 randomized chaos schedules (fleet
size, service rates, load, and the slowdown/partition/flaky/crash storm
all vary):

* **conservation** — every request ends in exactly one terminal state
  (served, shed, or unserved), and the log's terminal fields are
  coherent per state;
* **no response after cancellation** — a timed-out attempt's response
  never lands: a request served after ``k`` timeouts must have waited
  out all ``k`` timeout windows first, and an unserved request's log is
  fully scrubbed;
* **bounded retry amplification** — attempts per request never exceed
  the explicit retry budget plus one re-route per fleet crash, so a
  fault storm cannot melt the fleet with its own retries.
"""

import numpy as np
import pytest

from conftest import build_cluster, make_scenario, resilience_for, run_scenario

from repro.sim.records import ROUTE_SHED

SEEDS = range(20)


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("resilient", [True, False])
def test_request_conservation(seed, resilient):
    sc = make_scenario(seed)
    report, log = run_scenario(sc, resilient=resilient)

    assert report.n_requests == sc.n
    assert report.n_served + report.n_shed + report.n_unserved == sc.n

    served = log.done
    shed = log.route == ROUTE_SHED
    assert not (served & shed).any()  # at most one terminal state
    assert int(served.sum()) == report.n_served
    assert int(shed.sum()) == report.n_shed

    # Served rows carry a full, ordered timeline on a real replica.
    assert np.isfinite(log.dispatch_s[served]).all()
    assert (log.arrival_s[served] <= log.dispatch_s[served]).all()
    assert (log.dispatch_s[served] < log.completion_s[served]).all()
    assert (log.replica_id[served] >= 0).all()
    assert (log.batch_size[served] >= 1).all()

    # Unserved rows are scrubbed: no half-written timeline survives.
    unserved = ~served & ~shed
    assert np.isnan(log.completion_s[unserved]).all()
    assert np.isnan(log.dispatch_s[unserved]).all()
    assert (log.replica_id[unserved] == -1).all()
    assert (log.batch_size[unserved] == 0).all()


@pytest.mark.parametrize("seed", SEEDS)
def test_no_response_after_cancellation(seed):
    """A cancelled attempt's (earlier, faster) response must never land.

    If it did, a request with ``k`` timed-out attempts could complete in
    less than ``k`` timeout windows.  Every served row must instead show
    the full wait: each counted timeout fired a whole ``timeout_s`` after
    its attempt was routed, and routes are sequential.
    """
    sc = make_scenario(seed)
    resilience = resilience_for(sc)
    report, log = run_scenario(sc, resilient=True)

    timed = log.timed_out > 0
    assert report.n_timed_out == int(timed.sum())
    served_after_timeout = timed & log.done
    floor = log.timed_out[served_after_timeout] * resilience.timeout_s
    assert (log.sojourn_s[served_after_timeout] >= floor).all()

    # Exhausted budgets end scrubbed, not half-answered.
    exhausted = timed & ~log.done
    assert np.isnan(log.completion_s[exhausted]).all()
    assert (log.replica_id[exhausted] == -1).all()


@pytest.mark.parametrize("seed", SEEDS)
def test_bounded_retry_amplification(seed):
    """The storm cannot amplify load unboundedly through retries."""
    sc = make_scenario(seed)
    resilience = resilience_for(sc)
    _, log = run_scenario(sc, resilient=True)

    n_crashes = sum(1 for e in sc.plan.failures if e.kind == "crash")
    budget = resilience.retry.max_retries
    assert int(log.retries.max(initial=0)) <= budget + n_crashes
    # Each attempt times out at most once, and there is at most one
    # attempt beyond the last counted retry.
    assert (log.timed_out <= log.retries + 1).all()


@pytest.mark.parametrize("seed", SEEDS)
def test_hedge_needs_a_second_replica(seed):
    """Hedged requests really ran a speculative twin: the flag only ever
    appears when the fleet had somewhere else to send it, and hedging is
    accounted in the report."""
    sc = make_scenario(seed)
    report, log = run_scenario(sc, resilient=True)
    assert report.n_hedged == int(log.hedged.sum())
    if sc.n_replicas == 1:
        assert report.n_hedged == 0


def test_quiet_fleet_needs_no_defences():
    """With no faults, resilience must be a no-op observable-wise: no
    timeouts, no trips, nothing shed, everything served."""
    sc = make_scenario(3, crashes=False)
    cluster = build_cluster(sc, resilient=True, faults=False, hedging=False)
    report, log = cluster.serve_log(
        sc.images[sc.ids], sc.arrival_s, labels=sc.labels[sc.ids]
    )
    assert report.n_served == sc.n
    assert report.n_timed_out == 0
    assert report.n_breaker_trips == 0
    assert report.n_batch_failures == 0
    assert (log.retries == 0).all()
