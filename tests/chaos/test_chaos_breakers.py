"""Circuit-breaker safety and liveness at the fleet level.

Safety: a replica failing most of its batches gets ejected (the breaker
trips) instead of absorbing retries forever.  Liveness: ejection is
temporary — after the cooldown the breaker re-admits probes, and a
recovered replica rejoins the rotation.  Both directions are also
pinned at the unit level in ``tests/faults/test_breaker.py``; here they
run end-to-end through the balancer.
"""

import numpy as np

from conftest import SumBackend, build_cluster, make_scenario

from repro.cluster import Cluster
from repro.faults import (
    BreakerConfig,
    FaultPlan,
    ResilienceConfig,
    RetryPolicy,
    flaky_window,
)
from repro.serving.arrivals import poisson_arrivals


def _flaky_fleet(p_fail: float, n: int = 400):
    """Two equal replicas, replica 0 flaky at ``p_fail`` for the whole trace."""
    rng = np.random.default_rng(11)
    images = rng.random((32, 1, 4, 4)).astype(np.float32)
    ids = rng.integers(0, 32, size=n)
    backends = [SumBackend(), SumBackend()]
    rate = 0.5 * sum(1.0 / b.mean_service_s(batch_size=8) for b in backends)
    arrival_s = poisson_arrivals(rate, n, rng=rng)
    horizon = float(arrival_s[-1]) + 1.0
    plan = FaultPlan(faults=flaky_window(0, 0.0, horizon, p_fail), seed=5)
    return images, ids, arrival_s, plan


def _resilience(cooldown_s: float = 0.05) -> ResilienceConfig:
    return ResilienceConfig(
        timeout_s=0.25,
        retry=RetryPolicy(max_retries=3, base_backoff_s=0.002, max_backoff_s=0.01),
        hedge_delay_s=None,
        breaker=BreakerConfig(
            window_s=0.1,
            min_samples=6,
            error_threshold=0.5,
            cooldown_s=cooldown_s,
            half_open_probes=2,
        ),
    )


def test_breaker_trips_on_a_flaky_replica():
    """Safety: sustained batch failures eject the replica, and the
    healthy twin absorbs the traffic — most served requests must have
    finished on replica 1."""
    images, ids, arrival_s, plan = _flaky_fleet(p_fail=0.9)
    cluster = Cluster(
        [SumBackend(), SumBackend()],
        policy="round-robin",
        faults=plan,
        resilience=_resilience(),
        max_batch_size=8,
        max_wait_s=0.004,
        cache_capacity=0,
        rng=0,
    )
    report, log = cluster.serve_log(images[ids], arrival_s)
    assert report.n_breaker_trips >= 1
    assert report.n_batch_failures > 0
    served_on = log.replica_id[log.done]
    assert (served_on == 1).sum() > (served_on == 0).sum()
    # The whole point: the fleet stays available despite one member
    # failing 90% of its work.
    assert report.availability > 0.9


def test_breaker_readmits_after_recovery():
    """Liveness: once the flaky window closes, the cooled-down breaker
    probes the replica and puts it back in rotation — replica 0 serves
    real traffic in the healthy second half."""
    rng = np.random.default_rng(13)
    images = rng.random((32, 1, 4, 4)).astype(np.float32)
    n = 800
    ids = rng.integers(0, 32, size=n)
    backends = [SumBackend(), SumBackend()]
    rate = 0.5 * sum(1.0 / b.mean_service_s(batch_size=8) for b in backends)
    arrival_s = poisson_arrivals(rate, n, rng=rng)
    half = float(arrival_s[n // 2])
    plan = FaultPlan(faults=flaky_window(0, 0.0, half, 0.9), seed=5)
    cluster = Cluster(
        backends,
        policy="round-robin",
        faults=plan,
        resilience=_resilience(cooldown_s=0.02),
        max_batch_size=8,
        max_wait_s=0.004,
        cache_capacity=0,
        rng=0,
    )
    report, log = cluster.serve_log(images[ids], arrival_s)
    assert report.n_breaker_trips >= 1
    late = log.arrival_s > half + 0.1
    served_late_on_0 = int((log.done & late & (log.replica_id == 0)).sum())
    assert served_late_on_0 > 0, "recovered replica never re-admitted"


def test_no_false_trips_on_a_healthy_fleet():
    """A storm-free fleet under the same breaker config never ejects
    anyone (seeds 0..4: no tuned special case)."""
    for seed in range(5):
        sc = make_scenario(seed, crashes=False)
        cluster = build_cluster(sc, resilient=True, faults=False, hedging=False)
        report, _ = cluster.serve_log(sc.images[sc.ids], sc.arrival_s)
        assert report.n_breaker_trips == 0
        assert report.availability == 1.0
