"""Oracle-vs-live parity under random fault storms.

The precomputed-oracle contract (``tests/sim``, ``tests/scheduling``)
must survive the messiest path in the codebase: timeouts, hedges,
retries, breaker ejections, flaky failures, partitions, and crashes all
replay *field for field* identically whether predictions come from live
inference or the precomputed table — 20 random schedules, every SoA
column compared exactly.
"""

import dataclasses
import math

import numpy as np
import pytest

from conftest import make_scenario, run_scenario

SEEDS = range(20)

_COLUMNS = (
    "arrival_s",
    "completion_s",
    "dispatch_s",
    "prediction",
    "route",
    "requested_route",
    "batch_size",
    "replica_id",
    "degraded",
    "retries",
    "req_class",
    "timed_out",
    "hedged",
)


def assert_log_equal(live, orc):
    """Column-by-column SoA equality with NaN == NaN."""
    for name in _COLUMNS:
        a, b = getattr(live, name), getattr(orc, name)
        assert np.array_equal(a, b, equal_nan=a.dtype.kind == "f"), name


def assert_report_equal(live, orc, skip=()):
    """Field-by-field dataclass equality with NaN == NaN."""
    assert type(live) is type(orc)
    for f in dataclasses.fields(live):
        if f.name in skip:
            continue
        a, b = getattr(live, f.name), getattr(orc, f.name)
        if isinstance(a, float) and math.isnan(a):
            assert isinstance(b, float) and math.isnan(b), f.name
        else:
            assert a == b, f"{f.name}: live={a!r} oracle={b!r}"


@pytest.mark.parametrize("seed", SEEDS)
def test_chaos_parity(seed):
    sc = make_scenario(seed)
    live_report, live_log = run_scenario(sc, resilient=True, oracle=False)
    orc_report, orc_log = run_scenario(sc, resilient=True, oracle=True)
    assert_log_equal(live_log, orc_log)
    assert_report_equal(live_report, orc_report)


@pytest.mark.parametrize("seed", SEEDS[:6])
def test_naive_arm_parity_too(seed):
    """The undefended arm (faults, no resilience) replays identically as
    well — the chaos experiment's baseline is as deterministic as its
    hero."""
    sc = make_scenario(seed)
    _, live_log = run_scenario(sc, resilient=False, oracle=False)
    _, orc_log = run_scenario(sc, resilient=False, oracle=True)
    assert_log_equal(live_log, orc_log)
