"""Randomized fault storms for the chaos-invariant harness.

Mirrors ``tests/scheduling/``: every test runs against
:func:`make_scenario` traces — a toy fleet (pixel-sum models, so
predictions are checkable and free), a Poisson trace, and a seeded
:func:`~repro.faults.fault_storm` of slowdowns, partitions, flaky
windows, and crash/recover cycles.  The generator randomizes fleet
size, service rates, batching knobs, load, and the storm itself — the
invariants must hold for *all* of them, not for one tuned storm.
"""

from dataclasses import dataclass

import numpy as np

from repro.cluster import Cluster
from repro.faults import (
    BreakerConfig,
    FaultPlan,
    ResilienceConfig,
    RetryPolicy,
    fault_storm,
    hedge_delay_for,
)
from repro.serving.arrivals import poisson_arrivals
from repro.serving.backends import BatchTiming, InferenceBackend
from repro.sim import oracle_backend

N_POOL = 48


class SumBackend(InferenceBackend):
    """Deterministic toy model: label = pixel-sum mod 10."""

    name = "sum"

    def __init__(self, per_item_s=0.001, overhead_s=0.001):
        super().__init__(BatchTiming(overhead_s=overhead_s, per_item_s=per_item_s))

    def predict(self, images, decision=None):
        return (images.reshape(images.shape[0], -1).sum(axis=1)).astype(np.int64) % 10


@dataclass
class Scenario:
    """One randomized trace + fault storm, plus everything to replay it."""

    seed: int
    images: np.ndarray
    labels: np.ndarray
    ids: np.ndarray
    arrival_s: np.ndarray
    per_item: tuple
    max_batch: int
    max_wait_s: float
    plan: FaultPlan

    @property
    def n(self) -> int:
        return len(self.ids)

    @property
    def n_replicas(self) -> int:
        return len(self.per_item)

    def backends(self):
        """A fresh toy fleet (one backend per replica)."""
        return [SumBackend(per_item_s=p) for p in self.per_item]

    def service_scale_s(self) -> float:
        """Worst-case healthy batch time — the yardstick for timeouts."""
        backends = self.backends()
        return self.max_wait_s + max(
            b.mean_service_s(batch_size=self.max_batch) * self.max_batch
            for b in backends
        )


def make_scenario(seed, n_requests=None, crashes=True) -> Scenario:
    """Build one randomized trace with a seeded mixed fault storm."""
    rng = np.random.default_rng(seed)
    n = int(rng.integers(300, 600)) if n_requests is None else n_requests
    n_replicas = int(rng.integers(2, 5))  # >= 2: hedging needs a second replica
    per_item = tuple(float(rng.uniform(0.0004, 0.0012)) for _ in range(n_replicas))
    max_batch = int(rng.choice([4, 8, 16]))
    max_wait_s = float(rng.uniform(0.002, 0.006))
    backends = [SumBackend(per_item_s=p) for p in per_item]
    capacity = sum(1.0 / b.mean_service_s(batch_size=max_batch) for b in backends)
    load = float(rng.uniform(0.5, 0.9))  # chaos, not overload, is the stressor

    images = rng.random((N_POOL, 1, 4, 4)).astype(np.float32)
    labels = (images.reshape(N_POOL, -1).sum(axis=1)).astype(np.int64) % 10
    ids = rng.integers(0, N_POOL, size=n)
    arrival_s = poisson_arrivals(load * capacity, n, rng=rng)
    horizon = float(arrival_s[-1]) + 0.05
    plan = fault_storm(
        n_replicas,
        horizon,
        rng=rng,
        mean_window_s=horizon / 8.0,
        crash_mtbf_s=4.0 * horizon if crashes else None,
        crash_mttr_s=horizon / 6.0 if crashes else None,
    )
    return Scenario(
        seed=seed,
        images=images,
        labels=labels,
        ids=ids,
        arrival_s=arrival_s,
        per_item=per_item,
        max_batch=max_batch,
        max_wait_s=max_wait_s,
        plan=plan,
    )


def resilience_for(sc: Scenario, hedging=True) -> ResilienceConfig:
    """Resilience knobs scaled to the scenario's healthy service times.

    The timeout sits a few healthy-batch-times out: far enough that a
    healthy replica never trips it, close enough that a 4–16× straggler
    or an unhealed partition does.
    """
    tick = sc.service_scale_s()
    return ResilienceConfig(
        timeout_s=6.0 * tick,
        retry=RetryPolicy(
            max_retries=2,
            base_backoff_s=sc.max_wait_s,
            backoff_mult=2.0,
            max_backoff_s=4.0 * sc.max_wait_s,
            jitter_frac=0.25,
        ),
        hedge_delay_s=(
            hedge_delay_for(sc.backends(), sc.max_batch, sc.max_wait_s)
            if hedging
            else None
        ),
        breaker=BreakerConfig(
            window_s=8.0 * tick,
            min_samples=6,
            error_threshold=0.5,
            cooldown_s=4.0 * tick,
            half_open_probes=2,
        ),
    )


def build_cluster(
    sc: Scenario,
    resilient: bool = True,
    oracle: bool = False,
    faults: bool = True,
    hedging: bool = True,
) -> Cluster:
    """Assemble one chaos arm: same storm, with or without defences."""
    backends = sc.backends()
    if oracle:
        backends = [oracle_backend(b, sc.images) for b in backends]
    return Cluster(
        backends,
        policy="least-outstanding",
        faults=sc.plan if faults else None,
        resilience=resilience_for(sc, hedging=hedging) if resilient else None,
        slo_s=4.0 * sc.service_scale_s(),
        max_batch_size=sc.max_batch,
        max_wait_s=sc.max_wait_s,
        cache_capacity=0,
        rng=sc.seed,
    )


def run_scenario(sc, resilient=True, oracle=False, faults=True, hedging=True):
    """Serve one chaos arm; returns (report, SoA request log)."""
    cluster = build_cluster(
        sc, resilient=resilient, oracle=oracle, faults=faults, hedging=hedging
    )
    stream = sc.ids if oracle else sc.images[sc.ids]
    return cluster.serve_log(stream, sc.arrival_s, labels=sc.labels[sc.ids])
