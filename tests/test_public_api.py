"""Public API surface tests: everything exported must import and work."""

import importlib

import pytest

PACKAGES = [
    "repro",
    "repro.nn",
    "repro.nn.layers",
    "repro.nn.optim",
    "repro.data",
    "repro.data.synth",
    "repro.models",
    "repro.core",
    "repro.baselines",
    "repro.hw",
    "repro.parallel",
    "repro.serving",
    "repro.sim",
    "repro.cluster",
    "repro.faults",
    "repro.netsim",
    "repro.offload",
    "repro.eval",
    "repro.experiments",
    "repro.utils",
]


@pytest.mark.parametrize("package", PACKAGES)
def test_package_imports(package):
    importlib.import_module(package)


@pytest.mark.parametrize("package", PACKAGES)
def test_all_exports_resolve(package):
    mod = importlib.import_module(package)
    for name in getattr(mod, "__all__", []):
        assert hasattr(mod, name), f"{package}.__all__ lists missing name {name!r}"


def test_version_string():
    import repro

    assert repro.__version__.count(".") == 2


def test_top_level_workflow_symbols():
    from repro import (
        CBNet,
        BranchyLeNet,
        ConvertingAutoencoder,
        LeNet,
        LightweightClassifier,
        PipelineConfig,
        TrainConfig,
        build_cbnet_pipeline,
        load_dataset,
        train_baseline_lenet,
    )

    # Construction-level sanity only (training covered elsewhere).
    assert PipelineConfig(dataset="mnist").dataset == "mnist"
    assert TrainConfig().epochs > 0
