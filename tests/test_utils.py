"""Unit tests for shared utilities (rng, timing, cache, logging)."""

import time

import numpy as np
import pytest

from repro.utils.cache import ArtifactCache, memoize_to_disk, stable_hash
from repro.utils.logging import get_logger, set_verbosity
from repro.utils.rng import as_generator, derive_seed, hash_string, spawn_rng, stratified_indices
from repro.utils.timing import Timer, repeat_timed, timed


class TestRng:
    def test_as_generator_from_int_deterministic(self):
        a = as_generator(7).random(4)
        b = as_generator(7).random(4)
        assert np.allclose(a, b)

    def test_as_generator_passthrough(self):
        gen = np.random.default_rng(0)
        assert as_generator(gen) is gen

    def test_spawn_independent(self):
        parent = as_generator(0)
        children = spawn_rng(parent, 3)
        draws = [c.random(5) for c in children]
        assert not np.allclose(draws[0], draws[1])
        assert not np.allclose(draws[1], draws[2])

    def test_spawn_negative_raises(self):
        with pytest.raises(ValueError):
            spawn_rng(as_generator(0), -1)

    def test_derive_seed_stable_and_distinct(self):
        assert derive_seed(1, "a", "b") == derive_seed(1, "a", "b")
        assert derive_seed(1, "a") != derive_seed(1, "b")
        assert derive_seed(1, "a") != derive_seed(2, "a")

    def test_hash_string_deterministic(self):
        assert hash_string("repro") == hash_string("repro")
        assert hash_string("a") != hash_string("b")

    def test_stratified_indices_balanced(self):
        labels = np.repeat(np.arange(5), 20)
        idx = stratified_indices(labels, 0.5, as_generator(0))
        counts = np.bincount(labels[idx], minlength=5)
        assert counts.min() == counts.max() == 10

    def test_stratified_invalid_fraction(self):
        with pytest.raises(ValueError):
            stratified_indices(np.zeros(4), 0.0, as_generator(0))


class TestTiming:
    def test_timer_accumulates(self):
        t = Timer()
        with t:
            time.sleep(0.01)
        with t:
            time.sleep(0.01)
        assert t.elapsed >= 0.02
        assert len(t.laps) == 2
        assert t.mean == pytest.approx(t.elapsed / 2)

    def test_timer_reset(self):
        t = Timer()
        with t:
            pass
        t.reset()
        assert t.elapsed == 0.0 and not t.laps

    def test_timed_sink(self):
        out = []
        with timed(out.append):
            time.sleep(0.005)
        assert out and out[0] >= 0.005

    def test_repeat_timed(self):
        result, mean = repeat_timed(lambda: 42, repeats=3)
        assert result == 42
        assert mean >= 0.0

    def test_repeat_invalid(self):
        with pytest.raises(ValueError):
            repeat_timed(lambda: 1, repeats=0)


class TestCache:
    def test_stable_hash_order_independent(self):
        assert stable_hash({"a": 1, "b": 2}) == stable_hash({"b": 2, "a": 1})

    def test_stable_hash_distinguishes(self):
        assert stable_hash({"a": 1}) != stable_hash({"a": 2})

    def test_artifact_roundtrip(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        key = {"exp": "t", "seed": 1}
        assert cache.get(key) is None
        cache.put(key, {"x": np.arange(3)})
        loaded = cache.get(key)
        assert np.allclose(loaded["x"], [0, 1, 2])

    def test_get_or_compute_called_once(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        calls = []

        def compute():
            calls.append(1)
            return "value"

        assert cache.get_or_compute("k", compute) == "value"
        assert cache.get_or_compute("k", compute) == "value"
        assert len(calls) == 1

    def test_corrupt_entry_is_miss(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        path = cache.path_for("key")
        path.write_bytes(b"not a pickle")
        assert cache.get("key") is None

    def test_memoize_to_disk(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        calls = []

        @memoize_to_disk
        def fn(x):
            calls.append(x)
            return x + 1

        assert fn(1) == 2
        assert fn(1) == 2
        assert fn(2) == 3
        assert calls == [1, 2]


class TestLogging:
    def test_get_logger_namespaced(self):
        logger = get_logger("core.trainer")
        assert logger.name == "repro.core.trainer"

    def test_set_verbosity(self):
        import logging

        set_verbosity("DEBUG")
        assert logging.getLogger("repro").level == logging.DEBUG
        set_verbosity(logging.WARNING)

    def test_set_verbosity_rejects_unknown_level(self):
        import logging

        with pytest.raises(ValueError, match="unknown log level"):
            set_verbosity("LOUD")
        # Non-level attributes of the logging module must not slip through.
        with pytest.raises(ValueError, match="unknown log level"):
            set_verbosity("getLogger")
        # Case-insensitive strings still work.
        set_verbosity("warning")
        assert logging.getLogger("repro").level == logging.WARNING
