# Developer entry points for the CBNet reproduction.
#
#   make test         tier-1 unit/integration suite (the CI gate)
#   make fleet-smoke  cluster-layer smoke: policies/autoscaler/failures on
#                     toy fleets (no training, seconds)
#   make offload-smoke  offload-layer smoke: network links, partition
#                     planner, policies, EdgeTier on toy models
#   make sim-smoke    simulation-core smoke: oracle live-vs-table parity,
#                     SoA records, vectorized arrival regressions
#   make tenants-smoke  multi-tenant smoke: scheduler invariants, priority
#                     batcher, FIFO-vs-priority experiment on toy fleets
#   make chaos-smoke  robustness smoke: chaos invariants under random fault
#                     storms, fault/breaker/retry units, chaos experiment
#   make netchaos-smoke  network-chaos smoke: netsim units (sessions, AIMD,
#                     shared links), link-storm invariants, netchaos verdict
#   make obs-smoke    observability smoke: span-tree well-formedness,
#                     metrics/SLO units, oracle-vs-live telemetry parity
#   make prof-smoke   profiler smoke: phase-tree determinism + exports on
#                     toy fleets, then a profiled experiment run writing
#                     a sample flamegraph to benchmarks/results/
#   make bench-smoke  fast benchmark subset, incl. the serving engine
#   make bench        full benchmark suite (regenerates benchmarks/results/)
#   make bench-record record BENCH_<n>.json medians (substrate + serving),
#                     plus a profiled pass storing phase shares (--profile)
#   make bench-check  fail on >15% median regression vs last BENCH_<n>.json
#                     (re-runs failing suites under the phase profiler)
#   make bench-report render benchmarks/results/bench_history.md from the
#                     full BENCH_<n>.json trajectory, changepoints marked
#   make docs-check   README code blocks compile + docstring coverage
#   make docs-run     additionally *execute* the README blocks (trains on
#                     first run; disk-cached after)
#   make lint         ruff, when installed

PYTHON ?= python
export PYTHONPATH := src

.PHONY: test fleet-smoke offload-smoke sim-smoke tenants-smoke chaos-smoke netchaos-smoke obs-smoke prof-smoke bench-smoke bench bench-record bench-check bench-report docs-check docs-run lint

test:
	$(PYTHON) -m pytest tests -x -q

fleet-smoke:
	$(PYTHON) -m pytest tests/cluster tests/experiments/test_fleet.py \
	    tests/serving/test_engine_edge_cases.py -q

offload-smoke:
	$(PYTHON) -m pytest tests/offload tests/hw/test_network.py \
	    tests/serving/test_router_edge_cases.py -q

sim-smoke:
	$(PYTHON) -m pytest tests/sim tests/serving/test_arrivals.py -q

tenants-smoke:
	$(PYTHON) -m pytest tests/scheduling tests/serving/test_priority_batcher.py \
	    tests/experiments/test_tenants.py -q

# tests/cluster is deliberately absent here: it carries its own
# conftest.py, and pytest resolves `from conftest import ...` to the
# wrong directory when two conftest-bearing dirs share one invocation.
chaos-smoke:
	$(PYTHON) -m pytest tests/chaos tests/faults \
	    tests/experiments/test_chaos.py -q

# Network chaos: netsim units (sessions/AIMD/shared links/transport),
# link-storm invariants over the offload fleet, and the netchaos
# experiment's strict naive-vs-resilient verdict.
netchaos-smoke:
	$(PYTHON) -m pytest tests/netsim tests/chaos/test_netchaos_invariants.py \
	    tests/offload/test_session_offload.py \
	    tests/experiments/test_netchaos.py -q

# tests/obs also carries its own conftest.py (see the chaos-smoke note),
# so it gets a standalone invocation.
obs-smoke:
	$(PYTHON) -m pytest tests/obs -q

# Profiler smoke: toy-fleet tests first, then one profiled fast
# experiment run whose speedscope/collapsed exports land under
# benchmarks/results/ (CI uploads them as the sample flamegraph).
# tests/tools gets its own invocation — it carries a conftest.py too
# (see the chaos-smoke note).
prof-smoke:
	$(PYTHON) -m pytest tests/obs/test_prof.py tests/obs/test_exports.py -q
	$(PYTHON) -m pytest tests/tools -q
	$(PYTHON) -m repro.experiments.cli prof --fast \
	    --prof-out benchmarks/results/profile.speedscope.json

bench-smoke:
	$(PYTHON) -m pytest benchmarks/test_table1_architecture.py \
	    benchmarks/test_serving_tail_latency.py \
	    benchmarks/test_serving_engine.py \
	    benchmarks/test_fleet_cluster.py \
	    benchmarks/test_offload_split.py -q

bench:
	$(PYTHON) -m pytest benchmarks -q

bench-record:
	$(PYTHON) tools/bench_compare.py record --profile

bench-check:
	$(PYTHON) tools/bench_compare.py check

bench-report:
	$(PYTHON) tools/bench_history.py

docs-check:
	$(PYTHON) tools/check_docs.py

docs-run:
	$(PYTHON) tools/check_docs.py --run

lint:
	@if command -v ruff >/dev/null 2>&1; then \
	    ruff check src tests benchmarks examples tools; \
	else \
	    echo "ruff not installed; skipping (config in ruff.toml)"; \
	fi
