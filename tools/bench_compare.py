#!/usr/bin/env python
"""Benchmark recording and regression gating (`make bench-record/bench-check`).

Wraps pytest-benchmark to give the repo a persistent performance
trajectory:

* ``record`` runs the benchmark suites, extracts the per-test **median**
  runtimes, and writes them to ``BENCH_<n>.json`` at the repo root
  (``n`` = one past the highest existing index).  ``BENCH_0.json`` is
  the first recorded baseline (the PR that introduced the compiled
  inference fast path).
* ``check`` re-runs the same suites and fails (exit 1) if any test's
  median regressed by more than ``--rtol`` (default 15%) against the
  *latest* recorded ``BENCH_<n>.json``.  Tests present in only one of
  the two sets are reported but never fail the gate (benchmarks come
  and go); absolute times across machines are not comparable, so CI
  runs ``check`` in smoke mode mainly to prove the harness itself works.

Usage::

    python tools/bench_compare.py record [--suites ...]
    python tools/bench_compare.py check  [--suites ...] [--rtol 0.15]
"""

from __future__ import annotations

import argparse
import json
import os
import re
import subprocess
import sys
import tempfile
import time
from pathlib import Path

REPO = Path(__file__).resolve().parents[1]

#: Suites whose medians form the recorded baseline: the substrate hot
#: kernels (conv/GEMM/pooling + fastpath inference), the serving engine
#: (throughput / tail latency of the batched server), the fleet cluster
#: (end-to-end policy grid + autoscaler + failure studies), the offload
#: layer (split sweep + policy grid + codec study), the
#: million-request scale bench over the oracle simulation core, the
#: million-request chaos storm through the resilience layer, and the
#: observability overhead gate (traced vs untraced 1M-request medians).
DEFAULT_SUITES = (
    "benchmarks/test_substrate_kernels.py",
    "benchmarks/test_serving_engine.py",
    "benchmarks/test_fleet_cluster.py",
    "benchmarks/test_offload_split.py",
    "benchmarks/test_million_requests.py",
    "benchmarks/test_tenants_scheduling.py",
    "benchmarks/test_chaos_resilience.py",
    "benchmarks/test_obs_overhead.py",
)

_BENCH_RE = re.compile(r"^BENCH_(\d+)\.json$")


def existing_records() -> list[tuple[int, Path]]:
    """All ``BENCH_<n>.json`` files at the repo root, ordered by index."""
    records = []
    for path in REPO.iterdir():
        m = _BENCH_RE.match(path.name)
        if m:
            records.append((int(m.group(1)), path))
    return sorted(records)


def run_benchmarks(suites: list[str]) -> dict[str, float]:
    """Run ``suites`` under pytest-benchmark; return {test_id: median_s}."""
    with tempfile.NamedTemporaryFile(suffix=".json", delete=False) as tmp:
        json_path = Path(tmp.name)
    cmd = [
        sys.executable,
        "-m",
        "pytest",
        *suites,
        "-q",
        "--benchmark-only",
        f"--benchmark-json={json_path}",
    ]
    # Make `python tools/bench_compare.py ...` work from a fresh clone,
    # without requiring `pip install -e .` or the Makefile's export.
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    try:
        proc = subprocess.run(cmd, cwd=REPO, env=env)
        if proc.returncode != 0:
            raise SystemExit(f"benchmark run failed (exit {proc.returncode})")
        data = json.loads(json_path.read_text())
    finally:
        json_path.unlink(missing_ok=True)
    medians = {}
    for bench in data["benchmarks"]:
        # fullname like "benchmarks/test_substrate_kernels.py::test_conv2d_forward"
        medians[bench["fullname"]] = bench["stats"]["median"]
    return medians


def cmd_record(suites: list[str]) -> int:
    """Record a new ``BENCH_<n>.json`` baseline."""
    medians = run_benchmarks(suites)
    records = existing_records()
    index = records[-1][0] + 1 if records else 0
    out = REPO / f"BENCH_{index}.json"
    payload = {
        "schema": 1,
        "recorded_unix": int(time.time()),
        "suites": list(suites),
        "medians_s": dict(sorted(medians.items())),
    }
    out.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"recorded {len(medians)} medians -> {out.name}")
    return 0


def cmd_check(suites: list[str], rtol: float) -> int:
    """Compare a fresh run against the latest recorded baseline."""
    records = existing_records()
    if not records:
        print("no BENCH_<n>.json baseline found; run `make bench-record` first")
        return 1
    baseline_path = records[-1][1]
    baseline = json.loads(baseline_path.read_text())["medians_s"]
    medians = run_benchmarks(suites)

    failures, lines = [], []
    for name in sorted(set(baseline) | set(medians)):
        if name not in medians:
            lines.append(f"  [gone]   {name} (in {baseline_path.name} only)")
            continue
        if name not in baseline:
            lines.append(f"  [new]    {name} median={medians[name] * 1e3:.3f} ms")
            continue
        ratio = medians[name] / baseline[name]
        status = "ok"
        if ratio > 1.0 + rtol:
            status = "REGRESSED"
            failures.append(name)
        lines.append(
            f"  [{status:9s}] {name}: {baseline[name] * 1e3:.3f} -> "
            f"{medians[name] * 1e3:.3f} ms ({ratio:.2f}x)"
        )
    print(f"benchmark check vs {baseline_path.name} (rtol {rtol:.0%}):")
    print("\n".join(lines))
    if failures:
        print(f"{len(failures)} benchmark(s) regressed > {rtol:.0%}")
        return 1
    print("no regressions")
    return 0


def main() -> int:
    """CLI entry point."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("mode", choices=["record", "check"])
    parser.add_argument("--suites", nargs="+", default=list(DEFAULT_SUITES))
    parser.add_argument("--rtol", type=float, default=0.15,
                        help="allowed median slowdown before check fails")
    args = parser.parse_args()
    if args.mode == "record":
        return cmd_record(args.suites)
    return cmd_check(args.suites, args.rtol)


if __name__ == "__main__":
    raise SystemExit(main())
