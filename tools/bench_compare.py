#!/usr/bin/env python
"""Benchmark recording and regression gating (`make bench-record/bench-check`).

Wraps pytest-benchmark to give the repo a persistent performance
trajectory:

* ``record`` runs the benchmark suites, extracts the per-test **median**
  runtimes, and writes them to ``BENCH_<n>.json`` at the repo root
  (``n`` = one past the highest existing index).  ``BENCH_0.json`` is
  the first recorded baseline (the PR that introduced the compiled
  inference fast path).
* ``check`` re-runs the same suites and fails (exit 1) if any test's
  median regressed by more than ``--rtol`` (default 15%) against the
  *latest* recorded ``BENCH_<n>.json``.  Tests present in only one of
  the two sets are reported but never fail the gate (benchmarks come
  and go); absolute times across machines are not comparable, so CI
  runs ``check`` in smoke mode mainly to prove the harness itself works.

Attribution: on a regression, ``check`` re-runs the failing suites with
the :mod:`repro.obs.prof` phase profiler enabled (``REPRO_PROF=1``) and
prints where the wall-clock time went — and, when the baseline record
carries phase shares (``record --profile``), names the top regressing
phase.  Both modes also write a machine-readable JSON report next to
the console output (``--report``, default
``benchmarks/results/bench_check.json`` / ``bench_record.json``).

Usage::

    python tools/bench_compare.py record [--suites ...] [--profile]
    python tools/bench_compare.py check  [--suites ...] [--rtol 0.15] [--no-profile]
"""

from __future__ import annotations

import argparse
import json
import os
import re
import subprocess
import sys
import tempfile
import time
from pathlib import Path

REPO = Path(__file__).resolve().parents[1]

#: Suites whose medians form the recorded baseline: the substrate hot
#: kernels (conv/GEMM/pooling + fastpath inference), the serving engine
#: (throughput / tail latency of the batched server), the fleet cluster
#: (end-to-end policy grid + autoscaler + failure studies), the offload
#: layer (split sweep + policy grid + codec study), the
#: million-request scale bench over the oracle simulation core, the
#: million-request chaos storm through the resilience layer, and the
#: observability overhead gate (traced vs untraced 1M-request medians).
DEFAULT_SUITES = (
    "benchmarks/test_substrate_kernels.py",
    "benchmarks/test_serving_engine.py",
    "benchmarks/test_fleet_cluster.py",
    "benchmarks/test_offload_split.py",
    "benchmarks/test_million_requests.py",
    "benchmarks/test_tenants_scheduling.py",
    "benchmarks/test_chaos_resilience.py",
    "benchmarks/test_netchaos_storm.py",
    "benchmarks/test_obs_overhead.py",
)

_BENCH_RE = re.compile(r"^BENCH_(\d+)\.json$")


def existing_records() -> list[tuple[int, Path]]:
    """All ``BENCH_<n>.json`` files at the repo root, ordered by index."""
    records = []
    for path in REPO.iterdir():
        m = _BENCH_RE.match(path.name)
        if m:
            records.append((int(m.group(1)), path))
    return sorted(records)


def _pytest_env() -> dict[str, str]:
    # Make `python tools/bench_compare.py ...` work from a fresh clone,
    # without requiring `pip install -e .` or the Makefile's export.
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    return env


def run_benchmarks(suites: list[str]) -> dict[str, float]:
    """Run ``suites`` under pytest-benchmark; return {test_id: median_s}."""
    with tempfile.NamedTemporaryFile(suffix=".json", delete=False) as tmp:
        json_path = Path(tmp.name)
    cmd = [
        sys.executable,
        "-m",
        "pytest",
        *suites,
        "-q",
        "--benchmark-only",
        f"--benchmark-json={json_path}",
    ]
    try:
        proc = subprocess.run(cmd, cwd=REPO, env=_pytest_env())
        if proc.returncode != 0:
            raise SystemExit(f"benchmark run failed (exit {proc.returncode})")
        data = json.loads(json_path.read_text())
    finally:
        json_path.unlink(missing_ok=True)
    medians = {}
    for bench in data["benchmarks"]:
        # fullname like "benchmarks/test_substrate_kernels.py::test_conv2d_forward"
        medians[bench["fullname"]] = bench["stats"]["median"]
    return medians


def run_profiled(suites: list[str]) -> dict | None:
    """Re-run ``suites`` with the phase profiler on; return the report dict.

    Sets ``REPRO_PROF=1`` so every engine built in the child process
    attaches to one process-global :class:`repro.obs.prof.PhaseProfiler`
    whose merged report (``PhaseReport.to_dict``) is dumped at exit to
    ``REPRO_PROF_OUT``.  Profiled medians are NOT recorded — profiling
    adds measurable overhead; only the phase *shares* are meaningful.
    Returns ``None`` when the profiled run fails or records no phases.
    """
    with tempfile.NamedTemporaryFile(suffix=".json", delete=False) as tmp:
        out_path = Path(tmp.name)
    env = _pytest_env()
    env["REPRO_PROF"] = "1"
    env["REPRO_PROF_OUT"] = str(out_path)
    cmd = [sys.executable, "-m", "pytest", *suites, "-q", "--benchmark-only"]
    try:
        proc = subprocess.run(cmd, cwd=REPO, env=env)
        if proc.returncode != 0:
            return None
        payload = json.loads(out_path.read_text())
    except (OSError, json.JSONDecodeError):
        return None
    finally:
        out_path.unlink(missing_ok=True)
    return payload if payload.get("phases") else None


def _phase_lines(profile: dict, top: int = 8) -> list[str]:
    """Human lines for the top self-time phases of one profile dict."""
    sys.path.insert(0, str(REPO / "src"))
    from repro.obs.prof import PhaseReport

    report = PhaseReport.from_dict(profile)
    by_name = sorted(report.by_name().items(), key=lambda kv: kv[1][2], reverse=True)
    total = sum(s for _, (_, _, s) in by_name) or 1.0
    return [
        f"    {name:<16} {self_s:8.3f}s self ({self_s / total:5.1%}), {count} calls"
        for name, (count, _total_s, self_s) in by_name[:top]
    ]


def _write_report(path: Path, payload: dict) -> None:
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(payload, indent=2) + "\n")


def cmd_record(suites: list[str], profile: bool, report_path: Path) -> int:
    """Record a new ``BENCH_<n>.json`` baseline."""
    medians = run_benchmarks(suites)
    records = existing_records()
    index = records[-1][0] + 1 if records else 0
    out = REPO / f"BENCH_{index}.json"
    payload = {
        "schema": 1,
        "recorded_unix": int(time.time()),
        "suites": list(suites),
        "medians_s": dict(sorted(medians.items())),
    }
    if profile:
        # A second, profiled pass: medians above stay clean; the phase
        # shares give future `check` failures a baseline to diff against.
        phases = run_profiled(suites)
        if phases is not None:
            payload["phases"] = phases
            print("recorded phase profile alongside the medians")
        else:
            print("profiled pass produced no phase report (skipped)")
    out.write_text(json.dumps(payload, indent=2) + "\n")
    _write_report(report_path, {"mode": "record", "record": out.name, **payload})
    print(f"recorded {len(medians)} medians -> {out.name}")
    return 0


def cmd_check(suites: list[str], rtol: float, profile: bool, report_path: Path) -> int:
    """Compare a fresh run against the latest recorded baseline.

    On regression, re-runs the failing suites under the phase profiler
    (unless ``--no-profile``) so the failure names the engine phase the
    wall-clock time moved into, not just the slowed test.
    """
    records = existing_records()
    if not records:
        print("no BENCH_<n>.json baseline found; run `make bench-record` first")
        return 1
    baseline_path = records[-1][1]
    baseline_payload = json.loads(baseline_path.read_text())
    baseline = baseline_payload["medians_s"]
    medians = run_benchmarks(suites)

    failures, lines, results = [], [], {}
    for name in sorted(set(baseline) | set(medians)):
        if name not in medians:
            lines.append(f"  [gone]   {name} (in {baseline_path.name} only)")
            results[name] = {"status": "gone", "baseline_s": baseline[name]}
            continue
        if name not in baseline:
            lines.append(f"  [new]    {name} median={medians[name] * 1e3:.3f} ms")
            results[name] = {"status": "new", "median_s": medians[name]}
            continue
        ratio = medians[name] / baseline[name]
        status = "ok"
        if ratio > 1.0 + rtol:
            status = "REGRESSED"
            failures.append(name)
        lines.append(
            f"  [{status:9s}] {name}: {baseline[name] * 1e3:.3f} -> "
            f"{medians[name] * 1e3:.3f} ms ({ratio:.2f}x)"
        )
        results[name] = {
            "status": "regressed" if status == "REGRESSED" else "ok",
            "baseline_s": baseline[name],
            "median_s": medians[name],
            "ratio": ratio,
        }
    print(f"benchmark check vs {baseline_path.name} (rtol {rtol:.0%}):")
    print("\n".join(lines))

    report = {
        "mode": "check",
        "baseline": baseline_path.name,
        "rtol": rtol,
        "checked_unix": int(time.time()),
        "results": results,
        "failures": failures,
    }
    if failures:
        print(f"{len(failures)} benchmark(s) regressed > {rtol:.0%}")
        if profile:
            failing_suites = sorted({name.split("::", 1)[0] for name in failures})
            print(f"re-running {len(failing_suites)} failing suite(s) under the "
                  "phase profiler for attribution ...")
            profiled = run_profiled(failing_suites)
            if profiled is None:
                print("  (profiled re-run produced no phase report)")
            else:
                report["profile"] = profiled
                print("  wall-clock phases of the regressed suites (self time):")
                for line in _phase_lines(profiled):
                    print(line)
                base_profile = baseline_payload.get("phases")
                if base_profile:
                    sys.path.insert(0, str(REPO / "src"))
                    from repro.obs.prof import top_regressing_phase

                    worst = top_regressing_phase(base_profile, profiled)
                    report["top_regressing_phase"] = worst
                    print(f"  top regressing phase vs {baseline_path.name}: {worst}")
                else:
                    print(f"  ({baseline_path.name} has no recorded phases — "
                          "run `record --profile` to enable phase deltas)")
        _write_report(report_path, report)
        print(f"report -> {report_path}")
        return 1
    _write_report(report_path, report)
    print(f"no regressions (report -> {report_path})")
    return 0


def main() -> int:
    """CLI entry point."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("mode", choices=["record", "check"])
    parser.add_argument("--suites", nargs="+", default=list(DEFAULT_SUITES))
    parser.add_argument("--rtol", type=float, default=0.15,
                        help="allowed median slowdown before check fails")
    parser.add_argument("--profile", action="store_true",
                        help="record: add a profiled pass storing phase shares")
    parser.add_argument("--no-profile", action="store_true",
                        help="check: skip the profiled re-run of failing suites")
    parser.add_argument("--report", type=Path, default=None,
                        help="machine-readable JSON report path (default "
                             "benchmarks/results/bench_<mode>.json)")
    args = parser.parse_args()
    report_path = args.report or (
        REPO / "benchmarks" / "results" / f"bench_{args.mode}.json"
    )
    if args.mode == "record":
        return cmd_record(args.suites, args.profile, report_path)
    return cmd_check(args.suites, args.rtol, not args.no_profile, report_path)


if __name__ == "__main__":
    raise SystemExit(main())
