#!/usr/bin/env python
"""Bench-history analytics over the ``BENCH_<n>.json`` trajectory.

``bench_compare`` answers "did THIS run regress against the latest
baseline"; this tool answers the longitudinal questions: how has each
benchmark trended across every recorded baseline, and where did the
step changes happen?  It ingests the full ``BENCH_*.json`` sequence at
the repo root, builds one time series per test, marks **changepoints**
(a median moving by more than ``--threshold`` between consecutive
records — the PR-sized jumps, e.g. the oracle-table speedup), and
renders a markdown report (`make bench-report`)::

    python tools/bench_history.py [--out PATH] [--threshold 0.2]

The report has one table per benchmark test — index, recorded median,
ratio vs the previous record, a changepoint mark — plus a summary of
every detected changepoint sorted by magnitude.  All pure functions
take explicit inputs so the analytics are unit-testable without
touching the filesystem.
"""

from __future__ import annotations

import argparse
import json
from pathlib import Path

REPO = Path(__file__).resolve().parents[1]

#: Consecutive-record median ratio beyond which a step is a changepoint.
DEFAULT_THRESHOLD = 0.2


def load_records(repo: Path = REPO) -> list[tuple[int, dict]]:
    """All ``BENCH_<n>.json`` payloads at the repo root, index order."""
    from bench_compare import existing_records

    out = []
    for index, path in existing_records():
        payload = json.loads(path.read_text())
        out.append((index, payload))
    return out


def build_series(records: list[tuple[int, dict]]) -> dict[str, list[tuple[int, float]]]:
    """Per-test median series: ``{test_name: [(record_index, median_s)]}``.

    Test names are the pytest fullnames stored in ``medians_s``; a test
    absent from some records (benchmarks come and go) simply has gaps —
    each series carries its own record indices.
    """
    series: dict[str, list[tuple[int, float]]] = {}
    for index, payload in records:
        for name, median in payload.get("medians_s", {}).items():
            series.setdefault(name, []).append((index, float(median)))
    return series


def detect_changepoints(
    series: dict[str, list[tuple[int, float]]],
    threshold: float = DEFAULT_THRESHOLD,
) -> list[dict]:
    """Consecutive-record steps larger than ``threshold``, biggest first.

    A changepoint is a pair of *adjacent* records for one test whose
    median ratio leaves ``[1 - threshold, 1 + threshold]``.  Returns
    dicts with ``test``, ``from_index``/``to_index``, the two medians,
    ``ratio`` (new/old), and ``kind`` (``"improvement"`` if the ratio
    dropped, ``"regression"`` if it grew), sorted by step magnitude
    (``abs(log(ratio))`` — a 3x slowdown and a 3x speedup rank equal).
    """
    if threshold <= 0:
        raise ValueError(f"threshold must be positive, got {threshold}")
    points = []
    for name, values in series.items():
        for (i0, m0), (i1, m1) in zip(values, values[1:]):
            if m0 <= 0:
                continue
            ratio = m1 / m0
            if 1.0 - threshold <= ratio <= 1.0 + threshold:
                continue
            points.append(
                {
                    "test": name,
                    "from_index": i0,
                    "to_index": i1,
                    "from_s": m0,
                    "to_s": m1,
                    "ratio": ratio,
                    "kind": "improvement" if ratio < 1.0 else "regression",
                }
            )
    # log-magnitude sort; max() over the pair avoids importing math
    points.sort(key=lambda p: max(p["ratio"], 1.0 / p["ratio"]), reverse=True)
    return points


def _short(name: str) -> str:
    """``benchmarks/test_x.py::test_y`` -> ``test_x.py::test_y``."""
    return name.split("/", 1)[1] if "/" in name else name


def render_markdown(
    records: list[tuple[int, dict]],
    series: dict[str, list[tuple[int, float]]],
    changepoints: list[dict],
    threshold: float = DEFAULT_THRESHOLD,
) -> str:
    """The full bench-history report as GitHub-flavoured markdown."""
    lines = ["# Benchmark history", ""]
    if not records:
        lines.append("No `BENCH_<n>.json` records found — run `make bench-record`.")
        return "\n".join(lines) + "\n"
    first, last = records[0][0], records[-1][0]
    lines.append(
        f"{len(records)} recorded baselines (`BENCH_{first}` … `BENCH_{last}`), "
        f"{len(series)} benchmark tests, changepoint threshold ±{threshold:.0%} "
        "between consecutive records."
    )
    lines.append("")

    lines.append("## Changepoints")
    lines.append("")
    if changepoints:
        lines.append("| test | step | median | ratio | kind |")
        lines.append("|---|---|---|---|---|")
        for p in changepoints:
            lines.append(
                f"| `{_short(p['test'])}` "
                f"| BENCH_{p['from_index']} → BENCH_{p['to_index']} "
                f"| {p['from_s'] * 1e3:.1f} → {p['to_s'] * 1e3:.1f} ms "
                f"| {p['ratio']:.2f}x | {p['kind']} |"
            )
    else:
        lines.append(f"No step larger than ±{threshold:.0%} between consecutive records.")
    lines.append("")

    marked = {(p["test"], p["to_index"]) for p in changepoints}
    lines.append("## Per-test trajectories")
    for name in sorted(series):
        values = series[name]
        lines.append("")
        lines.append(f"### `{_short(name)}`")
        lines.append("")
        lines.append("| record | median | vs prev | |")
        lines.append("|---|---|---|---|")
        prev = None
        for index, median in values:
            if prev is None or prev <= 0:
                ratio_cell = "—"
            else:
                ratio_cell = f"{median / prev:.2f}x"
            mark = "**changepoint**" if (name, index) in marked else ""
            lines.append(
                f"| BENCH_{index} | {median * 1e3:.2f} ms | {ratio_cell} | {mark} |"
            )
            prev = median
    lines.append("")
    return "\n".join(lines)


def main() -> int:
    """CLI entry point (`make bench-report`)."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--out",
        type=Path,
        default=REPO / "benchmarks" / "results" / "bench_history.md",
        help="markdown report path (default benchmarks/results/bench_history.md)",
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=DEFAULT_THRESHOLD,
        help="consecutive-record ratio marking a changepoint (default 0.2)",
    )
    args = parser.parse_args()

    records = load_records()
    series = build_series(records)
    changepoints = detect_changepoints(series, args.threshold)
    report = render_markdown(records, series, changepoints, args.threshold)
    args.out.parent.mkdir(parents=True, exist_ok=True)
    args.out.write_text(report)
    n_imp = sum(1 for p in changepoints if p["kind"] == "improvement")
    n_reg = len(changepoints) - n_imp
    print(
        f"bench history: {len(records)} records, {len(series)} tests, "
        f"{len(changepoints)} changepoints ({n_imp} improvements, "
        f"{n_reg} regressions) -> {args.out}"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
