#!/usr/bin/env python
"""Documentation health check (the `make docs-check` target).

Three gates, all offline and fast:

1. the documentation suite exists (README.md, the docs/ pages) and the
   registered example scripts exist and compile;
2. every ```python code block in README.md compiles (syntax-checks the
   quickstart/serving tour without paying for training — `make test`
   and the examples exercise them for real);
3. docstring coverage: every public symbol (``__all__``) of every
   ``repro`` (sub)package that is a function or class carries a
   docstring, as does every module.

With ``--run``, the README python blocks are additionally *executed* in
order in one shared namespace (later blocks use names from earlier
ones).  The first run trains the quickstart pipeline (minutes); cached
runs take seconds — hence opt-in (`make docs-run`).

Exits non-zero with a listing of violations.
"""

from __future__ import annotations

import importlib
import inspect
import pkgutil
import re
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO / "src"))

REQUIRED_DOCS = (
    "README.md",
    "docs/architecture.md",
    "docs/performance.md",
    "docs/cluster.md",
    "docs/offload.md",
    "docs/sim.md",
    "docs/scheduling.md",
    "docs/robustness.md",
    "docs/netsim.md",
    "docs/observability.md",
)

#: Runnable walkthroughs referenced from the docs; each must exist and
#: compile (execution is covered by the layer smokes, not this gate).
REQUIRED_EXAMPLES = (
    "examples/quickstart.py",
    "examples/serving_demo.py",
    "examples/fleet_demo.py",
    "examples/offload_demo.py",
    "examples/obs_demo.py",
    "examples/prof_demo.py",
)


def check_docs_exist() -> list[str]:
    errors = [
        f"missing documentation file: {rel}"
        for rel in REQUIRED_DOCS
        if not (REPO / rel).exists()
    ]
    for rel in REQUIRED_EXAMPLES:
        path = REPO / rel
        if not path.exists():
            errors.append(f"missing example script: {rel}")
            continue
        try:
            compile(path.read_text(), rel, "exec")
        except SyntaxError as exc:
            errors.append(f"{rel} does not compile: {exc}")
    return errors


def check_readme_code_blocks(run: bool = False) -> list[str]:
    errors = []
    readme = REPO / "README.md"
    if not readme.exists():
        return errors  # reported by check_docs_exist
    blocks = re.findall(r"```python\n(.*?)```", readme.read_text(), re.DOTALL)
    if not blocks:
        errors.append("README.md contains no ```python blocks")
    compiled = []
    for i, block in enumerate(blocks):
        try:
            compiled.append(compile(block, f"README.md:python-block-{i}", "exec"))
        except SyntaxError as exc:
            errors.append(f"README.md python block {i} does not compile: {exc}")
    if run and not errors:
        namespace: dict = {}
        for i, code in enumerate(compiled):
            print(f"-- running README python block {i} --")
            try:
                exec(code, namespace)
            except Exception as exc:  # noqa: BLE001 — report, don't crash
                errors.append(f"README.md python block {i} failed at runtime: {exc!r}")
                break
    return errors


def iter_modules() -> list[str]:
    import repro

    names = ["repro"]
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        names.append(info.name)
    return names


def check_docstrings() -> list[str]:
    errors = []
    for name in iter_modules():
        module = importlib.import_module(name)
        if not (module.__doc__ or "").strip():
            errors.append(f"{name}: module has no docstring")
        for symbol in getattr(module, "__all__", []):
            obj = getattr(module, symbol, None)
            if obj is None:
                errors.append(f"{name}.{symbol}: listed in __all__ but missing")
                continue
            if not (inspect.isfunction(obj) or inspect.isclass(obj)):
                continue  # constants/instances need no docstring
            if not (inspect.getdoc(obj) or "").strip():
                errors.append(f"{name}.{symbol}: public symbol has no docstring")
    return errors


def main() -> int:
    run = "--run" in sys.argv[1:]
    errors = check_docs_exist() + check_readme_code_blocks(run=run) + check_docstrings()
    if errors:
        print(f"docs-check: {len(errors)} problem(s)")
        for err in errors:
            print(f"  - {err}")
        return 1
    n_modules = len(iter_modules())
    print(f"docs-check: OK ({n_modules} modules, all public symbols documented)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
