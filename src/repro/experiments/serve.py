"""Serving-engine experiment: the four systems under three load shapes.

Extends the paper's mean-latency comparison (Table II) to *served*
traffic: the same Zipf-skewed request stream is replayed against CBNet,
BranchyNet, the LeNet baseline, and the hybrid (router + converting-AE
hard path) on a simulated Raspberry Pi 4, under

* ``steady``   — Poisson arrivals at ~70% of BranchyNet's capacity,
* ``bursty``   — on/off-modulated arrivals with the same mean rate,
* ``overload`` — arrivals beyond even CBNet's service capacity.

The interesting column is p99 sojourn: CBNet's constant service time
keeps its tail near its mean, while BranchyNet's bimodal service time
(early vs full exit) fattens under load — the deployment-level argument
for the converting-autoencoder design.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.experiments.common import lenet_for, pipeline_for, scale_for
from repro.hw.devices import raspberry_pi4
from repro.hw.latency import branchynet_expected_latency, cbnet_latency
from repro.serving.arrivals import bursty_arrivals, poisson_arrivals, zipf_popularity
from repro.serving.backends import (
    BranchyNetBackend,
    CBNetBackend,
    HybridBackend,
    LeNetBackend,
)
from repro.serving.engine import Server, ServingReport, comparison_table
from repro.utils.rng import as_generator, derive_seed

__all__ = ["SCENARIOS", "ServingComparison", "run_serving_comparison"]

SCENARIOS = ("steady", "bursty", "overload")


@dataclass
class ServingComparison:
    """All backends × all scenarios, plus the context that sized the load."""

    dataset: str
    device: str
    n_requests: int
    exit_rate: float
    reports: dict[str, list[ServingReport]]

    def render(self) -> str:
        blocks = []
        for scenario, reports in self.reports.items():
            rate = reports[0].arrival_rate_hz
            title = (
                f"Serving engine ({self.dataset}, {self.device}) — {scenario} "
                f"@ {rate:.0f} req/s, exit rate {self.exit_rate:.0%}"
            )
            blocks.append(comparison_table(reports, title).render())
        return "\n\n".join(blocks)

    def report_for(self, scenario: str, backend: str) -> ServingReport:
        """Look up one cell of the comparison grid."""
        for report in self.reports[scenario]:
            if report.backend == backend:
                return report
        raise KeyError(f"no report for backend {backend!r} in scenario {scenario!r}")


def run_serving_comparison(
    fast: bool = True,
    seed: int = 0,
    dataset: str = "mnist",
    scenarios: tuple[str, ...] = SCENARIOS,
    n_requests: int | None = None,
    max_batch_size: int = 16,
    max_wait_s: float = 0.004,
    cache_capacity: int = 256,
    n_workers: int = 1,
    live: bool = False,
) -> ServingComparison:
    """Serve identical request streams through every backend and compare.

    The request stream samples test images with Zipf popularity (hot
    images repeat, so the LRU result cache participates) and every
    backend of one scenario replays the *same* arrival trace, making the
    sojourn percentiles directly comparable.

    By default each backend is wrapped in the precomputed inference
    oracle (:func:`repro.sim.oracle_backend`): one batched pass over the
    unique test images replaces per-micro-batch model calls in all
    ``scenarios × backends`` runs at identical reported metrics.
    ``live=True`` keeps real in-loop inference (the equivalence tests'
    reference path).
    """
    unknown = set(scenarios) - set(SCENARIOS)
    if unknown:
        raise ValueError(f"unknown scenarios: {sorted(unknown)} (choose from {SCENARIOS})")
    scale = scale_for(fast)
    artifacts = pipeline_for(dataset, scale, seed=seed)
    lenet = lenet_for(dataset, scale, seed=seed)
    device = raspberry_pi4()
    test = artifacts.datasets["test"]

    backends = [
        CBNetBackend(artifacts.cbnet, device),
        BranchyNetBackend(artifacts.branchynet, device),
        LeNetBackend(lenet, device),
        HybridBackend(artifacts.cbnet, artifacts.branchynet, device),
    ]

    if n_requests is None:
        n_requests = 2000 if fast else 5000
    # One shared image stream: Zipf-skewed repeats over the test set.
    stream_rng = as_generator(derive_seed(seed, dataset, "serving-stream"))
    indices = zipf_popularity(len(test.images), n_requests, exponent=0.9, rng=stream_rng)
    labels = test.labels[indices]
    if live:
        images = test.images[indices]
        exit_rate = artifacts.branchynet.infer(test.images).early_exit_rate
    else:
        # Oracle mode: the stream carries sample ids; each backend is a
        # table over the unique test images (memoized, so the four
        # backends pay at most four precomputation passes total).  The
        # BranchyNet table's gate column is the same stem+branch pass
        # `infer` would run, so the exit-rate statistic (which sizes the
        # arrival rates below) comes for free — and bit-identically.
        from repro.sim import oracle_backend

        backends = [oracle_backend(b, test.images) for b in backends]
        images = indices
        gated = next(b for b in backends if b.name == "branchynet")
        exit_rate = float(gated.table.easy.mean())

    t_branchy = branchynet_expected_latency(
        artifacts.branchynet, device, exit_rate
    ).expected
    t_cbnet = cbnet_latency(artifacts.cbnet, device).total

    def arrivals_for(scenario: str) -> np.ndarray:
        rng = as_generator(derive_seed(seed, dataset, f"serving-{scenario}"))
        if scenario == "steady":
            return poisson_arrivals(0.7 / t_branchy, n_requests, rng=rng)
        if scenario == "bursty":
            return bursty_arrivals(
                0.45 / t_branchy, 1.35 / t_branchy, n_requests, rng=rng
            )
        # overload: sized so that even after the cache absorbs the hot
        # items, the miss stream alone exceeds CBNet's service capacity —
        # the queue grows for everyone and the report shows by how much.
        return poisson_arrivals(6.0 / t_cbnet, n_requests, rng=rng)

    reports: dict[str, list[ServingReport]] = {}
    for scenario in scenarios:
        arrival_s = arrivals_for(scenario)
        row = []
        for backend in backends:
            server = Server(
                backend,
                max_batch_size=max_batch_size,
                max_wait_s=max_wait_s,
                n_workers=n_workers,
                cache_capacity=cache_capacity,
            )
            row.append(server.serve(images, arrival_s, labels=labels, scenario=scenario))
        reports[scenario] = row
    return ServingComparison(
        dataset=dataset,
        device=device.name,
        n_requests=n_requests,
        exit_rate=exit_rate,
        reports=reports,
    )
