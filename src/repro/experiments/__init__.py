"""`repro.experiments` — one module per table/figure of the paper.

=================  ================================================
module             reproduces
=================  ================================================
``table1``         Table I  — converting-AE architectures
``fig3``           Fig. 3   — BranchyNet speedup vs hard fraction
``table2``         Table II — latency / energy / accuracy grid
``fig5``           Fig. 5   — baseline comparison on MNIST / Pi 4
``scalability``    Figs 6-8 — dataset-size scaling per device
``ablations``      DESIGN.md §5 — design-choice sweeps
``serve``          extension — batched serving engine under load
=================  ================================================

Every experiment takes ``fast=True`` for a down-scaled run (small
datasets, few epochs) and ``fast=False`` for the paper-scale run, and
returns a dataclass of plain numbers plus a ``render()`` string.
"""

from repro.experiments.common import ExperimentScale, scale_for
from repro.experiments.table1 import run_table1
from repro.experiments.fig3 import run_fig3
from repro.experiments.table2 import run_table2
from repro.experiments.fig5 import run_fig5
from repro.experiments.scalability import run_scalability
from repro.experiments.ablations import (
    run_bottleneck_ablation,
    run_activation_ablation,
    run_threshold_sweep,
    run_hard_fraction_sweep,
)
from repro.experiments.serve import run_serving_comparison

__all__ = [
    "ExperimentScale",
    "scale_for",
    "run_table1",
    "run_fig3",
    "run_table2",
    "run_fig5",
    "run_scalability",
    "run_bottleneck_ablation",
    "run_activation_ablation",
    "run_threshold_sweep",
    "run_hard_fraction_sweep",
    "run_serving_comparison",
]
