"""Phase-attribution profiling study: where does the wall-clock go?

The payoff demo for :mod:`repro.obs.prof`: run the full cluster engine
over a seeded trace with a :class:`~repro.obs.prof.PhaseProfiler`
attached and render the resulting phase tree — how much *host* time the
event loop spent ingesting arrivals, forming batches, dispatching,
completing, and building the report.  This is wall-clock attribution of
the simulator itself (the virtual clock is untouched), so it answers
"which engine phase should the next optimisation PR target".

With ``--prof-out`` the phase tree is also exported as speedscope JSON
(open at https://www.speedscope.app) plus a Brendan-Gregg collapsed
stack file next to it (``<out>.collapsed``) for ``flamegraph.pl``.

Determinism mirrors the other studies: the profiled run produces
RequestLogs identical to an unprofiled run from the same seed — the
profiler only reads the host clock, it never touches simulation state.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cluster.engine import Cluster, ClusterReport
from repro.experiments.chaos import _default_fleet
from repro.obs.prof import PhaseProfiler, PhaseReport
from repro.serving.arrivals import poisson_arrivals, zipf_popularity
from repro.serving.backends import InferenceBackend
from repro.sim import oracle_backend
from repro.utils.rng import as_generator, derive_seed

__all__ = ["ProfStudy", "run_prof_study"]


@dataclass
class ProfStudy:
    """One profiled cluster run: the phase tree plus its provenance."""

    dataset: str
    n_requests: int
    n_replicas: int
    report: ClusterReport
    phases: PhaseReport
    prof_path: str | None = None
    collapsed_path: str | None = None

    def render(self) -> str:
        """Phase-attribution table plus the simulated outcome it profiled."""
        lines = [
            (
                f"Phase profile ({self.dataset}) — {self.n_requests} requests "
                f"across {self.n_replicas} replicas, host wall-clock "
                f"{self.phases.total_s:.3f}s"
            ),
            self.phases.render(),
            (
                f"simulated outcome unchanged by profiling: availability "
                f"{self.report.availability:.1%}, p99 "
                f"{self.report.p99_s * 1e3:.1f} ms"
            ),
        ]
        if self.prof_path is not None:
            lines.append(
                f"speedscope profile -> {self.prof_path} "
                f"(open at speedscope.app); collapsed stacks -> "
                f"{self.collapsed_path}"
            )
        return "\n".join(lines)


def run_prof_study(
    fast: bool = True,
    seed: int = 0,
    dataset: str = "mnist",
    n_requests: int | None = None,
    backends: list[InferenceBackend] | None = None,
    images: np.ndarray | None = None,
    labels: np.ndarray | None = None,
    live: bool = False,
    prof_out: str | None = None,
) -> ProfStudy:
    """Profile one clean cluster run; attribute host time to engine phases.

    No faults are injected — the point is the engine's own cost
    structure, not a storm's.  Pass toy ``backends`` (plus ``images``/
    ``labels``) to run without trained models; ``live=True`` swaps the
    oracle for in-loop model calls, which moves time into the
    ``inference``/``dispatch`` phases but changes no simulated metric.
    ``prof_out`` writes speedscope JSON there and collapsed stacks to
    ``<prof_out>.collapsed``.
    """
    if backends is None:
        backends, images, labels = _default_fleet(fast, seed, dataset)
    elif images is None:
        raise ValueError("a custom fleet needs explicit images (and labels)")
    if n_requests is None:
        n_requests = 2000 if fast else 8000
    max_batch_size, max_wait_s = 8, 0.004

    capacity = sum(1.0 / b.mean_service_s(batch_size=max_batch_size) for b in backends)
    rate = 0.6 * capacity
    arrival_s = poisson_arrivals(
        rate,
        n_requests,
        rng=as_generator(derive_seed(seed, dataset, "prof-arrivals")),
    )
    stream_rng = as_generator(derive_seed(seed, dataset, "prof-stream"))
    indices = zipf_popularity(len(images), n_requests, exponent=0.9, rng=stream_rng)
    req_labels = labels[indices] if labels is not None else None
    if live:
        req_images = images[indices]
    else:
        backends = [oracle_backend(b, images) for b in backends]
        req_images = indices

    prof = PhaseProfiler()
    cluster = Cluster(
        list(backends),
        policy="least-outstanding",
        max_batch_size=max_batch_size,
        max_wait_s=max_wait_s,
        cache_capacity=0,
        rng=derive_seed(seed, dataset, "prof-rng"),
        prof=prof,
    )
    report = cluster.serve(req_images, arrival_s, labels=req_labels, scenario="prof")

    phases = prof.report()
    collapsed_path = None
    if prof_out is not None:
        phases.to_speedscope(prof_out, name=f"cluster serve ({dataset})")
        collapsed_path = f"{prof_out}.collapsed"
        phases.to_collapsed(collapsed_path)
    return ProfStudy(
        dataset=dataset,
        n_requests=n_requests,
        n_replicas=len(backends),
        report=report,
        phases=phases,
        prof_path=prof_out,
        collapsed_path=collapsed_path,
    )
