"""Ablation studies for the design choices DESIGN.md §5 calls out.

These go beyond the paper's own evaluation: they quantify how sensitive
CBNet is to (a) the AE bottleneck width, (b) the reconstruction head,
(c) the entropy threshold, and (d) the dataset's hard-image fraction —
the axis Fig. 3 only samples at two points.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np

from repro.core.config import PipelineConfig, TrainConfig
from repro.core.pipeline import build_cbnet_pipeline
from repro.core.thresholds import sweep_thresholds
from repro.data import load_dataset
from repro.eval.tables import Table
from repro.experiments.common import pipeline_for, lenet_for, scale_for
from repro.hw.devices import raspberry_pi4
from repro.hw.latency import branchynet_expected_latency, cbnet_latency, lenet_latency
from repro.models.autoencoder import TABLE1_SPECS
from repro.utils.rng import derive_seed

__all__ = [
    "AblationRow",
    "AblationResult",
    "run_bottleneck_ablation",
    "run_activation_ablation",
    "run_threshold_sweep",
    "run_hard_fraction_sweep",
]


@dataclass(frozen=True)
class AblationRow:
    setting: str
    metrics: dict


@dataclass
class AblationResult:
    name: str
    rows: list[AblationRow] = field(default_factory=list)

    def render(self) -> str:
        if not self.rows:
            return f"{self.name}: (no rows)"
        headers = ["setting", *self.rows[0].metrics.keys()]
        table = Table(headers=headers, title=self.name)
        for row in self.rows:
            table.add_row(row.setting, *row.metrics.values())
        return table.render()


def _small_pipeline(dataset: str, seed: int, **spec_overrides) -> PipelineConfig:
    """A reduced-cost pipeline config for ablation grids.

    Sized so the BranchyNet branch becomes genuinely confident on clean
    samples (the exit-rate dynamics the ablations probe need a trained
    gate, not a warm-up checkpoint).
    """
    return PipelineConfig(
        dataset=dataset,
        seed=seed,
        n_train=3000,
        n_test=600,
        classifier_train=TrainConfig(epochs=16),
        autoencoder_train=TrainConfig(epochs=8, batch_size=128),
        cache=True,
    )


def run_bottleneck_ablation(
    dataset: str = "mnist",
    widths: tuple[int, ...] = (8, 32, 128, 384),
    seed: int = 0,
) -> AblationResult:
    """AE bottleneck width (Table I uses 32 for MNIST, 128 for FMNIST)."""
    result = AblationResult(name=f"Ablation: AE bottleneck width ({dataset})")
    device = raspberry_pi4()
    base_spec = TABLE1_SPECS[dataset]
    for width in widths:
        spec = replace(
            base_spec,
            layer_sizes=(*base_spec.layer_sizes[:-1], width),
            name=f"{dataset}-b{width}",
        )
        config = _small_pipeline(dataset, seed)
        artifacts = _pipeline_with_spec(config, spec)
        test = artifacts.datasets["test"]
        lat = cbnet_latency(artifacts.cbnet, device)
        result.rows.append(
            AblationRow(
                setting=f"bottleneck={width}",
                metrics={
                    "cbnet acc (%)": round(
                        100 * artifacts.cbnet.accuracy(test.images, test.labels), 2
                    ),
                    "ae latency (ms)": round(lat.autoencoder * 1e3, 4),
                    "total latency (ms)": round(lat.total * 1e3, 4),
                },
            )
        )
    return result


def run_activation_ablation(dataset: str = "mnist", seed: int = 0) -> AblationResult:
    """Softmax (paper) vs sigmoid reconstruction head."""
    result = AblationResult(name=f"Ablation: AE output activation ({dataset})")
    for activation in ("softmax", "sigmoid"):
        spec = replace(
            TABLE1_SPECS[dataset],
            output_activation=activation,
            name=f"{dataset}-{activation}",
        )
        config = _small_pipeline(dataset, seed)
        artifacts = _pipeline_with_spec(config, spec)
        test = artifacts.datasets["test"]
        result.rows.append(
            AblationRow(
                setting=f"head={activation}",
                metrics={
                    "cbnet acc (%)": round(
                        100 * artifacts.cbnet.accuracy(test.images, test.labels), 2
                    ),
                    "final AE loss": round(artifacts.autoencoder_history.final_loss, 5),
                },
            )
        )
    return result


def _pipeline_with_spec(config: PipelineConfig, spec):
    """Build a CBNet pipeline with a custom autoencoder spec (cached)."""
    return build_cbnet_pipeline(config, ae_spec=spec)


def run_threshold_sweep(
    dataset: str = "fmnist",
    fast: bool = True,
    seed: int = 0,
) -> AblationResult:
    """Accuracy/exit-rate/latency trade-off across entropy thresholds."""
    scale = scale_for(fast)
    artifacts = pipeline_for(dataset, scale, seed=seed)
    lenet = lenet_for(dataset, scale, seed=seed)
    device = raspberry_pi4()
    test = artifacts.datasets["test"]
    t_lenet = lenet_latency(lenet, device)

    result = AblationResult(name=f"Ablation: entropy threshold sweep ({dataset})")
    grid = (0.005, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.0)
    for point in sweep_thresholds(artifacts.branchynet, test.images, test.labels, grid):
        t_b = branchynet_expected_latency(
            artifacts.branchynet, device, point.exit_rate
        ).expected
        result.rows.append(
            AblationRow(
                setting=f"T={point.threshold:g}",
                metrics={
                    "exit rate (%)": round(100 * point.exit_rate, 1),
                    "branchy acc (%)": round(100 * point.accuracy, 2),
                    "branchy speedup": round(t_lenet / t_b, 2),
                },
            )
        )
    return result


def run_hard_fraction_sweep(
    dataset: str = "mnist",
    fractions: tuple[float, ...] = (0.05, 0.2, 0.4, 0.6),
    seed: int = 0,
) -> AblationResult:
    """Generalized Fig. 3: BranchyNet vs CBNet as hardness grows.

    The paper samples this axis at two datasets; here the *same* dataset
    family is regenerated at increasing hard fractions so the crossover
    is visible on one curve.
    """
    device = raspberry_pi4()
    result = AblationResult(name=f"Ablation: hard-fraction sweep ({dataset})")
    for hf in fractions:
        config = PipelineConfig(
            dataset=dataset,
            seed=derive_seed(seed, "hardfrac", int(hf * 100)),
            n_train=3000,
            n_test=600,
            classifier_train=TrainConfig(epochs=16),
            autoencoder_train=TrainConfig(epochs=8, batch_size=128),
            cache=True,
        )
        data = load_dataset(
            dataset,
            n_train=config.n_train,
            n_test=config.n_test,
            seed=config.seed,
            hard_fraction=hf,
        )
        artifacts = build_cbnet_pipeline(config, datasets=data)
        test = data["test"]
        res = artifacts.branchynet.infer(test.images)
        t_b = branchynet_expected_latency(
            artifacts.branchynet, device, res.early_exit_rate
        ).expected
        t_c = cbnet_latency(artifacts.cbnet, device).total
        result.rows.append(
            AblationRow(
                setting=f"hard={hf:.0%}",
                metrics={
                    "exit rate (%)": round(100 * res.early_exit_rate, 1),
                    "branchy lat (ms)": round(t_b * 1e3, 3),
                    "cbnet lat (ms)": round(t_c * 1e3, 3),
                    "branchy acc (%)": round(
                        100 * float((res.predictions == test.labels).mean()), 2
                    ),
                    "cbnet acc (%)": round(
                        100 * artifacts.cbnet.accuracy(test.images, test.labels), 2
                    ),
                },
            )
        )
    return result
