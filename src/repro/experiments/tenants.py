"""Multi-tenant experiment: FIFO vs priority scheduling under overload.

The cluster layer's tenancy claim, made measurable: three SLO classes
(``interactive``/``standard``/``batch``) share one fleet through a
diurnal day/night cycle whose peak exceeds fleet capacity, with the
class mix itself diurnal (interactive-heavy at peak, batch-heavy at
trough — exactly when batch work *should* run).  Two arms replay the
identical trace:

* **fifo** — class-blind control: global arrival-order batching and a
  plain reject-at-cap admission controller.  Overload sheds whoever is
  unlucky and interactive requests wait behind batch work.
* **priority** — the multi-tenant stack: priority-aware micro-batching
  (interactive preempts a forming batch via its tight wait cap) and
  :class:`~repro.cluster.admission.WeightedFairAdmission` (overload
  sheds batch before standard before interactive, with per-class
  reserves so batch is throttled, not starved).

The per-class tables make the trade readable: priority should win
interactive p99 SLO attainment outright while batch keeps flowing at
its reserve rate.  Like every serving experiment here the arms run in
oracle mode by default (``live=True`` restores in-loop inference and
must produce field-for-field identical metrics — the scheduling test
harness in ``tests/scheduling`` holds it to that).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cluster.admission import REJECT, AdmissionController, WeightedFairAdmission
from repro.cluster.engine import Cluster, ClusterReport, fleet_comparison_table
from repro.experiments.common import pipeline_for, scale_for
from repro.experiments.fleet import FleetSpec, _oracle_fleet
from repro.hw.devices import device_profiles
from repro.serving.arrivals import diurnal_arrivals, diurnal_class_mix, zipf_popularity
from repro.serving.backends import CBNetBackend
from repro.serving.classes import ClassSet, class_table, default_classes
from repro.utils.rng import as_generator, derive_seed

__all__ = ["TENANT_ARMS", "TenantsComparison", "run_tenants_comparison"]

TENANT_ARMS = ("fifo", "priority")

# Class-mix endpoints of the diurnal cycle: daytime peak is dominated by
# interactive traffic, the overnight trough by batch backfill.
PEAK_SHARES = (0.60, 0.25, 0.15)
TROUGH_SHARES = (0.15, 0.25, 0.60)


@dataclass
class TenantsComparison:
    """Both scheduling arms plus the context that sized the load."""

    dataset: str
    n_requests: int
    capacity_hz: float
    classes: ClassSet
    reports: dict[str, ClusterReport]

    def report_for(self, arm: str) -> ClusterReport:
        """Look up one arm's report (``"fifo"`` or ``"priority"``)."""
        return self.reports[arm]

    def render(self) -> str:
        """Per-class table for both arms plus the fleet-level summary."""
        fifo, prio = self.reports["fifo"], self.reports["priority"]
        rate = fifo.arrival_rate_hz
        title = (
            f"Multi-tenant scheduling ({self.dataset}) — diurnal mix @ "
            f"{rate:.0f} req/s vs {self.capacity_hz:.0f} req/s capacity, "
            f"{fifo.n_replicas_start} replicas"
        )
        table = class_table(
            [(arm, self.reports[arm].class_reports) for arm in TENANT_ARMS],
            title=title,
        )
        inter = self.classes.code("interactive")
        batch = self.classes.code("batch")
        summary = (
            f"interactive SLO attainment: priority "
            f"{prio.class_reports[inter].slo_attainment:.1%} vs fifo "
            f"{fifo.class_reports[inter].slo_attainment:.1%}; batch served "
            f"under priority: {prio.class_reports[batch].n_served} of "
            f"{prio.class_reports[batch].n_requests} (reserve keeps it alive)"
        )
        fleet = fleet_comparison_table(
            [fifo, prio], title=f"Fleet-level view ({self.dataset})"
        )
        return table.render() + "\n" + summary + "\n\n" + fleet.render()


def _default_fleet(fast: bool, seed: int, dataset: str):
    """A homogeneous trained CBNet fleet (three GCI-CPU replicas)."""
    scale = scale_for(fast)
    artifacts = pipeline_for(dataset, scale, seed=seed)
    device = device_profiles()["gci-cpu"]
    backends = tuple(CBNetBackend(artifacts.cbnet, device) for _ in range(3))
    spec = FleetSpec(
        backends=backends,
        spawn_backend=lambda: CBNetBackend(artifacts.cbnet, device),
    )
    test = artifacts.datasets["test"]
    return spec, test.images, test.labels


def run_tenants_comparison(
    fast: bool = True,
    seed: int = 0,
    dataset: str = "mnist",
    n_requests: int | None = None,
    overload: float = 1.6,
    fleet: FleetSpec | None = None,
    images: np.ndarray | None = None,
    labels: np.ndarray | None = None,
    live: bool = False,
) -> TenantsComparison:
    """Run both scheduling arms on one shared overload trace.

    ``overload`` is the peak arrival rate as a multiple of fleet
    capacity (the mean rate follows from the diurnal depth); both arms
    replay the identical arrival times, request stream, *and* class
    codes, so every per-class delta is the scheduling discipline alone.
    Pass a toy ``fleet`` (plus ``images``/``labels``) to exercise the
    experiment without trained models — that is what the smoke tests
    do.  Oracle mode by default; ``live=True`` restores in-loop
    inference with identical metrics.
    """
    if overload <= 1.0:
        raise ValueError(f"overload must exceed 1.0 to stress admission, got {overload}")
    if fleet is None:
        fleet, images, labels = _default_fleet(fast, seed, dataset)
    elif images is None:
        raise ValueError("a custom fleet needs explicit images (and labels)")
    if n_requests is None:
        n_requests = 3000 if fast else 8000

    capacity = fleet.capacity_hz()
    # Interactive deadline: a full batch on the slowest replica plus the
    # batching wait with 3x queueing headroom — attainable for a class
    # that jumps every queue, hopeless for one stuck behind batch work.
    slowest = max(
        b.mean_service_s(batch_size=fleet.max_batch_size) * fleet.max_batch_size
        for b in fleet.backends
    )
    slo_s = 3.0 * (slowest + fleet.max_wait_s)
    classes = default_classes(slo_s=slo_s, max_wait_s=fleet.max_wait_s)

    depth = 0.8
    mean_rate = overload / (1.0 + depth) * capacity
    period = 0.5 * n_requests / mean_rate
    arrival_s = diurnal_arrivals(
        mean_rate,
        n_requests,
        period_s=period,
        depth=depth,
        rng=as_generator(derive_seed(seed, dataset, "tenants-arrivals")),
    )
    codes = diurnal_class_mix(
        arrival_s,
        period_s=period,
        peak_shares=np.asarray(PEAK_SHARES),
        trough_shares=np.asarray(TROUGH_SHARES),
        rng=as_generator(derive_seed(seed, dataset, "tenants-mix")),
    )

    stream_rng = as_generator(derive_seed(seed, dataset, "tenants-stream"))
    indices = zipf_popularity(len(images), n_requests, exponent=0.9, rng=stream_rng)
    req_labels = labels[indices] if labels is not None else None
    if live:
        req_images = images[indices]
    else:
        fleet = _oracle_fleet(fleet, images)
        req_images = indices

    max_outstanding = 8 * fleet.max_batch_size * len(fleet.backends)
    admissions = {
        "fifo": AdmissionController(max_outstanding=max_outstanding, policy=REJECT),
        "priority": WeightedFairAdmission(classes, max_outstanding=max_outstanding),
    }
    reports: dict[str, ClusterReport] = {}
    for arm in TENANT_ARMS:
        cluster = Cluster(
            list(fleet.backends),
            policy="least-outstanding",
            admission=admissions[arm],
            slo_s=classes[classes.code("interactive")].deadline_s,
            classes=classes,
            scheduler=arm,
            max_batch_size=fleet.max_batch_size,
            max_wait_s=fleet.max_wait_s,
            # No result cache: cache hits bypass admission, which would
            # dilute the overload the arms are meant to disagree on.
            cache_capacity=0,
            rng=derive_seed(seed, dataset, f"tenants-{arm}"),
        )
        reports[arm] = cluster.serve(
            req_images,
            arrival_s,
            labels=req_labels,
            scenario=f"tenants-{arm}",
            request_classes=codes,
        )
    return TenantsComparison(
        dataset=dataset,
        n_requests=n_requests,
        capacity_hz=capacity,
        classes=classes,
        reports=reports,
    )
