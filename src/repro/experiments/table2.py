"""Table II — latency per image, energy savings w.r.t. LeNet, and
accuracy for LeNet / BranchyNet / CBNet x {MNIST, FMNIST, KMNIST} x
{Raspberry Pi 4, GCI, GCI+GPU}.

Also prints the §IV-D side statistics: per-dataset early-exit rates and
the autoencoder's share of CBNet latency.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.eval.runner import DatasetEvaluation, evaluate_dataset
from repro.eval.tables import Table
from repro.experiments.common import DATASETS, lenet_for, pipeline_for, scale_for
from repro.hw.devices import device_profiles

__all__ = ["Table2Result", "run_table2"]

_DEVICE_ORDER = ("raspberry-pi4", "gci-cpu", "gci-k80")
_MODEL_ORDER = ("lenet", "branchynet", "cbnet")


@dataclass
class Table2Result:
    evaluations: dict[str, DatasetEvaluation] = field(default_factory=dict)

    def render(self) -> str:
        table = Table(
            headers=[
                "dataset",
                "model",
                "lat Pi4 (ms)",
                "lat GCI (ms)",
                "lat GPU (ms)",
                "E-save Pi4 (%)",
                "E-save GCI (%)",
                "E-save GPU (%)",
                "accuracy (%)",
            ],
            title="Table II: latency, energy savings w.r.t. LeNet, accuracy",
        )
        for dataset, ev in self.evaluations.items():
            for model in _MODEL_ORDER:
                cells = [ev.cell(model, d) for d in _DEVICE_ORDER]
                save = [
                    "-" if c.energy_savings_vs_lenet_pct is None
                    else f"{c.energy_savings_vs_lenet_pct:.0f}"
                    for c in cells
                ]
                table.add_row(
                    dataset,
                    model,
                    f"{cells[0].latency_ms:.3f}",
                    f"{cells[1].latency_ms:.3f}",
                    f"{cells[2].latency_ms:.3f}",
                    *save,
                    f"{cells[0].accuracy_pct:.2f}",
                )
        lines = [table.render(), "", "operating points (paper §IV-D):"]
        for dataset, ev in self.evaluations.items():
            share = ev.ae_latency_share.get("raspberry-pi4", 0.0)
            lines.append(
                f"  {dataset}: early-exit rate {100 * ev.early_exit_rate:.2f}%  "
                f"AE share of CBNet latency {100 * share:.1f}%"
            )
        return "\n".join(lines)


def run_table2(
    fast: bool = True,
    datasets: tuple[str, ...] = DATASETS,
    seed: int = 0,
) -> Table2Result:
    """Regenerate every cell of Table II."""
    scale = scale_for(fast)
    devices = device_profiles()
    result = Table2Result()
    for name in datasets:
        artifacts = pipeline_for(name, scale, seed=seed)
        lenet = lenet_for(name, scale, seed=seed)
        result.evaluations[name] = evaluate_dataset(artifacts, lenet, devices)
    return result


if __name__ == "__main__":
    print(run_table2().render())
