"""Chaos experiment: one seeded fault storm, defended vs undefended.

The robustness claim of the resilience layer (:mod:`repro.faults`) in
one table: two identical fleets replay the *same* request stream under
the *same* seeded storm of slowdowns, partitions, flaky windows, and
crash/recover cycles.  The **naive** arm has no defences — flaky
responses lose their requests outright and partition-deferred responses
land whenever the partition heals.  The **resilient** arm runs the full
stack: per-attempt timeouts, jittered backed-off retries, hedged
dispatch, and per-replica circuit breakers.

Because both arms share one storm and one trace, the availability and
interactive-SLO columns are directly comparable — the experiment (and
its acceptance test) asserts the resilient arm strictly wins both.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cluster.engine import Cluster, ClusterReport, fleet_comparison_table
from repro.experiments.common import pipeline_for, scale_for
from repro.cluster.failures import crash_window
from repro.faults import (
    FLAKY,
    PARTITION,
    SLOWDOWN,
    BreakerConfig,
    FaultPlan,
    ResilienceConfig,
    RetryPolicy,
    flaky_window,
    hedge_delay_for,
    partition_window,
    slowdown_window,
)
from repro.hw.devices import device_profiles
from repro.serving.arrivals import poisson_arrivals, zipf_popularity
from repro.serving.backends import CBNetBackend, InferenceBackend
from repro.sim import oracle_backend
from repro.utils.rng import as_generator, derive_seed

__all__ = ["ChaosComparison", "resilience_for_fleet", "run_chaos_comparison"]

#: Replicas in the default (trained) chaos fleet.
_N_REPLICAS = 4


def resilience_for_fleet(
    backends: list[InferenceBackend],
    max_batch_size: int,
    max_wait_s: float,
) -> ResilienceConfig:
    """Resilience knobs scaled to a fleet's healthy service times.

    The per-attempt timeout sits a few healthy-batch-times out: far
    enough that a healthy replica never trips it, close enough that a
    4-16x straggler or an unhealed partition does.  No degradation
    controller: shedding would trade away exactly the availability this
    experiment is about.
    """
    tick = max_wait_s + max(
        b.mean_service_s(batch_size=max_batch_size) * max_batch_size for b in backends
    )
    return ResilienceConfig(
        timeout_s=8.0 * tick,
        retry=RetryPolicy(
            max_retries=3,
            base_backoff_s=max_wait_s,
            backoff_mult=2.0,
            max_backoff_s=4.0 * max_wait_s,
            jitter_frac=0.25,
        ),
        # Hedge only genuine stragglers: a delay down at the healthy
        # *median* sojourn would duplicate most of the offered load and
        # melt the fleet the moment a fault eats into capacity.
        hedge_delay_s=hedge_delay_for(backends, max_batch_size, max_wait_s, factor=4.0),
        breaker=BreakerConfig(
            window_s=8.0 * tick,
            min_samples=6,
            error_threshold=0.5,
            cooldown_s=4.0 * tick,
            half_open_probes=2,
        ),
    )


def _storm_for(n_replicas: int, horizon_s: float, rng) -> FaultPlan:
    """A structured seeded storm touching every fault kind in turn.

    One episode at a time — slowdown, partition, flaky, crash, flaky —
    with seeded jitter on positions and magnitudes.  Staggering is the
    point: the fleet never loses more than one replica's capacity at
    once, so the arms are compared on *fault handling*, not on raw
    capacity shortfall (a storm that halves the fleet under load is an
    overload study, and retries can only amplify it).  The plan's
    ``seed`` drives the in-run sampling (flaky coin flips, retry
    jitter), so one integer reproduces the whole run.
    """

    def window(lo: float, hi: float) -> tuple[float, float]:
        start = float(rng.uniform(lo, hi)) * horizon_s
        duration = float(rng.uniform(0.10, 0.14)) * horizon_s
        return start, duration

    faults = []
    at, dur = window(0.06, 0.10)
    faults += slowdown_window(1 % n_replicas, at, dur, float(rng.uniform(8.0, 14.0)))
    at, dur = window(0.28, 0.32)
    faults += partition_window(2 % n_replicas, at, dur)
    at, dur = window(0.48, 0.52)
    faults += flaky_window(3 % n_replicas, at, dur, float(rng.uniform(0.4, 0.7)))
    at, dur = window(0.84, 0.87)
    faults += flaky_window(2 % n_replicas, at, dur, float(rng.uniform(0.4, 0.6)))
    at, dur = window(0.68, 0.72)
    failures = crash_window(0, at, dur)
    return FaultPlan(
        faults=tuple(faults),
        failures=failures,
        seed=int(rng.integers(2**31 - 1)),
    )


@dataclass
class ChaosComparison:
    """Both chaos arms plus the storm that battered them."""

    dataset: str
    n_requests: int
    slo_s: float
    plan: FaultPlan
    naive: ClusterReport
    resilient: ClusterReport

    def storm_summary(self) -> str:
        """One line describing the injected storm."""
        # Count window onsets, not events: a window's restoring twin
        # (slowdown back to 1.0, flaky back to 0.0, heal) doesn't count.
        kinds = {SLOWDOWN: 0, PARTITION: 0, FLAKY: 0}
        for fault in self.plan.faults:
            if fault.kind == SLOWDOWN and fault.magnitude > 1.0:
                kinds[SLOWDOWN] += 1
            elif fault.kind == FLAKY and fault.magnitude > 0.0:
                kinds[FLAKY] += 1
            elif fault.kind == PARTITION:
                kinds[PARTITION] += 1
        return (
            f"{kinds[SLOWDOWN]} slowdowns, {kinds[PARTITION]} partitions, "
            f"{kinds[FLAKY]} flaky windows, "
            f"{sum(e.kind == 'crash' for e in self.plan.failures)} crashes "
            f"(storm seed {self.plan.seed})"
        )

    def render(self) -> str:
        """Comparison table plus the headline availability/SLO lines."""
        title = (
            f"Chaos storm ({self.dataset}) — {self.n_requests} requests, "
            f"interactive SLO {self.slo_s * 1e3:.0f} ms; {self.storm_summary()}"
        )
        table = fleet_comparison_table([self.naive, self.resilient], title)
        n, r = self.naive, self.resilient
        lines = [
            table.render(),
            (
                f"availability: resilient {r.availability:.1%} vs naive "
                f"{n.availability:.1%}; interactive p99 SLO: resilient "
                f"{r.slo_attainment:.1%} vs naive {n.slo_attainment:.1%}"
            ),
            (
                f"resilient defences: {r.n_retried} retried, {r.n_timed_out} "
                f"timed out, {r.n_hedged} hedged, {r.n_breaker_trips} breaker "
                f"trips, {r.n_batch_failures} failed batches "
                f"(naive lost {n.n_unserved} requests to "
                f"{n.n_batch_failures} failed batches)"
            ),
        ]
        return "\n".join(lines)


def _default_fleet(fast: bool, seed: int, dataset: str):
    """A homogeneous trained CBNet fleet on the calibrated cloud CPU.

    Homogeneous on purpose: every replica is interchangeable, so any
    availability or tail gap between the arms is the storm plus the
    defences — never hardware skew.
    """
    scale = scale_for(fast)
    artifacts = pipeline_for(dataset, scale, seed=seed)
    device = device_profiles()["gci-cpu"]
    backends = [CBNetBackend(artifacts.cbnet, device) for _ in range(_N_REPLICAS)]
    test = artifacts.datasets["test"]
    return backends, test.images, test.labels


def run_chaos_comparison(
    fast: bool = True,
    seed: int = 0,
    dataset: str = "mnist",
    n_requests: int | None = None,
    backends: list[InferenceBackend] | None = None,
    images: np.ndarray | None = None,
    labels: np.ndarray | None = None,
    live: bool = False,
) -> ChaosComparison:
    """Serve one seeded storm twice — naive, then fully defended.

    Both arms replay identical arrivals, an identical request stream,
    and the identical :func:`~repro.faults.fault_storm`, so the columns
    differ only by the defences.  Pass toy ``backends`` (plus
    ``images``/``labels``) to run without trained models — that is what
    the smoke tests and the chaos benchmark do.  By default inference
    runs through the precomputed oracle; ``live=True`` restores in-loop
    model calls (slower, identical metrics).
    """
    if backends is None:
        backends, images, labels = _default_fleet(fast, seed, dataset)
    elif images is None:
        raise ValueError("a custom fleet needs explicit images (and labels)")
    if n_requests is None:
        n_requests = 2000 if fast else 8000
    max_batch_size, max_wait_s = 8, 0.004

    capacity = sum(1.0 / b.mean_service_s(batch_size=max_batch_size) for b in backends)
    rate = 0.6 * capacity  # chaos, not overload, is the stressor
    arrival_s = poisson_arrivals(
        rate,
        n_requests,
        rng=as_generator(derive_seed(seed, dataset, "chaos-arrivals")),
    )
    stream_rng = as_generator(derive_seed(seed, dataset, "chaos-stream"))
    indices = zipf_popularity(len(images), n_requests, exponent=0.9, rng=stream_rng)
    req_labels = labels[indices] if labels is not None else None
    if live:
        req_images = images[indices]
    else:
        backends = [oracle_backend(b, images) for b in backends]
        req_images = indices

    horizon = float(arrival_s[-1]) + 0.05
    plan = _storm_for(
        len(backends), horizon, as_generator(derive_seed(seed, dataset, "chaos-storm"))
    )
    resilience = resilience_for_fleet(backends, max_batch_size, max_wait_s)
    # The interactive deadline: a healthily-batched request clears it
    # with margin, anything stuck behind a straggler or partition misses.
    slo_s = 4.0 * (
        max_wait_s
        + max(
            b.mean_service_s(batch_size=max_batch_size) * max_batch_size
            for b in backends
        )
    )

    def run_arm(resilient: bool, scenario: str) -> ClusterReport:
        cluster = Cluster(
            list(backends),
            policy="least-outstanding",
            faults=plan,
            resilience=resilience if resilient else None,
            slo_s=slo_s,
            max_batch_size=max_batch_size,
            max_wait_s=max_wait_s,
            cache_capacity=0,
            rng=derive_seed(seed, dataset, "chaos-rng"),
        )
        return cluster.serve(req_images, arrival_s, labels=req_labels, scenario=scenario)

    naive = run_arm(False, "chaos-naive")
    resilient = run_arm(True, "chaos-resilient")
    return ChaosComparison(
        dataset=dataset,
        n_requests=n_requests,
        slo_s=slo_s,
        plan=plan,
        naive=naive,
        resilient=resilient,
    )
