"""Figs. 6-8 — scalability analysis: accuracy and total inference time
versus dataset-size ratio (0.1 ... 1.0), for BranchyNet and CBNet on each
hardware platform.

Protocol (paper §IV-F): subsets are stratified on (class x hard-flag) so
"the proportion of hard test images used in each experiment remained
roughly the same"; accuracy is measured by running the real models on
each subset; total time = per-image simulated latency x subset size at
the subset's measured early-exit rate.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.data.splits import stratified_subset
from repro.eval.figures import Series, ascii_line_chart
from repro.eval.metrics import accuracy
from repro.eval.tables import Table
from repro.experiments.common import pipeline_for, scale_for
from repro.hw.devices import device_profiles
from repro.hw.latency import branchynet_expected_latency, cbnet_latency
from repro.utils.rng import as_generator, derive_seed

__all__ = ["ScalabilityPoint", "ScalabilityResult", "run_scalability"]

RATIOS = tuple(round(0.1 * i, 1) for i in range(1, 11))


@dataclass(frozen=True)
class ScalabilityPoint:
    ratio: float
    n_samples: int
    branchy_accuracy_pct: float
    cbnet_accuracy_pct: float
    exit_rate: float
    branchy_total_s: dict[str, float]
    cbnet_total_s: dict[str, float]


@dataclass
class ScalabilityResult:
    dataset: str
    points: list[ScalabilityPoint] = field(default_factory=list)

    def render(self, device: str = "raspberry-pi4") -> str:
        table = Table(
            headers=[
                "ratio",
                "n",
                "BranchyNet acc (%)",
                "CBNet acc (%)",
                f"BranchyNet time@{device} (s)",
                f"CBNet time@{device} (s)",
            ],
            title=f"Figs 6-8: scalability on {self.dataset}",
        )
        for p in self.points:
            table.add_row(
                p.ratio,
                p.n_samples,
                f"{p.branchy_accuracy_pct:.2f}",
                f"{p.cbnet_accuracy_pct:.2f}",
                f"{p.branchy_total_s[device]:.3f}",
                f"{p.cbnet_total_s[device]:.3f}",
            )
        chart = ascii_line_chart(
            [
                Series(
                    "BranchyNet time",
                    tuple(p.ratio for p in self.points),
                    tuple(p.branchy_total_s[device] for p in self.points),
                ),
                Series(
                    "CBNet time",
                    tuple(p.ratio for p in self.points),
                    tuple(p.cbnet_total_s[device] for p in self.points),
                ),
            ],
            title=f"total inference time vs dataset ratio ({self.dataset}, {device})",
            y_label="seconds",
        )
        return table.render() + "\n\n" + chart


def run_scalability(
    dataset: str,
    fast: bool = True,
    ratios: tuple[float, ...] = RATIOS,
    seed: int = 0,
    artifacts=None,
) -> ScalabilityResult:
    """Regenerate one of Figs 6-8 for ``dataset`` across all devices.

    ``artifacts`` short-circuits pipeline training (used by tests that
    inject a pre-built small pipeline).
    """
    if artifacts is None:
        scale = scale_for(fast)
        artifacts = pipeline_for(dataset, scale, seed=seed)
    test = artifacts.datasets["test"]
    devices = device_profiles()
    rng = as_generator(derive_seed(seed, dataset, "scalability"))

    result = ScalabilityResult(dataset=dataset)
    for ratio in ratios:
        subset = (
            test
            if ratio >= 1.0
            else stratified_subset(test, ratio, rng=rng, by="is_hard")
        )
        images, labels = subset.images, subset.labels
        branchy_res = artifacts.branchynet.infer(images)
        cb_preds = artifacts.cbnet.predict(images)
        exit_rate = branchy_res.early_exit_rate

        branchy_total: dict[str, float] = {}
        cbnet_total: dict[str, float] = {}
        for dev_name, device in devices.items():
            t_b = branchynet_expected_latency(
                artifacts.branchynet, device, exit_rate
            ).expected
            t_c = cbnet_latency(artifacts.cbnet, device).total
            branchy_total[dev_name] = t_b * len(subset)
            cbnet_total[dev_name] = t_c * len(subset)

        result.points.append(
            ScalabilityPoint(
                ratio=ratio,
                n_samples=len(subset),
                branchy_accuracy_pct=100 * accuracy(branchy_res.predictions, labels),
                cbnet_accuracy_pct=100 * accuracy(cb_preds, labels),
                exit_rate=exit_rate,
                branchy_total_s=branchy_total,
                cbnet_total_s=cbnet_total,
            )
        )
    return result


if __name__ == "__main__":
    for name in ("mnist", "fmnist", "kmnist"):
        print(run_scalability(name).render())
        print()
