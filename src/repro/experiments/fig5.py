"""Fig. 5 — inference latency and accuracy of LeNet, BranchyNet, AdaDeep,
SubFlow and CBNet on MNIST / Raspberry Pi 4.

Paper reading: CBNet is 3.78x faster than AdaDeep and 4.85x faster than
SubFlow while also being more accurate; both compression baselines are
slower than BranchyNet.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.baselines.adadeep import AdaDeepCompressor
from repro.baselines.subflow import SubFlowExecutor
from repro.eval.figures import ascii_bar_chart
from repro.eval.metrics import accuracy
from repro.eval.tables import Table
from repro.experiments.common import lenet_for, pipeline_for, scale_for
from repro.hw.devices import raspberry_pi4
from repro.hw.latency import branchynet_expected_latency, cbnet_latency, lenet_latency
from repro.utils.rng import derive_seed

__all__ = ["Fig5Bar", "Fig5Result", "run_fig5"]

SUBFLOW_UTILIZATION = 0.85  # operating point analogous to the paper's setup


@dataclass(frozen=True)
class Fig5Bar:
    model: str
    latency_ms: float
    accuracy_pct: float


@dataclass
class Fig5Result:
    bars: list[Fig5Bar]

    def render(self) -> str:
        table = Table(
            headers=["model", "latency (ms)", "accuracy (%)"],
            title="Fig. 5: model comparison, MNIST on Raspberry Pi 4",
        )
        for b in self.bars:
            table.add_row(b.model, f"{b.latency_ms:.3f}", f"{b.accuracy_pct:.2f}")
        chart = ascii_bar_chart(
            [b.model for b in self.bars],
            [b.latency_ms for b in self.bars],
            title="inference latency (ms)",
            unit="ms",
        )
        return table.render() + "\n\n" + chart

    def bar(self, model: str) -> Fig5Bar:
        for b in self.bars:
            if b.model == model:
                return b
        raise KeyError(model)


def run_fig5(fast: bool = True, seed: int = 0) -> Fig5Result:
    """Evaluate all five systems on the MNIST test set / Pi-4 profile."""
    scale = scale_for(fast)
    device = raspberry_pi4()
    artifacts = pipeline_for("mnist", scale, seed=seed)
    lenet = lenet_for("mnist", scale, seed=seed)
    train, test = artifacts.datasets["train"], artifacts.datasets["test"]
    images, labels = test.images, test.labels

    bars: list[Fig5Bar] = []

    t_lenet = lenet_latency(lenet, device)
    bars.append(
        Fig5Bar("LeNet", t_lenet * 1e3, 100 * accuracy(lenet.predict(images), labels))
    )

    branchy_res = artifacts.branchynet.infer(images)
    t_branchy = branchynet_expected_latency(
        artifacts.branchynet, device, branchy_res.early_exit_rate
    ).expected
    bars.append(
        Fig5Bar(
            "BranchyNet",
            t_branchy * 1e3,
            100 * accuracy(branchy_res.predictions, labels),
        )
    )

    ada = AdaDeepCompressor().compress(
        lenet, train, test, device, rng=derive_seed(seed, "fig5", "adadeep")
    )
    bars.append(Fig5Bar("AdaDeep", ada.latency_s * 1e3, 100 * ada.accuracy))

    subflow = SubFlowExecutor(lenet, utilization=SUBFLOW_UTILIZATION)
    bars.append(
        Fig5Bar(
            "SubFlow",
            subflow.latency(device) * 1e3,
            100 * subflow.accuracy(images, labels),
        )
    )

    cb = cbnet_latency(artifacts.cbnet, device)
    bars.append(
        Fig5Bar(
            "CBNet",
            cb.total * 1e3,
            100 * accuracy(artifacts.cbnet.predict(images), labels),
        )
    )
    return Fig5Result(bars=bars)


if __name__ == "__main__":
    print(run_fig5().render())
