"""Network chaos experiment: seeded link storms, naive vs deadline-aware.

The netsim claim in one table: the *same* edge fleet replays the *same*
arrival processes over the *same* seeded
:class:`~repro.netsim.faults.LinkFaultPlan` twice.  The **naive** arm
ships every hard sample upstream regardless of link state
(:class:`~repro.offload.policies.EntropyGated` — what the offload grid
did before netsim); the **resilient** arm runs
:class:`~repro.offload.policies.DeadlineAware` against the transports'
*live* congestion estimates, so it falls back to local trunks the
moment an outage, degradation window, or collapsing AIMD window pushes
the remote estimate past the deadline.

Both arms ride full session transports (handshakes, AIMD pacing,
shared-serializer contention, bounded retransmits), so the comparison
is pure policy: every per-seed row must show the resilient arm strictly
ahead on deadline-SLO attainment with zero transfers lost or
double-delivered — exactly what the acceptance test asserts across
ten storm seeds.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.eval.tables import Table
from repro.hw.network import lte, network_links
from repro.netsim.congestion import AIMDConfig
from repro.netsim.faults import (
    DEGRADE,
    FLAP,
    OUTAGE,
    LinkFaultPlan,
    degradation_window,
    flap_at,
    outage_window,
)
from repro.netsim.fleet import FleetDevice, FleetNetReport, run_fleet_net
from repro.netsim.shared import SharedLink
from repro.offload.policies import DeadlineAware, EntropyGated
from repro.utils.rng import as_generator, derive_seed

__all__ = ["NetChaosRun", "NetChaosComparison", "run_netchaos_comparison"]

#: Modern TCP initial window (RFC 6928) — the fleet's transports start
#: here so the first deadline estimate reflects a warmed-up uplink.
_INIT_CWND = 10


def _net_storm_for(horizon_s: float, rng) -> LinkFaultPlan:
    """One structured link storm: outage, two degrades, two flaps.

    Positions and magnitudes carry seeded jitter but every kind always
    appears (a Poisson draw that happens to sample zero faults would
    let the arms tie and void the comparison).  Windows land in
    disjoint jittered slots, so the sorted-and-disjoint invariant holds
    by construction.
    """

    def window(lo: float, hi: float, frac: tuple[float, float]) -> tuple[float, float]:
        start = float(rng.uniform(lo, hi)) * horizon_s
        duration = float(rng.uniform(*frac)) * horizon_s
        return start, duration

    at, dur = window(0.10, 0.14, (0.08, 0.12))
    faults = [outage_window(at, dur)]
    at, dur = window(0.32, 0.36, (0.10, 0.14))
    faults.append(
        degradation_window(
            at,
            dur,
            bandwidth_scale=float(rng.uniform(0.08, 0.25)),
            loss_add=float(rng.uniform(0.10, 0.25)),
        )
    )
    at, dur = window(0.62, 0.66, (0.10, 0.14))
    faults.append(
        degradation_window(
            at,
            dur,
            bandwidth_scale=float(rng.uniform(0.15, 0.40)),
            loss_add=float(rng.uniform(0.05, 0.15)),
        )
    )
    faults.append(flap_at(float(rng.uniform(0.50, 0.56)) * horizon_s))
    faults.append(flap_at(float(rng.uniform(0.84, 0.90)) * horizon_s))
    return LinkFaultPlan(
        faults=tuple(faults), seed=int(rng.integers(2**31 - 1))
    )


@dataclass(frozen=True)
class NetChaosRun:
    """One storm seed's pair of fleet runs over the same plan."""

    storm_seed: int
    plan: LinkFaultPlan
    naive: FleetNetReport
    resilient: FleetNetReport

    @property
    def margin(self) -> float:
        """Resilient minus naive SLO attainment (positive = win)."""
        return self.resilient.slo_attainment - self.naive.slo_attainment


@dataclass(frozen=True)
class NetChaosComparison:
    """All storm seeds' paired runs plus the shared fleet shape."""

    link: str
    n_devices: int
    n_requests: int
    deadline_s: float
    runs: tuple[NetChaosRun, ...]

    @property
    def n_wins(self) -> int:
        """Seeds where the resilient arm strictly beat the naive arm."""
        return sum(run.margin > 0 for run in self.runs)

    @property
    def total_lost(self) -> int:
        """Transfers lost across every arm and seed (must be 0)."""
        return sum(r.naive.n_lost + r.resilient.n_lost for r in self.runs)

    @property
    def total_double(self) -> int:
        """Responses double-delivered across every arm and seed (must be 0)."""
        return sum(
            r.naive.n_double_delivered + r.resilient.n_double_delivered
            for r in self.runs
        )

    def render(self) -> str:
        """Per-seed comparison table plus the headline verdict lines."""
        table = Table(
            headers=[
                "storm",
                "faults (o/d/f)",
                "naive SLO",
                "resilient SLO",
                "margin",
                "res. offload",
                "naive retx amp",
                "drops",
            ],
            title=(
                f"Network chaos ({self.link}) — {self.n_devices} devices, "
                f"{self.n_requests} requests/arm, deadline "
                f"{self.deadline_s * 1e3:.0f} ms"
            ),
        )
        for run in self.runs:
            kinds = {OUTAGE: 0, DEGRADE: 0, FLAP: 0}
            for fault in run.plan.faults:
                kinds[fault.kind] += 1
            n, r = run.naive, run.resilient
            table.add_row(
                str(run.storm_seed),
                f"{kinds[OUTAGE]}/{kinds[DEGRADE]}/{kinds[FLAP]}",
                f"{n.slo_attainment:.1%}",
                f"{r.slo_attainment:.1%}",
                f"{run.margin:+.1%}",
                f"{r.n_offloaded / r.n_requests:.0%}",
                f"{n.retx_amplification:.2f}x",
                str(sum(d.carrier_drops for d in n.devices)),
            )
        mean_naive = sum(r.naive.slo_attainment for r in self.runs) / len(self.runs)
        mean_res = sum(r.resilient.slo_attainment for r in self.runs) / len(self.runs)
        lines = [
            table.render(),
            (
                f"deadline-SLO attainment: resilient {mean_res:.1%} vs naive "
                f"{mean_naive:.1%} (mean over {len(self.runs)} storms); "
                f"resilient wins {self.n_wins}/{len(self.runs)}"
            ),
            (
                f"delivery ledger: {self.total_lost} transfers lost, "
                f"{self.total_double} double-delivered "
                "(sessions re-established across every outage and flap)"
            ),
        ]
        return "\n".join(lines)


def run_netchaos_comparison(
    fast: bool = True,
    seed: int = 0,
    link_name: str = "lte",
    n_storms: int = 10,
    n_devices: int = 4,
) -> NetChaosComparison:
    """Replay ``n_storms`` seeded link storms, naive vs deadline-aware.

    Each storm seed derives one :func:`_net_storm_for` plan and one
    fleet RNG; both arms get *fresh* links carrying the identical plan
    and the identical fleet seed, so arrivals, hard/easy draws, and
    transport sampling streams match request-for-request — the columns
    differ only by the offload policy.  Runs entirely on the virtual
    clock with synthetic payloads (the object under test is the
    network), so it needs no trained models and no dataset.
    """
    if n_storms < 1:
        raise ValueError(f"n_storms must be >= 1, got {n_storms}")
    base = network_links().get(link_name) or lte()
    n_requests = 120 if fast else 400
    spec = FleetDevice(
        rate_hz=15.0,
        n_requests=n_requests,
        up_bytes=8_000,
        down_bytes=40,
        gate_s=2e-3,
        local_s=40e-3,
        cloud_s=4e-3,
        p_hard=0.6,
    )
    deadline_s = 0.25
    aimd = AIMDConfig(init_cwnd=_INIT_CWND)
    horizon_s = n_requests / spec.rate_hz

    runs = []
    for storm_idx in range(n_storms):
        storm_rng = as_generator(derive_seed(seed, "netchaos-storm", storm_idx))
        plan = _net_storm_for(horizon_s, storm_rng)
        fleet_seed = derive_seed(seed, "netchaos-fleet", storm_idx)

        def run_arm(policy) -> FleetNetReport:
            link = SharedLink.from_network_link(base, faults=plan)
            return run_fleet_net(
                link,
                tuple(spec for _ in range(n_devices)),
                policy,
                deadline_s=deadline_s,
                rng=fleet_seed,
                aimd=aimd,
            )

        runs.append(
            NetChaosRun(
                storm_seed=storm_idx,
                plan=plan,
                naive=run_arm(EntropyGated()),
                resilient=run_arm(DeadlineAware(deadline_s)),
            )
        )
    return NetChaosComparison(
        link=base.name,
        n_devices=n_devices,
        n_requests=n_devices * n_requests,
        deadline_s=deadline_s,
        runs=tuple(runs),
    )
