"""Table I — converting-autoencoder architectures per dataset.

Regenerates the paper's architecture table directly from the library's
specs (single source of truth: :data:`repro.models.autoencoder.TABLE1_SPECS`)
and augments it with parameter counts and simulated per-device latency.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.eval.tables import Table
from repro.hw.devices import device_profiles
from repro.hw.flops import stage_cost
from repro.models.autoencoder import TABLE1_SPECS, ConvertingAutoencoder

__all__ = ["Table1Result", "run_table1"]


@dataclass
class Table1Result:
    rows: list[dict]
    rendered: str

    def render(self) -> str:
        return self.rendered


def run_table1() -> Table1Result:
    """Build every Table-I autoencoder and report its structure and cost."""
    table = Table(
        headers=[
            "dataset",
            "layer",
            "size",
            "activation",
            "params",
        ],
        title="Table I: converting autoencoder architecture per dataset",
    )
    rows: list[dict] = []
    for name, spec in TABLE1_SPECS.items():
        model = ConvertingAutoencoder(spec, rng=0)
        widths = (spec.input_dim, *spec.layer_sizes, spec.input_dim)
        activations = ("-", *spec.activations, spec.output_activation)
        layer_names = ["Input"] + [f"FullyConnected{i + 1}" for i in range(len(widths) - 1)]
        prev = spec.input_dim
        for i, (layer_name, width, act) in enumerate(zip(layer_names, widths, activations)):
            params = 0 if i == 0 else prev * width + width
            rows.append(
                {
                    "dataset": name,
                    "layer": layer_name,
                    "size": width,
                    "activation": act,
                    "params": params,
                }
            )
            table.add_row(name, layer_name, width, act, params)
            prev = width

        # Appendix rows: total parameters + simulated latency per device.
        total_params = model.num_parameters()
        enc = stage_cost("encoder", model.encoder, (spec.input_dim,))
        dec = stage_cost("decoder", model.decoder, enc.out_shape)
        for dev_name, device in device_profiles().items():
            lat_ms = (device.stage_latency(enc) + device.stage_latency(dec)) * 1e3
            rows.append(
                {
                    "dataset": name,
                    "layer": f"[latency@{dev_name}]",
                    "size": "-",
                    "activation": "-",
                    "params": round(lat_ms, 4),
                }
            )
        table.add_row(name, "[total params]", "-", "-", total_params)
    return Table1Result(rows=rows, rendered=table.render())


if __name__ == "__main__":
    print(run_table1().render())
