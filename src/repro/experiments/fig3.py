"""Fig. 3 — BranchyNet's speedup over LeNet shrinks as the hard-sample
fraction grows (MNIST vs FMNIST, Raspberry Pi 4).

The paper's bars: ~5.5x speedup on MNIST (5% hard) dropping to ~1.7x on
FMNIST (23% hard).  We reproduce both bars plus the hard-sample
percentages, using the measured early-exit rates of the trained
BranchyNets and the calibrated Pi 4 latency model.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.eval.figures import ascii_bar_chart
from repro.eval.tables import Table
from repro.experiments.common import ExperimentScale, lenet_for, pipeline_for, scale_for
from repro.hw.devices import raspberry_pi4
from repro.hw.latency import branchynet_expected_latency, lenet_latency

__all__ = ["Fig3Point", "Fig3Result", "run_fig3"]


@dataclass(frozen=True)
class Fig3Point:
    dataset: str
    speedup: float
    hard_sample_pct: float
    exit_rate: float


@dataclass
class Fig3Result:
    points: list[Fig3Point]

    def render(self) -> str:
        table = Table(
            headers=["dataset", "BranchyNet speedup over LeNet", "hard samples (%)"],
            title="Fig. 3: BranchyNet speedup vs hard-sample fraction (Raspberry Pi 4)",
        )
        for p in self.points:
            table.add_row(p.dataset, f"{p.speedup:.2f}x", f"{p.hard_sample_pct:.1f}")
        chart = ascii_bar_chart(
            [p.dataset for p in self.points],
            [p.speedup for p in self.points],
            title="speedup over LeNet",
            unit="x",
        )
        return table.render() + "\n\n" + chart


def run_fig3(
    fast: bool = True,
    datasets: tuple[str, ...] = ("mnist", "fmnist"),
    seed: int = 0,
) -> Fig3Result:
    """Measure exit rates on real models; map to Pi-4 latency."""
    scale = scale_for(fast)
    device = raspberry_pi4()
    points: list[Fig3Point] = []
    for name in datasets:
        artifacts = pipeline_for(name, scale, seed=seed)
        lenet = lenet_for(name, scale, seed=seed)
        test = artifacts.datasets["test"]
        result = artifacts.branchynet.infer(test.images)
        t_lenet = lenet_latency(lenet, device)
        t_branchy = branchynet_expected_latency(
            artifacts.branchynet, device, result.early_exit_rate
        ).expected
        points.append(
            Fig3Point(
                dataset=name,
                speedup=t_lenet / t_branchy,
                hard_sample_pct=100.0 * (1.0 - result.early_exit_rate),
                exit_rate=result.early_exit_rate,
            )
        )
    return Fig3Result(points=points)


if __name__ == "__main__":
    print(run_fig3().render())
