"""Observability study: pinpoint a faulty replica from telemetry alone.

The payoff demo for :mod:`repro.obs`: one replica of a resilient fleet
is battered by a seeded storm — a straggler window, a flaky window, and
a partition — while the other replicas stay healthy.  The cluster
replays the trace with an :class:`~repro.obs.Observer` attached, and the
study then names the faulty replica using **only** the collected
telemetry (timeout/batch-failure/breaker-trip symptom events and batch
latencies); the fault plan is consulted only afterwards, to grade the
answer.  With ``--trace-out`` the finalized span log is also exported as
Chrome trace-event JSON for ``ui.perfetto.dev``.

Determinism mirrors the chaos experiment: identical arrivals, storm,
and telemetry in oracle and ``--live`` modes, all from one seed.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cluster.engine import Cluster, ClusterReport
from repro.experiments.chaos import _default_fleet, resilience_for_fleet
from repro.faults import (
    FaultPlan,
    flaky_window,
    partition_window,
    slowdown_window,
)
from repro.obs import Observer
from repro.serving.arrivals import poisson_arrivals, zipf_popularity
from repro.serving.backends import InferenceBackend
from repro.sim import oracle_backend
from repro.utils.rng import as_generator, derive_seed

__all__ = ["ObsStudy", "run_obs_study"]


def _storm_on(target: int, horizon_s: float, rng) -> FaultPlan:
    """A seeded storm concentrated on one replica: straggle, flake, partition.

    No crashes — a crashed replica is trivially identifiable — and no
    collateral faults on other replicas, so the localization question
    has exactly one right answer.  Window positions and magnitudes carry
    seeded jitter, same idiom as the chaos storm.
    """

    def window(lo: float, hi: float) -> tuple[float, float]:
        start = float(rng.uniform(lo, hi)) * horizon_s
        duration = float(rng.uniform(0.12, 0.16)) * horizon_s
        return start, duration

    faults = []
    at, dur = window(0.08, 0.12)
    faults += slowdown_window(target, at, dur, float(rng.uniform(8.0, 14.0)))
    at, dur = window(0.38, 0.42)
    faults += flaky_window(target, at, dur, float(rng.uniform(0.4, 0.7)))
    at, dur = window(0.68, 0.72)
    faults += partition_window(target, at, dur)
    return FaultPlan(faults=tuple(faults), seed=int(rng.integers(2**31 - 1)))


@dataclass
class ObsStudy:
    """One telemetry-localization run: the verdict plus its evidence."""

    dataset: str
    n_requests: int
    slo_s: float
    plan: FaultPlan
    target_replica: int
    suspect_replica: int
    report: ClusterReport
    observer: Observer
    trace_path: str | None = None
    trace_events: int = 0

    @property
    def localized(self) -> bool:
        """Did telemetry alone name the replica the storm targeted?"""
        return self.suspect_replica == self.target_replica

    def render(self) -> str:
        """Per-replica telemetry table plus the localization verdict."""
        lines = [
            (
                f"Observability study ({self.dataset}) — {self.n_requests} "
                f"requests, interactive SLO {self.slo_s * 1e3:.0f} ms "
                f"(storm seed {self.plan.seed})"
            ),
            f"{'replica':>8} {'batches':>8} {'mean batch':>11} {'symptoms':>9}",
        ]
        for rid in sorted(self.observer.replica_stats):
            n_batches, total_s, n_fail = self.observer.replica_stats[rid]
            mean_ms = 1e3 * total_s / n_batches if n_batches else 0.0
            lines.append(f"{rid:>8d} {n_batches:>8d} {mean_ms:>9.2f} ms {n_fail:>9d}")
        summary = self.observer.summary()
        lines.append(
            f"spans: {int(summary.get('spans', 0))}, SLO alerts: "
            f"{int(summary.get('alerts', 0))}, worst burn rate: "
            f"{summary.get('worst_burn', 0.0):.1f}x, availability: "
            f"{self.report.availability:.1%}"
        )
        verdict = "LOCALIZED" if self.localized else "MISSED"
        lines.append(
            f"telemetry verdict: replica {self.suspect_replica} "
            f"(injected target: replica {self.target_replica}) — {verdict}"
        )
        if self.trace_path is not None:
            lines.append(
                f"Chrome trace: {self.trace_events} events -> {self.trace_path} "
                f"(open at ui.perfetto.dev)"
            )
        return "\n".join(lines)


def run_obs_study(
    fast: bool = True,
    seed: int = 0,
    dataset: str = "mnist",
    n_requests: int | None = None,
    backends: list[InferenceBackend] | None = None,
    images: np.ndarray | None = None,
    labels: np.ndarray | None = None,
    live: bool = False,
    trace_out: str | None = None,
) -> ObsStudy:
    """Replay one targeted storm with telemetry on; localize the victim.

    The fleet runs with the full resilience stack so the storm surfaces
    as *symptoms* (timeouts, failed batches, breaker trips) rather than
    lost requests; the suspect is whatever
    :meth:`~repro.obs.Observer.suspect_replicas` ranks first.  Pass toy
    ``backends`` (plus ``images``/``labels``) to run without trained
    models; ``live=True`` restores in-loop model calls with identical
    telemetry.  ``trace_out`` writes the span log as Chrome trace JSON.
    """
    if backends is None:
        backends, images, labels = _default_fleet(fast, seed, dataset)
    elif images is None:
        raise ValueError("a custom fleet needs explicit images (and labels)")
    if n_requests is None:
        n_requests = 2000 if fast else 8000
    max_batch_size, max_wait_s = 8, 0.004

    capacity = sum(1.0 / b.mean_service_s(batch_size=max_batch_size) for b in backends)
    rate = 0.6 * capacity
    arrival_s = poisson_arrivals(
        rate,
        n_requests,
        rng=as_generator(derive_seed(seed, dataset, "obs-arrivals")),
    )
    stream_rng = as_generator(derive_seed(seed, dataset, "obs-stream"))
    indices = zipf_popularity(len(images), n_requests, exponent=0.9, rng=stream_rng)
    req_labels = labels[indices] if labels is not None else None
    if live:
        req_images = images[indices]
    else:
        backends = [oracle_backend(b, images) for b in backends]
        req_images = indices

    storm_rng = as_generator(derive_seed(seed, dataset, "obs-storm"))
    target = int(storm_rng.integers(len(backends)))
    horizon = float(arrival_s[-1]) + 0.05
    plan = _storm_on(target, horizon, storm_rng)
    resilience = resilience_for_fleet(backends, max_batch_size, max_wait_s)
    slo_s = 4.0 * (
        max_wait_s
        + max(
            b.mean_service_s(batch_size=max_batch_size) * max_batch_size
            for b in backends
        )
    )

    obs = Observer()
    cluster = Cluster(
        list(backends),
        policy="least-outstanding",
        faults=plan,
        resilience=resilience,
        slo_s=slo_s,
        max_batch_size=max_batch_size,
        max_wait_s=max_wait_s,
        cache_capacity=0,
        rng=derive_seed(seed, dataset, "obs-rng"),
        obs=obs,
    )
    report = cluster.serve(req_images, arrival_s, labels=req_labels, scenario="obs")

    # The verdict comes from telemetry alone; `target` is only the key.
    suspect = obs.suspect_replicas(top=1)[0]
    trace_events = 0
    if trace_out is not None:
        trace_events = obs.chrome_trace(trace_out)
    return ObsStudy(
        dataset=dataset,
        n_requests=n_requests,
        slo_s=slo_s,
        plan=plan,
        target_replica=target,
        suspect_replica=suspect,
        report=report,
        observer=obs,
        trace_path=trace_out,
        trace_events=trace_events,
    )
