"""Fleet experiment: balancing policies, autoscaling, and failures.

Extends the single-server comparison of :mod:`repro.experiments.serve`
to the cluster layer (:mod:`repro.cluster`).  Three studies share one
trained pipeline:

* **policy grid** — the four balancing policies dispatch identical
  Zipf-skewed request streams across a heterogeneous CBNet fleet (one
  replica per calibrated testbed: Pi 4 / GCI-CPU / GCI-K80) under
  ``steady``, ``diurnal``, and ``flash-crowd`` load.  Round-robin feeds
  the Pi the same share as the K80 and its tail shows it; power-of-two
  probes its way to near least-outstanding tails at two signals per
  request.
* **autoscaler** — a fixed peak-sized homogeneous fleet vs. a reactive
  autoscaler growing/draining the same unit under the diurnal cycle:
  the SLO-attainment and replica-seconds columns make the "as good for
  less cost" trade directly readable.
* **failure injection** — the fleet loses its fastest replica
  mid-trace (crash + recover) behind degrade-mode admission control,
  so the report covers availability, retries, and graceful degradation
  rather than latency alone.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable

import numpy as np

from repro.cluster.admission import AdmissionController
from repro.cluster.autoscaler import Autoscaler, AutoscalerConfig
from repro.cluster.engine import Cluster, ClusterReport, fleet_comparison_table
from repro.cluster.failures import crash_window
from repro.cluster.policies import POLICY_NAMES
from repro.experiments.common import pipeline_for, scale_for
from repro.hw.devices import device_profiles
from repro.parallel.sweep import run_sweep
from repro.serving.arrivals import (
    diurnal_arrivals,
    flash_crowd_arrivals,
    poisson_arrivals,
    zipf_popularity,
)
from repro.serving.backends import BranchyNetBackend, CBNetBackend, InferenceBackend
from repro.sim import oracle_backend
from repro.utils.rng import as_generator, derive_seed

__all__ = ["FLEET_SCENARIOS", "FleetSpec", "FleetComparison", "run_fleet_comparison"]

FLEET_SCENARIOS = ("steady", "diurnal", "flash-crowd")


@dataclass(frozen=True)
class FleetSpec:
    """The hardware side of one fleet experiment.

    ``backends`` is the heterogeneous base fleet for the policy grid and
    failure study; ``spawn_backend`` builds the homogeneous scaling unit
    the autoscaler study grows and drains; ``degrade_backends`` (when
    given) is the dynamically-routed fleet used by the failure study so
    degrade-mode admission has a genuinely cheaper path to force.
    """

    backends: tuple[InferenceBackend, ...]
    spawn_backend: Callable[[], InferenceBackend]
    degrade_backends: tuple[InferenceBackend, ...] = ()
    max_batch_size: int = 8
    max_wait_s: float = 0.004

    def capacity_hz(self) -> float:
        """Aggregate base-fleet service capacity at full batches."""
        return sum(
            1.0 / b.mean_service_s(batch_size=self.max_batch_size)
            for b in self.backends
        )

    def unit_rate_hz(self) -> float:
        """Service capacity of one autoscaler unit at full batches."""
        return 1.0 / self.spawn_backend().mean_service_s(
            batch_size=self.max_batch_size
        )


@dataclass
class FleetComparison:
    """All three fleet studies plus the context that sized the load."""

    dataset: str
    n_requests: int
    capacity_hz: float
    slo_s: float
    policy_reports: dict[str, list[ClusterReport]]
    autoscaler_reports: list[ClusterReport]
    failure_report: ClusterReport

    def render(self) -> str:
        """Human-readable block of tables, one per study."""
        blocks = []
        for scenario, reports in self.policy_reports.items():
            rate = reports[0].arrival_rate_hz
            title = (
                f"Fleet policies ({self.dataset}) — {scenario} @ {rate:.0f} req/s, "
                f"SLO {self.slo_s * 1e3:.0f} ms, {reports[0].n_replicas_start} replicas"
            )
            blocks.append(fleet_comparison_table(reports, title).render())
        if self.autoscaler_reports:
            fixed, auto = self.autoscaler_reports
            title = (
                f"Autoscaler vs fixed fleet ({self.dataset}) — diurnal load, "
                f"fixed {fixed.n_replicas_start} vs auto "
                f"{auto.n_replicas_start}..{auto.peak_replicas} replicas "
                f"({auto.scale_ups} up / {auto.scale_downs} down)"
            )
            blocks.append(
                fleet_comparison_table([fixed, auto], title).render()
                + "\n"
                + (
                    f"autoscaled: {auto.replica_seconds:.2f} replica-s at "
                    f"{auto.slo_attainment:.1%} SLO vs fixed "
                    f"{fixed.replica_seconds:.2f} replica-s at "
                    f"{fixed.slo_attainment:.1%}"
                )
            )
        if self.failure_report is not None:
            r = self.failure_report
            title = (
                f"Failure injection ({self.dataset}) — fastest replica crashes "
                f"mid-trace, degrade-mode admission "
                f"({r.n_retried} retried, {r.n_degraded} degraded, "
                f"{r.n_crashes} crash)"
            )
            blocks.append(fleet_comparison_table([r], title).render())
        return "\n\n".join(blocks)

    def report_for(self, scenario: str, policy: str) -> ClusterReport:
        """Look up one cell of the policy grid."""
        for report in self.policy_reports[scenario]:
            if report.policy == policy:
                return report
        raise KeyError(f"no report for policy {policy!r} in scenario {scenario!r}")


def _default_fleet(fast: bool, seed: int, dataset: str):
    """Trained CBNet/BranchyNet backends on the three calibrated testbeds."""
    scale = scale_for(fast)
    artifacts = pipeline_for(dataset, scale, seed=seed)
    devices = device_profiles()
    backends = tuple(
        CBNetBackend(artifacts.cbnet, dev) for dev in devices.values()
    )
    degrade_backends = tuple(
        BranchyNetBackend(artifacts.branchynet, dev) for dev in devices.values()
    )
    spec = FleetSpec(
        backends=backends,
        spawn_backend=lambda: CBNetBackend(artifacts.cbnet, devices["gci-cpu"]),
        degrade_backends=degrade_backends,
    )
    test = artifacts.datasets["test"]
    return spec, test.images, test.labels


def _oracle_fleet(fleet: FleetSpec, images: np.ndarray) -> FleetSpec:
    """Wrap every backend (incl. spawned units) in the inference oracle.

    Tables are memoized per (model, threshold, image pool), so the three
    device calibrations of one model share one precomputation and every
    autoscaler spawn is a cheap cache hit.
    """
    spawn = fleet.spawn_backend
    return replace(
        fleet,
        backends=tuple(oracle_backend(b, images) for b in fleet.backends),
        degrade_backends=tuple(
            oracle_backend(b, images) for b in fleet.degrade_backends
        ),
        spawn_backend=lambda: oracle_backend(spawn(), images),
    )


def _run_policy_cell(task) -> ClusterReport:
    """One (scenario, policy) grid cell — module-level for the pool."""
    (
        backends,
        policy,
        scenario,
        arrival_s,
        images,
        labels,
        slo_s,
        max_batch_size,
        max_wait_s,
        cache_capacity,
        cell_seed,
    ) = task
    cluster = Cluster(
        list(backends),
        policy=policy,
        slo_s=slo_s,
        max_batch_size=max_batch_size,
        max_wait_s=max_wait_s,
        cache_capacity=cache_capacity,
        rng=cell_seed,
    )
    return cluster.serve(images, arrival_s, labels=labels, scenario=scenario)


def run_fleet_comparison(
    fast: bool = True,
    seed: int = 0,
    dataset: str = "mnist",
    scenarios: tuple[str, ...] = FLEET_SCENARIOS,
    policies: tuple[str, ...] = POLICY_NAMES,
    n_requests: int | None = None,
    cache_capacity: int = 256,
    fleet: FleetSpec | None = None,
    images: np.ndarray | None = None,
    labels: np.ndarray | None = None,
    live: bool = False,
    jobs: int = 1,
) -> FleetComparison:
    """Run the three fleet studies and return every report.

    Every policy of one scenario replays the *same* arrival trace and
    request stream, so the tail columns are directly comparable.  Pass a
    toy ``fleet`` (plus ``images``/``labels``) to exercise the full
    experiment path without trained models — that is what the smoke
    tests do.

    By default the fleet runs in oracle mode: one precomputed inference
    pass per model over the unique image pool serves every scenario,
    policy, and replica (``live=True`` restores in-loop inference — the
    equivalence tests' reference path).  ``jobs > 1`` fans the
    scenario × policy grid over a process pool via
    :func:`repro.parallel.sweep.run_sweep`; results are identical to the
    serial order (each cell derives its own seed).
    """
    unknown = set(scenarios) - set(FLEET_SCENARIOS)
    if unknown:
        raise ValueError(
            f"unknown scenarios: {sorted(unknown)} (choose from {FLEET_SCENARIOS})"
        )
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    if fleet is None:
        fleet, images, labels = _default_fleet(fast, seed, dataset)
    elif images is None:
        raise ValueError("a custom fleet needs explicit images (and labels)")
    if n_requests is None:
        n_requests = 2400 if fast else 6000

    capacity = fleet.capacity_hz()
    # SLO: a full batch on the slowest base replica plus the batching
    # deadline, with 3x queueing headroom — loose enough that a sanely
    # balanced fleet attains it, tight enough that round-robin's Pi queue
    # and unmitigated failures visibly miss it.
    slowest = max(
        b.mean_service_s(batch_size=fleet.max_batch_size) * fleet.max_batch_size
        for b in fleet.backends
    )
    slo_s = 3.0 * (slowest + fleet.max_wait_s)

    stream_rng = as_generator(derive_seed(seed, dataset, "fleet-stream"))
    indices = zipf_popularity(len(images), n_requests, exponent=0.9, rng=stream_rng)
    req_labels = labels[indices] if labels is not None else None
    if live:
        req_images = images[indices]
    else:
        fleet = _oracle_fleet(fleet, images)
        req_images = indices

    def arrivals_for(scenario: str) -> np.ndarray:
        rng = as_generator(derive_seed(seed, dataset, f"fleet-{scenario}"))
        if scenario == "steady":
            return poisson_arrivals(0.6 * capacity, n_requests, rng=rng)
        if scenario == "diurnal":
            mean = 0.55 * capacity
            return diurnal_arrivals(
                mean, n_requests, period_s=0.5 * n_requests / mean, depth=0.75, rng=rng
            )
        # flash-crowd: comfortable base load, then a sustained spike past
        # the whole fleet's capacity for ~an eighth of the trace.
        base = 0.35 * capacity
        span = n_requests / base
        return flash_crowd_arrivals(
            base,
            2.5 * capacity,
            n_requests,
            spike_start_s=0.25 * span,
            spike_duration_s=0.08 * span,
            rng=rng,
        )

    # The scenario × policy grid is embarrassingly parallel: every cell
    # builds its own Cluster and derives its own seed, so `jobs` workers
    # return bit-identical reports in the serial order.
    arrivals = {scenario: arrivals_for(scenario) for scenario in scenarios}
    cells = [
        (
            fleet.backends,
            policy,
            scenario,
            arrivals[scenario],
            req_images,
            req_labels,
            slo_s,
            fleet.max_batch_size,
            fleet.max_wait_s,
            cache_capacity,
            derive_seed(seed, scenario, policy),
        )
        for scenario in scenarios
        for policy in policies
    ]
    results = run_sweep(_run_policy_cell, cells, n_workers=jobs, parallel=jobs > 1)
    policy_reports: dict[str, list[ClusterReport]] = {s: [] for s in scenarios}
    for result in results:
        policy_reports[result.value.scenario].append(result.value)

    autoscaler_reports = _autoscaler_study(
        fleet, req_images, req_labels, n_requests, cache_capacity, seed, dataset
    )
    failure_report = _failure_study(
        fleet, req_images, req_labels, slo_s, seed, dataset
    )
    return FleetComparison(
        dataset=dataset,
        n_requests=n_requests,
        capacity_hz=capacity,
        slo_s=slo_s,
        policy_reports=policy_reports,
        autoscaler_reports=autoscaler_reports,
        failure_report=failure_report,
    )


def _autoscaler_study(
    fleet: FleetSpec,
    images: np.ndarray,
    labels: np.ndarray | None,
    n_requests: int,
    cache_capacity: int,
    seed: int,
    dataset: str,
) -> list[ClusterReport]:
    """Fixed peak-sized fleet vs reactive autoscaler on one diurnal trace.

    Homogeneous on purpose: every replica is one ``spawn_backend`` unit,
    so the only variable is *how many* are up — the autoscaling claim
    isolated from the balancing claim.
    """
    unit = fleet.unit_rate_hz()
    min_units, max_units = 2, 5
    mean_rate = 1.1 * min_units * unit  # trough idles 2 units, peak needs ~4
    period = 0.5 * n_requests / mean_rate
    arrival_s = diurnal_arrivals(
        mean_rate,
        n_requests,
        period_s=period,
        depth=0.75,
        rng=as_generator(derive_seed(seed, dataset, "fleet-autoscale")),
    )
    unit_service = fleet.spawn_backend().mean_service_s(
        batch_size=fleet.max_batch_size
    )
    slo_s = 3.0 * (unit_service * fleet.max_batch_size + fleet.max_wait_s)

    def build(n_units: int, autoscaler: Autoscaler | None) -> Cluster:
        return Cluster(
            [fleet.spawn_backend() for _ in range(n_units)],
            policy="least-outstanding",
            autoscaler=autoscaler,
            slo_s=slo_s,
            max_batch_size=fleet.max_batch_size,
            max_wait_s=fleet.max_wait_s,
            cache_capacity=cache_capacity,
            rng=derive_seed(seed, dataset, "fleet-autoscale-rng"),
        )

    fixed = build(max_units, None).serve(
        images, arrival_s, labels=labels, scenario="diurnal-fixed"
    )
    config = AutoscalerConfig(
        slo_s=slo_s,
        interval_s=0.02 * period,
        window_s=0.06 * period,
        scale_up_queue=1.5 * fleet.max_batch_size,
        scale_down_queue=0.25 * fleet.max_batch_size,
        min_replicas=min_units,
        max_replicas=max_units,
        warmup_s=0.01 * period,
        cooldown_s=0.03 * period,
    )
    auto = build(
        min_units, Autoscaler(config, fleet.spawn_backend)
    ).serve(images, arrival_s, labels=labels, scenario="diurnal-auto")
    return [fixed, auto]


def _failure_study(
    fleet: FleetSpec,
    images: np.ndarray,
    labels: np.ndarray | None,
    slo_s: float,
    seed: int,
    dataset: str,
) -> ClusterReport:
    """Crash the fastest replica mid-trace behind degrade-mode admission."""
    backends = list(fleet.degrade_backends or fleet.backends)
    capacity = sum(
        1.0 / b.mean_service_s(batch_size=fleet.max_batch_size) for b in backends
    )
    n_requests = images.shape[0]
    # No result cache here: the availability story needs every request to
    # hit a replica, so losing the fastest one actually hurts.  0.7 of
    # the all-easy capacity keeps the healthy fleet comfortable but makes
    # the outage window genuinely tight.
    rate = 0.7 * capacity
    span = n_requests / rate
    arrival_s = poisson_arrivals(
        rate, n_requests, rng=as_generator(derive_seed(seed, dataset, "fleet-failure"))
    )
    fastest = min(
        range(len(backends)),
        key=lambda i: backends[i].mean_service_s(batch_size=fleet.max_batch_size),
    )
    cluster = Cluster(
        backends,
        policy="power-of-two",
        admission=AdmissionController(
            max_outstanding=4 * fleet.max_batch_size * len(backends), policy="degrade"
        ),
        failures=crash_window(fastest, at_s=0.35 * span, duration_s=0.25 * span),
        slo_s=slo_s,
        max_batch_size=fleet.max_batch_size,
        max_wait_s=fleet.max_wait_s,
        cache_capacity=0,
        recover_warmup_s=0.01 * span,
        rng=derive_seed(seed, dataset, "fleet-failure-rng"),
    )
    return cluster.serve(images, arrival_s, labels=labels, scenario="crash-recover")
