"""Command-line entry point: regenerate any table or figure.

Examples
--------
::

    cbnet-experiment table2 --fast
    cbnet-experiment fig5
    cbnet-experiment scalability --dataset fmnist
    cbnet-experiment serve --fast --scenario bursty
    cbnet-experiment fleet --fast
    cbnet-experiment tenants --fast
    cbnet-experiment chaos --fast
    cbnet-experiment netchaos --fast --link lte
    cbnet-experiment obs --fast --trace-out trace.json
    cbnet-experiment prof --fast --prof-out profile.speedscope.json
    cbnet-experiment offload --fast --link lte
    cbnet-experiment all --fast
"""

from __future__ import annotations

import argparse
import sys

from repro.experiments.ablations import (
    run_activation_ablation,
    run_bottleneck_ablation,
    run_hard_fraction_sweep,
    run_threshold_sweep,
)
from repro.experiments.chaos import run_chaos_comparison
from repro.experiments.common import DATASETS
from repro.experiments.fig3 import run_fig3
from repro.experiments.fig5 import run_fig5
from repro.experiments.fleet import FLEET_SCENARIOS, run_fleet_comparison
from repro.experiments.netchaos import run_netchaos_comparison
from repro.experiments.obs import run_obs_study
from repro.experiments.offload import run_offload_study
from repro.experiments.prof import run_prof_study
from repro.experiments.scalability import run_scalability
from repro.experiments.serve import SCENARIOS, run_serving_comparison
from repro.experiments.table1 import run_table1
from repro.experiments.table2 import run_table2
from repro.experiments.tenants import run_tenants_comparison

__all__ = ["main"]


def main(argv: list[str] | None = None) -> int:
    """Parse arguments and run the selected experiment(s)."""
    parser = argparse.ArgumentParser(
        prog="cbnet-experiment",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument(
        "experiment",
        choices=[
            "table1",
            "table2",
            "fig3",
            "fig5",
            "scalability",
            "ablations",
            "serve",
            "fleet",
            "tenants",
            "chaos",
            "netchaos",
            "obs",
            "prof",
            "offload",
            "report",
            "all",
        ],
    )
    parser.add_argument("--fast", action="store_true", help="down-scaled run")
    parser.add_argument("--dataset", default=None, help="restrict to one dataset")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--scenario",
        choices=(*SCENARIOS, *FLEET_SCENARIOS, "all"),
        default="all",
        help="load shape for the serving engine (serve/fleet only)",
    )
    parser.add_argument(
        "--workers", type=int, default=1, help="serving worker replicas (serve only)"
    )
    parser.add_argument(
        "--link",
        choices=("wifi", "lte", "ethernet"),
        default="lte",
        help="network preset for the offload policy study (offload only)",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="processes for the fleet/offload experiment grids "
        "(default 1: serial, deterministic CI ordering; results are "
        "identical at any value)",
    )
    parser.add_argument(
        "--trace-out",
        default=None,
        metavar="PATH",
        help="write the observability study's span log as Chrome "
        "trace-event JSON for ui.perfetto.dev (obs only)",
    )
    parser.add_argument(
        "--prof-out",
        default=None,
        metavar="PATH",
        help="write the profiling study's phase tree as speedscope JSON "
        "(plus PATH.collapsed for flamegraph.pl; prof only)",
    )
    parser.add_argument(
        "--live",
        action="store_true",
        help="run real model inference inside the serving event loops "
        "instead of the precomputed oracle (slower; identical metrics)",
    )
    args = parser.parse_args(argv)

    # A --scenario belonging to the *other* serving experiment is a user
    # error when one experiment was named explicitly ("all" falls back to
    # each experiment's full scenario set instead).
    if args.experiment == "serve" and args.scenario not in (*SCENARIOS, "all"):
        parser.error(
            f"--scenario {args.scenario} applies to 'fleet'; "
            f"'serve' offers {SCENARIOS}"
        )
    if args.experiment == "fleet" and args.scenario not in (*FLEET_SCENARIOS, "all"):
        parser.error(
            f"--scenario {args.scenario} applies to 'serve'; "
            f"'fleet' offers {FLEET_SCENARIOS}"
        )

    datasets = (args.dataset,) if args.dataset else DATASETS

    def emit(text: str) -> None:
        print(text)
        print()

    if args.experiment in ("table1", "all"):
        emit(run_table1().render())
    if args.experiment in ("fig3", "all"):
        emit(run_fig3(fast=args.fast, seed=args.seed).render())
    if args.experiment in ("table2", "all"):
        emit(run_table2(fast=args.fast, datasets=datasets, seed=args.seed).render())
    if args.experiment in ("fig5", "all"):
        emit(run_fig5(fast=args.fast, seed=args.seed).render())
    if args.experiment in ("scalability", "all"):
        for name in datasets:
            emit(run_scalability(name, fast=args.fast, seed=args.seed).render())
    if args.experiment in ("serve", "all"):
        scenarios = (args.scenario,) if args.scenario in SCENARIOS else SCENARIOS
        emit(
            run_serving_comparison(
                fast=args.fast,
                seed=args.seed,
                dataset=args.dataset or "mnist",
                scenarios=scenarios,
                n_workers=args.workers,
                live=args.live,
            ).render()
        )
    if args.experiment in ("fleet", "all"):
        scenarios = (
            FLEET_SCENARIOS
            if args.scenario == "all" or args.scenario not in FLEET_SCENARIOS
            else (args.scenario,)
        )
        emit(
            run_fleet_comparison(
                fast=args.fast,
                seed=args.seed,
                dataset=args.dataset or "mnist",
                scenarios=scenarios,
                live=args.live,
                jobs=args.jobs,
            ).render()
        )
    if args.experiment in ("tenants", "all"):
        emit(
            run_tenants_comparison(
                fast=args.fast,
                seed=args.seed,
                dataset=args.dataset or "mnist",
                live=args.live,
            ).render()
        )
    if args.experiment in ("chaos", "all"):
        emit(
            run_chaos_comparison(
                fast=args.fast,
                seed=args.seed,
                dataset=args.dataset or "mnist",
                live=args.live,
            ).render()
        )
    if args.experiment in ("netchaos", "all"):
        emit(
            run_netchaos_comparison(
                fast=args.fast,
                seed=args.seed,
                link_name=args.link,
            ).render()
        )
    if args.experiment in ("obs", "all"):
        emit(
            run_obs_study(
                fast=args.fast,
                seed=args.seed,
                dataset=args.dataset or "mnist",
                live=args.live,
                trace_out=args.trace_out,
            ).render()
        )
    if args.experiment in ("prof", "all"):
        emit(
            run_prof_study(
                fast=args.fast,
                seed=args.seed,
                dataset=args.dataset or "mnist",
                live=args.live,
                prof_out=args.prof_out,
            ).render()
        )
    if args.experiment in ("offload", "all"):
        emit(
            run_offload_study(
                fast=args.fast,
                seed=args.seed,
                dataset=args.dataset or "mnist",
                link_name=args.link,
                live=args.live,
                jobs=args.jobs,
            ).render()
        )
    if args.experiment in ("ablations", "all"):
        emit(run_bottleneck_ablation(seed=args.seed).render())
        emit(run_activation_ablation(seed=args.seed).render())
        emit(run_threshold_sweep(fast=args.fast, seed=args.seed).render())
        emit(run_hard_fraction_sweep(seed=args.seed).render())
    if args.experiment == "report":
        from pathlib import Path

        from repro.eval.report import collect_report

        results = Path(__file__).resolve().parents[3] / "benchmarks" / "results"
        emit(collect_report(results))
    return 0


if __name__ == "__main__":
    sys.exit(main())
