"""Shared experiment plumbing: scales, cached pipelines per dataset."""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.config import PipelineConfig, TrainConfig
from repro.core.pipeline import (
    PipelineArtifacts,
    build_cbnet_pipeline,
    train_baseline_lenet,
)
from repro.models.lenet import LeNet

__all__ = ["ExperimentScale", "scale_for", "pipeline_for", "lenet_for", "DATASETS"]

DATASETS = ("mnist", "fmnist", "kmnist")


@dataclass(frozen=True)
class ExperimentScale:
    """Dataset/epoch sizes for one run mode.

    ``fast`` keeps the full benchmark suite under a few minutes end to
    end (after the first cached run); ``full`` matches the default
    synthetic dataset sizes (6k train / 1k test per dataset).
    """

    name: str
    n_train: int
    n_test: int
    classifier_epochs: int
    autoencoder_epochs: int


# Classifier epochs are the early-exit-rate lever: the entropy gate
# (T=0.05 on MNIST) demands branch confidence ~0.993, which the joint
# loss reaches after ~16 epochs at this dataset scale — landing the exit
# rates at the paper's operating points (94.9% / 76.9% / 63.1%).
FAST = ExperimentScale(
    "fast", n_train=3000, n_test=600, classifier_epochs=16, autoencoder_epochs=10
)
FULL = ExperimentScale(
    "full", n_train=6000, n_test=1000, classifier_epochs=20, autoencoder_epochs=14
)


def scale_for(fast: bool) -> ExperimentScale:
    """Pick the down-scaled or paper-scale experiment sizing."""
    return FAST if fast else FULL


def pipeline_for(dataset: str, scale: ExperimentScale, seed: int = 0) -> PipelineArtifacts:
    """Cached CBNet pipeline for one dataset at one scale."""
    config = PipelineConfig(
        dataset=dataset,
        seed=seed,
        n_train=scale.n_train,
        n_test=scale.n_test,
        classifier_train=TrainConfig(epochs=scale.classifier_epochs),
        autoencoder_train=TrainConfig(
            epochs=scale.autoencoder_epochs, batch_size=128, lr=1e-3
        ),
        cache=True,
    )
    return build_cbnet_pipeline(config)


def lenet_for(dataset: str, scale: ExperimentScale, seed: int = 0) -> LeNet:
    """Cached baseline LeNet for one dataset at one scale."""
    model, _ = train_baseline_lenet(
        dataset,
        config=TrainConfig(epochs=scale.classifier_epochs),
        seed=seed,
        n_train=scale.n_train,
        n_test=scale.n_test,
        cache=True,
    )
    return model
