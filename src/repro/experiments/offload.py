"""Offload experiment: split-point sweep, policy comparison, wire codecs.

Three studies share one trained pipeline on the paper's pi4 → GCI
topology (:mod:`repro.offload`):

* **split sweep** — the partition planner prices every layer boundary
  of the LeNet and CBNet stacks per link preset (wifi / LTE /
  ethernet), starring each link's optimum and printing its Table-II
  style edge / uplink / cloud / downlink breakdown.  Ethernet favours
  full offload (the GCI is ~10x faster), LTE's 60 ms RTT favours
  staying on-device — the split story only gets interesting in between.
* **policy comparison** — the four runtime deciders serve one identical
  request stream on a Pi 4 edge behind an LTE uplink, fronting a
  GCI-CPU cloud server.  The arrival rate is sized to overload *both*
  degenerate strategies: past the Pi's full-model capacity (always-local
  melts) and past the LTE uplink's raw-image capacity (always-remote
  melts).  Only entropy-gated splitting — easy samples exit on-device,
  ~5% hard samples ship a stem activation — sustains the load; the p95
  column is the asserted benchmark.
* **codec study** — entropy-gated with float32 / float16 / uint8
  intermediate-tensor transfer: uplink bytes shrink 2-4x while the
  accuracy column shows the genuine served cost of quantized
  activations (cloud predictions run on the decoded tensors).
"""

from __future__ import annotations

import functools
from dataclasses import dataclass, field

import numpy as np

from repro.eval.tables import Table
from repro.experiments.common import lenet_for, pipeline_for, scale_for
from repro.hw.devices import gci_cpu, raspberry_pi4
from repro.hw.latency import branchynet_expected_latency
from repro.hw.network import network_links
from repro.offload.engine import (
    EdgeTier,
    OffloadReport,
    cloud_server_for,
    offload_comparison_table,
)
from repro.offload.partition import best_partition, partition_table, plan_partitions
from repro.offload.policies import (
    AlwaysLocal,
    AlwaysRemote,
    DeadlineAware,
    EntropyGated,
    OffloadPolicy,
    TensorCodec,
)
from repro.parallel.sweep import run_sweep
from repro.serving.arrivals import poisson_arrivals, zipf_popularity
from repro.utils.rng import as_generator, derive_seed

__all__ = ["OffloadStudy", "run_offload_study", "OFFLOAD_CODECS"]

OFFLOAD_CODECS = ("float32", "float16", "uint8", "kmeans8")


@dataclass
class OffloadStudy:
    """All three offload studies plus the sizing that shaped the load."""

    dataset: str
    edge: str
    cloud: str
    link: str
    n_requests: int
    exit_rate: float
    arrival_rate_hz: float
    gate_s: float  # edge stem+branch+gate latency per sample
    local_mean_s: float  # expected all-local per-sample latency
    uplink_occupancy_s: float  # expected raw-image uplink occupancy
    sweep_tables: list[Table]
    breakdown_lines: list[str]
    policy_reports: list[OffloadReport]
    codec_reports: list[OffloadReport] = field(default_factory=list)

    def render(self) -> str:
        blocks = [t.render() for t in self.sweep_tables]
        blocks.append("\n".join(self.breakdown_lines))
        title = (
            f"Offload policies ({self.dataset}, {self.edge} -> {self.cloud} over "
            f"{self.link}) — {self.arrival_rate_hz:.0f} req/s, "
            f"exit rate {self.exit_rate:.1%}"
        )
        blocks.append(offload_comparison_table(self.policy_reports, title).render())
        if self.codec_reports:
            blocks.append(
                offload_comparison_table(
                    self.codec_reports,
                    f"Wire codecs ({self.dataset}, entropy-gated over {self.link})",
                ).render()
            )
            base = self.codec_reports[0]
            for r in self.codec_reports[1:]:
                blocks.append(
                    f"codec {r.codec}: {r.uplink_bytes / max(base.uplink_bytes, 1):.2f}x "
                    f"uplink bytes, accuracy delta "
                    f"{100 * (r.accuracy - base.accuracy):+.2f} pp vs float32"
                )
        return "\n\n".join(blocks)

    def report_for(self, policy: str) -> OffloadReport:
        """Look up one policy row of the comparison."""
        for report in self.policy_reports:
            if report.policy == policy:
                return report
        raise KeyError(f"no report for policy {policy!r}")


def _split_sweep(models: dict[str, object], edge, cloud) -> tuple[list[Table], list[str]]:
    """Partition sweep per model across the link presets + best breakdowns."""
    tables: list[Table] = []
    lines = ["best split per (model, link) — edge/uplink/cloud/downlink breakdown:"]
    for model_name, model in models.items():
        plans = {
            link_name: plan_partitions(model, edge, cloud, link)
            for link_name, link in network_links().items()
        }
        tables.append(
            partition_table(
                plans,
                f"{model_name} split sweep ({edge.name} -> {cloud.name}), "
                "total latency per cut (* = link optimum)",
            )
        )
        for link_name, link_plans in plans.items():
            b = best_partition(link_plans)
            lines.append(
                f"  {model_name:10s} {link_name:9s} cut {b.cut.index:2d} after "
                f"{b.cut.after:10s}: edge {b.edge_s * 1e3:7.3f} + up "
                f"{b.uplink_s * 1e3:7.3f} + cloud {b.cloud_s * 1e3:7.3f} + down "
                f"{b.downlink_s * 1e3:7.3f} = {b.total_s * 1e3:7.3f} ms "
                f"({b.uplink_bytes} B up)"
            )
    return tables, lines


def _run_offload_cell(ctx: dict, task: tuple) -> OffloadReport:
    """One (policy, codec) study cell — module-level for the pool."""
    policy, codec_name, tag = task
    codec = TensorCodec(codec_name)
    cloud = cloud_server_for(
        policy,
        ctx["branchy"],
        ctx["cloud_dev"],
        oracle=ctx["oracle"],
        codec=codec,
        max_batch_size=16,
        max_wait_s=0.004,
    )
    tier = EdgeTier(
        ctx["branchy"],
        ctx["edge"],
        ctx["link"],
        cloud,
        policy,
        codec=codec,
        oracle=ctx["oracle"],
        rng=as_generator(derive_seed(ctx["seed"], ctx["dataset"], "offload-link", tag)),
    )
    return tier.serve(
        ctx["images"], ctx["arrival_s"], labels=ctx["labels"], scenario="steady"
    )


def run_offload_study(
    fast: bool = True,
    seed: int = 0,
    dataset: str = "mnist",
    n_requests: int | None = None,
    link_name: str = "lte",
    policies: tuple[OffloadPolicy, ...] | None = None,
    codecs: tuple[str, ...] = OFFLOAD_CODECS,
    live: bool = False,
    jobs: int = 1,
) -> OffloadStudy:
    """Run the three offload studies and return every report.

    Every policy (and every codec) replays the *same* Zipf-skewed
    request stream and arrival trace, so the p95 column compares
    strategies, not luck.  The load is sized from the calibrated device
    and link models — see :class:`OffloadStudy` for the three rates the
    asserted benchmark checks.

    By default the edge gate, local trunk, and cloud tier answer from a
    precomputed :class:`~repro.sim.OffloadOracle` over the unique test
    images (one pass shared by every policy and codec run, including the
    codec-decoded cloud predictions); ``live=True`` keeps real in-loop
    inference.  ``jobs > 1`` fans the policy/codec grid over a process
    pool via :func:`repro.parallel.sweep.run_sweep` with identical
    results (each cell derives its own seed).
    """
    scale = scale_for(fast)
    artifacts = pipeline_for(dataset, scale, seed=seed)
    lenet = lenet_for(dataset, scale, seed=seed)
    branchy = artifacts.branchynet
    edge, cloud_dev = raspberry_pi4(), gci_cpu()
    link = network_links()[link_name]

    test = artifacts.datasets["test"]
    exit_rate = branchy.infer(test.images).early_exit_rate
    lat = branchynet_expected_latency(branchy, edge, exit_rate)
    gate_s, local_mean_s = lat.early_path, lat.expected

    # Raw-image uplink occupancy — the serialization capacity
    # always-remote must live within.  Matches the engine's occupancy
    # model: every attempt holds the link for its serialization, every
    # retry additionally holds it for one RTT timeout, so the expected
    # occupancy is tx·E[attempts] + rtt·E[retries].
    img_bytes = TensorCodec().wire_bytes(int(np.prod(test.images.shape[1:])))
    loss = link.loss_rate
    uplink_occ = (
        link.serialization_s(img_bytes) + link.rtt_s * loss
    ) / (1.0 - loss)

    # Sized to overload both degenerate strategies while the gated edge
    # keeps ~12% headroom: past the Pi's full-model capacity and past
    # the raw-image uplink capacity, below the gate-only capacity.
    rate_hz = min(0.88 / gate_s, 1.25 / local_mean_s)

    if n_requests is None:
        n_requests = 2000 if fast else 5000
    stream_rng = as_generator(derive_seed(seed, dataset, "offload-stream"))
    indices = zipf_popularity(len(test.images), n_requests, exponent=0.9, rng=stream_rng)
    images, labels = test.images[indices], test.labels[indices]
    arrival_s = poisson_arrivals(
        rate_hz, n_requests, rng=as_generator(derive_seed(seed, dataset, "offload-arrivals"))
    )

    sweep_tables, breakdown = _split_sweep(
        {"lenet": lenet, "branchynet": branchy, "cbnet": artifacts.cbnet}, edge, cloud_dev
    )

    if policies is None:
        policies = (
            AlwaysLocal(),
            AlwaysRemote(),
            EntropyGated(),
            # A 200 ms interactive SLO: healthy links meet it (ship hard
            # samples), a collapsed link misses it (fall back to local).
            DeadlineAware(deadline_s=0.2),
        )

    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    oracle = None
    if live:
        req_images = images
    else:
        from repro.sim import offload_oracle

        # One shared precomputation: gate statistics, local trunk, stem
        # features, and per-codec cloud predictions over the unique pool.
        oracle = offload_oracle(branchy, test.images)
        req_images = indices
    ctx = {
        "branchy": branchy,
        "edge": edge,
        "cloud_dev": cloud_dev,
        "link": link,
        "oracle": oracle,
        "images": req_images,
        "arrival_s": arrival_s,
        "labels": labels,
        "seed": seed,
        "dataset": dataset,
    }
    # One flat (policy, codec) grid; the float32 entropy-gated run doubles
    # as the codec baseline instead of being re-simulated.
    cells = [(p, "float32", p.name) for p in policies]
    has_gated_f32 = any(p.name == "entropy-gated" for p in policies)
    codec_cells = {
        c: (EntropyGated(), c, f"codec-{c}")
        for c in codecs
        if not (c == "float32" and has_gated_f32)
    }
    cells.extend(codec_cells.values())
    if oracle is not None and jobs > 1:
        # Force the oracle's lazy per-(payload, codec) caches — stem
        # features, decoded payloads, cloud tables — in the parent, so
        # workers inherit them populated instead of each cell re-running
        # the very model passes the oracle exists to amortize.
        distinct: dict[tuple[str, str], tuple] = {}
        for policy, codec_name, _ in cells:
            distinct.setdefault((policy.payload, codec_name), (policy, codec_name))
        for policy, codec_name in distinct.values():
            cloud_server_for(policy, branchy, cloud_dev, oracle=oracle,
                             codec=TensorCodec(codec_name))
    results = run_sweep(
        functools.partial(_run_offload_cell, ctx), cells, n_workers=jobs,
        parallel=jobs > 1,
    )
    # run_sweep keeps cell order, so the first len(policies) results ARE
    # the policy grid (positional — robust to duplicate policy names);
    # the remaining codec cells have unique tags by construction.
    cell_values = [r.value for r in results]
    policy_reports = cell_values[: len(policies)]
    codec_by_tag = {
        cells[i][2]: cell_values[i] for i in range(len(policies), len(cells))
    }
    baseline = next(
        (r for r in policy_reports if r.policy == "entropy-gated" and r.codec == "float32"),
        None,
    )
    codec_reports = [
        baseline
        if c == "float32" and baseline is not None
        else codec_by_tag[f"codec-{c}"]
        for c in codecs
    ]

    return OffloadStudy(
        dataset=dataset,
        edge=edge.name,
        cloud=cloud_dev.name,
        link=link.name,
        n_requests=n_requests,
        exit_rate=exit_rate,
        arrival_rate_hz=rate_hz,
        gate_s=gate_s,
        local_mean_s=local_mean_s,
        uplink_occupancy_s=uplink_occ,
        sweep_tables=sweep_tables,
        breakdown_lines=breakdown,
        policy_reports=policy_reports,
        codec_reports=codec_reports,
    )
