"""Weight initializers (Glorot/He/LeCun) with explicit RNG threading."""

from __future__ import annotations

import numpy as np

__all__ = ["glorot_uniform", "he_normal", "lecun_normal", "zeros", "fan_in_out"]


def fan_in_out(shape: tuple[int, ...]) -> tuple[int, int]:
    """Compute (fan_in, fan_out) for dense (out, in) or conv (F, C, KH, KW)."""
    if len(shape) == 2:
        out_features, in_features = shape
        return in_features, out_features
    if len(shape) == 4:
        f, c, kh, kw = shape
        receptive = kh * kw
        return c * receptive, f * receptive
    if len(shape) == 1:
        return shape[0], shape[0]
    raise ValueError(f"unsupported parameter shape {shape}")


def glorot_uniform(shape: tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
    """Glorot/Xavier uniform — Keras's default, hence the paper's default."""
    fan_in, fan_out = fan_in_out(shape)
    limit = float(np.sqrt(6.0 / (fan_in + fan_out)))
    return rng.uniform(-limit, limit, size=shape).astype(np.float32)


def he_normal(shape: tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
    """He normal — preferred for ReLU stacks (conv trunks)."""
    fan_in, _ = fan_in_out(shape)
    return (rng.standard_normal(shape) * np.sqrt(2.0 / fan_in)).astype(np.float32)


def lecun_normal(shape: tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
    """LeCun normal — variance 1/fan_in."""
    fan_in, _ = fan_in_out(shape)
    return (rng.standard_normal(shape) * np.sqrt(1.0 / fan_in)).astype(np.float32)


def zeros(shape: tuple[int, ...]) -> np.ndarray:
    """Zero-initialized float32 parameter array (biases)."""
    return np.zeros(shape, dtype=np.float32)
