"""Vectorized neural-network primitives (conv, pooling, softmax, entropy).

Convolution is implemented as im2col + one GEMM — the standard HPC
formulation that turns a 7-deep loop nest into a single BLAS call.  The
column buffer is materialized contiguously (guide: beware cache effects /
prefer contiguous operands for GEMM).  Pooling uses a zero-copy
``sliding_window_view`` with strided slicing.

All functions here operate on :class:`~repro.nn.tensor.Tensor` and are
differentiable unless documented otherwise.
"""

from __future__ import annotations

import numpy as np

from repro.nn.tensor import Tensor, as_tensor

Array = np.ndarray

__all__ = [
    "conv2d",
    "max_pool2d",
    "avg_pool2d",
    "linear",
    "softmax",
    "log_softmax",
    "cross_entropy",
    "mse_loss",
    "one_hot",
    "entropy",
    "normalized_entropy",
]


# ---------------------------------------------------------------------- #
# im2col machinery
# ---------------------------------------------------------------------- #
def _im2col(x: Array, kh: int, kw: int, stride: int) -> tuple[Array, int, int]:
    """Unfold padded NCHW input into a (N*OH*OW, C*KH*KW) column matrix."""
    n, c, h, w = x.shape
    oh = (h - kh) // stride + 1
    ow = (w - kw) // stride + 1
    windows = np.lib.stride_tricks.sliding_window_view(x, (kh, kw), axis=(2, 3))
    windows = windows[:, :, ::stride, ::stride]  # (N, C, OH, OW, KH, KW), zero-copy
    cols = windows.transpose(0, 2, 3, 1, 4, 5).reshape(n * oh * ow, c * kh * kw)
    return np.ascontiguousarray(cols), oh, ow


def _valid_span(k: int, padding: int, stride: int, out_size: int, size: int) -> tuple[int, int, int]:
    """Clip one kernel offset's output range to the unpadded input.

    Output position ``t`` touches input coordinate ``k + stride*t - padding``;
    returns ``(first_coord, t0, t1)`` such that positions ``t0..t1`` (exclusive)
    land inside ``[0, size)``.
    """
    t0 = max(0, -((k - padding) // stride) if k < padding else 0)
    r0 = k - padding + stride * t0
    if r0 >= size:
        return r0, 0, 0
    t1 = min(out_size, t0 + (size - 1 - r0) // stride + 1)
    return r0, t0, t1


def _col2im(
    cols: Array,
    x_shape: tuple[int, int, int, int],
    kh: int,
    kw: int,
    stride: int,
    oh: int,
    ow: int,
    padding: int = 0,
) -> Array:
    """Scatter-add column gradients straight back to the *unpadded* input.

    Padding is handled by clipping each kernel offset's slice to the real
    input extent, so no padded intermediate is materialized and the
    returned array is freshly owned — the caller accumulates it without a
    defensive copy (``Tensor._accumulate(..., fresh=True)``).
    """
    n, c, h, w = x_shape
    dx = np.zeros(x_shape, dtype=cols.dtype)
    cols6 = cols.reshape(n, oh, ow, c, kh, kw).transpose(0, 3, 4, 5, 1, 2)
    # KH*KW iterations (25 for a 5x5 kernel); each is a fully vectorized add.
    for i in range(kh):
        for j in range(kw):
            r0, t0, t1 = _valid_span(i, padding, stride, oh, h)
            c0, u0, u1 = _valid_span(j, padding, stride, ow, w)
            if t0 >= t1 or u0 >= u1:
                continue
            dx[
                :, :, r0 : r0 + stride * (t1 - t0) : stride, c0 : c0 + stride * (u1 - u0) : stride
            ] += cols6[:, :, i, j, t0:t1, u0:u1]
    return dx


def conv2d(
    x: Tensor,
    weight: Tensor,
    bias: Tensor | None = None,
    stride: int = 1,
    padding: int = 0,
) -> Tensor:
    """2-D cross-correlation over NCHW input.

    ``weight`` has shape (out_channels, in_channels, KH, KW); ``bias`` is
    (out_channels,) or None.
    """
    if x.ndim != 4:
        raise ValueError(f"conv2d expects NCHW input, got ndim={x.ndim}")
    f, c_w, kh, kw = weight.shape
    n, c, h, w = x.shape
    if c != c_w:
        raise ValueError(f"channel mismatch: input has {c}, weight expects {c_w}")
    if stride < 1:
        raise ValueError(f"stride must be >= 1, got {stride}")
    if h + 2 * padding < kh or w + 2 * padding < kw:
        raise ValueError(
            f"kernel ({kh}x{kw}) larger than padded input ({h + 2 * padding}x{w + 2 * padding})"
        )

    x_pad = np.pad(x.data, ((0, 0), (0, 0), (padding, padding), (padding, padding))) if padding else x.data
    cols, oh, ow = _im2col(x_pad, kh, kw, stride)
    w_mat = weight.data.reshape(f, -1)  # (F, C*KH*KW)
    out = cols @ w_mat.T  # (N*OH*OW, F)
    if bias is not None:
        out += bias.data
    out = out.reshape(n, oh, ow, f).transpose(0, 3, 1, 2)

    parents = (x, weight) if bias is None else (x, weight, bias)

    def backward(g: Array) -> None:
        g_cols = np.ascontiguousarray(g.transpose(0, 2, 3, 1)).reshape(-1, f)
        if bias is not None and bias.requires_grad:
            bias._accumulate(g_cols.sum(axis=0), fresh=True)
        if weight.requires_grad:
            weight._accumulate((g_cols.T @ cols).reshape(weight.shape), fresh=True)
        if x.requires_grad:
            d_cols = g_cols @ w_mat
            # Scatter directly into the unpadded gradient: no padded
            # intermediate, no slice-view copy on accumulation.
            dx = _col2im(d_cols, x.data.shape, kh, kw, stride, oh, ow, padding)
            x._accumulate(dx, fresh=True)

    return Tensor._make(np.ascontiguousarray(out), parents, backward)


# ---------------------------------------------------------------------- #
# pooling
# ---------------------------------------------------------------------- #
def max_pool2d(x: Tensor, kernel_size: int, stride: int | None = None) -> Tensor:
    """Max pooling over NCHW input (general stride, vectorized argmax)."""
    stride = kernel_size if stride is None else stride
    n, c, h, w = x.shape
    if h < kernel_size or w < kernel_size:
        raise ValueError(f"pool kernel {kernel_size} exceeds input {h}x{w}")
    windows = np.lib.stride_tricks.sliding_window_view(
        x.data, (kernel_size, kernel_size), axis=(2, 3)
    )[:, :, ::stride, ::stride]
    oh, ow = windows.shape[2], windows.shape[3]
    flat = windows.reshape(n, c, oh, ow, -1)
    arg = flat.argmax(axis=-1)
    out = np.take_along_axis(flat, arg[..., None], axis=-1)[..., 0]

    def backward(g: Array) -> None:
        if not x.requires_grad:
            return
        dx = np.zeros_like(x.data)
        ki, kj = np.divmod(arg, kernel_size)
        ni, ci, oi, oj = np.indices((n, c, oh, ow), sparse=False)
        rows = oi * stride + ki
        cols_ = oj * stride + kj
        np.add.at(dx, (ni, ci, rows, cols_), g)
        x._accumulate(dx, fresh=True)

    return Tensor._make(np.ascontiguousarray(out), (x,), backward)


def avg_pool2d(x: Tensor, kernel_size: int, stride: int | None = None) -> Tensor:
    """Average pooling over NCHW input."""
    stride = kernel_size if stride is None else stride
    n, c, h, w = x.shape
    windows = np.lib.stride_tricks.sliding_window_view(
        x.data, (kernel_size, kernel_size), axis=(2, 3)
    )[:, :, ::stride, ::stride]
    oh, ow = windows.shape[2], windows.shape[3]
    out = windows.mean(axis=(-1, -2))
    scale = 1.0 / (kernel_size * kernel_size)

    def backward(g: Array) -> None:
        if not x.requires_grad:
            return
        dx = np.zeros_like(x.data)
        gs = g * scale
        for i in range(kernel_size):
            for j in range(kernel_size):
                dx[:, :, i : i + stride * oh : stride, j : j + stride * ow : stride] += gs
        x._accumulate(dx, fresh=True)

    return Tensor._make(np.ascontiguousarray(out), (x,), backward)


# ---------------------------------------------------------------------- #
# dense / classification heads
# ---------------------------------------------------------------------- #
def linear(x: Tensor, weight: Tensor, bias: Tensor | None = None) -> Tensor:
    """Affine map ``x @ W.T + b`` with W of shape (out, in)."""
    out = x @ weight.T
    if bias is not None:
        out = out + bias
    return out


def softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable softmax along ``axis`` (differentiable)."""
    shifted_data = x.data - x.data.max(axis=axis, keepdims=True)
    exp_data = np.exp(shifted_data)
    out_data = exp_data / exp_data.sum(axis=axis, keepdims=True)

    def backward(g: Array) -> None:
        if not x.requires_grad:
            return
        # J^T g = s * (g - <g, s>)
        dot = (g * out_data).sum(axis=axis, keepdims=True)
        x._accumulate(out_data * (g - dot), fresh=True)

    return Tensor._make(out_data, (x,), backward)


def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Stable log-softmax along ``axis`` (differentiable)."""
    shifted = x.data - x.data.max(axis=axis, keepdims=True)
    lse = np.log(np.exp(shifted).sum(axis=axis, keepdims=True))
    out_data = shifted - lse
    soft = np.exp(out_data)

    def backward(g: Array) -> None:
        if not x.requires_grad:
            return
        x._accumulate(g - soft * g.sum(axis=axis, keepdims=True), fresh=True)

    return Tensor._make(out_data, (x,), backward)


def cross_entropy(logits: Tensor, targets: Array | Tensor) -> Tensor:
    """Mean cross-entropy between ``logits`` (N, K) and integer labels (N,).

    Fused log-softmax + NLL with the closed-form backward
    ``(softmax - onehot) / N`` — one pass, no intermediate graph nodes.
    """
    labels = targets.data if isinstance(targets, Tensor) else np.asarray(targets)
    labels = labels.astype(np.int64).reshape(-1)
    n, k = logits.shape
    if labels.shape[0] != n:
        raise ValueError(f"batch mismatch: logits {n}, targets {labels.shape[0]}")
    if labels.min() < 0 or labels.max() >= k:
        raise ValueError(f"label out of range [0, {k}): min={labels.min()} max={labels.max()}")

    shifted = logits.data - logits.data.max(axis=1, keepdims=True)
    lse = np.log(np.exp(shifted).sum(axis=1, keepdims=True))
    log_probs = shifted - lse
    loss = -log_probs[np.arange(n), labels].mean()

    def backward(g: Array) -> None:
        if not logits.requires_grad:
            return
        grad = np.exp(log_probs)
        grad[np.arange(n), labels] -= 1.0
        grad *= float(g) / n
        logits._accumulate(grad, fresh=True)

    return Tensor._make(np.asarray(loss, dtype=logits.dtype), (logits,), backward)


def mse_loss(prediction: Tensor, target: Tensor | Array) -> Tensor:
    """Mean squared error (the paper's reconstruction loss)."""
    target = as_tensor(target, dtype=prediction.dtype)
    diff = prediction - target.detach()
    return (diff * diff).mean()


def one_hot(labels: Array, num_classes: int) -> Array:
    """Integer labels (N,) → one-hot float32 matrix (N, num_classes)."""
    labels = np.asarray(labels, dtype=np.int64).reshape(-1)
    if labels.size and (labels.min() < 0 or labels.max() >= num_classes):
        raise ValueError(f"label out of range [0, {num_classes})")
    out = np.zeros((labels.shape[0], num_classes), dtype=np.float32)
    out[np.arange(labels.shape[0]), labels] = 1.0
    return out


# ---------------------------------------------------------------------- #
# entropy (BranchyNet's exit confidence measure) — non-differentiable
# ---------------------------------------------------------------------- #
def entropy(probs: Array, axis: int = -1, eps: float = 1e-12) -> Array:
    """Shannon entropy of probability vectors, in nats.

    BranchyNet exits early when ``entropy(softmax(branch_logits)) < T``.
    Operates on plain arrays: it is an inference-time decision rule, not a
    training objective.
    """
    p = np.asarray(probs)
    return -(p * np.log(np.clip(p, eps, None))).sum(axis=axis)


def normalized_entropy(probs: Array, axis: int = -1) -> Array:
    """Entropy scaled to [0, 1] by log(K) — threshold comparisons become
    architecture-independent (useful when sweeping exit points)."""
    k = np.asarray(probs).shape[axis]
    return entropy(probs, axis=axis) / np.log(k)
