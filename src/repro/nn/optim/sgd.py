"""Stochastic gradient descent with classical momentum and weight decay."""

from __future__ import annotations

from typing import Iterable

import numpy as np

from repro.nn.module import Parameter
from repro.nn.optim.base import Optimizer

__all__ = ["SGD"]


class SGD(Optimizer):
    def __init__(
        self,
        params: Iterable[Parameter],
        lr: float = 0.01,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
        nesterov: bool = False,
    ) -> None:
        super().__init__(params, lr)
        if not 0.0 <= momentum < 1.0:
            raise ValueError(f"momentum must be in [0, 1), got {momentum}")
        if weight_decay < 0.0:
            raise ValueError(f"weight_decay must be non-negative, got {weight_decay}")
        if nesterov and momentum == 0.0:
            raise ValueError("nesterov momentum requires momentum > 0")
        self.momentum = momentum
        self.weight_decay = weight_decay
        self.nesterov = nesterov
        self._velocity: list[np.ndarray | None] = [None] * len(self.params)

    def step(self) -> None:
        self.step_count += 1
        for i, p in enumerate(self.params):
            if p.grad is None:
                continue
            grad = p.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * p.data
            if self.momentum:
                v = self._velocity[i]
                if v is None:
                    v = np.zeros_like(p.data)
                    self._velocity[i] = v
                v *= self.momentum
                v += grad
                grad = grad + self.momentum * v if self.nesterov else v
            p.data -= self.lr * grad
