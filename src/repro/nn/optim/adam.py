"""Adam (Kingma & Ba, 2014) — the optimizer the paper uses for the
converting autoencoder ("Each autoencoder uses the Adam optimizer")."""

from __future__ import annotations

from typing import Iterable

import numpy as np

from repro.nn.module import Parameter
from repro.nn.optim.base import Optimizer

__all__ = ["Adam"]


class Adam(Optimizer):
    def __init__(
        self,
        params: Iterable[Parameter],
        lr: float = 1e-3,
        betas: tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(params, lr)
        beta1, beta2 = betas
        if not (0.0 <= beta1 < 1.0 and 0.0 <= beta2 < 1.0):
            raise ValueError(f"betas must be in [0, 1), got {betas}")
        if eps <= 0:
            raise ValueError(f"eps must be positive, got {eps}")
        self.beta1, self.beta2 = beta1, beta2
        self.eps = eps
        self.weight_decay = weight_decay
        self._m: list[np.ndarray | None] = [None] * len(self.params)
        self._v: list[np.ndarray | None] = [None] * len(self.params)

    def step(self) -> None:
        self.step_count += 1
        t = self.step_count
        bias1 = 1.0 - self.beta1**t
        bias2 = 1.0 - self.beta2**t
        for i, p in enumerate(self.params):
            if p.grad is None:
                continue
            grad = p.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * p.data
            m, v = self._m[i], self._v[i]
            if m is None or v is None:
                m = np.zeros_like(p.data)
                v = np.zeros_like(p.data)
                self._m[i], self._v[i] = m, v
            # In-place moment updates (guide: in-place ops on hot paths).
            m *= self.beta1
            m += (1.0 - self.beta1) * grad
            v *= self.beta2
            v += (1.0 - self.beta2) * grad * grad
            m_hat = m / bias1
            v_hat = v / bias2
            p.data -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)
