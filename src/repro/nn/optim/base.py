"""Optimizer base class and gradient utilities."""

from __future__ import annotations

from typing import Iterable

import numpy as np

from repro.nn.module import Parameter

__all__ = ["Optimizer", "clip_grad_norm"]


class Optimizer:
    """Base optimizer: holds parameter references and a mutable LR."""

    def __init__(self, params: Iterable[Parameter], lr: float) -> None:
        self.params: list[Parameter] = list(params)
        if not self.params:
            raise ValueError("optimizer received no parameters")
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        self.lr = float(lr)
        self.step_count = 0

    def zero_grad(self) -> None:
        for p in self.params:
            p.grad = None

    def step(self) -> None:
        raise NotImplementedError

    def state_dict(self) -> dict:
        return {"lr": self.lr, "step_count": self.step_count}

    def load_state_dict(self, state: dict) -> None:
        self.lr = float(state["lr"])
        self.step_count = int(state["step_count"])


def clip_grad_norm(params: Iterable[Parameter], max_norm: float) -> float:
    """Scale gradients in place so their global L2 norm is ≤ ``max_norm``.

    Returns the pre-clip norm (useful for loss-explosion diagnostics).
    """
    if max_norm <= 0:
        raise ValueError(f"max_norm must be positive, got {max_norm}")
    params = [p for p in params if p.grad is not None]
    if not params:
        return 0.0
    total = float(np.sqrt(sum(float((p.grad * p.grad).sum()) for p in params)))
    if total > max_norm and total > 0.0:
        scale = max_norm / total
        for p in params:
            p.grad *= scale
    return total
