"""Learning-rate schedules: step objects mutating an optimizer's ``lr``."""

from __future__ import annotations

import math

from repro.nn.optim.base import Optimizer

__all__ = ["ConstantLR", "StepLR", "CosineLR", "WarmupLR"]


class _Schedule:
    def __init__(self, optimizer: Optimizer) -> None:
        self.optimizer = optimizer
        self.base_lr = optimizer.lr
        self.epoch = 0

    def step(self) -> float:
        """Advance one epoch; returns the new learning rate."""
        self.epoch += 1
        lr = self._lr_at(self.epoch)
        self.optimizer.lr = lr
        return lr

    def _lr_at(self, epoch: int) -> float:
        raise NotImplementedError


class ConstantLR(_Schedule):
    """Fixed learning rate for every epoch."""

    def _lr_at(self, epoch: int) -> float:
        return self.base_lr


class StepLR(_Schedule):
    """Multiply LR by ``gamma`` every ``step_size`` epochs."""

    def __init__(self, optimizer: Optimizer, step_size: int, gamma: float = 0.1) -> None:
        super().__init__(optimizer)
        if step_size <= 0:
            raise ValueError(f"step_size must be positive, got {step_size}")
        self.step_size = step_size
        self.gamma = gamma

    def _lr_at(self, epoch: int) -> float:
        return self.base_lr * self.gamma ** (epoch // self.step_size)


class CosineLR(_Schedule):
    """Cosine annealing to ``min_lr`` over ``total_epochs``."""

    def __init__(self, optimizer: Optimizer, total_epochs: int, min_lr: float = 0.0) -> None:
        super().__init__(optimizer)
        if total_epochs <= 0:
            raise ValueError(f"total_epochs must be positive, got {total_epochs}")
        self.total_epochs = total_epochs
        self.min_lr = min_lr

    def _lr_at(self, epoch: int) -> float:
        progress = min(epoch / self.total_epochs, 1.0)
        return self.min_lr + 0.5 * (self.base_lr - self.min_lr) * (1 + math.cos(math.pi * progress))


class WarmupLR(_Schedule):
    """Linear warmup for ``warmup_epochs`` then hand-off to ``after``."""

    def __init__(self, optimizer: Optimizer, warmup_epochs: int, after: _Schedule | None = None):
        super().__init__(optimizer)
        if warmup_epochs <= 0:
            raise ValueError(f"warmup_epochs must be positive, got {warmup_epochs}")
        self.warmup_epochs = warmup_epochs
        self.after = after

    def _lr_at(self, epoch: int) -> float:
        if epoch <= self.warmup_epochs:
            return self.base_lr * epoch / self.warmup_epochs
        if self.after is not None:
            return self.after._lr_at(epoch - self.warmup_epochs)
        return self.base_lr
