"""Optimizers and learning-rate schedules."""

from repro.nn.optim.base import Optimizer, clip_grad_norm
from repro.nn.optim.sgd import SGD
from repro.nn.optim.adam import Adam
from repro.nn.optim.schedules import ConstantLR, StepLR, CosineLR, WarmupLR

__all__ = [
    "Optimizer",
    "clip_grad_norm",
    "SGD",
    "Adam",
    "ConstantLR",
    "StepLR",
    "CosineLR",
    "WarmupLR",
]
