"""Preallocated buffer arena for the compiled inference fast path.

Every intermediate a compiled plan touches — padded inputs, im2col
column matrices, GEMM outputs, pooling results — is allocated exactly
once, when the plan is compiled, and reused for every subsequent batch.
Steady-state serving therefore performs **zero large allocations** per
batch: NumPy kernels write into these buffers via ``out=``.

Buffers are sized for the plan's *capacity* (the largest batch the plan
has seen); smaller batches, e.g. the ragged final micro-batch of a
serving run, use leading-axis views of the same buffers, which stay
C-contiguous and BLAS-friendly.
"""

from __future__ import annotations

import numpy as np

__all__ = ["BufferArena"]


class BufferArena:
    """A named pool of preallocated float32 scratch buffers.

    The arena is deliberately dumb: it hands out buffers at compile time
    and never frees or resizes them.  Plans own their arena, so a plan's
    lifetime bounds its memory; dropping the plan drops the buffers.

    ``allocation_count`` is the observability hook the regression tests
    key on: after compilation it must stay constant no matter how many
    batches run through the plan.
    """

    def __init__(self, dtype: np.dtype | type = np.float32) -> None:
        self.dtype = np.dtype(dtype)
        self._buffers: dict[str, np.ndarray] = {}
        self.allocation_count = 0

    def alloc(
        self,
        name: str,
        shape: tuple[int, ...],
        dtype: np.dtype | type | None = None,
        zero: bool = False,
    ) -> np.ndarray:
        """Allocate (once) and return the buffer registered under ``name``.

        ``zero=True`` zero-fills at allocation — used for padded-input
        buffers whose border must read as zeros forever (the interior is
        overwritten each batch, the border never is).
        """
        dt = self.dtype if dtype is None else np.dtype(dtype)
        if name in self._buffers:
            buf = self._buffers[name]
            if buf.shape != tuple(shape) or buf.dtype != dt:
                raise ValueError(
                    f"arena buffer {name!r} already allocated with shape "
                    f"{buf.shape}/{buf.dtype}, requested {tuple(shape)}/{dt}"
                )
            return buf
        buf = np.zeros(shape, dtype=dt) if zero else np.empty(shape, dtype=dt)
        self._buffers[name] = buf
        self.allocation_count += 1
        return buf

    def get(self, name: str) -> np.ndarray:
        return self._buffers[name]

    def __contains__(self, name: str) -> bool:
        return name in self._buffers

    def __len__(self) -> int:
        return len(self._buffers)

    @property
    def nbytes(self) -> int:
        """Total bytes held by the arena (the plan's memory footprint)."""
        return sum(buf.nbytes for buf in self._buffers.values())

    def names(self) -> list[str]:
        return sorted(self._buffers)

    def __repr__(self) -> str:
        mb = self.nbytes / 1e6
        return f"BufferArena({len(self._buffers)} buffers, {mb:.2f} MB)"
