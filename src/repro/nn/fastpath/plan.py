"""Shape-specialized kernel steps and the executable inference plan.

A plan is a flat list of steps, each a thin wrapper around one or two
NumPy kernel calls writing into arena buffers (see
:mod:`repro.nn.fastpath.arena`).  Three tricks make this fast:

* **Cached im2col gather indices.**  Unfolding an NCHW batch into the
  (N·OH·OW, C·KH·KW) column matrix is a single ``np.take`` with a
  precomputed index matrix, shared process-wide per
  ``(C, H, W, KH, KW, stride, padding)`` — no ``sliding_window_view``,
  no 6-D transpose, no per-batch index arithmetic.
* **Fused kernels.**  Conv+bias+ReLU and Linear+bias+ReLU run as one
  step: GEMM with ``out=``, in-place bias add, in-place ``np.maximum``.
  No intermediate :class:`~repro.nn.tensor.Tensor` is ever constructed.
* **Live parameters.**  Steps hold references to the layer's
  :class:`~repro.nn.module.Parameter` objects and read ``.data`` at run
  time, so training, pruning masks, or ``load_state_dict`` never leave a
  plan stale — only *shapes* are baked in.

Steps enforce strict float32 discipline: the plan raises on any other
dtype rather than silently upcasting to float64.
"""

from __future__ import annotations

import numpy as np

from repro.nn.fastpath.arena import BufferArena

Array = np.ndarray

__all__ = [
    "InferencePlan",
    "Step",
    "ConvStep",
    "LinearStep",
    "MaxPoolStep",
    "AvgPoolStep",
    "ReLUStep",
    "SoftmaxStep",
    "ScaleStep",
    "FlattenStep",
    "ReshapeStep",
    "FallbackStep",
    "im2col_indices",
]

# Process-wide cache of im2col gather indices, keyed by the geometry that
# determines them.  Indices are dtype intp and read-only; plans of any
# model share entries with the same conv geometry.
_IM2COL_INDEX_CACHE: dict[tuple[int, ...], Array] = {}


def im2col_indices(
    c: int, hp: int, wp: int, kh: int, kw: int, stride: int
) -> Array:
    """K-major gather-index matrix (C·KH·KW, OH·OW) into a flat (C·HP·WP) sample.

    ``cols[n, q, p] = x_flat[n, idx[q, p]]`` — rows ordered (c, kh, kw)
    to match the reshaped weight matrix, columns ordered (oh, ow) so the
    batched GEMM ``W (F,K) @ cols (K,P)`` writes output directly in NCHW
    layout, eliminating the post-GEMM transpose copy.  Scanning a fixed
    kernel offset across output positions reads near-contiguous input
    rows, which is also the cache-friendly direction for the gather.
    """
    key = (c, hp, wp, kh, kw, stride)
    idx = _IM2COL_INDEX_CACHE.get(key)
    if idx is None:
        oh = (hp - kh) // stride + 1
        ow = (wp - kw) // stride + 1
        offs = (
            np.arange(c)[:, None, None] * (hp * wp)
            + np.arange(kh)[None, :, None] * wp
            + np.arange(kw)[None, None, :]
        ).reshape(-1)
        base = (
            np.arange(oh)[:, None] * (stride * wp) + np.arange(ow)[None, :] * stride
        ).reshape(-1)
        idx = np.ascontiguousarray(offs[:, None] + base[None, :]).astype(np.intp)
        idx.setflags(write=False)
        _IM2COL_INDEX_CACHE[key] = idx
    return idx


class Step:
    """One compiled kernel step: ndarray in, arena-owned ndarray out."""

    name = "step"

    def run(self, x: Array) -> Array:
        raise NotImplementedError

    def describe(self) -> str:
        return self.name


class ConvStep(Step):
    """Fused conv2d (+bias) (+ReLU): cached-index im2col + one batched GEMM.

    Columns are gathered K-major — ``cols (N, C·KH·KW, OH·OW)`` — so the
    batched GEMM ``W (1,F,K) @ cols (N,K,P) -> (N,F,P)`` produces output
    already in NCHW layout; the result is a zero-copy reshape of the GEMM
    buffer.  Small patch widths (K ≤ 32, e.g. single-channel stems) use a
    single 6-D strided-view copy instead of the index gather — measured
    ~2× faster there because the innermost copy runs are whole output
    rows.
    ``np.take(..., mode="clip")`` is deliberate: the default
    ``mode="raise"`` routes through a temporary buffer even with ``out=``
    (indices are precomputed in-range, so clipping never occurs).
    """

    SLICE_FILL_MAX_K = 32

    def __init__(self, conv, in_shape: tuple[int, int, int], capacity: int,
                 arena: BufferArena, tag: str, fuse_relu: bool) -> None:
        c, h, w = in_shape
        k, s, p = conv.kernel_size, conv.stride, conv.padding
        self.conv = conv
        self.fuse_relu = fuse_relu
        self.in_shape = in_shape
        self.kernel, self.stride, self.padding = k, s, p
        self.hp, self.wp = h + 2 * p, w + 2 * p
        self.oh = (self.hp - k) // s + 1
        self.ow = (self.wp - k) // s + 1
        self.f = conv.out_channels
        self.patch = self.oh * self.ow
        self.k_width = c * k * k
        self.slice_fill = self.k_width <= self.SLICE_FILL_MAX_K
        self.idx = None if self.slice_fill else im2col_indices(c, self.hp, self.wp, k, k, s)
        self.pad_buf = (
            arena.alloc(f"{tag}.pad", (capacity, c, self.hp, self.wp), zero=True)
            if p
            else None
        )
        self.cols = arena.alloc(f"{tag}.cols", (capacity, self.k_width, self.patch))
        self.gemm = arena.alloc(f"{tag}.gemm", (capacity, self.f, self.patch))
        fused = "+relu" if fuse_relu else ""
        gather = "slice" if self.slice_fill else "take"
        self.name = (
            f"conv{fused}"
            f"({c}x{h}x{w} -> {self.f}x{self.oh}x{self.ow}, k={k}, s={s}, p={p}, "
            f"gather={gather})"
        )

    def run(self, x: Array) -> Array:
        n = x.shape[0]
        c, h, w = self.in_shape
        if self.pad_buf is not None:
            p = self.padding
            self.pad_buf[:n, :, p : p + h, p : p + w] = x
            src = self.pad_buf[:n]
        else:
            src = x
        cols = self.cols[:n]
        if self.slice_fill:
            k, s = self.kernel, self.stride
            sn, sc, sh, sw = src.strides
            windows = np.lib.stride_tricks.as_strided(
                src,
                shape=(n, c, k, k, self.oh, self.ow),
                strides=(sn, sc, sh, sw, sh * s, sw * s),
            )
            np.copyto(cols.reshape(n, c, k, k, self.oh, self.ow), windows)
        else:
            np.take(src.reshape(n, -1), self.idx, axis=1, out=cols, mode="clip")
        gemm = self.gemm[:n]
        w_mat = self.conv.weight.data.reshape(self.f, self.k_width)
        np.matmul(w_mat[None], cols, out=gemm)
        if self.conv.bias is not None:
            gemm += self.conv.bias.data[:, None]
        if self.fuse_relu:
            np.maximum(gemm, 0.0, out=gemm)
        return gemm.reshape(n, self.f, self.oh, self.ow)


class LinearStep(Step):
    """Fused ``x @ W.T (+ b) (+ReLU)`` writing straight into an arena buffer."""

    def __init__(self, layer, capacity: int, arena: BufferArena, tag: str,
                 fuse_relu: bool) -> None:
        self.layer = layer
        self.fuse_relu = fuse_relu
        self.out = arena.alloc(f"{tag}.out", (capacity, layer.out_features))
        self.name = (
            f"linear{'+relu' if fuse_relu else ''}"
            f"({layer.in_features} -> {layer.out_features})"
        )

    def run(self, x: Array) -> Array:
        out = self.out[: x.shape[0]]
        np.matmul(x, self.layer.weight.data.T, out=out)
        if self.layer.bias is not None:
            out += self.layer.bias.data
        if self.fuse_relu:
            np.maximum(out, 0.0, out=out)
        return out


class MaxPoolStep(Step):
    """Max pooling as KH·KW in-place ``np.maximum`` passes over strided views."""

    def __init__(self, kernel_size: int, stride: int, in_shape: tuple[int, int, int],
                 capacity: int, arena: BufferArena, tag: str) -> None:
        c, h, w = in_shape
        self.k, self.s = kernel_size, stride
        self.oh = (h - kernel_size) // stride + 1
        self.ow = (w - kernel_size) // stride + 1
        self.out = arena.alloc(f"{tag}.out", (capacity, c, self.oh, self.ow))
        self.name = f"maxpool(k={kernel_size}, s={stride}, {c}x{h}x{w} -> {c}x{self.oh}x{self.ow})"

    def run(self, x: Array) -> Array:
        out = self.out[: x.shape[0]]
        s, oh, ow = self.s, self.oh, self.ow
        first = True
        for i in range(self.k):
            for j in range(self.k):
                window = x[:, :, i : i + s * oh : s, j : j + s * ow : s]
                if first:
                    np.copyto(out, window)
                    first = False
                else:
                    np.maximum(out, window, out=out)
        return out


class AvgPoolStep(Step):
    """Average pooling as KH·KW in-place adds plus one scale."""

    def __init__(self, kernel_size: int, stride: int, in_shape: tuple[int, int, int],
                 capacity: int, arena: BufferArena, tag: str) -> None:
        c, h, w = in_shape
        self.k, self.s = kernel_size, stride
        self.oh = (h - kernel_size) // stride + 1
        self.ow = (w - kernel_size) // stride + 1
        self.scale = np.float32(1.0 / (kernel_size * kernel_size))
        self.out = arena.alloc(f"{tag}.out", (capacity, c, self.oh, self.ow))
        self.name = f"avgpool(k={kernel_size}, s={stride}, {c}x{h}x{w} -> {c}x{self.oh}x{self.ow})"

    def run(self, x: Array) -> Array:
        out = self.out[: x.shape[0]]
        s, oh, ow = self.s, self.oh, self.ow
        first = True
        for i in range(self.k):
            for j in range(self.k):
                window = x[:, :, i : i + s * oh : s, j : j + s * ow : s]
                if first:
                    np.copyto(out, window)
                    first = False
                else:
                    np.add(out, window, out=out)
        out *= self.scale
        return out


class ReLUStep(Step):
    """Standalone ReLU (when not fused into the preceding conv/linear)."""

    def __init__(self, feat_shape: tuple[int, ...], capacity: int,
                 arena: BufferArena, tag: str) -> None:
        self.out = arena.alloc(f"{tag}.out", (capacity, *feat_shape))
        self.name = "relu"

    def run(self, x: Array) -> Array:
        out = self.out[: x.shape[0]]
        np.maximum(x, 0.0, out=out)
        return out


class SoftmaxStep(Step):
    """Numerically stable softmax over the last axis, allocation-free."""

    def __init__(self, feat_shape: tuple[int, ...], capacity: int,
                 arena: BufferArena, tag: str) -> None:
        self.out = arena.alloc(f"{tag}.out", (capacity, *feat_shape))
        self.red = arena.alloc(f"{tag}.red", (capacity, *feat_shape[:-1], 1))
        self.name = "softmax(axis=-1)"

    def run(self, x: Array) -> Array:
        n = x.shape[0]
        out, red = self.out[:n], self.red[:n]
        np.max(x, axis=-1, keepdims=True, out=red)
        np.subtract(x, red, out=out)
        np.exp(out, out=out)
        np.sum(out, axis=-1, keepdims=True, out=red)
        out /= red
        return out


class ScaleStep(Step):
    """Multiply by a fixed constant (the autoencoder's Softmax·D head)."""

    def __init__(self, factor: float, feat_shape: tuple[int, ...], capacity: int,
                 arena: BufferArena, tag: str) -> None:
        self.factor = np.float32(factor)
        self.out = arena.alloc(f"{tag}.out", (capacity, *feat_shape))
        self.name = f"scale({factor:g})"

    def run(self, x: Array) -> Array:
        out = self.out[: x.shape[0]]
        np.multiply(x, self.factor, out=out)
        return out


class FlattenStep(Step):
    """Zero-copy view collapse (arena buffers are C-contiguous)."""

    name = "flatten"

    def run(self, x: Array) -> Array:
        return x.reshape(x.shape[0], -1)


class ReshapeStep(Step):
    """Zero-copy view reshape to a fixed per-sample shape."""

    def __init__(self, feat_shape: tuple[int, ...]) -> None:
        self.feat_shape = tuple(feat_shape)
        self.name = f"reshape{self.feat_shape}"

    def run(self, x: Array) -> Array:
        return x.reshape(x.shape[0], *self.feat_shape)


class FallbackStep(Step):
    """Escape hatch: run an uncompilable layer through its normal forward.

    Keeps the compiler total over arbitrary Modules at the cost of one
    Tensor wrap (and whatever the layer allocates).  Anything hot should
    grow a dedicated step instead.
    """

    def __init__(self, module) -> None:
        self.module = module
        self.name = f"fallback({type(module).__name__})"

    def run(self, x: Array) -> Array:
        from repro.nn.autograd import no_grad
        from repro.nn.tensor import Tensor

        with no_grad():
            out = self.module(Tensor(x)).data
        if out.dtype != np.float32:  # fallback layers must not break discipline
            out = out.astype(np.float32)
        return out


class InferencePlan:
    """A compiled, shape-specialized, allocation-free inference program.

    ``run`` accepts any batch up to ``capacity`` with per-sample shape
    ``sample_shape`` — the ragged final micro-batch of a serving run
    reuses the same buffers through leading-axis views.

    .. warning::
       The returned array is **arena-owned**: it is valid until the next
       ``run`` on this plan.  Reduce it (argmax, copy, compare) before
       running the next batch.
    """

    def __init__(self, steps: list[Step], sample_shape: tuple[int, ...],
                 output_shape: tuple[int, ...], capacity: int,
                 arena: BufferArena) -> None:
        self.steps = steps
        self.sample_shape = tuple(sample_shape)
        self.output_shape = tuple(output_shape)
        self.capacity = capacity
        self.arena = arena
        self.runs = 0

    def run(self, x: Array) -> Array:
        x = np.asarray(x)
        if x.dtype != np.float32:
            raise TypeError(
                f"fastpath plans are float32-only, got {x.dtype}; coerce inputs "
                "with np.ascontiguousarray(x, dtype=np.float32) at the boundary"
            )
        if tuple(x.shape[1:]) != self.sample_shape:
            raise ValueError(
                f"plan compiled for sample shape {self.sample_shape}, "
                f"got batch of {tuple(x.shape[1:])}"
            )
        n = x.shape[0]
        if n == 0 or n > self.capacity:
            raise ValueError(f"batch size {n} outside (0, {self.capacity}]")
        x = np.ascontiguousarray(x)
        for step in self.steps:
            x = step.run(x)
        self.runs += 1
        return x

    def describe(self) -> str:
        """Human-readable step listing (used by docs and tests)."""
        header = (
            f"InferencePlan(sample={self.sample_shape}, out={self.output_shape}, "
            f"capacity={self.capacity}, {self.arena!r})"
        )
        return "\n".join([header] + [f"  {i}: {s.describe()}" for i, s in enumerate(self.steps)])

    def __repr__(self) -> str:
        return (
            f"InferencePlan({len(self.steps)} steps, sample={self.sample_shape}, "
            f"capacity={self.capacity})"
        )
