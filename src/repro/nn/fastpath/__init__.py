"""``repro.nn.fastpath`` — the compiled inference fast path.

Inference in this repository used to re-traverse Python ``forward``
methods, re-materialize im2col column buffers, and allocate fresh
intermediates for every batch — even under ``no_grad()``.  This package
compiles a model's static inference shape **once** into a flat list of
shape-specialized kernel steps and amortizes that work across every
subsequent batch:

>>> plan = cached_plan(model, (model.features, model.classifier), images.shape)
>>> logits = plan.run(images)          # arena-owned; reduce before next run

See :mod:`repro.nn.fastpath.plan` for the kernel tricks (cached im2col
gather indices, fused conv/linear+bias+ReLU, ``out=`` buffer reuse) and
``docs/performance.md`` for the measured speedups.
"""

from repro.nn.fastpath.arena import BufferArena
from repro.nn.fastpath.compiler import (
    cached_plan,
    clear_plans,
    compile_plan,
    flatten_modules,
)
from repro.nn.fastpath.plan import (
    AvgPoolStep,
    ConvStep,
    FallbackStep,
    FlattenStep,
    InferencePlan,
    LinearStep,
    MaxPoolStep,
    ReLUStep,
    ReshapeStep,
    ScaleStep,
    SoftmaxStep,
    Step,
    im2col_indices,
)

__all__ = [
    "BufferArena",
    "InferencePlan",
    "Step",
    "ConvStep",
    "LinearStep",
    "MaxPoolStep",
    "AvgPoolStep",
    "ReLUStep",
    "SoftmaxStep",
    "ScaleStep",
    "FlattenStep",
    "ReshapeStep",
    "FallbackStep",
    "im2col_indices",
    "compile_plan",
    "cached_plan",
    "clear_plans",
    "flatten_modules",
]
