"""Plan compiler: trace a layer stack once, specialize kernels to shapes.

``compile_plan`` walks a :class:`~repro.nn.module.Sequential` (or a
tuple of them — e.g. LeNet's ``features`` + ``classifier``) under
eval-mode semantics and emits a flat list of shape-specialized steps:

* ``Conv2d`` / ``Linear`` immediately followed by ``ReLU`` fuse into a
  single GEMM+bias+ReLU step;
* ``Identity``, ``Dropout``, and ``ActivityRegularizer`` (all no-ops at
  inference) are elided entirely;
* anything unrecognized becomes a :class:`FallbackStep`, so the compiler
  is total over arbitrary modules.

``cached_plan`` is the memoization layer models use: plans are cached on
the owning model keyed by ``(stage, per-sample shape)``; a bigger batch
than the cached capacity triggers a one-time recompile at the larger
capacity, and every batch size at or below capacity (ragged final
serving batches included) reuses the same plan and arena.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.nn.fastpath.arena import BufferArena
from repro.nn.fastpath.plan import (
    AvgPoolStep,
    ConvStep,
    FallbackStep,
    FlattenStep,
    InferencePlan,
    LinearStep,
    MaxPoolStep,
    ReLUStep,
    ReshapeStep,
    ScaleStep,
    SoftmaxStep,
    Step,
)
from repro.nn.layers import (
    AvgPool2d,
    Conv2d,
    Dropout,
    Flatten,
    Identity,
    Linear,
    MaxPool2d,
    ReLU,
    Reshape,
    Scale,
    Softmax,
)
from repro.nn.layers.regularizers import ActivityRegularizer
from repro.nn.module import Module, Sequential

__all__ = ["compile_plan", "cached_plan", "clear_plans", "flatten_modules"]

# Layers that are exact no-ops in inference mode and are elided from plans.
_ELIDED = (Identity, Dropout, ActivityRegularizer)


def flatten_modules(modules: Module | Sequence[Module]) -> list[Module]:
    """Recursively expand Sequentials into a flat, ordered leaf-layer list."""
    stack = [modules] if isinstance(modules, Module) else list(modules)
    flat: list[Module] = []
    for m in stack:
        if isinstance(m, Sequential):
            flat.extend(flatten_modules(list(m)))
        else:
            flat.append(m)
    return flat


def _probe_shape(module: Module, feat_shape: tuple[int, ...]) -> tuple[int, ...]:
    """Output per-sample shape of an arbitrary module, found by probing."""
    from repro.nn.autograd import no_grad
    from repro.nn.tensor import Tensor

    with no_grad():
        out = module(Tensor(np.zeros((1, *feat_shape), dtype=np.float32)))
    return tuple(out.shape[1:])


def compile_plan(
    modules: Module | Sequence[Module],
    batch_shape: tuple[int, ...],
    arena: BufferArena | None = None,
) -> InferencePlan:
    """Trace ``modules`` at ``batch_shape`` into an :class:`InferencePlan`.

    ``batch_shape`` is ``(capacity, *per_sample_shape)``; the compiled
    plan serves any batch of 1..capacity samples of that shape.
    """
    capacity, *sample = batch_shape
    if capacity < 1:
        raise ValueError(f"plan capacity must be >= 1, got {capacity}")
    arena = arena if arena is not None else BufferArena()
    layers = [m for m in flatten_modules(modules) if not isinstance(m, _ELIDED)]
    steps: list[Step] = []
    feat: tuple[int, ...] = tuple(sample)
    i = 0
    while i < len(layers):
        layer = layers[i]
        fuse_relu = i + 1 < len(layers) and isinstance(layers[i + 1], ReLU)
        tag = f"s{len(steps)}"
        if isinstance(layer, Conv2d):
            if len(feat) != 3:
                raise ValueError(f"conv2d at step {len(steps)} needs CHW input, got {feat}")
            step = ConvStep(layer, feat, capacity, arena, tag, fuse_relu)
            feat = (step.f, step.oh, step.ow)
            i += 2 if fuse_relu else 1
        elif isinstance(layer, Linear):
            if len(feat) != 1:
                raise ValueError(f"linear at step {len(steps)} needs flat input, got {feat}")
            step = LinearStep(layer, capacity, arena, tag, fuse_relu)
            feat = (layer.out_features,)
            i += 2 if fuse_relu else 1
        elif isinstance(layer, MaxPool2d):
            step = MaxPoolStep(layer.kernel_size, layer.stride, feat, capacity, arena, tag)
            feat = (feat[0], step.oh, step.ow)
            i += 1
        elif isinstance(layer, AvgPool2d):
            step = AvgPoolStep(layer.kernel_size, layer.stride, feat, capacity, arena, tag)
            feat = (feat[0], step.oh, step.ow)
            i += 1
        elif isinstance(layer, ReLU):
            step = ReLUStep(feat, capacity, arena, tag)
            i += 1
        elif isinstance(layer, Softmax) and layer.axis in (-1, len(feat)):
            step = SoftmaxStep(feat, capacity, arena, tag)
            i += 1
        elif isinstance(layer, Scale):
            step = ScaleStep(layer.factor, feat, capacity, arena, tag)
            i += 1
        elif isinstance(layer, Flatten):
            step = FlattenStep()
            feat = (int(np.prod(feat)),)
            i += 1
        elif isinstance(layer, Reshape):
            step = ReshapeStep(layer.shape)
            feat = tuple(layer.shape)
            i += 1
        else:
            step = FallbackStep(layer)
            feat = _probe_shape(layer, feat)
            i += 1
        steps.append(step)
    return InferencePlan(steps, tuple(sample), feat, capacity, arena)


def cached_plan(
    owner: object,
    modules: Module | Sequence[Module],
    batch_shape: tuple[int, ...],
    key: str = "plan",
) -> InferencePlan:
    """Fetch (or lazily compile) the plan for ``batch_shape`` on ``owner``.

    Plans live in ``owner.__dict__["_fastpath_plans"]``, keyed by
    ``(key, per_sample_shape)``.  Because steps read parameters live,
    weight updates never invalidate a plan; only a batch larger than the
    cached capacity forces a recompile (at the larger capacity).
    """
    n, *sample = batch_shape
    cache: dict = owner.__dict__.setdefault("_fastpath_plans", {})
    cache_key = (key, tuple(sample))
    plan = cache.get(cache_key)
    if plan is None or plan.capacity < n:
        capacity = max(n, plan.capacity if plan is not None else 0)
        plan = compile_plan(modules, (capacity, *sample))
        cache[cache_key] = plan
    return plan


def clear_plans(owner: object) -> None:
    """Drop every cached plan (and its arena buffers) from ``owner``."""
    owner.__dict__.pop("_fastpath_plans", None)
