"""Model checkpointing to ``.npz`` (portable, no pickle for arrays)."""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from repro.nn.module import Module

__all__ = ["save_state", "load_state", "save_model", "load_into"]

_META_KEY = "__repro_meta__"


def save_state(state: dict[str, np.ndarray], path: str | Path, meta: dict | None = None) -> Path:
    """Write a flat name→array mapping (plus optional JSON metadata)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    payload = dict(state)
    if meta is not None:
        payload[_META_KEY] = np.frombuffer(
            json.dumps(meta, sort_keys=True).encode("utf-8"), dtype=np.uint8
        )
    np.savez_compressed(path, **payload)
    # np.savez appends .npz if missing; normalize the returned path.
    return path if path.suffix == ".npz" else path.with_suffix(path.suffix + ".npz")


def load_state(path: str | Path) -> tuple[dict[str, np.ndarray], dict]:
    """Read a checkpoint; returns (state_dict, metadata)."""
    with np.load(Path(path), allow_pickle=False) as archive:
        meta: dict = {}
        state: dict[str, np.ndarray] = {}
        for key in archive.files:
            if key == _META_KEY:
                meta = json.loads(archive[key].tobytes().decode("utf-8"))
            else:
                state[key] = archive[key]
    return state, meta


def save_model(model: Module, path: str | Path, meta: dict | None = None) -> Path:
    """Checkpoint a module's parameters."""
    return save_state(model.state_dict(), path, meta=meta)


def load_into(model: Module, path: str | Path, strict: bool = True) -> dict:
    """Load a checkpoint into ``model``; returns the stored metadata."""
    state, meta = load_state(path)
    model.load_state_dict(state, strict=strict)
    return meta
