"""`repro.nn` — a from-scratch NumPy deep-learning framework.

This is substrate #1 from DESIGN.md: the paper's models were built on
Keras/BranchyNet; this package provides the equivalent capability
(autograd tensors, conv/dense layers, losses, optimizers, checkpoints)
with no dependencies beyond NumPy.
"""

from repro.nn.autograd import no_grad, enable_grad, grad_enabled, gradcheck
from repro.nn.tensor import Tensor, as_tensor
from repro.nn.module import Module, Parameter, Sequential, ModuleList
from repro.nn.losses import MSELoss, CrossEntropyLoss, JointExitLoss
from repro.nn import functional
from repro.nn import init
from repro.nn import layers
from repro.nn import optim
from repro.nn import fastpath
from repro.nn.serialization import save_model, load_into, save_state, load_state

__all__ = [
    "Tensor",
    "as_tensor",
    "Module",
    "Parameter",
    "Sequential",
    "ModuleList",
    "MSELoss",
    "CrossEntropyLoss",
    "JointExitLoss",
    "functional",
    "init",
    "layers",
    "optim",
    "fastpath",
    "no_grad",
    "enable_grad",
    "grad_enabled",
    "gradcheck",
    "save_model",
    "load_into",
    "save_state",
    "load_state",
]
