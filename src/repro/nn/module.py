"""Module system: parameter registration, train/eval modes, state dicts.

A deliberately small mirror of the torch.nn.Module contract — enough to
express every architecture in the paper and to let the optimizers,
serialization, FLOPs counter, and compression baselines treat models
uniformly.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Iterator

import numpy as np

from repro.nn.tensor import Tensor

__all__ = ["Parameter", "Module", "Sequential", "ModuleList"]


class Parameter(Tensor):
    """A Tensor registered as a trainable model parameter."""

    def __init__(self, data: np.ndarray, name: str | None = None) -> None:
        super().__init__(np.asarray(data, dtype=np.float32), requires_grad=True, name=name)
        # Parameters must stay differentiable even if constructed inside a
        # no_grad() block (e.g. when a model is built during inference).
        self.requires_grad = True


class Module:
    """Base class for all network components."""

    def __init__(self) -> None:
        self._parameters: "OrderedDict[str, Parameter]" = OrderedDict()
        self._modules: "OrderedDict[str, Module]" = OrderedDict()
        self.training = True

    # -- registration ------------------------------------------------- #
    def __setattr__(self, name: str, value) -> None:
        if isinstance(value, Parameter):
            self.__dict__.setdefault("_parameters", OrderedDict())[name] = value
        elif isinstance(value, Module):
            self.__dict__.setdefault("_modules", OrderedDict())[name] = value
        object.__setattr__(self, name, value)

    def register_module(self, name: str, module: "Module") -> None:
        self._modules[name] = module
        object.__setattr__(self, name, module)

    # -- traversal ----------------------------------------------------- #
    def parameters(self) -> Iterator[Parameter]:
        """Yield all parameters of this module and its children, depth-first."""
        for _, p in self.named_parameters():
            yield p

    def named_parameters(self, prefix: str = "") -> Iterator[tuple[str, Parameter]]:
        for name, param in self._parameters.items():
            yield (f"{prefix}{name}", param)
        for mod_name, module in self._modules.items():
            yield from module.named_parameters(prefix=f"{prefix}{mod_name}.")

    def modules(self) -> Iterator["Module"]:
        """Yield this module and every descendant."""
        yield self
        for child in self._modules.values():
            yield from child.modules()

    def named_modules(self, prefix: str = "") -> Iterator[tuple[str, "Module"]]:
        yield prefix.rstrip("."), self
        for name, child in self._modules.items():
            yield from child.named_modules(prefix=f"{prefix}{name}.")

    def children(self) -> Iterator["Module"]:
        yield from self._modules.values()

    # -- modes ---------------------------------------------------------- #
    def train(self, mode: bool = True) -> "Module":
        self.training = mode
        for child in self._modules.values():
            child.train(mode)
        return self

    def eval(self) -> "Module":
        return self.train(False)

    def zero_grad(self) -> None:
        for p in self.parameters():
            p.zero_grad()

    # -- state dict ------------------------------------------------------ #
    def state_dict(self) -> "OrderedDict[str, np.ndarray]":
        """Flat mapping of dotted parameter names to array copies."""
        return OrderedDict((name, p.data.copy()) for name, p in self.named_parameters())

    def load_state_dict(self, state: dict[str, np.ndarray], strict: bool = True) -> None:
        own = dict(self.named_parameters())
        missing = set(own) - set(state)
        unexpected = set(state) - set(own)
        if strict and (missing or unexpected):
            raise KeyError(
                f"state dict mismatch: missing={sorted(missing)} unexpected={sorted(unexpected)}"
            )
        for name, value in state.items():
            if name not in own:
                continue
            param = own[name]
            value = np.asarray(value, dtype=np.float32)
            if param.data.shape != value.shape:
                raise ValueError(
                    f"shape mismatch for {name}: model {param.data.shape}, state {value.shape}"
                )
            param.data = value.copy()

    def num_parameters(self) -> int:
        return sum(p.size for p in self.parameters())

    # -- compiled inference fast path ---------------------------------- #
    def inference_plan(self, batch_shape, modules=None, key: str = "plan"):
        """Cached compiled inference plan for this module at ``batch_shape``.

        Thin wrapper over :func:`repro.nn.fastpath.cached_plan`: plans
        are memoized on this instance per ``(key, per-sample shape)`` and
        read parameters live, so they survive weight updates.  ``modules``
        overrides what gets traced (default: this module itself) — e.g.
        a model can trace ``(self.features, self.classifier)``.
        """
        from repro.nn.fastpath import cached_plan

        return cached_plan(self, self if modules is None else modules, batch_shape, key=key)

    def clear_inference_plans(self) -> None:
        """Drop cached fastpath plans (and their arena buffers)."""
        from repro.nn.fastpath import clear_plans

        clear_plans(self)

    def __getstate__(self):
        """Pickle without cached inference plans.

        Plans hold multi-MB scratch arenas and are pure caches — shipping
        them through process-pool pipes (the serving engine pickles the
        backend per worker chunk) or into deep copies would be dead
        weight.  Receivers retrace lazily on their first batch.
        """
        state = self.__dict__.copy()
        state.pop("_fastpath_plans", None)
        return state

    # -- forward ---------------------------------------------------------- #
    def forward(self, *args, **kwargs):
        raise NotImplementedError(f"{type(self).__name__} must implement forward()")

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)

    def __repr__(self) -> str:
        child_lines = [
            f"  ({name}): {repr(child)}".replace("\n", "\n  ")
            for name, child in self._modules.items()
        ]
        header = f"{type(self).__name__}("
        if not child_lines:
            return header + ")"
        return header + "\n" + "\n".join(child_lines) + "\n)"


class Sequential(Module):
    """Run child modules in order; also supports slicing (used for model
    truncation — the paper extracts the early-exit branch as "layers 1..k")."""

    def __init__(self, *layers: Module) -> None:
        super().__init__()
        self._order: list[str] = []
        for i, layer in enumerate(layers):
            self.register_module(str(i), layer)
            self._order.append(str(i))

    def forward(self, x: Tensor) -> Tensor:
        for name in self._order:
            x = self._modules[name](x)
        return x

    def __len__(self) -> int:
        return len(self._order)

    def __iter__(self) -> Iterator[Module]:
        return iter(self._modules[name] for name in self._order)

    def __getitem__(self, index: int | slice) -> "Module":
        if isinstance(index, slice):
            return Sequential(*[self._modules[name] for name in self._order[index]])
        return self._modules[self._order[index]]

    def append(self, module: Module) -> "Sequential":
        name = str(len(self._order))
        self.register_module(name, module)
        self._order.append(name)
        return self


class ModuleList(Module):
    """An indexable list of sub-modules (used for BranchyNet's exits)."""

    def __init__(self, modules: list[Module] | None = None) -> None:
        super().__init__()
        self._order: list[str] = []
        for module in modules or []:
            self.append(module)

    def append(self, module: Module) -> "ModuleList":
        name = str(len(self._order))
        self.register_module(name, module)
        self._order.append(name)
        return self

    def __len__(self) -> int:
        return len(self._order)

    def __iter__(self) -> Iterator[Module]:
        return iter(self._modules[name] for name in self._order)

    def __getitem__(self, index: int) -> Module:
        return self._modules[self._order[index]]

    def forward(self, *args, **kwargs):
        raise RuntimeError("ModuleList is a container; call its items individually")
