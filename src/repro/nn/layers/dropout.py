"""Inverted dropout (active only in training mode)."""

from __future__ import annotations

import numpy as np

from repro.nn.module import Module
from repro.nn.tensor import Tensor

__all__ = ["Dropout"]


class Dropout(Module):
    def __init__(self, p: float = 0.5, rng: np.random.Generator | None = None) -> None:
        super().__init__()
        if not 0.0 <= p < 1.0:
            raise ValueError(f"dropout probability must be in [0, 1), got {p}")
        self.p = p
        self.rng = rng if rng is not None else np.random.default_rng()

    def forward(self, x: Tensor) -> Tensor:
        if not self.training or self.p == 0.0:
            return x
        keep = 1.0 - self.p
        mask = (self.rng.random(x.shape) < keep).astype(np.float32) / keep
        return x * Tensor(mask)

    def __repr__(self) -> str:
        return f"Dropout(p={self.p})"
