"""Activity regularization.

The paper: "it adds penalties to the reconstruction loss function in
proportion to the magnitude of the activations in the output of the
Encoder layer ... we used L1 penalty with a coefficient of 10e-8."

Keras implements this as an ``activity_regularizer`` attached to a layer;
here it is an explicit pass-through layer that records the penalty each
forward pass, which the trainer then adds to the loss.
"""

from __future__ import annotations

from repro.nn.module import Module
from repro.nn.tensor import Tensor

__all__ = ["ActivityRegularizer"]


class ActivityRegularizer(Module):
    """Identity layer accumulating an L1 (and/or L2) activity penalty."""

    def __init__(self, l1: float = 0.0, l2: float = 0.0) -> None:
        super().__init__()
        if l1 < 0 or l2 < 0:
            raise ValueError(f"penalty coefficients must be non-negative: l1={l1}, l2={l2}")
        self.l1 = l1
        self.l2 = l2
        self._penalty: Tensor | None = None

    def forward(self, x: Tensor) -> Tensor:
        if self.training and (self.l1 > 0.0 or self.l2 > 0.0):
            penalty: Tensor | None = None
            if self.l1 > 0.0:
                penalty = x.abs().sum() * self.l1
            if self.l2 > 0.0:
                l2_term = (x * x).sum() * self.l2
                penalty = l2_term if penalty is None else penalty + l2_term
            self._penalty = penalty
        else:
            self._penalty = None
        return x

    def pop_penalty(self) -> Tensor | None:
        """Return and clear the penalty recorded by the last forward pass."""
        penalty, self._penalty = self._penalty, None
        return penalty

    def __repr__(self) -> str:
        return f"ActivityRegularizer(l1={self.l1:g}, l2={self.l2:g})"
