"""Layer zoo: everything needed to express the paper's architectures."""

from repro.nn.layers.linear import Linear
from repro.nn.layers.conv import Conv2d
from repro.nn.layers.pooling import MaxPool2d, AvgPool2d
from repro.nn.layers.activation import ReLU, Sigmoid, Tanh, Softmax, Identity, LeakyReLU
from repro.nn.layers.shape import Flatten, Reshape
from repro.nn.layers.dropout import Dropout
from repro.nn.layers.regularizers import ActivityRegularizer
from repro.nn.layers.scale import Scale

__all__ = [
    "Linear",
    "Conv2d",
    "MaxPool2d",
    "AvgPool2d",
    "ReLU",
    "Sigmoid",
    "Tanh",
    "Softmax",
    "Identity",
    "LeakyReLU",
    "Flatten",
    "Reshape",
    "Dropout",
    "ActivityRegularizer",
    "Scale",
]
