"""Fully-connected layer."""

from __future__ import annotations

import numpy as np

from repro.nn import functional as F
from repro.nn import init
from repro.nn.module import Module, Parameter
from repro.nn.tensor import Tensor

__all__ = ["Linear"]


class Linear(Module):
    """Affine transform ``y = x @ W.T + b``.

    Parameters
    ----------
    in_features, out_features:
        Input/output widths.
    bias:
        Whether to learn an additive bias (the paper's MLP autoencoders do).
    rng:
        Generator for weight init; pass the experiment RNG for determinism.
    """

    def __init__(
        self,
        in_features: int,
        out_features: int,
        bias: bool = True,
        rng: np.random.Generator | None = None,
        initializer=init.glorot_uniform,
    ) -> None:
        super().__init__()
        if in_features <= 0 or out_features <= 0:
            raise ValueError(f"features must be positive: in={in_features}, out={out_features}")
        rng = rng if rng is not None else np.random.default_rng()
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(initializer((out_features, in_features), rng), name="weight")
        self.bias = Parameter(init.zeros((out_features,)), name="bias") if bias else None

    def forward(self, x: Tensor) -> Tensor:
        if x.shape[-1] != self.in_features:
            raise ValueError(
                f"Linear({self.in_features}->{self.out_features}) got input width {x.shape[-1]}"
            )
        return F.linear(x, self.weight, self.bias)

    def __repr__(self) -> str:
        return (
            f"Linear(in={self.in_features}, out={self.out_features}, "
            f"bias={self.bias is not None})"
        )
