"""Fixed affine scaling layer (no trainable parameters)."""

from __future__ import annotations

from repro.nn.module import Module
from repro.nn.tensor import Tensor

__all__ = ["Scale"]


class Scale(Module):
    """Multiply activations by a fixed constant.

    Used by the converting autoencoder's Softmax head: ``softmax(z) * D``
    keeps the probability-image semantics of Table I while putting the
    reconstruction on the same numeric scale as the targets (mean pixel
    ~1), so the MSE gradients do not vanish.
    """

    def __init__(self, factor: float) -> None:
        super().__init__()
        if factor == 0:
            raise ValueError("scale factor must be non-zero")
        self.factor = float(factor)

    def forward(self, x: Tensor) -> Tensor:
        return x * self.factor

    def __repr__(self) -> str:
        return f"Scale({self.factor:g})"
