"""2-D convolution layer (im2col + GEMM under the hood)."""

from __future__ import annotations

import numpy as np

from repro.nn import functional as F
from repro.nn import init
from repro.nn.module import Module, Parameter
from repro.nn.tensor import Tensor

__all__ = ["Conv2d"]


class Conv2d(Module):
    """Cross-correlation over NCHW input.

    Matches the Keras ``Conv2D`` semantics used by the paper's models
    (``padding=0`` ≙ "valid", ``padding=k//2`` ≙ "same" for odd kernels).
    """

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int,
        stride: int = 1,
        padding: int = 0,
        bias: bool = True,
        rng: np.random.Generator | None = None,
        initializer=init.he_normal,
    ) -> None:
        super().__init__()
        if min(in_channels, out_channels, kernel_size) <= 0:
            raise ValueError(
                f"channels/kernel must be positive: in={in_channels}, "
                f"out={out_channels}, k={kernel_size}"
            )
        rng = rng if rng is not None else np.random.default_rng()
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = kernel_size
        self.stride = stride
        self.padding = padding
        self.weight = Parameter(
            initializer((out_channels, in_channels, kernel_size, kernel_size), rng),
            name="weight",
        )
        self.bias = Parameter(init.zeros((out_channels,)), name="bias") if bias else None

    def forward(self, x: Tensor) -> Tensor:
        return F.conv2d(x, self.weight, self.bias, stride=self.stride, padding=self.padding)

    def output_spatial(self, h: int, w: int) -> tuple[int, int]:
        """Output (H, W) for an input of spatial size (h, w)."""
        oh = (h + 2 * self.padding - self.kernel_size) // self.stride + 1
        ow = (w + 2 * self.padding - self.kernel_size) // self.stride + 1
        return oh, ow

    def __repr__(self) -> str:
        return (
            f"Conv2d({self.in_channels}->{self.out_channels}, k={self.kernel_size}, "
            f"s={self.stride}, p={self.padding})"
        )
