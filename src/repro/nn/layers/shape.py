"""Shape-manipulation layers."""

from __future__ import annotations

import numpy as np

from repro.nn.module import Module
from repro.nn.tensor import Tensor

__all__ = ["Flatten", "Reshape"]


class Flatten(Module):
    """Collapse all non-batch axes: (N, ...) → (N, prod(...))."""

    def forward(self, x: Tensor) -> Tensor:
        return x.flatten_batch()

    def __repr__(self) -> str:
        return "Flatten()"


class Reshape(Module):
    """Reshape the non-batch axes to ``shape`` (batch axis preserved)."""

    def __init__(self, *shape: int) -> None:
        super().__init__()
        self.shape = tuple(shape)

    def forward(self, x: Tensor) -> Tensor:
        expected = int(np.prod(self.shape))
        got = int(np.prod(x.shape[1:]))
        if expected != got:
            raise ValueError(f"Reshape{self.shape} got {got} elements per sample")
        return x.reshape((x.shape[0], *self.shape))

    def __repr__(self) -> str:
        return f"Reshape{self.shape}"
