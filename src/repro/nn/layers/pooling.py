"""Pooling layers."""

from __future__ import annotations

from repro.nn import functional as F
from repro.nn.module import Module
from repro.nn.tensor import Tensor

__all__ = ["MaxPool2d", "AvgPool2d"]


class MaxPool2d(Module):
    def __init__(self, kernel_size: int, stride: int | None = None) -> None:
        super().__init__()
        if kernel_size <= 0:
            raise ValueError(f"kernel_size must be positive, got {kernel_size}")
        self.kernel_size = kernel_size
        self.stride = kernel_size if stride is None else stride

    def forward(self, x: Tensor) -> Tensor:
        return F.max_pool2d(x, self.kernel_size, self.stride)

    def __repr__(self) -> str:
        return f"MaxPool2d(k={self.kernel_size}, s={self.stride})"


class AvgPool2d(Module):
    def __init__(self, kernel_size: int, stride: int | None = None) -> None:
        super().__init__()
        if kernel_size <= 0:
            raise ValueError(f"kernel_size must be positive, got {kernel_size}")
        self.kernel_size = kernel_size
        self.stride = kernel_size if stride is None else stride

    def forward(self, x: Tensor) -> Tensor:
        return F.avg_pool2d(x, self.kernel_size, self.stride)

    def __repr__(self) -> str:
        return f"AvgPool2d(k={self.kernel_size}, s={self.stride})"
