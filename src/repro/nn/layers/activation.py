"""Activation layers; constructible by name (Table I specifies activations
as strings: relu / linear / Softmax)."""

from __future__ import annotations

from repro.nn import functional as F
from repro.nn.module import Module
from repro.nn.tensor import Tensor

__all__ = [
    "ReLU",
    "LeakyReLU",
    "Sigmoid",
    "Tanh",
    "Softmax",
    "Identity",
    "activation_by_name",
]


class ReLU(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x.relu()

    def __repr__(self) -> str:
        return "ReLU()"


class LeakyReLU(Module):
    def __init__(self, negative_slope: float = 0.01) -> None:
        super().__init__()
        self.negative_slope = negative_slope

    def forward(self, x: Tensor) -> Tensor:
        return x.relu() - (-x).relu() * self.negative_slope

    def __repr__(self) -> str:
        return f"LeakyReLU(slope={self.negative_slope})"


class Sigmoid(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x.sigmoid()

    def __repr__(self) -> str:
        return "Sigmoid()"


class Tanh(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x.tanh()

    def __repr__(self) -> str:
        return "Tanh()"


class Softmax(Module):
    def __init__(self, axis: int = -1) -> None:
        super().__init__()
        self.axis = axis

    def forward(self, x: Tensor) -> Tensor:
        return F.softmax(x, axis=self.axis)

    def __repr__(self) -> str:
        return f"Softmax(axis={self.axis})"


class Identity(Module):
    """Pass-through ("linear" activation in Keras parlance / Table I)."""

    def forward(self, x: Tensor) -> Tensor:
        return x

    def __repr__(self) -> str:
        return "Identity()"


_BY_NAME = {
    "relu": ReLU,
    "leaky_relu": LeakyReLU,
    "sigmoid": Sigmoid,
    "tanh": Tanh,
    "softmax": Softmax,
    "linear": Identity,
    "identity": Identity,
    "none": Identity,
}


def activation_by_name(name: str) -> Module:
    """Instantiate an activation from its Table-I string name."""
    key = name.strip().lower()
    if key not in _BY_NAME:
        raise KeyError(f"unknown activation {name!r}; known: {sorted(_BY_NAME)}")
    return _BY_NAME[key]()
