"""Autograd mode control and numerical gradient checking.

``no_grad()`` suppresses graph construction — essential for the inference
benchmarks, where building backward closures would inflate both latency
and memory for no benefit.
"""

from __future__ import annotations

import contextlib
import threading
from typing import Callable, Iterator

import numpy as np

__all__ = ["grad_enabled", "no_grad", "enable_grad", "numerical_gradient", "gradcheck"]

_state = threading.local()


def grad_enabled() -> bool:
    """True when autograd graph construction is active (the default)."""
    return getattr(_state, "enabled", True)


@contextlib.contextmanager
def _set_grad(mode: bool) -> Iterator[None]:
    previous = grad_enabled()
    _state.enabled = mode
    try:
        yield
    finally:
        _state.enabled = previous


def no_grad() -> contextlib.AbstractContextManager:
    """Context manager disabling autograd (inference mode)."""
    return _set_grad(False)


def enable_grad() -> contextlib.AbstractContextManager:
    """Context manager (re-)enabling autograd inside a ``no_grad`` block."""
    return _set_grad(True)


def numerical_gradient(
    fn: Callable[[np.ndarray], float],
    x: np.ndarray,
    eps: float = 1e-4,
) -> np.ndarray:
    """Central-difference gradient of scalar ``fn`` at ``x`` (float64)."""
    x = x.astype(np.float64)
    grad = np.zeros_like(x)
    flat = x.reshape(-1)
    gflat = grad.reshape(-1)
    for i in range(flat.size):
        orig = flat[i]
        flat[i] = orig + eps
        f_plus = fn(x)
        flat[i] = orig - eps
        f_minus = fn(x)
        flat[i] = orig
        gflat[i] = (f_plus - f_minus) / (2.0 * eps)
    return grad


def gradcheck(
    fn: Callable[..., "object"],
    *inputs: np.ndarray,
    eps: float = 1e-4,
    atol: float = 1e-3,
    rtol: float = 1e-2,
) -> bool:
    """Compare analytic autograd gradients against central differences.

    ``fn`` takes :class:`~repro.nn.tensor.Tensor` arguments and returns a
    scalar Tensor.  Raises ``AssertionError`` with a diagnostic on mismatch;
    returns True on success (so it can sit inside ``assert gradcheck(...)``).
    """
    from repro.nn.tensor import Tensor

    tensors = [Tensor(x.astype(np.float64), requires_grad=True, dtype=np.float64) for x in inputs]
    out = fn(*tensors)
    out.backward()

    for idx, (t, x) in enumerate(zip(tensors, inputs)):
        def scalar_fn(values: np.ndarray, _idx: int = idx) -> float:
            probe = [
                Tensor(values if j == _idx else other.astype(np.float64), dtype=np.float64)
                for j, other in enumerate(inputs)
            ]
            return float(fn(*probe).data)

        numeric = numerical_gradient(scalar_fn, x.astype(np.float64), eps=eps)
        analytic = t.grad
        assert analytic is not None, f"input {idx} received no gradient"
        if not np.allclose(analytic, numeric, atol=atol, rtol=rtol):
            worst = np.abs(analytic - numeric).max()
            raise AssertionError(
                f"gradcheck failed for input {idx}: max abs err {worst:.3e}\n"
                f"analytic:\n{analytic}\nnumeric:\n{numeric}"
            )
    return True
