"""Loss functions, including the paper's joint multi-exit objective."""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.nn import functional as F
from repro.nn.module import Module
from repro.nn.tensor import Tensor

__all__ = ["MSELoss", "CrossEntropyLoss", "JointExitLoss"]


class MSELoss(Module):
    """Mean squared error — the converting autoencoder's reconstruction loss."""

    def forward(self, prediction: Tensor, target: Tensor | np.ndarray) -> Tensor:
        return F.mse_loss(prediction, target)

    def __repr__(self) -> str:
        return "MSELoss()"


class CrossEntropyLoss(Module):
    """Softmax cross-entropy over integer class labels."""

    def forward(self, logits: Tensor, targets: np.ndarray | Tensor) -> Tensor:
        return F.cross_entropy(logits, targets)

    def __repr__(self) -> str:
        return "CrossEntropyLoss()"


class JointExitLoss(Module):
    """BranchyNet's joint training objective.

    L = Σ_i w_i · CE(exit_i_logits, y).  Teerapittayanon et al. weight every
    exit equally by default; the weights are exposed so the ablation bench
    can sweep them.
    """

    def __init__(self, weights: Sequence[float] | None = None) -> None:
        super().__init__()
        self.weights = tuple(weights) if weights is not None else None

    def forward(self, exit_logits: Sequence[Tensor], targets: np.ndarray) -> Tensor:
        if not exit_logits:
            raise ValueError("JointExitLoss needs at least one exit")
        weights = self.weights or tuple(1.0 for _ in exit_logits)
        if len(weights) != len(exit_logits):
            raise ValueError(
                f"{len(exit_logits)} exits but {len(weights)} loss weights configured"
            )
        total: Tensor | None = None
        for w, logits in zip(weights, exit_logits):
            term = F.cross_entropy(logits, targets) * w
            total = term if total is None else total + term
        assert total is not None
        return total

    def __repr__(self) -> str:
        return f"JointExitLoss(weights={self.weights})"
