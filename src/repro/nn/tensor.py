"""A small reverse-mode autodiff tensor on top of NumPy.

This is the computational substrate for every model in the repository
(LeNet, BranchyNet, the converting autoencoder, the compression
baselines).  Design points:

* **Vectorized hot paths.**  All heavy math is a single NumPy call per op
  (GEMM for dense/conv-via-im2col, ufuncs for activations); Python only
  orchestrates.  Gradients reuse buffers where safe (``+=`` accumulation).
* **Broadcasting-aware backward.**  Every binary op reduces its upstream
  gradient back to the operand's shape (`_unbroadcast`), so biases and
  scalar penalties "just work".
* **Explicit graph, no global tape.**  Each Tensor produced by an op holds
  its parents and a closure computing parent gradients; ``backward()``
  does a topological sweep.  ``no_grad()`` (in :mod:`repro.nn.autograd`)
  suppresses graph construction during inference, which matters for the
  latency benchmarks.

Only float32 is used by the library (matching the paper's Keras stack),
but the engine is dtype-agnostic.
"""

from __future__ import annotations

from typing import Callable, Iterable, Sequence

import numpy as np

from repro.nn import autograd

Array = np.ndarray

__all__ = ["Tensor", "as_tensor"]


def _unbroadcast(grad: Array, shape: tuple[int, ...]) -> Array:
    """Sum ``grad`` down to ``shape`` (inverse of NumPy broadcasting)."""
    if grad.shape == shape:
        return grad
    # Sum out prepended axes.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # Sum along axes that were broadcast from size 1.
    axes = tuple(i for i, s in enumerate(shape) if s == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


class Tensor:
    """N-dimensional array with reverse-mode automatic differentiation."""

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_parents", "name")

    def __init__(
        self,
        data: Array | float | int | Sequence,
        requires_grad: bool = False,
        dtype: np.dtype | type | None = None,
        name: str | None = None,
    ) -> None:
        if isinstance(data, Tensor):
            raise TypeError("wrapping a Tensor in a Tensor is almost certainly a bug")
        was_ndarray = isinstance(data, (np.ndarray, np.generic))
        arr = np.asarray(data, dtype=dtype if dtype is not None else None)
        if arr.dtype == np.float64 and dtype is None and not was_ndarray:
            # Library-wide convention: Python floats/lists become float32
            # (the paper's stack); existing ndarrays keep their dtype so
            # float64 gradient checks stay float64 end-to-end.
            arr = arr.astype(np.float32)
        self.data: Array = arr
        self.requires_grad = bool(requires_grad) and autograd.grad_enabled()
        self.grad: Array | None = None
        self._backward: Callable[[Array], None] | None = None
        self._parents: tuple[Tensor, ...] = ()
        self.name = name

    # ------------------------------------------------------------------ #
    # basic properties
    # ------------------------------------------------------------------ #
    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def dtype(self) -> np.dtype:
        return self.data.dtype

    @property
    def T(self) -> "Tensor":
        return self.transpose()

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:
        grad_flag = ", requires_grad=True" if self.requires_grad else ""
        label = f", name={self.name!r}" if self.name else ""
        return f"Tensor(shape={self.shape}, dtype={self.dtype}{grad_flag}{label})"

    def numpy(self) -> Array:
        """Return the underlying array (no copy)."""
        return self.data

    def item(self) -> float:
        return float(self.data.reshape(-1)[0]) if self.data.size == 1 else self._item_err()

    def _item_err(self) -> float:
        raise ValueError(f"item() requires a single-element tensor, shape={self.shape}")

    def detach(self) -> "Tensor":
        """A view of the same data cut out of the autograd graph."""
        return Tensor(self.data, requires_grad=False)

    def copy(self) -> "Tensor":
        return Tensor(self.data.copy(), requires_grad=False)

    def zero_grad(self) -> None:
        self.grad = None

    # ------------------------------------------------------------------ #
    # graph construction
    # ------------------------------------------------------------------ #
    @staticmethod
    def _make(
        data: Array,
        parents: Iterable["Tensor"],
        backward: Callable[[Array], None],
    ) -> "Tensor":
        """Create an op result node, attaching the graph only when needed."""
        parents = tuple(parents)
        needs = autograd.grad_enabled() and any(p.requires_grad for p in parents)
        out = Tensor(data)
        if needs:
            out.requires_grad = True
            out._parents = parents
            out._backward = backward
        return out

    def _accumulate(self, grad: Array, fresh: bool = False) -> None:
        """Add ``grad`` into this tensor's gradient buffer, in place.

        ``fresh=True`` asserts the caller computed ``grad`` exclusively
        for this call (e.g. ``g * other.data``), letting us take
        ownership instead of copying.  The default copies on first
        accumulation: adopting a *shared* array (such as the upstream
        ``g`` an add-node forwards to both parents) aliases sibling
        ``.grad`` buffers, and later in-place ``+=`` accumulations then
        corrupt them.
        """
        grad = np.asarray(grad, dtype=self.data.dtype)
        if grad.shape != self.data.shape:
            # _unbroadcast sums, producing an array only we hold.
            grad = _unbroadcast(grad, self.data.shape)
            fresh = True
        if self.grad is None:
            self.grad = grad if fresh else grad.copy()
        else:
            self.grad += grad

    def backward(self, grad: Array | float | None = None) -> None:
        """Backpropagate from this tensor through the recorded graph."""
        if not self.requires_grad:
            raise RuntimeError("backward() on a tensor that does not require grad")
        if grad is None:
            if self.data.size != 1:
                raise RuntimeError(
                    f"backward() without an explicit gradient requires a scalar output, "
                    f"got shape {self.shape}"
                )
            grad = np.ones_like(self.data)
        grad = np.asarray(grad, dtype=self.data.dtype)

        # Iterative topological order (post-order DFS) — recursion would
        # overflow on deep graphs (e.g. long training loops kept alive).
        topo: list[Tensor] = []
        visited: set[int] = set()
        stack: list[tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                topo.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if parent.requires_grad and id(parent) not in visited:
                    stack.append((parent, False))

        self._accumulate(grad)
        for node in reversed(topo):
            if node._backward is not None and node.grad is not None:
                node._backward(node.grad)

    # ------------------------------------------------------------------ #
    # arithmetic
    # ------------------------------------------------------------------ #
    def __add__(self, other) -> "Tensor":
        other = as_tensor(other, dtype=self.dtype)

        def backward(g: Array) -> None:
            if self.requires_grad:
                self._accumulate(g)
            if other.requires_grad:
                other._accumulate(g)

        return Tensor._make(self.data + other.data, (self, other), backward)

    __radd__ = __add__

    def __neg__(self) -> "Tensor":
        def backward(g: Array) -> None:
            if self.requires_grad:
                self._accumulate(-g, fresh=True)

        return Tensor._make(-self.data, (self,), backward)

    def __sub__(self, other) -> "Tensor":
        other = as_tensor(other, dtype=self.dtype)

        def backward(g: Array) -> None:
            if self.requires_grad:
                self._accumulate(g)
            if other.requires_grad:
                other._accumulate(-g, fresh=True)

        return Tensor._make(self.data - other.data, (self, other), backward)

    def __rsub__(self, other) -> "Tensor":
        return as_tensor(other, dtype=self.dtype) - self

    def __mul__(self, other) -> "Tensor":
        other = as_tensor(other, dtype=self.dtype)

        def backward(g: Array) -> None:
            if self.requires_grad:
                self._accumulate(g * other.data, fresh=True)
            if other.requires_grad:
                other._accumulate(g * self.data, fresh=True)

        return Tensor._make(self.data * other.data, (self, other), backward)

    __rmul__ = __mul__

    def __truediv__(self, other) -> "Tensor":
        other = as_tensor(other, dtype=self.dtype)

        def backward(g: Array) -> None:
            if self.requires_grad:
                self._accumulate(g / other.data, fresh=True)
            if other.requires_grad:
                other._accumulate(-g * self.data / (other.data * other.data), fresh=True)

        return Tensor._make(self.data / other.data, (self, other), backward)

    def __rtruediv__(self, other) -> "Tensor":
        return as_tensor(other, dtype=self.dtype) / self

    def __pow__(self, exponent: float) -> "Tensor":
        if not isinstance(exponent, (int, float)):
            raise TypeError("only scalar exponents are supported")

        def backward(g: Array) -> None:
            if self.requires_grad:
                self._accumulate(g * exponent * self.data ** (exponent - 1), fresh=True)

        return Tensor._make(self.data**exponent, (self,), backward)

    def __matmul__(self, other) -> "Tensor":
        other = as_tensor(other, dtype=self.dtype)

        def backward(g: Array) -> None:
            if self.requires_grad:
                self._accumulate(g @ other.data.swapaxes(-1, -2), fresh=True)
            if other.requires_grad:
                other._accumulate(self.data.swapaxes(-1, -2) @ g, fresh=True)

        return Tensor._make(self.data @ other.data, (self, other), backward)

    def __getitem__(self, key) -> "Tensor":
        def backward(g: Array) -> None:
            if self.requires_grad:
                full = np.zeros_like(self.data)
                np.add.at(full, key, g)
                self._accumulate(full, fresh=True)

        return Tensor._make(self.data[key], (self,), backward)

    # ------------------------------------------------------------------ #
    # reductions
    # ------------------------------------------------------------------ #
    def sum(self, axis: int | tuple[int, ...] | None = None, keepdims: bool = False) -> "Tensor":
        out_data = self.data.sum(axis=axis, keepdims=keepdims)

        def backward(g: Array) -> None:
            if not self.requires_grad:
                return
            grad = g
            if axis is not None and not keepdims:
                axes = (axis,) if isinstance(axis, int) else axis
                for ax in sorted(a % self.data.ndim for a in axes):
                    grad = np.expand_dims(grad, ax)
            self._accumulate(np.broadcast_to(grad, self.data.shape))

        return Tensor._make(out_data, (self,), backward)

    def mean(self, axis: int | tuple[int, ...] | None = None, keepdims: bool = False) -> "Tensor":
        if axis is None:
            count = self.data.size
        else:
            axes = (axis,) if isinstance(axis, int) else axis
            count = int(np.prod([self.data.shape[a] for a in axes]))
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def max(self, axis: int | None = None, keepdims: bool = False) -> "Tensor":
        out_data = self.data.max(axis=axis, keepdims=keepdims)

        def backward(g: Array) -> None:
            if not self.requires_grad:
                return
            expanded = out_data if keepdims or axis is None else np.expand_dims(out_data, axis)
            mask = (self.data == expanded).astype(self.data.dtype)
            # Split gradient evenly between ties (matches numerical grad).
            mask /= mask.sum(axis=axis, keepdims=True) if axis is not None else mask.sum()
            grad = g if keepdims or axis is None else np.expand_dims(g, axis)
            self._accumulate(mask * grad, fresh=True)

        return Tensor._make(out_data, (self,), backward)

    # ------------------------------------------------------------------ #
    # elementwise nonlinearities
    # ------------------------------------------------------------------ #
    def exp(self) -> "Tensor":
        out_data = np.exp(self.data)

        def backward(g: Array) -> None:
            if self.requires_grad:
                self._accumulate(g * out_data, fresh=True)

        return Tensor._make(out_data, (self,), backward)

    def log(self) -> "Tensor":
        def backward(g: Array) -> None:
            if self.requires_grad:
                self._accumulate(g / self.data, fresh=True)

        return Tensor._make(np.log(self.data), (self,), backward)

    def sqrt(self) -> "Tensor":
        return self**0.5

    def abs(self) -> "Tensor":
        def backward(g: Array) -> None:
            if self.requires_grad:
                self._accumulate(g * np.sign(self.data), fresh=True)

        return Tensor._make(np.abs(self.data), (self,), backward)

    def relu(self) -> "Tensor":
        mask = self.data > 0

        def backward(g: Array) -> None:
            if self.requires_grad:
                self._accumulate(g * mask, fresh=True)

        return Tensor._make(self.data * mask, (self,), backward)

    def sigmoid(self) -> "Tensor":
        # Numerically stable logistic: never exponentiates a large positive.
        out_data = np.empty_like(self.data)
        pos = self.data >= 0
        out_data[pos] = 1.0 / (1.0 + np.exp(-self.data[pos]))
        ez = np.exp(self.data[~pos])
        out_data[~pos] = ez / (1.0 + ez)

        def backward(g: Array) -> None:
            if self.requires_grad:
                self._accumulate(g * out_data * (1.0 - out_data), fresh=True)

        return Tensor._make(out_data, (self,), backward)

    def tanh(self) -> "Tensor":
        out_data = np.tanh(self.data)

        def backward(g: Array) -> None:
            if self.requires_grad:
                self._accumulate(g * (1.0 - out_data * out_data), fresh=True)

        return Tensor._make(out_data, (self,), backward)

    def clip(self, low: float, high: float) -> "Tensor":
        mask = (self.data > low) & (self.data < high)

        def backward(g: Array) -> None:
            if self.requires_grad:
                self._accumulate(g * mask, fresh=True)

        return Tensor._make(np.clip(self.data, low, high), (self,), backward)

    # ------------------------------------------------------------------ #
    # shape manipulation
    # ------------------------------------------------------------------ #
    def reshape(self, *shape: int) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        original = self.data.shape

        def backward(g: Array) -> None:
            if self.requires_grad:
                self._accumulate(g.reshape(original))

        return Tensor._make(self.data.reshape(shape), (self,), backward)

    def flatten_batch(self) -> "Tensor":
        """Collapse all but the leading (batch) axis."""
        return self.reshape(self.data.shape[0], -1)

    def transpose(self, *axes: int) -> "Tensor":
        if not axes:
            axes = tuple(reversed(range(self.data.ndim)))
        inverse = tuple(np.argsort(axes))

        def backward(g: Array) -> None:
            if self.requires_grad:
                self._accumulate(g.transpose(inverse))

        return Tensor._make(self.data.transpose(axes), (self,), backward)

    def pad2d(self, padding: int) -> "Tensor":
        """Zero-pad the last two (spatial) axes symmetrically."""
        if padding == 0:
            return self
        if padding < 0:
            raise ValueError(f"padding must be non-negative, got {padding}")
        pad_width = [(0, 0)] * (self.data.ndim - 2) + [(padding, padding)] * 2

        def backward(g: Array) -> None:
            if self.requires_grad:
                sl = [slice(None)] * (self.data.ndim - 2) + [
                    slice(padding, -padding),
                    slice(padding, -padding),
                ]
                self._accumulate(g[tuple(sl)])

        return Tensor._make(np.pad(self.data, pad_width), (self,), backward)


def as_tensor(value, dtype: np.dtype | type | None = None) -> Tensor:
    """Coerce arrays/scalars to :class:`Tensor` (passthrough for tensors)."""
    if isinstance(value, Tensor):
        return value
    return Tensor(np.asarray(value, dtype=dtype))
