"""Shared simulation substrate: SoA request logs + the inference oracle.

``repro.sim`` is the layer under the three virtual-clock engines
(:mod:`repro.serving`, :mod:`repro.cluster`, :mod:`repro.offload`):

* :class:`~repro.sim.records.RequestLog` — structure-of-arrays
  per-request bookkeeping (arrival/completion/route/prediction as NumPy
  columns) that the engines mutate in place and the reports reduce
  without Python loops;
* :class:`~repro.sim.oracle.InferenceTable` /
  :class:`~repro.sim.oracle.OracleBackend` — the precomputed inference
  oracle: one batched model pass per (model, dataset) replaces every
  in-loop inference call with table lookups at identical reported
  metrics (``live=True`` on the experiment drivers keeps the real
  path);
* :mod:`~repro.sim.core` — shared trace validation and cache-key
  construction.
"""

from repro.sim.core import request_keys, validate_trace
from repro.sim.oracle import (
    InferenceTable,
    OffloadOracle,
    OracleBackend,
    clear_oracle_cache,
    offload_oracle,
    oracle_backend,
)
from repro.sim.records import (
    ROUTE_BATCHED,
    ROUTE_CACHED,
    ROUTE_CODES,
    ROUTE_EASY,
    ROUTE_HARD,
    ROUTE_SHED,
    RequestLog,
)

__all__ = [
    "RequestLog",
    "ROUTE_BATCHED",
    "ROUTE_CACHED",
    "ROUTE_EASY",
    "ROUTE_HARD",
    "ROUTE_SHED",
    "ROUTE_CODES",
    "InferenceTable",
    "OracleBackend",
    "oracle_backend",
    "OffloadOracle",
    "offload_oracle",
    "clear_oracle_cache",
    "validate_trace",
    "request_keys",
]
