"""Precomputed inference oracle: one model pass per (model, dataset).

End-to-end serving experiments replay the *same* small pool of unique
images thousands of times — across every policy, scenario, and replica
of a grid — and the live engines re-run real NumPy inference inside
every simulated micro-batch.  The oracle moves all of that model work
out of the event loop: one batched fastpath pass per (model, dataset)
computes branch entropy, gate decisions, and easy-/hard-path predictions
for every *unique* sample, and the engines then consume table lookups
while the calibrated :class:`~repro.serving.backends.BatchTiming` cost
model keeps the virtual clock identical.  Experiment cost drops from
``O(policies × scenarios × inference)`` to ``O(inference + cheap
simulation)``.

Usage: build the request stream out of **sample ids** (the integers that
would index the unique image pool) instead of materialized pixels, wrap
each backend with :func:`oracle_backend`, and serve as usual::

    table_backend = oracle_backend(CBNetBackend(cbnet, device), pool_images)
    report = Server(table_backend).serve(sample_ids, arrival_s, labels)

Everything observable — routing decisions, served predictions, cache
hits, latency percentiles — matches the live path under fixed seeds
(the equivalence suite in ``tests/sim`` asserts it); passing
``live=True`` to the experiment drivers keeps the real-inference path
as an escape hatch.

Tables are memoized per (model identity, router threshold, image pool),
so a whole experiment grid shares one precomputation.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.nn.module import Module
from repro.obs.prof import current_profiler
from repro.serving.backends import InferenceBackend
from repro.serving.router import RouteDecision

__all__ = [
    "InferenceTable",
    "OracleBackend",
    "oracle_backend",
    "OffloadOracle",
    "offload_oracle",
    "clear_oracle_cache",
]


@dataclass(frozen=True)
class InferenceTable:
    """Per-sample precomputed outputs of one backend over one image pool.

    ``easy_preds`` is what the backend answers when a sample takes its
    easy/static path (branch exit, or the whole pipeline for unrouted
    backends); ``hard_preds`` what it answers on the hard path (trunk /
    converted re-classification).  ``entropy``/``easy`` are the routing
    statistic and the gate decision at the backend's own threshold;
    ``None`` for static backends.
    """

    easy_preds: np.ndarray
    hard_preds: np.ndarray | None = None
    entropy: np.ndarray | None = None
    easy: np.ndarray | None = None

    @property
    def n_samples(self) -> int:
        return int(self.easy_preds.shape[0])

    @property
    def routed(self) -> bool:
        """Whether this table carries a gate statistic (dynamic backend)."""
        return self.entropy is not None

    @classmethod
    def build(cls, backend: InferenceBackend, images: np.ndarray) -> "InferenceTable":
        """One batched pass over ``images`` through ``backend``.

        Generic over any :class:`~repro.serving.backends.InferenceBackend`:
        the easy column replays an all-easy routing decision, the hard
        column an all-hard one — the same trick ``warmup`` uses to trace
        both sides of the gate.  The routing pass itself is memoized per
        (gate model, threshold, image pool), so backends sharing one
        entropy gate (e.g. BranchyNet and the hybrid) pay it once.
        """
        images = np.asarray(images)
        decision = _route_cached(backend, images)
        if decision is None:
            return cls(easy_preds=np.asarray(backend.predict(images)))
        n = images.shape[0]
        all_easy = RouteDecision(
            easy=np.ones(n, dtype=bool),
            entropy=decision.entropy,
            predictions=decision.predictions,
        )
        all_hard = RouteDecision(
            easy=np.zeros(n, dtype=bool),
            entropy=decision.entropy,
            predictions=decision.predictions,
        )
        return cls(
            easy_preds=np.asarray(backend.predict(images, all_easy)),
            hard_preds=np.asarray(backend.predict(images, all_hard)),
            entropy=decision.entropy,
            easy=decision.easy,
        )


class OracleBackend(InferenceBackend):
    """A backend that answers from an :class:`InferenceTable`.

    Timing (and therefore every virtual-clock quantity) is delegated to
    the wrapped backend's calibrated :class:`BatchTiming`; only the
    model work is replaced by table lookups.  The engine-facing contract
    changes in exactly one way: ``route``/``predict`` receive **sample
    ids** (integers indexing the table's image pool) instead of pixel
    arrays, so the request stream must be built from ids — see
    :func:`oracle_backend`.
    """

    oracle = True

    def __init__(self, base: InferenceBackend, table: InferenceTable) -> None:
        super().__init__(base.timing, base.router)
        self.base = base
        self.table = table
        self.name = base.name
        self.in_shape = base.in_shape

    def warmup(
        self, batch_size: int = 256, sample_shape: tuple[int, ...] | None = None
    ) -> None:
        """No-op: the table *is* the warmed state."""

    def route(self, ids: np.ndarray) -> RouteDecision | None:
        """Table lookup of the wrapped backend's routing decision."""
        if not self.table.routed:
            return None
        ids = np.asarray(ids)
        return RouteDecision(
            easy=self.table.easy[ids],
            entropy=self.table.entropy[ids],
            predictions=self.table.easy_preds[ids],
        )

    def predict(
        self, ids: np.ndarray, decision: RouteDecision | None = None
    ) -> np.ndarray:
        """Per-sample predictions honouring the batch's routing decision.

        A modified ``decision`` (e.g. admission control forcing degraded
        requests onto the easy path) selects between the easy and hard
        columns exactly as the live backend would.  When the process-
        global phase profiler is active (``REPRO_PROF=1``) each lookup
        is attributed to an ``oracle_lookup`` phase, separating table
        time from live-model time in bench attributions.
        """
        prof = current_profiler()
        if prof is not None:
            prof.start("oracle_lookup")
        ids = np.asarray(ids)
        if not self.table.routed:
            preds = self.table.easy_preds[ids]
        else:
            easy = self.table.easy[ids] if decision is None else decision.easy
            preds = self.table.easy_preds[ids].copy()
            hard = ~easy
            if hard.any():
                preds[hard] = self.table.hard_preds[ids[hard]]
        if prof is not None:
            prof.stop()  # oracle_lookup
        return preds


def _anchor_models(backend: InferenceBackend) -> tuple[Module, ...]:
    """The Module objects whose weights determine this backend's outputs.

    Descends one level into plain composite wrappers (e.g. a
    :class:`~repro.core.cbnet.CBNet` holding its autoencoder and
    classifier Modules), so two backends around differently-trained
    pipelines never share a memo key.
    """
    anchors: list[Module] = []
    for value in vars(backend).values():
        if isinstance(value, Module):
            anchors.append(value)
        elif hasattr(value, "__dict__"):
            anchors.extend(
                v for v in vars(value).values() if isinstance(v, Module)
            )
    return tuple(anchors)


# Memoized tables: key -> (images, models, table).  The images/models
# objects are kept as identity anchors (and strong references, so a
# recycled id() can never alias a dead key).
_TABLE_CACHE: dict[tuple, tuple] = {}
_OFFLOAD_CACHE: dict[tuple, tuple] = {}
_GATE_CACHE: dict[tuple, tuple] = {}


def clear_oracle_cache() -> None:
    """Drop every memoized oracle table (tests / memory pressure)."""
    _TABLE_CACHE.clear()
    _OFFLOAD_CACHE.clear()
    _GATE_CACHE.clear()


def _route_cached(backend: InferenceBackend, images: np.ndarray):
    """``backend.route(images)``, memoized per (gate model, threshold, pool).

    Only the standard :class:`~repro.serving.router.EntropyRouter` shape
    (a ``branchynet`` model + threshold) is cached; custom routers fall
    through to a direct call.
    """
    router = backend.router
    model = getattr(router, "branchynet", None)
    if router is None or model is None:
        return backend.route(images)
    key = (id(model), float(router.threshold), id(images))
    entry = _GATE_CACHE.get(key)
    if entry is None or entry[0] is not model or entry[1] is not images:
        entry = (model, images, backend.route(images))
        _GATE_CACHE[key] = entry
    return entry[2]


def oracle_backend(backend: InferenceBackend, images: np.ndarray) -> OracleBackend:
    """Wrap ``backend`` with a (memoized) table over the unique ``images``.

    The table depends only on the backend's models, its router threshold,
    and the image pool — *not* on the device calibration — so a
    heterogeneous fleet of Pi/CPU/GPU backends around one model shares a
    single precomputation, as does every run of an experiment grid.
    """
    if isinstance(backend, OracleBackend):
        return backend
    models = _anchor_models(backend)
    threshold = float(backend.router.threshold) if backend.router is not None else None
    if not models:
        # No Module anchors means the memo key cannot see the backend's
        # predictive state (e.g. raw-ndarray toy backends): build a fresh
        # table rather than risk serving another instance's predictions.
        return OracleBackend(backend, InferenceTable.build(backend, images))
    key = (
        type(backend).__qualname__,
        backend.name,
        threshold,
        tuple(id(m) for m in models),
        id(images),
    )
    entry = _TABLE_CACHE.get(key)
    if (
        entry is None
        or entry[0] is not images
        or any(a is not b for a, b in zip(entry[1], models))
    ):
        entry = (images, models, InferenceTable.build(backend, images))
        _TABLE_CACHE[key] = entry
    return OracleBackend(backend, entry[2])


class OffloadOracle:
    """Precomputed per-sample outputs for the edge–cloud offload tier.

    The :class:`~repro.offload.engine.EdgeTier` needs four things per
    unique sample: the branch-gate statistic (entropy + branch-exit
    prediction), the local trunk prediction for hard samples kept on the
    edge, and — per (payload kind, wire codec) — the prediction a cloud
    replica produces from the *decoded* payload, so quantized-transfer
    error still reaches the served accuracy.  All are computed once here
    and shared across every policy/codec run of a study.
    """

    def __init__(self, branchynet, images: np.ndarray) -> None:
        from repro.hw.flops import stage_cost

        self.branchynet = branchynet
        self.images = np.ascontiguousarray(images, dtype=np.float32)
        self.entropy, self.branch_preds = branchynet.branch_gate(self.images)
        self.trunk_preds = branchynet.infer(self.images, threshold=-1.0).predictions
        self.input_elems = int(np.prod(self.images.shape[1:]))
        self.stem_elems = int(
            np.prod(stage_cost("stem", branchynet.stem, self.images.shape[1:]).out_shape)
        )
        self._stem: np.ndarray | None = None
        self._decoded: dict[tuple[str, str], np.ndarray] = {}
        self._cloud_tables: dict[tuple[str, str, str], InferenceTable] = {}

    @property
    def n_samples(self) -> int:
        return int(self.images.shape[0])

    def stem_features(self) -> np.ndarray:
        """Shared-stem activations of every unique sample (lazy, cached)."""
        if self._stem is None:
            self._stem = self.branchynet.stem_features(self.images)
        return self._stem

    def boundary_elems(self, payload: str) -> int:
        """Elements of one shipped tensor for a payload kind."""
        return self.stem_elems if payload == "split" else self.input_elems

    def decoded_payloads(self, payload: str, codec) -> np.ndarray:
        """What the cloud sees after the encode/decode wire trip.

        Mirrors the live engine: dtype codecs round-trip the whole batch
        at once, the per-payload quantizers (affine / k-means) pay a
        per-tensor loop because their scale or codebook is per payload.
        """
        key = (payload, codec.dtype)
        if key not in self._decoded:
            raw = self.stem_features() if payload == "split" else self.images
            if codec.dtype in ("float32", "float16"):
                decoded = codec.decode(raw)
            else:
                decoded = np.stack([codec.decode(t) for t in raw])
            self._decoded[key] = decoded
        return self._decoded[key]

    def cloud_table(self, backend: InferenceBackend, payload: str, codec) -> InferenceTable:
        """Memoized table of ``backend`` over the decoded payloads."""
        key = (payload, codec.dtype, type(backend).__qualname__)
        if key not in self._cloud_tables:
            self._cloud_tables[key] = InferenceTable.build(
                backend, self.decoded_payloads(payload, codec)
            )
        return self._cloud_tables[key]


def offload_oracle(branchynet, images: np.ndarray) -> OffloadOracle:
    """Memoized :class:`OffloadOracle` per (model, image pool) pair."""
    key = (id(branchynet), id(images))
    entry = _OFFLOAD_CACHE.get(key)
    if entry is None or entry[0] is not branchynet or entry[1] is not images:
        entry = (branchynet, images, OffloadOracle(branchynet, images))
        _OFFLOAD_CACHE[key] = entry
    return entry[2]
