"""Structure-of-arrays request bookkeeping for the simulation engines.

The serving, cluster, and offload engines replay traces of up to millions
of requests; keeping one Python object per request (the original
:class:`~repro.serving.request.Request` list) makes the hot loop pay an
attribute write per field per request and the report pay a Python loop
per column.  :class:`RequestLog` stores the same per-request record as
parallel NumPy arrays instead: the event loop writes batch outcomes with
one fancy-indexed assignment, and every report column is a vectorized
reduction.

Route outcomes are stored as small-int codes (:data:`ROUTE_CODES`);
:meth:`RequestLog.to_requests` materializes the familiar
:class:`~repro.serving.request.Request` objects for callers that want
the object view (``serve_detailed``), so the SoA refactor is invisible
at the public API.
"""

from __future__ import annotations

import numpy as np

from repro.serving.request import Request, Route

__all__ = [
    "ROUTE_BATCHED",
    "ROUTE_CACHED",
    "ROUTE_EASY",
    "ROUTE_HARD",
    "ROUTE_SHED",
    "ROUTE_CODES",
    "RequestLog",
]

#: Integer codes for :class:`~repro.serving.request.Route` strings, in
#: ``Route.ALL`` order.  ``BATCHED`` is 0 so a zero-initialized route
#: column matches the ``Request`` dataclass default.
ROUTE_BATCHED, ROUTE_CACHED, ROUTE_EASY, ROUTE_HARD, ROUTE_SHED = range(5)
ROUTE_CODES: dict[str, int] = {name: code for code, name in enumerate(Route.ALL)}
_ROUTE_STRS: tuple[str, ...] = Route.ALL


class RequestLog:
    """Per-request outcome arrays for one replayed trace.

    One row per request, columns mirroring
    :class:`~repro.serving.request.Request`: arrival/completion times,
    prediction, route code, batch size, cache source, replica, degrade
    flag, and retry count.  Engines mutate the arrays in place while the
    virtual clock advances; reports reduce them without leaving NumPy.
    """

    __slots__ = (
        "arrival_s",
        "completion_s",
        "dispatch_s",
        "prediction",
        "route",
        "requested_route",
        "batch_size",
        "source_id",
        "replica_id",
        "degraded",
        "retries",
        "req_class",
        "timed_out",
        "hedged",
    )

    def __init__(self, arrival_s: np.ndarray) -> None:
        n = arrival_s.shape[0]
        self.arrival_s = np.asarray(arrival_s, dtype=np.float64)
        self.completion_s = np.full(n, np.nan)
        self.dispatch_s = np.full(n, np.nan)
        self.prediction = np.full(n, -1, dtype=np.int64)
        self.route = np.zeros(n, dtype=np.int8)  # ROUTE_BATCHED
        self.requested_route = np.zeros(n, dtype=np.int8)  # pre-degrade decision
        self.batch_size = np.zeros(n, dtype=np.int32)
        self.source_id = np.full(n, -1, dtype=np.int64)
        self.replica_id = np.full(n, -1, dtype=np.int32)
        self.degraded = np.zeros(n, dtype=bool)
        self.retries = np.zeros(n, dtype=np.int32)
        self.req_class = np.zeros(n, dtype=np.int8)
        self.timed_out = np.zeros(n, dtype=np.int32)
        self.hedged = np.zeros(n, dtype=bool)

    def __len__(self) -> int:
        return self.arrival_s.shape[0]

    @property
    def sojourn_s(self) -> np.ndarray:
        """Per-request time in system (NaN where never completed)."""
        return self.completion_s - self.arrival_s

    @property
    def done(self) -> np.ndarray:
        """Boolean mask of requests that completed."""
        return np.isfinite(self.completion_s)

    def route_count(self, code: int) -> int:
        """How many requests ended with the given route code."""
        return int((self.route == code).sum())

    def fill_cached_predictions(self) -> None:
        """Copy each cache hit's prediction from its source request.

        Sources are always dispatched (non-cached) requests, so one
        vectorized gather resolves every hit.
        """
        cached = np.flatnonzero(self.route == ROUTE_CACHED)
        if cached.size:
            self.prediction[cached] = self.prediction[self.source_id[cached]]

    @classmethod
    def from_requests(cls, requests: list[Request]) -> "RequestLog":
        """Rebuild the SoA view from an object view (:meth:`to_requests` inverse).

        Requests must be in row order (``req_id == index``), which is
        how every engine emits them; the round trip
        ``log.to_requests()`` → ``from_requests`` → columns is exact for
        all columns, including the resilience ones.
        """
        log = cls(np.array([r.arrival_s for r in requests], dtype=np.float64))
        for i, r in enumerate(requests):
            if r.req_id != i:
                raise ValueError(
                    f"requests must be in row order: position {i} has req_id {r.req_id}"
                )
        log.completion_s[:] = [r.completion_s for r in requests]
        log.dispatch_s[:] = [r.dispatch_s for r in requests]
        log.prediction[:] = [r.prediction for r in requests]
        log.route[:] = [ROUTE_CODES[r.route] for r in requests]
        log.requested_route[:] = [ROUTE_CODES[r.requested_route] for r in requests]
        log.batch_size[:] = [r.batch_size for r in requests]
        log.source_id[:] = [r.source_id for r in requests]
        log.replica_id[:] = [r.replica_id for r in requests]
        log.degraded[:] = [r.degraded for r in requests]
        log.retries[:] = [r.retries for r in requests]
        log.req_class[:] = [r.req_class for r in requests]
        log.timed_out[:] = [r.timed_out for r in requests]
        log.hedged[:] = [r.hedged for r in requests]
        return log

    def to_requests(self) -> list[Request]:
        """Materialize the object view (one ``Request`` per row)."""
        routes = self.route.tolist()
        req_routes = self.requested_route.tolist()
        out = []
        for i, (arr, comp, disp, pred, batch, src, rep, deg, ret, cls, t_o, hed) in enumerate(
            zip(
                self.arrival_s.tolist(),
                self.completion_s.tolist(),
                self.dispatch_s.tolist(),
                self.prediction.tolist(),
                self.batch_size.tolist(),
                self.source_id.tolist(),
                self.replica_id.tolist(),
                self.degraded.tolist(),
                self.retries.tolist(),
                self.req_class.tolist(),
                self.timed_out.tolist(),
                self.hedged.tolist(),
            )
        ):
            out.append(
                Request(
                    req_id=i,
                    arrival_s=arr,
                    completion_s=comp,
                    dispatch_s=disp,
                    prediction=pred,
                    route=_ROUTE_STRS[routes[i]],
                    requested_route=_ROUTE_STRS[req_routes[i]],
                    batch_size=batch,
                    source_id=src,
                    replica_id=rep,
                    degraded=deg,
                    retries=ret,
                    req_class=cls,
                    timed_out=t_o,
                    hedged=hed,
                )
            )
        return out
