"""Shared trace plumbing for the serving / cluster / offload engines.

The three virtual-clock engines used to repeat the same preamble —
validate the (images, arrivals) pair, hash every request's image for the
result cache — with per-engine copies drifting apart.  This module is
the single home for that structure; the oracle path
(:mod:`repro.sim.oracle`) plugs in here too, because in oracle mode the
"image" array carries integer sample ids and the cache can key on the
ids themselves instead of hashing pixels.
"""

from __future__ import annotations

import numpy as np

__all__ = ["validate_trace", "request_keys"]


def validate_trace(
    images: np.ndarray, arrival_s: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Check one request trace and return it as normalized arrays.

    ``images`` is the per-request payload array — pixel batches for the
    live engines, 1-D sample ids in oracle mode; ``arrival_s`` must be
    non-empty, non-decreasing, and aligned with it.
    """
    images = np.asarray(images)
    arrival_s = np.asarray(arrival_s, dtype=np.float64)
    if images.shape[0] != arrival_s.shape[0]:
        raise ValueError(
            f"{images.shape[0]} images vs {arrival_s.shape[0]} arrival times"
        )
    if arrival_s.size == 0:
        raise ValueError("cannot serve an empty request stream")
    if np.any(np.diff(arrival_s) < 0):
        raise ValueError("arrival times must be non-decreasing")
    return images, arrival_s


def request_keys(images: np.ndarray, oracle: bool) -> list:
    """Result-cache keys for one request stream.

    Live mode hashes each request's pixels (two requests carrying the
    same image hit regardless of identity); oracle mode uses the sample
    ids directly — same hit pattern, no hashing.
    """
    if oracle:
        return images.tolist()
    # Imported here (not at module top) so `import repro.sim` does not
    # recursively initialize the serving package that imports us back.
    from repro.serving.cache import image_key

    return [image_key(images[i]) for i in range(images.shape[0])]
