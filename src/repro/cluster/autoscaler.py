"""SLO-driven reactive autoscaling of the replica fleet.

The autoscaler runs on a fixed control interval of the virtual clock and
reads two reactive signals:

* **queue pressure** — outstanding requests per live replica (a leading
  indicator: queues grow before sojourn percentiles do);
* **tail latency** — p95 sojourn of recently completed requests against
  the target SLO (the lagging indicator the fleet is actually judged
  on).

Either signal over its threshold scales **up** by provisioning a fresh
replica, which pays a configurable warm-up (measure a real one with
:func:`measured_warmup_s` — the wall-clock cost of the backend's
``warmup()`` fast-path trace) before it takes traffic.  Both signals
comfortably under threshold scale **down** by *draining* the
most-recently-added replica: it stops receiving, finishes its queue,
and only then stops accruing replica-seconds.  A cooldown between
actions prevents thrash, and ``min_replicas``/``max_replicas`` bound
the fleet.

Replica-seconds (including warm-up time) are the cost side of the
trade; the fleet report puts SLO attainment and replica-seconds side by
side so "as good at lower cost" is a readable claim.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable

from repro.serving.backends import InferenceBackend

__all__ = ["AutoscalerConfig", "Autoscaler", "measured_warmup_s"]


@dataclass(frozen=True)
class AutoscalerConfig:
    """Tuning knobs of the reactive autoscaler.

    Attributes
    ----------
    slo_s:
        Target p95 sojourn; recent p95 above this triggers a scale-up.
    interval_s:
        Control-loop period on the virtual clock.
    window_s:
        How far back the recent-completions percentile signal looks.
    scale_up_queue, scale_down_queue:
        Outstanding-requests-per-live-replica thresholds.
    min_replicas, max_replicas:
        Fleet size bounds (live = UP + WARMING + DRAINING-not-finished).
    warmup_s:
        Virtual provisioning cost of a fresh replica before it serves
        (see :func:`measured_warmup_s`).
    cooldown_s:
        Minimum spacing between consecutive scaling actions.
    signal_class:
        Multi-tenant fleets only: name of the request class whose
        recent p95 drives the latency signal (e.g. ``"interactive"``),
        scored against that class's own deadline instead of ``slo_s``.
        ``None`` keeps the class-blind fleet-wide signal.
    """

    slo_s: float
    interval_s: float = 0.25
    window_s: float = 1.0
    scale_up_queue: float = 8.0
    scale_down_queue: float = 2.0
    min_replicas: int = 1
    max_replicas: int = 8
    warmup_s: float = 0.25
    cooldown_s: float = 0.5
    signal_class: str | None = None

    def __post_init__(self) -> None:
        if self.slo_s <= 0:
            raise ValueError(f"slo_s must be positive, got {self.slo_s}")
        if self.interval_s <= 0 or self.window_s <= 0:
            raise ValueError("interval_s and window_s must be positive")
        if not 1 <= self.min_replicas <= self.max_replicas:
            raise ValueError(
                f"need 1 <= min_replicas <= max_replicas, got "
                f"{self.min_replicas}..{self.max_replicas}"
            )
        if self.scale_down_queue >= self.scale_up_queue:
            raise ValueError("scale_down_queue must be below scale_up_queue")
        if self.warmup_s < 0 or self.cooldown_s < 0:
            raise ValueError("warmup_s and cooldown_s must be non-negative")


class Autoscaler:
    """Reactive controller: watch signals each tick, spawn or drain.

    Parameters
    ----------
    config:
        The :class:`AutoscalerConfig` thresholds.
    spawn_backend:
        Zero-argument factory producing the backend for each newly
        provisioned replica (the scaling *unit* — e.g. "one more
        GCI-CPU CBNet server").
    """

    def __init__(
        self, config: AutoscalerConfig, spawn_backend: Callable[[], InferenceBackend]
    ) -> None:
        self.config = config
        self.spawn_backend = spawn_backend
        self.last_action_s = -float("inf")
        self.n_scale_ups = 0
        self.n_scale_downs = 0

    def tick(self, cluster, now: float) -> str | None:
        """Run one control-loop step against ``cluster`` at time ``now``.

        Returns ``"up"``, ``"down"``, or ``None`` (no action), after
        performing the action through the cluster's ``spawn_replica`` /
        ``drain_replica`` hooks.
        """
        cfg = self.config
        live = cluster.live_replicas()
        n_live = len(live)
        if n_live == 0:
            return None  # a full outage is the failure injector's business
        # Cluster-wide outstanding (including requests stranded by
        # crashes) — stranded work must register as pressure, or an
        # outage could look idle.
        queue_per = cluster.outstanding_total(now) / n_live
        slo_s = cfg.slo_s
        cls = None
        if cfg.signal_class is not None and cluster.classes is not None:
            # Per-class signal: watch one tenant class's tail against
            # its own deadline (the fleet scales for its tightest SLO).
            cls = cluster.classes.code(cfg.signal_class)
            slo_s = cluster.classes[cls].deadline_s
        p95 = cluster.recent_p95(now, cfg.window_s, cls=cls)
        if now - self.last_action_s < cfg.cooldown_s:
            return None

        overloaded = queue_per > cfg.scale_up_queue or (
            p95 is not None and p95 > slo_s
        )
        if overloaded and n_live < cfg.max_replicas:
            cluster.spawn_replica(self.spawn_backend(), now, cfg.warmup_s)
            self.last_action_s = now
            self.n_scale_ups += 1
            return "up"

        relaxed = queue_per < cfg.scale_down_queue and (
            p95 is None or p95 < 0.5 * slo_s
        )
        if relaxed and n_live > cfg.min_replicas:
            # Never drain the last UP replica: WARMING/DRAINING peers
            # count toward n_live but cannot take traffic, and a fleet
            # with zero receivers strands every arrival.
            ups = [r for r in live if r.available]
            if len(ups) > 1:
                victim = max(ups, key=lambda r: r.replica_id)
                cluster.drain_replica(victim, now)
                self.last_action_s = now
                self.n_scale_downs += 1
                return "down"
        return None


def measured_warmup_s(
    backend_factory: Callable[[], InferenceBackend],
    batch_size: int = 16,
    sample_shape: tuple[int, ...] | None = None,
) -> float:
    """Wall-clock cost of a cold backend's ``warmup()`` trace, in seconds.

    Builds a fresh backend (warm-up is memoized per instance, so a cold
    one is required) and times its fast-path plan compilation — the
    realistic provisioning cost to feed ``AutoscalerConfig.warmup_s``
    when the simulated fleet should pay what this machine actually pays.
    """
    backend = backend_factory()
    t0 = time.perf_counter()
    backend.warmup(batch_size, sample_shape=sample_shape)
    return time.perf_counter() - t0
