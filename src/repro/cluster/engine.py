"""The fleet engine: balancer → replicas → autoscaler/failures → report.

:class:`Cluster` lifts :mod:`repro.serving` from one node to a fleet.
It replays an arrival trace on a single virtual clock shared by every
replica:

1. an arriving request is checked against the cluster-wide LRU result
   cache (results become visible at their batch's *completion* time,
   exactly as in the single-node engine);
2. the :class:`~repro.cluster.admission.AdmissionController` may shed it
   (reject outright, or degrade it onto the early-exit path);
3. the :class:`~repro.cluster.policies.LoadBalancer` picks an UP replica
   and the request joins that replica's micro-batcher; batches dispatch
   to the replica's worker with the backend's calibrated service time;
4. between arrivals, the virtual clock services deadline flushes,
   :class:`~repro.cluster.autoscaler.Autoscaler` control ticks, and
   injected :class:`~repro.cluster.failures.FailureEvent` crashes —
   a crash cancels the replica's queued and in-flight work and
   re-dispatches it through the balancer (counted as retries).

Once the timeline is fixed, every surviving batch runs through its
replica's backend — real model inference, or precomputed-table lookups
when the fleet is built from :class:`repro.sim.OracleBackend` wrappers —
so the :class:`ClusterReport` carries genuine served accuracy next to
the latency, shedding, availability, and replica-seconds columns.

Per-request bookkeeping is the structure-of-arrays
:class:`~repro.sim.records.RequestLog`; arrivals are consumed from a
sorted cursor merged against the event heap, so a million-request trace
costs a million cheap loop iterations, not a million heap pushes.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass, field

import numpy as np

from repro.cluster.admission import ACCEPT, DEGRADE, REJECT, AdmissionController
from repro.cluster.autoscaler import Autoscaler
from repro.cluster.failures import CRASH, FailureEvent
from repro.cluster.policies import LoadBalancer, ResilientBalancer, make_policy
from repro.cluster.replica import InFlightBatch, Replica, ReplicaState
from repro.eval.metrics import latency_percentiles
from repro.faults.degrade import MODE_DEGRADE, MODE_SHED, DegradationController
from repro.faults.plan import FLAKY, SLOWDOWN, FaultPlan
from repro.faults.resilience import ResilienceConfig
from repro.obs.prof import current_profiler
from repro.obs.spans import (
    EV_BATCH_FAIL,
    EV_BREAKER_TRIP,
    EV_CRASH as _OBS_CRASH,
    EV_FAULT as _OBS_FAULT,
    EV_HEDGE as _OBS_HEDGE,
    EV_RECOVER as _OBS_RECOVER,
    EV_RETRY as _OBS_RETRY,
    EV_SCALE as _OBS_SCALE,
    EV_TIMEOUT as _OBS_TIMEOUT,
)
from repro.eval.tables import Table
from repro.serving.backends import InferenceBackend
from repro.serving.cache import LRUResultCache
from repro.serving.classes import (
    DEFAULT_CLASSES,
    ClassReport,
    ClassSet,
    per_class_reports,
)
from repro.serving.request import Request
from repro.serving.router import RouteDecision
from repro.sim.core import request_keys, validate_trace
from repro.sim.records import (
    ROUTE_BATCHED,
    ROUTE_CACHED,
    ROUTE_EASY,
    ROUTE_HARD,
    ROUTE_SHED,
    RequestLog,
)
from repro.utils.logging import get_logger
from repro.utils.rng import as_generator

__all__ = ["Cluster", "ClusterReport", "fleet_comparison_table"]

logger = get_logger("cluster.engine")

# Event kinds, in tie-breaking order at equal timestamps: a replica that
# finishes warming at t may serve the arrival at t; crashes hit before
# the work that would have ridden the doomed replica; fault-state
# changes land next, then resilience timers (a timeout at t cancels
# before the retry/hedge it scheduled for the same instant dispatches).
# Arrivals are not heap events (they stream from a sorted cursor) but
# keep the largest kind so heap events at an equal timestamp win the
# tie, as before.
(
    _EV_UP,
    _EV_CRASH,
    _EV_RECOVER,
    _EV_FAULT,
    _EV_TIMEOUT,
    _EV_RETRY,
    _EV_HEDGE,
    _EV_TICK,
    _EV_ARRIVAL,
) = range(9)


@dataclass(frozen=True)
class ClusterReport:
    """Everything one fleet run produced, ready for tables and asserts."""

    policy: str
    scenario: str
    n_requests: int
    n_served: int
    n_shed: int
    n_unserved: int
    n_degraded: int
    n_retried: int
    n_cached: int
    n_replicas_start: int
    peak_replicas: int
    n_replicas_end: int
    duration_s: float
    throughput_rps: float
    arrival_rate_hz: float
    mean_s: float
    p50_s: float
    p95_s: float
    p99_s: float
    max_s: float
    mean_batch_size: float
    slo_s: float
    slo_attainment: float
    replica_seconds: float
    utilization: float
    cache_hit_rate: float
    n_crashes: int
    scale_ups: int
    scale_downs: int
    accuracy: float = float("nan")
    #: Per-request-class slices (empty for single-class runs).
    class_reports: tuple[ClassReport, ...] = ()
    #: Resilience columns (all zero without faults/resilience): requests
    #: with >= 1 timed-out attempt, requests hedged, batches whose
    #: response was a failure (flaky/unhealed partition), and breaker
    #: trips across the fleet.
    n_timed_out: int = 0
    n_hedged: int = 0
    n_batch_failures: int = 0
    n_breaker_trips: int = 0

    def summary(self) -> str:
        """One-line fleet digest (the cluster sibling of ServingReport.summary)."""
        return (
            f"[{self.policy}/{self.scenario}] {self.throughput_rps:.0f} req/s | "
            f"p99 {self.p99_s * 1e3:.2f} ms | SLO {self.slo_attainment:.1%} | "
            f"shed {self.shed_rate:.1%} | {self.replica_seconds:.1f} replica-s | "
            f"avail {self.availability:.1%}"
        )

    @property
    def shed_rate(self) -> float:
        """Fraction of requests rejected by admission control."""
        return self.n_shed / self.n_requests if self.n_requests else 0.0

    @property
    def availability(self) -> float:
        """Fraction of requests actually served (not shed, not stranded)."""
        return self.n_served / self.n_requests if self.n_requests else 0.0


def fleet_comparison_table(reports: list[ClusterReport], title: str = "") -> Table:
    """Render several fleet runs side by side (one row per run)."""
    table = Table(
        headers=[
            "policy",
            "req/s",
            "p50 (ms)",
            "p95 (ms)",
            "p99 (ms)",
            "SLO",
            "shed",
            "avail",
            "repl-s",
            "peak",
            "acc",
        ],
        title=title,
    )
    for r in reports:
        table.add_row(
            r.policy,
            f"{r.throughput_rps:.0f}",
            f"{r.p50_s * 1e3:.2f}",
            f"{r.p95_s * 1e3:.2f}",
            f"{r.p99_s * 1e3:.2f}",
            f"{r.slo_attainment:.1%}",
            f"{r.shed_rate:.1%}",
            f"{r.availability:.1%}",
            f"{r.replica_seconds:.1f}",
            str(r.peak_replicas),
            "-" if np.isnan(r.accuracy) else f"{r.accuracy:.1%}",
        )
    return table


@dataclass
class _Books:
    """Mutable per-serve state (kept off the Cluster so serve() is reentrant)."""

    log: RequestLog
    images: np.ndarray
    keys: list | None
    cache: LRUResultCache
    finished: list[tuple[Replica, InFlightBatch]] = field(default_factory=list)
    # (completion, req) pairs feeding the autoscaler's p95 window; only
    # recorded when an autoscaler is attached (a million-request trace
    # should not pay for a signal nobody reads).
    completions: list[tuple[float, int]] = field(default_factory=list)
    track_completions: bool = False
    stranded: list[int] = field(default_factory=list)
    visibility: list[tuple[float, int, object]] = field(default_factory=list)
    # Per-class outstanding bookkeeping for weighted-fair admission:
    # counts are settled lazily from a (completion_s, idx) heap, with a
    # per-request counted flag so a crash-cancelled completion whose
    # retry lands on the same timestamp cannot double-decrement.
    class_outstanding: np.ndarray | None = None
    class_events: list[tuple[float, int]] = field(default_factory=list)
    class_counted: np.ndarray | None = None
    # Resilience bookkeeping (allocated only with a ResilienceConfig):
    # attempt[i] is the request's current attempt token — bumped on
    # every cancel/win, so stale timers and late responses compare
    # unequal and drop; pending[i] counts copies of i sitting in
    # batchers; drop[i] counts queued copies cancelled before flush
    # (consumed one per flush, dropping the first occurrence).
    attempt: np.ndarray | None = None
    pending: np.ndarray | None = None
    drop: np.ndarray | None = None


class Cluster:
    """Fleet-level serving simulation over heterogeneous replicas.

    Parameters
    ----------
    backends:
        One :class:`~repro.serving.backends.InferenceBackend` per initial
        replica (heterogeneous fleets pass backends built from different
        :class:`~repro.hw.device.DeviceProfile` calibrations).  Mixing
        oracle-wrapped and live backends in one fleet is rejected — the
        request stream is either sample ids or pixels, not both.
    policy:
        A :class:`~repro.cluster.policies.LoadBalancer` instance or a
        policy name (see :data:`~repro.cluster.policies.POLICY_NAMES`).
    admission:
        Optional :class:`~repro.cluster.admission.AdmissionController`.
    autoscaler:
        Optional :class:`~repro.cluster.autoscaler.Autoscaler`; its
        control loop runs every ``config.interval_s`` virtual seconds.
    failures:
        :class:`~repro.cluster.failures.FailureEvent` sequence to inject.
    faults:
        Optional :class:`~repro.faults.FaultPlan` of typed injections
        (slowdowns, partitions, flaky windows, plus bundled
        crash/recover events) replayed on the virtual clock — seeded,
        so identical in oracle and live modes.
    resilience:
        Optional :class:`~repro.faults.ResilienceConfig`.  When set, the
        engine arms a per-attempt timeout (+ optional hedge) on every
        routed request, retries failed/timed-out attempts under the
        config's budget with jittered backoff, wraps the balancer in a
        :class:`~repro.cluster.policies.ResilientBalancer` (per-replica
        circuit breakers), and — if the config carries a degradation
        ladder — walks full → early-exit → shed under sustained breaker
        pressure.  ``None`` (default) preserves the naive engine
        bit-for-bit: faults still strike, nothing fights back.
    slo_s:
        Sojourn target used for the report's SLO-attainment column (and
        by the autoscaler's latency signal if one is attached).
    max_batch_size, max_wait_s:
        Micro-batcher triggers applied to every replica.
    cache_capacity, cache_lookup_s:
        Cluster-wide LRU result cache (``0`` disables).
    recover_warmup_s:
        Warm-up a *recovering* replica pays before taking traffic
        (freshly spawned replicas pay the autoscaler's configured cost).
    rng:
        Seed/generator for randomized policies (power-of-two-choices).
    classes:
        Optional :class:`~repro.serving.classes.ClassSet` enabling
        multi-tenant mode: every replica runs a worker-gated priority
        batcher, ``serve*`` requires per-request class codes, and the
        report carries per-class slices.
    scheduler:
        Multi-tenant flush discipline per replica: ``"priority"`` or
        ``"fifo"`` (the class-blind control arm).  Ignored without
        ``classes``.
    obs:
        Optional :class:`~repro.obs.observer.Observer`.  When set, every
        dispatched batch becomes a span, every crash/fault/timeout/
        retry/hedge/breaker-trip/scale event an instant span row, and
        the finished run is finalized into per-request spans, windowed
        metrics, and SLO burn rates.  Observers are single-use — like
        the cluster itself, one per trace.  ``None`` (default) records
        nothing; the hooks cost one ``is None`` test each.
    prof:
        Optional :class:`~repro.obs.prof.PhaseProfiler` attributing
        **wall-clock** time to engine phases (warmup, event_loop,
        ingest, batch_form, dispatch, complete, events, inference,
        report).  The ingest phase is scoped per burst of consecutive
        arrivals, not per arrival, so profiling stays inside the 1.15x
        overhead gate at a million requests.  ``None`` falls back to
        the process-global profiler (``REPRO_PROF=1``), else profiling
        is off and each scope costs one ``is None`` test.
    """

    def __init__(
        self,
        backends: list[InferenceBackend],
        policy: str | LoadBalancer = "power-of-two",
        admission: AdmissionController | None = None,
        autoscaler: Autoscaler | None = None,
        failures: tuple[FailureEvent, ...] = (),
        faults: FaultPlan | None = None,
        resilience: ResilienceConfig | None = None,
        slo_s: float = 0.05,
        max_batch_size: int = 16,
        max_wait_s: float = 0.004,
        cache_capacity: int = 0,
        cache_lookup_s: float = 2e-5,
        recover_warmup_s: float = 0.0,
        rng: np.random.Generator | int | None = 0,
        classes: ClassSet | None = None,
        scheduler: str = "priority",
        obs=None,
        prof=None,
    ) -> None:
        if not backends:
            raise ValueError("a cluster needs at least one replica backend")
        if slo_s <= 0:
            raise ValueError(f"slo_s must be positive, got {slo_s}")
        if recover_warmup_s < 0:
            raise ValueError(f"recover_warmup_s must be >= 0, got {recover_warmup_s}")
        if len({bool(b.oracle) for b in backends}) > 1:
            raise ValueError(
                "cannot mix oracle and live backends in one fleet: the request "
                "stream is either sample ids or raw images"
            )
        if faults is not None:
            failures = tuple(failures) + tuple(faults.failures)
            if faults.max_replica_id() >= len(backends):
                raise ValueError(
                    f"fault plan targets replica {faults.max_replica_id()}, "
                    f"but the initial fleet has only {len(backends)} replicas"
                )
        for event in failures:
            if event.replica_id >= len(backends):
                raise ValueError(
                    f"failure event targets replica {event.replica_id}, "
                    f"but the initial fleet has only {len(backends)} replicas"
                )
        if scheduler not in ("priority", "fifo"):
            raise ValueError(f"unknown scheduler {scheduler!r}")
        if (
            classes is None
            and admission is not None
            and getattr(admission, "classes", None) is not None
        ):
            raise ValueError(
                "WeightedFairAdmission requires Cluster(classes=...) so the "
                "fleet and the admission controller grade the same classes"
            )
        self.policy = make_policy(policy) if isinstance(policy, str) else policy
        self.faults = faults
        self.resilience = resilience
        self._degrader: DegradationController | None = None
        if resilience is not None:
            # Breaker-driven ejection lives inside the balancer: wrap
            # whatever policy the caller picked (unless they already
            # passed a ResilientBalancer of their own).
            if not isinstance(self.policy, ResilientBalancer):
                self.policy = ResilientBalancer(self.policy, resilience.breaker)
            if resilience.degradation is not None:
                self._degrader = DegradationController(resilience.degradation)
        # Static per-replica blackhole windows: responses computed inside
        # one are withheld until it heals (the balancer keeps routing —
        # only timeouts can tell a partitioned replica from a slow one).
        self._partitions = faults.partition_intervals() if faults is not None else {}
        self._fault_rng = np.random.default_rng(faults.seed if faults is not None else 0)
        self._n_batch_failures = 0
        self.admission = admission
        self.autoscaler = autoscaler
        self.failures = tuple(sorted(failures))
        self.slo_s = float(slo_s)
        self.max_batch_size = int(max_batch_size)
        self.max_wait_s = float(max_wait_s)
        self.cache_capacity = int(cache_capacity)
        self.cache_lookup_s = float(cache_lookup_s)
        self.recover_warmup_s = float(recover_warmup_s)
        self.rng = as_generator(rng)
        self.classes = classes
        self.scheduler = scheduler
        self.obs = obs
        # Wall-clock phase attribution: an explicit profiler wins, else
        # the process-global one (REPRO_PROF=1), else disabled.
        self.prof = prof if prof is not None else current_profiler()
        self._last_trips = 0
        self.replicas = [
            Replica(i, b, max_batch_size, max_wait_s, classes=classes, scheduler=scheduler)
            for i, b in enumerate(backends)
        ]
        self.n_replicas_start = len(self.replicas)
        self.peak_replicas = len(self.replicas)
        self._books: _Books | None = None
        self._heap: list[tuple[float, int, int, object]] = []
        self._seq = 0
        self._served = False

    # ------------------------------------------------------------------ #
    # signals (shared with the autoscaler)
    # ------------------------------------------------------------------ #
    def live_replicas(self) -> list[Replica]:
        """Replicas currently accruing cost (UP, WARMING, or DRAINING)."""
        return [r for r in self.replicas if r.state != ReplicaState.DOWN]

    def up_replicas(self) -> list[Replica]:
        """Replicas the balancer may currently dispatch to."""
        return [r for r in self.replicas if r.available]

    def outstanding_total(self, now: float) -> int:
        """Cluster-wide admitted-but-incomplete requests (incl. stranded)."""
        books = self._books
        stranded = len(books.stranded) if books else 0
        return stranded + sum(r.outstanding(now) for r in self.replicas)

    def recent_p95(
        self, now: float, window_s: float, cls: int | None = None
    ) -> float | None:
        """p95 sojourn of completions in ``(now - window_s, now]``.

        This is the autoscaler's latency signal: the per-completion
        window is only recorded while an autoscaler is attached (a
        million-request trace should not pay for a signal nobody
        reads), so without one this returns ``None`` — as it does when
        the window is genuinely empty.  Completions cancelled by a
        later crash are skipped (the request's final record no longer
        matches the one logged at dispatch).  ``cls`` restricts the
        window to one request class — the autoscaler's per-class signal
        (:attr:`~repro.cluster.autoscaler.AutoscalerConfig.signal_class`).
        """
        books = self._books
        if books is None:
            return None
        arrival = books.log.arrival_s
        final = books.log.completion_s
        req_class = books.log.req_class
        sojourn = [
            t - arrival[idx]
            for t, idx in books.completions
            if now - window_s < t <= now
            and final[idx] == t
            and (cls is None or req_class[idx] == cls)
        ]
        if not sojourn:
            return None
        (p95,) = latency_percentiles(np.asarray(sojourn), (95.0,))
        return p95

    # ------------------------------------------------------------------ #
    # autoscaler hooks
    # ------------------------------------------------------------------ #
    def spawn_replica(
        self, backend: InferenceBackend, now: float, warmup_s: float
    ) -> Replica:
        """Provision a fresh replica; it takes traffic after ``warmup_s``."""
        if bool(backend.oracle) != bool(self.replicas[0].backend.oracle):
            raise ValueError(
                "cannot mix oracle and live backends in one fleet: the "
                "autoscaler's spawn_backend must match the initial replicas "
                "(wrap it with repro.sim.oracle_backend in oracle mode)"
            )
        replica = Replica(
            len(self.replicas),
            backend,
            self.max_batch_size,
            self.max_wait_s,
            state=ReplicaState.DOWN,
            classes=self.classes,
            scheduler=self.scheduler,
        )
        self.replicas.append(replica)
        replica.provision(now)
        self._push(now + warmup_s, _EV_UP, (replica.replica_id, replica.generation))
        self.peak_replicas = max(self.peak_replicas, len(self.live_replicas()))
        return replica

    def drain_replica(self, replica: Replica, now: float) -> None:
        """Stop routing to ``replica``; it finishes its queue, then goes DOWN."""
        replica.start_drain(now)

    # ------------------------------------------------------------------ #
    # serving loop
    # ------------------------------------------------------------------ #
    def serve(
        self,
        images: np.ndarray,
        arrival_s: np.ndarray,
        labels: np.ndarray | None = None,
        scenario: str = "trace",
        request_classes: np.ndarray | None = None,
    ) -> ClusterReport:
        """Replay one arrival trace across the fleet and report.

        Mirrors :meth:`repro.serving.Server.serve`: ``images[i]`` arrives
        at ``arrival_s[i]`` (non-decreasing), ``labels`` adds genuine
        served accuracy, ``request_classes`` (multi-tenant mode) gives
        each request its class code.  The report additionally carries
        fleet-only columns — shed rate, SLO attainment, replica-seconds,
        availability, retries.
        """
        report, _ = self.serve_log(images, arrival_s, labels, scenario, request_classes)
        return report

    def serve_detailed(
        self,
        images: np.ndarray,
        arrival_s: np.ndarray,
        labels: np.ndarray | None = None,
        scenario: str = "trace",
        request_classes: np.ndarray | None = None,
    ) -> tuple[ClusterReport, list[Request]]:
        """:meth:`serve`, additionally returning per-request records.

        Same contract as :meth:`repro.serving.Server.serve_detailed`:
        the request list lets a fronting tier (the edge side of
        :mod:`repro.offload`) continue each request's timeline after the
        fleet answered it.  Prefer :meth:`serve_log` when the array view
        suffices.
        """
        report, log = self.serve_log(images, arrival_s, labels, scenario, request_classes)
        return report, log.to_requests()

    def serve_log(
        self,
        images: np.ndarray,
        arrival_s: np.ndarray,
        labels: np.ndarray | None = None,
        scenario: str = "trace",
        request_classes: np.ndarray | None = None,
    ) -> tuple[ClusterReport, RequestLog]:
        """:meth:`serve`, additionally returning the SoA request log."""
        if self._served:
            raise RuntimeError(
                "a Cluster replays one trace (replica billing is per-run); "
                "build a fresh Cluster for the next trace"
            )
        self._served = True
        images, arrival_s = validate_trace(images, arrival_s)
        if self.classes is not None and request_classes is None:
            raise ValueError(
                "Cluster(classes=...) requires request_classes in serve*()"
            )
        if request_classes is not None and self.classes is None:
            # Convenience: codes without an explicit ClassSet use the
            # default interactive/standard/batch mix — replicas must be
            # rebuilt so their batchers are class-aware.
            self.classes = DEFAULT_CLASSES
            for r in self.replicas:
                r.classes = self.classes
                r.scheduler = self.scheduler
                r.__post_init__()
        codes = (
            self.classes.validate_codes(request_classes, arrival_s.shape[0])
            if request_classes is not None
            else None
        )
        oracle = self.replicas[0].backend.oracle

        prof = self.prof
        if prof is not None:
            prof.start("serve")
            prof.start("warmup")
        for replica in self.replicas:
            if not oracle:
                replica.backend.warmup(
                    min(self.max_batch_size, images.shape[0]),
                    sample_shape=images.shape[1:],
                )
            # The initial fleet starts its meter at trace start, so
            # replica-seconds are comparable across traces whatever
            # timestamp the trace happens to begin at.
            if replica.up_since_s == 0.0 and replica.up_seconds == 0.0:
                replica.up_since_s = float(arrival_s[0])
        if prof is not None:
            prof.stop()  # warmup

        keys = request_keys(images, oracle) if self.cache_capacity > 0 else None
        books = _Books(
            log=RequestLog(arrival_s),
            images=images,
            keys=keys,
            cache=LRUResultCache(self.cache_capacity),
            track_completions=self.autoscaler is not None,
        )
        if codes is not None:
            books.log.req_class[:] = codes
            if self.admission is not None:
                # Per-class outstanding counters feed weighted-fair
                # admission; settled lazily at each admission decision.
                books.class_outstanding = np.zeros(len(self.classes), dtype=np.int64)
                books.class_counted = np.zeros(len(books.log), dtype=bool)
        if self.resilience is not None:
            n_req = len(books.log)
            books.attempt = np.zeros(n_req, dtype=np.int64)
            books.pending = np.zeros(n_req, dtype=np.int32)
            books.drop = np.zeros(n_req, dtype=np.int32)
        self._books = books
        self._heap = []
        self._seq = 0
        for event in self.failures:
            kind = _EV_CRASH if event.kind == CRASH else _EV_RECOVER
            self._push(event.time_s, kind, event.replica_id)
        if self.faults is not None:
            # Plan order (already sorted with explicit tie ranks) becomes
            # heap insertion order, so same-timestamp faults replay
            # deterministically via the sequence number.
            for fault in self.faults.faults:
                self._push(fault.time_s, _EV_FAULT, fault)
        if self.autoscaler is not None:
            self._push(
                float(arrival_s[0]) + self.autoscaler.config.interval_s, _EV_TICK, None
            )

        # Arrivals stream from the sorted trace via a cursor merged
        # against the event heap: heap events win ties (every heap kind
        # sorts before _EV_ARRIVAL, matching the old all-in-heap order).
        arrivals = arrival_s.tolist()
        n = len(arrivals)
        heap = self._heap
        cursor = 0
        # The ingest phase is scoped per *burst* — a run of consecutive
        # arrivals uninterrupted by heap events — not per arrival: at a
        # million requests, per-arrival scope pairs would cost more than
        # every other phase combined (~370 ns each), while bursts keep
        # the pair count near the heap-event count.  Counts are bursts;
        # the burst boundaries are virtual-time-ordered, so the tree
        # stays deterministic.
        ingesting = False
        if prof is not None:
            prof.start("event_loop")
        while cursor < n or heap:
            next_arrival = arrivals[cursor] if cursor < n else math.inf
            if heap and heap[0][0] <= next_arrival:
                if ingesting:
                    prof.stop()  # ingest: the burst ends at a heap event
                    ingesting = False
                self._flush_deadlines_until(heap[0][0])
                now, kind, _, payload = heapq.heappop(heap)
                self._advance(now)
                if prof is not None:
                    prof.start("events")
                if kind == _EV_UP:
                    self._handle_up(payload, now)
                elif kind == _EV_CRASH:
                    self._handle_crash(payload, now)
                elif kind == _EV_RECOVER:
                    self._handle_recover(payload, now)
                elif kind == _EV_FAULT:
                    self._handle_fault(payload)
                elif kind == _EV_TIMEOUT:
                    self._handle_timeout(payload, now)
                elif kind == _EV_RETRY:
                    self._handle_retry(payload, now)
                elif kind == _EV_HEDGE:
                    self._handle_hedge(payload, now)
                elif kind == _EV_TICK:
                    self._handle_tick(now, arrivals_left=n - cursor)
                if prof is not None:
                    prof.stop()  # events
            else:
                if prof is not None and not ingesting:
                    prof.start("ingest")
                    ingesting = True
                self._flush_deadlines_until(next_arrival)
                self._advance(next_arrival)
                self._handle_arrival(cursor, next_arrival)
                cursor += 1
        if ingesting:
            prof.stop()  # ingest
        self._flush_deadlines_until(math.inf)
        self._advance(math.inf)
        if prof is not None:
            prof.stop()  # event_loop
            prof.start("inference")

        self._fill_predictions(books)
        if prof is not None:
            prof.stop()  # inference
            prof.start("report")
        report = self._report(books, arrival_s, labels, scenario)
        if self.obs is not None:
            self.obs.finalize(books.log, classes=self.classes, slo_s=self.slo_s)
        if prof is not None:
            prof.stop()  # report
            prof.stop()  # serve
        return report, books.log

    # ------------------------------------------------------------------ #
    # event plumbing
    # ------------------------------------------------------------------ #
    def _push(self, time_s: float, kind: int, payload) -> None:
        heapq.heappush(self._heap, (time_s, kind, self._seq, payload))
        self._seq += 1

    def _advance(self, now: float) -> None:
        """Purge completed batches on every replica up to ``now``.

        With faults/resilience in play, purge is also where responses
        are *judged*: a failed batch loses its requests (naive) or
        schedules their retries (resilient); a successful batch wins
        only for requests whose attempt token still matches — late
        responses of cancelled attempts are dropped here, which is the
        "no response after cancellation" invariant.
        """
        books = self._books
        finished = books.finished
        plain = self.resilience is None and self.faults is None
        for replica in self.replicas:
            done = replica.purge(now)
            if not done:
                continue
            prof = self.prof
            if prof is not None:
                prof.start("complete")
            if plain:
                for batch in done:
                    finished.append((replica, batch))
            else:
                for batch in done:
                    if batch.failed:
                        self._n_batch_failures += 1
                        self._judge_failure(replica, batch, now)
                    elif self.resilience is not None:
                        self._judge_success(replica, batch)
                        finished.append((replica, batch))
                    else:
                        finished.append((replica, batch))
            if prof is not None:
                prof.stop()  # complete

    def _flush_deadlines_until(self, limit_s: float) -> None:
        """Service every batcher deadline that fires before ``limit_s``."""
        while True:
            best = None
            best_deadline = math.inf
            for replica in self.replicas:
                deadline = replica.next_deadline_s()
                if deadline < best_deadline:
                    best = replica
                    best_deadline = deadline
            if best is None or best_deadline > limit_s:
                return
            prof = self.prof
            if prof is not None:
                prof.start("batch_form")
            self._advance(best_deadline)
            self._dispatch(best, best.batcher.flush(), best_deadline)
            if prof is not None:
                prof.stop()  # batch_form

    # ------------------------------------------------------------------ #
    # event handlers
    # ------------------------------------------------------------------ #
    def _settle_class_events(self, now: float) -> None:
        """Fold completions up to ``now`` into the per-class counters.

        A heap entry only counts if the request's *final* completion
        still matches the entry (a crash since dispatch reset it) and it
        has not been counted before (a retry that happens to land on the
        cancelled batch's exact timestamp must not double-decrement).
        """
        books = self._books
        events = books.class_events
        completion = books.log.completion_s
        req_class = books.log.req_class
        counted = books.class_counted
        while events and events[0][0] <= now:
            t, idx = heapq.heappop(events)
            if completion[idx] == t and not counted[idx]:
                books.class_outstanding[req_class[idx]] -= 1
                counted[idx] = True

    def _handle_arrival(self, i: int, now: float) -> None:
        books = self._books
        log = books.log
        if books.keys is not None:
            visibility = books.visibility
            completion = log.completion_s
            while visibility and visibility[0][0] <= now:
                t, src, key = heapq.heappop(visibility)
                if completion[src] == t:  # not crash-cancelled
                    books.cache.put(key, src)
            hit = books.cache.get(books.keys[i])
            if hit is not None:
                log.route[i] = ROUTE_CACHED
                log.requested_route[i] = ROUTE_CACHED
                log.source_id[i] = int(hit)
                log.dispatch_s[i] = now  # answered on arrival — never queued
                done = now + self.cache_lookup_s
                completion[i] = done
                if books.track_completions:
                    books.completions.append((done, i))
                return
        if self._degrader is not None:
            live = [r.replica_id for r in self.replicas if r.state != ReplicaState.DOWN]
            mode = self._degrader.update(now, self.policy.open_fraction(live))
            if mode == MODE_SHED:
                log.route[i] = ROUTE_SHED
                log.requested_route[i] = ROUTE_SHED
                if self.obs is not None:
                    self.obs.on_shed(now)
                return
            if mode == MODE_DEGRADE:
                log.degraded[i] = True
        if self.admission is not None:
            cls = int(log.req_class[i])
            if books.class_outstanding is not None:
                self._settle_class_events(now)
            verdict = self.admission.decide_for(
                self.outstanding_total(now), cls, books.class_outstanding
            )
            if verdict == REJECT:
                log.route[i] = ROUTE_SHED
                log.requested_route[i] = ROUTE_SHED
                if self.obs is not None:
                    self.obs.on_shed(now)
                return
            if verdict == DEGRADE:
                log.degraded[i] = True
            else:
                assert verdict == ACCEPT
            if books.class_outstanding is not None:
                books.class_outstanding[cls] += 1
        self._route(i, now)

    def _handle_up(self, payload: tuple[int, int], now: float) -> None:
        replica_id, generation = payload
        replica = self.replicas[replica_id]
        if replica.generation != generation:
            return  # stale: the replica crashed and was re-provisioned since
        replica.mark_up(now)
        if replica.available:
            self.peak_replicas = max(self.peak_replicas, len(self.live_replicas()))
            stranded, self._books.stranded = self._books.stranded, []
            for idx in stranded:
                self._route(idx, now)

    def _handle_crash(self, replica_id: int, now: float) -> None:
        replica = self.replicas[replica_id]
        if replica.state == ReplicaState.DOWN:
            return
        if self.obs is not None:
            self.obs.on_event(_OBS_CRASH, now, replica_id)
        books = self._books
        log = books.log
        if self.resilience is None:
            for idx in replica.crash(now):
                self._scrub(idx)
                log.retries[idx] += 1
                self._route(idx, now)
            return
        # Resilient fleet: the queue may hold copies already cancelled by
        # a timeout/win (consume their drop markers instead of
        # re-routing), and in-flight batches carry attempt tokens —
        # stale attempts were retried elsewhere and must not re-route
        # again here.
        lost: list[int] = []
        for i in replica.batcher.drain() if replica.batcher else []:
            books.pending[i] -= 1
            if books.drop[i] > 0:
                books.drop[i] -= 1
                continue
            lost.append(i)
        for batch in replica.in_flight:
            for pos, i in enumerate(batch.indices):
                if books.attempt[i] == batch.tokens[pos]:
                    lost.append(i)
        replica.crash(now)
        seen: set[int] = set()
        for i in lost:
            if i in seen:
                continue
            seen.add(i)
            # Crash cancels every attempt of the request (a hedge twin
            # elsewhere dies with it) and re-routes instantly, matching
            # the naive engine's crash semantics.
            books.attempt[i] += 1
            if books.pending[i]:
                books.drop[i] += books.pending[i]
                books.pending[i] = 0
            self._scrub(i)
            log.retries[i] += 1
            self._route(i, now)

    def _handle_recover(self, replica_id: int, now: float) -> None:
        replica = self.replicas[replica_id]
        if replica.state != ReplicaState.DOWN:
            return
        if self.obs is not None:
            self.obs.on_event(_OBS_RECOVER, now, replica_id)
        replica.provision(now)
        self._push(now + self.recover_warmup_s, _EV_UP, (replica_id, replica.generation))

    def _handle_tick(self, now: float, arrivals_left: int = 0) -> None:
        books = self._books
        decision = self.autoscaler.tick(self, now)
        if decision is not None:
            logger.debug(
                "autoscaler decided %r at t=%.6fs (%d live replicas)",
                decision, now, len(self.live_replicas()),
            )
            if self.obs is not None:
                self.obs.on_event(_OBS_SCALE, now)
        settled = (
            not arrivals_left
            and not books.stranded
            and bool((books.log.done | (books.log.route == ROUTE_SHED)).all())
        )
        if settled:
            return
        # Reschedule only while progress is still possible: some other
        # event is pending, arrivals are still streaming from the trace
        # cursor, or a live replica can finish/receive work.  Otherwise
        # (e.g. every replica crashed with no recovery scheduled) the
        # loop must drain so stranded requests end the trace as unserved
        # instead of ticking forever.
        others_pending = any(kind != _EV_TICK for _, kind, _, _ in self._heap)
        if others_pending or arrivals_left or self.live_replicas():
            self._push(now + self.autoscaler.config.interval_s, _EV_TICK, None)

    # ------------------------------------------------------------------ #
    # faults + resilience
    # ------------------------------------------------------------------ #
    def _scrub(self, i: int) -> None:
        """Reset a request's log record to the never-served state."""
        log = self._books.log
        log.completion_s[i] = float("nan")
        log.dispatch_s[i] = float("nan")
        log.route[i] = ROUTE_BATCHED
        log.requested_route[i] = ROUTE_BATCHED
        log.batch_size[i] = 0
        log.replica_id[i] = -1

    def _handle_fault(self, fault) -> None:
        """Apply one typed fault-state change to its replica."""
        if self.obs is not None:
            self.obs.on_event(_OBS_FAULT, fault.time_s, fault.replica_id)
        replica = self.replicas[fault.replica_id]
        if fault.kind == SLOWDOWN:
            replica.slow_factor = fault.magnitude
        elif fault.kind == FLAKY:
            replica.flaky_p = fault.magnitude
        # PARTITION/HEAL act through the precomputed static intervals
        # (response deferral in _dispatch); no replica state to mutate.

    def _handle_timeout(self, payload: tuple[int, int, int], now: float) -> None:
        """A per-attempt timer fired: cancel the attempt, maybe retry."""
        i, token, replica_id = payload
        books = self._books
        if books.attempt[i] != token:
            return  # the attempt completed or was cancelled in time
        log = books.log
        log.timed_out[i] += 1
        books.attempt[i] += 1
        if books.pending[i]:
            books.drop[i] += books.pending[i]
            books.pending[i] = 0
        self._scrub(i)
        if self.obs is not None:
            self.obs.on_event(_OBS_TIMEOUT, now, replica_id, i)
        self.policy.observe(replica_id, now, ok=False)
        self._note_breaker(replica_id, now)
        retry = self.resilience.retry
        retries = int(log.retries[i])
        if retry.allows(retries):
            u = float(self._fault_rng.random())
            self._push(now + retry.delay_s(retries + 1, u), _EV_RETRY, i)

    def _handle_retry(self, i: int, now: float) -> None:
        """Backoff elapsed: dispatch the request's next attempt."""
        if self.obs is not None:
            self.obs.on_event(_OBS_RETRY, now, req=i)
        self._books.log.retries[i] += 1
        self._route(i, now)

    def _handle_hedge(self, payload: tuple[int, int, int], now: float) -> None:
        """Hedge delay elapsed with no response: race a second replica."""
        i, token, primary_id = payload
        books = self._books
        if books.attempt[i] != token:
            return  # already answered (or cancelled) — no hedge needed
        # The twin shares the primary's attempt token: whichever response
        # lands first wins and invalidates the other.  No twin is sent
        # when the primary's replica is the only routable one.
        if self._route_to(i, now, exclude=primary_id) is not None:
            books.log.hedged[i] = True
            if self.obs is not None:
                self.obs.on_event(_OBS_HEDGE, now, primary_id, i)

    def _judge_success(self, replica: Replica, batch: InFlightBatch) -> None:
        """A batch responded: finalize the log for still-live attempts.

        Requests whose attempt token moved on since dispatch (timed out,
        hedge-won elsewhere, crash-re-routed) drop their response here —
        a cancelled attempt can never overwrite its winner.
        """
        books = self._books
        log = books.log
        attempt = books.attempt
        decision = batch.decision
        size = len(batch.indices)
        for pos, i in enumerate(batch.indices):
            if attempt[i] != batch.tokens[pos]:
                # A cancelled attempt never feeds the breaker an outcome,
                # but it may have consumed a half-open probe slot at
                # choose time — release it so the breaker can't wedge.
                self.policy.void(replica.replica_id)
                continue
            attempt[i] += 1  # the win invalidates outstanding timers
            if books.pending[i]:  # cancel a hedge twin still queued
                books.drop[i] += books.pending[i]
                books.pending[i] = 0
            log.completion_s[i] = batch.completion_s
            log.dispatch_s[i] = batch.start_s
            log.batch_size[i] = size
            log.replica_id[i] = replica.replica_id
            if decision is not None:
                log.route[i] = ROUTE_EASY if decision.easy[pos] else ROUTE_HARD
            else:
                log.route[i] = ROUTE_BATCHED
            # One outcome per request, not per batch: probe accounting
            # must balance the per-request note_probe at choose time.
            self.policy.observe(
                replica.replica_id,
                batch.completion_s,
                ok=True,
                latency_s=batch.completion_s - batch.start_s,
            )

    def _judge_failure(
        self, replica: Replica, batch: InFlightBatch, now: float
    ) -> None:
        """A batch's response was a failure (flaky / unhealed partition).

        Naive fleets lose the requests outright; resilient ones feed the
        breaker and schedule backed-off retries within the budget.
        """
        books = self._books
        log = books.log
        resil = self.resilience
        if self.obs is not None:
            self.obs.on_event(EV_BATCH_FAIL, batch.completion_s, replica.replica_id)
        if resil is None:
            for i in batch.indices:
                if (
                    log.completion_s[i] == batch.completion_s
                    and log.replica_id[i] == replica.replica_id
                ):
                    self._scrub(i)
            return
        retry = resil.retry
        for pos, i in enumerate(batch.indices):
            if books.attempt[i] != batch.tokens[pos]:
                self.policy.void(replica.replica_id)
                continue
            books.attempt[i] += 1
            if books.pending[i]:
                books.drop[i] += books.pending[i]
                books.pending[i] = 0
            self._scrub(i)
            self.policy.observe(replica.replica_id, batch.completion_s, ok=False)
            self._note_breaker(replica.replica_id, batch.completion_s)
            retries = int(log.retries[i])
            if retry.allows(retries):
                u = float(self._fault_rng.random())
                delay = retry.delay_s(retries + 1, u)
                self._push(max(now, batch.completion_s + delay), _EV_RETRY, i)

    def _note_breaker(self, replica_id: int, now: float) -> None:
        """After an ok=False observation: did the breaker just trip?

        ``ResilientBalancer.n_trips`` is monotone, so a delta against
        the last seen total pins the trip to the failure that caused it
        — one DEBUG line and one instant span per trip.
        """
        policy = self.policy
        if not isinstance(policy, ResilientBalancer):
            return
        trips = policy.n_trips
        if trips > self._last_trips:
            self._last_trips = trips
            logger.debug(
                "circuit breaker tripped on replica %d at t=%.6fs (trip #%d)",
                replica_id, now, trips,
            )
            if self.obs is not None:
                self.obs.on_event(EV_BREAKER_TRIP, now, replica_id)

    # ------------------------------------------------------------------ #
    # dispatch
    # ------------------------------------------------------------------ #
    def _route(self, i: int, now: float) -> None:
        replica = self._route_to(i, now)
        if replica is None:
            self._books.stranded.append(i)
            return
        resil = self.resilience
        if resil is not None:
            token = int(self._books.attempt[i])
            self._push(
                now + resil.timeout_s, _EV_TIMEOUT, (i, token, replica.replica_id)
            )
            if resil.hedge_delay_s is not None:
                self._push(
                    now + resil.hedge_delay_s,
                    _EV_HEDGE,
                    (i, token, replica.replica_id),
                )

    def _route_to(self, i: int, now: float, exclude: int | None = None) -> Replica | None:
        ups = self.up_replicas()
        if exclude is not None:
            ups = [r for r in ups if r.replica_id != exclude]
        if not ups:
            return None
        replica = self.policy.choose(ups, now, self.rng)
        replica.batcher.add(i, now, int(self._books.log.req_class[i]))
        if self._books.pending is not None:
            self._books.pending[i] += 1
        if replica.should_dispatch(now):
            self._dispatch(replica, replica.batcher.flush(), now)
        return replica

    def _dispatch(self, replica: Replica, indices: list[int], flush_s: float) -> None:
        prof = self.prof
        if prof is None:
            return self._dispatch_impl(replica, indices, flush_s)
        prof.start("dispatch")
        self._dispatch_impl(replica, indices, flush_s)
        prof.stop()  # dispatch

    def _dispatch_impl(self, replica: Replica, indices: list[int], flush_s: float) -> None:
        books = self._books
        log = books.log
        if books.drop is not None and indices:
            # Cancelled-while-queued copies die at the flush boundary:
            # each drop marker swallows one queued copy of its request.
            drop, pending = books.drop, books.pending
            kept = []
            for i in indices:
                if drop[i] > 0:
                    drop[i] -= 1
                    # The dead copy consumed a choose() on this replica;
                    # release the probe slot it may have held.
                    self.policy.void(replica.replica_id)
                else:
                    pending[i] -= 1
                    kept.append(i)
            indices = kept
            if not indices:
                return
        # One list→array conversion reused by every fancy-index op.
        idx = np.asarray(indices, dtype=np.intp)
        decision = replica.backend.route(books.images[idx])
        if decision is not None:
            # The entropy gate's own verdict, recorded before any
            # admission degrade overrides it — per-class accuracy deltas
            # need the requested path, not just the served one.
            log.requested_route[idx] = np.where(decision.easy, ROUTE_EASY, ROUTE_HARD)
        else:
            log.requested_route[idx] = ROUTE_BATCHED
        if decision is not None and (
            self.admission is not None or self._degrader is not None
        ):
            degraded = log.degraded
            forced = [pos for pos, i in enumerate(indices) if degraded[i]]
            if forced:
                easy = decision.easy.copy()
                easy[forced] = True
                decision = RouteDecision(
                    easy=easy, entropy=decision.entropy, predictions=decision.predictions
                )
        n_hard = decision.n_hard if decision is not None else 0
        service = replica.backend.batch_service_s(len(indices), n_hard)
        if replica.slow_factor != 1.0:
            service *= replica.slow_factor
        start = max(flush_s, replica.worker_free_s)
        work_done = start + service
        completion = work_done
        failed = False
        spans = self._partitions.get(replica.replica_id)
        if spans is not None:
            for span_start, span_end in spans:
                if span_start <= work_done < span_end:
                    if math.isinf(span_end):
                        failed = True  # never heals: the response is lost
                    else:
                        completion = span_end  # withheld until the heal
                    break
        if replica.flaky_p > 0.0 and self._fault_rng.random() < replica.flaky_p:
            failed = True
        batch = InFlightBatch(
            indices=tuple(indices),
            decision=decision,
            start_s=start,
            completion_s=completion,
            work_done_s=work_done if completion != work_done else None,
            failed=failed,
            tokens=(
                tuple(int(books.attempt[i]) for i in indices)
                if books.attempt is not None
                else None
            ),
        )
        replica.commit(batch)
        if self.obs is not None:
            self.obs.on_batch(
                start, completion, replica.replica_id, len(indices),
                queue_depth=len(replica.batcher),
            )
        log.completion_s[idx] = completion
        log.dispatch_s[idx] = start
        log.batch_size[idx] = len(indices)
        log.replica_id[idx] = replica.replica_id
        if decision is not None:
            log.route[idx] = np.where(decision.easy, ROUTE_EASY, ROUTE_HARD)
        else:
            log.route[idx] = ROUTE_BATCHED
        if books.track_completions:
            for i in indices:
                books.completions.append((completion, i))
        if books.class_outstanding is not None:
            for i in indices:
                books.class_counted[i] = False
                heapq.heappush(books.class_events, (completion, i))
        if books.keys is not None:
            # Ties break on the request index so insertion order is
            # identical whatever the key type (pixel hash or sample id).
            keys = books.keys
            for i in indices:
                heapq.heappush(books.visibility, (completion, i, keys[i]))

    # ------------------------------------------------------------------ #
    # predictions + reporting
    # ------------------------------------------------------------------ #
    def _fill_predictions(self, books: _Books) -> None:
        """Run each surviving batch through its replica's backend.

        Crash-cancelled batches never reach ``books.finished``, so every
        request is predicted at most once — by the batch that actually
        completed for it on the virtual timeline.
        """
        prediction = books.log.prediction
        images = books.images
        guarded = self.resilience is not None
        replica_col = books.log.replica_id
        completion_col = books.log.completion_s
        for replica, batch in books.finished:
            idx = np.asarray(batch.indices, dtype=np.intp)
            preds = replica.backend.predict(images[idx], batch.decision)
            if guarded:
                # Only requests whose final record is *this* batch take
                # its predictions — a cancelled attempt's (late, lost)
                # response must not overwrite the winner's.
                mask = (replica_col[idx] == replica.replica_id) & (
                    completion_col[idx] == batch.completion_s
                )
                prediction[idx[mask]] = preds[mask]
            else:
                prediction[idx] = preds
        books.log.fill_cached_predictions()

    def _report(
        self,
        books: _Books,
        arrival_s: np.ndarray,
        labels: np.ndarray | None,
        scenario: str,
    ) -> ClusterReport:
        log = books.log
        served = log.done
        n_requests = len(log)
        n_served = int(served.sum())
        n_shed = log.route_count(ROUTE_SHED)
        n_unserved = n_requests - n_served - n_shed
        sojourn = log.sojourn_s[served]
        if n_served:
            last = float(log.completion_s[served].max())
            makespan = last - float(arrival_s[0])
            p50, p95, p99 = latency_percentiles(sojourn)
            mean_s, max_s = float(sojourn.mean()), float(sojourn.max())
            attained = int((sojourn <= self.slo_s).sum())
        else:
            makespan = float(arrival_s[-1] - arrival_s[0])
            p50 = p95 = p99 = mean_s = max_s = float("nan")
            attained = 0
        end_s = float(arrival_s[0]) + makespan
        for replica in self.replicas:
            replica.bill_to(end_s)
        replica_seconds = sum(r.up_seconds for r in self.replicas)
        busy = sum(r.busy_s for r in self.replicas)
        batch_sizes = [len(b.indices) for _, b in books.finished]
        span = float(arrival_s[-1] - arrival_s[0])
        accuracy = float("nan")
        if labels is not None and n_served:
            labels = np.asarray(labels)
            accuracy = float((log.prediction[served] == labels[served]).mean())
        return ClusterReport(
            policy=self.policy.name,
            scenario=scenario,
            n_requests=n_requests,
            n_served=n_served,
            n_shed=n_shed,
            n_unserved=n_unserved,
            n_degraded=int(log.degraded.sum()),
            n_retried=int((log.retries > 0).sum()),
            n_cached=log.route_count(ROUTE_CACHED),
            n_replicas_start=self.n_replicas_start,
            peak_replicas=self.peak_replicas,
            n_replicas_end=len(self.up_replicas()),
            duration_s=makespan,
            throughput_rps=n_served / makespan if makespan > 0 else float("inf"),
            arrival_rate_hz=(n_requests - 1) / span if span > 0 else float("inf"),
            mean_s=mean_s,
            p50_s=p50,
            p95_s=p95,
            p99_s=p99,
            max_s=max_s,
            mean_batch_size=float(np.mean(batch_sizes)) if batch_sizes else 0.0,
            slo_s=self.slo_s,
            slo_attainment=attained / n_requests if n_requests else 0.0,
            replica_seconds=float(replica_seconds),
            utilization=busy / replica_seconds if replica_seconds > 0 else 0.0,
            cache_hit_rate=books.cache.hit_rate,
            n_crashes=sum(r.n_crashes for r in self.replicas),
            scale_ups=self.autoscaler.n_scale_ups if self.autoscaler else 0,
            scale_downs=self.autoscaler.n_scale_downs if self.autoscaler else 0,
            accuracy=accuracy,
            class_reports=(
                per_class_reports(log, self.classes, labels)
                if self.classes is not None
                else ()
            ),
            n_timed_out=int((log.timed_out > 0).sum()),
            n_hedged=int(log.hedged.sum()),
            n_batch_failures=self._n_batch_failures,
            n_breaker_trips=(
                self.policy.n_trips
                if isinstance(self.policy, ResilientBalancer)
                else 0
            ),
        )
