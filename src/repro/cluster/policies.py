"""Pluggable load-balancing policies for the fleet dispatcher.

Each policy answers one question: *which UP replica takes the request
arriving now?*  The signals they read differ in cost and quality, which
is exactly the trade the fleet experiment measures:

* **round-robin** — no signal at all; cycles the fleet.  The classic
  baseline, and visibly wrong for heterogeneous fleets (a Raspberry Pi
  gets the same share as a K80).
* **least-outstanding-requests** — global minimum of admitted-but-not-
  completed requests.  Strong, but needs fresh state from *every*
  replica on every decision.
* **join-shortest-queue** — global minimum of requests not yet in
  service (pending micro-batch + dispatched-but-waiting).  Ignores work
  already being served, so it reacts faster to queue build-up but can
  pile onto a replica grinding through a slow batch.
* **power-of-two-choices** — sample two random replicas, take the less
  loaded (by outstanding requests).  Two probes per decision buy most
  of least-outstanding's tail benefit (Mitzenmacher's classic result),
  which is why it is the production default of real balancers.

Ties break toward the lowest ``replica_id``, keeping every policy
deterministic given the cluster's seeded RNG.

:class:`ResilientBalancer` wraps any of the above with per-replica
circuit breakers (:mod:`repro.faults.breaker`): replicas whose breakers
are open are filtered out of the candidate set before the inner policy
chooses, which is how breaker-driven ejection lives *inside* the
balancer rather than as a separate routing stage.  The cluster engine
installs it automatically when built with ``resilience=...``.
"""

from __future__ import annotations

import numpy as np

from repro.cluster.replica import Replica
from repro.faults.breaker import CLOSED, BreakerConfig, CircuitBreaker

__all__ = [
    "LoadBalancer",
    "RoundRobin",
    "LeastOutstanding",
    "JoinShortestQueue",
    "PowerOfTwoChoices",
    "ResilientBalancer",
    "POLICY_NAMES",
    "make_policy",
]


class LoadBalancer:
    """Base policy: pick one UP replica for the request arriving ``now``."""

    name: str = "base"

    def choose(
        self, replicas: list[Replica], now: float, rng: np.random.Generator
    ) -> Replica:
        """Return the replica that takes the next request.

        ``replicas`` is the non-empty list of currently-UP replicas;
        ``rng`` is the cluster's seeded generator (used only by
        randomized policies, so deterministic runs stay deterministic).
        """
        raise NotImplementedError

    @staticmethod
    def _least(replicas: list[Replica], signal) -> Replica:
        return min(replicas, key=lambda r: (signal(r), r.replica_id))


class RoundRobin(LoadBalancer):
    """Cycle through the fleet in replica order, ignoring load."""

    name = "round-robin"

    def __init__(self) -> None:
        self._next = 0

    def choose(
        self, replicas: list[Replica], now: float, rng: np.random.Generator
    ) -> Replica:
        """Next replica in rotation (membership changes just shift the cycle)."""
        chosen = replicas[self._next % len(replicas)]
        self._next += 1
        return chosen


class LeastOutstanding(LoadBalancer):
    """Send to the replica with the fewest admitted-but-incomplete requests."""

    name = "least-outstanding"

    def choose(
        self, replicas: list[Replica], now: float, rng: np.random.Generator
    ) -> Replica:
        """Global minimum of :meth:`Replica.outstanding` at ``now``."""
        return self._least(replicas, lambda r: r.outstanding(now))


class JoinShortestQueue(LoadBalancer):
    """Send to the replica with the fewest requests waiting for service."""

    name = "join-shortest-queue"

    def choose(
        self, replicas: list[Replica], now: float, rng: np.random.Generator
    ) -> Replica:
        """Global minimum of :meth:`Replica.queue_depth` at ``now``."""
        return self._least(replicas, lambda r: r.queue_depth(now))


class PowerOfTwoChoices(LoadBalancer):
    """Probe two random replicas, take the one with fewer outstanding."""

    name = "power-of-two"

    def choose(
        self, replicas: list[Replica], now: float, rng: np.random.Generator
    ) -> Replica:
        """The less-loaded of two uniformly sampled distinct replicas."""
        if len(replicas) == 1:
            return replicas[0]
        i, j = rng.choice(len(replicas), size=2, replace=False)
        return self._least([replicas[int(i)], replicas[int(j)]], lambda r: r.outstanding(now))


class ResilientBalancer(LoadBalancer):
    """Per-replica circuit breakers wrapped around any inner policy.

    Keeps one :class:`~repro.faults.breaker.CircuitBreaker` per replica
    id, fed by the cluster engine (:meth:`observe`) with attempt
    outcomes — batch completions succeed, timeout fires and batch
    failures fail.  ``choose`` filters the candidate set down to
    replicas whose breakers admit traffic (closed, or half-open with a
    probe slot free) before delegating to the inner policy; if *every*
    candidate is ejected it falls back to the full set — a fleet with
    nothing but tripped breakers still routes rather than stranding
    requests (availability over breaker purity).
    """

    def __init__(
        self, inner: LoadBalancer, config: BreakerConfig | None = None
    ) -> None:
        self.inner = inner
        self.config = config if config is not None else BreakerConfig()
        self.breakers: dict[int, CircuitBreaker] = {}
        self.name = f"resilient+{inner.name}"

    def _breaker(self, replica_id: int) -> CircuitBreaker:
        breaker = self.breakers.get(replica_id)
        if breaker is None:
            breaker = self.breakers[replica_id] = CircuitBreaker(self.config)
        return breaker

    def choose(
        self, replicas: list[Replica], now: float, rng: np.random.Generator
    ) -> Replica:
        """Inner policy's pick among breaker-admitted replicas."""
        admitted = [
            r for r in replicas if self._breaker(r.replica_id).available(now)
        ]
        chosen = self.inner.choose(admitted or replicas, now, rng)
        self.breakers[chosen.replica_id].note_probe()
        return chosen

    def observe(
        self, replica_id: int, now: float, ok: bool, latency_s: float = 0.0
    ) -> None:
        """Feed one attempt outcome into the replica's breaker."""
        self._breaker(replica_id).record(now, ok, latency_s)

    def void(self, replica_id: int) -> None:
        """An attempt on this replica was cancelled before any outcome
        (copy dropped at a flush, or its response lost a hedge race):
        release the probe slot it may have consumed."""
        self._breaker(replica_id).void_probe()

    def open_fraction(self, replica_ids: list[int]) -> float:
        """Fraction of the given replicas whose breakers are not closed.

        This is the degradation controller's pressure signal; replicas
        the balancer has never routed to count as closed.
        """
        if not replica_ids:
            return 0.0
        n_open = sum(
            1
            for rid in replica_ids
            if rid in self.breakers and self.breakers[rid].state != CLOSED
        )
        return n_open / len(replica_ids)

    @property
    def n_trips(self) -> int:
        """Total breaker trips across the fleet (for the report)."""
        return sum(b.n_trips for b in self.breakers.values())


POLICY_NAMES: tuple[str, ...] = (
    RoundRobin.name,
    LeastOutstanding.name,
    JoinShortestQueue.name,
    PowerOfTwoChoices.name,
)

_POLICIES = {
    RoundRobin.name: RoundRobin,
    LeastOutstanding.name: LeastOutstanding,
    JoinShortestQueue.name: JoinShortestQueue,
    PowerOfTwoChoices.name: PowerOfTwoChoices,
}


def make_policy(name: str) -> LoadBalancer:
    """Instantiate a fresh policy by name (see :data:`POLICY_NAMES`)."""
    try:
        return _POLICIES[name]()
    except KeyError:
        raise ValueError(
            f"unknown balancing policy {name!r}; choose from {POLICY_NAMES}"
        ) from None
