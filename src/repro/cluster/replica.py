"""One serving node of a fleet: a backend plus its local queue state.

A :class:`Replica` is the cluster-level view of what
:class:`repro.serving.Server` models as a whole process: a
device-calibrated :class:`~repro.serving.backends.InferenceBackend`
behind its own :class:`~repro.serving.batcher.MicroBatcher` and a single
worker.  The fleet engine (:mod:`repro.cluster.engine`) owns the global
virtual clock and dispatch; the replica owns everything local — pending
micro-batch, in-flight batches, lifecycle state, and the bookkeeping
that turns into the report's replica-seconds and availability columns.

Lifecycle::

    WARMING ──warmup done──► UP ──drain──► DRAINING ──queue empty──► DOWN
       ▲                      │ crash                                  │
       └───────recover────────┴────────────────────────────────────────┘

Replica-seconds accrue from the moment a replica is provisioned
(WARMING counts — capacity you pay for before it serves) until it goes
DOWN, which is how the autoscaler's warm-up cost shows up in the fleet
report's cost column.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.serving.backends import InferenceBackend
from repro.serving.batcher import MicroBatcher
from repro.serving.classes import ClassSet
from repro.serving.priority import PriorityBatcher
from repro.serving.router import RouteDecision

__all__ = ["ReplicaState", "InFlightBatch", "Replica"]


class ReplicaState:
    """Lifecycle states of one fleet replica (string constants)."""

    WARMING = "warming"  # provisioned, paying warm-up, not yet serving
    UP = "up"  # serving traffic
    DRAINING = "draining"  # finishing its queue, receiving no new requests
    DOWN = "down"  # crashed or fully drained

    ALL = (WARMING, UP, DRAINING, DOWN)


@dataclass(frozen=True)
class InFlightBatch:
    """One dispatched micro-batch on a replica's worker.

    ``start_s`` may lie in the future relative to dispatch time (the
    worker was still busy); ``completion_s = start_s + service``.  A
    crash before ``completion_s`` cancels the batch and its requests are
    re-dispatched by the cluster.

    Under fault injection (:mod:`repro.faults`) the response can detach
    from the work: ``work_done_s`` is when the worker actually frees
    (``None`` means ``completion_s``, the default healthy case), while
    ``completion_s`` is when the *response* lands — later than the work
    when a partition defers it.  ``failed`` marks a flaky batch whose
    response is a failure; ``tokens`` carries each request's attempt
    token at dispatch so the engine can tell a live attempt's response
    from a cancelled one's.
    """

    indices: tuple[int, ...]
    decision: RouteDecision | None
    start_s: float
    completion_s: float
    work_done_s: float | None = None
    failed: bool = False
    tokens: tuple[int, ...] | None = None

    @property
    def worker_end_s(self) -> float:
        """When the worker frees (work end, not response arrival)."""
        return self.completion_s if self.work_done_s is None else self.work_done_s


@dataclass
class Replica:
    """One node of the fleet: backend + micro-batcher + one worker.

    Parameters
    ----------
    replica_id:
        Stable index into the cluster's replica list (also what the
        balancer's tie-breaking and the report's per-replica rows use).
    backend:
        The :class:`~repro.serving.backends.InferenceBackend` that
        provides routing, service times, and real predictions.
    max_batch_size, max_wait_s:
        This replica's micro-batcher triggers (replicas may differ —
        e.g. a GPU replica batching wider than a Pi).
    classes, scheduler:
        Multi-tenant mode: a :class:`~repro.serving.classes.ClassSet`
        swaps the FIFO micro-batcher for per-class queues
        (:class:`~repro.serving.priority.PriorityBatcher`, ordered by
        ``scheduler``) and gates flushes on the worker being free, so
        the local queue genuinely reorders under backlog.
    """

    replica_id: int
    backend: InferenceBackend
    max_batch_size: int = 16
    max_wait_s: float = 0.004
    state: str = ReplicaState.UP
    classes: ClassSet | None = None
    scheduler: str = "priority"
    batcher: MicroBatcher | PriorityBatcher = field(init=False, repr=False)
    in_flight: list[InFlightBatch] = field(init=False, repr=False)
    worker_free_s: float = 0.0
    busy_s: float = 0.0
    up_since_s: float | None = 0.0
    up_seconds: float = 0.0
    last_completion_s: float = 0.0
    drain_started_s: float = 0.0
    n_batches: int = 0
    n_requests: int = 0
    n_crashes: int = 0
    #: Fault state (set by the engine's fault events): service-time
    #: multiplier (1.0 = nominal) and per-batch failure probability.
    slow_factor: float = 1.0
    flaky_p: float = 0.0
    #: Provisioning epoch: bumped on every provision() so stale
    #: warm-up-complete events from an earlier epoch can be ignored.
    generation: int = 0

    def __post_init__(self) -> None:
        if self.classes is not None:
            self.batcher = PriorityBatcher(
                self.classes,
                self.max_batch_size,
                self.max_wait_s,
                ordering=self.scheduler,
            )
        else:
            self.batcher = MicroBatcher(self.max_batch_size, self.max_wait_s)
        self.in_flight = []
        if self.state == ReplicaState.DOWN:
            self.up_since_s = None

    # ------------------------------------------------------------------ #
    # balancer / autoscaler signals
    # ------------------------------------------------------------------ #
    def outstanding(self, now: float) -> int:
        """Requests admitted to this replica but not yet completed."""
        return len(self.batcher) + sum(
            len(b.indices) for b in self.in_flight if b.completion_s > now
        )

    def queue_depth(self, now: float) -> int:
        """Requests waiting (pending batch + dispatched but not started)."""
        return len(self.batcher) + sum(
            len(b.indices) for b in self.in_flight if b.start_s > now
        )

    @property
    def available(self) -> bool:
        """Whether the balancer may send this replica new requests."""
        return self.state == ReplicaState.UP

    # ------------------------------------------------------------------ #
    # dispatch bookkeeping (the cluster computes the batch, we record it)
    # ------------------------------------------------------------------ #
    def commit(self, batch: InFlightBatch) -> None:
        """Record one dispatched batch and occupy the worker."""
        self.in_flight.append(batch)
        self.worker_free_s = batch.worker_end_s
        self.busy_s += batch.worker_end_s - batch.start_s
        self.last_completion_s = max(self.last_completion_s, batch.completion_s)
        self.n_batches += 1
        self.n_requests += len(batch.indices)

    def purge(self, now: float) -> list[InFlightBatch]:
        """Move batches completed by ``now`` out of the in-flight set.

        Also finalizes a drain: a DRAINING replica whose batcher and
        in-flight set are both empty goes DOWN, billed up to the moment
        its last batch completed (not up to ``now``).
        """
        in_flight = self.in_flight
        # Fast path for the per-event sweep: one worker per replica means
        # completions are non-decreasing, so the head batch bounds them
        # all.  (A drain with an empty queue still needs finalizing.)
        if not in_flight or in_flight[0].completion_s > now:
            done = []
        else:
            done = [b for b in in_flight if b.completion_s <= now]
            self.in_flight = [b for b in in_flight if b.completion_s > now]
        if (
            self.state == ReplicaState.DRAINING
            and not self.in_flight
            and not self.batcher
        ):
            down_at = max(self.drain_started_s, self.last_completion_s)
            self._close_books(down_at)
            self.state = ReplicaState.DOWN
        return done

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    def provision(self, now: float) -> None:
        """Start paying for this replica (spawn or recover → WARMING)."""
        if self.state != ReplicaState.DOWN:
            raise RuntimeError(
                f"replica {self.replica_id} cannot be provisioned while {self.state}"
            )
        self.state = ReplicaState.WARMING
        self.generation += 1
        self.up_since_s = now
        self.worker_free_s = now

    def mark_up(self, now: float) -> None:
        """Warm-up finished: start receiving traffic."""
        if self.state != ReplicaState.WARMING:
            return  # cancelled by a crash while warming
        self.state = ReplicaState.UP
        self.worker_free_s = max(self.worker_free_s, now)

    def start_drain(self, now: float) -> None:
        """Stop receiving new requests; finish the local queue, then DOWN."""
        if self.state not in (ReplicaState.UP, ReplicaState.WARMING):
            return
        self.state = ReplicaState.DRAINING
        self.drain_started_s = now
        self.purge(now)

    def crash(self, now: float) -> list[int]:
        """Fail immediately; return the request ids whose work was lost.

        The caller must :meth:`purge` the cluster clock up to ``now``
        first, so every batch still in flight here is cancelled work.
        """
        lost = list(self.batcher.drain()) if self.batcher else []
        for batch in self.in_flight:
            lost.extend(batch.indices)
            # Roll back the commit-time billing for the part of the
            # batch that never ran: only work executed before the crash
            # counts as busy, and the cancelled completion must not leak
            # into drain/bill_to accounting.  (A partition-deferred batch
            # whose work already finished rolls back nothing.)
            self.busy_s -= max(0.0, batch.worker_end_s - max(now, batch.start_s))
        self.in_flight = []
        self.last_completion_s = min(self.last_completion_s, now)
        self._close_books(now)
        self.state = ReplicaState.DOWN
        self.worker_free_s = now
        self.n_crashes += 1
        return lost

    def bill_to(self, now: float) -> None:
        """Close the replica-seconds books at end of simulation."""
        if self.state != ReplicaState.DOWN:
            self._close_books(max(now, self.last_completion_s))

    def _close_books(self, down_at: float) -> None:
        if self.up_since_s is not None:
            self.up_seconds += max(0.0, down_at - self.up_since_s)
            self.up_since_s = None

    def next_deadline_s(self) -> float:
        """Virtual time of this replica's next pending flush (inf if none).

        Single-class replicas flush on the micro-batcher deadline alone
        (the size trigger is handled at add time).  Multi-tenant
        replicas additionally gate on the worker being free: the queue
        is held in the priority batcher — where scheduling order
        matters — instead of racing ahead into the worker's FIFO, so
        the next flush is ``worker_free_s`` once a full batch is
        pending, else ``max(deadline, worker_free_s)``.
        """
        if self.state not in (ReplicaState.UP, ReplicaState.DRAINING):
            return math.inf
        if self.classes is None:
            return self.batcher.deadline_s
        if not self.batcher:
            return math.inf
        if len(self.batcher) >= self.batcher.max_batch_size:
            return self.worker_free_s
        return max(self.batcher.deadline_s, self.worker_free_s)

    def should_dispatch(self, now: float) -> bool:
        """Whether a flush is due at ``now`` (used at add time)."""
        if self.classes is None:
            return self.batcher.should_flush(now)
        return self.next_deadline_s() <= now
