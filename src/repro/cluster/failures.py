"""Failure injection: replica crash/recover events on the virtual clock.

A fleet comparison that never loses a node measures latency, not
availability.  These helpers describe mid-trace failures the cluster
engine replays: a **crash** drops the replica instantly — its pending
micro-batch and every in-flight batch are lost, and the affected
requests are re-dispatched through the balancer (visible as retries and
a fattened tail); a **recover** re-provisions the replica, which pays
its warm-up before taking traffic again.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.utils.rng import as_generator

__all__ = ["CRASH", "RECOVER", "FailureEvent", "crash_window", "poisson_failures"]

CRASH = "crash"
RECOVER = "recover"

#: Same-timestamp tie-break: a crash lands before a recover at the same
#: instant (and before the work that would have ridden the doomed
#: replica).  Explicit ranks, so event order never depends on how the
#: kind strings happen to compare lexicographically.
_KIND_RANK = {CRASH: 0, RECOVER: 1}


@dataclass(frozen=True)
class FailureEvent:
    """One scheduled lifecycle fault: ``kind`` hits ``replica_id`` at ``time_s``."""

    time_s: float
    replica_id: int
    kind: str

    def __post_init__(self) -> None:
        if self.time_s < 0:
            raise ValueError(f"failure time must be >= 0, got {self.time_s}")
        if self.replica_id < 0:
            raise ValueError(f"replica_id must be >= 0, got {self.replica_id}")
        if self.kind not in (CRASH, RECOVER):
            raise ValueError(f"kind must be {CRASH!r} or {RECOVER!r}, got {self.kind!r}")

    def sort_key(self) -> tuple[float, int, int]:
        """Deterministic ordering: time, then replica, then explicit rank."""
        return (self.time_s, self.replica_id, _KIND_RANK[self.kind])

    def __lt__(self, other: "FailureEvent") -> bool:
        return self.sort_key() < other.sort_key()


def crash_window(
    replica_id: int, at_s: float, duration_s: float
) -> tuple[FailureEvent, FailureEvent]:
    """A crash at ``at_s`` followed by recovery ``duration_s`` later."""
    if duration_s <= 0:
        raise ValueError(f"outage duration must be positive, got {duration_s}")
    return (
        FailureEvent(at_s, replica_id, CRASH),
        FailureEvent(at_s + duration_s, replica_id, RECOVER),
    )


def poisson_failures(
    n_replicas: int,
    horizon_s: float,
    mtbf_s: float,
    mttr_s: float,
    rng=None,
) -> tuple[FailureEvent, ...]:
    """Sample independent crash/repair cycles for every replica.

    Each replica alternates exponential up-times (mean ``mtbf_s``) and
    exponential outages (mean ``mttr_s``) over ``[0, horizon_s)`` — the
    standard renewal model behind "nines" arithmetic, here made
    replayable on the virtual clock.
    """
    if n_replicas <= 0:
        raise ValueError(f"n_replicas must be positive, got {n_replicas}")
    if horizon_s <= 0 or mtbf_s <= 0 or mttr_s <= 0:
        raise ValueError("horizon_s, mtbf_s, and mttr_s must all be positive")
    rng = as_generator(rng)
    events: list[FailureEvent] = []
    for replica_id in range(n_replicas):
        t = float(rng.exponential(mtbf_s))
        while t < horizon_s:
            outage = float(rng.exponential(mttr_s))
            events.append(FailureEvent(t, replica_id, CRASH))
            if t + outage < horizon_s:
                events.append(FailureEvent(t + outage, replica_id, RECOVER))
            t += outage + float(rng.exponential(mtbf_s))
    return tuple(sorted(events))
