"""`repro.cluster` — fleet-scale serving over heterogeneous replicas.

The layer above :mod:`repro.serving`: a shared arrival stream is
dispatched by a pluggable :class:`LoadBalancer` across a fleet of
replicas (each one a device-calibrated serving node with its own
micro-batcher and worker), while an SLO-driven :class:`Autoscaler`
grows and drains the fleet, an :class:`AdmissionController` sheds load
under overload, and injected :class:`FailureEvent` crashes exercise
availability — all on one deterministic virtual clock, with real model
predictions filled in afterwards.

Richer degraded-mode scenarios live in :mod:`repro.faults`: pass
``Cluster(faults=FaultPlan(...))`` to inject slowdowns, partitions, and
flaky windows, and ``Cluster(resilience=ResilienceConfig(...))`` to
fight back with timeouts, retries, hedging, per-replica circuit
breakers (:class:`ResilientBalancer`), and a degradation ladder.

Quick tour::

    from repro.cluster import Cluster, AdmissionController
    from repro.serving import CBNetBackend, poisson_arrivals
    from repro.hw import device_profiles

    backends = [CBNetBackend(cbnet, dev) for dev in device_profiles().values()]
    cluster = Cluster(backends, policy="power-of-two",
                      admission=AdmissionController(max_outstanding=512),
                      slo_s=0.025, cache_capacity=256)
    report = cluster.serve(images, poisson_arrivals(3000.0, len(images), rng=0))
    print(report.summary())
"""

from repro.cluster.admission import (
    ACCEPT,
    DEGRADE,
    REJECT,
    AdmissionController,
    WeightedFairAdmission,
)
from repro.cluster.autoscaler import Autoscaler, AutoscalerConfig, measured_warmup_s
from repro.cluster.engine import Cluster, ClusterReport, fleet_comparison_table
from repro.cluster.failures import (
    CRASH,
    RECOVER,
    FailureEvent,
    crash_window,
    poisson_failures,
)
from repro.cluster.policies import (
    POLICY_NAMES,
    JoinShortestQueue,
    LeastOutstanding,
    LoadBalancer,
    PowerOfTwoChoices,
    ResilientBalancer,
    RoundRobin,
    make_policy,
)
from repro.cluster.replica import InFlightBatch, Replica, ReplicaState

__all__ = [
    "Cluster",
    "ClusterReport",
    "fleet_comparison_table",
    "Replica",
    "ReplicaState",
    "InFlightBatch",
    "LoadBalancer",
    "RoundRobin",
    "LeastOutstanding",
    "JoinShortestQueue",
    "PowerOfTwoChoices",
    "ResilientBalancer",
    "POLICY_NAMES",
    "make_policy",
    "AdmissionController",
    "WeightedFairAdmission",
    "ACCEPT",
    "REJECT",
    "DEGRADE",
    "Autoscaler",
    "AutoscalerConfig",
    "measured_warmup_s",
    "FailureEvent",
    "CRASH",
    "RECOVER",
    "crash_window",
    "poisson_failures",
]
