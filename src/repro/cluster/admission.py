"""Admission control: what the cluster does when it cannot keep up.

Unbounded queues turn overload into unbounded latency; a production
front door bounds the queue and *sheds* instead.  The controller caps
total outstanding work across the fleet and applies one of two shedding
policies to arrivals beyond the cap:

* ``reject`` — turn the request away (it is never served; counts
  against availability and SLO attainment but keeps the queues, and
  therefore everyone else's tail, bounded);
* ``degrade`` — admit the request but force it down the early-exit /
  lightweight path (``RouteDecision.easy``), trading a little accuracy
  for a per-request service-time cut.  Only backends with dynamic
  routing have a cheaper path; for static pipelines (CBNet, LeNet)
  degrade admits at full cost, which the report makes visible via the
  degrade counter.
"""

from __future__ import annotations

__all__ = ["AdmissionController", "ACCEPT", "REJECT", "DEGRADE"]

ACCEPT = "accept"
REJECT = "reject"
DEGRADE = "degrade"


class AdmissionController:
    """Bound cluster-wide outstanding work; shed the excess.

    Parameters
    ----------
    max_outstanding:
        Admit a request only while the fleet's total outstanding request
        count (queued + in service + stranded by crashes) is below this
        cap.  ``0`` disables admission control entirely.
    policy:
        ``"reject"`` or ``"degrade"`` — what happens to arrivals beyond
        the cap.
    """

    POLICIES = (REJECT, DEGRADE)

    def __init__(self, max_outstanding: int, policy: str = REJECT) -> None:
        if max_outstanding < 0:
            raise ValueError(f"max_outstanding must be >= 0, got {max_outstanding}")
        if policy not in self.POLICIES:
            raise ValueError(f"policy must be one of {self.POLICIES}, got {policy!r}")
        self.max_outstanding = int(max_outstanding)
        self.policy = policy
        self.n_rejected = 0
        self.n_degraded = 0
        self.n_accepted = 0

    def decide(self, outstanding_total: int) -> str:
        """``ACCEPT``, ``REJECT``, or ``DEGRADE`` the arriving request."""
        if self.max_outstanding == 0 or outstanding_total < self.max_outstanding:
            self.n_accepted += 1
            return ACCEPT
        if self.policy == REJECT:
            self.n_rejected += 1
            return REJECT
        self.n_degraded += 1
        return DEGRADE

    @property
    def shed_rate(self) -> float:
        """Fraction of decisions that rejected the request outright."""
        total = self.n_accepted + self.n_rejected + self.n_degraded
        return self.n_rejected / total if total else 0.0
