"""Admission control: what the cluster does when it cannot keep up.

Unbounded queues turn overload into unbounded latency; a production
front door bounds the queue and *sheds* instead.  The controller caps
total outstanding work across the fleet and applies one of two shedding
policies to arrivals beyond the cap:

* ``reject`` — turn the request away (it is never served; counts
  against availability and SLO attainment but keeps the queues, and
  therefore everyone else's tail, bounded);
* ``degrade`` — admit the request but force it down the early-exit /
  lightweight path (``RouteDecision.easy``), trading a little accuracy
  for a per-request service-time cut.  Only backends with dynamic
  routing have a cheaper path; for static pipelines (CBNet, LeNet)
  degrade admits at full cost, which the report makes visible via the
  degrade counter.

Multi-tenant fleets use :class:`WeightedFairAdmission` instead: the
same bounded-outstanding discipline, but the cap is *graded by class
priority* so overload sheds batch before standard before interactive,
while a per-class weight reserve keeps every class admissible — the
no-starvation half of the scheduling invariants
(``tests/scheduling``).
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "AdmissionController",
    "WeightedFairAdmission",
    "ACCEPT",
    "REJECT",
    "DEGRADE",
]

ACCEPT = "accept"
REJECT = "reject"
DEGRADE = "degrade"


class AdmissionController:
    """Bound cluster-wide outstanding work; shed the excess.

    Parameters
    ----------
    max_outstanding:
        Admit a request only while the fleet's total outstanding request
        count (queued + in service + stranded by crashes) is below this
        cap.  ``0`` disables admission control entirely.
    policy:
        ``"reject"`` or ``"degrade"`` — what happens to arrivals beyond
        the cap.
    """

    POLICIES = (REJECT, DEGRADE)

    def __init__(self, max_outstanding: int, policy: str = REJECT) -> None:
        if max_outstanding < 0:
            raise ValueError(f"max_outstanding must be >= 0, got {max_outstanding}")
        if policy not in self.POLICIES:
            raise ValueError(f"policy must be one of {self.POLICIES}, got {policy!r}")
        self.max_outstanding = int(max_outstanding)
        self.policy = policy
        self.n_rejected = 0
        self.n_degraded = 0
        self.n_accepted = 0

    def decide(self, outstanding_total: int) -> str:
        """``ACCEPT``, ``REJECT``, or ``DEGRADE`` the arriving request."""
        if self.max_outstanding == 0 or outstanding_total < self.max_outstanding:
            self.n_accepted += 1
            return ACCEPT
        return self._shed()

    def decide_for(
        self,
        outstanding_total: int,
        cls: int,
        class_outstanding: np.ndarray | None,
    ) -> str:
        """Class-aware admission hook; the base controller is class-blind.

        The cluster engine always calls this entry point; subclasses
        (``WeightedFairAdmission``) override it to grade the decision by
        request class.
        """
        del cls, class_outstanding
        return self.decide(outstanding_total)

    def _shed(self) -> str:
        if self.policy == REJECT:
            self.n_rejected += 1
            return REJECT
        self.n_degraded += 1
        return DEGRADE

    @property
    def shed_rate(self) -> float:
        """Fraction of decisions that rejected the request outright."""
        total = self.n_accepted + self.n_rejected + self.n_degraded
        return self.n_rejected / total if total else 0.0


class WeightedFairAdmission(AdmissionController):
    """Priority-graded, weight-reserved admission for multi-tenant fleets.

    Two rules, evaluated per arriving request of class ``c`` against the
    outstanding budget ``M = max_outstanding``:

    * **graded cap** — admit while the fleet total is under
      ``cap_c = M * (sum of weights of classes no more urgent than c) / W``.
      The most urgent class sees the full budget ``M``; the least urgent
      only its own weight share — so as load grows, shedding starts with
      batch, then standard, and interactive sheds last;
    * **weight reserve** — even past its cap, class ``c`` is admitted
      while *its own* outstanding count is below
      ``reserve_c = max(1, floor(M * w_c / W))``.  This is the
      no-starvation guarantee: an interactive flood cannot push batch's
      admission rate to zero, because batch always owns its reserve
      slice of the queue.

    The reserves can briefly carry total outstanding past ``M`` (by at
    most the reserve sum, itself at most ``M``), which is the usual
    price of per-tenant guarantees on a shared budget.

    Parameters
    ----------
    classes:
        The fleet's :class:`~repro.serving.classes.ClassSet` (the same
        object passed to ``Cluster(classes=...)``).
    max_outstanding:
        Outstanding-work budget ``M``; ``0`` disables admission control.
    policy:
        ``"reject"`` or ``"degrade"``, as in the base controller.
    """

    def __init__(self, classes, max_outstanding: int, policy: str = REJECT) -> None:
        super().__init__(max_outstanding, policy)
        self.classes = classes
        m = self.max_outstanding
        caps, reserves = [], []
        for spec in classes:
            less_urgent_share = sum(
                share
                for other, share in zip(classes, classes.shares)
                if other.priority >= spec.priority
            )
            caps.append(m * less_urgent_share)
            reserves.append(max(1, int(m * classes.shares[classes.code(spec.name)])))
        #: Per-class-code graded total-outstanding caps.
        self.caps = tuple(caps)
        #: Per-class-code guaranteed outstanding slots.
        self.reserves = tuple(reserves)

    def decide_for(
        self,
        outstanding_total: int,
        cls: int,
        class_outstanding: np.ndarray | None,
    ) -> str:
        """Admit under the graded cap or the class's own reserve."""
        if self.max_outstanding == 0 or outstanding_total < self.caps[cls]:
            self.n_accepted += 1
            return ACCEPT
        if class_outstanding is not None and class_outstanding[cls] < self.reserves[cls]:
            self.n_accepted += 1
            return ACCEPT
        return self._shed()
