"""Simulated utilization monitoring.

The paper samples CPU utilization with ``psutil`` (GCI) and feeds the
average into the power models.  Offline we simulate the same measurement:
a busy/idle square-wave trace at a given duty cycle plus measurement
noise, averaged exactly the way a polling monitor would.
"""

from __future__ import annotations

import numpy as np

from repro.utils.rng import as_generator

__all__ = ["UtilizationMonitor"]


class UtilizationMonitor:
    """Polling utilization monitor over a simulated inference run.

    Parameters
    ----------
    poll_hz:
        Sampling frequency (psutil-style polling).
    noise_std:
        Measurement noise on each sample (clipped to [0, 1]).
    """

    def __init__(
        self,
        poll_hz: float = 10.0,
        noise_std: float = 0.02,
        rng: np.random.Generator | int | None = None,
    ) -> None:
        if poll_hz <= 0:
            raise ValueError(f"poll_hz must be positive, got {poll_hz}")
        if noise_std < 0:
            raise ValueError(f"noise_std must be non-negative, got {noise_std}")
        self.poll_hz = poll_hz
        self.noise_std = noise_std
        self.rng = as_generator(rng)

    def trace(self, duration_s: float, busy_fraction: float) -> np.ndarray:
        """Utilization samples over ``duration_s`` at the given duty cycle."""
        if duration_s <= 0:
            raise ValueError(f"duration must be positive, got {duration_s}")
        if not 0.0 <= busy_fraction <= 1.0:
            raise ValueError(f"busy_fraction must be in [0, 1], got {busy_fraction}")
        n = max(1, int(round(duration_s * self.poll_hz)))
        # Busy within each poll interval with probability = duty cycle;
        # long runs converge to the duty cycle like a real polling monitor.
        busy = self.rng.random(n) < busy_fraction
        samples = busy.astype(np.float64)
        if self.noise_std:
            samples = samples + self.rng.normal(0.0, self.noise_std, n)
        return np.clip(samples, 0.0, 1.0)

    def average_utilization(self, duration_s: float, busy_fraction: float) -> float:
        """Mean of a polled trace — what feeds Eq. 1 / Eq. 2."""
        return float(self.trace(duration_s, busy_fraction).mean())
