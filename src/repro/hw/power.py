"""Power models — reproduced from the paper verbatim (§IV-C).

Eq. 1 (GCI CPU):      P = (n/N) * (P_idle + (P_peak - P_idle) * u^beta)
Eq. 2 (PowerPi):      P = P_idle + (P_peak - P_idle) * u^beta,  beta = 1

Constants from the paper: the GCI host is an Intel Xeon E5-2699 v3 with
P_idle = 40 W, P_peak = 180 W, N = 18 cores, n = 2 vCPUs, beta = 0.75
(Hsu & Poole); the Pi 4 has P_idle = 2.7 W, P_peak = 6.4 W.  For the GPU
instance the paper reports a measured average of 79 W GPU draw plus
17.7 W CPU.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "gci_cpu_power",
    "raspberry_pi_power",
    "PowerModel",
    "GCI_POWER",
    "PI_POWER",
    "GPU_POWER",
]


def gci_cpu_power(
    utilization: float,
    n_vcpus: int = 2,
    host_cores: int = 18,
    p_idle: float = 40.0,
    p_peak: float = 180.0,
    beta: float = 0.75,
) -> float:
    """Paper Eq. 1: vCPU share of the host's utilization-dependent power."""
    _check_utilization(utilization)
    return (n_vcpus / host_cores) * (p_idle + (p_peak - p_idle) * utilization**beta)


def raspberry_pi_power(
    utilization: float,
    p_idle: float = 2.7,
    p_peak: float = 6.4,
    beta: float = 1.0,
) -> float:
    """Paper Eq. 2 (PowerPi): linear-in-utilization device power."""
    _check_utilization(utilization)
    return p_idle + (p_peak - p_idle) * utilization**beta


def _check_utilization(u: float) -> None:
    if not 0.0 <= u <= 1.0:
        raise ValueError(f"utilization must be in [0, 1], got {u}")


@dataclass(frozen=True)
class PowerModel:
    """Callable power model bound to its device constants.

    ``kind`` selects the formula; ``gpu_watts`` adds a constant
    accelerator draw (the paper's K80 instance: 79 W GPU + 17.7 W CPU,
    with the CPU part modelled by Eq. 1).
    """

    kind: str  # "gci" | "pi" | "gpu"
    gpu_watts: float = 0.0

    def __call__(self, utilization: float) -> float:
        if self.kind == "pi":
            return raspberry_pi_power(utilization)
        if self.kind == "gci":
            return gci_cpu_power(utilization)
        if self.kind == "gpu":
            # Paper §IV-E: "average CPU power consumption is 17.7 W while
            # the average GPU power consumption is six times higher (79 W)".
            return 17.7 + self.gpu_watts
        raise ValueError(f"unknown power model kind {self.kind!r}")


GCI_POWER = PowerModel(kind="gci")
PI_POWER = PowerModel(kind="pi")
GPU_POWER = PowerModel(kind="gpu", gpu_watts=79.0)
