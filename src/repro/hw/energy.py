"""Energy accounting (paper §IV-C): E = P(u) · Δt."""

from __future__ import annotations

from repro.hw.device import DeviceProfile

__all__ = ["energy_joules", "energy_savings_percent"]


def energy_joules(
    device: DeviceProfile, latency_s: float, utilization: float | None = None
) -> float:
    """Energy of one inference: average power times latency.

    ``utilization`` defaults to the device's calibrated average (the
    paper: "negligible difference in the CPU power consumption between
    various models").
    """
    if latency_s < 0:
        raise ValueError(f"latency must be non-negative, got {latency_s}")
    u = device.utilization if utilization is None else utilization
    return device.power(u) * latency_s


def energy_savings_percent(baseline_joules: float, model_joules: float) -> float:
    """Percent energy saved relative to a baseline (Table II columns)."""
    if baseline_joules <= 0:
        raise ValueError(f"baseline energy must be positive, got {baseline_joules}")
    return 100.0 * (1.0 - model_joules / baseline_joules)
