"""Edge↔cloud network links for partitioned (offloaded) inference.

The paper measures *on-device* inference; the offloading extension
(:mod:`repro.offload`) splits a model between a weak edge device and a
cloud replica, which makes the network a first-class hardware resource
next to :class:`~repro.hw.device.DeviceProfile`.  A
:class:`NetworkLink` models the four effects that decide whether a
split is worth it:

* **serialization** — payload bytes against the link's uplink/downlink
  bandwidth.  This is the *occupying* part of a transfer: a single edge
  radio transmits one payload at a time, so the offload engine queues
  transfers on it exactly like compute queues on a device;
* **propagation** — half the round-trip time per direction, paid once
  per delivered payload and overlapping with other transfers;
* **jitter** — an exponential tail on top of propagation (seeded, so
  runs stay deterministic);
* **loss/retry** — each attempt fails with ``loss_rate``; a failed
  attempt occupies the link for its serialization time plus a
  retransmit timeout (one RTT, growing geometrically under
  ``retry_backoff_mult``) before the next try, under an explicit
  ``max_attempts`` budget.

Bandwidth can additionally degrade over (virtual) time via a
trace-driven step function (:class:`BandwidthTrace`) — the "walking
from wifi into the parking garage" scenario — and the link can be cut
outright over declared ``outages`` windows (the edge↔cloud partition of
:mod:`repro.faults`): :meth:`NetworkLink.next_available` defers any
transfer that would start inside one to the window's end.

Presets (:func:`ethernet`, :func:`wifi`, :func:`lte`) are calibrated to
typical last-hop numbers; :func:`network_links` returns all three keyed
by name, mirroring :func:`repro.hw.devices.device_profiles`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.faults.plan import validate_windows

__all__ = [
    "BandwidthTrace",
    "NetworkLink",
    "Transfer",
    "ethernet",
    "wifi",
    "lte",
    "network_links",
]

_MAX_ATTEMPTS = 8  # default retransmit budget: transfers always deliver


@dataclass(frozen=True)
class BandwidthTrace:
    """Trace-driven bandwidth degradation: a step function of scales.

    ``times_s``/``scales`` describe piecewise-constant multipliers on
    the link's nominal bandwidth: the scale at time ``t`` is the entry
    of the *latest* step at or before ``t`` (1.0 before the first
    step).  Scales must be positive — a dead link is modelled as a very
    small scale, not zero, so transfers stay finite and the engine can
    still drain.
    """

    times_s: tuple[float, ...]
    scales: tuple[float, ...]

    def __post_init__(self) -> None:
        if len(self.times_s) != len(self.scales):
            raise ValueError(
                f"{len(self.times_s)} step times vs {len(self.scales)} scales"
            )
        if not self.times_s:
            raise ValueError("a bandwidth trace needs at least one step")
        if any(np.diff(self.times_s) < 0):
            raise ValueError("step times must be non-decreasing")
        if any(s <= 0 for s in self.scales):
            raise ValueError("bandwidth scales must be positive")

    def scale_at(self, time_s: float) -> float:
        """Bandwidth multiplier in effect at ``time_s`` (1.0 before the trace)."""
        idx = int(np.searchsorted(self.times_s, time_s, side="right")) - 1
        return 1.0 if idx < 0 else float(self.scales[idx])


@dataclass(frozen=True)
class Transfer:
    """Outcome of one (seeded) payload transfer over a link.

    ``occupancy_s`` is how long the transfer held the link exclusively
    (all serialization attempts plus retransmit timeouts); ``tx_s`` is
    the radio-active part of that — serialization attempts only, the
    basis for transmit-energy accounting; ``total_s`` additionally
    includes the final propagation + jitter, which overlaps with the
    next payload's serialization.
    """

    n_bytes: int
    attempts: int
    occupancy_s: float
    propagation_s: float
    tx_s: float

    @property
    def total_s(self) -> float:
        return self.occupancy_s + self.propagation_s


@dataclass(frozen=True)
class NetworkLink:
    """One edge↔cloud network path (bandwidth, RTT, jitter, loss, power).

    Attributes
    ----------
    name:
        Preset name (``"wifi"``, ``"lte"``, ``"ethernet"``, ...).
    uplink_mbps, downlink_mbps:
        Nominal serialization bandwidth per direction, megabits/s.
    rtt_s:
        Base round-trip time; each direction pays half per delivery and
        a full RTT per retransmit timeout.
    jitter_s:
        Mean of the exponential jitter added to each propagation leg
        (0 disables; sampling needs an ``rng``).
    loss_rate:
        Per-attempt probability a payload must be retransmitted
        (attempts are capped so transfers always deliver).
    tx_power_w:
        Radio power while the edge transmits — feeds the offload
        engine's edge-energy accounting next to compute energy.
    degradation:
        Optional :class:`BandwidthTrace` scaling both directions over
        virtual time.
    max_attempts:
        Explicit retry budget per transfer (first attempt included).
        The historical behaviour — up to 8 immediate-timeout attempts —
        is the default.
    retry_backoff_mult:
        Geometric growth of the retransmit timeout: attempt ``k`` waits
        ``rtt_s * retry_backoff_mult**(k-1)`` before retrying.  1.0
        (default) reproduces the historical fixed one-RTT timeout.
    outages:
        Declared ``(start_s, end_s)`` windows during which the link is
        cut (an edge↔cloud partition).  Transfers never start inside a
        window — callers defer via :meth:`next_available` — mirroring
        the balancer↔replica partitions of :mod:`repro.faults`.
    """

    name: str
    uplink_mbps: float
    downlink_mbps: float
    rtt_s: float
    jitter_s: float = 0.0
    loss_rate: float = 0.0
    tx_power_w: float = 0.0
    degradation: BandwidthTrace | None = field(default=None)
    max_attempts: int = _MAX_ATTEMPTS
    retry_backoff_mult: float = 1.0
    outages: tuple[tuple[float, float], ...] = ()

    def __post_init__(self) -> None:
        if self.uplink_mbps <= 0 or self.downlink_mbps <= 0:
            raise ValueError(
                f"{self.name}: bandwidth must be positive "
                f"(got up={self.uplink_mbps}, down={self.downlink_mbps} Mbps); "
                "model an outage with a small BandwidthTrace scale instead"
            )
        if self.rtt_s < 0 or self.jitter_s < 0 or self.tx_power_w < 0:
            raise ValueError(f"{self.name}: rtt/jitter/tx_power must be non-negative")
        if not 0.0 <= self.loss_rate < 1.0:
            raise ValueError(f"{self.name}: loss_rate must be in [0, 1), got {self.loss_rate}")
        if self.max_attempts < 1:
            raise ValueError(
                f"{self.name}: max_attempts must be >= 1, got {self.max_attempts}"
            )
        if self.retry_backoff_mult < 1.0:
            raise ValueError(
                f"{self.name}: retry_backoff_mult must be >= 1, "
                f"got {self.retry_backoff_mult}"
            )
        object.__setattr__(
            self,
            "outages",
            validate_windows(self.outages, what="outage", owner=self.name),
        )

    # ------------------------------------------------------------------ #
    # deterministic components
    # ------------------------------------------------------------------ #
    def next_available(self, time_s: float) -> float:
        """Earliest instant >= ``time_s`` outside every outage window.

        Transfers must not *start* inside an outage; a start exactly at
        a window's end is fine (windows are half-open ``[start, end)``).
        Windows are sorted and disjoint, so one forward scan suffices.
        """
        for start, end in self.outages:
            if time_s < start:
                break
            if time_s < end:
                time_s = end
        return time_s

    def bandwidth_scale(self, time_s: float) -> float:
        """Degradation multiplier in effect at ``time_s``."""
        return 1.0 if self.degradation is None else self.degradation.scale_at(time_s)

    def serialization_s(
        self, n_bytes: int, time_s: float = 0.0, direction: str = "up"
    ) -> float:
        """Seconds one serialization attempt occupies the link."""
        if n_bytes < 0:
            raise ValueError(f"n_bytes must be >= 0, got {n_bytes}")
        if direction not in ("up", "down"):
            raise ValueError(f"direction must be 'up' or 'down', got {direction!r}")
        mbps = self.uplink_mbps if direction == "up" else self.downlink_mbps
        return 8.0 * n_bytes / (mbps * 1e6 * self.bandwidth_scale(time_s))

    def expected_attempts(self) -> float:
        """Expected serialization attempts per delivery, budget included.

        The attempt count is ``min(G, max_attempts)`` for geometric
        ``G`` (success rate ``1 - loss_rate``), so its mean is the
        *truncated* series ``(1 - p^K) / (1 - p)`` — not the unbounded
        ``1 / (1 - p)`` the pre-budget planner used.
        """
        p = self.loss_rate
        if p == 0.0:
            return 1.0
        return (1.0 - p**self.max_attempts) / (1.0 - p)

    def expected_timeout_s(self) -> float:
        """Expected total retransmit-timeout wait per delivery.

        Retry ``k`` happens iff the first ``k`` attempts all failed
        (probability ``p^k``) and the budget allows another, and waits
        ``rtt * mult^(k-1)`` — so the mean is the finite sum
        ``rtt * Σ_{k=1}^{K-1} p^k mult^(k-1)``, which reduces to the
        historical ``(1/(1-p) - 1) * rtt`` only for an unbounded budget
        with flat timeouts.
        """
        p, cap, mult = self.loss_rate, self.max_attempts, self.retry_backoff_mult
        if p == 0.0 or cap == 1:
            return 0.0
        ratio = p * mult
        if abs(ratio - 1.0) < 1e-12:
            total = p * (cap - 1)
        else:
            total = p * (ratio ** (cap - 1) - 1.0) / (ratio - 1.0)
        return self.rtt_s * total

    def expected_one_way_s(
        self, n_bytes: int, time_s: float = 0.0, direction: str = "up"
    ) -> float:
        """Deterministic planning estimate of one delivery (no sampling).

        Uses the budget-truncated expected attempt count, the
        backoff-aware expected retransmit-timeout wait, and the mean
        jitter — the same quantities :meth:`transfer` samples, so the
        partition planner and the deadline-aware policy reason about
        the link the sampler actually implements.
        """
        tx = self.serialization_s(n_bytes, time_s, direction)
        return (
            self.expected_attempts() * tx
            + self.expected_timeout_s()
            + self.rtt_s / 2.0
            + self.jitter_s
        )

    def expected_round_trip_s(
        self, up_bytes: int, down_bytes: int, time_s: float = 0.0
    ) -> float:
        """Planning estimate of request-up + response-down."""
        return self.expected_one_way_s(
            up_bytes, time_s, "up"
        ) + self.expected_one_way_s(down_bytes, time_s, "down")

    # ------------------------------------------------------------------ #
    # sampled transfers (seed-deterministic)
    # ------------------------------------------------------------------ #
    def transfer(
        self,
        n_bytes: int,
        time_s: float = 0.0,
        rng: np.random.Generator | None = None,
        direction: str = "up",
    ) -> Transfer:
        """Sample one delivery: retries then propagation + jitter.

        Without an ``rng`` the transfer is loss- and jitter-free (pure
        serialization + propagation) — handy for hand-computable tests.
        Identical generator state yields identical transfers.
        """
        tx = self.serialization_s(n_bytes, time_s, direction)
        attempts = 1
        if rng is not None and self.loss_rate > 0.0:
            while attempts < self.max_attempts and rng.random() < self.loss_rate:
                attempts += 1
        # Each failed attempt k (1-based) pays its serialization plus a
        # retransmit timeout of rtt * mult**(k-1); mult == 1.0 reduces to
        # the historical (attempts - 1) * rtt exactly.
        if self.retry_backoff_mult == 1.0:
            timeouts = (attempts - 1) * self.rtt_s
        else:
            mult = self.retry_backoff_mult
            timeouts = self.rtt_s * (mult ** (attempts - 1) - 1.0) / (mult - 1.0)
        occupancy = attempts * tx + timeouts
        propagation = self.rtt_s / 2.0
        if rng is not None and self.jitter_s > 0.0:
            propagation += float(rng.exponential(self.jitter_s))
        return Transfer(
            n_bytes=int(n_bytes),
            attempts=attempts,
            occupancy_s=occupancy,
            propagation_s=propagation,
            tx_s=attempts * tx,
        )


def ethernet() -> NetworkLink:
    """Wired edge: gigabit LAN to an on-prem cloudlet."""
    return NetworkLink(
        name="ethernet",
        uplink_mbps=1000.0,
        downlink_mbps=1000.0,
        rtt_s=0.4e-3,
        jitter_s=0.05e-3,
        loss_rate=0.0,
        tx_power_w=0.2,
    )


def wifi() -> NetworkLink:
    """802.11ac last hop + metro backhaul to a nearby cloud region."""
    return NetworkLink(
        name="wifi",
        uplink_mbps=40.0,
        downlink_mbps=80.0,
        rtt_s=3e-3,
        jitter_s=1e-3,
        loss_rate=0.002,
        tx_power_w=0.8,
    )


def lte() -> NetworkLink:
    """Cellular uplink: modest bandwidth, long RTT, real loss."""
    return NetworkLink(
        name="lte",
        uplink_mbps=12.0,
        downlink_mbps=40.0,
        rtt_s=60e-3,
        jitter_s=10e-3,
        loss_rate=0.01,
        tx_power_w=1.2,
    )


def network_links() -> dict[str, NetworkLink]:
    """The three calibrated link presets, keyed by name.

    The mapping is rebuilt per call (links are cheap frozen dataclasses),
    so callers may filter or replace entries freely — mirroring
    :func:`repro.hw.devices.device_profiles`.
    """
    return {"ethernet": ethernet(), "wifi": wifi(), "lte": lte()}
