"""Per-layer FLOPs / memory-traffic accounting.

Walks :class:`~repro.nn.module.Sequential` stages, propagating the input
shape through each known layer type and recording compute (MACs/FLOPs)
and memory traffic (bytes moved).  Feeds the roofline latency model in
:mod:`repro.hw.latency` and the energy accounting.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

import numpy as np

from repro.nn.layers import (
    ActivityRegularizer,
    AvgPool2d,
    Conv2d,
    Dropout,
    Flatten,
    Linear,
    MaxPool2d,
    Reshape,
    Scale,
)
from repro.nn.layers.activation import Identity, LeakyReLU, ReLU, Sigmoid, Softmax, Tanh
from repro.nn.module import Module, Sequential

__all__ = ["LayerCost", "StageCost", "layer_cost", "stage_cost", "model_cost"]

_BYTES = 4  # float32 everywhere


@dataclass(frozen=True)
class LayerCost:
    """Compute/memory cost of one layer at a given input shape."""

    name: str
    kind: str  # "conv" | "dense" | "pool" | "elementwise" | "none"
    macs: int
    flops: int
    bytes_read: int
    bytes_written: int
    params: int
    out_shape: tuple[int, ...]

    @property
    def bytes_total(self) -> int:
        return self.bytes_read + self.bytes_written


@dataclass(frozen=True)
class StageCost:
    """Aggregated cost of a named stage (a Sequential of layers)."""

    name: str
    layers: tuple[LayerCost, ...]

    @property
    def macs(self) -> int:
        return sum(l.macs for l in self.layers)

    @property
    def flops(self) -> int:
        return sum(l.flops for l in self.layers)

    @property
    def bytes_total(self) -> int:
        return sum(l.bytes_total for l in self.layers)

    @property
    def params(self) -> int:
        return sum(l.params for l in self.layers)

    @property
    def out_shape(self) -> tuple[int, ...]:
        return self.layers[-1].out_shape if self.layers else ()


def _numel(shape: Iterable[int]) -> int:
    return int(np.prod(list(shape))) if shape else 0


def layer_cost(layer: Module, in_shape: tuple[int, ...]) -> LayerCost:
    """Cost of a single layer for *one* sample with input ``in_shape``.

    ``in_shape`` excludes the batch axis: (C, H, W) for spatial layers,
    (D,) for dense layers.
    """
    name = type(layer).__name__
    if isinstance(layer, Conv2d):
        c, h, w = in_shape
        oh, ow = layer.output_spatial(h, w)
        if oh <= 0 or ow <= 0:
            raise ValueError(f"{name}: non-positive output {oh}x{ow} for input {in_shape}")
        macs = layer.out_channels * oh * ow * c * layer.kernel_size**2
        params = layer.weight.size + (layer.bias.size if layer.bias is not None else 0)
        out_shape = (layer.out_channels, oh, ow)
        return LayerCost(
            name,
            "conv",
            macs,
            2 * macs,
            ( _numel(in_shape) + params) * _BYTES,
            _numel(out_shape) * _BYTES,
            params,
            out_shape,
        )
    if isinstance(layer, Linear):
        d = in_shape[-1]
        if d != layer.in_features:
            raise ValueError(f"{name}: input width {d} != in_features {layer.in_features}")
        macs = layer.in_features * layer.out_features
        params = layer.weight.size + (layer.bias.size if layer.bias is not None else 0)
        out_shape = (*in_shape[:-1], layer.out_features)
        return LayerCost(
            name,
            "dense",
            macs,
            2 * macs,
            (_numel(in_shape) + params) * _BYTES,
            _numel(out_shape) * _BYTES,
            params,
            out_shape,
        )
    if isinstance(layer, (MaxPool2d, AvgPool2d)):
        c, h, w = in_shape
        k, s = layer.kernel_size, layer.stride
        oh = (h - k) // s + 1
        ow = (w - k) // s + 1
        out_shape = (c, oh, ow)
        ops = c * oh * ow * k * k
        return LayerCost(
            name,
            "pool",
            0,
            ops,
            _numel(in_shape) * _BYTES,
            _numel(out_shape) * _BYTES,
            0,
            out_shape,
        )
    if isinstance(layer, (ReLU, LeakyReLU, Sigmoid, Tanh, Scale)):
        n = _numel(in_shape)
        return LayerCost(name, "elementwise", 0, n, n * _BYTES, n * _BYTES, 0, tuple(in_shape))
    if isinstance(layer, Softmax):
        n = _numel(in_shape)
        # exp + sub-max + sum + div ≈ 5 ops/element
        return LayerCost(name, "elementwise", 0, 5 * n, n * _BYTES, n * _BYTES, 0, tuple(in_shape))
    if isinstance(layer, Flatten):
        return LayerCost(name, "none", 0, 0, 0, 0, 0, (_numel(in_shape),))
    if isinstance(layer, Reshape):
        return LayerCost(name, "none", 0, 0, 0, 0, 0, tuple(layer.shape))
    if isinstance(layer, (Dropout, ActivityRegularizer, Identity)):
        return LayerCost(name, "none", 0, 0, 0, 0, 0, tuple(in_shape))
    if isinstance(layer, Sequential):
        raise TypeError("pass Sequential to stage_cost(), not layer_cost()")
    # Composite blocks (e.g. ResidualBlock) expose their internals via
    # child modules; aggregate conv costs plus the skip-add traffic.
    from repro.models.resnet import ResidualBlock

    if isinstance(layer, ResidualBlock):
        c1 = layer_cost(layer.conv1, in_shape)
        c2 = layer_cost(layer.conv2, c1.out_shape)
        parts = [c1, c2]
        if layer.projection is not None:
            parts.append(layer_cost(layer.projection, in_shape))
        skip_elems = _numel(c2.out_shape)
        return LayerCost(
            name,
            "conv",  # dominated by its convolutions
            sum(p.macs for p in parts),
            sum(p.flops for p in parts) + 3 * skip_elems,  # add + 2 relus
            sum(p.bytes_read for p in parts) + skip_elems * _BYTES,
            sum(p.bytes_written for p in parts),
            sum(p.params for p in parts),
            c2.out_shape,
        )
    raise TypeError(f"no cost model for layer type {name}")


def stage_cost(name: str, stage: Sequential, in_shape: tuple[int, ...]) -> StageCost:
    """Aggregate cost of a Sequential stage; propagates shapes layer to layer."""
    layers: list[LayerCost] = []
    shape = tuple(in_shape)
    for layer in stage:
        cost = layer_cost(layer, shape)
        layers.append(cost)
        shape = cost.out_shape
    return StageCost(name=name, layers=tuple(layers))


def model_cost(model, in_shape: tuple[int, ...] | None = None) -> list[StageCost]:
    """Cost of every stage of a model exposing ``stages()``.

    Shape chaining is stage-specific: models whose stages share a prefix
    (BranchyNet's branch and trunk both consume the stem output) are
    handled by inspecting stage names.
    """
    if not hasattr(model, "stages"):
        raise TypeError(f"{type(model).__name__} does not expose stages()")
    in_shape = tuple(in_shape) if in_shape is not None else tuple(getattr(model, "IN_SHAPE", ()))
    if not in_shape:
        raise ValueError("provide in_shape or define IN_SHAPE on the model")

    stages = model.stages()
    costs: list[StageCost] = []
    shapes: dict[str, tuple[int, ...]] = {}
    current = in_shape
    for name, stage in stages:
        if name in ("branch", "trunk") and "stem" in shapes:
            start = shapes["stem"]
        elif name == "decoder" and "encoder" in shapes:
            start = shapes["encoder"]
        elif name == "head" and "stem" in shapes:
            start = shapes["stem"]
        else:
            start = current
        cost = stage_cost(name, stage, start)
        costs.append(cost)
        shapes[name] = cost.out_shape
        current = cost.out_shape
    return costs
