"""Simulated inline energy meter (paper §V: "a UM34C energy meter capable
of accurately measuring energy consumption in real time").

The real meter samples instantaneous power at a fixed rate and integrates.
This simulation reproduces that measurement process over a simulated
inference timeline — including the two artifacts a sampled meter has that
the paper's analytical E = P·Δt does not: quantization of the sampling
clock against short inferences, and sensor noise.  The test suite checks
that the metered energy converges to the analytical value as the run
grows, which is exactly the validation the authors propose to do on
physical hardware.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.hw.device import DeviceProfile
from repro.utils.rng import as_generator

__all__ = ["EnergyMeter", "MeterReading"]


@dataclass(frozen=True)
class MeterReading:
    """One metering session."""

    energy_joules: float
    duration_s: float
    n_samples: int
    mean_power_watts: float


class EnergyMeter:
    """Sampling power meter attached to a simulated device.

    Parameters
    ----------
    device:
        The device whose power model supplies instantaneous draw.
    sample_hz:
        Meter sampling rate (UM34C: ~1 Hz; we default to 10 Hz so short
        benchmark runs integrate meaningfully).
    noise_std_watts:
        Gaussian sensor noise per sample.
    """

    def __init__(
        self,
        device: DeviceProfile,
        sample_hz: float = 10.0,
        noise_std_watts: float = 0.05,
        rng: np.random.Generator | int | None = None,
    ) -> None:
        if sample_hz <= 0:
            raise ValueError(f"sample_hz must be positive, got {sample_hz}")
        if noise_std_watts < 0:
            raise ValueError(f"noise_std_watts must be non-negative, got {noise_std_watts}")
        self.device = device
        self.sample_hz = sample_hz
        self.noise_std_watts = noise_std_watts
        self.rng = as_generator(rng)

    def measure_run(
        self,
        per_inference_s: float,
        n_inferences: int,
        idle_gap_s: float = 0.0,
    ) -> MeterReading:
        """Meter a run of ``n_inferences`` back-to-back inferences.

        The device draws ``power(utilization)`` while busy and
        ``power(0)`` during inter-inference gaps; the meter samples the
        timeline at ``sample_hz`` (with the first sample at a uniformly
        random phase, as a free-running meter would).
        """
        if per_inference_s <= 0:
            raise ValueError(f"per_inference_s must be positive, got {per_inference_s}")
        if n_inferences <= 0:
            raise ValueError(f"n_inferences must be positive, got {n_inferences}")
        if idle_gap_s < 0:
            raise ValueError(f"idle_gap_s must be non-negative, got {idle_gap_s}")

        period = per_inference_s + idle_gap_s
        duration = period * n_inferences
        dt = 1.0 / self.sample_hz
        phase = self.rng.uniform(0.0, dt)
        times = np.arange(phase, duration, dt)
        if times.size == 0:
            times = np.asarray([duration / 2.0])
        # Busy while inside the first per_inference_s of each period.
        busy = (times % period) < per_inference_s
        p_busy = self.device.power(self.device.utilization)
        p_idle = self.device.power(0.0) if self.device.power.kind != "gpu" else p_busy
        power = np.where(busy, p_busy, p_idle)
        if self.noise_std_watts:
            power = power + self.rng.normal(0.0, self.noise_std_watts, power.shape)
        power = np.maximum(power, 0.0)
        energy = float(power.sum() * dt)
        return MeterReading(
            energy_joules=energy,
            duration_s=duration,
            n_samples=int(times.size),
            mean_power_watts=float(power.mean()),
        )

    def energy_per_inference(
        self, per_inference_s: float, n_inferences: int = 1000
    ) -> float:
        """Metered average energy per inference over a long run."""
        reading = self.measure_run(per_inference_s, n_inferences)
        return reading.energy_joules / n_inferences
