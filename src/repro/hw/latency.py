"""Model → per-device latency estimation.

All functions return *seconds per image* for single-sample edge inference
(the paper's measurement protocol: total time over the test set divided
by the number of images).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.hw.device import DeviceProfile
from repro.hw.flops import StageCost, model_cost, stage_cost

__all__ = [
    "latency_of_stages",
    "model_latency",
    "lenet_latency",
    "BranchyLatency",
    "branchynet_expected_latency",
    "CBNetLatency",
    "cbnet_latency",
]


def latency_of_stages(stages: list[StageCost], device: DeviceProfile) -> float:
    """Latency of running a list of stage costs back to back."""
    return device.inference_overhead_s + sum(device.stage_latency(s) for s in stages)


def model_latency(model, device: DeviceProfile, in_shape: tuple[int, ...] | None = None) -> float:
    """Latency of a plain feed-forward model (all stages sequential)."""
    return latency_of_stages(model_cost(model, in_shape), device)


def lenet_latency(lenet, device: DeviceProfile) -> float:
    """Per-image latency of the LeNet baseline."""
    return model_latency(lenet, device)


@dataclass(frozen=True)
class BranchyLatency:
    """Latency decomposition of threshold-gated BranchyNet inference."""

    early_path: float  # stem + branch (+ gate)
    full_path: float  # stem + branch + trunk (+ gate)
    exit_rate: float

    @property
    def expected(self) -> float:
        """Average per-image latency at the given early-exit rate."""
        return self.exit_rate * self.early_path + (1.0 - self.exit_rate) * self.full_path


def branchynet_expected_latency(
    branchy, device: DeviceProfile, exit_rate: float
) -> BranchyLatency:
    """Expected BranchyNet latency at an observed early-exit rate.

    Every sample pays stem + branch + one gating decision
    (``device.sync_overhead_s``); non-exiting samples additionally pay the
    trunk.
    """
    if not 0.0 <= exit_rate <= 1.0:
        raise ValueError(f"exit_rate must be in [0, 1], got {exit_rate}")
    stem = stage_cost("stem", branchy.stem, branchy.IN_SHAPE)
    branch = stage_cost("branch", branchy.branch, stem.out_shape)
    trunk = stage_cost("trunk", branchy.trunk, stem.out_shape)
    base = device.inference_overhead_s + device.sync_overhead_s
    early = base + device.stage_latency(stem) + device.stage_latency(branch)
    full = early + device.stage_latency(trunk)
    return BranchyLatency(early_path=early, full_path=full, exit_rate=exit_rate)


@dataclass(frozen=True)
class CBNetLatency:
    """Latency decomposition of the CBNet pipeline (paper §IV-D)."""

    autoencoder: float
    classifier: float

    @property
    def total(self) -> float:
        return self.autoencoder + self.classifier

    @property
    def autoencoder_share(self) -> float:
        return self.autoencoder / self.total if self.total else 0.0


def cbnet_latency(cbnet, device: DeviceProfile) -> CBNetLatency:
    """Per-image latency of CBNet = converting AE + lightweight classifier.

    The pipeline is static (no data-dependent control flow), so no gating
    overhead applies — the property that lets CBNet undercut BranchyNet
    even when their FLOPs are comparable.
    """
    ae = cbnet.autoencoder
    enc = stage_cost("encoder", ae.encoder, (ae.spec.input_dim,))
    dec = stage_cost("decoder", ae.decoder, enc.out_shape)
    clf = cbnet.classifier
    stem = stage_cost("stem", clf.stem, clf.IN_SHAPE)
    head = stage_cost("head", clf.head, stem.out_shape)
    ae_lat = device.stage_latency(enc) + device.stage_latency(dec)
    clf_lat = device.stage_latency(stem) + device.stage_latency(head)
    return CBNetLatency(
        autoencoder=ae_lat, classifier=clf_lat + device.inference_overhead_s
    )
