"""Edge-serving simulation: latency percentiles under load.

The paper reports *mean* per-image latency; a deployment decision also
needs tail behaviour under bursty arrivals.  This module simulates an
M/D/1-style serving loop on a simulated device: Poisson request
arrivals, a FIFO queue, deterministic per-request service time taken
from the calibrated latency model.  Because CBNet's service time is both
small and constant while BranchyNet's is bimodal (early vs full path),
their tails separate much more than their means — a deployment-relevant
result the evaluation harness can now quantify.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.eval.metrics import latency_percentiles
from repro.utils.rng import as_generator

__all__ = ["ServingStats", "simulate_serving", "bimodal_service_sampler"]


@dataclass(frozen=True)
class ServingStats:
    """Sojourn-time statistics of one serving simulation."""

    mean_s: float
    p50_s: float
    p95_s: float
    p99_s: float
    max_s: float
    utilization: float  # busy fraction of the server
    n_requests: int

    def summary(self) -> str:
        return (
            f"mean {self.mean_s * 1e3:.2f} ms | p95 {self.p95_s * 1e3:.2f} ms | "
            f"p99 {self.p99_s * 1e3:.2f} ms | util {self.utilization:.0%}"
        )


def simulate_serving(
    service_time_s: float | "callable",
    arrival_rate_hz: float,
    n_requests: int = 10_000,
    rng: np.random.Generator | int | None = None,
) -> ServingStats:
    """Single-server FIFO queue with Poisson arrivals.

    Parameters
    ----------
    service_time_s:
        Either a constant service time (seconds) or a callable
        ``f(rng, n) -> np.ndarray`` sampling per-request service times
        (see :func:`bimodal_service_sampler` for BranchyNet).
    arrival_rate_hz:
        Mean request arrival rate.  The system must be stable
        (rate x mean service < 1), otherwise the queue diverges and the
        function raises.
    """
    if arrival_rate_hz <= 0:
        raise ValueError(f"arrival rate must be positive, got {arrival_rate_hz}")
    if n_requests <= 0:
        raise ValueError(f"n_requests must be positive, got {n_requests}")
    rng = as_generator(rng)

    if callable(service_time_s):
        services = np.asarray(service_time_s(rng, n_requests), dtype=np.float64)
    else:
        if service_time_s <= 0:
            raise ValueError(f"service time must be positive, got {service_time_s}")
        services = np.full(n_requests, float(service_time_s))
    offered_load = arrival_rate_hz * services.mean()
    if offered_load >= 1.0:
        raise ValueError(
            f"unstable system: offered load {offered_load:.2f} >= 1 "
            f"(rate {arrival_rate_hz:.1f}/s x mean service {services.mean() * 1e3:.2f} ms)"
        )

    arrivals = np.cumsum(rng.exponential(1.0 / arrival_rate_hz, n_requests))
    # Lindley recursion: completion_i = max(arrival_i, completion_{i-1}) + s_i.
    completions = np.empty(n_requests)
    prev = 0.0
    for i in range(n_requests):
        start = arrivals[i] if arrivals[i] > prev else prev
        prev = start + services[i]
        completions[i] = prev
    sojourn = completions - arrivals
    busy = services.sum() / completions[-1]
    p50, p95, p99 = latency_percentiles(sojourn)
    return ServingStats(
        mean_s=float(sojourn.mean()),
        p50_s=p50,
        p95_s=p95,
        p99_s=p99,
        max_s=float(sojourn.max()),
        utilization=float(busy),
        n_requests=n_requests,
    )


def bimodal_service_sampler(
    early_s: float, full_s: float, exit_rate: float
):
    """Service-time sampler for an early-exit model.

    Each request takes the early path with probability ``exit_rate`` and
    the full path otherwise — BranchyNet's per-request service process.
    """
    if not 0.0 <= exit_rate <= 1.0:
        raise ValueError(f"exit_rate must be in [0, 1], got {exit_rate}")
    if early_s <= 0 or full_s <= 0:
        raise ValueError("service times must be positive")

    def sample(rng: np.random.Generator, n: int) -> np.ndarray:
        early = rng.random(n) < exit_rate
        return np.where(early, early_s, full_s)

    return sample
