"""Calibrated device profiles for the paper's three testbeds.

Each profile's free parameters — effective conv throughput, effective
dense throughput, per-layer dispatch overhead, per-sample gating/sync
overhead — are fitted (non-negative least squares) to the paper's
Table II MNIST measurements on that device:

* LeNet latency/image,
* BranchyNet latency/image at the paper's 94.88% early-exit rate,
* CBNet latency/image, split 75% classifier / 25% autoencoder
  (§IV-D: the converting autoencoder contributes "up to 25% of the total
  inference time").

The fit is performed once per device (lazily) against the *actual*
architectures in :mod:`repro.models`, so any architecture change
re-derives consistent device constants.  Residuals are recorded in each
profile's ``description``.
"""

from __future__ import annotations

import warnings
from functools import lru_cache

import numpy as np
from scipy.optimize import lsq_linear

from repro.hw.device import DeviceProfile
from repro.hw.flops import model_cost, stage_cost
from repro.hw.power import GCI_POWER, GPU_POWER, PI_POWER, PowerModel

__all__ = [
    "TABLE2_MNIST_MS",
    "calibrate_device",
    "raspberry_pi4",
    "gci_cpu",
    "gci_gpu",
    "device_profiles",
    "DEVICES",
]

# Table II, MNIST rows: latency per image in milliseconds.
TABLE2_MNIST_MS: dict[str, dict[str, float]] = {
    "raspberry-pi4": {"lenet": 12.735, "branchynet": 2.3, "cbnet": 1.877},
    "gci-cpu": {"lenet": 1.322, "branchynet": 0.395, "cbnet": 0.267},
    "gci-k80": {"lenet": 0.266, "branchynet": 0.118, "cbnet": 0.105},
}

# §IV-D: "About 94.88% of test samples in the MNIST datasets took the
# early exit" — the operating point at which Table II was measured.
PAPER_MNIST_EXIT_RATE = 0.9488
# §IV-D: autoencoder share of CBNet latency used as the calibration split.
AE_SHARE_OF_CBNET = 0.25

_POWER: dict[str, PowerModel] = {
    "raspberry-pi4": PI_POWER,
    "gci-cpu": GCI_POWER,
    "gci-k80": GPU_POWER,
}
_BANDWIDTH_GBS = {"raspberry-pi4": 3.0, "gci-cpu": 10.0, "gci-k80": 150.0}
_UTILIZATION = {"raspberry-pi4": 0.95, "gci-cpu": 0.90, "gci-k80": 0.90}


def _count(stage_costs) -> tuple[float, float, int]:
    """(conv MACs, dense MACs, overhead-bearing layer count) of stages."""
    conv = dense = 0.0
    n_overhead = 0
    for sc in stage_costs:
        for layer in sc.layers:
            if layer.kind == "conv":
                conv += layer.macs
            elif layer.kind == "dense":
                dense += layer.macs
            if layer.kind in ("conv", "dense", "pool"):
                n_overhead += 1
    return conv, dense, n_overhead


@lru_cache(maxsize=None)
def _architecture_counts() -> dict[str, tuple[float, float, int]]:
    """MAC/overhead counts of every path in the paper's models."""
    from repro.models.autoencoder import ConvertingAutoencoder
    from repro.models.branchynet import BranchyLeNet
    from repro.models.lenet import LeNet

    lenet = LeNet(rng=0)
    branchy = BranchyLeNet(rng=0)
    ae = ConvertingAutoencoder.for_dataset("mnist", rng=0)

    lenet_costs = model_cost(lenet)
    stem = stage_cost("stem", branchy.stem, branchy.IN_SHAPE)
    branch = stage_cost("branch", branchy.branch, stem.out_shape)
    trunk = stage_cost("trunk", branchy.trunk, stem.out_shape)
    ae_enc = stage_cost("encoder", ae.encoder, (ae.spec.input_dim,))
    ae_dec = stage_cost("decoder", ae.decoder, ae_enc.out_shape)

    return {
        "lenet": _count(lenet_costs),
        "early": _count([stem, branch]),  # BranchyNet early path = CBNet classifier
        "full": _count([stem, branch, trunk]),  # hard samples run everything
        "autoencoder": _count([ae_enc, ae_dec]),
    }


def calibrate_device(
    name: str,
    targets_ms: dict[str, float] | None = None,
    exit_rate: float = PAPER_MNIST_EXIT_RATE,
    ae_share: float = AE_SHARE_OF_CBNET,
) -> DeviceProfile:
    """Fit a :class:`DeviceProfile` to Table II latencies for ``name``.

    Solves (non-negatively) for x = (sec/conv-MAC, sec/dense-MAC,
    per-layer overhead, per-sample sync overhead) in the linear system
    built from the four calibration equations described in the module
    docstring.

    Calibration against the default Table II targets is memoized per
    ``(name, exit_rate, ae_share)``, so repeated CLI/experiment runs fit
    each device once; custom ``targets_ms`` bypass the cache.
    """
    if name not in TABLE2_MNIST_MS:
        raise KeyError(f"unknown device {name!r}; known: {sorted(TABLE2_MNIST_MS)}")
    if targets_ms is None:
        return _calibrate_cached(name, float(exit_rate), float(ae_share))
    return _calibrate(name, targets_ms, exit_rate, ae_share)


@lru_cache(maxsize=None)
def _calibrate_cached(name: str, exit_rate: float, ae_share: float) -> DeviceProfile:
    """Memoized default-target path of :func:`calibrate_device`."""
    return _calibrate(name, TABLE2_MNIST_MS[name], exit_rate, ae_share)


def _calibrate(
    name: str, targets: dict[str, float], exit_rate: float, ae_share: float
) -> DeviceProfile:
    """The actual non-negative least-squares fit."""
    counts = _architecture_counts()
    c_len, d_len, o_len = counts["lenet"]
    c_e, d_e, o_e = counts["early"]
    c_f, d_f, o_f = counts["full"]
    c_ae, d_ae, o_ae = counts["autoencoder"]
    p = exit_rate

    # Rows: LeNet, BranchyNet (expected over exits, + 1 sync), CBNet
    # classifier part, CBNet autoencoder part.  Columns: c, d, o, s.
    a = np.array(
        [
            [c_len, d_len, o_len, 0.0],
            [
                p * c_e + (1 - p) * c_f,
                p * d_e + (1 - p) * d_f,
                p * o_e + (1 - p) * o_f,
                1.0,
            ],
            [c_e, d_e, o_e, 0.0],
            [c_ae, d_ae, o_ae, 0.0],
        ]
    )
    b = np.array(
        [
            targets["lenet"],
            targets["branchynet"],
            (1.0 - ae_share) * targets["cbnet"],
            ae_share * targets["cbnet"],
        ]
    ) * 1e-3  # ms → s

    # Row scaling equalizes the four residuals' relative weight.
    scale = 1.0 / b
    result = lsq_linear(a * scale[:, None], b * scale, bounds=(0.0, np.inf))
    c_sec, d_sec, o_sec, s_sec = result.x
    fitted = a @ result.x
    residual_pct = 100.0 * np.abs(fitted - b) / b

    # Guard against degenerate fits (a rate of exactly 0 → infinite time).
    c_sec = max(c_sec, 1e-13)
    d_sec = max(d_sec, 1e-13)

    return DeviceProfile(
        name=name,
        conv_gmacs=1.0 / (c_sec * 1e9),
        dense_gmacs=1.0 / (d_sec * 1e9),
        mem_bandwidth_gbs=_BANDWIDTH_GBS[name],
        layer_overhead_s=float(o_sec),
        inference_overhead_s=0.0,
        sync_overhead_s=float(s_sec),
        utilization=_UTILIZATION[name],
        power=_POWER[name],
        description=(
            f"calibrated to Table II MNIST (residuals: lenet {residual_pct[0]:.1f}%, "
            f"branchynet {residual_pct[1]:.1f}%, cbnet-clf {residual_pct[2]:.1f}%, "
            f"cbnet-ae {residual_pct[3]:.1f}%)"
        ),
    )


@lru_cache(maxsize=None)
def raspberry_pi4() -> DeviceProfile:
    """Raspberry Pi 4 (Chameleon CHI@Edge testbed)."""
    return calibrate_device("raspberry-pi4")


@lru_cache(maxsize=None)
def gci_cpu() -> DeviceProfile:
    """Google Cloud N1 instance, 2 vCPU, no GPU."""
    return calibrate_device("gci-cpu")


@lru_cache(maxsize=None)
def gci_gpu() -> DeviceProfile:
    """Google Cloud N1 instance with an Nvidia Tesla K80."""
    return calibrate_device("gci-k80")


def device_profiles() -> dict[str, DeviceProfile]:
    """All three calibrated testbed profiles, keyed by name.

    The profiles themselves are memoized (calibrated once per process);
    the mapping is rebuilt per call, so callers may filter or pop
    entries without poisoning later calls.
    """
    return {
        "raspberry-pi4": raspberry_pi4(),
        "gci-cpu": gci_cpu(),
        "gci-k80": gci_gpu(),
    }


def DEVICES() -> dict[str, DeviceProfile]:
    """Deprecated alias of :func:`device_profiles` (old all-caps name)."""
    warnings.warn(
        "repro.hw.devices.DEVICES() is deprecated; use device_profiles()",
        DeprecationWarning,
        stacklevel=2,
    )
    return device_profiles()
