"""`repro.hw` — edge-device simulator.

The paper's testbeds (Raspberry Pi 4, Google Cloud N1 instance, GCI +
Tesla K80) are unavailable offline, so latency and energy are *modelled*:

* latency — a calibrated per-layer cost model (:mod:`repro.hw.latency`):
  conv layers, dense layers, and memory-bound layers each get a
  device-specific effective throughput, fitted once per device to the
  paper's Table II LeNet/BranchyNet/CBNet measurements on MNIST
  (:mod:`repro.hw.devices`).
* power — the *paper's own* analytical models reproduced exactly:
  Eq. 1 (GCI CPU), Eq. 2 (PowerPi) and the reported constant GPU/CPU
  draw for the K80 instance (:mod:`repro.hw.power`).
* energy — E = P · Δt (:mod:`repro.hw.energy`), as in §IV-C.
"""

from repro.hw.flops import LayerCost, StageCost, layer_cost, stage_cost, model_cost
from repro.hw.device import DeviceProfile
from repro.hw.devices import (
    device_profiles,
    raspberry_pi4,
    gci_cpu,
    gci_gpu,
    calibrate_device,
)
from repro.hw.network import (
    BandwidthTrace,
    NetworkLink,
    ethernet,
    wifi,
    lte,
    network_links,
)
from repro.hw.latency import (
    latency_of_stages,
    model_latency,
    branchynet_expected_latency,
    cbnet_latency,
    lenet_latency,
)
from repro.hw.power import gci_cpu_power, raspberry_pi_power, PowerModel
from repro.hw.energy import energy_joules, energy_savings_percent
from repro.hw.monitor import UtilizationMonitor
from repro.hw.meter import EnergyMeter, MeterReading
from repro.hw.serving import ServingStats, simulate_serving, bimodal_service_sampler


def __getattr__(name: str):
    """Lazy deprecation shim: ``repro.hw.DEVICES`` resolves on demand.

    The all-caps alias is no longer imported eagerly anywhere — internal
    call sites all use :func:`device_profiles` — but external code doing
    ``from repro.hw import DEVICES`` keeps working and gets the
    :func:`repro.hw.devices.DEVICES` shim, which warns on call.
    """
    if name == "DEVICES":
        from repro.hw.devices import DEVICES

        return DEVICES
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "LayerCost",
    "StageCost",
    "layer_cost",
    "stage_cost",
    "model_cost",
    "DeviceProfile",
    "DEVICES",
    "device_profiles",
    "raspberry_pi4",
    "gci_cpu",
    "gci_gpu",
    "calibrate_device",
    "BandwidthTrace",
    "NetworkLink",
    "ethernet",
    "wifi",
    "lte",
    "network_links",
    "latency_of_stages",
    "model_latency",
    "branchynet_expected_latency",
    "cbnet_latency",
    "lenet_latency",
    "gci_cpu_power",
    "raspberry_pi_power",
    "PowerModel",
    "energy_joules",
    "energy_savings_percent",
    "UtilizationMonitor",
    "EnergyMeter",
    "MeterReading",
    "ServingStats",
    "simulate_serving",
    "bimodal_service_sampler",
]
